// Package guardcases is the obsguard test corpus. Lines expecting a
// finding carry a trailing "want" marker comment; everything else must
// be clean. The test harness compares analyzer output against these
// markers, so keep them on the same line as the call.
package guardcases

import "superpin/internal/obs"

type holder struct {
	tr *obs.Tracer
	m  *obs.Metrics
}

type nested struct{ h holder }

func directUnguarded(t *obs.Tracer, m *obs.Metrics) {
	t.Emit(obs.Event{}) // want
	m.Add("x", 1)       // want
	m.Set("y", 2)       // want
}

func guardedByIf(t *obs.Tracer, m *obs.Metrics) {
	if t != nil {
		t.Emit(obs.Event{})
	}
	if m != nil {
		m.Add("x", 1)
		m.Set("y", 2)
	}
}

func guardedByEnabled(t *obs.Tracer) {
	if t.Enabled() {
		t.Emit(obs.Event{})
	}
}

func guardedByConjunction(t *obs.Tracer, on bool) {
	if on && t != nil {
		t.Emit(obs.Event{})
	}
}

func guardedByEarlyReturn(t *obs.Tracer) {
	if t == nil {
		return
	}
	t.Emit(obs.Event{})
}

func guardedByEarlyReturnDisjunction(m *obs.Metrics, off bool) {
	if off || m == nil {
		return
	}
	m.Add("x", 1)
}

func guardedElseBranch(t *obs.Tracer) {
	if t == nil {
		_ = t
	} else {
		t.Emit(obs.Event{})
	}
}

func wrongExpressionGuarded(n nested, other *obs.Tracer) {
	if other != nil {
		n.h.tr.Emit(obs.Event{}) // want
	}
}

func fieldChainGuarded(n nested) {
	if n.h.tr == nil {
		return
	}
	n.h.tr.Emit(obs.Event{})
}

func guardAfterCall(t *obs.Tracer) {
	t.Emit(obs.Event{}) // want
	if t == nil {
		return
	}
}

func guardWithoutBailout(t *obs.Tracer) {
	if t == nil {
		_ = t // does not leave the block
	}
	t.Emit(obs.Event{}) // want
}

func suppressed(t *obs.Tracer) {
	//obsguard:ignore — cold path, construction is free here
	t.Emit(obs.Event{})
	t.Emit(obs.Event{}) //obsguard:ignore
}

func localRebind(h holder) {
	m := h.m
	if m == nil {
		return
	}
	m.Add("x", 1)
	h.m.Add("y", 1) // want (the guard covers m, not h.m)
}

// unrelated Add/Set/Emit methods must not be flagged.
type counter struct{ n int }

func (c *counter) Add(s string, v uint64) { c.n++ }

func notObs(c *counter) {
	c.Add("x", 1)
}
