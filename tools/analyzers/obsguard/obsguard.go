// Package obsguard is a repository-local vet pass enforcing the
// observability layer's zero-cost contract.
//
// A nil *obs.Tracer and a nil *obs.Metrics are valid no-op sinks: Emit,
// Add and Set all check their receiver and return. That makes the call
// itself safe — but not free. Every emission site builds its argument
// first (an obs.Event literal, a formatted name, float conversions),
// and on hot paths that construction happens even when observability is
// off. The repository's invariant is therefore that every Emit/Add/Set
// call site in the engine packages is dominated by a nil check of its
// receiver, so uninstrumented runs pay one branch and nothing else.
//
// obsguard parses and type-checks a package (stdlib go/types with the
// source importer — no external dependencies) and reports every call to
// a guarded emission method — (*obs.Tracer).Emit, (*obs.Metrics).Add/
// Set/Observe/EndSpan, (*obs.Hist).Observe/Merge, (*obs.Counter).Add/
// Inc — that is not visibly guarded. A call is guarded when either:
//
//   - an enclosing if (or else-branch) establishes the receiver is
//     non-nil: `if x != nil { ... x.Emit(e) ... }`, conjunctions
//     included, or the equivalent `x.Enabled()` form; or
//   - an earlier statement in an enclosing block bails out on nil:
//     `if x == nil { return }`.
//
// The receiver is matched textually (types.ExprString), so the guard
// must test the same expression the call uses — guarding `e.opts.Trace`
// does not license a call on a copy taken before the guard. A call site
// can opt out with an `//obsguard:ignore` comment on its line or the
// line above (for sites where construction is provably cold).
package obsguard

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// obsPath is the import path of the observability package whose
// receivers are checked.
const obsPath = "superpin/internal/obs"

// guardedMethods maps checked type names (within obsPath) to the method
// names whose call sites must be nil-guarded.
var guardedMethods = map[string][]string{
	"Tracer":  {"Emit"},
	"Metrics": {"Add", "Set", "Observe", "EndSpan"},
	"Hist":    {"Observe", "Merge"},
	"Counter": {"Add", "Inc"},
}

// Finding is one unguarded emission site.
type Finding struct {
	Pos token.Position
	// Recv is the receiver expression text, e.g. "k.cfg.Trace".
	Recv string
	// Call is the method name, e.g. "Emit".
	Call string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s.%s called without a %q nil guard (obs zero-cost invariant)",
		f.Pos, f.Recv, f.Call, f.Recv+" != nil")
}

// CheckDir runs the analysis over the non-test Go files of one package
// directory. Type-checking errors in the target package are tolerated
// (the analysis runs on whatever resolved); a missing obs import means
// there is nothing to check and no findings.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var files []*ast.File
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic type-check order
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
		fs, err := checkFiles(fset, pkg.Name, files)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

func checkFiles(fset *token.FileSet, pkgName string, files []*ast.File) ([]Finding, error) {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		// The target package may reference build-tagged or generated
		// identifiers we did not load; keep going and analyze whatever
		// typed expressions resolved.
		Error: func(error) {},
	}
	_, _ = conf.Check(pkgName, fset, files, info)

	var findings []Finding
	for _, file := range files {
		ignored := ignoreLines(fset, file)
		v := &visitor{fset: fset, info: info, ignored: ignored}
		ast.Walk(v, file)
		findings = append(findings, v.findings...)
	}
	return findings, nil
}

// ignoreLines collects the line numbers suppressed by obsguard:ignore
// comments (the comment's own line and the one after it, so both
// same-line and line-above placements work).
func ignoreLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "obsguard:ignore") {
				ln := fset.Position(c.Pos()).Line
				lines[ln] = true
				lines[ln+1] = true
			}
		}
	}
	return lines
}

// visitor walks one file keeping the ancestor stack, so each call site
// can search its enclosing ifs and blocks for a guard.
type visitor struct {
	fset     *token.FileSet
	info     *types.Info
	ignored  map[int]bool
	stack    []ast.Node
	findings []Finding
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if call, ok := n.(*ast.CallExpr); ok {
		v.checkCall(call)
	}
	v.stack = append(v.stack, n)
	return v
}

func (v *visitor) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tname, ok := obsReceiver(v.info, sel.X)
	if !ok {
		return
	}
	matched := false
	for _, m := range guardedMethods[tname] {
		if sel.Sel.Name == m {
			matched = true
		}
	}
	if !matched {
		return
	}
	pos := v.fset.Position(call.Pos())
	if v.ignored[pos.Line] {
		return
	}
	recv := types.ExprString(sel.X)
	if v.guarded(recv, call) {
		return
	}
	v.findings = append(v.findings, Finding{Pos: pos, Recv: recv, Call: sel.Sel.Name})
}

// obsReceiver reports whether expr's static type is a pointer to one of
// the checked obs types, returning the type's name.
func obsReceiver(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return "", false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
		return "", false
	}
	_, checked := guardedMethods[obj.Name()]
	return obj.Name(), checked
}

// guarded reports whether the call is dominated by a nil check of recv.
func (v *visitor) guarded(recv string, call *ast.CallExpr) bool {
	for i := len(v.stack) - 1; i >= 0; i-- {
		switch n := v.stack[i].(type) {
		case *ast.IfStmt:
			if within(n.Body, call) && condAssertsNonNil(n.Cond, recv) {
				return true
			}
			if n.Else != nil && within(n.Else, call) && condAssertsNil(n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			if blockBailsOutBefore(n, call, recv) {
				return true
			}
		}
	}
	return false
}

// within reports whether node pos-encloses x.
func within(node ast.Node, x ast.Node) bool {
	return node != nil && node.Pos() <= x.Pos() && x.End() <= node.End()
}

// condAssertsNonNil: the condition being true implies recv != nil.
// Handles `recv != nil`, `recv.Enabled()`, parens, and conjunctions.
func condAssertsNonNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condAssertsNonNil(c.X, recv)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condAssertsNonNil(c.X, recv) || condAssertsNonNil(c.Y, recv)
		case token.NEQ:
			return isNilCompare(c, recv)
		}
	case *ast.CallExpr:
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Enabled" && types.ExprString(sel.X) == recv
		}
	}
	return false
}

// condAssertsNil: the condition being false implies recv != nil.
// Handles `recv == nil`, parens, and disjunctions.
func condAssertsNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condAssertsNil(c.X, recv)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR:
			return condAssertsNil(c.X, recv) || condAssertsNil(c.Y, recv)
		case token.EQL:
			return isNilCompare(c, recv)
		}
	}
	return false
}

// isNilCompare reports whether b compares recv against nil (either
// operand order).
func isNilCompare(b *ast.BinaryExpr, recv string) bool {
	return (types.ExprString(b.X) == recv && isNil(b.Y)) ||
		(types.ExprString(b.Y) == recv && isNil(b.X))
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockBailsOutBefore reports whether block contains, before the call,
// an `if recv == nil { <terminating> }` statement — the early-return
// guard idiom.
func blockBailsOutBefore(block *ast.BlockStmt, call *ast.CallExpr, recv string) bool {
	for _, stmt := range block.List {
		if stmt.End() >= call.Pos() {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
			continue
		}
		if condAssertsNil(ifs.Cond, recv) && terminates(ifs.Body.List[len(ifs.Body.List)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether stmt unconditionally leaves the enclosing
// block (the guard body really bails out).
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// CheckDirs runs CheckDir over several package directories (non-
// recursive), concatenating findings.
func CheckDirs(dirs []string) ([]Finding, error) {
	var all []Finding
	for _, d := range dirs {
		fs, err := CheckDir(filepath.Clean(d))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		all = append(all, fs...)
	}
	return all, nil
}
