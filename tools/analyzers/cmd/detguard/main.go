// Command detguard runs the repository's determinism vet pass over
// package directories:
//
//	go run ./tools/analyzers/cmd/detguard internal/cpu internal/mem internal/pin internal/jit internal/core internal/sa
//
// It prints one line per determinism hazard — unannotated map ranges,
// unguarded time.Now calls, math/rand imports — and exits non-zero when
// any are found. See tools/analyzers/detguard for the contract.
package main

import (
	"fmt"
	"os"

	"superpin/tools/analyzers/detguard"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: detguard <package-dir> ...")
		os.Exit(2)
	}
	findings, err := detguard.CheckDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detguard:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detguard: %d determinism hazard(s)\n", len(findings))
		os.Exit(1)
	}
}
