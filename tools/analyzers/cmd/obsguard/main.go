// Command obsguard runs the repository's observability nil-guard vet
// pass over package directories:
//
//	go run ./tools/analyzers/cmd/obsguard internal/pin internal/cpu internal/kernel internal/core
//
// It prints one line per unguarded obs.Tracer/obs.Metrics emission site
// and exits non-zero when any are found. See tools/analyzers/obsguard
// for the invariant.
package main

import (
	"fmt"
	"os"

	"superpin/tools/analyzers/obsguard"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: obsguard <package-dir> ...")
		os.Exit(2)
	}
	findings, err := obsguard.CheckDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsguard:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "obsguard: %d unguarded emission site(s)\n", len(findings))
		os.Exit(1)
	}
}
