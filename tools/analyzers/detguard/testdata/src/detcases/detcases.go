// Package detcases is the detguard analyzer's annotated corpus: every
// line carrying a want marker must produce exactly one finding, and no
// other line may produce any.
package detcases

import (
	"math/rand" // want: host randomness is banned
	"sort"
	"time"
)

// counters stands in for any result-bearing map.
var counters = map[string]uint64{}

// sink defeats "unused" noise.
var sink any

// mapRanges exercises the map-iteration rule.
func mapRanges(xs []int) {
	for k, v := range counters { // want: unannotated map range
		sink = k
		sink = v
	}
	for k := range counters { //detguard:ok membership only
		sink = k
	}
	//detguard:ok keys sorted below
	for k := range counters {
		keys := []string{k}
		sort.Strings(keys)
	}
	for i, x := range xs { // slices are ordered: no finding
		sink = i
		sink = x
	}
}

// metrics stands in for a nil-able telemetry sink.
var metrics *struct{ on bool }

// timeNow exercises the wall-clock rule.
func timeNow() {
	t0 := time.Now() // want: unguarded wall clock
	sink = t0
	if metrics != nil {
		sink = time.Now() // guarded: telemetry idiom
	}
	if metrics == nil {
		return
	}
	sink = time.Now() // dominated by the bail-out above
}

// timeNowAnnotated exercises the escape hatch.
func timeNowAnnotated() {
	sink = time.Now() //detguard:ok cold path, host-side log only
}

// useRand keeps the math/rand import referenced; the import line above
// is the finding, not the call sites.
func useRand() int { return rand.Int() }
