// Package detguard is a repository-local vet pass enforcing the
// engine's determinism contract.
//
// The simulator's load-bearing promise is that virtual results are
// byte-identical across hosts, worker counts and repeat runs — the
// differential experiments (sadiff, pardiff, ipdiff, ...) all assert
// it. Three host-side constructs can silently break that promise when
// they leak into result-bearing code:
//
//   - map iteration: Go randomizes range order over maps, so a map
//     walk whose body emits, appends or merges in iteration order
//     produces run-dependent results;
//   - time.Now: host wall-clock time must never feed a virtual
//     quantity — it is only acceptable inside the telemetry idiom,
//     where a nil guard on the metrics/histogram sink dominates the
//     call and the value feeds host-side observability alone;
//   - math/rand: host randomness has no place in the engine packages
//     at all (deterministic pseudo-randomness used by workloads is
//     generated from fixed seeds in the guest, not the host).
//
// detguard parses and type-checks a package (stdlib go/types with the
// source importer — no external dependencies, same machinery as
// obsguard) and reports:
//
//   - every `for ... range m` where m is map-typed, unless the line
//     (or the line above) carries a `//detguard:ok` comment asserting
//     the body is iteration-order-insensitive (commutative merge,
//     key-sorted output, or set membership only);
//   - every call to time.Now that is not dominated by a nil check
//     (`if x != nil { ... }` or an earlier `if x == nil { return }`)
//     — the telemetry-gating idiom — and not annotated `//detguard:ok`;
//   - every import of math/rand or math/rand/v2, unconditionally.
//
// The annotation deliberately names the reviewer's obligation: writing
// `//detguard:ok` asserts you checked the site cannot influence
// virtual-cycle results or any merged/serialized output ordering.
package detguard

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one determinism hazard.
type Finding struct {
	Pos token.Position
	// Kind is the hazard class: "map-range", "time-now" or "math-rand".
	Kind string
	// Detail names the offending expression (the ranged map, the
	// imported path).
	Detail string
}

func (f Finding) String() string {
	switch f.Kind {
	case "map-range":
		return fmt.Sprintf("%s: range over map %s without a detguard:ok annotation (iteration order is host-random)",
			f.Pos, f.Detail)
	case "time-now":
		return fmt.Sprintf("%s: time.Now outside the nil-guarded telemetry idiom (host wall clock must not feed results)",
			f.Pos)
	default:
		return fmt.Sprintf("%s: import of %s (host randomness is banned in engine packages)",
			f.Pos, f.Detail)
	}
}

// CheckDir runs the analysis over the non-test Go files of one package
// directory. Type-checking errors in the target package are tolerated
// (the analysis runs on whatever resolved).
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var files []*ast.File
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic type-check order
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
		fs, err := checkFiles(fset, pkg.Name, files)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

func checkFiles(fset *token.FileSet, pkgName string, files []*ast.File) ([]Finding, error) {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		// The target package may reference build-tagged or generated
		// identifiers we did not load; keep going and analyze whatever
		// typed expressions resolved.
		Error: func(error) {},
	}
	_, _ = conf.Check(pkgName, fset, files, info)

	var findings []Finding
	for _, file := range files {
		okLines := okLines(fset, file)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				findings = append(findings, Finding{
					Pos: fset.Position(imp.Pos()), Kind: "math-rand", Detail: path,
				})
			}
		}
		v := &visitor{fset: fset, info: info, ok: okLines}
		ast.Walk(v, file)
		findings = append(findings, v.findings...)
	}
	return findings, nil
}

// okLines collects the line numbers suppressed by detguard:ok comments
// (the comment's own line and the one after it, so both same-line and
// line-above placements work).
func okLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detguard:ok") {
				ln := fset.Position(c.Pos()).Line
				lines[ln] = true
				lines[ln+1] = true
			}
		}
	}
	return lines
}

// visitor walks one file keeping the ancestor stack, so each time.Now
// site can search its enclosing ifs and blocks for a telemetry guard.
type visitor struct {
	fset     *token.FileSet
	info     *types.Info
	ok       map[int]bool
	stack    []ast.Node
	findings []Finding
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	switch node := n.(type) {
	case *ast.RangeStmt:
		v.checkRange(node)
	case *ast.CallExpr:
		v.checkTimeNow(node)
	}
	v.stack = append(v.stack, n)
	return v
}

func (v *visitor) checkRange(r *ast.RangeStmt) {
	tv, ok := v.info.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pos := v.fset.Position(r.Pos())
	if v.ok[pos.Line] {
		return
	}
	v.findings = append(v.findings, Finding{
		Pos: pos, Kind: "map-range", Detail: types.ExprString(r.X),
	})
}

func (v *visitor) checkTimeNow(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "time" {
		return
	}
	// Confirm it is the time package, not a variable named "time", when
	// type info resolved; fall back to the textual match otherwise.
	if tv, ok := v.info.Types[sel.X]; ok && tv.Type != nil {
		return // a value named time — not the package
	}
	pos := v.fset.Position(call.Pos())
	if v.ok[pos.Line] || v.nilGuarded(call) {
		return
	}
	v.findings = append(v.findings, Finding{Pos: pos, Kind: "time-now"})
}

// nilGuarded reports whether the call is dominated by a nil check of
// any expression — the telemetry-gating idiom (`if e.metrics != nil {
// t0 = time.Now() }` or an earlier `if m == nil { return }`).
func (v *visitor) nilGuarded(call *ast.CallExpr) bool {
	for i := len(v.stack) - 1; i >= 0; i-- {
		switch n := v.stack[i].(type) {
		case *ast.IfStmt:
			if within(n.Body, call) && condHasNonNil(n.Cond) {
				return true
			}
		case *ast.BlockStmt:
			if blockBailsOutBefore(n, call) {
				return true
			}
		}
	}
	return false
}

// within reports whether node pos-encloses x.
func within(node ast.Node, x ast.Node) bool {
	return node != nil && node.Pos() <= x.Pos() && x.End() <= node.End()
}

// condHasNonNil: the condition contains a `x != nil` conjunct (parens
// and && handled; an if-with-init `if m := ...; m != nil` also lands
// here).
func condHasNonNil(cond ast.Expr) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condHasNonNil(c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condHasNonNil(c.X) || condHasNonNil(c.Y)
		case token.NEQ:
			return isNil(c.X) || isNil(c.Y)
		}
	}
	return false
}

// condHasNil: the condition contains a `x == nil` disjunct.
func condHasNil(cond ast.Expr) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condHasNil(c.X)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR:
			return condHasNil(c.X) || condHasNil(c.Y)
		case token.EQL:
			return isNil(c.X) || isNil(c.Y)
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockBailsOutBefore reports whether block contains, before the call,
// an `if x == nil { <terminating> }` statement — the early-return guard
// idiom.
func blockBailsOutBefore(block *ast.BlockStmt, call *ast.CallExpr) bool {
	for _, stmt := range block.List {
		if stmt.End() >= call.Pos() {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
			continue
		}
		if condHasNil(ifs.Cond) && terminates(ifs.Body.List[len(ifs.Body.List)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether stmt unconditionally leaves the enclosing
// block (the guard body really bails out).
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// CheckDirs runs CheckDir over several package directories (non-
// recursive), concatenating findings.
func CheckDirs(dirs []string) ([]Finding, error) {
	var all []Finding
	for _, d := range dirs {
		fs, err := CheckDir(filepath.Clean(d))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		all = append(all, fs...)
	}
	return all, nil
}
