package detguard

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDetCases runs the analyzer over the annotated corpus and demands
// an exact match: a finding on every `// want` line and nothing
// anywhere else.
func TestDetCases(t *testing.T) {
	dir := filepath.Join("testdata", "src", "detcases")
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := wantLines(t, filepath.Join(dir, "detcases.go"))
	got := make(map[int]bool)
	for _, f := range findings {
		if got[f.Pos.Line] {
			t.Errorf("line %d: duplicate finding", f.Pos.Line)
		}
		got[f.Pos.Line] = true
		if !want[f.Pos.Line] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("line %d: expected a finding, got none", line)
		}
	}
}

// wantLines returns the line numbers carrying a `// want` marker.
func wantLines(t *testing.T, path string) map[int]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make(map[int]bool)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if strings.Contains(sc.Text(), "// want") {
			want[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestEnginePackagesClean pins the determinism contract over the
// packages whose outputs must be byte-identical across runs: any
// unannotated map range, unguarded time.Now or math/rand import added
// there turns this red (and scripts/check.sh runs the same gate via
// the CLI).
func TestEnginePackagesClean(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	for _, pkg := range []string{"internal/cpu", "internal/mem", "internal/pin", "internal/jit", "internal/core", "internal/sa"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			findings, err := CheckDir(filepath.Join(root, pkg))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				t.Errorf("%s", f)
			}
		})
	}
}
