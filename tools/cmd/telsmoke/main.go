// Command telsmoke is the check.sh smoke test for the live telemetry
// plane: it runs a command (typically spbench with -serve 127.0.0.1:0),
// scans the command's stderr for the "telemetry: serving on http://ADDR"
// announcement, and polls every endpoint while the run is still
// executing. It fails unless, mid-run, all endpoints served valid live
// data: /healthz answered ok, /metrics parsed as Prometheus text
// exposition, /metrics.json and /status parsed as JSON with a non-zero
// retired-instruction count, and /trace parsed as a Chrome trace with at
// least one event. The wrapped command must also exit cleanly.
//
//	go run ./tools/cmd/telsmoke -- \
//	    go run ./cmd/spbench -exp fig3 -scale 1 -benchmarks gzip,gcc,mgrid -serve 127.0.0.1:0
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"time"
)

// serveRe matches the telemetry plane's startup announcement.
var serveRe = regexp.MustCompile(`telemetry: serving on http://(\S+)`)

// promLineRe is the Prometheus text-exposition sample-line grammar the
// /metrics endpoint must honor (metric name, optional labels, a space).
var promLineRe = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*(\{[^}]*\})? `)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "telsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("telsmoke: ok")
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "--" {
		args = args[1:]
	}
	if len(args) == 0 {
		return fmt.Errorf("usage: telsmoke -- <command serving telemetry> [args...]")
	}

	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}

	// Scan stderr for the serving line, echoing everything else through
	// so failures of the wrapped command stay diagnosable.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := serveRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}()

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		return fmt.Errorf("command exited (%v) before announcing a telemetry address", err)
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return fmt.Errorf("no 'telemetry: serving on' line within 30s")
	}
	base := "http://" + addr

	// Poll until one round succeeds mid-run. The round only counts if
	// the wrapped command is still running when it completes — that is
	// what makes this a *live* telemetry test.
	var lastErr error
	verified := false
	for !verified {
		select {
		case err := <-done:
			if lastErr == nil {
				lastErr = fmt.Errorf("run finished before any poll completed (workload too small?)")
			}
			return fmt.Errorf("no successful mid-run poll before exit (%v): %w", err, lastErr)
		default:
		}
		if err := pollOnce(base); err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		select {
		case err := <-done:
			// The run ended while we polled; without proof the data was
			// served mid-run, keep this conservative and fail.
			return fmt.Errorf("run exited (%v) during the verifying poll; rerun with a larger workload", err)
		default:
			verified = true
		}
	}

	if err := <-done; err != nil {
		return fmt.Errorf("command failed after a successful mid-run poll: %w", err)
	}
	return nil
}

// pollOnce exercises every endpoint and validates the responses.
func pollOnce(base string) error {
	body, err := get(base + "/healthz")
	if err != nil {
		return err
	}
	if string(body) != "ok\n" {
		return fmt.Errorf("/healthz = %q", body)
	}

	body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRe.MatchString(line) {
			return fmt.Errorf("/metrics line violates Prometheus grammar: %q", line)
		}
	}

	body, err = get(base + "/metrics.json")
	if err != nil {
		return err
	}
	if !json.Valid(body) {
		return fmt.Errorf("/metrics.json is not valid JSON")
	}

	body, err = get(base + "/status")
	if err != nil {
		return err
	}
	var st struct {
		RetiredIns uint64  `json:"retired_ins"`
		GuestMIPS  float64 `json:"guest_mips"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("/status unparseable: %w", err)
	}
	if st.RetiredIns == 0 {
		return fmt.Errorf("/status retired_ins still 0")
	}
	if st.GuestMIPS <= 0 {
		return fmt.Errorf("/status guest_mips = %v", st.GuestMIPS)
	}

	body, err = get(base + "/trace")
	if err != nil {
		return err
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		return fmt.Errorf("/trace unparseable: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return fmt.Errorf("/trace has no events yet")
	}
	return nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
