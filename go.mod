module superpin

go 1.22
