package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "sigstats", "-scale", "0.02", "-benchmarks", "gzip", "-csv", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sigstats.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-scale", "0.01", "-benchmarks", "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
