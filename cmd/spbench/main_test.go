package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "sigstats", "-scale", "0.02", "-benchmarks", "gzip", "-csv", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sigstats.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunParallelWithHostJSON(t *testing.T) {
	dir := t.TempDir()
	hj := filepath.Join(dir, "BENCH_host.json")
	args := []string{"-exp", "fig3", "-scale", "0.02", "-benchmarks", "gzip,mgrid",
		"-j", "2", "-hostjson", hj}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hj)
	if err != nil {
		t.Fatal(err)
	}
	var hp struct {
		ElapsedSec float64 `json:"elapsed_sec"`
		Workers    int     `json:"workers"`
		SuiteRuns  int     `json:"suite_runs"`
		GuestIns   uint64  `json:"guest_ins_min"`
		GuestMIPS  float64 `json:"guest_mips_min"`
	}
	if err := json.Unmarshal(data, &hp); err != nil {
		t.Fatal(err)
	}
	if hp.Workers != 2 || hp.SuiteRuns != 6 || hp.GuestIns == 0 || hp.GuestMIPS <= 0 || hp.ElapsedSec <= 0 {
		t.Fatalf("host perf = %+v", hp)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunNegativeWorkers: a negative -workers must be a clean CLI error
// (main turns it into stderr + non-zero exit), not a crash deep in a run.
func TestRunNegativeWorkers(t *testing.T) {
	if err := run([]string{"-workers", "-2", "-exp", "fig3", "-benchmarks", "gzip"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
}

// TestRunJITDiffExperiment: -exp jitdiff runs the hot-tier differential
// and writes its CSV; -nohottier on a suite run must also be accepted.
func TestRunJITDiffExperiment(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "jitdiff", "-scale", "0.02", "-benchmarks", "gzip", "-csv", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jitdiff.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty jitdiff CSV")
	}
	if err := run([]string{"-exp", "sigstats", "-scale", "0.02", "-benchmarks", "gzip", "-nohottier"}); err != nil {
		t.Fatalf("-nohottier suite run: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
}

// TestRunObsSmokeExperiment: -exp obssmoke traces each benchmark and
// verifies the invariants; -trace-dir makes fig runs write Chrome JSON.
func TestRunObsSmokeExperiment(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "obssmoke", "-scale", "0.02", "-benchmarks", "gzip", "-csv", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "obssmoke.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty obssmoke CSV")
	}
}

func TestRunTraceDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig3", "-scale", "0.02", "-benchmarks", "gzip", "-trace-dir", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "gzip.icount1.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-scale", "0.01", "-benchmarks", "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestRunCacheDiffExperiment: -exp cachediff runs the artifact-cache
// differential and writes its CSV.
func TestRunCacheDiffExperiment(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "cachediff", "-scale", "0.02", "-benchmarks", "gzip", "-j", "1", "-csv", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "cachediff.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty cachediff CSV")
	}
}

// TestRunWarmstartAndCacheDir: -warmstart produces the warm-start block
// in the host-perf JSON, and -cachedir creates a missing nested
// directory and persists artifacts into it across the suite.
func TestRunWarmstartAndCacheDir(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "deep", "cache")
	hj := filepath.Join(dir, "host.json")
	args := []string{"-exp", "fig3", "-scale", "0.02", "-benchmarks", "gzip",
		"-j", "1", "-warmstart", "-cachedir", cache, "-hostjson", hj}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("cache dir holds %d entries, want predecode+sa+seed", len(ents))
	}
	data, err := os.ReadFile(hj)
	if err != nil {
		t.Fatal(err)
	}
	var hp struct {
		Warmstart *struct {
			ColdSec float64 `json:"cold_sec"`
			WarmSec float64 `json:"warm_sec"`
			DiskSec float64 `json:"disk_sec"`
		} `json:"warmstart"`
	}
	if err := json.Unmarshal(data, &hp); err != nil {
		t.Fatal(err)
	}
	if hp.Warmstart == nil || hp.Warmstart.ColdSec <= 0 || hp.Warmstart.WarmSec <= 0 || hp.Warmstart.DiskSec <= 0 {
		t.Fatalf("warmstart block = %+v", hp.Warmstart)
	}
}

// TestRunCacheDirUnusable: a -cachedir path that runs through a regular
// file must be a clear non-zero-exit error (MkdirAll fails even for
// root), before any experiment runs.
func TestRunCacheDirUnusable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, cd := range []string{file, filepath.Join(file, "sub")} {
		if err := run([]string{"-exp", "fig3", "-scale", "0.01", "-benchmarks", "gzip", "-cachedir", cd}); err == nil {
			t.Errorf("-cachedir %s accepted", cd)
		}
	}
}
