// Command spbench regenerates the SuperPin paper's evaluation (Section
// 6): Figures 3-7 and the Section 4.4 signature-detection statistics, as
// aligned text tables and optionally CSV files.
//
//	spbench                      # every experiment at the default scale
//	spbench -exp fig6 -scale 1   # one experiment, full-size workloads
//	spbench -csv out/            # also write out/fig3.csv etc.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"superpin/internal/bench"
	"superpin/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: all|fig3|fig4|fig5|fig6|fig7|sigstats|ablations")
		scale      = fs.Float64("scale", 0.25, "workload scale (1.0 = full size)")
		msec       = fs.Float64("msec", 0, "timeslice interval in virtual ms (0 = scale-proportional default)")
		maxSlices  = fs.Int("spmp", 8, "maximum running slices for suite runs")
		benchmarks = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all 26)")
		csvDir     = fs.String("csv", "", "directory to also write <experiment>.csv files into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.MaxSlices = *maxSlices
	if *msec > 0 {
		cfg.TimesliceMSec = *msec
	} else {
		// Keep the slice-count-per-run ratio roughly constant across
		// scales (the paper uses 2 s slices on minutes-long runs).
		cfg.TimesliceMSec = 500 * *scale / 0.25
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}

	emit := func(name string, t *report.Table) error {
		fmt.Println(t)
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(t.CSV()), 0o644)
	}

	start := time.Now()
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig3") || want("fig4") {
		t3, rs, err := bench.Fig3(cfg)
		if err != nil {
			return err
		}
		if want("fig3") {
			if err := emit("fig3", t3); err != nil {
				return err
			}
			ran = true
		}
		if want("fig4") {
			t4, _, err := bench.Fig4(cfg, rs)
			if err != nil {
				return err
			}
			if err := emit("fig4", t4); err != nil {
				return err
			}
			ran = true
		}
	}
	if want("fig5") {
		t5, _, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig5", t5); err != nil {
			return err
		}
		ran = true
	}
	if want("fig6") {
		t6, _, err := bench.Fig6(cfg, nil)
		if err != nil {
			return err
		}
		if err := emit("fig6", t6); err != nil {
			return err
		}
		ran = true
	}
	if want("fig7") {
		t7, _, err := bench.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		if err := emit("fig7", t7); err != nil {
			return err
		}
		ran = true
	}
	if want("sigstats") {
		ts, _, err := bench.SigStats(cfg)
		if err != nil {
			return err
		}
		if err := emit("sigstats", ts); err != nil {
			return err
		}
		ran = true
	}
	if want("ablations") {
		tq, _, err := bench.AblationQuickCheck(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_quickcheck", tq); err != nil {
			return err
		}
		tr, _, err := bench.AblationSysRecs(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_sysrecs", tr); err != nil {
			return err
		}
		tc, _, err := bench.AblationSharedCache(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_sharedcache", tc); err != nil {
			return err
		}
		tt, _, err := bench.AblationThrottle(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_throttle", tt); err != nil {
			return err
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	fmt.Printf("(scale %.2f, timeslice %.0f ms, elapsed %s)\n", cfg.Scale, cfg.TimesliceMSec, time.Since(start).Round(time.Millisecond))
	return nil
}
