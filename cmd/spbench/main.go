// Command spbench regenerates the SuperPin paper's evaluation (Section
// 6): Figures 3-7 and the Section 4.4 signature-detection statistics, as
// aligned text tables and optionally CSV files.
//
//	spbench                      # every experiment at the default scale
//	spbench -exp fig6 -scale 1   # one experiment, full-size workloads
//	spbench -csv out/            # also write out/fig3.csv etc.
//	spbench -j 8                 # fan runs out over 8 host workers
//	spbench -hostjson BENCH_host.json  # also write host-perf metrics
//	spbench -trace-dir traces/   # write per-benchmark Chrome trace JSON
//	spbench -exp obssmoke        # verify trace invariants end to end
//	spbench -exp fastpathdiff    # verify engine fast paths change nothing
//	spbench -exp sadiff          # verify the static analysis changes nothing
//	spbench -exp ipdiff          # verify the interprocedural tier changes nothing
//	spbench -exp profdiff        # verify serial and SuperPin profiles match
//	spbench -exp pardiff         # verify host-parallel runs change nothing
//	spbench -exp jitdiff         # verify the hot trace tier changes nothing
//	spbench -exp cachediff       # verify the artifact cache changes nothing
//	spbench -warmstart           # measure cold vs warm vs disk-warm wall-clock
//	spbench -cachedir dir        # share predecode/SA/hot-seed artifacts across runs
//	spbench -workers 4           # execute each run's slices on 4 goroutines
//	spbench -scaling 1,2,4,8     # measure wall-clock vs per-run workers
//	spbench -nofastpath          # run with the dispatch fast paths off
//	spbench -nosa                # run with the load-time static analysis off
//	spbench -saintra             # run with only the intraprocedural analysis tier
//	spbench -nohottier           # run with the second-tier trace compiler off
//	spbench -cpuprofile cpu.pprof  # host CPU profile of the harness itself
//	spbench -serve 127.0.0.1:8080  # live /metrics /status /trace HTTP plane
//	spbench -lastgasp crash.json   # dump the flight recorder on panic/SIGTERM
//	spbench -flightcap 65536       # flight-recorder ring capacity (events)
//
// Independent benchmark runs fan out over a bounded worker pool; -j 0
// (the default) uses the SPBENCH_J environment variable when set, else
// GOMAXPROCS. Virtual-cycle results are byte-identical for every -j.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"superpin/internal/artifact"
	"superpin/internal/bench"
	"superpin/internal/report"
	"superpin/internal/telemetry"
)

// hostPerf is the BENCH_host.json artifact: host-side performance of one
// spbench invocation, tracked across PRs for the perf trajectory.
type hostPerf struct {
	ElapsedSec float64 `json:"elapsed_sec"`
	Workers    int     `json:"workers"`
	// SPWorkers is the per-run slice-level worker count (-workers); the
	// Scaling curve, when present, sweeps it with host fan-out off.
	SPWorkers  int     `json:"sp_workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	SuiteRuns  int     `json:"suite_runs"`
	// GuestIns is a lower bound on guest instructions executed: each
	// suite triple runs its benchmark at least three times (native, Pin,
	// SuperPin; the SuperPin master+slice double execution is not
	// counted).
	GuestIns  uint64  `json:"guest_ins_min"`
	GuestMIPS float64 `json:"guest_mips_min"`
	// NoFastPath records whether the engine's dispatch fast paths were
	// disabled; Host aggregates their counters (from the suites' serial
	// Pin runs) so the artifact shows how much the fast paths engaged.
	NoFastPath bool               `json:"nofastpath"`
	Host       bench.HostCounters `json:"host_counters"`
	// Scaling is the -scaling sweep: wall-clock of a serial SuperPin-only
	// pass over the configured benchmarks at each per-run worker count,
	// with speedup relative to the first point.
	Scaling []bench.ScalePoint `json:"scaling,omitempty"`
	// Warmstart is the -warmstart sweep: wall-clock of serial-Pin passes
	// over the configured benchmarks cold, warm (populated in-process
	// artifact store) and disk-warm, with the time-to-first-promotion
	// dispatch totals.
	Warmstart *bench.WarmstartResult `json:"warmstart,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: all|fig3|fig4|fig5|fig6|fig7|sigstats|ablations|obssmoke|fastpathdiff|sadiff|ipdiff|profdiff|pardiff|jitdiff|cachediff|scaling")
		scale      = fs.Float64("scale", 0.25, "workload scale (1.0 = full size)")
		msec       = fs.Float64("msec", 0, "timeslice interval in virtual ms (0 = scale-proportional default)")
		maxSlices  = fs.Int("spmp", 8, "maximum running slices for suite runs")
		benchmarks = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all 26)")
		csvDir     = fs.String("csv", "", "directory to also write <experiment>.csv files into")
		jobs       = fs.Int("j", 0, "host worker-pool size (0 = $SPBENCH_J, else GOMAXPROCS; 1 = serial)")
		workers    = fs.Int("workers", 0, "slice-level worker goroutines inside each SuperPin run (results identical at any value; 0 = $SUPERPIN_WORKERS, then 1)")
		scaling    = fs.String("scaling", "", "comma-separated per-run worker counts to sweep for the wall-clock scaling curve (e.g. 1,2,4,8)")
		hostJSON   = fs.String("hostjson", "", "file to write host-perf metrics (wall-clock, guest-MIPS) into")
		traceDir   = fs.String("trace-dir", "", "directory to write per-benchmark Chrome trace JSON files into")
		noFastPath = fs.Bool("nofastpath", false, "disable the engine's dispatch fast paths (trace linking, superblock batching)")
		noSA       = fs.Bool("nosa", false, "disable the load-time static analysis (verifier, liveness elision, shared predecode)")
		saIntra    = fs.Bool("saintra", false, "restrict the static analysis to its intraprocedural tier (no call graph, cross-call liveness or value folding)")
		noHotTier  = fs.Bool("nohottier", false, "disable the second-tier trace compiler (profile-guided layout, register caching, spill hoisting)")
		cpuProf    = fs.String("cpuprofile", "", "write a host CPU profile (runtime/pprof) of the harness to this file")
		memProf    = fs.String("memprofile", "", "write a host heap profile of the harness to this file")
		cacheDir   = fs.String("cachedir", os.Getenv("SUPERPIN_CACHE"), "persistent artifact cache directory shared by every run (created if missing; default $SUPERPIN_CACHE; virtual results are identical warm or cold)")
		warmstart  = fs.Bool("warmstart", false, "after the experiments, measure cold vs warm vs disk-warm serial-Pin wall-clock over the configured benchmarks")
		serveAddr  = fs.String("serve", os.Getenv("SUPERPIN_SERVE"), "serve live telemetry over HTTP on this address while the harness runs (/metrics, /metrics.json, /status, /trace, /healthz, /debug/pprof/; default $SUPERPIN_SERVE; empty = off)")
		flightCap  = fs.Int("flightcap", telemetry.DefaultFlightCap, "flight-recorder ring capacity in events for -serve/-lastgasp")
		lastGasp   = fs.String("lastgasp", os.Getenv("SUPERPIN_LASTGASP"), "write a Perfetto trace snapshot of the flight recorder to this file on SIGTERM/SIGINT or panic (default $SUPERPIN_LASTGASP; empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 consults $SUPERPIN_WORKERS)", *workers)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := writeMemProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "spbench: memprofile:", err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.MaxSlices = *maxSlices
	cfg.Workers = *jobs
	cfg.SPWorkers = *workers
	cfg.TraceDir = *traceDir
	cfg.NoFastPath = *noFastPath
	cfg.NoSA = *noSA
	cfg.NoHotTier = *noHotTier
	cfg.SAIntra = *saIntra
	if *msec > 0 {
		cfg.TimesliceMSec = *msec
	} else {
		// Keep the slice-count-per-run ratio roughly constant across
		// scales (the paper uses 2 s slices on minutes-long runs).
		cfg.TimesliceMSec = 500 * *scale / 0.25
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *cacheDir != "" {
		store, err := artifact.NewDiskStore(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Artifacts = store
	}

	// Live telemetry plane (-serve / -lastgasp): one registry and one
	// flight-recorder ring shared by every run the harness performs, so
	// /status shows the whole invocation's progress. Inert when both
	// flags are off — the harness then runs registry- and tracer-free.
	plane, err := telemetry.StartPlane(telemetry.PlaneOptions{
		ServeAddr: *serveAddr,
		LastGasp:  *lastGasp,
		FlightCap: *flightCap,
	})
	if err != nil {
		return err
	}
	defer plane.Close()
	defer plane.Recorder.DumpOnPanic(plane.LastGasp)
	cfg.Metrics = plane.Metrics
	cfg.LiveTrace = plane.Tracer

	emit := func(name string, t *report.Table) error {
		fmt.Println(t)
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(t.CSV()), 0o644)
	}

	start := time.Now()
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	// Host-perf accounting for -hostjson: every suite Result stands for
	// at least three executions of its benchmark.
	var suiteIns uint64
	var hostTotals bench.HostCounters
	suiteRuns := 0
	account := func(rs []*bench.Result) {
		for _, r := range rs {
			suiteIns += 3 * r.Ins
			suiteRuns += 3
			hostTotals.Dispatches += r.Host.Dispatches
			hostTotals.LinkHits += r.Host.LinkHits
			hostTotals.LinkMisses += r.Host.LinkMisses
			hostTotals.LinkInvalidations += r.Host.LinkInvalidations
			hostTotals.SuperblockIns += r.Host.SuperblockIns
			hostTotals.HotPromotions += r.Host.HotPromotions
			hostTotals.HotIns += r.Host.HotIns
			hostTotals.HoistedSaves += r.Host.HoistedSaves
			hostTotals.HotLinkHits += r.Host.HotLinkHits
		}
	}

	if want("fig3") || want("fig4") {
		t3, rs, err := bench.Fig3(cfg)
		if err != nil {
			return err
		}
		account(rs)
		if want("fig3") {
			if err := emit("fig3", t3); err != nil {
				return err
			}
			ran = true
		}
		if want("fig4") {
			t4, _, err := bench.Fig4(cfg, rs)
			if err != nil {
				return err
			}
			if err := emit("fig4", t4); err != nil {
				return err
			}
			ran = true
		}
	}
	if want("fig5") {
		t5, rs, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		account(rs)
		if err := emit("fig5", t5); err != nil {
			return err
		}
		ran = true
	}
	if want("fig6") {
		t6, _, err := bench.Fig6(cfg, nil)
		if err != nil {
			return err
		}
		if err := emit("fig6", t6); err != nil {
			return err
		}
		ran = true
	}
	if want("fig7") {
		t7, _, err := bench.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		if err := emit("fig7", t7); err != nil {
			return err
		}
		ran = true
	}
	if want("sigstats") {
		ts, _, err := bench.SigStats(cfg)
		if err != nil {
			return err
		}
		if err := emit("sigstats", ts); err != nil {
			return err
		}
		ran = true
	}
	if want("ablations") {
		tq, _, err := bench.AblationQuickCheck(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_quickcheck", tq); err != nil {
			return err
		}
		tr, _, err := bench.AblationSysRecs(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_sysrecs", tr); err != nil {
			return err
		}
		tc, _, err := bench.AblationSharedCache(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_sharedcache", tc); err != nil {
			return err
		}
		tt, _, err := bench.AblationThrottle(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_throttle", tt); err != nil {
			return err
		}
		ran = true
	}
	if *exp == "fastpathdiff" {
		t := report.New("Fast-path differential: fast vs -nofastpath, identical virtual results",
			"benchmark", "tool", "ins", "pin cycles", "sp cycles", "link hits", "sb ins", "events", "verdict")
		var checks []string
		for _, kind := range []bench.ToolKind{bench.Icount1, bench.Icount2} {
			reports, err := bench.RunFastPathDiff(cfg, kind)
			if err != nil {
				return err
			}
			for _, r := range reports {
				t.Row(r.Name, kind.String(), r.Ins, uint64(r.PinCycles), uint64(r.SPCycles),
					r.LinkHits, r.SuperblockIns, r.Events, "ok")
				checks = r.Checks
			}
		}
		if err := emit("fastpathdiff", t); err != nil {
			return err
		}
		if len(checks) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "sadiff" {
		t := report.New("Static-analysis differential: SA vs -nosa, identical virtual results",
			"benchmark", "tool", "ins", "pin cycles", "sp cycles", "shared runs", "saved regs (sa/nosa)", "events", "verdict")
		var checks []string
		for _, kind := range []bench.ToolKind{bench.Icount1, bench.Icount2} {
			reports, err := bench.RunSADiff(cfg, kind)
			if err != nil {
				return err
			}
			for _, r := range reports {
				t.Row(r.Name, kind.String(), r.Ins, uint64(r.PinCycles), uint64(r.SPCycles),
					r.SharedRuns, fmt.Sprintf("%d/%d", r.SavedRegsSA, r.SavedRegsRef), r.Events, "ok")
				checks = r.Checks
			}
		}
		if err := emit("sadiff", t); err != nil {
			return err
		}
		if len(checks) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "ipdiff" {
		reports, err := bench.RunIPDiff(cfg)
		if err != nil {
			return err
		}
		t := report.New("Interprocedural-analysis differential: full vs -saintra vs -nosa, identical virtual results",
			"benchmark", "ins", "pin cycles", "sp cycles", "saved regs (full/intra/nosa)", "folded sites", "folded preds", "hits", "events", "verdict")
		for _, r := range reports {
			t.Row(r.Name, r.Ins, uint64(r.PinCycles), uint64(r.SPCycles),
				fmt.Sprintf("%d/%d/%d", r.SavedRegsFull, r.SavedRegsIntra, r.SavedRegsRef),
				r.FoldedSites, r.FoldedPreds, r.Hits, r.Events, "ok")
		}
		if err := emit("ipdiff", t); err != nil {
			return err
		}
		if len(reports) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range reports[0].Checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "profdiff" {
		reports, err := bench.RunProfDiff(cfg, bench.Icount1)
		if err != nil {
			return err
		}
		t := report.New("Profile differential: native vs serial Pin vs SuperPin-merged, fast and -nofastpath",
			"benchmark", "ins", "interval", "samples", "max stack", "slices", "sp cycles", "verdict")
		for _, r := range reports {
			t.Row(r.Name, r.Ins, r.Interval, r.Samples, r.MaxStack, r.Slices, uint64(r.SPCycles), "ok")
		}
		if err := emit("profdiff", t); err != nil {
			return err
		}
		if len(reports) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range reports[0].Checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "pardiff" {
		reports, err := bench.RunParDiff(cfg)
		if err != nil {
			return err
		}
		t := report.New("Host-parallelism differential: 1/2/4/8 workers, identical virtual results",
			"benchmark", "ins", "slices", "icount1 cycles", "icount2 cycles", "events", "verdict")
		for _, r := range reports {
			t.Row(r.Name, r.Ins, r.Slices, uint64(r.Icount1Cycles), uint64(r.Icount2Cycles), r.Events, "ok")
		}
		if err := emit("pardiff", t); err != nil {
			return err
		}
		if len(reports) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range reports[0].Checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "jitdiff" {
		t := report.New("Hot-tier differential: hot vs -nohottier, identical virtual results",
			"benchmark", "tool", "ins", "pin cycles", "sp cycles", "promos (pin/sp)", "hot ins", "link hits", "hoisted", "events", "verdict")
		var checks []string
		for _, kind := range []bench.ToolKind{bench.Icount1, bench.Icount2} {
			reports, err := bench.RunJITDiff(cfg, kind)
			if err != nil {
				return err
			}
			for _, r := range reports {
				t.Row(r.Name, kind.String(), r.Ins, uint64(r.PinCycles), uint64(r.SPCycles),
					fmt.Sprintf("%d/%d", r.Promotions, r.SPPromotions),
					r.HotIns, r.HotLinkHits, r.SPHoistedSaves, r.Events, "ok")
				checks = r.Checks
			}
		}
		if err := emit("jitdiff", t); err != nil {
			return err
		}
		if len(checks) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "obssmoke" {
		reports, err := bench.RunObsSmoke(cfg, bench.Icount1)
		if err != nil {
			return err
		}
		t := report.New("Observability smoke: trace invariants per benchmark",
			"benchmark", "events", "slices", "verdict")
		for _, r := range reports {
			t.Row(r.Name, r.Events, r.Slices, "ok")
		}
		if err := emit("obssmoke", t); err != nil {
			return err
		}
		if len(reports) > 0 {
			fmt.Println("invariants checked:")
			for _, c := range reports[0].Checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "cachediff" {
		t := report.New("Artifact-cache differential: cold vs warm vs disk-warm, identical virtual results",
			"benchmark", "tool", "ins", "pin cycles", "sp cycles", "warm promos", "ttfp (cold/warm)", "disk hits", "events", "verdict")
		var checks []string
		for _, kind := range []bench.ToolKind{bench.Icount1, bench.Icount2} {
			reports, err := bench.RunCacheDiff(cfg, kind)
			if err != nil {
				return err
			}
			for _, r := range reports {
				t.Row(r.Name, kind.String(), r.Ins, uint64(r.PinCycles), uint64(r.SPCycles),
					r.WarmPromotions, fmt.Sprintf("%d/%d", r.ColdTTFP, r.WarmTTFP),
					r.DiskHits, r.Events, "ok")
				checks = r.Checks
			}
		}
		if err := emit("cachediff", t); err != nil {
			return err
		}
		if len(checks) > 0 {
			fmt.Println("equalities checked:")
			for _, c := range checks {
				fmt.Println("  -", c)
			}
		}
		ran = true
	}
	if *exp == "scaling" {
		// Standalone scaling sweep: default to the canonical worker counts.
		if *scaling == "" {
			*scaling = "1,2,4,8"
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	elapsed := time.Since(start)
	fmt.Printf("(scale %.2f, timeslice %.0f ms, elapsed %s)\n", cfg.Scale, cfg.TimesliceMSec, elapsed.Round(time.Millisecond))

	var scalePoints []bench.ScalePoint
	if *scaling != "" {
		ws, err := parseWorkerList(*scaling)
		if err != nil {
			return err
		}
		scalePoints, err = bench.RunScaling(cfg, ws)
		if err != nil {
			return err
		}
		st := report.New("Wall-clock vs per-run workers (SuperPin-only serial sweep, virtual results identical)",
			"workers", "elapsed (s)", "speedup")
		for _, p := range scalePoints {
			st.Row(p.Workers, fmt.Sprintf("%.3f", p.ElapsedSec), fmt.Sprintf("%.2fx", p.Speedup))
		}
		if err := emit("scaling", st); err != nil {
			return err
		}
	}

	// The warmstart sweep runs after the elapsed snapshot, like -scaling,
	// so the headline guest-MIPS stays comparable across artifacts that
	// did and did not request it.
	var warmRes *bench.WarmstartResult
	if *warmstart {
		wr, err := bench.RunWarmstart(cfg)
		if err != nil {
			return err
		}
		warmRes = wr
		wt := report.New("Warm-start wall-clock (serial Pin sweep over the configured benchmarks)",
			"pass", "elapsed (s)", "ttfp dispatches", "warm promos")
		wt.Row("cold", fmt.Sprintf("%.3f", warmRes.ColdSec), warmRes.ColdTTFP, uint64(0))
		wt.Row("warm", fmt.Sprintf("%.3f", warmRes.WarmSec), warmRes.WarmTTFP, warmRes.WarmPromotions)
		wt.Row("disk-warm", fmt.Sprintf("%.3f", warmRes.DiskSec), uint64(0), uint64(0))
		if err := emit("warmstart", wt); err != nil {
			return err
		}
		fmt.Printf("warm-start speedup: %.2fx (cold %.3fs -> warm %.3fs)\n",
			warmRes.Speedup, warmRes.ColdSec, warmRes.WarmSec)
	}

	if *hostJSON != "" {
		hp := hostPerf{
			ElapsedSec: elapsed.Seconds(),
			Workers:    *jobs,
			SPWorkers:  *workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      cfg.Scale,
			SuiteRuns:  suiteRuns,
			GuestIns:   suiteIns,
			NoFastPath: *noFastPath,
			Host:       hostTotals,
			Scaling:    scalePoints,
			Warmstart:  warmRes,
		}
		if hp.ElapsedSec > 0 {
			hp.GuestMIPS = float64(suiteIns) / (hp.ElapsedSec * 1e6)
		}
		data, err := json.MarshalIndent(hp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*hostJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseWorkerList parses a comma-separated list of worker counts.
func parseWorkerList(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -scaling entry %q", part)
		}
		ws = append(ws, v)
	}
	return ws, nil
}

// writeMemProfile snapshots the host heap after a GC.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
