package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{},                                  // no app
		{"--", "a", "b"},                    // two apps
		{"-t", "nosuchtool", "--", "gzip"},  // unknown tool
		{"--", "nosuchbench"},               // unknown app
		{"-sp", "1", "--", "missing.svasm"}, // missing file
		{"-nosuchflag", "--", "gzip"},       // unknown flag
		{"-sp", "banana", "--", "gzip"},     // unparsable flag value
		{"-t", "dcache", "-cachebytes", "1000", "--", "gzip"},   // bad geometry
		{"-t", "acache", "-linebytes", "48", "--", "gzip"},      // line not power of two
		{"-t", "sampler", "-sampler-budget", "0", "--", "gzip"}, // bad budget
		{"-t", "acache", "-ways", "0", "--", "gzip"},            // bad associativity
		{"-workers", "-1", "--", "gzip"},                        // negative worker count
		{"-workers", "-3", "-sp", "0", "--", "gzip"},            // negative workers, Pin mode
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunHelpIsNotAnError: -h prints usage via flag.ContinueOnError and
// must exit zero, unlike a genuinely bad flag.
func TestRunHelpIsNotAnError(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
}

func TestRunCatalogBenchmarkBothModes(t *testing.T) {
	for _, args := range [][]string{
		{"-t", "icount2", "-scale", "0.01", "-spmsec", "50", "--", "gzip"},
		{"-t", "icount1", "-sp", "0", "-scale", "0.01", "--", "gzip"},
		{"-t", "dcache", "-scale", "0.01", "-spmsec", "50", "--", "mcf"},
		{"-t", "icount2", "-scale", "0.01", "-spmsec", "50", "-nohottier", "--", "gzip"},
		{"-t", "icount2", "-sp", "0", "-scale", "0.01", "-nohottier", "--", "gzip"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunAssemblyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.svasm")
	src := `
	li r10, 0
	li r11, 50000
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	li r2, 0
	syscall
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-t", "icount2", "-spmsec", "100", "--", path}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeToolAllNames(t *testing.T) {
	tc := toolConfig{samplerBudget: 100, cacheBytes: 1 << 14, lineBytes: 32, ways: 4}
	for _, name := range []string{"icount1", "icount2", "dcache", "acache", "itrace",
		"branchprof", "opmix", "sampler", "bbcount", "callprof", "memprofile"} {
		if _, err := makeTool(name, tc); err != nil {
			t.Errorf("makeTool(%q): %v", name, err)
		}
	}
}

// TestRunTraceAndMetricsOutput: -trace must emit valid Chrome trace JSON
// with per-track non-decreasing timestamps, and -metrics valid JSON.
func TestRunTraceAndMetricsOutput(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.json")
	metrics := filepath.Join(dir, "metrics.json")
	args := []string{"-t", "icount2", "-scale", "0.01", "-spmsec", "50",
		"-compare=false", "-trace", trace, "-metrics", metrics, "--", "gzip"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	last := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		key := [2]int{ev.PID, ev.TID}
		if ev.Ts < last[key] {
			t.Fatalf("track %v went backwards: %v after %v", key, ev.Ts, last[key])
		}
		last[key] = ev.Ts
	}

	mraw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(mraw, &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if len(m) == 0 {
		t.Fatal("metrics registry is empty")
	}

	// The dispatch fast-path counters must be published (the keys exist
	// even when a counter is zero), and this icount2 run must actually
	// have exercised both trace linking and superblock batching.
	counters, ok := m["counters"].(map[string]any)
	if !ok {
		t.Fatalf("metrics JSON has no counters object: %v", m)
	}
	for _, key := range []string{"pin.link.hits", "pin.link.misses", "pin.link.invalidations", "pin.superblock.ins"} {
		if _, ok := counters[key]; !ok {
			t.Errorf("metrics missing counter %q", key)
		}
	}
	for _, key := range []string{"pin.link.hits", "pin.superblock.ins"} {
		if v, _ := counters[key].(float64); v == 0 {
			t.Errorf("counter %q is zero; fast path did not engage", key)
		}
	}
}

// TestRunPinModeTrace: the -sp 0 serial-Pin path must also honour -trace.
func TestRunPinModeTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "pin.json")
	args := []string{"-t", "icount1", "-sp", "0", "-scale", "0.01",
		"-compare=false", "-trace", trace, "--", "gzip"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("pin trace is not valid JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) == 0 {
		t.Fatal("pin trace has no events")
	}
}

// TestRunCacheDir: -cachedir creates a missing (nested) directory,
// persists artifacts into it, and a second run warm-starts from them
// while publishing artifact metrics.
func TestRunCacheDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "cache")
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	args := []string{"-t", "icount1", "-sp", "0", "-scale", "0.01",
		"-compare=false", "-cachedir", dir, "--", "gzip"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("cache dir holds %d entries, want predecode+sa+seed", len(ents))
	}
	if err := run([]string{"-t", "icount1", "-sp", "0", "-scale", "0.01",
		"-compare=false", "-cachedir", dir, "-metrics", metrics, "--", "gzip"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Gauges["artifact.disk.hits"] == 0 {
		t.Fatalf("second run read nothing from the cache: %v", m.Gauges)
	}
	// Both modes must accept the directory; SuperPin publishes through
	// the core engine's metrics path.
	if err := run([]string{"-t", "icount2", "-scale", "0.01", "-spmsec", "50",
		"-compare=false", "-cachedir", dir, "--", "gzip"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCacheDirUnusable: a path that cannot become a directory (it
// runs through a regular file, so MkdirAll fails even for root) must be
// a clear non-zero-exit error, in both modes.
func TestRunCacheDirUnusable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-sp", "0", "-scale", "0.01", "-cachedir", filepath.Join(file, "sub"), "--", "gzip"},
		{"-scale", "0.01", "-cachedir", file, "--", "gzip"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded with an unusable cache dir", args)
		}
	}
}
