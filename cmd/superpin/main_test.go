package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{},                                  // no app
		{"--", "a", "b"},                    // two apps
		{"-t", "nosuchtool", "--", "gzip"},  // unknown tool
		{"--", "nosuchbench"},               // unknown app
		{"-sp", "1", "--", "missing.svasm"}, // missing file
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestRunCatalogBenchmarkBothModes(t *testing.T) {
	for _, args := range [][]string{
		{"-t", "icount2", "-scale", "0.01", "-spmsec", "50", "--", "gzip"},
		{"-t", "icount1", "-sp", "0", "-scale", "0.01", "--", "gzip"},
		{"-t", "dcache", "-scale", "0.01", "-spmsec", "50", "--", "mcf"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunAssemblyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.svasm")
	src := `
	li r10, 0
	li r11, 50000
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	li r2, 0
	syscall
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-t", "icount2", "-spmsec", "100", "--", path}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeToolAllNames(t *testing.T) {
	for _, name := range []string{"icount1", "icount2", "dcache", "acache", "itrace",
		"branchprof", "opmix", "sampler", "bbcount", "callprof", "memprofile"} {
		if _, err := makeTool(name, 100); err != nil {
			t.Errorf("makeTool(%q): %v", name, err)
		}
	}
}
