// Command superpin runs an application on the simulated machine under a
// Pintool, in native, traditional-Pin or SuperPin mode — the analogue of
// the paper's `pin -t pintool -- application` command line, including the
// SuperPin switches -sp, -spmsec, -spmp and -spsysrecs.
//
// The application is either a benchmark from the built-in synthetic
// SPEC2000 catalog or an SVR32 assembly file:
//
//	superpin -t icount2 -sp 1 -spmsec 500 -- gcc
//	superpin -t dcache -- mcf
//	superpin -t icount1 -sp 0 -- path/to/program.svasm
//
// Tools: icount1, icount2, dcache, acache (set-associative LRU), itrace,
// branchprof, opmix, sampler, bbcount, callprof, memprofile.
//
// Observability: -trace out.json writes the measured run's event stream
// as Chrome trace-format JSON (loadable in Perfetto; any other file
// extension gets the plain-text log), and -metrics out.json writes the
// run's metrics registry snapshot. Both are off by default and cost
// nothing when off. -trace buffers through a bounded ring (-tracecap
// events, oldest dropped first).
//
// Live telemetry: -serve ADDR (or $SUPERPIN_SERVE) starts an HTTP
// server with /metrics (Prometheus text), /metrics.json, /status (live
// guest-MIPS and slice states), /trace (the flight recorder as Chrome
// trace JSON), /healthz and /debug/pprof/. -lastgasp FILE (or
// $SUPERPIN_LASTGASP) dumps the flight recorder's last -flightcap
// events on panic or SIGTERM/SIGINT. See DESIGN.md section 10.
//
// Profiling: -profile prof.json and/or -fold prof.folded attach the
// virtual-time guest profiler (sampling interval -profint, in retired
// guest instructions), print a hotspot table, and write the JSON
// artifact and/or flamegraph.pl-ready folded stacks. The profiler
// charges no virtual cycles and produces byte-identical samples in Pin
// and SuperPin mode:
//
//	superpin -t icount2 -profile gcc.prof.json -fold gcc.folded -- gcc
//
// Host-side profiling of the simulator itself: -cpuprofile / -memprofile
// write runtime/pprof profiles.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"superpin/internal/artifact"
	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/pin"
	"superpin/internal/prof"
	"superpin/internal/report"
	"superpin/internal/telemetry"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "superpin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("superpin", flag.ContinueOnError)
	var (
		toolName   = fs.String("t", "icount2", "pintool: icount1|icount2|dcache|acache|itrace|branchprof|opmix|sampler|bbcount|callprof|memprofile")
		sp         = fs.Int("sp", 1, "1 = SuperPin mode, 0 = traditional Pin mode")
		spmsec     = fs.Float64("spmsec", 1000, "timeslice interval in virtual milliseconds")
		spmp       = fs.Int("spmp", 8, "maximum number of running slices")
		spsysrecs  = fs.Int("spsysrecs", 1000, "max syscall records per slice (0 disables recording)")
		spmemcheck = fs.Bool("spmemcheck", false, "enable the memory-operand signature extension")
		cpus       = fs.Int("cpus", 8, "physical CPUs of the simulated machine")
		ht         = fs.Bool("ht", true, "enable hyperthreading (doubles CPU contexts)")
		scale      = fs.Float64("scale", 0.2, "workload scale for catalog benchmarks")
		compare    = fs.Bool("compare", true, "also run natively and report relative runtime")
		budget     = fs.Int("sampler-budget", 1000, "per-slice instruction budget for the sampler tool")
		timeline   = fs.Bool("timeline", false, "print an ASCII schedule of the run (paper Figure 1)")
		detector   = fs.String("detector", "state", "boundary detector: state (paper Section 4.4) | iphistory (the rejected alternative)")
		workers    = fs.Int("workers", 0, "host goroutines executing slices concurrently (results are byte-identical at any value; 0 = $SUPERPIN_WORKERS, then 1)")
		threads    = fs.Bool("threads", false, "enable deterministic thread replay for multithreaded guests (Section 8)")
		tracePath  = fs.String("trace", "", "write the measured run's event trace to this file (.json = Chrome trace format for Perfetto, else plain text)")
		metricsOut = fs.String("metrics", "", "write the measured run's metrics registry to this file as JSON")
		cacheBytes = fs.Int("cachebytes", 1<<14, "dcache/acache total size in bytes")
		lineBytes  = fs.Int("linebytes", 32, "dcache/acache line size in bytes")
		ways       = fs.Int("ways", 4, "acache associativity")
		noFastPath = fs.Bool("nofastpath", false, "disable the engine's dispatch fast paths (trace linking, superblock batching); virtual results are identical")
		noSA       = fs.Bool("nosa", false, "disable the load-time static analysis (verifier, liveness-guided save/restore elision, shared predecode); virtual results are identical")
		noHotTier  = fs.Bool("nohottier", false, "disable the second-tier trace compiler (profile-guided layout, register caching, spill hoisting); virtual results are identical")
		profJSON   = fs.String("profile", "", "write the guest profile (PC + shadow call stack samples) as JSON to this file; enables the profiler")
		profFold   = fs.String("fold", "", "write the guest profile as folded stacks (flamegraph.pl input) to this file; enables the profiler")
		profInt    = fs.Uint64("profint", 0, "profiler sampling interval in retired guest instructions (0 = 10007 when -profile/-fold given, else off)")
		profTop    = fs.Int("top", 10, "rows in the profiler hotspot table")
		cpuProf    = fs.String("cpuprofile", "", "write a host CPU profile (runtime/pprof) of the simulator to this file")
		memProf    = fs.String("memprofile", "", "write a host heap profile of the simulator to this file")
		cacheDir   = fs.String("cachedir", os.Getenv("SUPERPIN_CACHE"), "persistent artifact cache directory (predecode, static analysis, hot-trace seeds; created if missing; default $SUPERPIN_CACHE; virtual results are identical warm or cold)")
		serveAddr  = fs.String("serve", os.Getenv("SUPERPIN_SERVE"), "serve live telemetry over HTTP on this address (/metrics, /metrics.json, /status, /trace, /healthz, /debug/pprof/; default $SUPERPIN_SERVE; empty = off)")
		traceCap   = fs.Int("tracecap", 1<<20, "max events held by the -trace tracer (drop-oldest ring; <= 0 = unbounded)")
		flightCap  = fs.Int("flightcap", telemetry.DefaultFlightCap, "flight-recorder ring capacity in events when -serve/-lastgasp create their own tracer")
		lastGasp   = fs.String("lastgasp", os.Getenv("SUPERPIN_LASTGASP"), "write a Perfetto trace snapshot of the flight recorder to this file on SIGTERM/SIGINT or panic (default $SUPERPIN_LASTGASP; empty = off)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: superpin [flags] -- <benchmark|file.svasm>")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\nbenchmarks:", strings.Join(workload.Names(), " "))
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// flag.ContinueOnError has already printed the problem and the
		// usage text; returning the error makes main exit non-zero.
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one application expected, got %d", fs.NArg())
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 consults $SUPERPIN_WORKERS)", *workers)
	}
	app := fs.Arg(0)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		// Written on the way out so the heap reflects the whole run; a
		// failure here is a warning, not a run failure.
		defer func() {
			if err := writeMemProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "superpin: memprofile:", err)
			}
		}()
	}

	profInterval := *profInt
	if profInterval == 0 && (*profJSON != "" || *profFold != "") {
		// Default interval: prime, so samples do not lock onto loop
		// periods; ~100 samples per million guest instructions.
		profInterval = 10007
	}

	prog, spec, err := loadApp(app, *scale)
	if err != nil {
		return err
	}

	kcfg := kernel.DefaultConfig()
	kcfg.CPUs = *cpus
	kcfg.Hyperthreading = *ht
	kcfg.MaxCycles = 500_000_000_000

	factory, err := makeTool(*toolName, toolConfig{
		samplerBudget: *budget,
		cacheBytes:    *cacheBytes,
		lineBytes:     *lineBytes,
		ways:          *ways,
	})
	if err != nil {
		return err
	}

	// The tracer and metrics registry attach to the measured run only;
	// the -compare native run stays untraced (each run has its own
	// kernel and PID space, so mixing their events in one stream would
	// be incoherent).
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewRingTracer(*traceCap)
	}
	var metrics *obs.Metrics
	if *metricsOut != "" {
		metrics = obs.NewMetrics()
	}

	// The telemetry plane (-serve, -lastgasp) rides on the same registry
	// and tracer; when neither -metrics nor -trace asked for them, the
	// plane creates its own (registry + flight-recorder ring). Inert —
	// nothing allocated, nothing attached — when both flags are off.
	plane, err := telemetry.StartPlane(telemetry.PlaneOptions{
		ServeAddr: *serveAddr,
		LastGasp:  *lastGasp,
		FlightCap: *flightCap,
		Metrics:   metrics,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	defer plane.Close()
	defer plane.Recorder.DumpOnPanic(plane.LastGasp)
	tracer = plane.Tracer
	metrics = plane.Metrics

	// The artifact store exists only when a cache directory is given: a
	// single CLI run has no second execution to share with, so without
	// persistence the store would be pure overhead.
	var store *artifact.Store
	if *cacheDir != "" {
		store, err = artifact.NewDiskStore(*cacheDir)
		if err != nil {
			return err
		}
	}

	var nativeTime kernel.Cycles
	if *compare {
		nres, err := core.RunNativeCached(kcfg, prog, spec.NativeMemCost, 0, store)
		if err != nil {
			return fmt.Errorf("native run: %w", err)
		}
		nativeTime = nres.Time
		fmt.Printf("native:   %12d cycles (%.2f vsec), %d instructions\n",
			nres.Time, kcfg.Cost.Seconds(nres.Time), nres.Ins)
	}

	if *sp == 0 {
		pcost := pin.DefaultCost()
		pcost.MemSurcharge = spec.PinMemCost
		pcost.NoFastPath = *noFastPath
		pcost.NoSA = *noSA
		pcost.NoHotTier = *noHotTier
		pcfg := kcfg
		pcfg.Trace = tracer
		pcfg.Metrics = metrics
		res, err := core.RunPinCached(pcfg, prog, factory, pcost, profInterval, store)
		if err != nil {
			return fmt.Errorf("pin run: %w", err)
		}
		fmt.Printf("pin:      %12d cycles (%.2f vsec), %d instructions, exit %d\n",
			res.Time, kcfg.Cost.Seconds(res.Time), res.Ins, res.ExitCode)
		if nativeTime > 0 {
			fmt.Printf("relative: %.1f%% of native\n", 100*float64(res.Time)/float64(nativeTime))
		}
		core.PublishPinMetrics(metrics, res)
		store.PublishMetrics(metrics)
		if err := writeProfOutputs(res.Profile, prog, *profJSON, *profFold, *profTop); err != nil {
			return err
		}
		return writeObsOutputs(*tracePath, tracer, *metricsOut, metrics)
	}

	opts := core.DefaultOptions()
	opts.SliceMSec = *spmsec
	opts.MaxSlices = *spmp
	opts.MaxSysRecs = *spsysrecs
	opts.MemCheck = *spmemcheck
	opts.Threads = *threads
	switch *detector {
	case "state":
		opts.Detector = core.DetectorState
	case "iphistory":
		opts.Detector = core.DetectorIPHistory
	default:
		return fmt.Errorf("unknown detector %q", *detector)
	}
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.PinCost.NoFastPath = *noFastPath
	opts.PinCost.NoSA = *noSA
	opts.PinCost.NoHotTier = *noHotTier
	opts.NativeMemSurcharge = spec.NativeMemCost
	opts.ProfInterval = profInterval
	opts.Workers = *workers
	opts.Trace = tracer
	opts.Metrics = metrics
	opts.Artifacts = store
	res, err := core.Run(kcfg, prog, factory, opts)
	if err != nil {
		return fmt.Errorf("superpin run: %w", err)
	}
	fmt.Printf("superpin: %12d cycles (%.2f vsec), master %d ins, %d slices, exit %d\n",
		res.TotalTime, kcfg.Cost.Seconds(res.TotalTime), res.MasterIns, res.Stats.Forks, res.ExitCode)
	st := res.Stats
	fmt.Printf("slices:   %d syscall-bounded, %d timeout-bounded, %d stalls, %d syscall records\n",
		st.SyscallForks, st.TimeoutForks, st.Stalls, st.SysRecords)
	fmt.Printf("detect:   %d quick checks, %d full, %d stack (%.2f%% quick->full)\n",
		st.QuickChecks, st.FullChecks, st.StackChecks,
		100*safeDiv(float64(st.FullChecks), float64(st.QuickChecks)))
	if nativeTime > 0 {
		nat, forkO, sleep, pipe := res.Breakdown(nativeTime)
		sec := kcfg.Cost.Seconds
		fmt.Printf("breakdown: native %.2f + fork&others %.2f + sleep %.2f + pipeline %.2f vsec\n",
			sec(nat), sec(forkO), sec(sleep), sec(pipe))
		fmt.Printf("relative: %.1f%% of native\n", 100*float64(res.TotalTime)/float64(nativeTime))
	}
	if *timeline {
		fmt.Println()
		fmt.Print(res.Timeline(100))
	}
	if err := writeProfOutputs(res.Profile, prog, *profJSON, *profFold, *profTop); err != nil {
		return err
	}
	if err := writeObsOutputs(*tracePath, tracer, *metricsOut, metrics); err != nil {
		return err
	}
	if res.Err != nil {
		return fmt.Errorf("run completed with slice errors: %w", res.Err)
	}
	return nil
}

// writeProfOutputs prints the hotspot table and writes the requested
// profile artifacts. No-op when p is nil (profiling was off).
func writeProfOutputs(p *prof.Profile, prog *asm.Program, jsonPath, foldPath string, top int) error {
	if p == nil {
		return nil
	}
	symtab := prof.NewSymtab(prog.Symbols)
	title := fmt.Sprintf("Guest hotspots (%d samples, every %d instructions)", len(p.Samples), p.Interval)
	fmt.Println(report.HotspotTable(title, p, symtab, top))
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		err = p.WriteJSON(f, symtab)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing profile: %w", err)
		}
	}
	if foldPath != "" {
		if err := os.WriteFile(foldPath, []byte(p.Folded(symtab)), 0o644); err != nil {
			return fmt.Errorf("writing folded stacks: %w", err)
		}
	}
	return nil
}

// writeMemProfile snapshots the host heap after a GC.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeObsOutputs writes the requested trace and metrics files.
func writeObsOutputs(tracePath string, tracer *obs.Tracer, metricsPath string, metrics *obs.Metrics) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		events := tracer.Events()
		if strings.HasSuffix(tracePath, ".json") {
			err = obs.WriteChromeTrace(f, events)
		} else {
			err = obs.WriteText(f, events)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = metrics.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// loadApp resolves a catalog benchmark name or assembles a .svasm file.
func loadApp(app string, scale float64) (*asm.Program, workload.Spec, error) {
	if spec, ok := workload.ByName(app); ok {
		spec = spec.Scaled(scale)
		prog, err := spec.Build()
		return prog, spec, err
	}
	if strings.HasSuffix(app, ".svasm") {
		src, err := os.ReadFile(app)
		if err != nil {
			return nil, workload.Spec{}, err
		}
		prog, err := asm.Assemble(string(src))
		return prog, workload.Spec{Name: app}, err
	}
	return nil, workload.Spec{}, fmt.Errorf("unknown application %q (not a catalog benchmark or .svasm file)", app)
}

// toolConfig carries the user-supplied tool parameters.
type toolConfig struct {
	samplerBudget int
	cacheBytes    int
	lineBytes     int
	ways          int
}

// makeTool builds the named tool's per-process factory. Invalid tool
// parameters (cache geometry, sampler budget) come back as errors, which
// main reports on stderr with a non-zero exit.
func makeTool(name string, tc toolConfig) (core.ToolFactory, error) {
	switch name {
	case "icount1":
		return tools.NewIcount1(os.Stdout).Factory(), nil
	case "icount2":
		return tools.NewIcount2(os.Stdout).Factory(), nil
	case "dcache":
		d, err := tools.NewDCache(tc.cacheBytes, tc.lineBytes, os.Stdout)
		if err != nil {
			return nil, err
		}
		return d.Factory(), nil
	case "acache":
		a, err := tools.NewACache(tc.cacheBytes, tc.lineBytes, tc.ways, os.Stdout)
		if err != nil {
			return nil, err
		}
		return a.Factory(), nil
	case "itrace":
		tl := tools.NewITrace(nil) // keep the trace in memory; print a summary
		return wrapITrace(tl), nil
	case "branchprof":
		return tools.NewBranchProf(os.Stdout).Factory(), nil
	case "opmix":
		return tools.NewOpMix(os.Stdout).Factory(), nil
	case "sampler":
		s, err := tools.NewSampler(tc.samplerBudget, os.Stdout)
		if err != nil {
			return nil, err
		}
		return s.Factory(), nil
	case "bbcount":
		return tools.NewBBCount(os.Stdout).Factory(), nil
	case "callprof":
		return tools.NewCallProf(os.Stdout).Factory(), nil
	case "memprofile":
		return tools.NewMemProfile(os.Stdout).Factory(), nil
	default:
		return nil, fmt.Errorf("unknown tool %q", name)
	}
}

// wrapITrace prints a summary instead of the full (possibly huge) trace.
func wrapITrace(tl *tools.ITrace) core.ToolFactory {
	inner := tl.Factory()
	return func(ctl *core.ToolCtl) core.Tool {
		t := inner(ctl)
		if ctl.SliceNum() == -1 {
			return finiWrapper{Tool: t, fini: func(code uint32) {
				if f, ok := t.(core.Finisher); ok {
					f.Fini(code)
				}
				fmt.Printf("itrace: %d instructions traced\n", len(tl.Trace()))
			}}
		}
		return t
	}
}

// finiWrapper overrides a tool instance's Fini.
type finiWrapper struct {
	core.Tool
	fini func(uint32)
}

func (w finiWrapper) Fini(code uint32) { w.fini(code) }
