package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.svasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssembleDisassembleRun(t *testing.T) {
	path := writeProg(t, "main:\n li r1, 1\n li r2, 3\n syscall\n")
	if err := run([]string{"-d", "-run", path}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// lintCorpus holds one hand-corrupted program per interprocedural
// verifier diagnostic. Every diagnostic is a warning, so -lint succeeds
// but must print the rule slug with a resolvable file:line (via the
// assembler's line map).
var lintCorpus = []struct {
	name string
	code string // rule slug expected in the output
	src  string
}{
	{
		name: "unreachable function",
		code: "unreachable-fn",
		// deadfn is function-shaped (it returns) but precedes the entry
		// with no call edge reaching it.
		src: `	.entry main
deadfn:
	addi r3, r0, 7
	ret
main:
	li r1, 1
	li r2, 0
	syscall
`,
	},
	{
		name: "indirect transfer into data",
		code: "indirect-data",
		// The dispatch word provably sends the jalr to 0x6100, which is
		// no discovered block leader.
		src: `	.entry main
main:
	la r4, table
	lw r5, (r4)
	jalr r31, r5, 0
	li r1, 1
	li r2, 0
	syscall
	.org 0x6000
table:
	.word 0x6100
`,
	},
	{
		name: "call imbalance",
		code: "call-imbalance",
		// f pushes 8 bytes and returns without popping them.
		src: `	.entry main
main:
	call f
	li r1, 1
	li r2, 0
	syscall
f:
	subi r29, r29, 8
	ret
`,
	},
}

// TestLintInterprocDiagnostics runs -lint over the corrupted corpus and
// demands each program surfaces its diagnostic, slug and source line
// included.
func TestLintInterprocDiagnostics(t *testing.T) {
	for _, tc := range lintCorpus {
		tc := tc
		t.Run(tc.code, func(t *testing.T) {
			path := writeProg(t, tc.src)
			out, err := captureStdout(t, func() error {
				return run([]string{"-lint", path})
			})
			if err != nil {
				t.Fatalf("%s: lint failed: %v\n%s", tc.name, err, out)
			}
			if !strings.Contains(out, tc.code) {
				t.Fatalf("%s: output does not mention %q:\n%s", tc.name, tc.code, out)
			}
			// The diagnostic must resolve to a source line: the slug's
			// line must carry the file:line prefix, not the bare-address
			// fallback form.
			found := false
			for _, line := range strings.Split(out, "\n") {
				if strings.Contains(line, tc.code) && strings.Contains(line, path+":") {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: diagnostic not resolved to a source line:\n%s", tc.name, out)
			}
		})
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"/does/not/exist.svasm"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	bad := writeProg(t, "frobnicate r1\n")
	if err := run([]string{bad}); err == nil {
		t.Fatal("bad assembly accepted")
	}
}
