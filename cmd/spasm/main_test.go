package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.svasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssembleDisassembleRun(t *testing.T) {
	path := writeProg(t, "main:\n li r1, 1\n li r2, 3\n syscall\n")
	if err := run([]string{"-d", "-run", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"/does/not/exist.svasm"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	bad := writeProg(t, "frobnicate r1\n")
	if err := run([]string{bad}); err == nil {
		t.Fatal("bad assembly accepted")
	}
}
