// Command spasm assembles, disassembles and natively runs SVR32 assembly
// files — the guest-program workbench of the SuperPin reproduction.
//
//	spasm file.svasm            # assemble, print a summary
//	spasm -d file.svasm         # assemble and disassemble
//	spasm -run file.svasm       # assemble and run natively; prints exit code
package main

import (
	"flag"
	"fmt"
	"os"

	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spasm", flag.ContinueOnError)
	var (
		disasm = fs.Bool("d", false, "print disassembly")
		doRun  = fs.Bool("run", false, "run the program natively on the simulated machine")
		cpus   = fs.Int("cpus", 1, "CPUs of the simulated machine for -run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spasm [-d] [-run] file.svasm")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("assembled %d bytes in %d segment(s), entry %#08x\n",
		prog.Size(), len(prog.Segments), prog.Entry)
	if *disasm {
		fmt.Print(asm.Disassemble(prog))
	}
	if *doRun {
		cfg := kernel.DefaultConfig()
		cfg.CPUs = *cpus
		cfg.MaxCycles = 100_000_000_000
		res, err := core.RunNative(cfg, prog, 0)
		if err != nil {
			return err
		}
		os.Stdout.Write(res.Stdout)
		fmt.Printf("exit %d after %d instructions (%d cycles, %.3f vsec)\n",
			res.ExitCode, res.Ins, res.Time, cfg.Cost.Seconds(res.Time))
	}
	return nil
}
