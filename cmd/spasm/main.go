// Command spasm assembles, disassembles, lints and natively runs SVR32
// assembly files — the guest-program workbench of the SuperPin
// reproduction.
//
//	spasm file.svasm            # assemble, print a summary
//	spasm -d file.svasm         # assemble and disassemble
//	spasm -lint file.svasm      # run the static-analysis verifier
//	spasm -run file.svasm       # assemble and run natively; prints exit code
//
// -lint runs the load-time verifier (internal/sa) over the assembled
// image and prints every diagnostic with its source line. Errors (bad
// branch targets, truncated images, stack-imbalanced loops — things the
// engine would reject at load time) exit non-zero; warnings alone
// (uninitialized reads, provable self-modifying stores) exit zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/sa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spasm", flag.ContinueOnError)
	var (
		disasm = fs.Bool("d", false, "print disassembly")
		lint   = fs.Bool("lint", false, "run the static-analysis verifier; errors exit non-zero")
		doRun  = fs.Bool("run", false, "run the program natively on the simulated machine")
		cpus   = fs.Int("cpus", 1, "CPUs of the simulated machine for -run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spasm [-d] [-lint] [-run] file.svasm")
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("assembled %d bytes in %d segment(s), entry %#08x\n",
		prog.Size(), len(prog.Segments), prog.Entry)
	if *disasm {
		fmt.Print(asm.Disassemble(prog))
	}
	if *lint {
		if err := runLint(file, prog); err != nil {
			return err
		}
	}
	if *doRun {
		cfg := kernel.DefaultConfig()
		cfg.CPUs = *cpus
		cfg.MaxCycles = 100_000_000_000
		res, err := core.RunNative(cfg, prog, 0)
		if err != nil {
			return err
		}
		os.Stdout.Write(res.Stdout)
		fmt.Printf("exit %d after %d instructions (%d cycles, %.3f vsec)\n",
			res.ExitCode, res.Ins, res.Time, cfg.Cost.Seconds(res.Time))
	}
	return nil
}

// runLint runs the load-time verifier over the assembled image and
// prints every diagnostic, resolving addresses to source lines through
// the assembler's line map. Verifier errors fail the lint; warnings
// alone do not.
func runLint(file string, prog *asm.Program) error {
	an := sa.Analyze(prog)
	diags := an.Diags()
	for _, d := range diags {
		if line, ok := prog.Lines[d.Addr]; ok {
			fmt.Printf("%s:%d: %s: %s: %s (at %#08x)\n", file, line, d.Sev, d.Code, d.Msg, d.Addr)
		} else {
			fmt.Printf("%s: %s: %s: %s at %#08x\n", file, d.Sev, d.Code, d.Msg, d.Addr)
		}
	}
	errs := an.Errors()
	fmt.Printf("lint: %d block(s), %d error(s), %d warning(s)\n",
		an.NumBlocks(), len(errs), len(diags)-len(errs))
	if len(errs) > 0 {
		return fmt.Errorf("lint failed with %d error(s)", len(errs))
	}
	return nil
}
