// Package superpin's top-level benchmarks regenerate each figure of the
// SuperPin paper (CGO 2007) at a reduced workload scale, reporting the
// figure's headline quantities as benchmark metrics:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (the numbers recorded in EXPERIMENTS.md) is
// done with cmd/spbench.
package superpin

import (
	"testing"

	"superpin/internal/bench"
)

// benchConfig is the reduced-scale configuration shared by the figure
// benchmarks: a representative six-benchmark subset including the gcc and
// mcf special cases.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.05
	cfg.TimesliceMSec = 100
	cfg.Benchmarks = []string{"gcc", "mcf", "gzip", "crafty", "mgrid", "swim"}
	return cfg
}

// BenchmarkFig3Icount1Relative regenerates Figure 3 (icount1 runtime
// under Pin and SuperPin relative to native) and reports the suite
// averages as pin-pct and superpin-pct.
func BenchmarkFig3Icount1Relative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pinAvg, spAvg, _ := bench.Averages(rs)
		b.ReportMetric(pinAvg, "pin-pct")
		b.ReportMetric(spAvg, "superpin-pct")
	}
}

// BenchmarkFig4Icount1Speedup regenerates Figure 4 (SuperPin speedup over
// Pin with icount1) and reports the average and maximum speedups.
func BenchmarkFig4Icount1Speedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig4(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := bench.Averages(rs)
		max := 0.0
		for _, r := range rs {
			if r.Speedup > max {
				max = r.Speedup
			}
		}
		b.ReportMetric(avg, "avg-speedup")
		b.ReportMetric(max, "max-speedup")
	}
}

// BenchmarkFig5Icount2Relative regenerates Figure 5 (icount2 runtime
// under Pin and SuperPin relative to native).
func BenchmarkFig5Icount2Relative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pinAvg, spAvg, _ := bench.Averages(rs)
		b.ReportMetric(pinAvg, "pin-pct")
		b.ReportMetric(spAvg, "superpin-pct")
	}
}

// BenchmarkFig6TimesliceSweep regenerates Figure 6 (gcc runtime versus
// timeslice interval with the native / fork&others / sleep / pipeline
// decomposition) and reports the best total and its pipeline share.
func BenchmarkFig6TimesliceSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Fig6(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[0]
		for _, r := range rows {
			if r.Total < best.Total {
				best = r
			}
		}
		b.ReportMetric(best.Total, "best-total-vsec")
		b.ReportMetric(best.Pipeline, "best-pipeline-vsec")
	}
}

// BenchmarkFig7ParallelismSweep regenerates Figure 7 (gcc runtime versus
// maximum running slices on the hyperthreaded 8-way machine) and reports
// the 1-slice to 8-slice improvement and the 8-to-16 saturation ratio.
func BenchmarkFig7ParallelismSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Fig7(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		byMP := map[int]float64{}
		for _, r := range rows {
			byMP[r.MaxSlices] = r.Seconds
		}
		b.ReportMetric(byMP[1]/byMP[8], "speedup-1-to-8")
		b.ReportMetric(byMP[8]/byMP[16], "speedup-8-to-16")
	}
}

// BenchmarkSigDetectionStats regenerates the Section 4.4 statistics and
// reports the quick-to-full filter rate (the paper reports ~2%).
func BenchmarkSigDetectionStats(b *testing.B) {
	cfg := benchConfig()
	cfg.Benchmarks = []string{"gzip", "mcf", "mgrid"}
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.SigStats(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.FullPerQuick
		}
		b.ReportMetric(sum/float64(len(rows)), "full-per-quick-pct")
	}
}
