// Package superpin's top-level benchmarks regenerate each figure of the
// SuperPin paper (CGO 2007) at a reduced workload scale, reporting the
// figure's headline quantities as benchmark metrics:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (the numbers recorded in EXPERIMENTS.md) is
// done with cmd/spbench.
package superpin

import (
	"testing"

	"superpin/internal/bench"
	"superpin/internal/core"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

// benchConfig is the reduced-scale configuration shared by the figure
// benchmarks: a representative six-benchmark subset including the gcc and
// mcf special cases.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.05
	cfg.TimesliceMSec = 100
	cfg.Benchmarks = []string{"gcc", "mcf", "gzip", "crafty", "mgrid", "swim"}
	return cfg
}

// BenchmarkFig3Icount1Relative regenerates Figure 3 (icount1 runtime
// under Pin and SuperPin relative to native) and reports the suite
// averages as pin-pct and superpin-pct.
func BenchmarkFig3Icount1Relative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pinAvg, spAvg, _ := bench.Averages(rs)
		b.ReportMetric(pinAvg, "pin-pct")
		b.ReportMetric(spAvg, "superpin-pct")
	}
}

// BenchmarkFig4Icount1Speedup regenerates Figure 4 (SuperPin speedup over
// Pin with icount1) and reports the average and maximum speedups.
func BenchmarkFig4Icount1Speedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig4(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := bench.Averages(rs)
		max := 0.0
		for _, r := range rs {
			if r.Speedup > max {
				max = r.Speedup
			}
		}
		b.ReportMetric(avg, "avg-speedup")
		b.ReportMetric(max, "max-speedup")
	}
}

// BenchmarkFig5Icount2Relative regenerates Figure 5 (icount2 runtime
// under Pin and SuperPin relative to native).
func BenchmarkFig5Icount2Relative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rs, err := bench.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pinAvg, spAvg, _ := bench.Averages(rs)
		b.ReportMetric(pinAvg, "pin-pct")
		b.ReportMetric(spAvg, "superpin-pct")
	}
}

// BenchmarkFig6TimesliceSweep regenerates Figure 6 (gcc runtime versus
// timeslice interval with the native / fork&others / sleep / pipeline
// decomposition) and reports the best total and its pipeline share.
func BenchmarkFig6TimesliceSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Fig6(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[0]
		for _, r := range rows {
			if r.Total < best.Total {
				best = r
			}
		}
		b.ReportMetric(best.Total, "best-total-vsec")
		b.ReportMetric(best.Pipeline, "best-pipeline-vsec")
	}
}

// BenchmarkFig7ParallelismSweep regenerates Figure 7 (gcc runtime versus
// maximum running slices on the hyperthreaded 8-way machine) and reports
// the 1-slice to 8-slice improvement and the 8-to-16 saturation ratio.
func BenchmarkFig7ParallelismSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Fig7(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		byMP := map[int]float64{}
		for _, r := range rows {
			byMP[r.MaxSlices] = r.Seconds
		}
		b.ReportMetric(byMP[1]/byMP[8], "speedup-1-to-8")
		b.ReportMetric(byMP[8]/byMP[16], "speedup-8-to-16")
	}
}

// Host-side performance benchmarks: how fast the simulator itself runs on
// the host, as guest-MIPS (millions of guest instructions interpreted per
// host second) and suite wall-clock. These track the predecode-cache,
// software-TLB and parallel-harness work; virtual-cycle results are
// byte-identical whatever these report.

// hostWorkload builds one mid-sized benchmark program for the per-mode
// guest-MIPS measurements.
func hostWorkload(b *testing.B) (workload.Spec, bench.Config) {
	cfg := benchConfig()
	spec, ok := workload.ByName("gzip")
	if !ok {
		b.Fatal("gzip missing from catalog")
	}
	return spec.Scaled(cfg.Scale), cfg
}

// BenchmarkHostMIPSNative measures uninstrumented interpretation.
func BenchmarkHostMIPSNative(b *testing.B) {
	spec, cfg := hostWorkload(b)
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	var ins uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
		if err != nil {
			b.Fatal(err)
		}
		ins += res.Ins
	}
	b.ReportMetric(float64(ins)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// BenchmarkHostMIPSPin measures serial Pin-style JIT execution (icount1).
func BenchmarkHostMIPSPin(b *testing.B) {
	spec, cfg := hostWorkload(b)
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	pinCost := cfg.PinCost
	pinCost.MemSurcharge = spec.PinMemCost
	var ins uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunPin(cfg.Kernel, prog, tools.NewIcount1(nil).Factory(), pinCost)
		if err != nil {
			b.Fatal(err)
		}
		ins += res.Ins
	}
	b.ReportMetric(float64(ins)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// BenchmarkHostMIPSSuperPin measures the full SuperPin engine; guest
// instructions count the master's native pass plus every slice's
// instrumented re-execution.
func BenchmarkHostMIPSSuperPin(b *testing.B) {
	spec, cfg := hostWorkload(b)
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.SliceMSec = cfg.TimesliceMSec
	opts.MaxSlices = cfg.MaxSlices
	opts.PinCost = cfg.PinCost
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	var ins uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg.Kernel, prog, tools.NewIcount1(nil).Factory(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		ins += res.MasterIns + res.SliceIns
	}
	b.ReportMetric(float64(ins)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// benchSuiteWall measures RunSuite wall-clock over the six-benchmark
// subset with a given worker count; comparing the Serial and Parallel
// variants shows the harness fan-out win on a multicore host.
func benchSuiteWall(b *testing.B, workers int) {
	cfg := benchConfig()
	cfg.Workers = workers
	var ins uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunSuite(cfg, bench.Icount1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			ins += 3 * r.Ins
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "suite-sec")
	b.ReportMetric(float64(ins)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

func BenchmarkSuiteWallClockSerial(b *testing.B)   { benchSuiteWall(b, 1) }
func BenchmarkSuiteWallClockParallel(b *testing.B) { benchSuiteWall(b, 0) }

// BenchmarkSigDetectionStats regenerates the Section 4.4 statistics and
// reports the quick-to-full filter rate (the paper reports ~2%).
func BenchmarkSigDetectionStats(b *testing.B) {
	cfg := benchConfig()
	cfg.Benchmarks = []string{"gzip", "mcf", "mgrid"}
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.SigStats(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.FullPerQuick
		}
		b.ReportMetric(sum/float64(len(rows)), "full-per-quick-pct")
	}
}
