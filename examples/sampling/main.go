// Sampling: the SP_EndSlice use case (paper Section 5).
//
// The Shadow-Profiler pattern the paper cites performs sampled profiling
// by instrumenting only a bounded prefix of each timeslice and then
// calling SP_EndSlice. This example profiles the mgrid benchmark with a
// 500-instruction budget per slice, compares the cost against full
// per-instruction profiling, and prints the hottest program counters.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000_000

	spec, ok := workload.ByName("mgrid")
	if !ok {
		log.Fatal("mgrid missing from the workload catalog")
	}
	spec = spec.Scaled(0.1)
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	native, err := core.RunNative(cfg, prog, spec.NativeMemCost)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.SliceMSec = 100
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost

	// Full profiling: every instruction, every slice.
	full := tools.NewIcount1(nil)
	fullRes, err := core.Run(cfg, prog, full.Factory(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if fullRes.Err != nil {
		log.Fatal(fullRes.Err)
	}

	// Sampled profiling: 500 instructions per slice, then SP_EndSlice.
	sampler, err := tools.NewSampler(500, nil)
	if err != nil {
		log.Fatal(err)
	}
	sampRes, err := core.Run(cfg, prog, sampler.Factory(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if sampRes.Err != nil {
		log.Fatal(sampRes.Err)
	}

	fmt.Printf("application:      %d instructions, %.2f vsec native\n",
		native.Ins, cfg.Cost.Seconds(native.Time))
	fmt.Printf("full profiling:   %.2f vsec (%.0f%% of native)\n",
		cfg.Cost.Seconds(fullRes.TotalTime),
		100*float64(fullRes.TotalTime)/float64(native.Time))
	fmt.Printf("sampled (500/slice): %.2f vsec (%.0f%% of native), %d samples over %d slices\n",
		cfg.Cost.Seconds(sampRes.TotalTime),
		100*float64(sampRes.TotalTime)/float64(native.Time),
		sampler.Sampled, sampRes.Stats.Forks)

	fmt.Println("\nhottest sampled program counters:")
	for _, pc := range sampler.Hottest(5) {
		fmt.Printf("  %#08x: %d samples\n", pc, sampler.Samples()[pc])
	}

	if sampRes.TotalTime >= fullRes.TotalTime {
		log.Fatal("sampling was not cheaper than full profiling")
	}
	fmt.Printf("\nsampling cost %.1f%% of full profiling's runtime\n",
		100*float64(sampRes.TotalTime)/float64(fullRes.TotalTime))
}
