// Tracing: ordered merging of buffered slice output (paper Section 4.5).
//
// The itrace tool records the address of every executed instruction. Under
// SuperPin each slice buffers its own trace, and the buffers are appended
// in slice order at merge time, so the final trace is byte-identical to a
// serial run's. This example traces a hand-written assembly program under
// both modes and diffs the traces.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"

	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/pin"
	"superpin/internal/tools"
)

// program is a small SVR32 application with calls, loops and memory
// traffic — long enough to span several timeslices at a 20 ms interval.
const program = `
	.entry main
square:
	mul r2, r2, r2
	ret
main:
	li r10, 0
	li r11, 40000
	la r12, table
loop:
	andi r13, r10, 15
	slli r13, r13, 2
	add r13, r13, r12
	mv r2, r10
	call square
	sw r2, (r13)
	lw r14, (r13)
	add r20, r20, r14
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	andi r2, r20, 255
	syscall
	.org 0x8000
table:
	.space 64
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000_000

	serial := tools.NewITrace(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		log.Fatal(err)
	}

	parallel := tools.NewITrace(nil)
	opts := core.DefaultOptions()
	opts.SliceMSec = 20
	res, err := core.Run(cfg, prog, parallel.Factory(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	a, b := serial.Trace(), parallel.Trace()
	fmt.Printf("serial trace:   %d instructions\n", len(a))
	fmt.Printf("superpin trace: %d instructions across %d slices\n", len(b), res.Stats.Forks)

	if len(a) != len(b) {
		log.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("traces diverge at instruction %d: %#08x vs %#08x", i, a[i], b[i])
		}
	}
	fmt.Println("\ntraces are identical; first ten entries:")
	for i := 0; i < 10 && i < len(a); i++ {
		fmt.Printf("  %3d: %#08x\n", i, a[i])
	}
}
