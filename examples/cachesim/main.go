// Cachesim: the dcache SuperTool from paper Section 5.2.
//
// A data-cache simulator has cross-slice state (the cache contents at a
// slice's start depend on the previous slice), so it cannot merge by
// simple addition. This example runs the direct-mapped dcache tool on the
// memory-bound mcf benchmark under both serial Pin and SuperPin and shows
// that the assume-hit + merge-time-reconciliation procedure makes the
// parallel results *exactly* equal to the serial ones.
//
//	go run ./examples/cachesim
package main

import (
	"fmt"
	"log"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/pin"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000_000

	spec, ok := workload.ByName("mcf")
	if !ok {
		log.Fatal("mcf missing from the workload catalog")
	}
	spec = spec.Scaled(0.1)
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	const cacheBytes, lineBytes = 1 << 14, 32

	serial, err := tools.NewDCache(cacheBytes, lineBytes, nil)
	if err != nil {
		log.Fatal(err)
	}
	pinCost := pin.DefaultCost()
	pinCost.MemSurcharge = spec.PinMemCost
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pinCost); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial pin:  %d hits, %d misses (%.2f%% hit rate)\n",
		serial.Hits(), serial.Misses(), hitRate(serial.Hits(), serial.Misses()))

	parallel, err := tools.NewDCache(cacheBytes, lineBytes, nil)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.SliceMSec = 200
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	res, err := core.Run(cfg, prog, parallel.Factory(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("superpin:    %d hits, %d misses (%.2f%% hit rate), %d slices\n",
		parallel.Hits(), parallel.Misses(), hitRate(parallel.Hits(), parallel.Misses()),
		res.Stats.Forks)
	fmt.Printf("reconciled:  %d assumed hits were corrected to misses at merge time\n",
		parallel.Adjusted())

	if serial.Hits() != parallel.Hits() || serial.Misses() != parallel.Misses() {
		log.Fatal("parallel simulation diverged from serial — reconciliation bug")
	}
	fmt.Println("\nparallel dcache results are exactly equal to the serial simulation")
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
