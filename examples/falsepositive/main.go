// Falsepositive: the paper's known signature-detection limitation and the
// proposed fix (Section 4.4).
//
// Signature detection compares registers and the top of the stack at the
// boundary PC. The paper notes one failure mode: "a sequence of code
// could be generated that incremented or decremented memory in a loop as
// a loop counter, with all other registers and stack remaining the same
// across iterations" — the signature then matches on the first arrival,
// the slice ends early, and the instructions up to the true boundary are
// lost. The paper proposes extending the signature with "results of
// memory operations when no registers change"; this reproduction
// implements that extension (core.Options.MemCheck).
//
// This example constructs exactly that adversarial loop, shows the
// undercount with the paper's baseline detector, and shows the
// memory-probe extension restoring exactness.
//
//	go run ./examples/falsepositive
package main

import (
	"fmt"
	"log"

	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/pin"
)

// adversarial is the paper's pathological loop: the only state advancing
// across iterations is the memory word at `counter`; at the loop head,
// every register (r6 is wiped each iteration) and the stack are identical
// on every trip.
const adversarial = `
	.entry main
main:
	la r5, counter
	li r8, 120000
loop:
	lw r6, (r5)
	addi r6, r6, 1
	sw r6, (r5)
	blt r6, r8, cont
	li r1, 1
	li r2, 0
	syscall
cont:
	li r6, 0
	j loop
	.org 0x7000
counter:
	.word 0
`

func main() {
	prog, err := asm.Assemble(adversarial)
	if err != nil {
		log.Fatal(err)
	}
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000_000

	native, err := core.RunNative(cfg, prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native run:            %d instructions\n", native.Ins)

	run := func(memCheck bool) (uint64, *core.Result) {
		var count uint64
		factory := func(ctl *core.ToolCtl) core.Tool {
			local := make([]uint64, 1)
			shared := ctl.CreateSharedArea(local, core.MergeSum)
			return icount{local: local, out: &count, shared: shared, master: ctl.SliceNum() == -1}
		}
		opts := core.DefaultOptions()
		opts.SliceMSec = 300
		opts.MemCheck = memCheck
		res, err := core.Run(cfg, prog, factory, opts)
		if err != nil {
			log.Fatal(err)
		}
		return count, res
	}

	baseline, resBase := run(false)
	fmt.Printf("baseline detector:     %d instructions counted (%d slices)\n",
		baseline, resBase.Stats.Forks)
	lost := int64(native.Ins) - int64(baseline)
	if lost > 0 {
		fmt.Printf("  -> false positive: %d instructions lost to early slice termination\n", lost)
	} else {
		fmt.Println("  -> no false positive at this timeslice setting")
	}

	fixed, resFix := run(true)
	fmt.Printf("with memory probe:     %d instructions counted (%d probes recorded)\n",
		fixed, resFix.Stats.MemProbes)
	if fixed != native.Ins {
		log.Fatalf("memory-probe extension failed to restore exactness: %d != %d",
			fixed, native.Ins)
	}
	fmt.Println("\nthe Section 4.4 memory-operand extension restores exact coverage")
}

// icount is a minimal per-slice counting tool; the master instance
// publishes the merged total through out at Fini.
type icount struct {
	local  []uint64
	shared []uint64
	out    *uint64
	master bool
}

func (t icount) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		n := uint64(bbl.NumIns())
		bbl.InsertCall(pin.Before, func(*pin.Ctx) { t.local[0] += n })
	}
}

func (t icount) Fini(uint32) {
	if t.master {
		*t.out = t.shared[0]
	}
}
