// Quickstart: the paper's headline experiment on one benchmark.
//
// Runs the synthetic gzip benchmark three ways — natively, under
// traditional serial Pin, and under SuperPin — with the icount2
// instruction-counting Pintool (paper Figure 2), and shows that all modes
// agree exactly on the count while SuperPin approaches native speed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/pin"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

func main() {
	// The simulated machine from the paper's evaluation: an 8-way SMP
	// with hyperthreading (16 virtual processors).
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000_000

	spec, ok := workload.ByName("gzip")
	if !ok {
		log.Fatal("gzip missing from the workload catalog")
	}
	spec = spec.Scaled(0.25)
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Native: the uninstrumented baseline.
	native, err := core.RunNative(cfg, prog, spec.NativeMemCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:    %10.2f vsec  (%d instructions)\n",
		cfg.Cost.Seconds(native.Time), native.Ins)

	// 2. Traditional Pin: serial instrumented execution.
	pinCost := pin.DefaultCost()
	pinCost.MemSurcharge = spec.PinMemCost
	serialTool := tools.NewIcount2(nil)
	pinRes, err := core.RunPin(cfg, prog, serialTool.Factory(), pinCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pin:       %10.2f vsec  (%.1fx native), count %d\n",
		cfg.Cost.Seconds(pinRes.Time),
		float64(pinRes.Time)/float64(native.Time), serialTool.Total())

	// 3. SuperPin: the master runs at full speed while instrumented
	//    timeslices execute in parallel and merge in order.
	opts := core.DefaultOptions()
	opts.SliceMSec = 250
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	spTool := tools.NewIcount2(nil)
	spRes, err := core.Run(cfg, prog, spTool.Factory(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if spRes.Err != nil {
		log.Fatal(spRes.Err)
	}
	fmt.Printf("superpin:  %10.2f vsec  (%.1fx native), count %d, %d slices\n",
		cfg.Cost.Seconds(spRes.TotalTime),
		float64(spRes.TotalTime)/float64(native.Time), spTool.Total(), spRes.Stats.Forks)

	if serialTool.Total() != native.Ins || spTool.Total() != native.Ins {
		log.Fatalf("tool outputs disagree: native %d, pin %d, superpin %d",
			native.Ins, serialTool.Total(), spTool.Total())
	}
	fmt.Printf("\nall three modes agree on %d executed instructions\n", native.Ins)
	fmt.Printf("superpin speedup over pin: %.1fx\n",
		float64(pinRes.Time)/float64(spRes.TotalTime))
}
