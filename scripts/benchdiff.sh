#!/bin/sh
# Compare two `spbench -hostjson` artifacts (results/BENCH_<n>.json):
# wall-clock, guest-MIPS and dispatch fast-path counter deltas between
# two PRs' runs.
#
#   scripts/benchdiff.sh results/BENCH_3.json results/BENCH_4.json
#   scripts/benchdiff.sh -gate results/BENCH_4.json results/BENCH_6.json
#   scripts/benchdiff.sh -gate -pct 95 results/BENCH_8.json results/BENCH_9.json
#
# Positive MIPS delta = the new run pushes guest instructions faster.
# Comparisons are only meaningful between runs of the same scale and
# experiment set on the same host; the script warns when scales differ.
#
# With -gate the script also *fails* (exit 1) when the new run's serial
# path regressed: guest_mips_min below -pct percent (default 80) of the
# old run's. The default 20% margin absorbs host noise on shared
# machines while still catching a real slowdown of the workers=1 path;
# tighter gates (e.g. -pct 95 for the telemetry overhead budget) pick a
# smaller margin explicitly. A gate needs a usable yardstick: a
# reference artifact whose guest_mips_min is missing or zero is a usage
# error (exit 2), never a silent pass.
set -eu

gate=0
pct=80
while [ $# -gt 0 ]; do
    case "$1" in
    -gate)
        gate=1
        shift
        ;;
    -pct)
        pct="${2:-}"
        if [ -z "$pct" ]; then
            echo "ERROR: -pct needs a value" >&2
            exit 2
        fi
        shift 2
        ;;
    -*)
        echo "usage: $0 [-gate] [-pct N] <old.json> <new.json>" >&2
        exit 2
        ;;
    *)
        break
        ;;
    esac
done
if [ $# -ne 2 ]; then
    echo "usage: $0 [-gate] [-pct N] <old.json> <new.json>" >&2
    exit 2
fi
if ! awk -v p="$pct" 'BEGIN { exit (p + 0 > 0 && p + 0 <= 100) ? 0 : 1 }'; then
    echo "ERROR: -pct must be a percentage in (0, 100], got '$pct'" >&2
    exit 2
fi
old="$1"
new="$2"

# field FILE KEY: extract a flat numeric JSON field. The artifacts are
# one-key-per-line MarshalIndent output, so sed is enough — no JSON tool
# dependency.
field() {
    sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\),*$/\1/p" "$1" | head -n 1
}

if [ "$gate" = 1 ]; then
    ref_mips=$(field "$old" guest_mips_min)
    if [ -z "$ref_mips" ] || ! awk -v v="$ref_mips" 'BEGIN { exit (v + 0 > 0) ? 0 : 1 }'; then
        echo "ERROR: -gate needs a positive guest_mips_min in the reference $old (got '${ref_mips:-missing}')" >&2
        exit 2
    fi
    new_mips=$(field "$new" guest_mips_min)
    if [ -z "$new_mips" ]; then
        echo "ERROR: -gate: $new has no guest_mips_min field" >&2
        exit 2
    fi
fi

for key in scale elapsed_sec guest_mips_min guest_ins_min suite_runs \
           dispatches link_hits superblock_ins; do
    o=$(field "$old" "$key")
    n=$(field "$new" "$key")
    if [ -z "$o" ] || [ -z "$n" ]; then
        echo "$key: missing (old='$o' new='$n')" >&2
        continue
    fi
    echo "$key $o $n"
done | awk -v gate="$gate" -v pct="$pct" '
{
    key = $1; o = $2 + 0; n = $3 + 0
    delta = (o != 0) ? 100 * (n - o) / o : 0
    printf "%-16s %14g -> %14g  (%+.1f%%)\n", key, o, n, delta
    if (key == "scale" && o != n) warn = 1
    if (key == "guest_mips_min" && gate && o > 0 && n < (pct / 100) * o) fail = 1
}
END {
    if (warn) print "WARNING: runs used different -scale values; deltas are not comparable" > "/dev/stderr"
    if (fail) {
        printf "FAIL: guest_mips_min regressed below %g%% of the reference run\n", pct > "/dev/stderr"
        exit 1
    }
}
'
