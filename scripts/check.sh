#!/bin/sh
# Repository check gate: static checks, the full test suite, and the
# race-detector pass over the parallel experiment harness.
#
#   scripts/check.sh          # everything below
#
# Intended to be the single command CI runs.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== obsguard (obs zero-cost nil-guard invariant) =="
go run ./tools/analyzers/cmd/obsguard internal/pin internal/cpu internal/kernel internal/core internal/artifact internal/jit internal/telemetry

echo "== detguard (engine determinism: map ranges, time.Now, math/rand) =="
go run ./tools/analyzers/cmd/detguard internal/cpu internal/mem internal/pin internal/jit internal/core internal/sa

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent engine packages + harness) =="
go test -race ./internal/kernel/... ./internal/core/... ./internal/jit/... \
    ./internal/mem/... ./internal/bench/... ./internal/obs/... ./internal/artifact/... \
    ./internal/telemetry/... ./internal/sa/...

echo "== benchmarks compile and run once =="
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== observability smoke (trace invariants) =="
go run ./cmd/spbench -exp obssmoke -scale 0.02 -benchmarks gzip,mgrid

echo "== dispatch fast-path differential (fast vs -nofastpath) =="
go run ./cmd/spbench -exp fastpathdiff -scale 0.02 -benchmarks gzip,mgrid

echo "== profiler differential (serial vs SuperPin merged profiles) =="
go run ./cmd/spbench -exp profdiff -scale 0.02 -benchmarks gzip,mgrid

echo "== static-analysis differential (analysis on vs -nosa) =="
go run ./cmd/spbench -exp sadiff -scale 0.02 -benchmarks gzip,mgrid

echo "== interprocedural differential (full vs -saintra vs -nosa, full catalog) =="
go run ./cmd/spbench -exp ipdiff -scale 0.02

echo "== host-parallelism differential (serial vs 1/2/4/8 workers, telemetry on) =="
go run ./cmd/spbench -exp pardiff -scale 0.02 -benchmarks gzip,mgrid -serve 127.0.0.1:0

echo "== hot-tier differential (second-tier trace compiler vs -nohottier, telemetry on) =="
go run ./cmd/spbench -exp jitdiff -scale 0.02 -benchmarks gzip,mgrid -serve 127.0.0.1:0

echo "== artifact-cache differential (cold vs warm vs disk-warm, telemetry on) =="
go run ./cmd/spbench -exp cachediff -scale 0.02 -benchmarks gzip,mgrid -serve 127.0.0.1:0

echo "== live telemetry smoke (mid-run /healthz /metrics /status /trace) =="
go run ./tools/cmd/telsmoke -- \
    go run ./cmd/spbench -exp fig3 -scale 1 -benchmarks gzip,gcc,mgrid -serve 127.0.0.1:0

echo "== interprocedural overhead gate (serial guest-MIPS vs BENCH_9) =="
go run ./cmd/spbench -exp fig3 -scale 0.1 -j 1 -scaling 1,2,4,8 -warmstart \
    -serve 127.0.0.1:0 -hostjson results/BENCH_10.json
scripts/benchdiff.sh -gate -pct 80 results/BENCH_9.json results/BENCH_10.json

echo "ok"
