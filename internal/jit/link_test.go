package jit

import "testing"

func mkCompiled(addr uint32, n int) *CompiledTrace {
	ct := &CompiledTrace{Addr: addr}
	for i := 0; i < n; i++ {
		ct.Ins = append(ct.Ins, CompiledIns{Addr: addr + uint32(4*i)})
	}
	return ct
}

// TestCodeCacheOversizedTraceExempt: a single trace larger than the whole
// capacity must be admitted without flushing and without entering the
// resident accounting — the regression was resident > Capacity forever,
// which forced a whole-cache flush on every subsequent insert.
func TestCodeCacheOversizedTraceExempt(t *testing.T) {
	c := NewCodeCache(10)
	c.Insert(mkCompiled(0x100, 4))
	c.Insert(mkCompiled(0x900, 25)) // larger than the whole cache
	if got := c.Stats().Flushes; got != 0 {
		t.Fatalf("oversized insert flushed %d times, want 0", got)
	}
	if c.Lookup(0x900) == nil {
		t.Fatal("oversized trace not resident")
	}
	if c.Lookup(0x100) == nil {
		t.Fatal("oversized insert evicted an unrelated trace")
	}
	if got := c.Resident(); got != 4 {
		t.Fatalf("resident = %d, want 4 (oversized trace is capacity-exempt)", got)
	}

	// Subsequent inserts behave normally: fill to capacity without a
	// flush, then one flush when capacity is finally exceeded.
	c.Insert(mkCompiled(0x200, 6))
	if got := c.Stats().Flushes; got != 0 {
		t.Fatalf("insert after oversized flushed %d times, want 0", got)
	}
	c.Insert(mkCompiled(0x300, 6))
	if got := c.Stats().Flushes; got != 1 {
		t.Fatalf("flushes = %d, want exactly 1", got)
	}
	if got := c.Resident(); got != 6 {
		t.Fatalf("resident after flush = %d, want 6", got)
	}
	if c.Lookup(0x900) != nil {
		t.Fatal("oversized trace survived the flush")
	}
}

func TestTraceLinkRoundTrip(t *testing.T) {
	a := mkCompiled(0x100, 4)
	b := mkCompiled(0x200, 4)
	if next, stale := a.Link(0x200, 0); next != nil || stale {
		t.Fatalf("empty link cache returned %v stale=%v", next, stale)
	}
	a.SetLink(0x200, b, 0)
	next, stale := a.Link(0x200, 0)
	if next != b || stale {
		t.Fatalf("Link = %v stale=%v, want b", next, stale)
	}
	// A different PC mapping to the same slot must not alias.
	if next, _ := a.Link(0x200+4*numTraceLinks, 0); next != nil {
		t.Fatal("link returned for a different PC")
	}
}

func TestTraceLinkEpochInvalidation(t *testing.T) {
	a := mkCompiled(0x100, 4)
	b := mkCompiled(0x200, 4)
	a.SetLink(0x200, b, 0)
	// After a flush the epoch advances; the link is dead and must be
	// reported stale exactly once (the entry is cleared).
	next, stale := a.Link(0x200, 1)
	if next != nil || !stale {
		t.Fatalf("post-flush Link = %v stale=%v, want nil/stale", next, stale)
	}
	if next, stale := a.Link(0x200, 1); next != nil || stale {
		t.Fatalf("second lookup = %v stale=%v, want nil/not-stale (entry cleared)", next, stale)
	}
}

func TestCodeCacheEpochAdvancesOnFlush(t *testing.T) {
	c := NewCodeCache(10)
	if c.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", c.Epoch())
	}
	c.Insert(mkCompiled(0x100, 6))
	c.Insert(mkCompiled(0x200, 6))
	if c.Epoch() != 1 {
		t.Fatalf("epoch after capacity flush = %d, want 1", c.Epoch())
	}
	c.Flush()
	if c.Epoch() != 2 {
		t.Fatalf("epoch after explicit flush = %d, want 2", c.Epoch())
	}
}

func TestCodeCacheLinkStats(t *testing.T) {
	c := NewCodeCache(0)
	c.RecordLink(true)
	c.RecordLink(true)
	c.RecordLink(false)
	c.RecordLinkInvalidation()
	st := c.Stats()
	if st.LinkHits != 2 || st.LinkMisses != 1 || st.LinkInvalidations != 1 {
		t.Fatalf("link stats = %+v", st)
	}
}
