package jit

import "testing"

// TestHotTraceNextEpochContract: a hot-successor link recorded before a
// cache flush targets evicted code; Next must clear it and report it
// stale instead of returning it — the same lifecycle as a traceLink.
func TestHotTraceNextEpochContract(t *testing.T) {
	cache := NewCodeCache(0)
	succ := &CompiledTrace{Addr: 0x2000}
	h := &HotTrace{NextPC: 0x2000}

	if next, stale := h.Next(cache.Epoch()); next != nil || stale {
		t.Fatalf("empty hot link: next=%v stale=%v", next, stale)
	}
	h.SetNext(succ, cache.Epoch())
	if next, stale := h.Next(cache.Epoch()); next != succ || stale {
		t.Fatalf("fresh hot link: next=%v stale=%v", next, stale)
	}

	cache.Flush()
	if next, stale := h.Next(cache.Epoch()); next != nil || !stale {
		t.Fatalf("post-flush hot link must be cleared and reported stale: next=%v stale=%v", next, stale)
	}
	// The stale link was consumed: asking again is a plain miss.
	if next, stale := h.Next(cache.Epoch()); next != nil || stale {
		t.Fatalf("cleared hot link: next=%v stale=%v", next, stale)
	}

	// Re-resolving at the current epoch works again.
	succ2 := &CompiledTrace{Addr: 0x2000}
	h.SetNext(succ2, cache.Epoch())
	if next, stale := h.Next(cache.Epoch()); next != succ2 || stale {
		t.Fatalf("re-resolved hot link: next=%v stale=%v", next, stale)
	}
}
