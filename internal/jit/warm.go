package jit

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// WarmSeed is the hot-trace warm-start artifact: per trace entry PC, the
// promotion counters and hottest-exit measurement a prior execution of
// the same program image earned. A warm run applies the seed to each
// trace as it is compiled, so traces the previous run proved hot promote
// to the second tier immediately instead of re-earning HotThreshold
// dispatches.
//
// The seed is pure host-side steering state: it changes when promotion
// happens and which exit the hot layout prefers, never a virtual result.
// A WarmSeed published through the artifact store is treated as
// immutable; merging builds a new value.
type WarmSeed struct {
	Entries map[uint32]WarmEntry
}

// WarmEntry is the harvested hotness of one trace.
type WarmEntry struct {
	Execs     uint64
	SelfLoops uint64
	HotExit   uint32 // hottest recorded exit target (meaningful when HotCount > 0)
	HotCount  uint64
}

// NewWarmSeed returns an empty seed.
func NewWarmSeed() *WarmSeed {
	return &WarmSeed{Entries: make(map[uint32]WarmEntry)}
}

// Len returns the number of seeded traces. Nil-safe.
func (w *WarmSeed) Len() int {
	if w == nil {
		return 0
	}
	return len(w.Entries)
}

// Lookup returns the entry for a trace entry PC. Nil-safe.
func (w *WarmSeed) Lookup(pc uint32) (WarmEntry, bool) {
	if w == nil {
		return WarmEntry{}, false
	}
	e, ok := w.Entries[pc]
	return e, ok
}

// record folds one observation into the entry for pc. Counters add;
// the hottest exit keeps the larger count, ties resolving to the lower
// PC — commutative and associative, so folding order never matters.
func (w *WarmSeed) record(pc uint32, o WarmEntry) {
	e := w.Entries[pc]
	e.Execs += o.Execs
	e.SelfLoops += o.SelfLoops
	if o.HotCount > e.HotCount ||
		(o.HotCount == e.HotCount && o.HotCount > 0 && o.HotExit < e.HotExit) {
		e.HotExit, e.HotCount = o.HotExit, o.HotCount
	}
	w.Entries[pc] = e
}

// Harvest folds the hotness counters of every trace resident in c into
// w. Promoted traces froze their counters at promotion; unpromoted ones
// contribute whatever they accumulated, so a future run resumes counting
// where this one stopped.
func (w *WarmSeed) Harvest(c *CodeCache) {
	c.Traces(func(ct *CompiledTrace) {
		pc, cnt := ct.Exits.Hottest()
		if ct.Execs == 0 && cnt == 0 {
			return
		}
		w.record(ct.Addr, WarmEntry{
			Execs:     ct.Execs,
			SelfLoops: ct.SelfLoops,
			HotExit:   pc,
			HotCount:  cnt,
		})
	})
}

// Merge folds other into w. Nil other is a no-op.
func (w *WarmSeed) Merge(other *WarmSeed) {
	if other == nil {
		return
	}
	for pc, e := range other.Entries { //detguard:ok per-pc merge is commutative
		w.record(pc, e)
	}
}

// warmRec is the fixed-width on-disk record: pc + the four counters.
const warmRec = 4 + 8 + 8 + 4 + 8

// EncodeWarmSeed serializes the seed sorted by trace PC, so identical
// seeds always produce identical bytes.
func EncodeWarmSeed(w *WarmSeed) []byte {
	pcs := make([]uint32, 0, w.Len())
	if w != nil {
		for pc := range w.Entries { //detguard:ok keys sorted below
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out := make([]byte, 4, 4+len(pcs)*warmRec)
	binary.LittleEndian.PutUint32(out, uint32(len(pcs)))
	var rec [warmRec]byte
	for _, pc := range pcs {
		e := w.Entries[pc]
		binary.LittleEndian.PutUint32(rec[0:], pc)
		binary.LittleEndian.PutUint64(rec[4:], e.Execs)
		binary.LittleEndian.PutUint64(rec[12:], e.SelfLoops)
		binary.LittleEndian.PutUint32(rec[20:], e.HotExit)
		binary.LittleEndian.PutUint64(rec[24:], e.HotCount)
		out = append(out, rec[:]...)
	}
	return out
}

// DecodeWarmSeed rebuilds a seed from EncodeWarmSeed output.
func DecodeWarmSeed(data []byte) (*WarmSeed, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("warm seed: short header")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint64(len(data)) != uint64(n)*warmRec {
		return nil, fmt.Errorf("warm seed: length %d does not match %d entries", len(data), n)
	}
	w := &WarmSeed{Entries: make(map[uint32]WarmEntry, n)}
	for i := uint32(0); i < n; i++ {
		pc := binary.LittleEndian.Uint32(data)
		if _, dup := w.Entries[pc]; dup {
			return nil, fmt.Errorf("warm seed: duplicate trace %#x", pc)
		}
		w.Entries[pc] = WarmEntry{
			Execs:     binary.LittleEndian.Uint64(data[4:]),
			SelfLoops: binary.LittleEndian.Uint64(data[12:]),
			HotExit:   binary.LittleEndian.Uint32(data[20:]),
			HotCount:  binary.LittleEndian.Uint64(data[24:]),
		}
		data = data[warmRec:]
	}
	return w, nil
}
