package jit

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/mem"
)

func loadSrc(t *testing.T, src string) (*mem.Memory, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	return m, p
}

func TestTraceEndsAtUnconditionalJump(t *testing.T) {
	m, p := loadSrc(t, `
main:
	addi r1, r1, 1
	addi r2, r2, 2
	j main
`)
	tr, err := BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Bbls) != 1 || tr.NumIns != 3 {
		t.Fatalf("bbls=%d ins=%d, want 1 bbl of 3", len(tr.Bbls), tr.NumIns)
	}
	last := tr.Bbls[0].Ins[2]
	if last.Op != isa.OpJAL {
		t.Fatalf("last op = %v", last.Op)
	}
}

func TestTraceExtendsThroughConditionalBranches(t *testing.T) {
	m, p := loadSrc(t, `
main:
	addi r1, r1, 1
	beq r1, r2, main    ; bbl 1 ends here
	addi r3, r3, 1
	bne r1, r3, main    ; bbl 2 ends here
	addi r4, r4, 1
	syscall             ; bbl 3 ends here, trace ends
`)
	tr, err := BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Bbls) != 3 {
		t.Fatalf("bbls = %d, want 3", len(tr.Bbls))
	}
	if tr.NumIns != 6 {
		t.Fatalf("ins = %d, want 6", tr.NumIns)
	}
	if tr.Bbls[1].Addr != p.Entry+8 {
		t.Fatalf("bbl1 addr = %#x", tr.Bbls[1].Addr)
	}
	if tr.Bbls[2].Ins[1].Op != isa.OpSYSCALL {
		t.Fatal("trace did not end at syscall")
	}
}

func TestTraceSizeLimits(t *testing.T) {
	// A long run of straight-line code must stop at MaxTraceIns.
	src := ""
	for i := 0; i < 200; i++ {
		src += "addi r1, r1, 1\n"
	}
	src += "syscall\n"
	m, p := loadSrc(t, src)
	tr, err := BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIns != MaxTraceIns {
		t.Fatalf("ins = %d, want %d", tr.NumIns, MaxTraceIns)
	}

	// Many tiny blocks must stop at MaxTraceBbls.
	src = ""
	for i := 0; i < 20; i++ {
		src += "beq r1, r2, done\n"
	}
	src += "done: syscall\n"
	m, p = loadSrc(t, src)
	tr, err = BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Bbls) != MaxTraceBbls {
		t.Fatalf("bbls = %d, want %d", len(tr.Bbls), MaxTraceBbls)
	}
}

func TestTraceStopsBeforeUndecodableWord(t *testing.T) {
	m, p := loadSrc(t, `
main:
	addi r1, r1, 1
	.word 0xffffffff
`)
	tr, err := BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIns != 1 {
		t.Fatalf("ins = %d, want 1 (stop before garbage)", tr.NumIns)
	}
}

func TestTraceAtGarbageFails(t *testing.T) {
	m := mem.New()
	m.StoreWord(0x100, 0xffffffff)
	if _, err := BuildTrace(m, 0x100); err == nil {
		t.Fatal("BuildTrace on garbage succeeded")
	}
}

func TestCompilePreservesAddresses(t *testing.T) {
	m, p := loadSrc(t, `
main:
	addi r1, r1, 1
	beq r1, r2, main
	addi r3, r3, 1
	syscall
`)
	tr, err := BuildTrace(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	ct := Compile(tr)
	if ct.NumIns() != tr.NumIns {
		t.Fatalf("compiled %d ins, want %d", ct.NumIns(), tr.NumIns)
	}
	for i, ci := range ct.Ins {
		want := p.Entry + uint32(i)*4
		if ci.Addr != want {
			t.Fatalf("ins %d addr = %#x, want %#x", i, ci.Addr, want)
		}
	}
}

func TestCodeCacheFlushAtCapacity(t *testing.T) {
	c := NewCodeCache(10)
	mk := func(addr uint32, n int) *CompiledTrace {
		ct := &CompiledTrace{Addr: addr}
		for i := 0; i < n; i++ {
			ct.Ins = append(ct.Ins, CompiledIns{Addr: addr + uint32(4*i)})
		}
		return ct
	}
	c.Insert(mk(0x100, 6))
	c.Insert(mk(0x200, 6)) // exceeds 10: flush, then insert
	if c.Stats().Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.Stats().Flushes)
	}
	// Lookup is a pure read; the caller records outcomes explicitly.
	ct1 := c.Lookup(0x100)
	c.RecordLookup(ct1 != nil)
	if ct1 != nil {
		t.Fatal("trace survived flush")
	}
	ct2 := c.Lookup(0x200)
	c.RecordLookup(ct2 != nil)
	if ct2 == nil {
		t.Fatal("trace inserted after flush missing")
	}
	if c.Resident() != 6 {
		t.Fatalf("resident = %d", c.Resident())
	}
	st := c.Stats()
	if st.Compiles != 2 || st.CompiledIns != 12 || st.Lookups != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCodeCacheUnlimited(t *testing.T) {
	c := NewCodeCache(0)
	for i := uint32(0); i < 100; i++ {
		ct := &CompiledTrace{Addr: i * 0x100, Ins: make([]CompiledIns, 50)}
		c.Insert(ct)
	}
	if c.Stats().Flushes != 0 {
		t.Fatal("unlimited cache flushed")
	}
	if c.Resident() != 5000 {
		t.Fatalf("resident = %d", c.Resident())
	}
}
