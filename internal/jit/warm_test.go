package jit

import (
	"reflect"
	"testing"
)

func TestWarmSeedMergeCommutative(t *testing.T) {
	a := NewWarmSeed()
	a.record(0x100, WarmEntry{Execs: 10, SelfLoops: 2, HotExit: 0x200, HotCount: 7})
	a.record(0x300, WarmEntry{Execs: 1})
	b := NewWarmSeed()
	b.record(0x100, WarmEntry{Execs: 5, SelfLoops: 1, HotExit: 0x180, HotCount: 7})
	b.record(0x400, WarmEntry{Execs: 40, HotExit: 0x100, HotCount: 39})

	ab := NewWarmSeed()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewWarmSeed()
	ba.Merge(b)
	ba.Merge(a)
	if !reflect.DeepEqual(ab.Entries, ba.Entries) {
		t.Fatalf("merge is not commutative:\n a+b=%v\n b+a=%v", ab.Entries, ba.Entries)
	}
	got := ab.Entries[0x100]
	want := WarmEntry{Execs: 15, SelfLoops: 3, HotExit: 0x180, HotCount: 7}
	if got != want {
		t.Fatalf("merged 0x100 = %+v, want %+v (counters sum, exit ties break low)", got, want)
	}
	if n := ab.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
}

func TestWarmSeedNilSafe(t *testing.T) {
	var w *WarmSeed
	if w.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if _, ok := w.Lookup(1); ok {
		t.Fatal("nil Lookup found an entry")
	}
	s := NewWarmSeed()
	s.Merge(nil)
	if s.Len() != 0 {
		t.Fatal("merge of nil added entries")
	}
}

func TestWarmSeedEncodeDecode(t *testing.T) {
	w := NewWarmSeed()
	w.record(0x2000, WarmEntry{Execs: 123, SelfLoops: 45, HotExit: 0x2040, HotCount: 99})
	w.record(0x1000, WarmEntry{Execs: 1})
	blob := EncodeWarmSeed(w)
	// Deterministic bytes regardless of map order: re-encode matches.
	if got := EncodeWarmSeed(w); !reflect.DeepEqual(got, blob) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := DecodeWarmSeed(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec.Entries, w.Entries) {
		t.Fatalf("roundtrip mismatch: %v vs %v", dec.Entries, w.Entries)
	}
	for _, tc := range []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"truncated", blob[:len(blob)-3]},
		{"trailing garbage", append(append([]byte{}, blob...), 1, 2)},
	} {
		if _, err := DecodeWarmSeed(tc.blob); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
	// Empty seed roundtrips to empty.
	dec, err = DecodeWarmSeed(EncodeWarmSeed(NewWarmSeed()))
	if err != nil || dec.Len() != 0 {
		t.Fatalf("empty roundtrip: %v len=%d", err, dec.Len())
	}
}
