package jit

import (
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/mem"
)

// Ctx is the analysis-time view of the instrumented process's
// architectural state, passed to every analysis routine. A single Ctx is
// reused across calls by the engine, so analysis routines must not retain
// it past their own invocation.
type Ctx struct {
	// Regs is the live register state of the instrumented process.
	// Instrumentation is transparent: analysis routines should treat this
	// as read-only unless they are deliberately intervening (as
	// SuperPin's playback engine does).
	Regs *cpu.Regs
	// Mem is the live guest memory of the instrumented process.
	Mem *mem.Memory
	// PC is the address of the instrumented instruction.
	PC uint32
	// Inst is the instrumented instruction.
	Inst isa.Inst

	// Stop is set by RequestStop.
	stopRequested bool
}

// MemEA returns the effective address of the current memory instruction.
// It is meaningful only for instructions where Inst.Op.IsMem() is true,
// and only at IPOINT_BEFORE (registers may have changed after).
func (c *Ctx) MemEA() uint32 { return cpu.EffAddr(c.Regs, c.Inst) }

// IsMemRead reports whether the current instruction reads data memory.
func (c *Ctx) IsMemRead() bool { return c.Inst.Op.IsLoad() }

// IsMemWrite reports whether the current instruction writes data memory.
func (c *Ctx) IsMemWrite() bool { return c.Inst.Op.IsStore() }

// MemSize returns the access size of the current memory instruction.
func (c *Ctx) MemSize() int { return c.Inst.Op.MemSize() }

// RequestStop asks the engine to stop executing the current process
// before the current instruction executes (when called from an
// IPOINT_BEFORE routine) or before the next instruction (from After).
// SuperPin's signature-detection and SP_EndSlice are built on this.
func (c *Ctx) RequestStop() { c.stopRequested = true }

// StopRequested reports and clears the stop flag. It is for the engine's
// use.
func (c *Ctx) StopRequested() bool {
	s := c.stopRequested
	c.stopRequested = false
	return s
}
