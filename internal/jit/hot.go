package jit

// Second-tier ("hot") trace artifacts. Once a trace's dispatch count
// crosses the engine's hotness threshold, the pin engine promotes it:
// using the measured exit profile (prof.ExitHist) and the load-time
// static analysis it derives a HotTrace — per-superblock register
// writeback masks for host-local register caching, suppression flags for
// dominator-redundant and loop-invariant predicate spills, and a
// preferred hot-successor link. Everything in a HotTrace is host-side
// execution strategy: virtual-cycle results are byte-identical with the
// hot tier on or off (`spbench -exp jitdiff` proves it).
//
// Lifetime and invalidation mirror the first tier exactly: a HotTrace
// hangs off its CompiledTrace, so a whole-cache Flush drops both
// together, and the hot-successor pointer is epoch-tagged like a
// traceLink — a link recorded before the last flush targets evicted code
// and is cleared instead of followed.

// HotTrace is the second-tier compilation artifact attached to a promoted
// CompiledTrace.
type HotTrace struct {
	// WB[i] is the register writeback mask for Sblocks[i] when the run
	// executes on a host-local register file (cpu.ExecBlockCached): the
	// static written-set of the run plus bit 0. Zero means the run was
	// not promoted to register caching and stays on the shared-state
	// executor (bit 0 — r0, hard-wired zero and harmless to write back —
	// is always set in a valid mask, so zero is never ambiguous).
	WB []uint32
	// LiveIn[i] is the analysis's live-in mask at Sblocks[i]'s first
	// instruction, recorded at promotion for diagnostics; register
	// caching requires the analysis to cover the run (see the DESIGN.md
	// soundness argument for why liveness gates eligibility but never
	// narrows WB below the written-set).
	LiveIn []uint32
	// Hoist[i] marks compiled instruction i's inlined predicate spill as
	// suppressed: an identical spill already happened on every path to it
	// (dominator-redundant), or it is the loop-invariant spill of a
	// self-looping hot trace, paid once at promotion instead of every
	// iteration.
	Hoist []bool
	// NextPC is the measured hottest trace exit target (0 when the trace
	// exits nowhere dominant), the successor the promoted layout treats
	// as the fall-through. Cold exits stay on the first-tier link cache.
	NextPC uint32

	next      *CompiledTrace
	nextEpoch uint64
}

// SetNext records the resolved hot-successor trace, tagged with the code
// cache epoch that validates it.
func (h *HotTrace) SetNext(next *CompiledTrace, epoch uint64) {
	h.next = next
	h.nextEpoch = epoch
}

// Next returns the resolved hot-successor trace, or nil when none is
// recorded. A successor recorded before the last cache flush was evicted
// with the rest of the cache, so it is cleared and reported via stale
// rather than followed — the same contract as CompiledTrace.Link.
func (h *HotTrace) Next(epoch uint64) (next *CompiledTrace, stale bool) {
	if h.next == nil {
		return nil, false
	}
	if h.nextEpoch != epoch {
		h.next = nil
		return nil, true
	}
	return h.next, false
}

// CachedRuns returns how many superblocks were promoted to register
// caching (non-zero writeback masks).
func (h *HotTrace) CachedRuns() int {
	n := 0
	for _, m := range h.WB {
		if m != 0 {
			n++
		}
	}
	return n
}
