package jit

import (
	"sync"
	"testing"
)

// buildTraces builds the distinct traces of a small program (one per
// basic-block entry) for cache tests.
func buildTraces(t *testing.T) []*Trace {
	t.Helper()
	m, p := loadSrc(t, `
main:
	addi r1, r1, 1
	beq r1, r2, alt
	addi r3, r3, 1
	j main
alt:
	addi r4, r4, 1
	addi r5, r5, 1
	j main
`)
	const progIns = 7
	var trs []*Trace
	for pc := p.Entry; pc < p.Entry+progIns*4; pc += 4 {
		tr, err := BuildTrace(m, pc)
		if err != nil {
			t.Fatalf("pc %#x: %v", pc, err)
		}
		trs = append(trs, tr)
	}
	return trs
}

// TestTraceCacheInsertFirstWins checks the duplicate-publication rule:
// every engine builds identical traces from the same code, so the first
// published copy is kept and re-insertion is a no-op.
func TestTraceCacheInsertFirstWins(t *testing.T) {
	trs := buildTraces(t)
	tc := NewTraceCache()
	if !tc.Insert(trs[0]) {
		t.Fatal("first insert reported duplicate")
	}
	clone := *trs[0]
	if tc.Insert(&clone) {
		t.Fatal("duplicate insert reported new entry")
	}
	got, ok := tc.Lookup(trs[0].Addr)
	if !ok || got != trs[0] {
		t.Fatal("lookup did not return the first-published trace")
	}
}

// TestTraceCacheEpochAdvancesPerBatch checks that the epoch counts
// publication batches that landed something new — the version number the
// deterministic merge relies on.
func TestTraceCacheEpochAdvancesPerBatch(t *testing.T) {
	trs := buildTraces(t)
	tc := NewTraceCache()
	if tc.Publish(trs[:2]) != 2 || tc.Epoch() != 1 {
		t.Fatalf("first batch: len=%d epoch=%d", tc.Len(), tc.Epoch())
	}
	// Re-publishing the same batch adds nothing and must not bump the epoch.
	if tc.Publish(trs[:2]) != 0 || tc.Epoch() != 1 {
		t.Fatalf("duplicate batch bumped epoch to %d", tc.Epoch())
	}
	if tc.Publish(trs[2:]) == 0 || tc.Epoch() != 2 {
		t.Fatalf("second batch: epoch=%d, want 2", tc.Epoch())
	}
}

// TestTraceCacheConcurrentReadersWithBarrierPublish reproduces the
// pool's access pattern under the race detector: rounds of concurrent
// readers (Lookup + atomic RecordLookup), separated by barriers where a
// single goroutine publishes the next batch. The cache itself is
// lock-free; the barrier is the correctness contract.
func TestTraceCacheConcurrentReadersWithBarrierPublish(t *testing.T) {
	trs := buildTraces(t)
	tc := NewTraceCache()
	const readers = 4
	for round := 0; round < len(trs); round++ {
		tc.Publish(trs[round : round+1])
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, tr := range trs {
					_, hit := tc.Lookup(tr.Addr)
					tc.RecordLookup(hit)
				}
			}()
		}
		wg.Wait()
	}
	st := tc.Stats()
	rounds := uint64(len(trs))
	lookups := rounds * readers * uint64(len(trs))
	if st.Hits+st.Misses != lookups {
		t.Fatalf("recorded %d outcomes, want %d", st.Hits+st.Misses, lookups)
	}
	// Round r sees r+1 published traces.
	wantHits := uint64(0)
	for r := uint64(1); r <= rounds; r++ {
		wantHits += r * readers
	}
	if st.Hits != wantHits {
		t.Fatalf("hits = %d, want %d", st.Hits, wantHits)
	}
	if tc.Len() != len(trs) || tc.Epoch() != rounds {
		t.Fatalf("len=%d epoch=%d, want %d/%d", tc.Len(), tc.Epoch(), len(trs), rounds)
	}
}
