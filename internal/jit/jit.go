// Package jit implements the trace-based just-in-time translation layer
// of the Pin-workalike engine: basic-block and trace construction over
// guest code, the instrumented-trace representation, and the code cache.
//
// Mirroring Pin's VM (paper Section 2.2), execution units are traces — a
// straight-line sequence of basic blocks entered at the top, extended
// through the fall-through edges of conditional branches, and ended at an
// unconditional control transfer, a system call, or a size limit. The
// dispatcher (internal/pin) looks traces up in the code cache and invokes
// compilation on a miss; compilation is where instrumentation is woven in.
package jit

import (
	"fmt"
	"sync/atomic"

	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/mem"
	"superpin/internal/obs"
	"superpin/internal/prof"
)

// Limits on trace construction, matching the spirit of Pin's trace
// selection heuristics.
const (
	MaxTraceBbls = 8
	MaxTraceIns  = 64
)

// BBL is a decoded basic block: straight-line instructions ending at the
// first control transfer (or at the trace size limit).
type BBL struct {
	// Addr is the address of the first instruction.
	Addr uint32
	// Ins are the decoded instructions; instruction i is at Addr + 4i.
	Ins []isa.Inst
}

// NumIns returns the number of instructions in the block.
func (b *BBL) NumIns() int { return len(b.Ins) }

// InsAddr returns the address of instruction i.
func (b *BBL) InsAddr(i int) uint32 { return b.Addr + uint32(i)*isa.WordSize }

// Trace is a single-entry multiple-exit sequence of basic blocks.
type Trace struct {
	Addr   uint32
	Bbls   []*BBL
	NumIns int
}

// BuildTrace decodes a trace starting at pc from guest memory. It never
// fails on size grounds; it fails only if the first instruction cannot be
// decoded (executing from a non-code address). An undecodable word later
// in the trace simply ends the trace early — the bad word might never be
// reached at run time, and if it is, execution faults there.
func BuildTrace(m *mem.Memory, pc uint32) (*Trace, error) {
	return BuildTraceSplit(m, pc, 0)
}

// BuildTraceSplit is BuildTrace with a forced trace boundary: when split
// is non-zero, any trace that would flow into address split ends just
// before it, so split is always a trace (and basic-block) leader.
// SuperPin slices compile with their end-signature PC as the split point,
// which keeps basic-block-granularity tools exact across slice
// boundaries: the partial block before the boundary is its own block, and
// the instructions from the boundary onward are counted only by the next
// slice.
func BuildTraceSplit(m *mem.Memory, pc, split uint32) (*Trace, error) {
	tr := &Trace{Addr: pc}
	cur := pc
	for len(tr.Bbls) < MaxTraceBbls && tr.NumIns < MaxTraceIns {
		bbl := &BBL{Addr: cur}
		for tr.NumIns < MaxTraceIns {
			if split != 0 && cur == split && tr.NumIns > 0 {
				return endTrace(tr, bbl), nil
			}
			in, err := m.FetchInst(cur)
			if err != nil {
				if tr.NumIns == 0 {
					return nil, fmt.Errorf("jit: trace at %#08x: %w", pc, err)
				}
				return endTrace(tr, bbl), nil
			}
			bbl.Ins = append(bbl.Ins, in)
			tr.NumIns++
			cur += isa.WordSize
			if in.Op.EndsBlock() {
				tr.Bbls = append(tr.Bbls, bbl)
				if in.Op.IsUncondBranch() || in.Op == isa.OpSYSCALL {
					return tr, nil // trace ends at unconditional transfer
				}
				// Conditional branch: extend the trace along the
				// fall-through edge with a new block.
				bbl = nil
				break
			}
		}
		if bbl != nil { // size limit hit mid-block
			if len(bbl.Ins) > 0 {
				tr.Bbls = append(tr.Bbls, bbl)
			}
			return tr, nil
		}
	}
	return tr, nil
}

func endTrace(tr *Trace, bbl *BBL) *Trace {
	if len(bbl.Ins) > 0 {
		tr.Bbls = append(tr.Bbls, bbl)
	}
	return tr
}

// AnalysisFn is an analysis routine inserted by a tool. The context
// argument exposes the architectural state of the instrumented process at
// the instrumentation point.
type AnalysisFn func(ctx *Ctx)

// PredicateFn is an inlined conditional analysis routine (InsertIfCall):
// cheap, and guarding a full AnalysisFn (InsertThenCall).
type PredicateFn func(ctx *Ctx) bool

// CondKind enumerates the comparison shapes a tool can declare for an
// If-predicate (InsertIfCondCall). CondNone marks an opaque predicate.
type CondKind uint8

const (
	CondNone CondKind = iota
	CondEQ            // R[Reg] == Imm
	CondNE            // R[Reg] != Imm
	CondLTU           // R[Reg] <  Imm, unsigned
	CondGEU           // R[Reg] >= Imm, unsigned
)

// Cond is the declarative form of an If-predicate: the tool asserts its
// If callback returns exactly `R[Reg] <op> Imm` at this site. A
// declared shape lets the engine consult the static value analysis and
// fold the predicate where the comparison is decided at compile time.
type Cond struct {
	Kind CondKind
	Reg  uint8
	Imm  uint32
}

// Fold is the engine's compile-time verdict on a declared predicate.
type Fold uint8

const (
	FoldUnknown Fold = iota // not declared, not provable, or analysis off
	FoldTrue                // predicate is true on every execution of the site
	FoldFalse               // predicate is false on every execution of the site
)

// Call is one analysis-call site attached to an instruction.
// Either Fn is set (a plain InsertCall), or If/Then are set (an inlined
// InsertIfCall guarding an InsertThenCall; Then may be nil for a bare
// if). Cond optionally declares the If predicate's shape
// (InsertIfCondCall); Fold is stamped by the engine at compile time
// when the static value analysis decides the declared comparison.
type Call struct {
	Fn   AnalysisFn
	If   PredicateFn
	Then AnalysisFn
	Cond Cond
	Fold Fold
}

// CompiledIns is one guest instruction in a compiled trace together with
// its woven-in instrumentation.
//
// LiveBefore and LiveAfter are statically-live register masks (bit i set
// means ri may be read before being overwritten on some path from here),
// stamped by the pin engine from the load-time static analysis when one
// is attached. Zero means "unknown" — the analysis always sets bit 0
// (r0) on masks it computed — and consumers must then assume every
// register is live. They are only stamped on instructions carrying calls.
type CompiledIns struct {
	Addr       uint32
	Inst       isa.Inst
	Before     []Call // run before the instruction executes
	After      []Call // run after it executes
	LiveBefore uint32 // live registers entering the instruction
	LiveAfter  uint32 // live registers after the instruction
}

// Superblock is a maximal run of consecutive compiled instructions that
// carry no analysis calls and cannot trap into the kernel: no Before or
// After call sites and no SYSCALL. The dispatch loop executes such a run
// as one cpu.ExecBlock call, batching cycle, instruction-count and COW
// accounting once per run instead of once per instruction. Superblocks
// are a host-side execution strategy only — the virtual cycles charged
// are identical to the per-instruction reference loop.
type Superblock struct {
	// Start is the index into CompiledTrace.Ins of the run's first
	// instruction; Block[i] predecodes Ins[Start+i].
	Start int
	Block []cpu.BlockIns
	// Cum[i] is the cumulative virtual cost of executing Block[:i+1]
	// (per-instruction exec cost plus the memory surcharge for memory
	// ops; copy-on-write charges are excluded and accounted separately).
	// Monotone non-decreasing, so the dispatch loop can binary-search
	// for the exact instruction where a cycle budget would trip.
	Cum []uint64
}

// numTraceLinks is the size of the per-trace successor cache. Trace
// exits are branches, so a handful of direct-mapped entries covers the
// taken/fall-through targets of a trace's few exit points.
const numTraceLinks = 4

// traceLink is one successor-cache entry: exits whose next PC equals pc
// may enter next directly, provided the code cache has not been flushed
// since the link was recorded (epoch match).
type traceLink struct {
	pc    uint32
	epoch uint64
	next  *CompiledTrace
}

// CompiledTrace is the code-cache resident, instrumented form of a trace.
type CompiledTrace struct {
	Addr uint32
	Ins  []CompiledIns

	// Sblocks and RunAt are the dispatch fast path's superblock index,
	// filled in by the pin engine after instrumentation is woven in.
	// RunAt[i] is the index into Sblocks of the run beginning coverage of
	// instruction i, or -1 when instruction i is not inside any run.
	// RunAt is nil when the trace has no runs (or the fast path is off).
	Sblocks []Superblock
	RunAt   []int32

	// Execs and SelfLoops count dispatches into this trace (SelfLoops the
	// subset that re-entered through the self-loop shortcut), and Exits
	// profiles where the trace's exits transferred to. The pin engine
	// maintains them until Execs crosses its hotness threshold, then
	// promotes the trace and stops counting. All three are host-side
	// tier-up state: they steer execution strategy, never virtual cycles,
	// and like the trace itself they are private to the owning engine.
	Execs     uint64
	SelfLoops uint64
	Exits     prof.ExitHist

	// Hot is the second-tier compilation artifact; nil until promotion.
	Hot *HotTrace

	links [numTraceLinks]traceLink
}

// NumIns returns the number of guest instructions in the compiled trace.
func (ct *CompiledTrace) NumIns() int { return len(ct.Ins) }

// SetLink records next as the successor trace for exits that transfer to
// pc, tagged with the code-cache epoch that validates it. This is the
// analogue of Pin patching a trace's exit branch to jump directly to its
// successor in the code cache (paper Section 2.2): subsequent exits to
// pc skip the dispatcher's map lookup.
func (ct *CompiledTrace) SetLink(pc uint32, next *CompiledTrace, epoch uint64) {
	ct.links[(pc>>2)%numTraceLinks] = traceLink{pc: pc, epoch: epoch, next: next}
}

// Link returns the cached successor trace for exits to pc, or nil when
// no valid link exists. An entry recorded before the last cache flush is
// dead — the target was evicted — so it is cleared and reported via
// stale rather than followed.
func (ct *CompiledTrace) Link(pc uint32, epoch uint64) (next *CompiledTrace, stale bool) {
	l := &ct.links[(pc>>2)%numTraceLinks]
	if l.next == nil || l.pc != pc {
		return nil, false
	}
	if l.epoch != epoch {
		*l = traceLink{}
		return nil, true
	}
	return l.next, false
}

// Compile lowers a trace into its executable compiled form (without
// instrumentation; the pin engine's instrumentation pass fills in the
// call lists afterwards).
func Compile(tr *Trace) *CompiledTrace {
	ct := &CompiledTrace{Addr: tr.Addr, Ins: make([]CompiledIns, 0, tr.NumIns)}
	for _, b := range tr.Bbls {
		for i, in := range b.Ins {
			ct.Ins = append(ct.Ins, CompiledIns{Addr: b.InsAddr(i), Inst: in})
		}
	}
	return ct
}

// ContainsBeyondHead reports whether pc is the address of an instruction
// inside the trace other than its entry. SuperPin slices must not use a
// shared translation that crosses their boundary PC (the boundary must be
// a block leader for exact block-granularity instrumentation), so they
// check this before adopting a shared trace.
func (t *Trace) ContainsBeyondHead(pc uint32) bool {
	if pc == 0 || pc == t.Addr {
		return false
	}
	for _, b := range t.Bbls {
		if pc >= b.Addr && pc < b.Addr+uint32(b.NumIns())*isa.WordSize &&
			(pc-b.Addr)%isa.WordSize == 0 {
			return true
		}
	}
	return false
}

// TraceCacheStats are cumulative shared-translation-cache statistics.
type TraceCacheStats struct {
	Hits   uint64
	Misses uint64
}

// traceCacheShards is the number of entry-address shards in a shared
// TraceCache. Sharding keeps barrier publication cache-friendly and
// bounds any one map's growth; the shard of an entry depends only on its
// address, never on who built it.
const traceCacheShards = 16

// TraceCache is a translation cache shared across engines — the paper's
// Section 8 future-work idea of sharing the code cache across all
// timeslices. It stores *uninstrumented* built traces: translation (the
// expensive part of compilation) happens once, while each engine still
// weaves its own instrumentation, since analysis calls are bound to
// per-slice tool state.
//
// Concurrency contract (what keeps parallel runs byte-identical to
// serial runs): engines running on pool workers only *read* the cache
// (Lookup) and count outcomes through the atomic statistics
// (RecordLookup). Newly built traces are not inserted mid-quantum —
// each engine keeps them pending privately and the scheduler publishes
// every engine's pending set, in slice order, at the quantum barrier
// (Publish), while all workers are quiescent. Publication is therefore a
// pure function of virtual time, identical for every worker count, and
// the map writes are ordered against worker reads by the pool's round
// protocol — no locks needed. Each Publish batch that lands at least one
// new entry advances the cache epoch.
type TraceCache struct {
	shards [traceCacheShards]map[uint32]*Trace
	epoch  uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewTraceCache creates an empty shared translation cache.
func NewTraceCache() *TraceCache {
	tc := &TraceCache{}
	for i := range tc.shards {
		tc.shards[i] = make(map[uint32]*Trace)
	}
	return tc
}

// shardOf maps a (word-aligned) trace entry address to its shard.
func shardOf(pc uint32) uint32 { return (pc >> 2) % traceCacheShards }

// Lookup returns the shared trace entered at pc, if present. Lookup is a
// pure read — it mutates no statistics — so the cache safely serves
// concurrent readers; the engine that owns the lookup records its outcome
// with RecordLookup.
func (tc *TraceCache) Lookup(pc uint32) (*Trace, bool) {
	tr, ok := tc.shards[shardOf(pc)][pc]
	return tr, ok
}

// RecordLookup accumulates one lookup outcome into the statistics. The
// counters are atomic: every engine on every worker records through the
// same pair.
func (tc *TraceCache) RecordLookup(hit bool) {
	if hit {
		tc.hits.Add(1)
	} else {
		tc.misses.Add(1)
	}
}

// Insert publishes a built trace for other engines to reuse, returning
// whether it created a new entry. Re-inserting an existing entry keeps
// the first (all engines build identical traces from the same code).
// Callers must hold the publication barrier: Insert runs only while no
// engine executes on a pool worker.
func (tc *TraceCache) Insert(tr *Trace) bool {
	s := tc.shards[shardOf(tr.Addr)]
	if _, dup := s[tr.Addr]; dup {
		return false
	}
	s[tr.Addr] = tr
	return true
}

// Publish inserts a batch of built traces (one engine's pending set, in
// build order) at the quantum barrier, advancing the cache epoch if any
// entry is new. It returns the number of entries created.
func (tc *TraceCache) Publish(trs []*Trace) int {
	n := 0
	for _, tr := range trs {
		if tc.Insert(tr) {
			n++
		}
	}
	if n > 0 {
		tc.epoch++
	}
	return n
}

// Epoch returns the publication epoch: the number of Publish batches
// that added at least one entry. Deterministic across worker counts.
func (tc *TraceCache) Epoch() uint64 { return tc.epoch }

// Len returns the number of published traces.
func (tc *TraceCache) Len() int {
	n := 0
	for _, s := range tc.shards {
		n += len(s)
	}
	return n
}

// Stats returns cumulative statistics.
func (tc *TraceCache) Stats() TraceCacheStats {
	return TraceCacheStats{Hits: tc.hits.Load(), Misses: tc.misses.Load()}
}

// CacheStats are cumulative code-cache statistics. The Link counters
// track the trace-linking fast path: a hit is a trace exit resolved
// through the predecessor's successor cache (no map lookup), a miss is
// an exit that fell back to the dispatcher, and an invalidation is a
// link found dead because the cache was flushed after it was recorded.
type CacheStats struct {
	Lookups     uint64
	Misses      uint64
	Compiles    uint64
	CompiledIns uint64
	Flushes     uint64

	LinkHits          uint64
	LinkMisses        uint64
	LinkInvalidations uint64
}

// CodeCache maps trace entry addresses to compiled traces, with a
// capacity measured in compiled instructions. Like Pin, exceeding the
// capacity flushes the entire cache; applications whose code footprint
// exceeds the cache recompile continually (the paper's gcc).
type CodeCache struct {
	// Capacity is the maximum resident compiled instructions; <= 0 means
	// unlimited.
	Capacity int

	// Trace, when non-nil, receives EvCompile/EvCacheFlush events. PID
	// identifies the owning process and Now is the virtual timestamp;
	// both are maintained by the owning engine before it drives the
	// cache (the cache itself has no notion of time).
	Trace *obs.Tracer
	PID   int32
	Now   uint64

	// SizeHist, when non-nil, observes the compiled size (in guest
	// instructions) of every inserted trace. It is attached by the
	// owning engine when telemetry is enabled.
	SizeHist *obs.Hist

	traces   map[uint32]*CompiledTrace
	resident int
	epoch    uint64
	stats    CacheStats
}

// NewCodeCache creates a cache holding up to capacity compiled
// instructions (<= 0 for unlimited).
func NewCodeCache(capacity int) *CodeCache {
	return &CodeCache{Capacity: capacity, traces: make(map[uint32]*CompiledTrace)}
}

// Lookup returns the compiled trace entered at pc, or nil on a miss.
// Lookup is a pure read — it mutates no statistics — making read-only
// sharing safe; the owning engine records the outcome with RecordLookup.
func (c *CodeCache) Lookup(pc uint32) *CompiledTrace {
	return c.traces[pc]
}

// RecordLookup accumulates one lookup outcome into the statistics,
// keeping mutation on the cache's owning engine rather than hidden inside
// Lookup.
func (c *CodeCache) RecordLookup(hit bool) {
	c.stats.Lookups++
	if !hit {
		c.stats.Misses++
	}
}

// Traces calls fn for every resident compiled trace, in no particular
// order. It is a read-only walk for tests and diagnostics; fn must not
// insert into or flush the cache.
func (c *CodeCache) Traces(fn func(*CompiledTrace)) {
	for _, ct := range c.traces { //detguard:ok documented order-free walk
		fn(ct)
	}
}

// RecordLink accumulates one trace-link resolution outcome.
func (c *CodeCache) RecordLink(hit bool) {
	if hit {
		c.stats.LinkHits++
	} else {
		c.stats.LinkMisses++
	}
}

// RecordLinkInvalidation accumulates one stale-link detection (a link
// recorded before the last flush).
func (c *CodeCache) RecordLinkInvalidation() { c.stats.LinkInvalidations++ }

// Epoch returns the cache's flush epoch. It increments on every Flush;
// trace links record the epoch they were created in and are dead when it
// no longer matches.
func (c *CodeCache) Epoch() uint64 { return c.epoch }

// Insert adds a compiled trace, flushing the cache first if it would
// exceed capacity. A single trace larger than the entire capacity is
// admitted capacity-exempt — no flush, and excluded from the resident
// accounting — because no amount of flushing can make it fit, and
// counting it would leave resident above capacity forever, wedging the
// cache into a whole-cache flush on every subsequent insert.
func (c *CodeCache) Insert(ct *CompiledTrace) {
	n := ct.NumIns()
	oversized := c.Capacity > 0 && n > c.Capacity
	if c.Capacity > 0 && !oversized && c.resident+n > c.Capacity && len(c.traces) > 0 {
		c.Flush()
	}
	c.traces[ct.Addr] = ct
	if !oversized {
		c.resident += n
	}
	c.stats.Compiles++
	c.stats.CompiledIns += uint64(n)
	if c.SizeHist != nil {
		c.SizeHist.Observe(uint64(n))
	}
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{
			Kind: obs.EvCompile, Time: c.Now, PID: c.PID, CPU: -1,
			Arg: uint64(ct.Addr), Arg2: uint64(n),
		})
	}
}

// Flush discards every compiled trace.
func (c *CodeCache) Flush() {
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{
			Kind: obs.EvCacheFlush, Time: c.Now, PID: c.PID, CPU: -1,
			Arg: uint64(c.resident),
		})
	}
	c.traces = make(map[uint32]*CompiledTrace)
	c.resident = 0
	c.epoch++
	c.stats.Flushes++
}

// Resident returns the number of compiled instructions currently cached.
func (c *CodeCache) Resident() int { return c.resident }

// Stats returns cumulative cache statistics.
func (c *CodeCache) Stats() CacheStats { return c.stats }
