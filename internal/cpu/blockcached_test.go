package cpu

import (
	"math/rand"
	"testing"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// writtenSet is the written-register mask the hot tier computes at
// promotion (bit 0 always set), reimplemented here for the differential.
func writtenSet(block []BlockIns) uint32 {
	m := uint32(1)
	for i := range block {
		if d := block[i].Inst.DstReg(); d >= 0 {
			m |= 1 << uint(d)
		}
	}
	return m
}

// runBothExecutors executes block through ExecBlock and ExecBlockCached
// (written-set mask) from identical states and asserts byte-identical
// outcomes: count, event, error, the full register file and memory.
func runBothExecutors(t *testing.T, seed map[uint32]uint32, init Regs, block []BlockIns, max int) (int, Event, error) {
	t.Helper()
	mRef, mGot := mem.New(), mem.New()
	for _, s := range []*mem.Memory{mRef, mGot} {
		for a, v := range seed {
			if f := s.StoreWord(a, v); f != nil {
				t.Fatal(f)
			}
		}
	}
	ref, got := init, init
	rn, rev, rerr := ExecBlock(&ref, mRef, block, max, mRef.CopyEvents)
	gn, gev, gerr := ExecBlockCached(&got, mGot, block, max, mGot.CopyEvents, writtenSet(block))
	if rn != gn || rev != gev || (rerr == nil) != (gerr == nil) {
		t.Fatalf("executors diverged: ref (n=%d ev=%v err=%v) vs cached (n=%d ev=%v err=%v)",
			rn, rev, rerr, gn, gev, gerr)
	}
	if rerr != nil {
		re, ge := rerr.(*Error), gerr.(*Error)
		if re.PC != ge.PC || re.Inst != ge.Inst {
			t.Fatalf("fault state diverged: ref %+v vs cached %+v", re, ge)
		}
	}
	if ref != got {
		t.Fatalf("registers diverged after %d ins:\nref    %+v\ncached %+v", rn, ref, got)
	}
	for a := range seed {
		rv, _ := mRef.LoadWord(a)
		gv, _ := mGot.LoadWord(a)
		if rv != gv {
			t.Fatalf("memory diverged at %#x: ref %#x, cached %#x", a, rv, gv)
		}
	}
	return rn, rev, rerr
}

// randBlock generates a random predecoded straight-line run mixing the
// cached loop's inlined opcodes with fallback ones (DIV, REM, byte
// memory, SYSCALL is excluded like real superblocks exclude it).
func randBlock(rng *rand.Rand, base uint32, n int) []BlockIns {
	ops := []isa.Opcode{
		isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI,
		isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpSLTIU, isa.OpLUI,
		isa.OpLW, isa.OpSW, isa.OpLB, isa.OpLBU, isa.OpSB,
		isa.OpDIV, isa.OpREM,
		isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
		isa.OpJAL, isa.OpJALR,
	}
	block := make([]BlockIns, n)
	for i := range block {
		in := isa.Inst{
			Op:  ops[rng.Intn(len(ops))],
			Rd:  uint8(rng.Intn(isa.NumRegs)),
			Rs1: uint8(rng.Intn(8)),
			Rs2: uint8(rng.Intn(8)),
			Imm: int32(rng.Intn(64) - 32),
		}
		if in.Op.IsMem() {
			// Register 7 holds a safe data-page base (see caller); keep
			// the offset word-aligned and small so LW/SW never fault
			// (byte ops accept any alignment).
			in.Rs1 = 7
			in.Imm = int32(rng.Intn(16)) * 4
		}
		if in.Op.IsCondBranch() {
			// Small forward offsets: taken branches leave the run,
			// exercising the early-stop path mid-block.
			in.Imm = int32(rng.Intn(8) + 1)
		}
		block[i] = BlockIns{Inst: in, Next: base + uint32(4*(i+1))}
	}
	return block
}

// TestExecBlockCachedDifferentialRandom drives the cached executor and
// the reference executor over thousands of random runs and demands
// byte-identical outcomes, including mid-run stops at taken branches.
func TestExecBlockCachedDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	const dataBase = 0x8000
	seed := map[uint32]uint32{}
	for i := uint32(0); i < 16; i++ {
		seed[dataBase+i*4] = 0xdead_0000 + i
	}
	for trial := 0; trial < 4000; trial++ {
		base := uint32(0x1000 + 4*rng.Intn(64))
		block := randBlock(rng, base, 1+rng.Intn(12))
		init := Regs{PC: base}
		for i := 1; i < 8; i++ {
			init.R[i] = rng.Uint32()
		}
		init.R[7] = dataBase
		max := 1 + rng.Intn(len(block))
		runBothExecutors(t, seed, init, block, max)
	}
}

// TestExecBlockCachedFault: a faulting load must stop uncounted with the
// PC on the faulting instruction and every prior register write visible
// through the masked writeback.
func TestExecBlockCachedFault(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 2}, // r1 = 2 (misaligned)
		isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 9}, // must survive the fault
		isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1, Imm: 0},   // faults
	)
	n, _, err := runBothExecutors(t, nil, Regs{PC: base}, block, len(block))
	if err == nil || n != 2 {
		t.Fatalf("n=%d err=%v, want 2 with fault", n, err)
	}
}

// TestExecBlockCachedCowStop: a copy-on-write event must break the run at
// the triggering store, exactly like ExecBlock.
func TestExecBlockCachedCowStop(t *testing.T) {
	const base = 0x1000
	parent := mem.New()
	if f := parent.StoreWord(0x8000, 42); f != nil {
		t.Fatal(f)
	}
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0x20},
		isa.Inst{Op: isa.OpSLLI, Rd: 1, Rs1: 1, Imm: 10}, // r1 = 0x8000
		isa.Inst{Op: isa.OpSW, Rd: 2, Rs1: 1, Imm: 0},    // COW copy
		isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 1},  // after the event
	)
	for _, full := range []uint32{writtenSet(block), ^uint32(0)} {
		child := parent.Fork()
		r := Regs{PC: base}
		n, ev, err := ExecBlockCached(&r, child, block, len(block), child.CopyEvents, full)
		if err != nil || ev != EvNone || n != 3 {
			t.Fatalf("mask %#x: n=%d ev=%v err=%v, want 3/EvNone", full, n, ev, err)
		}
		if r.R[3] != 0 {
			t.Fatalf("mask %#x: instruction after COW event executed", full)
		}
	}
}

// TestWriteBackMasked: only the registers selected by the mask (plus PC)
// may move; everything else must keep the destination's values. This is
// the contract that makes a written-set mask sufficient — registers the
// run cannot write still hold their original values in the local copy.
func TestWriteBackMasked(t *testing.T) {
	var dst, src Regs
	for i := range src.R {
		dst.R[i] = uint32(100 + i)
		src.R[i] = uint32(200 + i)
	}
	dst.PC, src.PC = 0x1000, 0x2000
	want := dst
	wb := uint32(1)<<5 | 1<<17 | 1
	writeBack(&dst, &src, wb)
	want.R[0], want.R[5], want.R[17] = src.R[0], src.R[5], src.R[17]
	want.PC = src.PC
	if dst != want {
		t.Fatalf("masked writeback:\ngot  %+v\nwant %+v", dst, want)
	}
	// The full mask copies everything.
	writeBack(&dst, &src, ^uint32(0))
	if dst != src {
		t.Fatal("full-mask writeback is not a full copy")
	}
}
