package cpu

import (
	"testing"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// mkBlock lays out instructions at consecutive addresses starting at base
// and returns the predecoded straight-line block.
func mkBlock(base uint32, ins ...isa.Inst) []BlockIns {
	out := make([]BlockIns, len(ins))
	for i, in := range ins {
		out[i] = BlockIns{Inst: in, Next: base + uint32(4*(i+1))}
	}
	return out
}

// TestExecBlockMatchesExecLoop: ExecBlock over a straight-line run must
// leave exactly the state a per-instruction Exec loop leaves.
func TestExecBlockMatchesExecLoop(t *testing.T) {
	const base = 0x1000
	ins := []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 7},
		{Op: isa.OpADD, Rd: 2, Rs1: 2, Rs2: 1},
		{Op: isa.OpXOR, Rd: 3, Rs1: 3, Rs2: 2},
		{Op: isa.OpSLLI, Rd: 4, Rs1: 1, Imm: 3},
		{Op: isa.OpSUB, Rd: 5, Rs1: 4, Rs2: 2},
	}
	block := mkBlock(base, ins...)

	ref := Regs{PC: base}
	mr := mem.New()
	for _, in := range ins {
		if _, err := Exec(&ref, mr, in); err != nil {
			t.Fatal(err)
		}
	}

	got := Regs{PC: base}
	mg := mem.New()
	n, ev, err := ExecBlock(&got, mg, block, len(block), mg.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ins) || ev != EvNone {
		t.Fatalf("n=%d ev=%v, want %d/EvNone", n, ev, len(ins))
	}
	if got != ref {
		t.Fatalf("state diverged:\ngot %+v\nref %+v", got, ref)
	}
}

func TestExecBlockStopsAtTakenBranch(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 1},
		isa.Inst{Op: isa.OpBNE, Rs1: 1, Rs2: 0, Imm: 10}, // taken: diverges
		isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 99}, // must not run
	)
	r := Regs{PC: base}
	m := mem.New()
	n, ev, err := ExecBlock(&r, m, block, len(block), m.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	// The taken branch itself is counted; execution stops after it.
	if n != 2 || ev != EvNone {
		t.Fatalf("n=%d ev=%v, want 2/EvNone", n, ev)
	}
	if r.R[2] != 0 {
		t.Fatal("instruction after taken branch executed")
	}
	if want := BranchTarget(base+4, block[1].Inst); r.PC != want {
		t.Fatalf("PC=%#x, want branch target %#x", r.PC, want)
	}
}

func TestExecBlockNotTakenBranchFallsThrough(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpBNE, Rs1: 0, Rs2: 0, Imm: 10}, // not taken
		isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 5},
	)
	r := Regs{PC: base}
	m := mem.New()
	n, _, err := ExecBlock(&r, m, block, len(block), m.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || r.R[2] != 5 {
		t.Fatalf("n=%d r2=%d, want 2/5", n, r.R[2])
	}
}

func TestExecBlockHonorsMax(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1},
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1},
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1},
	)
	r := Regs{PC: base}
	m := mem.New()
	n, _, err := ExecBlock(&r, m, block, 2, m.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || r.R[1] != 2 || r.PC != base+8 {
		t.Fatalf("n=%d r1=%d pc=%#x", n, r.R[1], r.PC)
	}
	// A max beyond the block length is clamped, not an overrun.
	if n, _, err = ExecBlock(&r, m, block[2:], 100, m.CopyEvents); err != nil || n != 1 {
		t.Fatalf("clamped run: n=%d err=%v", n, err)
	}
}

func TestExecBlockFaultNotCounted(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 2}, // r1 = 2 (misaligned)
		isa.Inst{Op: isa.OpLW, Rd: 2, Rs1: 1, Imm: 0},   // faults
	)
	r := Regs{PC: base}
	m := mem.New()
	n, _, err := ExecBlock(&r, m, block, len(block), m.CopyEvents)
	if err == nil {
		t.Fatal("expected fault")
	}
	// Like Exec, the faulting instruction does not count and the PC stays
	// on it.
	if n != 1 || r.PC != base+4 {
		t.Fatalf("n=%d pc=%#x, want 1/%#x", n, r.PC, base+4)
	}
}

func TestExecBlockStopsAtCowEvent(t *testing.T) {
	const base = 0x1000
	parent := mem.New()
	if f := parent.StoreWord(0x8000, 42); f != nil {
		t.Fatal(f)
	}
	child := parent.Fork()

	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0x20},
		isa.Inst{Op: isa.OpSLLI, Rd: 1, Rs1: 1, Imm: 10}, // r1 = 0x8000
		isa.Inst{Op: isa.OpSW, Rd: 2, Rs1: 1, Imm: 0},    // COW copy
		isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 1},  // after the event
	)
	r := Regs{PC: base}
	n, ev, err := ExecBlock(&r, child, block, len(block), child.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if ev != EvNone {
		t.Fatalf("ev=%v", ev)
	}
	// The copy-triggering store is counted, then the run breaks so the
	// caller can charge the copy at that exact instruction.
	if n != 3 {
		t.Fatalf("n=%d, want 3 (stop at COW event)", n)
	}
	if r.R[3] != 0 {
		t.Fatal("instruction after COW event executed")
	}
	if child.CopyEvents == 0 {
		t.Fatal("test setup: store did not trigger a copy event")
	}
}

func TestExecBlockSyscallEventCounted(t *testing.T) {
	const base = 0x1000
	block := mkBlock(base,
		isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 1},
		isa.Inst{Op: isa.OpSYSCALL},
		isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 1},
	)
	r := Regs{PC: base}
	m := mem.New()
	n, ev, err := ExecBlock(&r, m, block, len(block), m.CopyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || ev != EvSyscall {
		t.Fatalf("n=%d ev=%v, want 2/EvSyscall", n, ev)
	}
	if r.PC != base+8 {
		t.Fatalf("PC=%#x, want past the syscall", r.PC)
	}
}
