package cpu

import (
	"math/bits"

	"superpin/internal/isa"
)

// SaveMasked copies the registers selected by mask (bit i → ri) from r
// into dst and returns how many it copied. A full mask takes the
// whole-array fast path. The pin engine uses it with RestoreMasked to
// model Pin's register spill/fill around inlined analysis predicates,
// narrowed to the statically-live set when liveness is known.
func SaveMasked(r *Regs, mask uint32, dst *[isa.NumRegs]uint32) int {
	if mask == ^uint32(0) {
		*dst = r.R
		return isa.NumRegs
	}
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		dst[i] = r.R[i]
		n++
	}
	return n
}

// RestoreMasked copies the registers selected by mask from src back into
// r, inverting SaveMasked.
func RestoreMasked(r *Regs, mask uint32, src *[isa.NumRegs]uint32) {
	if mask == ^uint32(0) {
		r.R = *src
		return
	}
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		r.R[i] = src[i]
	}
}
