package cpu

import (
	"testing"
	"testing/quick"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// TestALUModelProperty cross-checks Exec's ALU semantics against directly
// written Go expressions over random operands (model-based testing with
// testing/quick).
func TestALUModelProperty(t *testing.T) {
	type model struct {
		op isa.Opcode
		f  func(a, b uint32) uint32
	}
	models := []model{
		{isa.OpADD, func(a, b uint32) uint32 { return a + b }},
		{isa.OpSUB, func(a, b uint32) uint32 { return a - b }},
		{isa.OpMUL, func(a, b uint32) uint32 { return a * b }},
		{isa.OpAND, func(a, b uint32) uint32 { return a & b }},
		{isa.OpOR, func(a, b uint32) uint32 { return a | b }},
		{isa.OpXOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.OpSLL, func(a, b uint32) uint32 { return a << (b & 31) }},
		{isa.OpSRL, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{isa.OpSRA, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{isa.OpSLT, func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		}},
		{isa.OpSLTU, func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.OpDIV, func(a, b uint32) uint32 {
			switch {
			case b == 0:
				return ^uint32(0)
			case int32(a) == -1<<31 && int32(b) == -1:
				return a
			default:
				return uint32(int32(a) / int32(b))
			}
		}},
		{isa.OpREM, func(a, b uint32) uint32 {
			switch {
			case b == 0:
				return a
			case int32(a) == -1<<31 && int32(b) == -1:
				return 0
			default:
				return uint32(int32(a) % int32(b))
			}
		}},
	}
	m := mem.New()
	for _, mod := range models {
		mod := mod
		prop := func(a, b uint32) bool {
			r := &Regs{}
			r.R[1], r.R[2] = a, b
			if _, err := Exec(r, m, isa.Inst{Op: mod.op, Rd: 3, Rs1: 1, Rs2: 2}); err != nil {
				return false
			}
			return r.R[3] == mod.f(a, b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", mod.op, err)
		}
	}
}

// TestBranchModelProperty cross-checks conditional-branch outcomes.
func TestBranchModelProperty(t *testing.T) {
	type model struct {
		op isa.Opcode
		f  func(a, b uint32) bool
	}
	models := []model{
		{isa.OpBEQ, func(a, b uint32) bool { return a == b }},
		{isa.OpBNE, func(a, b uint32) bool { return a != b }},
		{isa.OpBLT, func(a, b uint32) bool { return int32(a) < int32(b) }},
		{isa.OpBGE, func(a, b uint32) bool { return int32(a) >= int32(b) }},
		{isa.OpBLTU, func(a, b uint32) bool { return a < b }},
		{isa.OpBGEU, func(a, b uint32) bool { return a >= b }},
	}
	m := mem.New()
	for _, mod := range models {
		mod := mod
		prop := func(a, b uint32, off int16) bool {
			r := &Regs{PC: 0x1000}
			r.R[1], r.R[2] = a, b
			in := isa.Inst{Op: mod.op, Rs1: 1, Rs2: 2, Imm: int32(off)}
			if _, err := Exec(r, m, in); err != nil {
				return false
			}
			want := uint32(0x1004)
			if mod.f(a, b) {
				want = 0x1004 + uint32(int32(off))*4
			}
			return r.PC == want
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", mod.op, err)
		}
	}
}

// TestStoreLoadRoundTripProperty: a store followed by a load of the same
// width at the same address returns the stored value (with the width's
// truncation/extension).
func TestStoreLoadRoundTripProperty(t *testing.T) {
	m := mem.New()
	prop := func(addr, v uint32) bool {
		addr &^= 3
		r := &Regs{}
		r.R[1], r.R[2] = addr, v
		if _, err := Exec(r, m, isa.Inst{Op: isa.OpSW, Rd: 2, Rs1: 1}); err != nil {
			return false
		}
		r.PC = 0
		if _, err := Exec(r, m, isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1}); err != nil {
			return false
		}
		if r.R[3] != v {
			return false
		}
		// Byte round trip with zero- and sign-extension.
		r.PC = 0
		if _, err := Exec(r, m, isa.Inst{Op: isa.OpSB, Rd: 2, Rs1: 1}); err != nil {
			return false
		}
		r.PC = 0
		if _, err := Exec(r, m, isa.Inst{Op: isa.OpLBU, Rd: 4, Rs1: 1}); err != nil {
			return false
		}
		r.PC = 0
		if _, err := Exec(r, m, isa.Inst{Op: isa.OpLB, Rd: 5, Rs1: 1}); err != nil {
			return false
		}
		return r.R[4] == v&0xff && r.R[5] == uint32(int32(int8(v)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
