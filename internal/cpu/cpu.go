// Package cpu implements the SVR32 architectural state and the base
// interpreter that executes one decoded instruction against a guest
// memory image.
//
// Everything that runs guest code — the uninstrumented master application
// (internal/kernel), the Pin-style JIT engine (internal/pin) and the
// SuperPin slices (internal/core) — funnels through Exec, so tool results
// are bit-identical across execution modes. That property underpins the
// repository's central correctness tests: an instruction count collected
// by parallel SuperPin slices must equal the count from a serial Pin run
// and from plain interpretation.
package cpu

import (
	"fmt"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// Regs is the SVR32 architectural register state.
type Regs struct {
	R  [isa.NumRegs]uint32
	PC uint32
}

// Event reports what happened while executing one instruction.
type Event uint8

// Events returned by Exec.
const (
	EvNone    Event = iota // instruction completed normally
	EvSyscall              // a SYSCALL trapped; PC points at the next instruction
)

// Error wraps a fault raised by instruction execution.
type Error struct {
	PC   uint32
	Inst isa.Inst
	Err  error
}

func (e *Error) Error() string {
	return fmt.Sprintf("cpu: at %#08x (%v): %v", e.PC, e.Inst, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Fetch decodes the instruction at r.PC through the memory image's
// per-page predecode cache: after the first execution from a page, a
// fetch is a software-TLB hit plus an array index instead of a page-map
// lookup, byte assembly and decode.
func Fetch(r *Regs, m *mem.Memory) (isa.Inst, error) {
	in, err := m.FetchInst(r.PC)
	if err != nil {
		return isa.Inst{}, &Error{PC: r.PC, Err: err}
	}
	return in, nil
}

// FetchUncached decodes the instruction at r.PC with a plain load-and-
// decode sequence, bypassing the predecode cache. It exists so
// differential tests and benchmarks can compare the cached fetch path
// against the definitionally-correct slow one.
func FetchUncached(r *Regs, m *mem.Memory) (isa.Inst, error) {
	w, f := m.LoadWord(r.PC)
	if f != nil {
		return isa.Inst{}, &Error{PC: r.PC, Err: f}
	}
	in, err := isa.Decode(w)
	if err != nil {
		return isa.Inst{}, &Error{PC: r.PC, Err: err}
	}
	return in, nil
}

// EffAddr returns the effective data address of a memory instruction given
// the current register state. It is exposed for instrumentation arguments
// (IARG-style memory-address operands).
func EffAddr(r *Regs, in isa.Inst) uint32 {
	return r.R[in.Rs1] + uint32(in.Imm)
}

// BranchTarget returns the taken-target of a conditional branch or jal at
// pc. For jalr the target is register-dependent; use EffAddr semantics in
// Exec instead.
func BranchTarget(pc uint32, in isa.Inst) uint32 {
	return pc + isa.WordSize + uint32(in.Imm)*isa.WordSize
}

// Exec executes the decoded instruction in at r.PC, updating registers,
// memory and the PC. On EvSyscall the kernel must complete the system
// call; the PC already points past the syscall instruction.
func Exec(r *Regs, m *mem.Memory, in isa.Inst) (Event, error) {
	pc := r.PC
	next := pc + isa.WordSize
	rs1 := r.R[in.Rs1]
	rs2 := r.R[in.Rs2]

	switch in.Op {
	case isa.OpADD:
		r.R[in.Rd] = rs1 + rs2
	case isa.OpSUB:
		r.R[in.Rd] = rs1 - rs2
	case isa.OpMUL:
		r.R[in.Rd] = rs1 * rs2
	case isa.OpDIV:
		if rs2 == 0 {
			r.R[in.Rd] = ^uint32(0)
		} else if int32(rs1) == -1<<31 && int32(rs2) == -1 {
			r.R[in.Rd] = rs1 // overflow case: quotient = dividend
		} else {
			r.R[in.Rd] = uint32(int32(rs1) / int32(rs2))
		}
	case isa.OpREM:
		if rs2 == 0 {
			r.R[in.Rd] = rs1
		} else if int32(rs1) == -1<<31 && int32(rs2) == -1 {
			r.R[in.Rd] = 0
		} else {
			r.R[in.Rd] = uint32(int32(rs1) % int32(rs2))
		}
	case isa.OpAND:
		r.R[in.Rd] = rs1 & rs2
	case isa.OpOR:
		r.R[in.Rd] = rs1 | rs2
	case isa.OpXOR:
		r.R[in.Rd] = rs1 ^ rs2
	case isa.OpSLL:
		r.R[in.Rd] = rs1 << (rs2 & 31)
	case isa.OpSRL:
		r.R[in.Rd] = rs1 >> (rs2 & 31)
	case isa.OpSRA:
		r.R[in.Rd] = uint32(int32(rs1) >> (rs2 & 31))
	case isa.OpSLT:
		r.R[in.Rd] = b2u(int32(rs1) < int32(rs2))
	case isa.OpSLTU:
		r.R[in.Rd] = b2u(rs1 < rs2)

	case isa.OpADDI:
		r.R[in.Rd] = rs1 + uint32(in.Imm)
	case isa.OpANDI:
		r.R[in.Rd] = rs1 & uint32(in.Imm)
	case isa.OpORI:
		r.R[in.Rd] = rs1 | uint32(in.Imm)
	case isa.OpXORI:
		r.R[in.Rd] = rs1 ^ uint32(in.Imm)
	case isa.OpSLLI:
		r.R[in.Rd] = rs1 << (uint32(in.Imm) & 31)
	case isa.OpSRLI:
		r.R[in.Rd] = rs1 >> (uint32(in.Imm) & 31)
	case isa.OpSRAI:
		r.R[in.Rd] = uint32(int32(rs1) >> (uint32(in.Imm) & 31))
	case isa.OpSLTI:
		r.R[in.Rd] = b2u(int32(rs1) < in.Imm)
	case isa.OpSLTIU:
		r.R[in.Rd] = b2u(rs1 < uint32(in.Imm))
	case isa.OpLUI:
		r.R[in.Rd] = uint32(in.Imm) << 16

	case isa.OpLW:
		v, f := m.LoadWord(rs1 + uint32(in.Imm))
		if f != nil {
			return EvNone, &Error{PC: pc, Inst: in, Err: f}
		}
		r.R[in.Rd] = v
	case isa.OpLB:
		v, f := m.LoadByte(rs1 + uint32(in.Imm))
		if f != nil {
			return EvNone, &Error{PC: pc, Inst: in, Err: f}
		}
		r.R[in.Rd] = uint32(int32(int8(v)))
	case isa.OpLBU:
		v, f := m.LoadByte(rs1 + uint32(in.Imm))
		if f != nil {
			return EvNone, &Error{PC: pc, Inst: in, Err: f}
		}
		r.R[in.Rd] = uint32(v)
	case isa.OpSW:
		if f := m.StoreWord(rs1+uint32(in.Imm), r.R[in.Rd]); f != nil {
			return EvNone, &Error{PC: pc, Inst: in, Err: f}
		}
	case isa.OpSB:
		if f := m.StoreByte(rs1+uint32(in.Imm), byte(r.R[in.Rd])); f != nil {
			return EvNone, &Error{PC: pc, Inst: in, Err: f}
		}

	case isa.OpBEQ:
		if rs1 == rs2 {
			next = BranchTarget(pc, in)
		}
	case isa.OpBNE:
		if rs1 != rs2 {
			next = BranchTarget(pc, in)
		}
	case isa.OpBLT:
		if int32(rs1) < int32(rs2) {
			next = BranchTarget(pc, in)
		}
	case isa.OpBGE:
		if int32(rs1) >= int32(rs2) {
			next = BranchTarget(pc, in)
		}
	case isa.OpBLTU:
		if rs1 < rs2 {
			next = BranchTarget(pc, in)
		}
	case isa.OpBGEU:
		if rs1 >= rs2 {
			next = BranchTarget(pc, in)
		}

	case isa.OpJAL:
		r.R[in.Rd] = next
		next = BranchTarget(pc, in)
	case isa.OpJALR:
		target := (rs1 + uint32(in.Imm)) &^ 3
		r.R[in.Rd] = next
		next = target

	case isa.OpSYSCALL:
		r.R[isa.RegZero] = 0
		r.PC = next
		return EvSyscall, nil

	default:
		return EvNone, &Error{PC: pc, Inst: in, Err: fmt.Errorf("unimplemented opcode %v", in.Op)}
	}

	r.R[isa.RegZero] = 0
	r.PC = next
	return EvNone, nil
}

// Step fetches and executes one instruction at r.PC. It calls the memory
// image's FetchInst directly rather than going through Fetch: Step is the
// hottest function in the simulator (every native run and every slice
// replay funnels through it), and the extra call frame is measurable.
func Step(r *Regs, m *mem.Memory) (Event, isa.Inst, error) {
	in, err := m.FetchInst(r.PC)
	if err != nil {
		return EvNone, isa.Inst{}, &Error{PC: r.PC, Err: err}
	}
	ev, err := Exec(r, m, in)
	return ev, in, err
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
