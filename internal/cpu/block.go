package cpu

import (
	"superpin/internal/isa"
	"superpin/internal/mem"
	"superpin/internal/prof"
)

// BlockIns is one predecoded instruction in a straight-line block: the
// decoded instruction plus the address execution reaches when it falls
// through (its own address + 4). The executor compares the post-Exec PC
// against Next to detect taken branches without re-deriving addresses.
type BlockIns struct {
	Inst isa.Inst
	Next uint32
}

// ExecBlock executes up to max instructions of block, a predecoded
// straight-line run whose first instruction is at r.PC. It is the
// batched inner loop of the Pin engine's superblock fast path: no
// per-instruction cost accounting happens here, so the caller charges
// the run's cycles, instruction counts and copy-on-write costs once from
// the returned count.
//
// Execution stops, returning the number of instructions that completed,
// when any of the following occurs:
//
//   - max instructions completed;
//   - the PC diverged from the fall-through address (a taken branch or
//     jump) — the diverging instruction is counted, matching the
//     reference loop, which finishes an instruction before checking
//     where it went;
//   - the instruction raised an event (ev != EvNone) — counted;
//   - m.CopyEvents advanced past cowStart (a copy-on-write fault) —
//     counted, so the caller can charge the copy at the exact
//     instruction that triggered it;
//   - the instruction faulted (err != nil) — NOT counted, and the PC is
//     left at the faulting instruction, exactly like Exec.
func ExecBlock(r *Regs, m *mem.Memory, block []BlockIns, max int, cowStart uint64) (n int, ev Event, err error) {
	if max < len(block) {
		block = block[:max]
	}
	for i := range block {
		ev, err = Exec(r, m, block[i].Inst)
		if err != nil {
			return i, EvNone, err
		}
		if ev != EvNone || r.PC != block[i].Next || m.CopyEvents != cowStart {
			return i + 1, ev, nil
		}
	}
	return len(block), EvNone, nil
}

// ExecBlockProf is ExecBlock with a profiler probe observing every
// completed instruction. It exists as a separate loop (rather than a nil
// check inside ExecBlock) so the unprofiled fast path stays branch-free,
// and so profiled fast-path runs retire instructions through exactly the
// same per-instruction observation point as the reference loop — the
// sample stream is identical with the fast paths on or off because both
// paths drive the probe once per retired instruction, in order.
func ExecBlockProf(r *Regs, m *mem.Memory, block []BlockIns, max int, cowStart uint64, pr *prof.Probe) (n int, ev Event, err error) {
	if max < len(block) {
		block = block[:max]
	}
	for i := range block {
		ev, err = Exec(r, m, block[i].Inst)
		if err != nil {
			return i, EvNone, err
		}
		pr.OnExec(block[i].Inst, block[i].Next, r.PC)
		if ev != EvNone || r.PC != block[i].Next || m.CopyEvents != cowStart {
			return i + 1, ev, nil
		}
	}
	return len(block), EvNone, nil
}
