package cpu

import (
	"math/bits"

	"superpin/internal/isa"
	"superpin/internal/mem"
	"superpin/internal/prof"
)

// ExecBlockCached is ExecBlock on a host-local register file: the guest
// registers are copied into a stack-allocated Regs once per run, the run
// executes against that local copy with the common opcodes inlined into
// the loop (no per-instruction Exec call), and on the way out only the
// registers in wb — the run's static written-set, computed at hot-tier
// promotion — are written back, plus the PC. Registers the run cannot
// write are never touched in r, and registers it can write hold their
// reference values in the local file whether or not the run completed,
// so a masked writeback leaves r exactly as ExecBlock would have.
//
// The stop conditions, counting rules and fault semantics are identical
// to ExecBlock (see there); the two executors are differentially tested
// against each other over random programs and the whole benchmark
// catalog (`spbench -exp jitdiff`).
//
// wb must be the run's written-register mask with bit 0 set (writing r0
// back is harmless — it is zero in both copies — and a non-zero mask is
// how the dispatch loop distinguishes "cached run" from "not promoted").
// A full mask writes the whole register file back.
func ExecBlockCached(r *Regs, m *mem.Memory, block []BlockIns, max int, cowStart uint64, wb uint32) (n int, ev Event, err error) {
	if max < len(block) {
		block = block[:max]
	}
	l := *r
	n, ev, err = execCachedLoop(&l, m, block, cowStart)
	writeBack(r, &l, wb)
	return n, ev, err
}

// ExecBlockCachedProf is ExecBlockCached with a profiler probe observing
// every completed instruction. The run still executes on the host-local
// register file with a masked writeback; per-instruction dispatch goes
// through ExecBlockProf so profiled runs retire instructions through
// exactly the same observation point as every other execution mode.
func ExecBlockCachedProf(r *Regs, m *mem.Memory, block []BlockIns, max int, cowStart uint64, pr *prof.Probe, wb uint32) (n int, ev Event, err error) {
	l := *r
	n, ev, err = ExecBlockProf(&l, m, block, max, cowStart, pr)
	writeBack(r, &l, wb)
	return n, ev, err
}

// execCachedLoop runs block against the local register file l. The
// frequent opcodes (ALU, immediates, LW/SW, conditional branches, and
// the JAL/JALR that terminate most superblock runs, byte memory ops) are
// inlined — each case mirrors the corresponding Exec case exactly — and
// everything else (SYSCALL, undecodable) falls back to Exec on the local
// file, so the architectural outcome is the reference interpreter's by
// construction.
func execCachedLoop(l *Regs, m *mem.Memory, block []BlockIns, cowStart uint64) (int, Event, error) {
	for i := range block {
		in := block[i].Inst
		pc := l.PC
		rs1 := l.R[in.Rs1]
		rs2 := l.R[in.Rs2]
		next := pc + isa.WordSize

		switch in.Op {
		case isa.OpADD:
			l.R[in.Rd] = rs1 + rs2
		case isa.OpSUB:
			l.R[in.Rd] = rs1 - rs2
		case isa.OpMUL:
			l.R[in.Rd] = rs1 * rs2
		case isa.OpAND:
			l.R[in.Rd] = rs1 & rs2
		case isa.OpOR:
			l.R[in.Rd] = rs1 | rs2
		case isa.OpXOR:
			l.R[in.Rd] = rs1 ^ rs2
		case isa.OpSLL:
			l.R[in.Rd] = rs1 << (rs2 & 31)
		case isa.OpSRL:
			l.R[in.Rd] = rs1 >> (rs2 & 31)
		case isa.OpSRA:
			l.R[in.Rd] = uint32(int32(rs1) >> (rs2 & 31))
		case isa.OpSLT:
			l.R[in.Rd] = b2u(int32(rs1) < int32(rs2))
		case isa.OpSLTU:
			l.R[in.Rd] = b2u(rs1 < rs2)
		case isa.OpDIV:
			if rs2 == 0 {
				l.R[in.Rd] = ^uint32(0)
			} else if int32(rs1) == -1<<31 && int32(rs2) == -1 {
				l.R[in.Rd] = rs1
			} else {
				l.R[in.Rd] = uint32(int32(rs1) / int32(rs2))
			}
		case isa.OpREM:
			if rs2 == 0 {
				l.R[in.Rd] = rs1
			} else if int32(rs1) == -1<<31 && int32(rs2) == -1 {
				l.R[in.Rd] = 0
			} else {
				l.R[in.Rd] = uint32(int32(rs1) % int32(rs2))
			}

		case isa.OpADDI:
			l.R[in.Rd] = rs1 + uint32(in.Imm)
		case isa.OpANDI:
			l.R[in.Rd] = rs1 & uint32(in.Imm)
		case isa.OpORI:
			l.R[in.Rd] = rs1 | uint32(in.Imm)
		case isa.OpXORI:
			l.R[in.Rd] = rs1 ^ uint32(in.Imm)
		case isa.OpSLLI:
			l.R[in.Rd] = rs1 << (uint32(in.Imm) & 31)
		case isa.OpSRLI:
			l.R[in.Rd] = rs1 >> (uint32(in.Imm) & 31)
		case isa.OpSRAI:
			l.R[in.Rd] = uint32(int32(rs1) >> (uint32(in.Imm) & 31))
		case isa.OpSLTI:
			l.R[in.Rd] = b2u(int32(rs1) < in.Imm)
		case isa.OpSLTIU:
			l.R[in.Rd] = b2u(rs1 < uint32(in.Imm))
		case isa.OpLUI:
			l.R[in.Rd] = uint32(in.Imm) << 16

		case isa.OpLW:
			v, f := m.LoadWord(rs1 + uint32(in.Imm))
			if f != nil {
				return i, EvNone, &Error{PC: pc, Inst: in, Err: f}
			}
			l.R[in.Rd] = v
		case isa.OpLB:
			v, f := m.LoadByte(rs1 + uint32(in.Imm))
			if f != nil {
				return i, EvNone, &Error{PC: pc, Inst: in, Err: f}
			}
			l.R[in.Rd] = uint32(int32(int8(v)))
		case isa.OpLBU:
			v, f := m.LoadByte(rs1 + uint32(in.Imm))
			if f != nil {
				return i, EvNone, &Error{PC: pc, Inst: in, Err: f}
			}
			l.R[in.Rd] = uint32(v)
		case isa.OpSW:
			if f := m.StoreWord(rs1+uint32(in.Imm), l.R[in.Rd]); f != nil {
				return i, EvNone, &Error{PC: pc, Inst: in, Err: f}
			}
		case isa.OpSB:
			if f := m.StoreByte(rs1+uint32(in.Imm), byte(l.R[in.Rd])); f != nil {
				return i, EvNone, &Error{PC: pc, Inst: in, Err: f}
			}

		case isa.OpBEQ:
			if rs1 == rs2 {
				next = BranchTarget(pc, in)
			}
		case isa.OpBNE:
			if rs1 != rs2 {
				next = BranchTarget(pc, in)
			}
		case isa.OpBLT:
			if int32(rs1) < int32(rs2) {
				next = BranchTarget(pc, in)
			}
		case isa.OpBGE:
			if int32(rs1) >= int32(rs2) {
				next = BranchTarget(pc, in)
			}
		case isa.OpBLTU:
			if rs1 < rs2 {
				next = BranchTarget(pc, in)
			}
		case isa.OpBGEU:
			if rs1 >= rs2 {
				next = BranchTarget(pc, in)
			}

		case isa.OpJAL:
			l.R[in.Rd] = next
			next = BranchTarget(pc, in)
		case isa.OpJALR:
			target := (rs1 + uint32(in.Imm)) &^ 3
			l.R[in.Rd] = next
			next = target

		default:
			ev, err := Exec(l, m, in)
			if err != nil {
				return i, EvNone, err
			}
			if ev != EvNone || l.PC != block[i].Next || m.CopyEvents != cowStart {
				return i + 1, ev, nil
			}
			continue
		}

		l.R[isa.RegZero] = 0
		l.PC = next
		if next != block[i].Next || m.CopyEvents != cowStart {
			return i + 1, EvNone, nil
		}
	}
	return len(block), EvNone, nil
}

// writeBack copies the registers selected by wb (and always the PC) from
// the local file back into the architectural state.
func writeBack(dst, src *Regs, wb uint32) {
	if wb == ^uint32(0) {
		*dst = *src
		return
	}
	for m := wb; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		dst.R[i] = src.R[i]
	}
	dst.PC = src.PC
}
