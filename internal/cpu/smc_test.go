package cpu

import (
	"testing"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// encode returns the machine word for in or fails the test.
func encode(t *testing.T, in isa.Inst) uint32 {
	t.Helper()
	w, err := isa.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// step fetches and executes one instruction through the cached fetch
// path, exactly as the kernel's quantum loop does.
func step(t *testing.T, r *Regs, m *mem.Memory) {
	t.Helper()
	in, err := Fetch(r, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(r, m, in); err != nil {
		t.Fatal(err)
	}
}

// TestInterpStoreIntoExecutingPageSameQuantum is the predecode-cache
// regression test for self-modifying code within one quantum: a store
// into the page the interpreter is currently executing from — the page
// whose decoded view is sitting in the fetch TLB — must be visible to
// the very next fetch. The program overwrites its own third instruction
// and then runs into it.
func TestInterpStoreIntoExecutingPageSameQuantum(t *testing.T) {
	m := mem.New()
	r := &Regs{PC: 0x1000}

	// r1 = new instruction word (ADDI r6, r0, 99); r2 = patch address.
	newWord := encode(t, isa.Inst{Op: isa.OpADDI, Rd: 6, Imm: 99})
	r.R[1] = newWord
	r.R[2] = 0x1008

	prog := []isa.Inst{
		{Op: isa.OpADDI, Rd: 5, Imm: 7},       // 0x1000: unrelated work
		{Op: isa.OpSW, Rd: 1, Rs1: 2, Imm: 0}, // 0x1004: patch 0x1008
		{Op: isa.OpADDI, Rd: 6, Imm: 1},       // 0x1008: overwritten above
	}
	for i, in := range prog {
		if f := m.StoreWord(0x1000+uint32(i*4), encode(t, in)); f != nil {
			t.Fatal(f)
		}
	}

	// Prime the predecode cache and fetch TLB on the page, as if the
	// quantum had been executing here for a while: the stale view now
	// holds the original instruction at 0x1008.
	if in, err := m.FetchInst(0x1008); err != nil || in.Imm != 1 {
		t.Fatalf("pre-patch fetch = %v, %v", in, err)
	}

	for i := 0; i < len(prog); i++ {
		step(t, r, m)
	}
	if r.R[6] != 99 {
		t.Fatalf("r6 = %d, want 99: fetch served the stale predecoded instruction", r.R[6])
	}
	if r.R[5] != 7 {
		t.Fatalf("r5 = %d, want 7", r.R[5])
	}
}

// TestInterpCowForkAfterStoreNoSharedStaleView is the fork-direction
// regression test: a store immediately before Fork clears the page's
// predecoded view; after the fork, each side rebuilds and modifies its
// own view independently. The child patches the shared code page
// (forcing a copy-on-write duplication) and must execute its patched
// instruction while the parent, whose fetch TLB was warmed on the page
// before the fork, keeps executing the original.
func TestInterpCowForkAfterStoreNoSharedStaleView(t *testing.T) {
	parent := mem.New()
	base := uint32(0x2000)

	// The store that writes the program is itself the "store before
	// fork": it leaves the page without a predecoded view.
	prog := []isa.Inst{
		{Op: isa.OpADDI, Rd: 5, Imm: 3}, // base: result register
		{Op: isa.OpADDI, Rd: 6, Imm: 4}, // base+4
	}
	for i, in := range prog {
		if f := parent.StoreWord(base+uint32(i*4), encode(t, in)); f != nil {
			t.Fatal(f)
		}
	}
	// Warm the parent's predecode cache + fetch TLB on the page.
	if _, err := parent.FetchInst(base); err != nil {
		t.Fatal(err)
	}

	child := parent.Fork()

	// The child patches base through a guest store (COW duplication),
	// then both sides execute the two instructions.
	pr := &Regs{PC: base}
	cr := &Regs{PC: base - 4}
	cr.R[1] = encode(t, isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 42})
	cr.R[2] = base
	if f := child.StoreWord(base-4, encode(t, isa.Inst{Op: isa.OpSW, Rd: 1, Rs1: 2, Imm: 0})); f != nil {
		t.Fatal(f)
	}

	step(t, cr, child) // SW: patch base (copy-on-write of the shared code page)
	if child.CopyEvents == 0 {
		t.Fatal("child's patch did not copy-on-write the shared code page")
	}
	step(t, cr, child) // patched ADDI at base
	step(t, cr, child) // ADDI at base+4
	step(t, pr, parent)
	step(t, pr, parent)

	if cr.R[5] != 42 {
		t.Fatalf("child r5 = %d, want 42: child executed a stale shared view", cr.R[5])
	}
	if pr.R[5] != 3 {
		t.Fatalf("parent r5 = %d, want 3: parent's view was corrupted by the child's patch", pr.R[5])
	}
	if cr.R[6] != 4 || pr.R[6] != 4 {
		t.Fatalf("unpatched instruction diverged: child r6=%d parent r6=%d", cr.R[6], pr.R[6])
	}
}
