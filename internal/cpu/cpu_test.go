package cpu

import (
	"testing"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

func exec1(t *testing.T, r *Regs, in isa.Inst) Event {
	t.Helper()
	m := mem.New()
	ev, err := Exec(r, m, in)
	if err != nil {
		t.Fatalf("Exec(%v): %v", in, err)
	}
	return ev
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		in     isa.Inst
		r1, r2 uint32
		want   uint32
	}{
		{isa.Inst{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}, 5, 7, 12},
		{isa.Inst{Op: isa.OpSUB, Rd: 3, Rs1: 1, Rs2: 2}, 5, 7, 0xfffffffe},
		{isa.Inst{Op: isa.OpMUL, Rd: 3, Rs1: 1, Rs2: 2}, 6, 7, 42},
		{isa.Inst{Op: isa.OpDIV, Rd: 3, Rs1: 1, Rs2: 2}, 42, 5, 8},
		{isa.Inst{Op: isa.OpDIV, Rd: 3, Rs1: 1, Rs2: 2}, 42, 0, 0xffffffff},
		{isa.Inst{Op: isa.OpDIV, Rd: 3, Rs1: 1, Rs2: 2}, 0x80000000, 0xffffffff, 0x80000000},
		{isa.Inst{Op: isa.OpREM, Rd: 3, Rs1: 1, Rs2: 2}, 43, 5, 3},
		{isa.Inst{Op: isa.OpREM, Rd: 3, Rs1: 1, Rs2: 2}, 43, 0, 43},
		{isa.Inst{Op: isa.OpREM, Rd: 3, Rs1: 1, Rs2: 2}, 0x80000000, 0xffffffff, 0},
		{isa.Inst{Op: isa.OpAND, Rd: 3, Rs1: 1, Rs2: 2}, 0xff00, 0x0ff0, 0x0f00},
		{isa.Inst{Op: isa.OpOR, Rd: 3, Rs1: 1, Rs2: 2}, 0xff00, 0x0ff0, 0xfff0},
		{isa.Inst{Op: isa.OpXOR, Rd: 3, Rs1: 1, Rs2: 2}, 0xff00, 0x0ff0, 0xf0f0},
		{isa.Inst{Op: isa.OpSLL, Rd: 3, Rs1: 1, Rs2: 2}, 1, 4, 16},
		{isa.Inst{Op: isa.OpSLL, Rd: 3, Rs1: 1, Rs2: 2}, 1, 33, 2}, // shift mod 32
		{isa.Inst{Op: isa.OpSRL, Rd: 3, Rs1: 1, Rs2: 2}, 0x80000000, 4, 0x08000000},
		{isa.Inst{Op: isa.OpSRA, Rd: 3, Rs1: 1, Rs2: 2}, 0x80000000, 4, 0xf8000000},
		{isa.Inst{Op: isa.OpSLT, Rd: 3, Rs1: 1, Rs2: 2}, 0xffffffff, 0, 1}, // -1 < 0 signed
		{isa.Inst{Op: isa.OpSLTU, Rd: 3, Rs1: 1, Rs2: 2}, 0xffffffff, 0, 0},
	}
	for _, c := range cases {
		r := &Regs{}
		r.R[1], r.R[2] = c.r1, c.r2
		exec1(t, r, c.in)
		if r.R[3] != c.want {
			t.Errorf("%v with r1=%#x r2=%#x: got %#x, want %#x", c.in, c.r1, c.r2, r.R[3], c.want)
		}
		if r.PC != 4 {
			t.Errorf("%v: PC = %d, want 4", c.in, r.PC)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	cases := []struct {
		in   isa.Inst
		r1   uint32
		want uint32
	}{
		{isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 1, Imm: -5}, 10, 5},
		{isa.Inst{Op: isa.OpANDI, Rd: 3, Rs1: 1, Imm: 0xff}, 0x1234, 0x34},
		{isa.Inst{Op: isa.OpORI, Rd: 3, Rs1: 1, Imm: 0xf000}, 0x0001, 0xf001},
		{isa.Inst{Op: isa.OpXORI, Rd: 3, Rs1: 1, Imm: 0xffff}, 0xffff, 0},
		{isa.Inst{Op: isa.OpSLLI, Rd: 3, Rs1: 1, Imm: 8}, 1, 256},
		{isa.Inst{Op: isa.OpSRLI, Rd: 3, Rs1: 1, Imm: 8}, 0x80000000, 0x00800000},
		{isa.Inst{Op: isa.OpSRAI, Rd: 3, Rs1: 1, Imm: 8}, 0x80000000, 0xff800000},
		{isa.Inst{Op: isa.OpSLTI, Rd: 3, Rs1: 1, Imm: 0}, 0xffffffff, 1},
		{isa.Inst{Op: isa.OpSLTIU, Rd: 3, Rs1: 1, Imm: 1}, 0, 1},
		{isa.Inst{Op: isa.OpLUI, Rd: 3, Imm: 0x1234}, 0, 0x12340000},
	}
	for _, c := range cases {
		r := &Regs{}
		r.R[1] = c.r1
		exec1(t, r, c.in)
		if r.R[3] != c.want {
			t.Errorf("%v with r1=%#x: got %#x, want %#x", c.in, c.r1, r.R[3], c.want)
		}
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	r := &Regs{}
	r.R[1] = 99
	exec1(t, r, isa.Inst{Op: isa.OpADDI, Rd: isa.RegZero, Rs1: 1, Imm: 3})
	if r.R[isa.RegZero] != 0 {
		t.Fatalf("r0 = %d after write, want 0", r.R[0])
	}
}

func TestLoadsAndStores(t *testing.T) {
	m := mem.New()
	r := &Regs{}
	r.R[1] = 0x1000

	st := isa.Inst{Op: isa.OpSW, Rd: 2, Rs1: 1, Imm: 8}
	r.R[2] = 0xcafef00d
	if _, err := Exec(r, m, st); err != nil {
		t.Fatal(err)
	}
	ld := isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1, Imm: 8}
	if _, err := Exec(r, m, ld); err != nil {
		t.Fatal(err)
	}
	if r.R[3] != 0xcafef00d {
		t.Fatalf("loaded %#x", r.R[3])
	}

	// Byte ops with sign extension.
	r.R[2] = 0x80
	if _, err := Exec(r, m, isa.Inst{Op: isa.OpSB, Rd: 2, Rs1: 1, Imm: 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(r, m, isa.Inst{Op: isa.OpLB, Rd: 3, Rs1: 1, Imm: 20}); err != nil {
		t.Fatal(err)
	}
	if r.R[3] != 0xffffff80 {
		t.Fatalf("lb = %#x, want sign-extended 0xffffff80", r.R[3])
	}
	if _, err := Exec(r, m, isa.Inst{Op: isa.OpLBU, Rd: 3, Rs1: 1, Imm: 20}); err != nil {
		t.Fatal(err)
	}
	if r.R[3] != 0x80 {
		t.Fatalf("lbu = %#x, want 0x80", r.R[3])
	}

	// Misaligned word access reports a wrapped fault.
	r.R[1] = 0x1001
	if _, err := Exec(r, m, ld); err == nil {
		t.Fatal("misaligned lw did not error")
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		op     isa.Opcode
		r1, r2 uint32
		taken  bool
	}{
		{isa.OpBEQ, 4, 4, true},
		{isa.OpBEQ, 4, 5, false},
		{isa.OpBNE, 4, 5, true},
		{isa.OpBNE, 4, 4, false},
		{isa.OpBLT, 0xffffffff, 0, true}, // -1 < 0
		{isa.OpBLT, 0, 0xffffffff, false},
		{isa.OpBGE, 0, 0xffffffff, true},
		{isa.OpBGE, 0xffffffff, 0, false},
		{isa.OpBLTU, 0, 0xffffffff, true},
		{isa.OpBLTU, 0xffffffff, 0, false},
		{isa.OpBGEU, 0xffffffff, 0, true},
		{isa.OpBGEU, 0, 0xffffffff, false},
	}
	for _, c := range cases {
		r := &Regs{PC: 100}
		r.R[1], r.R[2] = c.r1, c.r2
		in := isa.Inst{Op: c.op, Rs1: 1, Rs2: 2, Imm: 5}
		exec1(t, r, in)
		wantPC := uint32(104)
		if c.taken {
			wantPC = 104 + 5*4
		}
		if r.PC != wantPC {
			t.Errorf("%v r1=%#x r2=%#x: PC=%d, want %d", in, c.r1, c.r2, r.PC, wantPC)
		}
	}
}

func TestBackwardBranch(t *testing.T) {
	r := &Regs{PC: 100}
	r.R[1], r.R[2] = 1, 1
	exec1(t, r, isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -10})
	if r.PC != 104-40 {
		t.Fatalf("PC = %d, want %d", r.PC, 104-40)
	}
}

func TestJumps(t *testing.T) {
	r := &Regs{PC: 100}
	exec1(t, r, isa.Inst{Op: isa.OpJAL, Rd: isa.RegLR, Imm: 25})
	if r.R[isa.RegLR] != 104 {
		t.Fatalf("jal link = %d, want 104", r.R[isa.RegLR])
	}
	if r.PC != 104+25*4 {
		t.Fatalf("jal PC = %d", r.PC)
	}

	r = &Regs{PC: 100}
	r.R[5] = 0x2002 // unaligned bits must be cleared
	exec1(t, r, isa.Inst{Op: isa.OpJALR, Rd: isa.RegLR, Rs1: 5, Imm: 6})
	if r.PC != 0x2008 {
		t.Fatalf("jalr PC = %#x, want 0x2008", r.PC)
	}
	if r.R[isa.RegLR] != 104 {
		t.Fatalf("jalr link = %d", r.R[isa.RegLR])
	}
}

func TestJalrLinkThenJumpUsesOldRs1(t *testing.T) {
	// jalr rd == rs1 must jump to the old rs1 value.
	r := &Regs{PC: 100}
	r.R[5] = 0x3000
	exec1(t, r, isa.Inst{Op: isa.OpJALR, Rd: 5, Rs1: 5, Imm: 0})
	if r.PC != 0x3000 {
		t.Fatalf("PC = %#x, want 0x3000", r.PC)
	}
	if r.R[5] != 104 {
		t.Fatalf("link = %d, want 104", r.R[5])
	}
}

func TestSyscallEvent(t *testing.T) {
	r := &Regs{PC: 40}
	ev := exec1(t, r, isa.Inst{Op: isa.OpSYSCALL})
	if ev != EvSyscall {
		t.Fatalf("event = %v, want EvSyscall", ev)
	}
	if r.PC != 44 {
		t.Fatalf("PC = %d, want 44 (past the syscall)", r.PC)
	}
}

func TestStepFetchesAndExecutes(t *testing.T) {
	m := mem.New()
	w := isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 77})
	m.StoreWord(0x100, w)
	r := &Regs{PC: 0x100}
	ev, in, err := Step(r, m)
	if err != nil || ev != EvNone {
		t.Fatalf("Step: ev=%v err=%v", ev, err)
	}
	if in.Op != isa.OpADDI || r.R[1] != 77 || r.PC != 0x104 {
		t.Fatalf("Step result: in=%v r1=%d pc=%#x", in, r.R[1], r.PC)
	}
}

func TestStepDecodeError(t *testing.T) {
	m := mem.New()
	m.StoreWord(0, 0xffffffff)
	r := &Regs{}
	if _, _, err := Step(r, m); err == nil {
		t.Fatal("Step on garbage did not error")
	}
}

func TestEffAddr(t *testing.T) {
	r := &Regs{}
	r.R[4] = 0x1000
	in := isa.Inst{Op: isa.OpLW, Rd: 1, Rs1: 4, Imm: -8}
	if got := EffAddr(r, in); got != 0xff8 {
		t.Fatalf("EffAddr = %#x, want 0xff8", got)
	}
}
