package cpu

import (
	"math/bits"
	"testing"

	"superpin/internal/isa"
)

func filledRegs() *Regs {
	r := &Regs{}
	for i := range r.R {
		r.R[i] = uint32(0x1000 + i*3)
	}
	return r
}

func TestSaveRestoreMasked(t *testing.T) {
	masks := []uint32{
		0,
		1,                        // r0 only
		1 << 10,                  // one register
		1 | 1<<3 | 1<<10 | 1<<31, // scattered
		^uint32(0),               // whole file fast path
		^uint32(0) &^ 1,          // all but r0
	}
	for _, mask := range masks {
		r := filledRegs()
		var buf [isa.NumRegs]uint32
		n := SaveMasked(r, mask, &buf)
		if want := bits.OnesCount32(mask); n != want {
			t.Errorf("mask %#x: SaveMasked returned %d, want popcount %d", mask, n, want)
		}
		for i := 0; i < isa.NumRegs; i++ {
			if mask&(1<<i) != 0 && buf[i] != r.R[i] {
				t.Errorf("mask %#x: buf[%d] = %#x, want %#x", mask, i, buf[i], r.R[i])
			}
		}
		// Clobber everything, then restore: masked registers must come
		// back, unmasked ones must keep the clobbered value.
		saved := r.R
		for i := range r.R {
			r.R[i] = 0xdead_0000 + uint32(i)
		}
		clobbered := r.R
		RestoreMasked(r, mask, &buf)
		for i := 0; i < isa.NumRegs; i++ {
			want := clobbered[i]
			if mask&(1<<i) != 0 {
				want = saved[i]
			}
			if r.R[i] != want {
				t.Errorf("mask %#x: after restore R[%d] = %#x, want %#x", mask, i, r.R[i], want)
			}
		}
	}
}

func TestSaveMaskedFullFileMatchesLoop(t *testing.T) {
	r := filledRegs()
	var fast, slow [isa.NumRegs]uint32
	if n := SaveMasked(r, ^uint32(0), &fast); n != isa.NumRegs {
		t.Fatalf("full-mask save counted %d regs", n)
	}
	for m := ^uint32(0); m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		slow[i] = r.R[i]
	}
	if fast != slow {
		t.Fatal("full-file fast path disagrees with the per-bit loop")
	}
}
