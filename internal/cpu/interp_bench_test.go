package cpu

import (
	"testing"

	"superpin/internal/isa"
	"superpin/internal/mem"
)

// loadLoop writes a loop-heavy kernel at base: an ALU/load/store/branch
// mix that re-executes the same five instructions indefinitely (r5 is set
// beyond any test's step count), the shape of a benchmark inner loop.
func loadLoop(tb testing.TB, m *mem.Memory, base uint32) {
	tb.Helper()
	code := []isa.Inst{
		{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 1},
		{Op: isa.OpLW, Rd: 3, Rs1: 29, Imm: 0},
		{Op: isa.OpADD, Rd: 4, Rs1: 4, Rs2: 3},
		{Op: isa.OpSW, Rd: 4, Rs1: 29, Imm: 4},
		{Op: isa.OpBNE, Rs1: 2, Rs2: 5, Imm: -5},
	}
	for i, in := range code {
		w, err := isa.Encode(in)
		if err != nil {
			tb.Fatal(err)
		}
		if f := m.StoreWord(base+uint32(i*4), w); f != nil {
			tb.Fatal(f)
		}
	}
}

func loopRegs(base uint32) Regs {
	var r Regs
	r.PC = base
	r.R[5] = 1 << 31 // loop "bound" no test reaches
	r.R[29] = 0x0002_0000
	return r
}

// benchInterpLoop measures interpreter throughput in guest-MIPS with the
// host-side fast paths (predecode cache + software TLB) on or off.
func benchInterpLoop(b *testing.B, caching bool) {
	m := mem.New()
	m.SetCaching(caching)
	base := uint32(0x0001_0000)
	loadLoop(b, m, base)
	m.StoreWord(0x0002_0000, 7)
	r := loopRegs(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Step(&r, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// BenchmarkInterpLoopPredecodeTLB is the optimized fetch path: the
// speedup over BenchmarkInterpLoopUncached is what the predecode cache
// and software TLB buy the native interpreter (expected >= 2x).
func BenchmarkInterpLoopPredecodeTLB(b *testing.B) { benchInterpLoop(b, true) }

// BenchmarkInterpLoopUncached is the pre-optimization baseline: a page-map
// lookup, byte assembly and decode for every fetch, and a page-map lookup
// for every load and store.
func BenchmarkInterpLoopUncached(b *testing.B) { benchInterpLoop(b, false) }

// TestStepCachedMatchesUncached drives the loop for many steps under both
// fetch paths and requires bit-identical architectural outcomes: same
// registers, same PC, same memory, same events. This is the determinism
// guarantee that lets the fast paths stay on everywhere.
func TestStepCachedMatchesUncached(t *testing.T) {
	const steps = 50_000
	run := func(caching bool) (Regs, uint32) {
		m := mem.New()
		m.SetCaching(caching)
		base := uint32(0x0001_0000)
		loadLoop(t, m, base)
		m.StoreWord(0x0002_0000, 7)
		r := loopRegs(base)
		for i := 0; i < steps; i++ {
			ev, _, err := Step(&r, m)
			if err != nil {
				t.Fatal(err)
			}
			if ev != EvNone {
				t.Fatalf("unexpected event %v at step %d", ev, i)
			}
		}
		v, _ := m.LoadWord(0x0002_0004)
		return r, v
	}
	cachedRegs, cachedMem := run(true)
	plainRegs, plainMem := run(false)
	if cachedRegs != plainRegs {
		t.Fatalf("register divergence:\ncached %+v\nplain  %+v", cachedRegs, plainRegs)
	}
	if cachedMem != plainMem {
		t.Fatalf("memory divergence: cached %d, plain %d", cachedMem, plainMem)
	}
}

// TestStepSelfModifyingLoop executes an instruction, overwrites it from
// guest code's own store path, and checks the interpreter immediately
// executes the new instruction (predecode invalidation end-to-end).
func TestStepSelfModifyingLoop(t *testing.T) {
	m := mem.New()
	base := uint32(0x0001_0000)
	// addi r2, r2, 10 — executed once, then patched to addi r2, r2, 1000.
	w1, _ := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 10})
	w2, _ := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 1000})
	m.StoreWord(base, w1)
	r := Regs{PC: base}

	if _, _, err := Step(&r, m); err != nil {
		t.Fatal(err)
	}
	if r.R[2] != 10 {
		t.Fatalf("r2 = %d after first pass, want 10", r.R[2])
	}
	// Patch the already-executed (and predecoded) instruction.
	m.StoreWord(base, w2)
	r.PC = base
	if _, _, err := Step(&r, m); err != nil {
		t.Fatal(err)
	}
	if r.R[2] != 1010 {
		t.Fatalf("r2 = %d after patched pass, want 1010 (stale predecode?)", r.R[2])
	}
}
