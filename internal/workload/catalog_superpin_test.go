package workload

import (
	"testing"

	"superpin/internal/core"
)

// TestEveryCatalogBenchmarkExactUnderSuperPin runs all 26 benchmarks
// (tiny scale, small timeslices to force many boundaries) under SuperPin
// and asserts the central exactness invariant for each: the merged
// instruction count equals the native count, every master instruction is
// covered by exactly one slice, and no slice diverges from the recorded
// syscall history.
func TestEveryCatalogBenchmarkExactUnderSuperPin(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			scaled := spec.Scaled(0.01)
			prog, err := scaled.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := testCfg()
			native, err := core.RunNative(cfg, prog, scaled.NativeMemCost)
			if err != nil {
				t.Fatal(err)
			}
			var count uint64
			factory := func(ctl *core.ToolCtl) core.Tool {
				return countTool{n: &count}
			}
			opts := core.DefaultOptions()
			opts.SliceMSec = 25
			opts.PinCost.MemSurcharge = scaled.SliceMemCost
			opts.NativeMemSurcharge = scaled.NativeMemCost
			res, err := core.Run(cfg, prog, factory, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if count != native.Ins {
				t.Fatalf("icount %d, native %d", count, native.Ins)
			}
			if res.SliceIns != res.MasterIns {
				t.Fatalf("slice coverage %d != master %d", res.SliceIns, res.MasterIns)
			}
			if res.Stats.Divergences != 0 {
				t.Fatalf("%d divergences", res.Stats.Divergences)
			}
		})
	}
}

// TestCatalogExactWithSharedCacheAndMemCheck repeats the sweep for a few
// benchmarks with the extension features enabled together.
func TestCatalogExactWithSharedCacheAndMemCheck(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "crafty"} {
		spec, _ := ByName(name)
		scaled := spec.Scaled(0.01)
		prog, err := scaled.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		native, err := core.RunNative(cfg, prog, scaled.NativeMemCost)
		if err != nil {
			t.Fatal(err)
		}
		var count uint64
		factory := func(ctl *core.ToolCtl) core.Tool {
			return countTool{n: &count}
		}
		opts := core.DefaultOptions()
		opts.SliceMSec = 25
		opts.SharedCodeCache = true
		opts.MemCheck = true
		opts.PinCost.MemSurcharge = scaled.SliceMemCost
		opts.NativeMemSurcharge = scaled.NativeMemCost
		res, err := core.Run(cfg, prog, factory, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if count != native.Ins {
			t.Fatalf("%s: icount %d, native %d", name, count, native.Ins)
		}
	}
}
