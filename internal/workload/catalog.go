package workload

import "superpin/internal/kernel"

// Catalog returns the 26 synthetic SPEC CPU2000 stand-ins used by the
// paper's evaluation (Section 6), alphabetically ordered. Parameters are
// calibrated so the suite reproduces the paper's overhead structure:
// integer codes are branchy (small basic blocks), floating-point codes
// have long straight-line kernels, gcc has a code footprint exceeding the
// code cache plus frequent brk/mmap calls, and mcf is the memory-bound
// cache-locality outlier. Run lengths vary the way SPEC runtimes do, so
// pipeline delay hits short benchmarks relatively harder.
func Catalog() []Spec {
	// Shorthand constructors keep the table readable.
	fp := func(name string, kernels, alu, iters int) Spec {
		return Spec{
			Name: name, Kernels: kernels, ALU: alu, Mem: 4, Branches: 1,
			PhaseShift: 6, Iterations: iters, DataPages: 64, DirtyPeriod: 256,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 8192, Syscalls: []uint32{kernel.SysTime},
		}
	}
	intb := func(name string, kernels, branches, iters int) Spec {
		return Spec{
			Name: name, Kernels: kernels, ALU: 10, Mem: 3, Branches: branches,
			PhaseShift: 5, Iterations: iters, DataPages: 32, DirtyPeriod: 512,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 4096, Syscalls: []uint32{kernel.SysTime},
		}
	}

	specs := []Spec{
		fp("ammp", 30, 24, 44000),
		fp("applu", 20, 30, 90000),
		fp("apsi", 40, 22, 22000),
		{ // memory-bound, cache-sensitive
			Name: "art", Kernels: 10, ALU: 8, Mem: 8, Branches: 1,
			PhaseShift: 6, Iterations: 48000, DataPages: 256, DirtyPeriod: 128,
			NativeMemCost: 2, PinMemCost: 8, SliceMemCost: 2,
			SyscallPeriod: 8192, Syscalls: []uint32{kernel.SysTime},
		},
		{ // compression: moderate syscalls (I/O), mid-size blocks
			Name: "bzip2", Kernels: 25, ALU: 12, Mem: 4, Branches: 4,
			PhaseShift: 6, Iterations: 52000, DataPages: 64, DirtyPeriod: 256,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 1024, Syscalls: []uint32{kernel.SysRead, kernel.SysWrite},
		},
		intb("crafty", 60, 6, 42000),
		intb("eon", 80, 3, 18000),
		{ // fp, memory heavy
			Name: "equake", Kernels: 15, ALU: 16, Mem: 7, Branches: 1,
			PhaseShift: 6, Iterations: 56000, DataPages: 128, DirtyPeriod: 128,
			NativeMemCost: 2, PinMemCost: 4, SliceMemCost: 2,
			SyscallPeriod: 8192, Syscalls: []uint32{kernel.SysTime},
		},
		fp("facerec", 25, 20, 24000),
		fp("fma3d", 90, 18, 16000),
		fp("galgel", 20, 26, 80000),
		{ // interpreter-ish: moderate allocation traffic
			Name: "gap", Kernels: 50, ALU: 12, Mem: 4, Branches: 4,
			PhaseShift: 5, Iterations: 40000, DataPages: 64, DirtyPeriod: 256,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 512, Syscalls: []uint32{kernel.SysBrk},
		},
		{ // gcc: large code footprint revisited round-robin (every slice
			// recompiles the whole working set), frequent brk/mmap
			Name: "gcc", Kernels: 150, ALU: 20, Mem: 3, Branches: 3,
			PhaseShift: 0, ScaleFootprint: true,
			Iterations: 48000, DataPages: 128, DirtyPeriod: 64,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 64, Syscalls: []uint32{kernel.SysBrk, kernel.SysMmap},
		},
		{ // compression, small code, frequent I/O
			Name: "gzip", Kernels: 15, ALU: 12, Mem: 4, Branches: 4,
			PhaseShift: 6, Iterations: 75000, DataPages: 32, DirtyPeriod: 512,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 2048, Syscalls: []uint32{kernel.SysRead, kernel.SysWrite},
		},
		fp("lucas", 12, 28, 75000),
		{ // mcf: the cache-locality outlier (paper: 11.2X speedup)
			Name: "mcf", Kernels: 8, ALU: 6, Mem: 12, Branches: 2,
			PhaseShift: 7, Iterations: 60000, DataPages: 512, DirtyPeriod: 64,
			NativeMemCost: 4, PinMemCost: 60, SliceMemCost: 1,
			SyscallPeriod: 8192, Syscalls: []uint32{kernel.SysTime},
		},
		intb("mesa", 45, 3, 44000),
		fp("mgrid", 10, 32, 95000),
		{ // parser: branchy, allocation traffic
			Name: "parser", Kernels: 55, ALU: 10, Mem: 3, Branches: 5,
			PhaseShift: 5, Iterations: 38000, DataPages: 64, DirtyPeriod: 256,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 1024, Syscalls: []uint32{kernel.SysBrk},
		},
		{ // perlbmk: branchy, heavy allocation
			Name: "perlbmk", Kernels: 70, ALU: 11, Mem: 4, Branches: 5,
			PhaseShift: 5, Iterations: 40000, DataPages: 64, DirtyPeriod: 128,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 256, Syscalls: []uint32{kernel.SysBrk, kernel.SysMmap},
		},
		fp("sixtrack", 35, 24, 42000),
		{ // fp, memory streaming
			Name: "swim", Kernels: 12, ALU: 20, Mem: 8, Branches: 0,
			PhaseShift: 6, Iterations: 85000, DataPages: 256, DirtyPeriod: 128,
			NativeMemCost: 2, PinMemCost: 5, SliceMemCost: 2,
			SyscallPeriod: 8192, Syscalls: []uint32{kernel.SysTime},
		},
		intb("twolf", 40, 5, 18000),
		{ // vortex: OO database, allocation traffic, big-ish code
			Name: "vortex", Kernels: 65, ALU: 12, Mem: 5, Branches: 4,
			PhaseShift: 5, Iterations: 42000, DataPages: 128, DirtyPeriod: 128,
			NativeMemCost: 1, PinMemCost: 2, SliceMemCost: 1,
			SyscallPeriod: 768, Syscalls: []uint32{kernel.SysBrk},
		},
		intb("vpr", 30, 4, 40000),
		fp("wupwise", 18, 26, 70000),
	}
	return sortSpecs(specs)
}
