package workload

import (
	"testing"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/pin"
)

func testCfg() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 5_000_000_000
	return cfg
}

func TestCatalogHas26SortedUniqueBenchmarks(t *testing.T) {
	specs := Catalog()
	if len(specs) != 26 {
		t.Fatalf("catalog has %d entries, want 26", len(specs))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
		if i > 0 && specs[i-1].Name >= s.Name {
			t.Fatalf("catalog not sorted at %q", s.Name)
		}
	}
	for _, want := range []string{"gcc", "mcf", "gzip", "wupwise", "ammp"} {
		if !seen[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("gcc"); !ok {
		t.Fatal("ByName(gcc) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName(nonesuch) succeeded")
	}
	if len(Names()) != 26 {
		t.Fatal("Names() wrong length")
	}
}

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec.Scaled(0.01) // a few hundred iterations each
		prog, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		res, err := core.RunNative(testCfg(), prog, spec.NativeMemCost)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Ins < 1000 {
			t.Fatalf("%s: only %d instructions", spec.Name, res.Ins)
		}
		if spec.SyscallPeriod > 0 && res.Syscalls < 2 {
			t.Fatalf("%s: only %d syscalls", spec.Name, res.Syscalls)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec, _ := ByName("crafty")
	spec = spec.Scaled(0.01)
	p1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Entry != p2.Entry || len(p1.Segments) != len(p2.Segments) {
		t.Fatal("nondeterministic build structure")
	}
	for i := range p1.Segments {
		a, b := p1.Segments[i], p2.Segments[i]
		if a.Addr != b.Addr || string(a.Data) != string(b.Data) {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestScaledChangesLength(t *testing.T) {
	spec, _ := ByName("gzip")
	long := spec.Scaled(0.02)
	short := spec.Scaled(0.005)
	pl, err := long.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := short.Build()
	if err != nil {
		t.Fatal(err)
	}
	rl, err := core.RunNative(testCfg(), pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.RunNative(testCfg(), ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Ins <= rs.Ins*2 {
		t.Fatalf("scaling ineffective: %d vs %d", rl.Ins, rs.Ins)
	}
}

func TestGccHasLargeCodeFootprintAndSyscalls(t *testing.T) {
	gcc, _ := ByName("gcc")
	prog, err := gcc.Build() // unscaled: check the full-size footprint
	if err != nil {
		t.Fatal(err)
	}
	// gcc's code footprint must be large (its kernels are revisited
	// round-robin, so every fresh slice recompiles the whole working
	// set — the paper's dominant gcc overhead).
	if prog.Size()/4 < 8000 {
		t.Fatalf("gcc code footprint %d words, want > 8000", prog.Size()/4)
	}
	if gcc.PhaseShift != 0 {
		t.Fatal("gcc must select kernels round-robin")
	}
	small, err := gcc.Scaled(0.01).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunNative(testCfg(), small, gcc.NativeMemCost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syscalls < 10 {
		t.Fatalf("gcc made only %d syscalls", res.Syscalls)
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", Kernels: 0, Iterations: 1, DataPages: 1},
		{Name: "x", Kernels: 1, Iterations: 0, DataPages: 1},
		{Name: "x", Kernels: 1, Iterations: 1, DataPages: 0},
		{Name: "x", Kernels: 1, Iterations: 1, DataPages: 3},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %+v built", s)
		}
	}
}

func TestWorkloadRunsUnderSuperPin(t *testing.T) {
	// The pipeline smoke test: a catalog benchmark run end-to-end under
	// SuperPin with exact icount agreement.
	spec, _ := ByName("vpr")
	spec = spec.Scaled(0.02)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	native, err := core.RunNative(testCfg(), prog, spec.NativeMemCost)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	factory := func(ctl *core.ToolCtl) core.Tool {
		return countTool{n: &count}
	}
	opts := core.DefaultOptions()
	opts.SliceMSec = 100
	res, err := core.Run(testCfg(), prog, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if count != native.Ins {
		t.Fatalf("superpin count %d, native %d", count, native.Ins)
	}
}

type countTool struct{ n *uint64 }

func (c countTool) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		k := uint64(bbl.NumIns())
		bbl.InsertCall(pin.Before, func(*pin.Ctx) { *c.n += k })
	}
}
