// Package workload generates the synthetic SPEC CPU2000 stand-ins used by
// the benchmark harness. The paper evaluates SuperPin on the 26 SPEC2000
// benchmarks; real SPEC binaries cannot run on the simulated machine, so
// each benchmark is replaced by a deterministic synthetic program whose
// *instrumentation-relevant* characteristics are modeled per benchmark:
//
//   - code footprint (number and size of distinct kernels) — drives JIT
//     compile cost and code-cache flushing (gcc's dominant overhead)
//   - basic-block size (branch density) — drives icount2's advantage
//     over icount1
//   - memory intensity and cache behavior — modeled as per-mode memory
//     surcharges (native / serial-instrumented / windowed-slice), which
//     reproduces the paper's cache-locality outliers such as mcf
//   - system-call rate and mix — drives record-and-playback vs
//     slice-forcing boundaries (gcc's frequent brk/mmap)
//   - run length and copy-on-write page-dirtying rate — drive pipeline
//     delay and fork overhead
//
// Programs are generated with the asm.Builder and are fully deterministic
// from the Spec.
package workload

import (
	"fmt"
	"sort"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/kernel"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	// Name is the SPEC2000 benchmark this program stands in for.
	Name string

	// Kernels is the number of distinct inner-loop code kernels; together
	// with ALU/Mem/Branches it sets the code footprint.
	Kernels int
	// ALU is the number of arithmetic instructions per kernel body.
	ALU int
	// Mem is the number of memory accesses per kernel body.
	Mem int
	// Branches is the number of data-dependent conditional branches per
	// kernel body (higher means smaller basic blocks).
	Branches int

	// Iterations is the outer-loop trip count; it scales run length.
	Iterations int

	// PhaseShift controls kernel-selection locality: the active kernel is
	// (iteration >> PhaseShift) mod Kernels, so execution dwells on one
	// kernel for 2^PhaseShift iterations before moving on — modeling
	// phased code reuse. Zero selects round-robin (kernel changes every
	// iteration).
	PhaseShift int

	// ScaleFootprint makes Scaled also scale Kernels, preserving the
	// ratio of code footprint to dynamic run length. Benchmarks whose
	// defining property is a large footprint relative to their runtime
	// (gcc) set this so the property survives down-scaling in tests.
	ScaleFootprint bool

	// DataPages is the working-set size in 4 KiB pages (power of two).
	DataPages int
	// DirtyPeriod, when positive, makes the program write one fresh
	// working-set page every DirtyPeriod iterations, creating
	// copy-on-write traffic for forked slices.
	DirtyPeriod int

	// SyscallPeriod, when positive, issues the Syscalls list every
	// SyscallPeriod iterations.
	SyscallPeriod int
	// Syscalls is the system-call mix (e.g. brk+mmap for gcc).
	Syscalls []uint32

	// NativeMemCost, PinMemCost and SliceMemCost are the per-memory-
	// instruction cycle surcharges modeling the benchmark's cache
	// behavior natively, under serial instrumentation (instrumented code
	// and analysis data pollute the cache), and inside a SuperPin slice
	// (a timeslice's working window often fits in cache — the paper's
	// "significant cache locality benefits", Section 6).
	NativeMemCost kernel.Cycles
	PinMemCost    kernel.Cycles
	SliceMemCost  kernel.Cycles
}

// Scaled returns a copy of s with the run length scaled by f (minimum one
// iteration). Benchmarks and tests use small scales for speed.
func (s Spec) Scaled(f float64) Spec {
	s.Iterations = int(float64(s.Iterations) * f)
	if s.Iterations < 1 {
		s.Iterations = 1
	}
	if s.ScaleFootprint {
		s.Kernels = int(float64(s.Kernels) * f)
		if s.Kernels < 4 {
			s.Kernels = 4
		}
	}
	return s
}

// Layout constants for generated programs.
const (
	codeBase  = 0x0001_0000
	dataBase  = 0x0040_0000
	dirtyBase = 0x0060_0000
)

// DataBase is the data-region base address of every generated program,
// exported for tools that fence guest data accesses (tools.Watch).
const DataBase uint32 = dataBase

// DataReg is the register every generated program keeps pointed at the
// data-region base (r12 in the generator's register allocation). A
// watchpoint on DataReg < DataBase is the canonical provably-dead
// probe: the generator never moves the register.
const DataReg uint8 = 12

// rng is a tiny deterministic generator for code-shape decisions.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Build generates the benchmark program.
func (s Spec) Build() (*asm.Program, error) {
	if s.Kernels < 1 || s.Iterations < 1 {
		return nil, fmt.Errorf("workload %q: need at least one kernel and one iteration", s.Name)
	}
	if s.DataPages < 1 {
		return nil, fmt.Errorf("workload %q: DataPages must be positive", s.Name)
	}
	if s.DataPages&(s.DataPages-1) != 0 {
		return nil, fmt.Errorf("workload %q: DataPages must be a power of two", s.Name)
	}

	r := &rng{s: hashName(s.Name)}
	b := asm.NewBuilder(codeBase)
	b.SetEntry(codeBase) // patched below via label

	// Register allocation:
	//   r10 loop index, r11 trip count, r12 data base, r20 accumulator,
	//   r21 kernel table, r22 data mask, r23 dirty base, r25 kernel count,
	//   r13..r19 kernel scratch, r2/r3 helper args.
	const (
		rI, rN, rData, rAcc  = 10, 11, 12, 20
		rKtab, rMask, rDirty = 21, 22, 23
		rKn                  = 25
		rT0, rT1, rT2, rT3   = 13, 14, 15, 16
		rT4, rT5             = 17, 18
	)

	b.J("main")

	// Shared helper: a small leaf with stack traffic, called by every
	// kernel, so call/return and stack state are exercised constantly.
	b.Label("helper")
	b.I(isa.OpADDI, isa.RegSP, isa.RegSP, -8)
	b.I(isa.OpSW, isa.RegLR, isa.RegSP, 0)
	b.I(isa.OpSW, 2, isa.RegSP, 4)
	b.R(isa.OpXOR, 2, 2, 3)
	b.I(isa.OpADDI, 2, 2, 13)
	b.I(isa.OpLW, isa.RegLR, isa.RegSP, 0)
	b.I(isa.OpADDI, isa.RegSP, isa.RegSP, 8)
	b.Ret()

	// Kernels.
	for k := 0; k < s.Kernels; k++ {
		b.Label(fmt.Sprintf("kernel%d", k))
		b.I(isa.OpADDI, isa.RegSP, isa.RegSP, -4)
		b.I(isa.OpSW, isa.RegLR, isa.RegSP, 0)

		// Memory accesses: EA = rData + ((rI<<shift + c) & rMask), a
		// per-kernel stride/offset pattern; loads and stores alternate.
		for m := 0; m < s.Mem; m++ {
			shift := int32(2 + r.intn(5))
			c := int32(r.intn(1<<12) * 4)
			b.I(isa.OpSLLI, rT0, rI, shift)
			b.I(isa.OpADDI, rT0, rT0, c)
			b.R(isa.OpAND, rT0, rT0, rMask)
			b.R(isa.OpADD, rT0, rT0, rData)
			if m%2 == 0 {
				b.I(isa.OpLW, rT1, rT0, 0)
				b.R(isa.OpADD, rAcc, rAcc, rT1)
			} else {
				b.I(isa.OpSW, rAcc, rT0, 0)
			}
		}

		// Branches: data-dependent skips that shape basic-block size and
		// exercise both paths across iterations.
		for br := 0; br < s.Branches; br++ {
			mask := int32(1 << uint(r.intn(4)))
			label := fmt.Sprintf("k%db%d", k, br)
			b.I(isa.OpANDI, rT2, rI, mask)
			b.Branch(isa.OpBEQ, rT2, isa.RegZero, label)
			b.I(isa.OpADDI, rAcc, rAcc, int32(1+r.intn(7)))
			b.Label(label)
		}

		// ALU chain.
		for a := 0; a < s.ALU; a++ {
			switch r.intn(5) {
			case 0:
				b.R(isa.OpADD, rT3, rAcc, rI)
			case 1:
				b.R(isa.OpXOR, rT3, rT3, rAcc)
			case 2:
				b.I(isa.OpSLLI, rT4, rT3, int32(1+r.intn(8)))
			case 3:
				b.R(isa.OpMUL, rT4, rT4, rI)
			default:
				b.I(isa.OpADDI, rT3, rT3, int32(r.intn(100)))
			}
		}
		b.R(isa.OpADD, rAcc, rAcc, rT3)

		// Call the shared helper.
		b.Mv(2, rI)
		b.Mv(3, rAcc)
		b.Call("helper")
		b.R(isa.OpADD, rAcc, rAcc, 2)

		b.I(isa.OpLW, isa.RegLR, isa.RegSP, 0)
		b.I(isa.OpADDI, isa.RegSP, isa.RegSP, 4)
		b.Ret()
	}

	// Kernel address table.
	b.Label("ktable")
	for k := 0; k < s.Kernels; k++ {
		// Filled after Finish is impossible with raw words, so use La
		// pairs in a loader loop instead; simpler: emit the table via
		// fixups using a dedicated label-word mechanism below.
		b.Word(0) // patched below
	}

	// Main.
	b.Label("main")
	b.Li(rI, 0)
	b.Li(rN, uint32(s.Iterations))
	b.Li(rData, dataBase)
	b.Li(rAcc, 0)
	b.La(rKtab, "ktable")
	b.Li(rMask, uint32(s.DataPages*4096-4)&^3)
	b.Li(rDirty, dirtyBase)
	b.Li(rKn, uint32(s.Kernels))

	b.Label("outer")
	// Select and call the phase's kernel through the table: an indirect
	// call, like real dispatch loops.
	if s.PhaseShift > 0 {
		b.I(isa.OpSRLI, rT0, rI, int32(s.PhaseShift))
		b.R(isa.OpREM, rT0, rT0, rKn)
	} else {
		b.R(isa.OpREM, rT0, rI, rKn)
	}
	b.I(isa.OpSLLI, rT0, rT0, 2)
	b.R(isa.OpADD, rT0, rT0, rKtab)
	b.I(isa.OpLW, rT0, rT0, 0)
	b.I(isa.OpJALR, isa.RegLR, rT0, 0)

	// Dirty a fresh page every DirtyPeriod iterations (COW traffic).
	if s.DirtyPeriod > 0 {
		b.Li(rT1, uint32(s.DirtyPeriod))
		b.R(isa.OpREM, rT2, rI, rT1)
		b.Branch(isa.OpBNE, rT2, isa.RegZero, "nodirty")
		b.R(isa.OpDIV, rT2, rI, rT1)
		b.I(isa.OpANDI, rT2, rT2, int32(s.DataPages-1))
		b.I(isa.OpSLLI, rT2, rT2, 12)
		b.R(isa.OpADD, rT2, rT2, rDirty)
		b.I(isa.OpSW, rI, rT2, 0)
		b.Label("nodirty")
	}

	// Periodic system calls.
	if s.SyscallPeriod > 0 && len(s.Syscalls) > 0 {
		b.Li(rT1, uint32(s.SyscallPeriod))
		b.R(isa.OpREM, rT2, rI, rT1)
		b.Branch(isa.OpBNE, rT2, isa.RegZero, "nosys")
		for _, sysno := range s.Syscalls {
			emitSyscall(b, sysno)
			b.R(isa.OpADD, rAcc, rAcc, isa.RegSys)
		}
		b.Label("nosys")
	}

	b.I(isa.OpADDI, rI, rI, 1)
	b.Branch(isa.OpBLT, rI, rN, "outer")

	// exit(acc & 0xff)
	b.Li(isa.RegSys, kernel.SysExit)
	b.I(isa.OpANDI, isa.RegArg0, rAcc, 0xff)
	b.Syscall()

	prog, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", s.Name, err)
	}
	prog.Entry = prog.Symbols["main"]

	// Patch the kernel table with the kernel addresses.
	ktab := prog.Symbols["ktable"]
	for k := 0; k < s.Kernels; k++ {
		addr := prog.Symbols[fmt.Sprintf("kernel%d", k)]
		patchWord(prog, ktab+uint32(4*k), addr)
	}
	return prog, nil
}

// emitSyscall emits one system call with canned, replay-safe arguments.
func emitSyscall(b *asm.Builder, sysno uint32) {
	switch sysno {
	case kernel.SysWrite:
		b.Li(isa.RegSys, sysno)
		b.Li(isa.RegArg0, 1)
		b.Li(isa.RegArg1, dataBase)
		b.Li(isa.RegArg2, 16)
	case kernel.SysRead:
		b.Li(isa.RegSys, sysno)
		b.Li(isa.RegArg0, 0)
		b.Li(isa.RegArg1, dataBase+0x100)
		b.Li(isa.RegArg2, 16)
	case kernel.SysBrk:
		b.Li(isa.RegSys, sysno)
		b.Li(isa.RegArg0, 0)
	case kernel.SysMmap:
		b.Li(isa.RegSys, sysno)
		b.Li(isa.RegArg0, 4096)
	case kernel.SysMunmap:
		b.Li(isa.RegSys, sysno)
		b.Li(isa.RegArg0, dirtyBase)
		b.Li(isa.RegArg1, 4096)
	default: // time, getpid, rand, yield
		b.Li(isa.RegSys, sysno)
	}
	b.Syscall()
}

func patchWord(p *asm.Program, addr, v uint32) {
	for i := range p.Segments {
		seg := &p.Segments[i]
		if addr >= seg.Addr && addr+4 <= seg.Addr+uint32(len(seg.Data)) {
			off := addr - seg.Addr
			seg.Data[off] = byte(v)
			seg.Data[off+1] = byte(v >> 8)
			seg.Data[off+2] = byte(v >> 16)
			seg.Data[off+3] = byte(v >> 24)
			return
		}
	}
	panic(fmt.Sprintf("workload: patch address %#x outside image", addr))
}

func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// ByName returns the catalog spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the catalog benchmark names in order.
func Names() []string {
	specs := Catalog()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// sortSpecs orders specs by name (the catalog is already alphabetical;
// this guards against edits).
func sortSpecs(specs []Spec) []Spec {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}
