package sa

import (
	"reflect"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/workload"
)

// stripProg returns a shallow copy of a with the prog pointer cleared, so
// DeepEqual compares only the derived tables (Decode is handed the same
// *Program value in production but tests may rebuild it).
func stripProg(a *Analysis) Analysis {
	c := *a
	c.prog = nil
	return c
}

func TestSerialRoundtripCatalog(t *testing.T) {
	for _, spec := range workload.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog, err := spec.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want := Analyze(prog)
			got, err := Decode(want.Encode(), prog)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(stripProg(want), stripProg(got)) {
				t.Fatalf("roundtrip is not identical")
			}
		})
	}
}

// TestSerialRoundtripDiagnostics covers an image with verifier findings:
// the diagnostics must survive the roundtrip so a cached analysis fails
// Err() exactly like a fresh one.
func TestSerialRoundtripDiagnostics(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, 10, 11, 0) // reads r11, never written: uninit-read warning
	b.Word(0xFFFFFFFF)         // undecodable word on the fall-through path
	prog := b.MustFinish()
	want := Analyze(prog)
	if len(want.diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	got, err := Decode(want.Encode(), prog)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(stripProg(want), stripProg(got)) {
		t.Fatalf("roundtrip is not identical")
	}
	if (want.Err() == nil) != (got.Err() == nil) {
		t.Fatalf("Err() disagrees after roundtrip: %v vs %v", want.Err(), got.Err())
	}
}

// TestSerialDecodeRejectsCorrupt seeds one corruption per entry, corpus
// style: every corrupted payload must produce a decode error (cold-path
// fallback), never a panic or a silently wrong Analysis.
func TestSerialDecodeRejectsCorrupt(t *testing.T) {
	spec, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip missing from catalog")
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	blob := Analyze(prog).Encode()

	other := asm.NewBuilder(0x1000)
	other.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	other.Syscall()
	otherProg := other.MustFinish()

	mutate := func(off int, v byte) []byte {
		c := append([]byte{}, blob...)
		c[off] = v
		return c
	}
	cases := []struct {
		name string
		blob []byte
		prog *asm.Program
	}{
		{"empty", nil, prog},
		{"truncated header", blob[:2], prog},
		{"truncated mid-payload", blob[:len(blob)/2], prog},
		{"trailing garbage", append(append([]byte{}, blob...), 0xAA), prog},
		{"region count corrupted", mutate(0, 0xFF), prog},
		{"region addr corrupted", mutate(4, ^blob[4]), prog},
		{"wrong program", blob, otherProg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.blob, tc.prog); err == nil {
				t.Fatalf("decode accepted a corrupt payload")
			}
		})
	}
	if _, err := Decode(blob, nil); err == nil {
		t.Fatal("decode accepted a nil program")
	}
}
