package sa

import (
	"reflect"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/workload"
)

// stripProg returns a shallow copy of a with the prog pointer cleared
// plus the fields the roundtrip intentionally does not reproduce
// bit-for-bit, so DeepEqual compares only the derived tables (Decode is
// handed the same *Program value in production but tests may rebuild
// it). The call-graph summary (ip) is not serialized — its results are
// baked into the liveness masks — and the value tier is reduced to its
// serialized hull by hullVals.
func stripProg(a *Analysis) Analysis {
	c := *a
	c.prog = nil
	c.ip = nil
	c.img = nil
	c.vals = hullVals(c.vals)
	return c
}

// hullVals reduces a value tier to what the v2 payload carries: per
// reached block the interval/trailing-zeros hull of each register (the
// exact value sets are recomputable and not stored), plus the summary
// counters with Functions cleared (compared through IPStats instead,
// which sources it from the call graph on fresh analyses). Non-ok
// states are never consulted, so they reduce to the flags alone.
func hullVals(v *valueInfo) *valueInfo {
	if v == nil {
		return nil
	}
	c := &valueInfo{ok: v.ok, stats: v.stats}
	c.stats.Functions = 0
	c.reached = make([]bool, len(v.reached))
	c.entry = make([][]vval, len(v.entry))
	if !v.ok {
		return c
	}
	copy(c.reached, v.reached)
	for id, st := range v.entry {
		if !v.reached[id] || st == nil {
			continue
		}
		hs := make([]vval, len(st))
		for r, val := range st {
			hs[r] = val
			if r > 0 {
				hs[r].set = nil
			}
		}
		hs[0] = vConst(0)
		c.entry[id] = hs
	}
	return c
}

func TestSerialRoundtripCatalog(t *testing.T) {
	for _, spec := range workload.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog, err := spec.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want := Analyze(prog)
			got, err := Decode(want.Encode(), prog)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(stripProg(want), stripProg(got)) {
				t.Fatalf("roundtrip is not identical")
			}
			if want.IPStats() != got.IPStats() {
				t.Fatalf("IPStats disagree after roundtrip: %+v vs %+v", want.IPStats(), got.IPStats())
			}
		})
	}
}

// TestSerialRoundtripDiagnostics covers an image with verifier findings:
// the diagnostics must survive the roundtrip so a cached analysis fails
// Err() exactly like a fresh one.
func TestSerialRoundtripDiagnostics(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, 10, 11, 0) // reads r11, never written: uninit-read warning
	b.Word(0xFFFFFFFF)         // undecodable word on the fall-through path
	prog := b.MustFinish()
	want := Analyze(prog)
	if len(want.diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	got, err := Decode(want.Encode(), prog)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(stripProg(want), stripProg(got)) {
		t.Fatalf("roundtrip is not identical")
	}
	if (want.Err() == nil) != (got.Err() == nil) {
		t.Fatalf("Err() disagrees after roundtrip: %v vs %v", want.Err(), got.Err())
	}
}

// TestSerialDecodeRejectsCorrupt seeds one corruption per entry, corpus
// style: every corrupted payload must produce a decode error (cold-path
// fallback), never a panic or a silently wrong Analysis.
func TestSerialDecodeRejectsCorrupt(t *testing.T) {
	spec, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip missing from catalog")
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	blob := Analyze(prog).Encode()

	other := asm.NewBuilder(0x1000)
	other.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	other.Syscall()
	otherProg := other.MustFinish()

	mutate := func(off int, v byte) []byte {
		c := append([]byte{}, blob...)
		c[off] = v
		return c
	}
	cases := []struct {
		name string
		blob []byte
		prog *asm.Program
	}{
		{"empty", nil, prog},
		{"truncated header", blob[:2], prog},
		{"truncated mid-payload", blob[:len(blob)/2], prog},
		{"trailing garbage", append(append([]byte{}, blob...), 0xAA), prog},
		{"region count corrupted", mutate(0, 0xFF), prog},
		{"region addr corrupted", mutate(4, ^blob[4]), prog},
		{"wrong program", blob, otherProg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.blob, tc.prog); err == nil {
				t.Fatalf("decode accepted a corrupt payload")
			}
		})
	}
	if _, err := Decode(blob, nil); err == nil {
		t.Fatal("decode accepted a nil program")
	}
}

// TestSerialDecodeRejectsStaleVersion pins the version-bump contract:
// payloads written by an older encoder must fail decode deterministically
// (the artifact store then falls back to a cold analysis) rather than
// being misparsed as current-format bytes.
func TestSerialDecodeRejectsStaleVersion(t *testing.T) {
	spec, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip missing from catalog")
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	blob := Analyze(prog).Encode()

	// The v1 format had no header: its first word was the region count.
	// A v1 payload therefore presents its region count where v2 expects
	// the magic.
	headerless := blob[8:]
	if _, err := Decode(headerless, prog); err == nil {
		t.Fatal("decode accepted a headerless pre-v2 payload")
	}

	// A payload from a future (or merely different) version must also
	// fall back cold, even with the magic intact.
	future := append([]byte{}, blob...)
	future[4] = byte(serVersion + 1)
	if _, err := Decode(future, prog); err == nil {
		t.Fatal("decode accepted a payload with a bumped version")
	}
}
