package sa

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/workload"
)

// exitSeq emits a clean SysExit(code) so corpus programs terminate.
func exitSeq(b *asm.Builder, code int32) {
	b.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1) // SysExit
	b.I(isa.OpADDI, isa.RegArg0, isa.RegZero, code)
	b.Syscall()
}

func hasCode(diags []Diag, code Code) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func diagStrings(diags []Diag) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("\n  ")
		sb.WriteString(d.String())
	}
	return sb.String()
}

// TestVerifyCorpus seeds one corruption per entry and checks the
// verifier rejects it with the specific diagnostic for that corruption
// class — not merely "some error".
func TestVerifyCorpus(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *asm.Program
		code  Code
		// substr, when non-empty, must appear in the matching diagnostic.
		substr string
	}{
		{
			name: "undecodable reachable word",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.I(isa.OpADDI, 10, isa.RegZero, 7)
				b.Word(0xffff_ffff) // undefined opcode in the fall-through path
				exitSeq(b, 0)
				return b.MustFinish()
			},
			code:   CodeUndecodable,
			substr: "not a valid",
		},
		{
			name: "branch target outside the image",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.Emit(isa.Inst{Op: isa.OpBEQ, Rs1: isa.RegZero, Rs2: isa.RegZero, Imm: 400})
				exitSeq(b, 0)
				return b.MustFinish()
			},
			code:   CodeBadTarget,
			substr: "outside the image",
		},
		{
			name: "jal target outside the image",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.Emit(isa.Inst{Op: isa.OpJAL, Rd: isa.RegLR, Imm: -600})
				exitSeq(b, 0)
				return b.MustFinish()
			},
			code:   CodeBadTarget,
			substr: "outside the image",
		},
		{
			name: "misaligned entry point",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				exitSeq(b, 0)
				p := b.MustFinish()
				p.Entry = 0x1002
				return p
			},
			code: CodeMisaligned,
		},
		{
			name: "control falls off the end of the image",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.I(isa.OpADDI, 10, isa.RegZero, 7)
				b.R(isa.OpADD, 11, 10, 10) // no exit, no jump: runs off the end
				return b.MustFinish()
			},
			code: CodeFallOff,
		},
		{
			name: "truncated image (trailing partial word)",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.I(isa.OpADDI, 10, isa.RegZero, 7)
				b.R(isa.OpADD, 11, 10, 10)
				p := b.MustFinish()
				// Chop the last instruction word in half: execution now
				// falls into two stray bytes that cannot decode.
				seg := &p.Segments[0]
				seg.Data = seg.Data[:len(seg.Data)-2]
				return p
			},
			code: CodeTruncated,
		},
		{
			name: "loop accumulates stack depth",
			build: func(t *testing.T) *asm.Program {
				b := asm.NewBuilder(0x1000)
				b.I(isa.OpADDI, 10, isa.RegZero, 8)
				b.Label("loop")
				b.I(isa.OpADDI, isa.RegSP, isa.RegSP, -16) // push, never popped
				b.I(isa.OpADDI, 10, 10, -1)
				b.Branch(isa.OpBNE, 10, isa.RegZero, "loop")
				exitSeq(b, 0)
				return b.MustFinish()
			},
			code:   CodeStackImbalance,
			substr: "stack depth",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Analyze(tc.build(t))
			errs := a.Errors()
			if len(errs) == 0 {
				t.Fatalf("verifier accepted the corrupt image; diags:%s", diagStrings(a.Diags()))
			}
			if !hasCode(errs, tc.code) {
				t.Fatalf("no %v error; got:%s", tc.code, diagStrings(errs))
			}
			if a.Err() == nil {
				t.Fatal("Err() = nil despite verifier errors")
			}
			if tc.substr == "" {
				return
			}
			found := false
			for _, d := range errs {
				if d.Code == tc.code && strings.Contains(d.Msg, tc.substr) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %v error mentioning %q; got:%s", tc.code, tc.substr, diagStrings(errs))
			}
		})
	}
}

// TestVerifyWarnings checks the advisory findings: they must be
// reported, but must not fail the load (Err() stays nil).
func TestVerifyWarnings(t *testing.T) {
	t.Run("uninitialized register read", func(t *testing.T) {
		b := asm.NewBuilder(0x1000)
		b.R(isa.OpADD, 10, 7, 7) // r7 is never written anywhere
		exitSeq(b, 0)
		a := Analyze(b.MustFinish())
		if err := a.Err(); err != nil {
			t.Fatalf("warnings must not fail the load: %v", err)
		}
		warns := a.Warnings()
		if !hasCode(warns, CodeUninitRead) {
			t.Fatalf("no uninit-read warning; got:%s", diagStrings(a.Diags()))
		}
		for _, d := range warns {
			if d.Code == CodeUninitRead && !strings.Contains(d.Msg, "r7") {
				t.Errorf("uninit-read warning for the wrong register: %s", d.Msg)
			}
			if d.Code == CodeUninitRead && d.Addr != 0x1000 {
				t.Errorf("uninit-read anchored at %#x, want first read site 0x1000", d.Addr)
			}
		}
	})
	t.Run("exit syscall args are not uninit reads", func(t *testing.T) {
		// A bare exit must not flag r2..r5: SYSCALL's conservative
		// liveness read set (everything, for SysSpawn) must not leak
		// into the uninit-read heuristic.
		b := asm.NewBuilder(0x1000)
		exitSeq(b, 0)
		a := Analyze(b.MustFinish())
		if hasCode(a.Diags(), CodeUninitRead) {
			t.Fatalf("bare exit flagged uninit reads:%s", diagStrings(a.Diags()))
		}
	})
	t.Run("provable self-modifying store", func(t *testing.T) {
		b := asm.NewBuilder(0x1000)
		b.Label("code")
		b.La(10, "code")
		b.I(isa.OpSW, 11, 10, 0) // store onto our own first instruction
		exitSeq(b, 0)
		a := Analyze(b.MustFinish())
		if err := a.Err(); err != nil {
			t.Fatalf("warnings must not fail the load: %v", err)
		}
		if !hasCode(a.Warnings(), CodeSMCStore) {
			t.Fatalf("no smc-store warning; got:%s", diagStrings(a.Diags()))
		}
	})
	t.Run("unreachable garbage words", func(t *testing.T) {
		b := asm.NewBuilder(0x1000)
		exitSeq(b, 0)
		b.Word(0xdead_beef) // unreachable and undecodable
		a := Analyze(b.MustFinish())
		if err := a.Err(); err != nil {
			t.Fatalf("unreachable garbage must not fail the load: %v", err)
		}
		if !hasCode(a.Warnings(), CodeUnreachable) {
			t.Fatalf("no unreachable warning; got:%s", diagStrings(a.Diags()))
		}
	})
}

// TestVerifyCatalogClean is the regression backstop: every synthetic
// SPEC2000 stand-in the harness can run must pass the verifier with
// zero errors, both at full scale and at the scale the benchmark tests
// use. Warnings are allowed (generated code legitimately reads kernel-
// zeroed registers) but logged so drift is visible.
func TestVerifyCatalogClean(t *testing.T) {
	for _, spec := range workload.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, scale := range []float64{1, 0.02} {
				p, err := spec.Scaled(scale).Build()
				if err != nil {
					t.Fatalf("build at scale %v: %v", scale, err)
				}
				a := Analyze(p)
				if err := a.Err(); err != nil {
					t.Fatalf("verifier rejected %s at scale %v: %v%s",
						spec.Name, scale, err, diagStrings(a.Errors()))
				}
				if a.NumBlocks() == 0 {
					t.Fatalf("no blocks recovered at scale %v", scale)
				}
				if w := a.Warnings(); len(w) > 0 {
					t.Logf("scale %v: %d warning(s):%s", scale, len(w), diagStrings(w))
				}
			}
		})
	}
}

// TestVerifyExamplesClean verifies the shipped example programs
// (transcribed into testdata with provenance headers) load clean.
func TestVerifyExamplesClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.svasm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found (err=%v)", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			p, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			a := Analyze(p)
			if err := a.Err(); err != nil {
				t.Fatalf("verifier rejected example: %v%s", err, diagStrings(a.Errors()))
			}
		})
	}
}
