// Sparse conditional value propagation: the interprocedural tier's
// value analysis (DESIGN §11).
//
// The analysis computes, for every block reachable from the program
// entry along executable edges, an abstract register state at block
// entry. The abstraction is an unsigned interval [lo, hi] refined by a
// trailing-zero-bits claim (every possible value is ≡ 0 mod 2^tz) and,
// where the value set is small and exactly known, the sorted set of
// concrete values. The engine is a worklist SCCP: only the entry block
// is seeded, branch outcomes prune or refine outgoing edges, and call
// return edges re-enter the caller with the callee's may-define set
// cleared to unknown.
//
// Two consumers sit on top:
//
//   - indirect-target resolution (resolveValues): a jalr whose operand
//     carries an exact value set, all of whose targets are discovered
//     block leaders, has its successor edges patched into the CFG. The
//     resolution loop alternates SCCP fixpoints with patching until the
//     graph stops changing — patching a call exposes the callee's
//     effects, which widens the caller's loop state, which can enlarge
//     the next round's target set.
//   - predicate folding (ProveCond): the Pin engine asks whether a
//     tool-declared condition on a register is provably constant at an
//     instruction, and folds the If-call when it is.
//
// Soundness is asymmetric. Patched CFG edges feed liveness, dominators
// and hoisting, whose consumers are pure observers — an imprecise or
// even stale edge set costs precision, never correctness. Fold verdicts
// change which Then-calls fire, so they are only issued when the final
// fixpoint converged, the final graph is consistent with the final
// states, and the program has no wild control (see classifyWild); the
// engine additionally drops all folds at run time once the guest
// writes its own code image (mem.CodeWritten).
package sa

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"superpin/internal/isa"
	"superpin/internal/kernel"
)

// CondKind identifies the comparison shape of a foldable tool
// predicate (see Cond).
type CondKind uint8

// Predicate condition kinds. All compare one guest register against a
// constant.
const (
	CondNone CondKind = iota
	CondEQ            // reg == imm
	CondNE            // reg != imm
	CondLTU           // reg <  imm (unsigned)
	CondGEU           // reg >= imm (unsigned)
)

// Cond is the declarative form of an instrumentation predicate: the
// tool asserts its If-callback returns exactly `R[Reg] <op> Imm`. The
// engine uses ProveCond to fold call sites where the comparison is
// statically decided.
type Cond struct {
	Kind CondKind
	Reg  uint8
	Imm  uint32
}

// IPStats summarizes the interprocedural tier's outcome for metrics
// and the differential harness.
type IPStats struct {
	// Functions recovered on the call graph.
	Functions int
	// ResolvedIndirect / UnresolvedIndirect count indirect-transfer
	// blocks (jalr terminators that are not returns) by whether their
	// target set was proven.
	ResolvedIndirect   int
	UnresolvedIndirect int
	// ReachedBlocks is the number of blocks the value analysis reached
	// along executable edges.
	ReachedBlocks int
	// ValuesOK reports fold-grade value states: the fixpoint converged
	// and the program has no wild control flow.
	ValuesOK bool
}

// Tuning knobs for the value analysis.
const (
	// setMax bounds the exact-value sets carried alongside intervals;
	// larger sets degrade to their interval hull. Sized above the
	// largest catalog dispatch table (gcc, 150 kernels) with headroom.
	setMax = 256
	// loadEnumMax bounds how many image words a load is willing to
	// enumerate to build an exact result set.
	loadEnumMax = 256
	// widenDelay is how many times a join may strictly raise a
	// register's interval at one block before widening kicks in;
	// twice that and the value goes to Top.
	widenDelay = 4
	// widenLandmark is the stage-one widening bound. Deliberately one
	// below the signed maximum: a loop counter widened to this and then
	// incremented spans [1, 0x7FFFFFFF], which still does not cross the
	// sign boundary, so signed branch refinement keeps working.
	widenLandmark = 0x7FFFFFFE
	// maxResolveRounds bounds the SCCP/patch alternation.
	maxResolveRounds = 8
)

// vval is the abstract value of one register: an unsigned interval
// [lo, hi], a trailing-zeros claim (every concrete value is a multiple
// of 2^tz), and optionally the exact sorted value set.
type vval struct {
	lo, hi uint32
	tz     uint8
	set    []uint32
}

func vTop() vval           { return vval{0, ^uint32(0), 0, nil} }
func (v vval) isTop() bool { return v.lo == 0 && v.hi == ^uint32(0) && v.tz == 0 }
func (v vval) isConst() (uint32, bool) {
	if v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func tzOf(c uint32) uint8 {
	if c == 0 {
		return 31
	}
	return uint8(min(31, bits.TrailingZeros32(c)))
}

func vConst(c uint32) vval { return vval{c, c, tzOf(c), []uint32{c}} }

// vFromSet builds the exact abstraction of a non-empty sorted value
// set.
func vFromSet(set []uint32) vval {
	tz := uint8(31)
	for _, c := range set {
		tz = min(tz, tzOf(c))
	}
	return vval{set[0], set[len(set)-1], tz, set}
}

func (v vval) eq(w vval) bool {
	if v.lo != w.lo || v.hi != w.hi || v.tz != w.tz || len(v.set) != len(w.set) {
		return false
	}
	for i := range v.set {
		if v.set[i] != w.set[i] {
			return false
		}
	}
	return true
}

// vjoin is the lattice join (union of concretizations, approximated).
func vjoin(a, b vval) vval {
	out := vval{min(a.lo, b.lo), max(a.hi, b.hi), min(a.tz, b.tz), nil}
	if a.set != nil && b.set != nil {
		out.set = unionSets(a.set, b.set)
	}
	return out
}

// unionSets merges two sorted sets, returning nil past the size cap.
func unionSets(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
		if len(out) > setMax {
			return nil
		}
	}
	return out
}

// mapSet applies f to every element of a sorted set, re-sorting and
// deduplicating (f need not be monotone under wraparound).
func mapSet(set []uint32, f func(uint32) uint32) []uint32 {
	out := make([]uint32, len(set))
	for i, c := range set {
		out[i] = f(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, c := range out {
		if i == 0 || c != out[w-1] {
			out[w] = c
			w++
		}
	}
	return out[:w]
}

// imageWords is a raw little-endian word view of the program image,
// for enumerable loads (regions only keep decoded instructions, and
// data like jump tables rarely decodes). Built straight from the
// segment bytes with the same alignment rule as buildRegions.
type imageWords struct {
	base  []uint32 // aligned start address per span
	words [][]uint32
}

func (a *Analysis) newImageWords() *imageWords {
	img := &imageWords{}
	for _, seg := range a.prog.Segments {
		start := (seg.Addr + isa.WordSize - 1) &^ (isa.WordSize - 1)
		off := int(start - seg.Addr)
		if off >= len(seg.Data) {
			continue
		}
		n := (len(seg.Data) - off) / isa.WordSize
		ws := make([]uint32, n)
		for i := 0; i < n; i++ {
			ws[i] = binary.LittleEndian.Uint32(seg.Data[off+i*isa.WordSize:])
		}
		img.base = append(img.base, start)
		img.words = append(img.words, ws)
	}
	sort.Sort(&imgSort{img})
	return img
}

type imgSort struct{ img *imageWords }

func (s *imgSort) Len() int           { return len(s.img.base) }
func (s *imgSort) Less(i, j int) bool { return s.img.base[i] < s.img.base[j] }
func (s *imgSort) Swap(i, j int) {
	s.img.base[i], s.img.base[j] = s.img.base[j], s.img.base[i]
	s.img.words[i], s.img.words[j] = s.img.words[j], s.img.words[i]
}

// lookup returns the image word at addr; ok is false off-image or off
// the word grid.
func (img *imageWords) lookup(addr uint32) (uint32, bool) {
	if addr%isa.WordSize != 0 {
		return 0, false
	}
	lo, hi := 0, len(img.base)
	for lo < hi {
		mid := (lo + hi) / 2
		b := img.base[mid]
		n := uint32(len(img.words[mid])) * isa.WordSize
		switch {
		case addr < b:
			hi = mid
		case addr >= b+n:
			lo = mid + 1
		default:
			return img.words[mid][(addr-b)/isa.WordSize], true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------

func addv(a, b vval) vval {
	if c, ok := b.isConst(); ok && a.set != nil {
		return vFromSet(mapSet(a.set, func(x uint32) uint32 { return x + c }))
	}
	if c, ok := a.isConst(); ok && b.set != nil {
		return vFromSet(mapSet(b.set, func(x uint32) uint32 { return x + c }))
	}
	lo := uint64(a.lo) + uint64(b.lo)
	hi := uint64(a.hi) + uint64(b.hi)
	tz := min(a.tz, b.tz)
	switch {
	case hi <= 0xFFFFFFFF:
		return vval{uint32(lo), uint32(hi), tz, nil}
	case lo > 0xFFFFFFFF:
		return vval{uint32(lo), uint32(hi), tz, nil} // both wrapped consistently
	default:
		return vTop()
	}
}

func subv(a, b vval) vval {
	if c, ok := b.isConst(); ok && a.set != nil {
		return vFromSet(mapSet(a.set, func(x uint32) uint32 { return x - c }))
	}
	lo := int64(a.lo) - int64(b.hi)
	hi := int64(a.hi) - int64(b.lo)
	tz := min(a.tz, b.tz)
	switch {
	case lo >= 0:
		return vval{uint32(lo), uint32(hi), tz, nil}
	case hi < 0:
		return vval{uint32(lo), uint32(hi), tz, nil} // both wrapped consistently
	default:
		return vTop()
	}
}

// orUpper is a safe upper bound for x|y given x<=a, y<=b: every bit of
// the result is below the highest bit of a|b.
func orUpper(a, b uint32) uint32 {
	m := a | b
	if m == 0 {
		return 0
	}
	return uint32(1)<<bits.Len32(m) - 1
}

// crossesSign reports whether the unsigned interval spans the
// 0x7FFFFFFF/0x80000000 boundary (where signed order breaks).
func (v vval) crossesSign() bool { return v.lo <= 0x7FFFFFFF && v.hi >= 0x80000000 }

const signBias = uint32(0x80000000)

// biased maps v into the signed-comparison domain (x ^ 0x80000000
// makes signed order match unsigned order); ok is false when the
// interval crosses the sign boundary and the mapping is not an
// interval.
func (v vval) biased() (vval, bool) {
	if v.crossesSign() {
		return vval{}, false
	}
	return vval{v.lo ^ signBias, v.hi ^ signBias, 0, nil}, true
}

// cmpLTU proves a <u b where possible.
func cmpLTU(a, b vval) (val, proven bool) {
	if a.hi < b.lo {
		return true, true
	}
	if a.lo >= b.hi {
		return false, true
	}
	return false, false
}

// cmpEQ proves a == b where possible.
func cmpEQ(a, b vval) (val, proven bool) {
	ca, oka := a.isConst()
	cb, okb := b.isConst()
	if oka && okb {
		return ca == cb, true
	}
	if a.hi < b.lo || b.hi < a.lo {
		return false, true
	}
	// Disjoint residues: if both carry tz claims the congruence classes
	// can still overlap, but two exact sets with empty intersection
	// prove inequality.
	if a.set != nil && b.set != nil && !setsIntersect(a.set, b.set) {
		return false, true
	}
	return false, false
}

func setsIntersect(a, b []uint32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			return true
		}
	}
	return false
}

// cmpLT proves a < b signed where possible.
func cmpLT(a, b vval) (val, proven bool) {
	ba, oka := a.biased()
	bb, okb := b.biased()
	if !oka || !okb {
		return false, false
	}
	return cmpLTU(ba, bb)
}

// vEval computes the value written by one non-store, non-syscall
// instruction at addr given register state st.
func vEval(in isa.Inst, addr uint32, st []vval, img *imageWords) vval {
	a := st[in.Rs1]
	uimm := uint32(in.Imm) // decode already sign/zero-extended per op
	switch in.Op {
	case isa.OpADD:
		return addv(a, st[in.Rs2])
	case isa.OpADDI:
		return addv(a, vConst(uimm))
	case isa.OpSUB:
		return subv(a, st[in.Rs2])
	case isa.OpMUL:
		if ca, ok := a.isConst(); ok {
			if cb, ok := st[in.Rs2].isConst(); ok {
				return vConst(ca * cb)
			}
		}
		return vTop()
	case isa.OpDIV:
		return divv(a, st[in.Rs2])
	case isa.OpREM:
		return remv(a, st[in.Rs2])
	case isa.OpAND:
		return andv(a, st[in.Rs2])
	case isa.OpANDI:
		return andv(a, vConst(uimm))
	case isa.OpOR:
		return orv(a, st[in.Rs2])
	case isa.OpORI:
		return orv(a, vConst(uimm))
	case isa.OpXOR:
		return xorv(a, st[in.Rs2])
	case isa.OpXORI:
		return xorv(a, vConst(uimm))
	case isa.OpSLL, isa.OpSRL, isa.OpSRA:
		ca, oka := a.isConst()
		cb, okb := st[in.Rs2].isConst()
		if oka && okb {
			s := cb & 31
			switch in.Op {
			case isa.OpSLL:
				return vConst(ca << s)
			case isa.OpSRL:
				return vConst(ca >> s)
			default:
				return vConst(uint32(int32(ca) >> s))
			}
		}
		return vTop()
	case isa.OpSLLI:
		return slliv(a, uimm&31)
	case isa.OpSRLI:
		return srliv(a, uimm&31)
	case isa.OpSRAI:
		return sraiv(a, uimm&31)
	case isa.OpSLT:
		return boolv(cmpLT(a, st[in.Rs2]))
	case isa.OpSLTU:
		return boolv(cmpLTU(a, st[in.Rs2]))
	case isa.OpSLTI:
		return boolv(cmpLT(a, vConst(uimm)))
	case isa.OpSLTIU:
		return boolv(cmpLTU(a, vConst(uimm)))
	case isa.OpLUI:
		return vConst(uimm << 16)
	case isa.OpLW:
		return loadv(addv(a, vConst(uimm)), img)
	case isa.OpLB:
		return vTop()
	case isa.OpLBU:
		return vval{0, 255, 0, nil}
	case isa.OpJAL, isa.OpJALR:
		return vConst(addr + isa.WordSize)
	}
	return vTop()
}

func boolv(val, proven bool) vval {
	if !proven {
		return vval{0, 1, 0, nil}
	}
	if val {
		return vConst(1)
	}
	return vConst(0)
}

func divv(a, b vval) vval {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			// cpu.Exec semantics: /0 yields all ones, INT_MIN/-1 the dividend.
			switch {
			case cb == 0:
				return vConst(^uint32(0))
			case int32(ca) == -1<<31 && int32(cb) == -1:
				return vConst(ca)
			default:
				return vConst(uint32(int32(ca) / int32(cb)))
			}
		}
	}
	// Non-negative dividend interval / positive constant divisor.
	if d, ok := b.isConst(); ok && int32(d) > 0 && a.hi < 1<<31 {
		return vval{a.lo / d, a.hi / d, 0, nil}
	}
	return vTop()
}

func remv(a, b vval) vval {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			switch {
			case cb == 0:
				return vConst(ca)
			case int32(ca) == -1<<31 && int32(cb) == -1:
				return vConst(0)
			default:
				return vConst(uint32(int32(ca) % int32(cb)))
			}
		}
	}
	if d, ok := b.isConst(); ok && int32(d) > 0 && a.hi < 1<<31 {
		if a.hi < d {
			return vval{a.lo, a.hi, 0, a.set}
		}
		return vval{0, min(a.hi, d-1), 0, nil}
	}
	return vTop()
}

func andv(a, b vval) vval {
	if ca, ok := a.isConst(); ok {
		if cb, ok := b.isConst(); ok {
			return vConst(ca & cb)
		}
	}
	return vval{0, min(a.hi, b.hi), max(a.tz, b.tz), nil}
}

func orv(a, b vval) vval {
	ca, oka := a.isConst()
	cb, okb := b.isConst()
	switch {
	case oka && okb:
		return vConst(ca | cb)
	case oka && ca == 0:
		return b
	case okb && cb == 0:
		return a
	}
	return vval{max(a.lo, b.lo), orUpper(a.hi, b.hi), min(a.tz, b.tz), nil}
}

func xorv(a, b vval) vval {
	ca, oka := a.isConst()
	cb, okb := b.isConst()
	switch {
	case oka && okb:
		return vConst(ca ^ cb)
	case oka && ca == 0:
		return b
	case okb && cb == 0:
		return a
	}
	return vval{0, orUpper(a.hi, b.hi), min(a.tz, b.tz), nil}
}

func slliv(a vval, s uint32) vval {
	if a.set != nil && uint64(a.hi)<<s <= 0xFFFFFFFF {
		return vFromSet(mapSet(a.set, func(x uint32) uint32 { return x << s }))
	}
	if uint64(a.hi)<<s > 0xFFFFFFFF {
		return vTop()
	}
	return vval{a.lo << s, a.hi << s, min(31, a.tz+uint8(s)), nil}
}

func srliv(a vval, s uint32) vval {
	if a.set != nil {
		return vFromSet(mapSet(a.set, func(x uint32) uint32 { return x >> s }))
	}
	tz := uint8(0)
	if int(a.tz) > int(s) {
		tz = a.tz - uint8(s)
	}
	return vval{a.lo >> s, a.hi >> s, tz, nil}
}

func sraiv(a vval, s uint32) vval {
	if a.crossesSign() {
		return vTop()
	}
	tz := uint8(0)
	if int(a.tz) > int(s) {
		tz = a.tz - uint8(s)
	}
	return vval{uint32(int32(a.lo) >> s), uint32(int32(a.hi) >> s), tz, nil}
}

// loadv evaluates a word load from an abstract address: when the
// address set (or a small congruence-stepped interval) enumerates to
// in-image words, the result is their exact value set.
func loadv(addr vval, img *imageWords) vval {
	var addrs []uint32
	switch {
	case addr.set != nil:
		addrs = addr.set
	case addr.tz >= 2:
		step := uint32(1) << addr.tz
		first := (addr.lo + step - 1) / step * step
		if first < addr.lo { // overflow in round-up
			return vTop()
		}
		if addr.hi < first {
			return vTop()
		}
		n := (addr.hi-first)/step + 1
		if n > loadEnumMax {
			return vTop()
		}
		for i := uint32(0); i < n; i++ {
			addrs = append(addrs, first+i*step)
		}
	default:
		return vTop()
	}
	if len(addrs) == 0 || len(addrs) > loadEnumMax {
		return vTop()
	}
	vals := make([]uint32, 0, len(addrs))
	for _, ea := range addrs {
		w, ok := img.lookup(ea)
		if !ok {
			return vTop()
		}
		vals = append(vals, w)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	w := 0
	for i, c := range vals {
		if i == 0 || c != vals[w-1] {
			vals[w] = c
			w++
		}
	}
	return vFromSet(vals[:w])
}

// vstep applies one instruction's register effect to st in place.
// Terminator-specific control effects (branch refinement, call return
// clobbers) are the caller's business; this only models the register
// write.
func vstep(st []vval, in isa.Inst, addr uint32, img *imageWords) {
	if in.Op == isa.OpSYSCALL {
		// The kernel writes the result to r1; all other registers are
		// preserved across every non-exit syscall.
		st[isa.RegSys] = vTop()
		return
	}
	d := in.DstReg()
	if d <= 0 {
		return
	}
	st[d] = vEval(in, addr, st, img)
}

// ---------------------------------------------------------------------
// Branch refinement
// ---------------------------------------------------------------------

// refineBranch narrows st in place under the assumption that the
// conditional branch in was (taken=true) or was not (taken=false)
// taken. It reports false when the assumption is contradictory — the
// edge is not executable.
func refineBranch(st []vval, in isa.Inst, taken bool) bool {
	a, b := st[in.Rs1], st[in.Rs2]
	var ok bool
	switch in.Op {
	case isa.OpBEQ:
		a, b, ok = refineEQ(a, b, taken)
	case isa.OpBNE:
		a, b, ok = refineEQ(a, b, !taken)
	case isa.OpBLTU:
		a, b, ok = refineLTU(a, b, taken)
	case isa.OpBGEU:
		a, b, ok = refineLTU(a, b, !taken)
	case isa.OpBLT:
		a, b, ok = refineLT(a, b, taken)
	case isa.OpBGE:
		a, b, ok = refineLT(a, b, !taken)
	default:
		return true
	}
	if !ok {
		return false
	}
	if in.Rs1 != isa.RegZero {
		st[in.Rs1] = a
	}
	if in.Rs2 != isa.RegZero {
		st[in.Rs2] = b
	}
	return true
}

// refineEQ: eq=true asserts a == b, eq=false asserts a != b.
func refineEQ(a, b vval, eq bool) (vval, vval, bool) {
	if eq {
		lo, hi := max(a.lo, b.lo), min(a.hi, b.hi)
		if lo > hi {
			return a, b, false
		}
		n := vval{lo, hi, max(a.tz, b.tz), nil}
		if a.set != nil && b.set != nil {
			n.set = intersectSets(a.set, b.set)
			if len(n.set) == 0 {
				return a, b, false
			}
			n = vFromSet(n.set)
		}
		n.set = filterSet(n.set, n.lo, n.hi)
		return n, n, true
	}
	// a != b: only boundary shaving against a constant is useful.
	if c, isC := b.isConst(); isC {
		na, alive := shaveConst(a, c)
		return na, b, alive
	}
	if c, isC := a.isConst(); isC {
		nb, alive := shaveConst(b, c)
		return a, nb, alive
	}
	return a, b, true
}

// shaveConst removes c from v's interval when c sits on a boundary.
func shaveConst(v vval, c uint32) (vval, bool) {
	if cv, ok := v.isConst(); ok {
		return v, cv != c
	}
	n := v
	if v.lo == c {
		n.lo++
	} else if v.hi == c {
		n.hi--
	}
	n.set = removeFromSet(filterSet(n.set, n.lo, n.hi), c)
	if n.set != nil && len(n.set) == 0 {
		return n, false
	}
	return n, true
}

func intersectSets(a, b []uint32) []uint32 {
	out := []uint32{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

func filterSet(set []uint32, lo, hi uint32) []uint32 {
	if set == nil {
		return nil
	}
	out := set[:0:0]
	for _, c := range set {
		if c >= lo && c <= hi {
			out = append(out, c)
		}
	}
	return out
}

func removeFromSet(set []uint32, c uint32) []uint32 {
	if set == nil {
		return nil
	}
	out := set[:0:0]
	for _, x := range set {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

// refineLTU: lt=true asserts a <u b, lt=false asserts a >=u b.
func refineLTU(a, b vval, lt bool) (vval, vval, bool) {
	if lt {
		if b.hi == 0 {
			return a, b, false // nothing is below 0
		}
		na, nb := a, b
		na.hi = min(na.hi, b.hi-1)
		if a.lo == ^uint32(0) {
			return a, b, false
		}
		nb.lo = max(nb.lo, a.lo+1)
		if na.lo > na.hi || nb.lo > nb.hi {
			return a, b, false
		}
		na.set = filterSet(na.set, na.lo, na.hi)
		nb.set = filterSet(nb.set, nb.lo, nb.hi)
		return na, nb, true
	}
	na, nb := a, b
	na.lo = max(na.lo, b.lo)
	nb.hi = min(nb.hi, a.hi)
	if na.lo > na.hi || nb.lo > nb.hi {
		return a, b, false
	}
	na.set = filterSet(na.set, na.lo, na.hi)
	nb.set = filterSet(nb.set, nb.lo, nb.hi)
	return na, nb, true
}

// refineLT is the signed counterpart, computed in the biased domain
// when both intervals map cleanly; refinement is skipped (soundly) for
// a side whose interval crosses the sign boundary.
func refineLT(a, b vval, lt bool) (vval, vval, bool) {
	ba, oka := a.biased()
	bb, okb := b.biased()
	if !oka || !okb {
		return a, b, true // no refinement, still executable
	}
	ra, rb, alive := refineLTU(ba, bb, lt)
	if !alive {
		return a, b, false
	}
	na, nb := a, b
	if un, ok := unbias(ra); ok {
		un.tz, un.set = a.tz, filterSetSigned(a.set, un.lo, un.hi)
		na = un
	}
	if un, ok := unbias(rb); ok {
		un.tz, un.set = b.tz, filterSetSigned(b.set, un.lo, un.hi)
		nb = un
	}
	return na, nb, true
}

// unbias maps a biased interval back to the unsigned domain; ok is
// false when the biased interval spans the re-mapping boundary.
func unbias(v vval) (vval, bool) {
	if v.crossesSign() {
		return vval{}, false
	}
	return vval{v.lo ^ signBias, v.hi ^ signBias, 0, nil}, true
}

// filterSetSigned keeps set elements inside the unsigned interval
// [lo, hi] (which after unbias is a plain unsigned range).
func filterSetSigned(set []uint32, lo, hi uint32) []uint32 {
	return filterSet(set, lo, hi)
}

// ---------------------------------------------------------------------
// The SCCP engine
// ---------------------------------------------------------------------

// valueInfo is the value analysis result attached to an Analysis.
type valueInfo struct {
	ok      bool     // fold-grade: converged and the program is not wild
	reached []bool   // per block
	entry   [][]vval // per reached block: register state at block entry
	stats   IPStats
}

// termKind classifies how a block hands control onward for the value
// propagation.
type termKind uint8

const (
	termFlow     termKind = iota // plain flow successors (falls, jumps, patched tables)
	termBranch                   // conditional branch: succs[0] taken, succs[1] fall-through
	termCall                     // resolved call: edgeCall callees + one edgeRet continuation
	termRet                      // function return
	termTerminal                 // provably terminal (exit syscall)
	termSyscall                  // non-terminal syscall: r1 clobbered, then flow
	termWild                     // statically unknown continuation: no propagation
)

// isReturnBlock reports the canonical return shape: jalr r0, lr, 0.
func (a *Analysis) isReturnBlock(b *block) bool {
	in := a.regions[b.ri].ins[b.end-1]
	return in.Op == isa.OpJALR && in.Rd == isa.RegZero &&
		in.Rs1 == isa.RegLR && in.Imm == 0
}

// classifyTerm decides the propagation shape of block id.
func (a *Analysis) classifyTerm(b *block) termKind {
	in := a.regions[b.ri].ins[b.end-1]
	if b.conservative {
		if a.isReturnBlock(b) {
			return termRet
		}
		return termWild
	}
	switch {
	case in.Op.IsCondBranch():
		if len(b.succs) == 2 {
			return termBranch
		}
		return termWild
	case in.Op == isa.OpJAL || in.Op == isa.OpJALR:
		for _, k := range b.kinds {
			if k == edgeCall {
				return termCall
			}
		}
		return termFlow
	case in.Op == isa.OpSYSCALL:
		if len(b.succs) == 0 {
			return termTerminal
		}
		return termSyscall
	}
	return termFlow
}

// blockR1 replays the block-local syscall-number constant state up to
// (excluding) the terminator.
func (a *Analysis) blockR1(b *block) r1State {
	r := a.regions[b.ri]
	var s r1State
	for i := b.start; i < b.end-1; i++ {
		s = trackR1(s, r.ins[i])
	}
	return s
}

// sccp runs the worklist fixpoint over the current CFG. mayDefOf maps
// a callee entry block id to the registers the callee (transitively)
// may modify; it must cover every edgeCall target in the graph.
// Returns nil states with ok=false when the sweep cap was exceeded.
func (a *Analysis) sccp(img *imageWords, mayDefOf map[int]uint32) *valueInfo {
	n := len(a.blocks)
	vi := &valueInfo{reached: make([]bool, n), entry: make([][]vval, n)}
	entryID := a.entryBlockID()
	if entryID < 0 {
		return vi
	}
	raises := make([][isa.NumRegs]uint8, n)
	inQueue := make([]bool, n)
	var queue []int
	enqueue := func(id int) {
		if !inQueue[id] {
			inQueue[id] = true
			queue = append(queue, id)
		}
	}

	seed := make([]vval, isa.NumRegs)
	for i := range seed {
		seed[i] = vTop()
	}
	seed[isa.RegZero] = vConst(0)
	vi.reached[entryID] = true
	vi.entry[entryID] = seed
	enqueue(entryID)

	propagate := func(to int, st []vval) {
		if !vi.reached[to] {
			vi.reached[to] = true
			cp := make([]vval, isa.NumRegs)
			copy(cp, st)
			cp[isa.RegZero] = vConst(0)
			vi.entry[to] = cp
			enqueue(to)
			return
		}
		cur := vi.entry[to]
		changed := false
		for r := 1; r < isa.NumRegs; r++ {
			nv := vjoin(cur[r], st[r])
			if nv.eq(cur[r]) {
				continue
			}
			// The join strictly descended: count it and widen when the
			// same register keeps descending at the same join point.
			raises[to][r]++
			if raises[to][r] > 2*widenDelay {
				nv = vTop()
			} else if raises[to][r] > widenDelay && !nv.isTop() {
				if nv.hi <= widenLandmark {
					nv = vval{0, widenLandmark, nv.tz, nil}
				} else {
					nv = vTop()
				}
			}
			if !nv.eq(cur[r]) {
				cur[r] = nv
				changed = true
			}
		}
		if changed {
			enqueue(to)
		}
	}

	budget := 256 * (n + 1)
	steps := 0
	scratch := make([]vval, isa.NumRegs)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false
		steps++
		if steps > budget {
			return &valueInfo{reached: make([]bool, n), entry: make([][]vval, n)}
		}
		b := a.blocks[id]
		r := a.regions[b.ri]
		st := scratch
		copy(st, vi.entry[id])
		last := b.end - 1
		lastIn := r.ins[last]
		kind := a.classifyTerm(b)
		// Replay the block body. For blocks cut without a terminator the
		// "terminator" is an ordinary instruction and must execute too.
		for i := b.start; i < last; i++ {
			vstep(st, r.ins[i], r.wordAddr(i), img)
		}
		lastAddr := r.wordAddr(last)
		switch kind {
		case termFlow:
			vstep(st, lastIn, lastAddr, img)
			for _, s := range b.succs {
				propagate(s, st)
			}
		case termBranch:
			taken, proven := a.evalBranch(st, lastIn)
			if !proven || taken {
				tk := make([]vval, isa.NumRegs)
				copy(tk, st)
				if refineBranch(tk, lastIn, true) {
					propagate(b.succs[0], tk)
				}
			}
			if !proven || !taken {
				ft := make([]vval, isa.NumRegs)
				copy(ft, st)
				if refineBranch(ft, lastIn, false) {
					propagate(b.succs[1], ft)
				}
			}
		case termCall:
			// rd is written before control transfers: callees see it.
			if d := lastIn.DstReg(); d > 0 {
				st[d] = vConst(lastAddr + isa.WordSize)
			}
			var clobber uint32
			retSucc := -1
			for i, s := range b.succs {
				if b.kinds[i] == edgeCall {
					propagate(s, st)
					if md, ok := mayDefOf[s]; ok {
						clobber |= md
					} else {
						clobber = AllRegs
					}
				} else {
					retSucc = s
				}
			}
			if retSucc >= 0 {
				rs := make([]vval, isa.NumRegs)
				copy(rs, st)
				for reg := 1; reg < isa.NumRegs; reg++ {
					if clobber&(1<<uint(reg)) != 0 {
						rs[reg] = vTop()
					}
				}
				propagate(retSucc, rs)
			}
		case termSyscall:
			vstep(st, lastIn, lastAddr, img)
			for _, s := range b.succs {
				propagate(s, st)
			}
		case termRet, termTerminal, termWild:
			// Returns re-enter callers through their calls' edgeRet
			// continuations; terminal and wild blocks propagate nothing.
			// An unresolved indirect call is wild here on purpose: its
			// continuation stays optimistically unreached until the call
			// resolves (or the whole program is declared wild).
		}
	}
	vi.ok = true
	for _, r := range vi.reached {
		if r {
			vi.stats.ReachedBlocks++
		}
	}
	return vi
}

// evalBranch decides a conditional branch outcome from the state just
// before it.
func (a *Analysis) evalBranch(st []vval, in isa.Inst) (taken, proven bool) {
	x, y := st[in.Rs1], st[in.Rs2]
	switch in.Op {
	case isa.OpBEQ:
		return cmpEQ(x, y)
	case isa.OpBNE:
		v, p := cmpEQ(x, y)
		return !v, p
	case isa.OpBLT:
		return cmpLT(x, y)
	case isa.OpBGE:
		v, p := cmpLT(x, y)
		return !v, p
	case isa.OpBLTU:
		return cmpLTU(x, y)
	case isa.OpBGEU:
		v, p := cmpLTU(x, y)
		return !v, p
	}
	return false, false
}

// entryBlockID resolves the entry block id without requiring
// computeDominators to have run.
func (a *Analysis) entryBlockID() int {
	b := a.blockAt(a.prog.Entry)
	if b == nil || !b.entryReach {
		return -1
	}
	return int(a.regions[b.ri].blockOf[b.start])
}

// ---------------------------------------------------------------------
// Indirect-target resolution
// ---------------------------------------------------------------------

// indirectBlocks returns the ids of blocks terminated by a jalr that
// is not a canonical return, in block order.
func (a *Analysis) indirectBlocks() []int {
	var out []int
	for id, b := range a.blocks {
		in := a.regions[b.ri].ins[b.end-1]
		if in.Op == isa.OpJALR && !a.isReturnBlock(b) {
			out = append(out, id)
		}
	}
	return out
}

// candidateTargets replays block id from its entry state and returns
// the exact jalr target set when provable. bad collects provable
// targets that are not discovered block leaders (indirect-call-to-data).
func (a *Analysis) candidateTargets(vi *valueInfo, img *imageWords, id int) (targets []int, bad []uint32, provable bool) {
	if !vi.reached[id] {
		return nil, nil, false
	}
	b := a.blocks[id]
	r := a.regions[b.ri]
	st := make([]vval, isa.NumRegs)
	copy(st, vi.entry[id])
	last := b.end - 1
	for i := b.start; i < last; i++ {
		vstep(st, r.ins[i], r.wordAddr(i), img)
	}
	in := r.ins[last]
	v := st[in.Rs1]
	if v.set == nil {
		return nil, nil, false
	}
	addrs := mapSet(v.set, func(x uint32) uint32 { return (x + uint32(in.Imm)) &^ (isa.WordSize - 1) })
	seen := make(map[int]bool)
	for _, t := range addrs {
		tb := a.blockAt(t)
		if tb == nil || a.regions[tb.ri].wordAddr(tb.start) != t {
			bad = append(bad, t)
			continue
		}
		tid := int(a.regions[tb.ri].blockOf[tb.start])
		if !seen[tid] {
			seen[tid] = true
			targets = append(targets, tid)
		}
	}
	if len(bad) > 0 {
		return nil, bad, false
	}
	sort.Ints(targets)
	return targets, nil, true
}

// applyIndirect patches (or unpatches) the successor edges of an
// indirect block. For a call the ret continuation edge is kept first
// and the callees appended; for a jump the targets become plain flow
// edges. Reports whether the block changed.
func (a *Analysis) applyIndirect(id int, targets []int, provable bool) bool {
	b := a.blocks[id]
	in := a.regions[b.ri].ins[b.end-1]
	isCall := in.Rd != isa.RegZero
	var succs []int
	var kinds []edgeKind
	conservative := true
	if provable {
		if isCall {
			// The return continuation must itself be a discovered block.
			ret := -1
			for i, s := range b.succs {
				if b.kinds[i] == edgeRet {
					ret = s
				}
			}
			if ret >= 0 {
				succs = append(succs, ret)
				kinds = append(kinds, edgeRet)
				for _, t := range targets {
					succs = append(succs, t)
					kinds = append(kinds, edgeCall)
				}
				conservative = false
			}
		} else {
			for _, t := range targets {
				succs = append(succs, t)
				kinds = append(kinds, edgeFlow)
			}
			conservative = len(succs) == 0
		}
	}
	if conservative {
		// Restore the unresolved shape from buildBlocks.
		succs, kinds = nil, nil
		if isCall {
			for i, s := range b.succs {
				if b.kinds[i] == edgeRet {
					succs = append(succs, s)
					kinds = append(kinds, edgeRet)
				}
			}
		}
	}
	if b.conservative == conservative && intSliceEq(b.succs, succs) && kindSliceEq(b.kinds, kinds) {
		return false
	}
	b.succs, b.kinds, b.conservative = succs, kinds, conservative
	return true
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func kindSliceEq(a, b []edgeKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resolveValues is the interprocedural driver: it alternates SCCP
// fixpoints with indirect-edge patching until the graph is stable,
// then classifies the program's wildness and records the final,
// graph-consistent value states for predicate folding.
func (a *Analysis) resolveValues() {
	a.img = a.newImageWords()
	// Direct calls whose callee and continuation both resolved are
	// trusted edges in the interprocedural graph.
	for _, b := range a.blocks {
		in := a.regions[b.ri].ins[b.end-1]
		if in.Op == isa.OpJAL && in.Rd != isa.RegZero &&
			len(b.succs) == 2 && b.kinds[0] == edgeCall && b.kinds[1] == edgeRet {
			b.conservative = false
		}
	}
	indirect := a.indirectBlocks()
	var vi *valueInfo
	converged := false
	var badTargets map[int][]uint32
	for round := 0; round < maxResolveRounds; round++ {
		mayDefOf := a.calleeMayDefs()
		vi = a.sccp(a.img, mayDefOf)
		changed := false
		badTargets = make(map[int][]uint32)
		for _, id := range indirect {
			targets, bad, provable := a.candidateTargets(vi, a.img, id)
			if len(bad) > 0 {
				badTargets[id] = bad
			}
			if a.applyIndirect(id, targets, provable) {
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if vi == nil {
		vi = &valueInfo{reached: make([]bool, len(a.blocks)), entry: make([][]vval, len(a.blocks))}
	}
	vi.ok = vi.ok && converged

	// Diagnose provable indirect transfers into non-code.
	ids := make([]int, 0, len(badTargets))
	for id := range badTargets { //detguard:ok sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := a.blocks[id]
		addr := a.regions[b.ri].wordAddr(b.end - 1)
		a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeIndirectData, Addr: addr,
			Msg: diagBadTargets(badTargets[id])})
	}

	for _, id := range indirect {
		if a.blocks[id].conservative {
			vi.stats.UnresolvedIndirect++
		} else {
			vi.stats.ResolvedIndirect++
		}
	}
	vi.stats.ValuesOK = vi.ok
	a.vals = vi
}

func diagBadTargets(bad []uint32) string {
	msg := "indirect transfer provably targets non-code:"
	for i, t := range bad {
		if i == 4 {
			msg += " ..."
			break
		}
		msg += fmt.Sprintf(" %#08x", t)
	}
	return msg
}

// ---------------------------------------------------------------------
// Predicate proofs
// ---------------------------------------------------------------------

// ProveCond reports whether the condition c is statically decided at
// the instruction at addr: proven is true when every execution
// reaching addr satisfies (val=true) or violates (val=false) the
// condition. Proofs are only issued from fold-grade value states (the
// fixpoint converged and the program has no wild control flow); all
// other cases return proven=false.
func (a *Analysis) ProveCond(addr uint32, c Cond) (val, proven bool) {
	if a.vals == nil || !a.vals.ok || c.Kind == CondNone || c.Reg >= isa.NumRegs {
		return false, false
	}
	ri, wi, ok := a.locate(addr)
	if !ok {
		return false, false
	}
	id := a.regions[ri].blockOf[wi]
	if id < 0 || !a.vals.reached[id] {
		return false, false
	}
	b := a.blocks[id]
	r := a.regions[b.ri]
	st := make([]vval, isa.NumRegs)
	copy(st, a.vals.entry[id])
	for i := b.start; i < wi; i++ {
		vstep(st, r.ins[i], r.wordAddr(i), a.img)
	}
	v := st[c.Reg]
	imm := vConst(c.Imm)
	switch c.Kind {
	case CondEQ:
		return cmpEQ(v, imm)
	case CondNE:
		eq, p := cmpEQ(v, imm)
		return !eq, p
	case CondLTU:
		return cmpLTU(v, imm)
	case CondGEU:
		lt, p := cmpLTU(v, imm)
		return !lt, p
	}
	return false, false
}

// IPStats returns the interprocedural tier's summary counters. The
// zero value is returned for intraprocedural analyses.
func (a *Analysis) IPStats() IPStats {
	if a.vals == nil {
		return IPStats{}
	}
	s := a.vals.stats
	if a.ip != nil {
		s.Functions = len(a.ip.fns)
	}
	return s
}

// classifyWild scans the blocks reachable from the entry (over all
// edge kinds in the final graph) for control the analysis cannot
// account for: an unresolved indirect transfer that is not a return,
// a run cut short without a terminator, or a syscall whose number is
// unknown or provably a spawn (children start at an arbitrary entry
// with a copy of the register file, outside any per-block state). A
// wild program keeps its liveness and CFG results but forfeits
// value-based folding.
func (a *Analysis) classifyWild() bool {
	entryID := a.entryBlockID()
	if entryID < 0 {
		return true
	}
	seen := make([]bool, len(a.blocks))
	stack := []int{entryID}
	seen[entryID] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := a.blocks[id]
		if b.conservative && !a.isReturnBlock(b) {
			return true
		}
		if a.regions[b.ri].ins[b.end-1].Op == isa.OpSYSCALL {
			s := a.blockR1(b)
			if !s.known || s.val == kernel.SysSpawn {
				return true
			}
		}
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
