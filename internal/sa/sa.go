// Package sa is the guest-code static analysis subsystem: a one-shot
// pass over a linked SVR32 program image that runs at load time, before
// the first instruction executes.
//
// It provides, in load order:
//
//   - whole-program CFG recovery from the decoded image: basic-block
//     discovery from the entry point and the symbol table, direct
//     branch/jal edge resolution, reachability, and a dominator tree
//     over the entry-reachable subgraph (cfg.go, dom.go);
//   - backward register-liveness and stack-depth dataflow per block,
//     exposed through a compact per-address query API (live.go);
//   - a guest-binary verifier that rejects malformed images and warns
//     on suspicious ones (verify.go).
//
// The Pin engine (internal/pin) consumes the results in two ways: the
// per-instruction liveness masks let it skip dead registers in the
// save/restore sequence modeled around inlined if/then analysis calls,
// and the per-region predecoded instruction arrays let superblock run
// marking slice a load-time predecode instead of rebuilding one per
// compile. Both are host-side optimizations: virtual-cycle results are
// byte-identical with the analysis attached or not (the -nosa escape
// hatch, proven by `spbench -exp sadiff`).
package sa

import (
	"fmt"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
)

// AllRegs is the liveness mask meaning "every register live" — the
// conservative answer returned for addresses the analysis knows nothing
// about.
const AllRegs = ^uint32(0)

// Severity classifies a verifier finding.
type Severity uint8

// Severities.
const (
	SevWarn  Severity = iota // suspicious but runnable
	SevError                 // the image is malformed; loading should fail
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Code identifies a verifier rule.
type Code uint8

// Verifier rule codes.
const (
	// CodeUndecodable: a reachable word is not a valid SVR32 encoding.
	CodeUndecodable Code = iota
	// CodeBadTarget: a direct branch or jal targets an address outside
	// the decodable image.
	CodeBadTarget
	// CodeMisaligned: the entry point or a control target is not word
	// aligned.
	CodeMisaligned
	// CodeFallOff: control flow runs off the end of the image.
	CodeFallOff
	// CodeTruncated: control flow reaches trailing bytes that do not
	// form a whole instruction word (a truncated image).
	CodeTruncated
	// CodeStackImbalance: a loop accumulates net stack depth (a back
	// edge arrives at its header with a different stack depth than the
	// header's established one).
	CodeStackImbalance
	// CodeUninitRead: a register is read somewhere in reachable code
	// but written nowhere in the program.
	CodeUninitRead
	// CodeSMCStore: a store's target is statically provable and lies
	// inside the code image (self-modifying code; the engine supports
	// it, so this is flagged, not rejected).
	CodeSMCStore
	// CodeUnreachable: bytes in the image are neither reachable code
	// nor valid encodings (one summary finding per image).
	CodeUnreachable
	// CodeUnreachableFn: a symbol labels a function-shaped body (it
	// contains a return) that no resolved call edge ever reaches and
	// that is unreachable from the entry. Interprocedural tier only.
	CodeUnreachableFn
	// CodeIndirectData: an indirect transfer's target set is statically
	// provable and includes an address that is not a discovered block
	// leader (a jump or call into data). Interprocedural tier only.
	CodeIndirectData
	// CodeCallImbalance: a function provably returns with a nonzero net
	// stack-pointer delta relative to its entry. Interprocedural tier
	// only.
	CodeCallImbalance
)

var codeNames = [...]string{
	CodeUndecodable:    "undecodable",
	CodeBadTarget:      "bad-target",
	CodeMisaligned:     "misaligned",
	CodeFallOff:        "fall-off",
	CodeTruncated:      "truncated",
	CodeStackImbalance: "stack-imbalance",
	CodeUninitRead:     "uninit-read",
	CodeSMCStore:       "smc-store",
	CodeUnreachable:    "unreachable",
	CodeUnreachableFn:  "unreachable-fn",
	CodeIndirectData:   "indirect-data",
	CodeCallImbalance:  "call-imbalance",
}

func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// Diag is one verifier finding.
type Diag struct {
	Sev  Severity
	Code Code
	// Addr is the guest address the finding is anchored to (the
	// offending instruction, or 0 for whole-image findings).
	Addr uint32
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s at %#08x: %s", d.Sev, d.Code, d.Addr, d.Msg)
}

// reach levels: a word can be discovered from the entry point (full
// diagnostics) or only from the symbol table (no diagnostics — symbols
// may label data that happens to decode).
const (
	reachNone  uint8 = 0
	reachSym   uint8 = 1
	reachEntry uint8 = 2
)

// region is the word-aligned decodable span of one image segment.
type region struct {
	addr uint32 // word-aligned start
	ins  []isa.Inst
	ok   []bool // ok[i]: word i decodes
	// pre is the shared predecode of the region for the engine's
	// superblock fast path: pre[i] = {ins[i], addr+4(i+1)}. Built once
	// at load time and never written afterwards, so engines (including
	// concurrently running SuperPin slices) may slice it freely.
	pre []cpu.BlockIns
	// liveIn/liveOut are per-word liveness masks (bit r = register r
	// live); 0 means "not analyzed" and reads back as AllRegs.
	liveIn, liveOut []uint32
	reach           []uint8
	leader          []bool
	blockOf         []int32
	tail            int // trailing bytes that do not form a word
}

func (r *region) words() int            { return len(r.ins) }
func (r *region) wordAddr(i int) uint32 { return r.addr + uint32(i)*isa.WordSize }

// block is one recovered basic block.
type block struct {
	ri         int // region index
	start, end int // word range [start, end) within the region
	entryReach bool

	// succs are resolved successor block ids, aligned with kinds.
	// conservative marks blocks whose successor set is not fully known
	// (indirect jumps, calls, faults) — liveness treats their live-out
	// as AllRegs.
	succs        []int
	kinds        []edgeKind
	conservative bool
}

// edgeKind classifies a CFG edge for the stack-depth dataflow.
type edgeKind uint8

const (
	edgeFlow edgeKind = iota // branch taken/fall-through: depth propagates
	edgeCall                 // call to a callee entry: depth restarts at 0
	edgeRet                  // call fall-through: depth propagates (calls assumed balanced)
)

// Analysis is the result of analyzing one program image. It is immutable
// after Analyze returns and safe for concurrent readers.
type Analysis struct {
	prog    *asm.Program
	regions []*region
	blocks  []*block
	diags   []Diag

	entryBlock int   // block id of the entry block, -1 if none
	idom       []int // per block id; -1 = no immediate dominator / not entry-reachable
	rpo        []int // entry-reachable block ids in reverse postorder

	// Interprocedural tier (nil for AnalyzeIntra): value states for
	// predicate folding, the image word view they replay against, and
	// the call-graph summaries behind cross-call liveness.
	vals *valueInfo
	img  *imageWords
	ip   *ipInfo
}

// Analyze runs the full static-analysis pass over p: CFG recovery, the
// interprocedural value/call-graph tier (indirect-target resolution,
// cross-call liveness, predicate-fold proofs), dominators, liveness,
// stack-depth dataflow, and the verifier. It never fails; malformed
// images are reported through the diagnostics (Errors/Warnings), and
// queries about unanalyzable addresses return conservative answers.
func Analyze(p *asm.Program) *Analysis { return analyze(p, true) }

// AnalyzeIntra runs the intraprocedural pass only — the exact PR 5
// pipeline, with calls treated as opaque and no value analysis. It is
// the reference point the `spbench -exp ipdiff` differential holds the
// interprocedural tier against (the -saintra mode).
func AnalyzeIntra(p *asm.Program) *Analysis { return analyze(p, false) }

func analyze(p *asm.Program, interproc bool) *Analysis {
	a := &Analysis{prog: p, entryBlock: -1}
	if p == nil {
		a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeBadTarget, Msg: "nil program"})
		return a
	}
	a.buildRegions()
	a.discover()
	a.buildBlocks()
	if interproc {
		// Patch provable indirect edges into the CFG before dominators
		// and liveness run, so both see the resolved graph.
		a.resolveValues()
	}
	a.computeDominators()
	if interproc {
		a.ip = a.buildInterproc()
		if a.vals != nil {
			a.vals.ok = a.vals.ok && !a.ip.wild
			a.vals.stats.ValuesOK = a.vals.ok
		}
		a.computeLiveness(a.ip)
	} else {
		a.computeLiveness(nil)
	}
	a.verify()
	if interproc {
		a.verifyInterproc()
	}
	return a
}

// Diags returns all findings, errors first, in discovery order within
// each severity.
func (a *Analysis) Diags() []Diag {
	out := make([]Diag, 0, len(a.diags))
	out = append(out, a.Errors()...)
	out = append(out, a.Warnings()...)
	return out
}

// Errors returns the findings that make the image unloadable.
func (a *Analysis) Errors() []Diag { return a.filter(SevError) }

// Warnings returns the non-fatal findings.
func (a *Analysis) Warnings() []Diag { return a.filter(SevWarn) }

func (a *Analysis) filter(sev Severity) []Diag {
	var out []Diag
	for _, d := range a.diags {
		if d.Sev == sev {
			out = append(out, d)
		}
	}
	return out
}

// Err returns nil when the image verified clean of errors, or an error
// summarizing the fatal findings (warnings never fail verification).
func (a *Analysis) Err() error {
	errs := a.Errors()
	if len(errs) == 0 {
		return nil
	}
	msg := errs[0].String()
	if len(errs) > 1 {
		msg = fmt.Sprintf("%s (and %d more)", msg, len(errs)-1)
	}
	return fmt.Errorf("sa: verifier rejected the image: %s", msg)
}

// locate maps a guest address to its region and word index. ok is false
// for addresses outside the image or off the word grid.
func (a *Analysis) locate(addr uint32) (ri, wi int, ok bool) {
	if addr%isa.WordSize != 0 {
		return 0, 0, false
	}
	lo, hi := 0, len(a.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := a.regions[mid]
		if addr < r.addr {
			hi = mid
		} else if addr >= r.addr+uint32(r.words())*isa.WordSize {
			lo = mid + 1
		} else {
			return mid, int(addr-r.addr) / isa.WordSize, true
		}
	}
	return 0, 0, false
}

// LiveIn returns the mask of registers statically live immediately
// before the instruction at addr executes (bit r set = register r's
// value may still be read). Addresses the analysis has no code for
// return AllRegs, the conservative answer.
func (a *Analysis) LiveIn(addr uint32) uint32 {
	if ri, wi, ok := a.locate(addr); ok {
		if m := a.regions[ri].liveIn[wi]; m != 0 {
			return m
		}
	}
	return AllRegs
}

// LiveOut is LiveIn's counterpart for the point immediately after the
// instruction at addr retires.
func (a *Analysis) LiveOut(addr uint32) uint32 {
	if ri, wi, ok := a.locate(addr); ok {
		if m := a.regions[ri].liveOut[wi]; m != 0 {
			return m
		}
	}
	return AllRegs
}

// Summary returns the per-trace liveness summary for the n instructions
// starting at addr: the live-in mask at the trace head and the union of
// the live-out masks at its instructions (every register the trace may
// leave meaningful). ok is false when any instruction is unanalyzed, in
// which case both masks are AllRegs.
func (a *Analysis) Summary(addr uint32, n int) (liveIn, liveOut uint32, ok bool) {
	ri, wi, found := a.locate(addr)
	if !found || wi+n > a.regions[ri].words() {
		return AllRegs, AllRegs, false
	}
	r := a.regions[ri]
	liveIn = r.liveIn[wi]
	if liveIn == 0 {
		return AllRegs, AllRegs, false
	}
	for i := wi; i < wi+n; i++ {
		m := r.liveOut[i]
		if m == 0 {
			return AllRegs, AllRegs, false
		}
		liveOut |= m
	}
	return liveIn, liveOut, true
}

// Predecoded returns the image's shared predecoded instruction run
// starting at addr and extending to the end of addr's region. The slice
// is built once at load time and never mutated, so callers may retain
// and re-slice it from any goroutine; entries whose word did not decode
// hold the zero instruction. ok is false when addr is not a word inside
// the image.
func (a *Analysis) Predecoded(addr uint32) (run []cpu.BlockIns, ok bool) {
	ri, wi, found := a.locate(addr)
	if !found {
		return nil, false
	}
	return a.regions[ri].pre[wi:], true
}

// Reachable reports whether addr holds an instruction reachable from the
// program entry point along direct control-flow edges.
func (a *Analysis) Reachable(addr uint32) bool {
	ri, wi, ok := a.locate(addr)
	return ok && a.regions[ri].reach[wi] == reachEntry
}

// BlockLeader returns the address of the first instruction of the
// recovered basic block containing addr. ok is false when addr is not
// inside discovered code.
func (a *Analysis) BlockLeader(addr uint32) (leader uint32, ok bool) {
	b := a.blockAt(addr)
	if b == nil {
		return 0, false
	}
	return a.regions[b.ri].wordAddr(b.start), true
}

// Succs returns the addresses of the resolved successor blocks of the
// block whose leader is addr (direct edges only; indirect successors are
// not represented).
func (a *Analysis) Succs(addr uint32) []uint32 {
	b := a.blockAt(addr)
	if b == nil {
		return nil
	}
	out := make([]uint32, 0, len(b.succs))
	for _, id := range b.succs {
		s := a.blocks[id]
		out = append(out, a.regions[s.ri].wordAddr(s.start))
	}
	return out
}

// NumBlocks returns the number of recovered basic blocks.
func (a *Analysis) NumBlocks() int { return len(a.blocks) }

func (a *Analysis) blockAt(addr uint32) *block {
	ri, wi, ok := a.locate(addr)
	if !ok {
		return nil
	}
	id := a.regions[ri].blockOf[wi]
	if id < 0 {
		return nil
	}
	return a.blocks[id]
}
