// Serialization of Analysis results for the on-disk artifact cache
// (internal/artifact).
//
// Only the expensive derived tables are stored: per-word liveness,
// reachability, leaders and block membership, the recovered block graph,
// dominators and the verifier diagnostics. The per-region instruction
// arrays (ins/ok/pre) are cheap pure functions of the image bytes, so
// Decode rebuilds them with buildRegions and validates the stored tables
// against the resulting shape — a payload that disagrees structurally
// with the image it claims to describe is rejected, and the caller falls
// back to a fresh Analyze.
package sa

import (
	"encoding/binary"
	"fmt"

	"superpin/internal/asm"
	"superpin/internal/isa"
)

// serEnc is a minimal little-endian byte writer.
type serEnc struct{ b []byte }

func (e *serEnc) u8(v uint8) { e.b = append(e.b, v) }
func (e *serEnc) u32(v uint32) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	e.b = append(e.b, w[:]...)
}
func (e *serEnc) i32(v int32) { e.u32(uint32(v)) }
func (e *serEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// serDec is the matching reader; the first failure sticks.
type serDec struct {
	b   []byte
	err error
}

func (d *serDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sa: decode: "+format, args...)
	}
}

func (d *serDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("truncated payload")
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *serDec) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *serDec) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *serDec) i32() int32 { return int32(d.u32()) }

func (d *serDec) str() string {
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(d.b)) {
		d.fail("truncated string")
		return ""
	}
	return string(d.take(int(n)))
}

// Serialization format versioning. Version 1 payloads (PR 5 through
// PR 9) had no header at all; the magic makes them fail decoding
// deterministically, and the artifact store falls back to a fresh
// Analyze — old cache entries go cold on a version bump, they never
// load wrong.
const (
	serMagic   = uint32(0x53415053) // "SPAS"
	serVersion = uint32(2)          // v2: interprocedural tier (patched CFG + value states)
)

// Encode serializes the analysis's derived tables. The result is only
// meaningful together with the exact program image the analysis was
// built from; the artifact store guarantees that pairing by keying the
// payload with the image content hash.
func (a *Analysis) Encode() []byte {
	e := &serEnc{}
	e.u32(serMagic)
	e.u32(serVersion)
	e.u32(uint32(len(a.regions)))
	for _, r := range a.regions {
		e.u32(r.addr)
		e.u32(uint32(r.words()))
		for _, v := range r.liveIn {
			e.u32(v)
		}
		for _, v := range r.liveOut {
			e.u32(v)
		}
		for _, v := range r.reach {
			e.u8(v)
		}
		for _, v := range r.leader {
			e.u8(boolByte(v))
		}
		for _, v := range r.blockOf {
			e.i32(v)
		}
	}
	e.u32(uint32(len(a.blocks)))
	for _, b := range a.blocks {
		e.u32(uint32(b.ri))
		e.u32(uint32(b.start))
		e.u32(uint32(b.end))
		e.u8(boolByte(b.entryReach))
		e.u8(boolByte(b.conservative))
		e.u32(uint32(len(b.succs)))
		for i, s := range b.succs {
			e.u32(uint32(s))
			e.u8(uint8(b.kinds[i]))
		}
	}
	e.i32(int32(a.entryBlock))
	for _, v := range a.idom {
		e.i32(int32(v))
	}
	e.u32(uint32(len(a.rpo)))
	for _, v := range a.rpo {
		e.u32(uint32(v))
	}
	e.u32(uint32(len(a.diags)))
	for _, dg := range a.diags {
		e.u8(uint8(dg.Sev))
		e.u8(uint8(dg.Code))
		e.u32(dg.Addr)
		e.str(dg.Msg)
	}
	a.encodeValues(e)
	return e.b
}

// encodeValues appends the interprocedural value tier: the summary
// counters and, when the states are fold-grade, each reached block's
// entry intervals. Exact value sets are not stored — ProveCond's
// comparisons are interval/trailing-zeros decidable, and load
// enumeration re-derives sets from the image on replay.
func (a *Analysis) encodeValues(e *serEnc) {
	if a.vals == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u8(boolByte(a.vals.ok))
	s := a.vals.stats
	e.u32(uint32(a.IPStats().Functions))
	e.u32(uint32(s.ResolvedIndirect))
	e.u32(uint32(s.UnresolvedIndirect))
	e.u32(uint32(s.ReachedBlocks))
	if !a.vals.ok {
		return // states are never consulted when not fold-grade
	}
	for id := range a.blocks {
		if !a.vals.reached[id] {
			e.u8(0)
			continue
		}
		e.u8(1)
		st := a.vals.entry[id]
		var mask uint32
		for r := 1; r < len(st); r++ {
			if !st[r].isTop() {
				mask |= 1 << uint(r)
			}
		}
		e.u32(mask)
		for r := 1; r < len(st); r++ {
			if mask&(1<<uint(r)) == 0 {
				continue
			}
			e.u32(st[r].lo)
			e.u32(st[r].hi)
			e.u8(st[r].tz)
		}
	}
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// Decode rebuilds an Analysis for p from Encode output. The region
// structure is recomputed from the image (so instruction arrays can
// never disagree with the bytes) and every stored index is bounds
// checked; any structural mismatch returns an error and the caller
// should fall back to Analyze.
func Decode(data []byte, p *asm.Program) (*Analysis, error) {
	if p == nil {
		return nil, fmt.Errorf("sa: decode: nil program")
	}
	a := &Analysis{prog: p, entryBlock: -1}
	a.buildRegions()
	d := &serDec{b: data}

	if m := d.u32(); d.err == nil && m != serMagic {
		d.fail("bad magic %#x (stale pre-v2 payload?)", m)
	}
	if v := d.u32(); d.err == nil && v != serVersion {
		d.fail("format version %d, want %d", v, serVersion)
	}
	if n := d.u32(); d.err == nil && int(n) != len(a.regions) {
		d.fail("region count %d does not match image (%d)", n, len(a.regions))
	}
	for _, r := range a.regions {
		if d.err != nil {
			break
		}
		if addr := d.u32(); d.err == nil && addr != r.addr {
			d.fail("region addr %#x does not match image (%#x)", addr, r.addr)
		}
		if w := d.u32(); d.err == nil && int(w) != r.words() {
			d.fail("region word count %d does not match image (%d)", w, r.words())
		}
		for i := range r.liveIn {
			r.liveIn[i] = d.u32()
		}
		for i := range r.liveOut {
			r.liveOut[i] = d.u32()
		}
		for i := range r.reach {
			if v := d.u8(); v <= reachEntry {
				r.reach[i] = v
			} else {
				d.fail("bad reach level %d", v)
			}
		}
		for i := range r.leader {
			r.leader[i] = d.u8() != 0
		}
		for i := range r.blockOf {
			r.blockOf[i] = d.i32()
		}
	}

	nblocks := int(d.u32())
	if d.err == nil && uint64(nblocks)*11 > uint64(len(d.b)) {
		d.fail("block count %d exceeds payload", nblocks)
	}
	if d.err == nil {
		a.blocks = make([]*block, 0, nblocks)
		for i := 0; i < nblocks && d.err == nil; i++ {
			b := &block{
				ri:    int(d.u32()),
				start: int(d.u32()),
				end:   int(d.u32()),
			}
			b.entryReach = d.u8() != 0
			b.conservative = d.u8() != 0
			if d.err != nil {
				break
			}
			if b.ri >= len(a.regions) || b.start < 0 || b.end < b.start ||
				b.end > a.regions[b.ri].words() {
				d.fail("block %d out of image bounds", i)
				break
			}
			nsucc := int(d.u32())
			if d.err == nil && uint64(nsucc)*5 > uint64(len(d.b)) {
				d.fail("successor count %d exceeds payload", nsucc)
			}
			for j := 0; j < nsucc && d.err == nil; j++ {
				s := int(d.u32())
				k := d.u8()
				if s >= nblocks || edgeKind(k) > edgeRet {
					d.fail("block %d has bad successor %d/kind %d", i, s, k)
					break
				}
				b.succs = append(b.succs, s)
				b.kinds = append(b.kinds, edgeKind(k))
			}
			a.blocks = append(a.blocks, b)
		}
	}
	// blockOf values index a.blocks; validate now that the count is known.
	for _, r := range a.regions {
		if d.err != nil {
			break
		}
		for _, id := range r.blockOf {
			if int(id) >= nblocks {
				d.fail("word block id %d out of range", id)
				break
			}
		}
	}

	a.entryBlock = int(d.i32())
	if d.err == nil && (a.entryBlock < -1 || a.entryBlock >= nblocks) {
		d.fail("entry block %d out of range", a.entryBlock)
	}
	a.idom = make([]int, nblocks)
	for i := range a.idom {
		v := int(d.i32())
		if d.err == nil && (v < -1 || v >= nblocks) {
			d.fail("idom %d out of range", v)
		}
		a.idom[i] = v
	}
	if nrpo := int(d.u32()); d.err == nil {
		if nrpo > nblocks {
			d.fail("rpo count %d exceeds blocks", nrpo)
		}
		for i := 0; i < nrpo && d.err == nil; i++ {
			v := int(d.u32())
			if v >= nblocks {
				d.fail("rpo block %d out of range", v)
				break
			}
			a.rpo = append(a.rpo, v)
		}
	}
	if ndiags := int(d.u32()); d.err == nil {
		if uint64(ndiags)*10 > uint64(len(d.b)) {
			d.fail("diag count %d exceeds payload", ndiags)
		}
		for i := 0; i < ndiags && d.err == nil; i++ {
			dg := Diag{
				Sev:  Severity(d.u8()),
				Code: Code(d.u8()),
				Addr: d.u32(),
				Msg:  d.str(),
			}
			if d.err == nil && (dg.Sev > SevError || int(dg.Code) >= len(codeNames)) {
				d.fail("bad diag sev/code %d/%d", dg.Sev, dg.Code)
				break
			}
			a.diags = append(a.diags, dg)
		}
	}
	a.decodeValues(d, nblocks)
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes", len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	return a, nil
}

// decodeValues restores the value tier written by encodeValues. Exact
// sets were not stored, so decoded states are interval/tz hulls of the
// originals — sound for ProveCond, which only weakens toward "not
// provable". The image word table is rebuilt so load enumeration works
// on replay.
func (a *Analysis) decodeValues(d *serDec, nblocks int) {
	if d.u8() == 0 || d.err != nil {
		return
	}
	vi := &valueInfo{
		reached: make([]bool, nblocks),
		entry:   make([][]vval, nblocks),
	}
	vi.ok = d.u8() != 0
	vi.stats.Functions = int(d.u32())
	vi.stats.ResolvedIndirect = int(d.u32())
	vi.stats.UnresolvedIndirect = int(d.u32())
	vi.stats.ReachedBlocks = int(d.u32())
	vi.stats.ValuesOK = vi.ok
	if d.err != nil {
		return
	}
	if vi.ok {
		for id := 0; id < nblocks && d.err == nil; id++ {
			if d.u8() == 0 {
				continue
			}
			vi.reached[id] = true
			st := make([]vval, isa.NumRegs)
			for r := range st {
				st[r] = vTop()
			}
			st[0] = vConst(0)
			mask := d.u32()
			if d.err == nil && mask&1 != 0 {
				d.fail("block %d value mask claims r0", id)
			}
			for r := 1; r < isa.NumRegs && d.err == nil; r++ {
				if mask&(1<<uint(r)) == 0 {
					continue
				}
				lo, hi, tz := d.u32(), d.u32(), d.u8()
				if d.err != nil {
					break
				}
				if lo > hi || tz > 31 {
					d.fail("block %d r%d has bad interval [%#x,%#x] tz %d", id, r, lo, hi, tz)
					break
				}
				st[r] = vval{lo: lo, hi: hi, tz: tz}
			}
			vi.entry[id] = st
		}
	}
	if d.err != nil {
		return
	}
	a.vals = vi
	a.img = a.newImageWords()
}
