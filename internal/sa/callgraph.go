// Call-graph recovery and per-function register summaries for the
// interprocedural liveness tier (DESIGN §11).
//
// Functions are discovered structurally: the program entry, every
// resolved call-edge target (direct jal calls plus jalr calls patched
// by the value analysis), and every symbol that labels a discovered
// block leader. A function's body is the closure of its entry over
// flow and call-continuation edges — call edges leave the function, so
// a callee's blocks are not its caller's (though bodies may share
// blocks when code is reached both ways).
//
// Two summaries are computed as fixpoints over the strongly connected
// components of the call graph, callees first:
//
//   - mayDef[f]: registers f may modify, transitively through callees.
//     A least fixpoint from the empty set; any statically unknown
//     control inside the body (an unresolved call, a cut run) degrades
//     it to all registers.
//   - mustKill[f]: registers f certainly overwrites on every path from
//     entry to any of its returns, again through callees. A greatest
//     fixpoint from the full set (sound for mutual recursion: the
//     intersection only descends), with a forward must-dataflow inside
//     each body.
//
// Interprocedural liveness consumes both: at a resolved call site the
// registers live across the call are the callee's entry liveness plus
// the continuation's liveness minus what every callee certainly kills;
// at a return block, the union of the continuation liveness of every
// resolved call site of the owning functions.
package sa

import (
	"sort"
)

// callInfo caches a resolved call block's shape for the liveness
// transfer.
type callInfo struct {
	callees []int  // callee function entry block ids
	ret     int    // continuation block id, -1 when off-image
	kill    uint32 // ∩ mustKill over callees
}

// ipInfo is the interprocedural summary attached to a full Analysis.
type ipInfo struct {
	fns      []int            // function entry block ids, sorted
	body     map[int][]int    // fn → body block ids (sorted)
	owners   [][]int          // block id → owning fn entries (sorted)
	mayDef   map[int]uint32   // fn → may-modify mask (r0 stripped)
	mustKill map[int]uint32   // fn → certain-kill mask (r0 stripped)
	wildFn   map[int]bool     // fn body contains statically unknown control
	callAt   map[int]callInfo // resolved call block id → shape
	retSites map[int][]int    // fn → continuation block ids of its call sites
	retBlks  map[int][]int    // fn → canonical return blocks in its body
	wild     bool             // whole-program wildness (classifyWild)
}

// blockDefs returns the union of registers written anywhere in the
// block, r0 stripped.
func (a *Analysis) blockDefs(b *block) uint32 {
	r := a.regions[b.ri]
	var def uint32
	for i := b.start; i < b.end; i++ {
		_, d := useDef(r.ins[i])
		def |= d
	}
	return def &^ 1
}

// buildInterproc recovers the call graph over the current (possibly
// patched) CFG and computes the function summaries.
func (a *Analysis) buildInterproc() *ipInfo {
	ip := &ipInfo{
		body:     make(map[int][]int),
		owners:   make([][]int, len(a.blocks)),
		mayDef:   make(map[int]uint32),
		mustKill: make(map[int]uint32),
		wildFn:   make(map[int]bool),
		callAt:   make(map[int]callInfo),
		retSites: make(map[int][]int),
		retBlks:  make(map[int][]int),
	}

	// Function entries: program entry, call-edge targets, symbol-labeled
	// leaders.
	fnSet := make(map[int]bool)
	if e := a.entryBlockID(); e >= 0 {
		fnSet[e] = true
	}
	for _, b := range a.blocks {
		for i, s := range b.succs {
			if b.kinds[i] == edgeCall {
				fnSet[s] = true
			}
		}
	}
	for _, addr := range a.prog.Symbols { //detguard:ok set insertion only
		if sb := a.blockAt(addr); sb != nil {
			if a.regions[sb.ri].wordAddr(sb.start) == addr {
				fnSet[int(a.regions[sb.ri].blockOf[sb.start])] = true
			}
		}
	}
	for f := range fnSet { //detguard:ok sorted below
		ip.fns = append(ip.fns, f)
	}
	sort.Ints(ip.fns)

	// Bodies, per-block call shapes, and the call multigraph.
	callees := make(map[int][]int) // fn → callee fns (with duplicates)
	for _, f := range ip.fns {
		var body []int
		seen := make(map[int]bool)
		stack := []int{f}
		seen[f] = true
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			body = append(body, id)
			b := a.blocks[id]
			if b.conservative && !a.isReturnBlock(b) {
				ip.wildFn[f] = true
			}
			if a.isReturnBlock(b) {
				ip.retBlks[f] = append(ip.retBlks[f], id)
			}
			isCall := false
			for i := range b.succs {
				if b.kinds[i] == edgeCall {
					isCall = true
				}
			}
			if isCall && !b.conservative {
				ci := callInfo{ret: -1}
				for i, s := range b.succs {
					if b.kinds[i] == edgeCall {
						ci.callees = append(ci.callees, s)
						callees[f] = append(callees[f], s)
					} else {
						ci.ret = s
					}
				}
				ip.callAt[id] = ci
			}
			for i, s := range b.succs {
				if b.kinds[i] == edgeCall {
					continue
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		sort.Ints(body)
		ip.body[f] = body
		sort.Ints(ip.retBlks[f])
	}
	for _, f := range ip.fns {
		for _, id := range ip.body[f] {
			ip.owners[id] = append(ip.owners[id], f)
		}
	}
	for _, id := range sortedKeys(ip.callAt) {
		ci := ip.callAt[id]
		if ci.ret < 0 {
			continue
		}
		for _, c := range ci.callees {
			ip.retSites[c] = append(ip.retSites[c], ci.ret)
		}
	}

	// SCCs of the call graph, callees first (Tarjan emission order).
	sccs := tarjanSCC(ip.fns, callees)

	// mayDef: least fixpoint, ascending from empty.
	for _, scc := range sccs {
		for stable := false; !stable; {
			stable = true
			for _, f := range scc {
				md := uint32(0)
				if ip.wildFn[f] {
					md = AllRegs &^ 1
				}
				for _, id := range ip.body[f] {
					md |= a.blockDefs(a.blocks[id])
				}
				for _, c := range callees[f] {
					md |= ip.mayDef[c]
				}
				if md != ip.mayDef[f] {
					ip.mayDef[f] = md
					stable = false
				}
			}
		}
	}

	// mustKill: greatest fixpoint, descending from all registers.
	for _, f := range ip.fns {
		ip.mustKill[f] = AllRegs &^ 1
	}
	for _, scc := range sccs {
		for stable := false; !stable; {
			stable = true
			for _, f := range scc {
				mk := a.fnMustKill(ip, f)
				if mk != ip.mustKill[f] {
					ip.mustKill[f] = mk
					stable = false
				}
			}
		}
	}

	// Call-site kill masks, now that mustKill has settled.
	for _, id := range sortedKeys(ip.callAt) {
		ci := ip.callAt[id]
		ci.kill = AllRegs &^ 1
		for _, c := range ci.callees {
			ci.kill &= ip.mustKill[c]
		}
		ip.callAt[id] = ci
	}

	ip.wild = a.classifyWild()
	return ip
}

// fnMustKill runs the forward certain-kill dataflow over one function
// body using the current mustKill estimates for callees.
func (a *Analysis) fnMustKill(ip *ipInfo, f int) uint32 {
	if ip.wildFn[f] {
		// Statically unknown control inside the body: nothing is
		// certainly overwritten on the way to a return.
		return 0
	}
	const unvisited = ^uint32(0) // ⊤ of the must lattice
	kin := make(map[int]uint32, len(ip.body[f]))
	for _, id := range ip.body[f] {
		kin[id] = unvisited
	}
	kin[f] = 0
	work := []int{f}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		b := a.blocks[id]
		kout := kin[id] | a.blockDefs(b)
		for i, s := range b.succs {
			if b.kinds[i] == edgeCall {
				continue
			}
			cand := kout
			if b.kinds[i] == edgeRet {
				if ci, ok := ip.callAt[id]; ok {
					kill := AllRegs &^ 1
					for _, c := range ci.callees {
						kill &= ip.mustKill[c]
					}
					cand |= kill
				}
				// An unresolved call's continuation gains nothing: the
				// unknown callee may kill no registers at all.
			}
			if old, ok := kin[s]; ok {
				nv := old & cand
				if nv != old {
					kin[s] = nv
					work = append(work, s)
				}
			}
		}
	}
	rets := ip.retBlks[f]
	if len(rets) == 0 {
		// A function that never returns kills everything vacuously.
		return AllRegs &^ 1
	}
	mk := AllRegs &^ 1
	for _, id := range rets {
		if kin[id] == unvisited {
			continue // return block unreachable from the entry inside this body
		}
		mk &= kin[id] | a.blockDefs(a.blocks[id])
	}
	return mk
}

// tarjanSCC returns the strongly connected components of the call
// graph restricted to nodes, in Tarjan emission order (every SCC
// before any SCC that calls into it — callees first). Deterministic:
// nodes are visited in sorted order and edge lists preserve discovery
// order.
func tarjanSCC(nodes []int, edges map[int][]int) [][]int {
	index := make(map[int]int)
	lowlink := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var sccs [][]int
	next := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				lowlink[v] = min(lowlink[v], lowlink[w])
			} else if onStack[w] {
				lowlink[v] = min(lowlink[v], index[w])
			}
		}
		if lowlink[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// calleeMayDefs rebuilds the summaries on the current graph and
// returns the callee-entry → may-define map the SCCP return edges
// consume. Used once per resolution round, before each SCCP sweep.
func (a *Analysis) calleeMayDefs() map[int]uint32 {
	ip := a.buildInterproc()
	out := make(map[int]uint32, len(ip.fns))
	for _, f := range ip.fns {
		if ip.wildFn[f] {
			out[f] = AllRegs
			continue
		}
		out[f] = ip.mayDef[f]
	}
	return out
}

func sortedKeys(m map[int]callInfo) []int {
	out := make([]int, 0, len(m))
	for k := range m { //detguard:ok sorted below
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
