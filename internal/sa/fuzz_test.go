package sa

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
)

// FuzzAnalyze feeds arbitrary assembly sources through the
// assemble→analyze pipeline: whatever assembles must analyze without
// panicking, and the resulting Analysis must uphold its structural
// invariants (diagnostics ordered errors-first, Err consistent with
// Errors, per-instruction masks carrying the r0 marker bit, predecode
// agreeing with a fresh Decode of the image words).
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"",
		"li r1, 1\nsyscall\n",
		"main: add r1, r2, r3\nbeq r1, r2, main\n",
		// stack push/pop pairs around a counted loop
		"li r10, 4\nloop: addi sp, sp, -8\naddi sp, sp, 8\naddi r10, r10, -1\nbne r10, r0, loop\nli r1, 1\nsyscall\n",
		// an imbalanced loop the verifier must reject, not crash on
		"loop: addi sp, sp, -8\nj loop\n",
		// call/ret through a helper, data behind .org
		".entry main\nsq: mul r2, r2, r2\nret\nmain: li r2, 9\ncall sq\nli r1, 1\nsyscall\n.org 0x2000\nd: .word 7\n",
		// self-modifying store onto a labelled instruction
		".entry main\nmain: la r5, main\nsw r6, (r5)\nli r1, 1\nsyscall\n",
		// indirect dispatch: the JALR target is statically unknown
		"main: la r5, k\njalr r31, r5, 0\nli r1, 1\nsyscall\nk: ret\n",
		// raw garbage words mixed into the image
		"main: j over\n.word 0xffffffff, 0xdeadbeef\nover: li r1, 1\nsyscall\n",
		// spawn-shaped syscall (r1 not a provable exit)
		"main: li r1, 11\nla r2, main\nsyscall\nli r1, 1\nsyscall\n",
		// direct recursion: f calls itself behind a counter
		".entry main\nf: addi r10, r10, -1\nbeq r10, r0, out\ncall f\nout: ret\nmain: li r10, 3\ncall f\nli r1, 1\nsyscall\n",
		// mutual recursion: even/odd bouncing through two functions
		".entry main\neven: beq r10, r0, yes\naddi r10, r10, -1\ncall odd\nret\nyes: li r11, 1\nret\nodd: beq r10, r0, no\naddi r10, r10, -1\ncall even\nret\nno: li r11, 0\nret\nmain: li r10, 6\ncall even\nli r1, 1\nsyscall\n",
		// jalr dispatch through a constant table (the resolvable shape)
		".entry main\nmain: la r4, tab\nlw r5, (r4)\njalr r31, r5, 0\nli r1, 1\nsyscall\n.org 0x2000\nk0: ret\n.org 0x3000\ntab: .word 0x2000\n",
		// function-shaped body nothing calls (unreachable-fn shape)
		".entry main\ndead: addi r3, r0, 7\nret\nmain: li r1, 1\nsyscall\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble(src)
		if err != nil {
			return
		}
		a := Analyze(p)

		diags := a.Diags()
		seenWarn := false
		for _, d := range diags {
			if d.Sev == SevWarn {
				seenWarn = true
			} else if seenWarn {
				t.Fatalf("Diags not ordered errors-first: %v", diags)
			}
		}
		if (a.Err() != nil) != (len(a.Errors()) > 0) {
			t.Fatalf("Err() = %v inconsistent with %d error diags", a.Err(), len(a.Errors()))
		}

		// Round-trip every image word: the shared predecode must agree
		// with a fresh decode, and analyzed masks must carry bit 0.
		for _, seg := range p.Segments {
			start := (seg.Addr + 3) &^ 3
			for addr := start; addr+isa.WordSize <= seg.Addr+uint32(len(seg.Data)); addr += isa.WordSize {
				off := addr - seg.Addr
				w := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
					uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
				run, ok := a.Predecoded(addr)
				if !ok || len(run) == 0 {
					t.Fatalf("Predecoded(%#x) missing for an image word", addr)
				}
				if in, err := isa.Decode(w); err == nil && run[0].Inst != in {
					t.Fatalf("predecode mismatch at %#x: %v != %v", addr, run[0].Inst, in)
				}
				if in := a.LiveIn(addr); in&1 == 0 {
					t.Fatalf("LiveIn(%#x) = %#x missing the r0 marker bit", addr, in)
				}
				if out := a.LiveOut(addr); out&1 == 0 {
					t.Fatalf("LiveOut(%#x) = %#x missing the r0 marker bit", addr, out)
				}
				if leader, ok := a.BlockLeader(addr); ok && !func() bool {
					_, _, found := a.locate(leader)
					return found
				}() {
					t.Fatalf("BlockLeader(%#x) = %#x outside the image", addr, leader)
				}
			}
		}
	})
}
