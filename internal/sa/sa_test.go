package sa

import (
	"sort"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
)

// diamond builds the canonical if/else/join shape:
//
//	0x1000  addi r10, r0, 5
//	0x1004  beq  r10, r0, else
//	0x1008  addi r11, r0, 1    (then)
//	0x100c  j    join
//	0x1010  addi r11, r0, 2    (else; falls through to join)
//	0x1014  add  r12, r11, r10 (join)
//	0x1018  addi r1, r0, 1
//	0x101c  addi r2, r12, 0
//	0x1020  syscall            (provable exit)
func diamond(t *testing.T) *Analysis {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, 10, isa.RegZero, 5)
	b.Branch(isa.OpBEQ, 10, isa.RegZero, "else")
	b.I(isa.OpADDI, 11, isa.RegZero, 1)
	b.J("join")
	b.Label("else")
	b.I(isa.OpADDI, 11, isa.RegZero, 2)
	b.Label("join")
	b.R(isa.OpADD, 12, 11, 10)
	b.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	b.I(isa.OpADDI, isa.RegArg0, 12, 0)
	b.Syscall()
	a := Analyze(b.MustFinish())
	if err := a.Err(); err != nil {
		t.Fatalf("diamond must verify clean: %v", err)
	}
	return a
}

func TestCFGDiamond(t *testing.T) {
	a := diamond(t)
	if got := a.NumBlocks(); got != 4 {
		t.Fatalf("NumBlocks = %d, want 4", got)
	}
	for _, addr := range []uint32{0x1000, 0x1008, 0x1010, 0x1014, 0x1020} {
		if !a.Reachable(addr) {
			t.Errorf("Reachable(%#x) = false", addr)
		}
	}
	leaders := map[uint32]uint32{
		0x1000: 0x1000, 0x1004: 0x1000, // entry block spans the beq
		0x1008: 0x1008, 0x100c: 0x1008, // then
		0x1010: 0x1010,                 // else
		0x1014: 0x1014, 0x1020: 0x1014, // join through the syscall
	}
	for addr, want := range leaders {
		got, ok := a.BlockLeader(addr)
		if !ok || got != want {
			t.Errorf("BlockLeader(%#x) = %#x,%v, want %#x", addr, got, ok, want)
		}
	}
	succs := func(addr uint32) []uint32 {
		s := a.Succs(addr)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s
	}
	checks := []struct {
		addr uint32
		want []uint32
	}{
		{0x1000, []uint32{0x1008, 0x1010}}, // branch: fall-through and taken
		{0x1008, []uint32{0x1014}},         // jump to join
		{0x1010, []uint32{0x1014}},         // leader-cut fall-through into join
		{0x1014, nil},                      // provable exit: no successors
	}
	for _, c := range checks {
		got := succs(c.addr)
		if len(got) != len(c.want) {
			t.Errorf("Succs(%#x) = %#x, want %#x", c.addr, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Succs(%#x) = %#x, want %#x", c.addr, got, c.want)
				break
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	a := diamond(t)
	for _, c := range []struct {
		addr, idom uint32
	}{
		{0x1008, 0x1000}, // then
		{0x1010, 0x1000}, // else
		{0x1014, 0x1000}, // join: neither arm dominates it
	} {
		got, ok := a.Idom(c.addr)
		if !ok || got != c.idom {
			t.Errorf("Idom(%#x) = %#x,%v, want %#x", c.addr, got, ok, c.idom)
		}
	}
	if _, ok := a.Idom(0x1000); ok {
		t.Error("entry block must have no immediate dominator")
	}
	if !a.Dominates(0x1000, 0x1014) {
		t.Error("entry must dominate the join")
	}
	if a.Dominates(0x1008, 0x1014) || a.Dominates(0x1010, 0x1014) {
		t.Error("neither diamond arm may dominate the join")
	}
	if !a.Dominates(0x1014, 0x1020) {
		t.Error("dominance must be reflexive within a block")
	}
}

func TestLivenessDiamond(t *testing.T) {
	a := diamond(t)
	mask := func(regs ...uint) uint32 {
		m := uint32(1) // stored masks always carry the r0 bit
		for _, r := range regs {
			m |= 1 << r
		}
		return m
	}
	cases := []struct {
		addr uint32
		in   uint32
		what string
	}{
		// join add: r10/r11 feed it; r3..r5 survive to the syscall
		// (argument registers of the proven exit, never redefined).
		{0x1014, mask(3, 4, 5, 10, 11), "join add"},
		// after the exit code is moved into r2 only the syscall's
		// argument registers remain.
		{0x1020, mask(1, 2, 3, 4, 5), "syscall"},
		// then-arm entry: r11 is about to be redefined, r10 still live.
		{0x1008, mask(3, 4, 5, 10), "then arm"},
	}
	for _, c := range cases {
		if got := a.LiveIn(c.addr); got != c.in {
			t.Errorf("LiveIn(%#x) [%s] = %#032b, want %#032b", c.addr, c.what, got, c.in)
		}
	}
	// The proven-exit syscall leaves nothing live (bit 0 aside).
	if got := a.LiveOut(0x1020); got != 1 {
		t.Errorf("LiveOut(syscall) = %#032b, want just the r0 marker bit", got)
	}
	// Bit-0 invariant: every analyzed mask is nonzero and carries r0.
	for addr := uint32(0x1000); addr <= 0x1020; addr += 4 {
		if in := a.LiveIn(addr); in&1 == 0 {
			t.Errorf("LiveIn(%#x) = %#x missing the r0 marker bit", addr, in)
		}
		if out := a.LiveOut(addr); out&1 == 0 {
			t.Errorf("LiveOut(%#x) = %#x missing the r0 marker bit", addr, out)
		}
	}
	// Unknown addresses answer with the conservative everything-mask.
	if got := a.LiveIn(0xdead_0000); got != AllRegs {
		t.Errorf("LiveIn(unknown) = %#x, want AllRegs", got)
	}
}

// TestLivenessCallConservatism: to the intraprocedural tier a block
// ending in a call has statically unknown effects (the callee could run
// arbitrary code), so everything must be live across it. An unprovable
// syscall number likewise keeps the maximal use set (it could be a
// spawn, which snapshots every register).
func TestLivenessCallConservatism(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, 10, isa.RegZero, 5) // 0x1000
	b.Call("fn")                        // 0x1004
	b.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	b.Syscall()
	b.Label("fn")
	b.I(isa.OpADDI, isa.RegSys, 10, 0) // r1 from r10: number not provable
	b.Syscall()                        // could be a spawn
	a := AnalyzeIntra(b.MustFinish())
	if got := a.LiveOut(0x1004); got != AllRegs {
		t.Errorf("LiveOut(call) = %#x, want AllRegs", got)
	}
	fn := a.Addr(t, "fn")
	if got := a.LiveIn(fn + 4); got != AllRegs {
		t.Errorf("LiveIn(unprovable syscall) = %#x, want AllRegs", got)
	}
}

// TestLivenessInterprocNarrows: with the call graph in hand the same
// program proves r1 dead across the call — the callee certainly
// overwrites it before the syscall can observe it — so the full tier's
// mask is strictly narrower than the intraprocedural one, and never
// wider anywhere.
func TestLivenessInterprocNarrows(t *testing.T) {
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, 10, isa.RegZero, 5)
	b.Call("fn")
	b.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	b.Syscall()
	b.Label("fn")
	b.I(isa.OpADDI, isa.RegSys, 10, 0)
	b.Syscall()
	prog := b.MustFinish()
	full := Analyze(prog)
	intra := AnalyzeIntra(prog)
	got := full.LiveOut(0x1004)
	if got == AllRegs {
		t.Errorf("LiveOut(call) = %#x: interprocedural tier did not narrow", got)
	}
	if got&(1<<isa.RegSys) != 0 {
		t.Errorf("LiveOut(call) = %#x: r1 is certainly killed by the callee", got)
	}
	if wide := got &^ intra.LiveOut(0x1004); wide != 0 {
		t.Errorf("full tier widened the mask by %#x", wide)
	}
}

// Addr is a test helper resolving a label through the program symbols.
func (a *Analysis) Addr(t *testing.T, label string) uint32 {
	t.Helper()
	addr, ok := a.prog.Symbols[label]
	if !ok {
		t.Fatalf("no symbol %q", label)
	}
	return addr
}

func TestPredecoded(t *testing.T) {
	a := diamond(t)
	run, ok := a.Predecoded(0x1014)
	if !ok {
		t.Fatal("Predecoded(join) not found")
	}
	if len(run) != 4 { // add, addi, addi, syscall — to the region end
		t.Fatalf("len(run) = %d, want 4", len(run))
	}
	if run[0].Inst.Op != isa.OpADD || run[3].Inst.Op != isa.OpSYSCALL {
		t.Errorf("predecoded run mismatch: %v ... %v", run[0].Inst, run[3].Inst)
	}
	if _, ok := a.Predecoded(0xdead_0000); ok {
		t.Error("Predecoded must reject addresses outside the image")
	}
}

func TestSummary(t *testing.T) {
	a := diamond(t)
	liveIn, liveOut, ok := a.Summary(0x1014, 4)
	if !ok {
		t.Fatal("Summary over the join block must succeed")
	}
	if liveIn != a.LiveIn(0x1014) {
		t.Errorf("Summary liveIn = %#x, want LiveIn(head) = %#x", liveIn, a.LiveIn(0x1014))
	}
	want := a.LiveOut(0x1014) | a.LiveOut(0x1018) | a.LiveOut(0x101c) | a.LiveOut(0x1020)
	if liveOut != want {
		t.Errorf("Summary liveOut = %#x, want union %#x", liveOut, want)
	}
	if _, _, ok := a.Summary(0x1014, 1000); ok {
		t.Error("Summary past the region end must fail")
	}
}
