package sa

import (
	"fmt"
	"math/bits"
	"sort"

	"superpin/internal/isa"
)

// verify runs the post-CFG verifier passes. The traversal diagnostics
// (undecodable/bad-target/misaligned/fall-off/truncated) were emitted
// during discovery; this adds the stack-depth dataflow, the
// never-written-register scan, the provable-self-modifying-store scan,
// and the unreachable-bytes summary.
func (a *Analysis) verify() {
	a.verifyStackDepth()
	a.verifyUninitReads()
	a.verifySMCStores()
	a.verifyUnreachable()
}

// verifyInterproc runs the call-graph-aware checks of the
// interprocedural tier (full Analyze only): functions nothing calls,
// and functions that provably return with a shifted stack pointer.
// (The third interprocedural diagnostic, CodeIndirectData, is emitted
// during indirect-target resolution where the provable-but-bad target
// set is in hand.)
func (a *Analysis) verifyInterproc() {
	if a.ip == nil {
		return
	}
	a.verifyUnreachableFns()
	a.verifyCallBalance()
}

// verifyUnreachableFns warns about symbol-labeled, function-shaped
// bodies (they contain a return) that no resolved call edge targets
// and that the entry cannot reach. Suppressed for wild programs, where
// an unresolved transfer could reach anything.
func (a *Analysis) verifyUnreachableFns() {
	if a.ip.wild || a.entryBlock < 0 {
		return
	}
	// Blocks reachable from the entry over any edge kind.
	reach := make([]bool, len(a.blocks))
	stack := []int{a.entryBlock}
	reach[a.entryBlock] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range a.blocks[id].succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	called := make(map[int]bool)
	for _, b := range a.blocks {
		for i, s := range b.succs {
			if b.kinds[i] == edgeCall {
				called[s] = true
			}
		}
	}
	// Symbol names sorted for deterministic diagnostic order.
	names := make([]string, 0, len(a.prog.Symbols))
	for name := range a.prog.Symbols { //detguard:ok sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		addr := a.prog.Symbols[name]
		sb := a.blockAt(addr)
		if sb == nil || a.regions[sb.ri].wordAddr(sb.start) != addr {
			continue
		}
		id := int(a.regions[sb.ri].blockOf[sb.start])
		if id == a.entryBlock || called[id] || reach[id] {
			continue
		}
		if len(a.ip.retBlks[id]) == 0 {
			continue // not function shaped (data that decodes, a raw loop)
		}
		a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeUnreachableFn, Addr: addr,
			Msg: fmt.Sprintf("function %q is never called and unreachable from the entry", name)})
	}
}

// verifyCallBalance runs the per-function stack-delta dataflow: from
// depth 0 at the function entry, `addi sp, sp, imm` moves the depth,
// any other sp write poisons it, and resolved calls are assumed
// balanced. A canonical return reached with a provably nonzero delta
// means callers resume with a shifted stack.
func (a *Analysis) verifyCallBalance() {
	for _, f := range a.ip.fns {
		if a.ip.wildFn[f] {
			continue
		}
		depth := make(map[int]int32, len(a.ip.body[f]))
		for _, id := range a.ip.body[f] {
			depth[id] = depthUnset
		}
		depth[f] = 0
		work := []int{f}
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			b := a.blocks[id]
			r := a.regions[b.ri]
			out := depth[id]
			for i := b.start; i < b.end; i++ {
				ins := r.ins[i]
				if ins.Op == isa.OpADDI && ins.Rd == isa.RegSP && ins.Rs1 == isa.RegSP {
					if out > depthConflict {
						out -= ins.Imm
					}
				} else if ins.DstReg() == isa.RegSP {
					out = depthConflict
				}
			}
			for i, s := range b.succs {
				if b.kinds[i] == edgeCall {
					continue
				}
				cur, inBody := depth[s]
				if !inBody {
					continue
				}
				switch {
				case cur == depthUnset:
					depth[s] = out
					work = append(work, s)
				case cur == out || cur == depthConflict:
				default:
					depth[s] = depthConflict
					work = append(work, s)
				}
			}
		}
		for _, id := range a.ip.retBlks[f] {
			d, ok := depth[id]
			if !ok || d == depthUnset || d == depthConflict {
				continue
			}
			b := a.blocks[id]
			r := a.regions[b.ri]
			net := d
			for i := b.start; i < b.end; i++ {
				ins := r.ins[i]
				if ins.Op == isa.OpADDI && ins.Rd == isa.RegSP && ins.Rs1 == isa.RegSP {
					if net > depthConflict {
						net -= ins.Imm
					}
				} else if ins.DstReg() == isa.RegSP {
					net = depthConflict
				}
			}
			if net != 0 && net > depthConflict {
				fb := a.blocks[f]
				a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeCallImbalance,
					Addr: r.wordAddr(b.end - 1),
					Msg: fmt.Sprintf("function at %#08x returns with net stack delta %d",
						a.regions[fb.ri].wordAddr(fb.start), net)})
			}
		}
	}
}

// Stack-depth lattice values beyond a known depth.
const (
	depthUnset    = -1 << 30 // block not yet visited
	depthConflict = -1<<30 + 1
)

// verifyStackDepth runs a forward stack-depth dataflow over the
// entry-reachable blocks: the entry starts at depth 0, `addi sp, sp, imm`
// moves the depth, any other write to sp makes it unknown, and calls are
// assumed balanced (a callee entry restarts at 0; the return site
// continues at the caller's depth). Joins that disagree degrade to
// "unknown" silently — except on a back edge (the target dominates the
// source), where a disagreement means the loop body accumulates net
// stack depth on every iteration: a stack-imbalanced loop, reported as
// an error.
func (a *Analysis) verifyStackDepth() {
	if a.entryBlock < 0 {
		return
	}
	in := make([]int32, len(a.blocks))
	for i := range in {
		in[i] = depthUnset
	}
	in[a.entryBlock] = 0
	work := []int{a.entryBlock}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		b := a.blocks[id]
		r := a.regions[b.ri]
		out := in[id]
		for i := b.start; i < b.end; i++ {
			ins := r.ins[i]
			if ins.Op == isa.OpADDI && ins.Rd == isa.RegSP && ins.Rs1 == isa.RegSP {
				if out > depthConflict {
					out -= ins.Imm // pushes are negative immediates
				}
			} else if ins.DstReg() == isa.RegSP {
				out = depthConflict
			}
		}
		for ei, s := range b.succs {
			next := out
			if b.kinds[ei] == edgeCall {
				next = 0 // a callee tracks its own frame
			}
			cur := in[s]
			switch {
			case cur == depthUnset:
				in[s] = next
				work = append(work, s)
			case cur == next || cur == depthConflict:
				// settled
			case next == depthConflict:
				in[s] = depthConflict
				work = append(work, s)
			default:
				// Known-vs-known disagreement. On a back edge this is a
				// loop that shifts sp every iteration; elsewhere it is
				// just an irregular (but finite) join, degraded silently.
				if a.dominates(s, id) {
					sb := a.blocks[s]
					a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeStackImbalance,
						Addr: a.regions[b.ri].wordAddr(b.end - 1),
						Msg: fmt.Sprintf("loop back edge to %#08x carries stack depth %d, header entered at %d",
							a.regions[sb.ri].wordAddr(sb.start), next, cur)})
				}
				in[s] = depthConflict
				work = append(work, s)
			}
		}
	}
}

// verifyUninitReads warns about registers that reachable code reads but
// that nothing in the program ever writes. The loader initializes r0
// (hardwired) and sp, so those are exempt; everything else starts as
// whatever the kernel zeroed it to, which working programs should not
// depend on.
//
// Unlike the liveness dataflow, this pass does not treat SYSCALL as
// reading every register (liveness must, because SysSpawn copies the
// whole file to the child) — that would flag every never-written
// register in any program that exits. Which argument registers a
// syscall reads depends on the syscall number, so only r1 (the number
// itself, always read) counts here.
func (a *Analysis) verifyUninitReads() {
	var read, written uint32
	var firstRead [isa.NumRegs]uint32
	for _, b := range a.blocks {
		if !b.entryReach {
			continue
		}
		r := a.regions[b.ri]
		for i := b.start; i < b.end; i++ {
			u := r.ins[i].SrcRegs() &^ 1
			if r.ins[i].Op == isa.OpSYSCALL {
				u = 1 << isa.RegSys
			}
			for m := u &^ read; m != 0; m &= m - 1 {
				firstRead[bits.TrailingZeros32(m)] = r.wordAddr(i)
			}
			read |= u
			if d := r.ins[i].DstReg(); d > 0 {
				written |= 1 << uint(d)
			}
		}
	}
	written |= 1 | 1<<isa.RegSP
	for m := read &^ written; m != 0; m &= m - 1 {
		reg := bits.TrailingZeros32(m)
		a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeUninitRead, Addr: firstRead[reg],
			Msg: fmt.Sprintf("r%d is read but never written anywhere in the program", reg)})
	}
}

// verifySMCStores flags stores whose target address is statically
// provable (block-local lui/ori/addi constant propagation — the La
// idiom) and lies inside discovered code. The engine executes
// self-modifying code correctly, so this is a warning, not an error.
func (a *Analysis) verifySMCStores() {
	for _, b := range a.blocks {
		if !b.entryReach {
			continue
		}
		r := a.regions[b.ri]
		var known uint32 = 1 // r0 is the constant 0
		var vals [isa.NumRegs]uint32
		for i := b.start; i < b.end; i++ {
			ins := r.ins[i]
			if ins.Op.IsStore() && known&(1<<ins.Rs1) != 0 {
				ea := vals[ins.Rs1] + uint32(ins.Imm)
				if ri, wi, ok := a.locate(ea &^ (isa.WordSize - 1)); ok && a.regions[ri].reach[wi] != reachNone {
					a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeSMCStore,
						Addr: r.wordAddr(i),
						Msg:  fmt.Sprintf("store provably targets code at %#08x (self-modifying code)", ea)})
				}
			}
			d := ins.DstReg()
			if d <= 0 {
				continue
			}
			rd := uint8(d)
			switch {
			case ins.Op == isa.OpLUI:
				vals[rd] = uint32(ins.Imm) << 16
				known |= 1 << rd
			case ins.Op == isa.OpORI && known&(1<<ins.Rs1) != 0:
				vals[rd] = vals[ins.Rs1] | uint32(ins.Imm)
				known |= 1 << rd
			case ins.Op == isa.OpADDI && known&(1<<ins.Rs1) != 0:
				vals[rd] = vals[ins.Rs1] + uint32(ins.Imm)
				known |= 1 << rd
			default:
				known &^= 1 << rd
			}
		}
	}
}

// verifyUnreachable emits one summary warning counting image words that
// are neither discovered code nor valid encodings — likely data, but
// possibly rot; either way nothing the verifier can vouch for.
func (a *Analysis) verifyUnreachable() {
	count := 0
	var first uint32
	for _, r := range a.regions {
		for i := 0; i < r.words(); i++ {
			if r.reach[i] == reachNone && !r.ok[i] {
				if count == 0 {
					first = r.wordAddr(i)
				}
				count++
			}
		}
	}
	if count > 0 {
		a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeUnreachable, Addr: first,
			Msg: fmt.Sprintf("%d unreachable word(s) do not decode (data or rot; first at %#08x)", count, first)})
	}
}
