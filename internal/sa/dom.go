package sa

// computeDominators builds the dominator tree over the entry-reachable
// block subgraph using the Cooper/Harvey/Kennedy iterative algorithm on
// a reverse-postorder numbering. Blocks outside the entry-reachable
// subgraph (symbol-rooted code) have no dominator information.
func (a *Analysis) computeDominators() {
	a.idom = make([]int, len(a.blocks))
	for i := range a.idom {
		a.idom[i] = -1
	}
	if len(a.blocks) == 0 {
		return
	}
	entry := a.blockAt(a.prog.Entry)
	if entry == nil || !entry.entryReach {
		return
	}
	entryID := int(a.regions[entry.ri].blockOf[entry.start])
	a.entryBlock = entryID

	// Depth-first postorder from the entry block.
	state := make([]uint8, len(a.blocks)) // 0 unvisited, 1 on stack, 2 done
	var post []int
	type frame struct{ id, next int }
	stack := []frame{{entryID, 0}}
	state[entryID] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		b := a.blocks[f.id]
		if f.next < len(b.succs) {
			s := b.succs[f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.id] = 2
		post = append(post, f.id)
		stack = stack[:len(stack)-1]
	}
	a.rpo = make([]int, len(post))
	for i, id := range post {
		a.rpo[len(post)-1-i] = id
	}
	rpoNum := make([]int, len(a.blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, id := range a.rpo {
		rpoNum[id] = i
	}
	preds := make([][]int, len(a.blocks))
	for _, id := range a.rpo {
		for _, s := range a.blocks[id].succs {
			if rpoNum[s] >= 0 {
				preds[s] = append(preds[s], id)
			}
		}
	}

	intersect := func(x, y int) int {
		for x != y {
			for rpoNum[x] > rpoNum[y] {
				x = a.idom[x]
			}
			for rpoNum[y] > rpoNum[x] {
				y = a.idom[y]
			}
		}
		return x
	}

	a.idom[entryID] = entryID
	for changed := true; changed; {
		changed = false
		for _, id := range a.rpo {
			if id == entryID {
				continue
			}
			newIdom := -1
			for _, p := range preds[id] {
				if a.idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && a.idom[id] != newIdom {
				a.idom[id] = newIdom
				changed = true
			}
		}
	}
	// The entry block's self-idom was a sentinel for the fixpoint.
	a.idom[entryID] = -1
}

// Idom returns the address of the immediate dominator of the block whose
// leader is addr. ok is false for the entry block and for blocks outside
// the entry-reachable subgraph.
func (a *Analysis) Idom(addr uint32) (idom uint32, ok bool) {
	b := a.blockAt(addr)
	if b == nil {
		return 0, false
	}
	id := int(a.regions[b.ri].blockOf[b.start])
	d := a.idom[id]
	if d < 0 {
		return 0, false
	}
	db := a.blocks[d]
	return a.regions[db.ri].wordAddr(db.start), true
}

// Dominates reports whether the block containing x dominates the block
// containing y (reflexively). Both must be entry-reachable; unknown
// blocks never dominate anything.
func (a *Analysis) Dominates(x, y uint32) bool {
	bx, by := a.blockAt(x), a.blockAt(y)
	if bx == nil || by == nil {
		return false
	}
	xid := int(a.regions[bx.ri].blockOf[bx.start])
	yid := int(a.regions[by.ri].blockOf[by.start])
	return a.dominates(xid, yid)
}

func (a *Analysis) dominates(xid, yid int) bool {
	if xid == a.entryBlock || xid == yid {
		return xid == yid || a.idomKnown(yid)
	}
	for cur := yid; cur >= 0; cur = a.idom[cur] {
		if cur == xid {
			return true
		}
	}
	return false
}

// idomKnown reports whether yid participates in the dominator tree (is
// entry-reachable), so that "entry dominates y" is only claimed for
// blocks actually reachable from the entry.
func (a *Analysis) idomKnown(yid int) bool {
	return yid == a.entryBlock || a.idom[yid] >= 0
}
