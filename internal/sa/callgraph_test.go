package sa

import (
	"reflect"
	"testing"

	"superpin/internal/asm"
)

// TestTarjanSCCHandBuilt checks the SCC decomposition on a hand-built
// cyclic call graph: a three-cycle calling into a two-cycle, plus an
// isolated node. The partition, the callees-first emission order and
// determinism across repeated runs are all pinned.
func TestTarjanSCCHandBuilt(t *testing.T) {
	nodes := []int{1, 2, 3, 4, 5, 6}
	edges := map[int][]int{
		1: {2},
		2: {3},
		3: {1, 4}, // the three-cycle calls into the two-cycle
		4: {5},
		5: {4},
	}
	want := [][]int{{4, 5}, {1, 2, 3}, {6}}
	first := tarjanSCC(nodes, edges)
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("sccs = %v, want %v (callees before callers)", first, want)
	}
	for i := 0; i < 10; i++ {
		if got := tarjanSCC(nodes, edges); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: nondeterministic sccs: %v vs %v", i, got, first)
		}
	}
}

// mutualSrc is a mutually recursive even/odd pair: the call graph's
// only nontrivial SCC.
const mutualSrc = `	.entry main
even:
	beq r10, r0, yes
	addi r10, r10, -1
	call odd
	ret
yes:
	li r11, 1
	ret
odd:
	beq r10, r0, no
	addi r10, r10, -1
	call even
	ret
no:
	li r11, 0
	ret
main:
	li r10, 6
	call even
	li r1, 1
	li r2, 0
	syscall
`

// TestSCCFixpointConverges analyzes a mutually recursive program and
// pins the interprocedural liveness fixpoint: the mutual-recursion SCC
// is recovered as one multi-member component, a second liveness sweep
// over the converged state changes no mask (true fixpoint), and no mask
// is ever wider than the intraprocedural tier's.
func TestSCCFixpointConverges(t *testing.T) {
	prog, err := asm.Assemble(mutualSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	a := Analyze(prog)
	if a.Err() != nil {
		t.Fatalf("analyze: %v", a.Err())
	}
	if a.ip == nil {
		t.Fatal("full analysis retained no interprocedural state")
	}

	// Recover the function-level call multigraph from the analysis and
	// confirm even/odd form the one multi-member SCC.
	edges := make(map[int][]int)
	for _, f := range a.ip.fns {
		for _, b := range a.ip.body[f] {
			if ci, ok := a.ip.callAt[b]; ok {
				edges[f] = append(edges[f], ci.callees...)
			}
		}
	}
	sccs := tarjanSCC(a.ip.fns, edges)
	multi := 0
	for _, scc := range sccs {
		if len(scc) > 1 {
			multi++
			if len(scc) != 2 {
				t.Fatalf("mutual recursion SCC has %d members, want 2: %v", len(scc), scc)
			}
		}
	}
	if multi != 1 {
		t.Fatalf("found %d multi-member SCCs, want exactly 1 (even/odd): %v", multi, sccs)
	}

	// Snapshot every instruction's converged masks, re-run the sweep on
	// a freshly built graph, and demand bit-identical masks: the
	// fixpoint is stable, not merely bounded.
	type masks struct{ in, out uint32 }
	snapshot := func() map[uint32]masks {
		m := make(map[uint32]masks)
		for _, seg := range prog.Segments {
			for off := uint32(0); off+4 <= uint32(len(seg.Data)); off += 4 {
				addr := seg.Addr + off
				m[addr] = masks{in: a.LiveIn(addr), out: a.LiveOut(addr)}
			}
		}
		return m
	}
	before := snapshot()
	a.computeLiveness(a.buildInterproc())
	after := snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("second liveness sweep moved a converged mask")
	}

	// The interprocedural masks must be monotonically contained in the
	// intraprocedural tier's.
	intra := AnalyzeIntra(prog)
	for addr, m := range before {
		if w := m.out &^ intra.LiveOut(addr); w != 0 {
			t.Fatalf("LiveOut(%#x): interprocedural mask %#x wider than intra %#x",
				addr, m.out, intra.LiveOut(addr))
		}
	}
}
