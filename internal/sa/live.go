package sa

import (
	"superpin/internal/isa"
	"superpin/internal/kernel"
)

// useDef returns the registers read and written by one instruction, as
// masks with the r0 bit stripped (r0 is hardwired and never really live).
// SYSCALL is maximally conservative on the use side: SysSpawn hands the
// child a copy of the whole register file, so every register's value is
// observable at a syscall. computeLiveness refines this for syscalls
// whose number is block-locally provable (see syscallUse).
func useDef(in isa.Inst) (use, def uint32) {
	if in.Op == isa.OpSYSCALL {
		return AllRegs &^ 1, 1 << isa.RegSys
	}
	use = in.SrcRegs() &^ 1
	if d := in.DstReg(); d > 0 {
		def = 1 << uint(d)
	}
	return use, def
}

// syscallUse returns the refined use mask for the SYSCALL that ends
// block b, or the maximal mask when no refinement is possible. SYSCALL
// is a control instruction, so when a block contains one it is always
// the last instruction — the same block-local constant propagation that
// proves terminal exits can prove the syscall number here. A proven
// non-spawn syscall observes only the architectural argument registers
// (r1..r5); an unknown number, or a spawn (which hands the child a copy
// of the whole register file), keeps everything observable.
func (a *Analysis) syscallUse(b *block) uint32 {
	r := a.regions[b.ri]
	last := b.end - 1
	var s r1State
	for i := b.start; i < last; i++ {
		s = trackR1(s, r.ins[i])
	}
	if s.known && s.val != kernel.SysSpawn {
		return r.ins[last].SrcRegs() &^ 1
	}
	return AllRegs &^ 1
}

// computeLiveness runs backward register liveness to a fixpoint over all
// discovered blocks, then fills the per-instruction live-in/live-out
// masks the engine queries.
//
// Conservatism: blocks with statically unknown continuations (indirect
// jumps, returns, calls — whose callees run arbitrary code before the
// continuation resumes) treat every register as live-out. A provably
// terminal exit syscall has nothing live-out. Stored masks always carry
// the r0 bit so a zero mask can mean "not analyzed".
//
// With an interprocedural summary (ip != nil) three transfers sharpen,
// each strictly narrower than the intraprocedural answer, so full-tier
// masks never widen relative to AnalyzeIntra:
//
//   - a resolved call block's live-out is the union of its callees'
//     entry liveness plus the continuation's liveness minus what every
//     callee certainly kills (mustKill), instead of all registers;
//   - a canonical return block's live-out is the union of the
//     continuation liveness at every resolved call site of the
//     functions owning it (retLive), instead of all registers —
//     unless the program is wild, where any call site may be unknown;
//   - a patched indirect jump propagates its targets' liveness like
//     any flow edge (the patched graph makes this the ordinary case).
func (a *Analysis) computeLiveness(ip *ipInfo) {
	n := len(a.blocks)
	if n == 0 {
		return
	}
	// Per-block upward-exposed use / kill summaries. sysUse caches the
	// refined SYSCALL use mask for blocks ending in one.
	bUse := make([]uint32, n)
	bDef := make([]uint32, n)
	sysUse := make([]uint32, n)
	for id, b := range a.blocks {
		r := a.regions[b.ri]
		if r.ins[b.end-1].Op == isa.OpSYSCALL {
			sysUse[id] = a.syscallUse(b)
		}
		var use, def uint32
		for i := b.end - 1; i >= b.start; i-- {
			u, d := useDef(r.ins[i])
			if i == b.end-1 && r.ins[i].Op == isa.OpSYSCALL {
				u = sysUse[id]
			}
			use = u | (use &^ d)
			def |= d
		}
		bUse[id], bDef[id] = use, def
	}

	// retLive[f]: registers live at some continuation of a resolved
	// call to f — what a return from f must preserve. Recomputed at the
	// top of every sweep from the current liveIn estimates (monotone,
	// so the combined fixpoint is still the least one).
	retLive := make(map[int]uint32)

	liveIn := make([]uint32, n)
	liveOut := make([]uint32, n)
	for changed := true; changed; {
		changed = false
		if ip != nil {
			for _, f := range ip.fns {
				var rl uint32
				if ip.wild {
					rl = AllRegs &^ 1
				} else {
					for _, site := range ip.retSites[f] {
						rl |= liveIn[site]
					}
				}
				retLive[f] = rl
			}
		}
		for id := n - 1; id >= 0; id-- {
			b := a.blocks[id]
			var out uint32
			switch {
			case ip != nil && a.isReturnBlock(b):
				if ip.wild || len(ip.owners[id]) == 0 {
					out = AllRegs &^ 1
				} else {
					for _, f := range ip.owners[id] {
						out |= retLive[f]
					}
				}
			case b.conservative:
				out = AllRegs &^ 1
			default:
				if ip != nil {
					if ci, ok := ip.callAt[id]; ok {
						for _, c := range ci.callees {
							out |= liveIn[c]
						}
						if ci.ret >= 0 {
							out |= liveIn[ci.ret] &^ ci.kill
						}
						break
					}
				}
				for _, s := range b.succs {
					out |= liveIn[s]
				}
			}
			in := bUse[id] | (out &^ bDef[id])
			if out != liveOut[id] || in != liveIn[id] {
				liveOut[id], liveIn[id] = out, in
				changed = true
			}
		}
	}

	// Per-instruction masks, by a backward walk through each block.
	for id, b := range a.blocks {
		r := a.regions[b.ri]
		live := liveOut[id]
		for i := b.end - 1; i >= b.start; i-- {
			r.liveOut[i] = live | 1
			u, d := useDef(r.ins[i])
			if i == b.end-1 && r.ins[i].Op == isa.OpSYSCALL {
				u = sysUse[id]
			}
			live = u | (live &^ d)
			r.liveIn[i] = live | 1
		}
	}
}
