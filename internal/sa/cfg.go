package sa

import (
	"encoding/binary"
	"fmt"
	"sort"

	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/kernel"
)

// buildRegions flattens the image segments into word-aligned decodable
// regions. Segments keep their byte-addressed layout; instruction fetch
// requires word alignment, so each region covers the absolute-aligned
// words inside its segment, and any leading or trailing partial bytes
// are tracked for the truncation diagnostics.
func (a *Analysis) buildRegions() {
	for _, seg := range a.prog.Segments {
		start := (seg.Addr + isa.WordSize - 1) &^ (isa.WordSize - 1)
		off := int(start - seg.Addr)
		if off >= len(seg.Data) {
			continue
		}
		n := (len(seg.Data) - off) / isa.WordSize
		r := &region{
			addr:    start,
			ins:     make([]isa.Inst, n),
			ok:      make([]bool, n),
			pre:     make([]cpu.BlockIns, n),
			liveIn:  make([]uint32, n),
			liveOut: make([]uint32, n),
			reach:   make([]uint8, n),
			leader:  make([]bool, n),
			blockOf: make([]int32, n),
			tail:    len(seg.Data) - off - n*isa.WordSize,
		}
		for i := 0; i < n; i++ {
			r.blockOf[i] = -1
			w := binary.LittleEndian.Uint32(seg.Data[off+i*isa.WordSize:])
			in, err := isa.Decode(w)
			if err == nil {
				r.ins[i] = in
				r.ok[i] = true
			}
			r.pre[i] = cpu.BlockIns{Inst: r.ins[i], Next: r.wordAddr(i) + isa.WordSize}
		}
		a.regions = append(a.regions, r)
	}
	sort.Slice(a.regions, func(i, j int) bool { return a.regions[i].addr < a.regions[j].addr })
}

// succ is one direct control-flow successor of a terminator.
type succ struct {
	addr uint32
	kind edgeKind
}

// successors resolves the direct successors of the instruction at addr.
// conservative reports that the full successor set is not statically
// known (indirect transfers, calls — the callee's behavior is opaque).
// terminal reports that execution provably ends here (an exit syscall).
// r1 carries the block-local constant state of the syscall-number
// register at the instruction, from trackR1.
func successors(in isa.Inst, addr uint32, r1 r1State) (out []succ, conservative, terminal bool) {
	next := addr + isa.WordSize
	switch {
	case in.Op.IsCondBranch():
		return []succ{
			{next + uint32(in.Imm)*isa.WordSize, edgeFlow},
			{next, edgeFlow},
		}, false, false
	case in.Op == isa.OpJAL:
		target := next + uint32(in.Imm)*isa.WordSize
		if in.Rd == isa.RegZero {
			return []succ{{target, edgeFlow}}, false, false
		}
		// A call: the callee entry is known, and the return continuation
		// is the fall-through under the balanced-call assumption — but
		// what the callee does in between is not modeled.
		return []succ{{target, edgeCall}, {next, edgeRet}}, true, false
	case in.Op == isa.OpJALR:
		if in.Rd == isa.RegZero {
			return nil, true, false // return or indirect jump
		}
		return []succ{{next, edgeRet}}, true, false // indirect call
	case in.Op == isa.OpSYSCALL:
		if r1.known && r1.val == kernel.SysExit {
			return nil, false, true
		}
		return []succ{{next, edgeFlow}}, false, false
	}
	return []succ{{next, edgeFlow}}, false, false
}

// r1State is the block-local constant-propagation state of r1 (the
// syscall-number register), used to prove that a SYSCALL is an exit.
type r1State struct {
	known bool
	val   uint32
}

// trackR1 folds one instruction into the r1 constant state.
func trackR1(s r1State, in isa.Inst) r1State {
	if in.DstReg() != isa.RegSys {
		return s
	}
	switch in.Op {
	case isa.OpADDI:
		if in.Rs1 == isa.RegZero {
			return r1State{true, uint32(in.Imm)}
		}
		if in.Rs1 == isa.RegSys && s.known {
			return r1State{true, s.val + uint32(in.Imm)}
		}
	case isa.OpORI:
		if in.Rs1 == isa.RegZero {
			return r1State{true, uint32(in.Imm)}
		}
		if in.Rs1 == isa.RegSys && s.known {
			return r1State{true, s.val | uint32(in.Imm)}
		}
	case isa.OpLUI:
		return r1State{true, uint32(in.Imm) << 16}
	}
	return r1State{}
}

// discover performs code discovery: a breadth-first traversal of
// straight-line runs from the entry point (with full diagnostics), then
// from every symbol not already covered (silently — symbols may label
// data that happens to decode, so findings there would be noise). Every
// traversal start and every resolved control target becomes a block
// leader.
func (a *Analysis) discover() {
	if len(a.regions) == 0 {
		a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeBadTarget,
			Addr: a.prog.Entry, Msg: "image has no decodable words"})
		return
	}
	if a.prog.Entry%isa.WordSize != 0 {
		a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeMisaligned,
			Addr: a.prog.Entry, Msg: "entry point is not word aligned"})
		return
	}
	if _, _, ok := a.locate(a.prog.Entry); !ok {
		a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeBadTarget,
			Addr: a.prog.Entry, Msg: "entry point is outside the image"})
		return
	}
	a.traverse(a.prog.Entry, reachEntry)

	// Symbol roots: kernels and helper routines reached only through
	// indirect calls (the workloads' LW+JALR dispatch) are still labeled,
	// so the symbol table recovers them for liveness. Sorted for
	// determinism.
	syms := make([]uint32, 0, len(a.prog.Symbols))
	for _, addr := range a.prog.Symbols { //detguard:ok sorted below
		syms = append(syms, addr)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, addr := range syms {
		if ri, wi, ok := a.locate(addr); ok && a.regions[ri].reach[wi] == reachNone {
			a.traverse(addr, reachSym)
		}
	}
}

// traverse walks straight-line runs from root, marking words with the
// given reach level, recording leaders, and (at reachEntry level)
// emitting diagnostics for malformed control flow.
func (a *Analysis) traverse(root uint32, level uint8) {
	loud := level == reachEntry
	work := []uint32{root}
	enqueue := func(addr uint32) {
		work = append(work, addr)
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		ri, wi, ok := a.locate(addr)
		if !ok {
			continue // diagnosed by whoever resolved the target
		}
		r := a.regions[ri]
		if r.reach[wi] >= level {
			r.leader[wi] = true
			continue
		}
		r.leader[wi] = true
		r1 := r1State{}
		for {
			if r.reach[wi] >= level {
				break // ran into an already-covered run
			}
			if !r.ok[wi] {
				if loud {
					a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeUndecodable,
						Addr: r.wordAddr(wi), Msg: "reachable word is not a valid instruction"})
				}
				break
			}
			r.reach[wi] = level
			in := r.ins[wi]
			iaddr := r.wordAddr(wi)
			if in.Op.EndsBlock() {
				succs, _, _ := successors(in, iaddr, r1)
				for _, s := range succs {
					if a.resolveTarget(iaddr, in, s.addr, loud) {
						enqueue(s.addr)
					}
				}
				break
			}
			r1 = trackR1(r1, in)
			wi++
			if wi >= r.words() {
				if loud {
					a.fallOffDiag(r, iaddr)
				}
				break
			}
		}
	}
}

// resolveTarget validates one direct control target, emitting the
// bad-target/misaligned/fall-off diagnostics when loud, and reports
// whether the target is a word inside the image.
func (a *Analysis) resolveTarget(from uint32, in isa.Inst, target uint32, loud bool) bool {
	if target%isa.WordSize != 0 {
		if loud {
			a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeMisaligned, Addr: from,
				Msg: fmt.Sprintf("%v target %#08x is not word aligned", in.Op, target)})
		}
		return false
	}
	if _, _, ok := a.locate(target); !ok {
		if loud {
			if target == from+isa.WordSize {
				// Fall-through off the image: a non-terminal SYSCALL (or a
				// call's return site) continuing past the last word. The
				// syscall might never return (the number is only unknown
				// statically), so this is a warning; everything else is an
				// error handled by fallOffDiag.
				if in.Op == isa.OpSYSCALL {
					a.diags = append(a.diags, Diag{Sev: SevWarn, Code: CodeFallOff, Addr: from,
						Msg: "syscall with a statically unknown number falls off the image"})
					return false
				}
				if ri, _, ok := a.locate(from); ok {
					a.fallOffDiag(a.regions[ri], from)
					return false
				}
			}
			a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeBadTarget, Addr: from,
				Msg: fmt.Sprintf("%v target %#08x is outside the image", in.Op, target)})
		}
		return false
	}
	return true
}

// fallOffDiag reports control flow running past the last whole word at
// iaddr: a truncation error when partial trailing bytes exist, a plain
// fall-off error otherwise.
func (a *Analysis) fallOffDiag(r *region, iaddr uint32) {
	if r.tail > 0 {
		a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeTruncated, Addr: iaddr,
			Msg: fmt.Sprintf("control flow reaches trailing %d-byte fragment of a truncated image", r.tail)})
		return
	}
	a.diags = append(a.diags, Diag{Sev: SevError, Code: CodeFallOff, Addr: iaddr,
		Msg: "control flow falls off the end of the image"})
}

// buildBlocks partitions the discovered code into basic blocks and
// resolves their direct successor edges.
func (a *Analysis) buildBlocks() {
	for ri, r := range a.regions {
		for wi := 0; wi < r.words(); {
			if r.reach[wi] == reachNone || !r.ok[wi] {
				wi++
				continue
			}
			b := &block{ri: ri, start: wi, entryReach: r.reach[wi] == reachEntry}
			id := len(a.blocks)
			for {
				r.blockOf[wi] = int32(id)
				ends := r.ins[wi].Op.EndsBlock()
				wi++
				if ends || wi >= r.words() || r.reach[wi] == reachNone || !r.ok[wi] || r.leader[wi] {
					break
				}
			}
			b.end = wi
			a.blocks = append(a.blocks, b)
		}
	}
	// Resolve edges. A terminal syscall block has no successors; blocks
	// whose run ended without a terminator (undecodable word, image end)
	// have statically unknown continuations and are conservative.
	for _, b := range a.blocks {
		r := a.regions[b.ri]
		last := b.end - 1
		in := r.ins[last]
		if !in.Op.EndsBlock() {
			// The run was cut short by the next word being a leader
			// (someone branches there): a plain fall-through edge. A run
			// cut by the image end or an undecodable word instead has no
			// statically known continuation.
			if b.end < r.words() && r.ok[b.end] && r.reach[b.end] != reachNone {
				b.succs = append(b.succs, int(r.blockOf[b.end]))
				b.kinds = append(b.kinds, edgeFlow)
			} else {
				b.conservative = true
			}
			continue
		}
		r1 := r1State{}
		for i := b.start; i < last; i++ {
			r1 = trackR1(r1, r.ins[i])
		}
		succs, cons, _ := successors(in, r.wordAddr(last), r1)
		b.conservative = cons
		for _, s := range succs {
			sb := a.blockAt(s.addr)
			if sb == nil {
				b.conservative = true
				continue
			}
			b.succs = append(b.succs, int(a.regions[sb.ri].blockOf[sb.start]))
			b.kinds = append(b.kinds, s.kind)
		}
	}
}
