package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"superpin/internal/core"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return s
}

func obsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	cfg.TimesliceMSec = 40
	return cfg
}

// TestRunObsSmoke is the observability smoke check: traced SuperPin runs
// satisfy every trace invariant, including exact breakdown agreement.
func TestRunObsSmoke(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "gcc", "mgrid"}
	reports, err := RunObsSmoke(cfg, Icount1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Events == 0 || r.Slices == 0 {
			t.Fatalf("%s: empty report %+v", r.Name, r)
		}
		if len(r.Checks) == 0 {
			t.Fatalf("%s: no checks recorded", r.Name)
		}
	}
}

// TestVerifyTraceRejectsViolations feeds VerifyTrace corrupted traces
// and expects each corruption to be caught.
func TestVerifyTraceRejectsViolations(t *testing.T) {
	cfg := obsTestConfig()
	spec := mustSpec(t, "gzip")
	prog, err := spec.Scaled(cfg.Scale).Build()
	if err != nil {
		t.Fatal(err)
	}
	native, err := core.RunNative(cfg.Kernel, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.SliceMSec = cfg.TimesliceMSec
	opts.Trace = obs.NewTracer()
	res, err := core.Run(cfg.Kernel, prog, newTool(Icount1).Factory(), opts)
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	good := opts.Trace.Events()
	if err := VerifyTrace(good, res, native.Time); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}

	corrupt := func(name string, mutate func([]obs.Event) []obs.Event) {
		evs := make([]obs.Event, len(good))
		copy(evs, good)
		if err := VerifyTrace(mutate(evs), res, native.Time); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	corrupt("time reversal", func(evs []obs.Event) []obs.Event {
		for i := len(evs) - 1; i >= 0; i-- {
			if evs[i].Kind != obs.EvSchedule && evs[i].Time > 0 {
				evs[i].Time = 0
				break
			}
		}
		return evs
	})
	corrupt("dropped merge", func(evs []obs.Event) []obs.Event {
		out := evs[:0]
		dropped := false
		for _, ev := range evs {
			if !dropped && ev.Kind == obs.EvSliceMerge {
				dropped = true
				continue
			}
			out = append(out, ev)
		}
		return out
	})
	corrupt("inflated sleep", func(evs []obs.Event) []obs.Event {
		for i, ev := range evs {
			if ev.Kind == obs.EvSleep {
				evs[i].Time -= 1
				break
			}
		}
		return evs
	})
	corrupt("empty", func([]obs.Event) []obs.Event { return nil })
}

// TestRunBenchmarkTraceDir checks the harness trace export: a traced
// benchmark run writes valid Chrome trace JSON, and the traced run's
// measurements are identical to an untraced run's.
func TestRunBenchmarkTraceDir(t *testing.T) {
	cfg := obsTestConfig()
	spec := mustSpec(t, "gzip")

	plain, err := RunBenchmark(cfg, spec, Icount1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceDir = t.TempDir()
	traced, err := RunBenchmark(cfg, spec, Icount1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Native != traced.Native || plain.Pin != traced.Pin || plain.SP != traced.SP {
		t.Fatalf("tracing changed results: %+v vs %+v", plain, traced)
	}

	path := filepath.Join(cfg.TraceDir, "gzip.icount1.trace.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
}
