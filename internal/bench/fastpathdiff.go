package bench

import (
	"fmt"
	"reflect"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// FastPathDiffReport is one benchmark's differential-determinism outcome:
// the benchmark ran with the engine's dispatch fast paths enabled and
// disabled, and every virtual-cycle-visible quantity was identical.
type FastPathDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// PinCycles and SPCycles are the (mode-independent) serial Pin and
	// SuperPin runtimes.
	PinCycles kernel.Cycles
	SPCycles  kernel.Cycles
	// LinkHits and SuperblockIns report how much the fast-path run
	// actually exercised the machinery under test (serial Pin run).
	LinkHits      uint64
	SuperblockIns uint64
	// Events is the (identical) SuperPin trace length.
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// fastPathDiffChecks are the equalities the differential runner asserts,
// for human-readable output.
var fastPathDiffChecks = []string{
	"serial Pin result identical (cycles, ins, exit, stdout, stats modulo host-only counters)",
	"SuperPin result deep-equal (slices, stats, breakdown, stdout)",
	"SuperPin trace event streams identical",
	"trace invariants hold in both modes",
}

// RunFastPathDiff runs each configured benchmark twice — fast paths on
// and off — under both serial Pin and SuperPin, and verifies that the
// fast paths changed nothing the virtual machine can observe: cycle
// counts, instruction counts, exit codes, stdout, slice schedules and
// trace event streams must all be byte-identical. Only the host-side
// counters (link hits/misses/invalidations, superblock instructions) may
// differ, and the fast-path run must actually have exercised them.
func RunFastPathDiff(cfg Config, kind ToolKind) ([]*FastPathDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*FastPathDiffReport, error) {
		return runFastPathDiffOne(cfg, specs[i], kind)
	})
}

// fastPathRun is one mode's (fast or -nofastpath) measurement set.
type fastPathRun struct {
	pin    *core.PinResult
	sp     *core.Result
	events []obs.Event
}

func runFastPathDiffOne(cfg Config, spec workload.Spec, kind ToolKind) (*FastPathDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("fastpathdiff %s: native: %w", spec.Name, err)
	}

	var modes [2]fastPathRun
	for m, nofast := range []bool{false, true} {
		pinCost := cfg.PinCost
		pinCost.MemSurcharge = spec.PinMemCost
		pinCost.NoFastPath = nofast
		pinTool := newTool(kind)
		pinRes, err := core.RunPin(cfg.Kernel, prog, pinTool.Factory(), pinCost)
		if err != nil {
			return nil, fmt.Errorf("fastpathdiff %s: pin (nofast=%v): %w", spec.Name, nofast, err)
		}
		if pinTool.Total() != native.Ins {
			return nil, fmt.Errorf("fastpathdiff %s: pin (nofast=%v) counted %d, native executed %d",
				spec.Name, nofast, pinTool.Total(), native.Ins)
		}

		opts := core.DefaultOptions()
		opts.SliceMSec = cfg.TimesliceMSec
		opts.MaxSlices = cfg.MaxSlices
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.PinCost.NoFastPath = nofast
		opts.NativeMemSurcharge = spec.NativeMemCost
		opts.Trace = obs.NewTracer()
		spTool := newTool(kind)
		spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
		if err != nil {
			return nil, fmt.Errorf("fastpathdiff %s: superpin (nofast=%v): %w", spec.Name, nofast, err)
		}
		if spRes.Err != nil {
			return nil, fmt.Errorf("fastpathdiff %s: superpin (nofast=%v): %w", spec.Name, nofast, spRes.Err)
		}
		if spTool.Total() != native.Ins {
			return nil, fmt.Errorf("fastpathdiff %s: superpin (nofast=%v) counted %d, native executed %d",
				spec.Name, nofast, spTool.Total(), native.Ins)
		}
		events := opts.Trace.Events()
		if err := VerifyTrace(events, spRes, native.Time); err != nil {
			return nil, fmt.Errorf("fastpathdiff %s (nofast=%v): %w", spec.Name, nofast, err)
		}
		modes[m] = fastPathRun{pin: pinRes, sp: spRes, events: events}
	}
	fast, ref := modes[0], modes[1]

	// Serial Pin: everything but the host-only counters must match. The
	// host-only counters live in Engine.SuperblockIns, the SA sealing
	// counters (superblocks are only sealed in fast mode), the hot-tier
	// counters (the hot tier rides on the fast paths, so the reference
	// loop never promotes) and Cache.Link*; compare normalized copies
	// with those zeroed. PredSaveRegs is normalized too, because the hot
	// tier's spill hoisting suppresses saves in the fast arm only; the
	// IfCalls/ThenCalls counts it modulates stay compared.
	fastPin, refPin := *fast.pin, *ref.pin
	fastPin.Engine.SuperblockIns, refPin.Engine.SuperblockIns = 0, 0
	fastPin.Engine.PredSaveRegs, refPin.Engine.PredSaveRegs = 0, 0
	fastPin.Engine.SASharedRuns, refPin.Engine.SASharedRuns = 0, 0
	fastPin.Engine.SAPrivateRuns, refPin.Engine.SAPrivateRuns = 0, 0
	zeroHotStats(&fastPin.Engine)
	zeroHotStats(&refPin.Engine)
	fastPin.Cache.LinkHits, refPin.Cache.LinkHits = 0, 0
	fastPin.Cache.LinkMisses, refPin.Cache.LinkMisses = 0, 0
	fastPin.Cache.LinkInvalidations, refPin.Cache.LinkInvalidations = 0, 0
	if !reflect.DeepEqual(fastPin, refPin) {
		return nil, fmt.Errorf("fastpathdiff %s: serial Pin results differ:\nfast:   %+v\nnofast: %+v",
			spec.Name, fastPin, refPin)
	}
	if ref.pin.Engine.SuperblockIns != 0 || ref.pin.Cache.LinkHits != 0 ||
		ref.pin.Cache.LinkMisses != 0 || ref.pin.Cache.LinkInvalidations != 0 ||
		ref.pin.Engine.SASharedRuns != 0 || ref.pin.Engine.SAPrivateRuns != 0 ||
		ref.pin.Engine.HotPromotions != 0 || ref.pin.Engine.HotIns != 0 ||
		ref.pin.Engine.HoistedSaves != 0 || ref.pin.Engine.HotLinkHits != 0 {
		return nil, fmt.Errorf("fastpathdiff %s: -nofastpath run reported fast-path activity: %+v",
			spec.Name, hostCounters(ref.pin))
	}

	// SuperPin: the whole Result — slice schedule, stats, stdout — must be
	// deep-equal, as must the trace event streams.
	if !reflect.DeepEqual(fast.sp, ref.sp) {
		return nil, fmt.Errorf("fastpathdiff %s: SuperPin results differ:\nfast:   %+v\nnofast: %+v",
			spec.Name, fast.sp, ref.sp)
	}
	if !reflect.DeepEqual(fast.events, ref.events) {
		return nil, fmt.Errorf("fastpathdiff %s: SuperPin trace streams differ (%d vs %d events)",
			spec.Name, len(fast.events), len(ref.events))
	}

	// The breakdown quadruple is derived from Result fields, but compare
	// it explicitly: it is the paper-facing quantity.
	fn, ff, fs, fp := fast.sp.Breakdown(native.Time)
	rn, rf, rs, rp := ref.sp.Breakdown(native.Time)
	if fn != rn || ff != rf || fs != rs || fp != rp {
		return nil, fmt.Errorf("fastpathdiff %s: breakdowns differ: fast (%d %d %d %d) vs nofast (%d %d %d %d)",
			spec.Name, fn, ff, fs, fp, rn, rf, rs, rp)
	}

	return &FastPathDiffReport{
		Name:          spec.Name,
		Ins:           native.Ins,
		PinCycles:     fast.pin.Time,
		SPCycles:      fast.sp.TotalTime,
		LinkHits:      fast.pin.Cache.LinkHits,
		SuperblockIns: fast.pin.Engine.SuperblockIns,
		Events:        len(fast.events),
		Checks:        fastPathDiffChecks,
	}, nil
}
