package bench

import (
	"fmt"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// ObsReport is one benchmark's observability smoke-check outcome: the
// run traced cleanly and every invariant below held.
type ObsReport struct {
	Name   string
	Events int
	Slices int
	// Checks lists the invariants verified, for human-readable output.
	Checks []string
}

// obsInvariants are the trace properties the smoke runner asserts.
var obsInvariants = []string{
	"per-track timestamps non-decreasing",
	"sleep/wake and lifecycle spans balanced per process",
	"every slice has spawn <= detect <= merge",
	"breakdown reconstructed from trace == Result.Breakdown",
}

// RunObsSmoke runs each configured benchmark under SuperPin with the
// tracer attached and verifies the trace invariants against the run's
// Result. It is the end-to-end check that the observability layer
// reports the schedule the engine actually executed.
func RunObsSmoke(cfg Config, kind ToolKind) ([]*ObsReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*ObsReport, error) {
		return runObsSmokeOne(cfg, specs[i], kind)
	})
}

func runObsSmokeOne(cfg Config, spec workload.Spec, kind ToolKind) (*ObsReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("obssmoke %s: native: %w", spec.Name, err)
	}

	opts := core.DefaultOptions()
	opts.SliceMSec = cfg.TimesliceMSec
	opts.MaxSlices = cfg.MaxSlices
	opts.PinCost = cfg.PinCost
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	opts.Trace = obs.NewTracer()
	tool := newTool(kind)
	res, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
	if err != nil {
		return nil, fmt.Errorf("obssmoke %s: superpin: %w", spec.Name, err)
	}
	if res.Err != nil {
		return nil, fmt.Errorf("obssmoke %s: superpin: %w", spec.Name, res.Err)
	}

	events := opts.Trace.Events()
	if err := VerifyTrace(events, res, native.Time); err != nil {
		return nil, fmt.Errorf("obssmoke %s: %w", spec.Name, err)
	}
	return &ObsReport{
		Name:   spec.Name,
		Events: len(events),
		Slices: len(res.Slices),
		Checks: obsInvariants,
	}, nil
}

// VerifyTrace checks a SuperPin run's event stream against its Result:
//
//  1. timestamps are non-decreasing per track (per guest process, and
//     per CPU context for occupancy spans, which also must not overlap),
//  2. sleep intervals and process lifetimes are balanced (every sleep
//     has a wake, every spawn/fork an exit),
//  3. every slice's lifecycle is ordered spawn <= detect <= merge,
//  4. the Figure 6 breakdown reconstructed from the trace alone equals
//     Result.Breakdown(native) exactly (integer cycles).
func VerifyTrace(events []obs.Event, res *core.Result, native kernel.Cycles) error {
	if len(events) == 0 {
		return fmt.Errorf("trace: no events")
	}

	lastTS := map[int32]uint64{}     // per guest-process track
	cpuEnd := map[int32]uint64{}     // per CPU track: end of last span
	sleepStart := map[int32]uint64{} // open sleep interval per pid
	sleepTotal := map[int32]uint64{} // closed sleep cycles per pid
	alive := map[int32]bool{}        // spawned/forked, not yet exited
	exitTime := map[int32]uint64{}   //
	spawnT := map[uint64]uint64{}    // slice num -> spawn time
	detectT := map[uint64]uint64{}   // slice num -> detect time
	mergeT := map[uint64]uint64{}    // slice num -> merge time
	var masterPID int32 = -1
	var mergeMax uint64

	for i, ev := range events {
		if ev.Kind == obs.EvSchedule {
			if end := cpuEnd[ev.CPU]; ev.Time < end {
				return fmt.Errorf("trace: cpu%d span at t=%d overlaps previous (ends %d)",
					ev.CPU, ev.Time, end)
			}
			cpuEnd[ev.CPU] = ev.Time + ev.Dur
			continue
		}
		if ev.Time < lastTS[ev.PID] {
			return fmt.Errorf("trace: event %d (%v pid %d) at t=%d before track high-water %d",
				i, ev.Kind, ev.PID, ev.Time, lastTS[ev.PID])
		}
		lastTS[ev.PID] = ev.Time

		switch ev.Kind {
		case obs.EvProcSpawn, obs.EvFork:
			if alive[ev.PID] {
				return fmt.Errorf("trace: pid %d spawned twice", ev.PID)
			}
			alive[ev.PID] = true
			if ev.Kind == obs.EvProcSpawn && ev.Name == "master" && masterPID < 0 {
				masterPID = ev.PID
			}
		case obs.EvProcExit:
			if !alive[ev.PID] {
				return fmt.Errorf("trace: pid %d exited without spawn", ev.PID)
			}
			alive[ev.PID] = false
			exitTime[ev.PID] = ev.Time
		case obs.EvSleep:
			if _, open := sleepStart[ev.PID]; open {
				return fmt.Errorf("trace: pid %d slept twice without waking", ev.PID)
			}
			sleepStart[ev.PID] = ev.Time
		case obs.EvWake:
			start, open := sleepStart[ev.PID]
			if !open {
				return fmt.Errorf("trace: pid %d woke without sleeping", ev.PID)
			}
			delete(sleepStart, ev.PID)
			sleepTotal[ev.PID] += ev.Time - start
		case obs.EvSliceSpawn:
			spawnT[ev.Arg] = ev.Time
		case obs.EvSliceDetect:
			detectT[ev.Arg] = ev.Time
		case obs.EvSliceMerge:
			mergeT[ev.Arg] = ev.Time
			if ev.Time > mergeMax {
				mergeMax = ev.Time
			}
		}
	}

	for pid := range alive {
		if alive[pid] {
			return fmt.Errorf("trace: pid %d never exited", pid)
		}
	}
	if len(sleepStart) != 0 {
		return fmt.Errorf("trace: %d sleep intervals left open", len(sleepStart))
	}
	if masterPID < 0 {
		return fmt.Errorf("trace: no master spawn event")
	}

	if len(spawnT) != len(res.Slices) {
		return fmt.Errorf("trace: %d slice spawns for %d slices", len(spawnT), len(res.Slices))
	}
	for num := uint64(1); num <= uint64(len(res.Slices)); num++ {
		s, okS := spawnT[num]
		d, okD := detectT[num]
		m, okM := mergeT[num]
		if !okS || !okD || !okM {
			return fmt.Errorf("trace: slice %d lifecycle incomplete (spawn=%v detect=%v merge=%v)",
				num, okS, okD, okM)
		}
		if s > d || d > m {
			return fmt.Errorf("trace: slice %d lifecycle out of order: spawn=%d detect=%d merge=%d",
				num, s, d, m)
		}
	}

	// Reconstruct the Figure 6 breakdown from the trace alone and compare
	// with the engine's own accounting, exactly.
	masterEnd, ok := exitTime[masterPID]
	if !ok {
		return fmt.Errorf("trace: master (pid %d) has no exit event", masterPID)
	}
	tMasterEnd := kernel.Cycles(masterEnd)
	tSleep := kernel.Cycles(sleepTotal[masterPID])
	tTotal := kernel.Cycles(mergeMax)
	var tFork, tPipeline kernel.Cycles
	tPipeline = tTotal - tMasterEnd
	if active := tMasterEnd - tSleep; active > native {
		tFork = active - native
	}

	wantNat, wantFork, wantSleep, wantPipe := res.Breakdown(native)
	if native != wantNat || tFork != wantFork || tSleep != wantSleep || tPipeline != wantPipe {
		return fmt.Errorf(
			"trace: reconstructed breakdown (nat=%d fork=%d sleep=%d pipe=%d) != Result.Breakdown (nat=%d fork=%d sleep=%d pipe=%d)",
			native, tFork, tSleep, tPipeline, wantNat, wantFork, wantSleep, wantPipe)
	}
	return nil
}
