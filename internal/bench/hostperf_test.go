package bench

import (
	"testing"

	"superpin/internal/core"
	"superpin/internal/workload"
)

// benchSerialPin measures host-side guest-MIPS of a serial Pin run over
// one catalog workload, with the dispatch fast paths on or off. The
// icount2 tool (per-basic-block calls) is used because it is the paper's
// low-overhead configuration and leaves block tails free for superblock
// batching; icount1 (per-instruction calls) isolates trace linking.
func benchSerialPin(b *testing.B, name string, kind ToolKind, nofast, nohot bool) {
	b.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	spec = spec.Scaled(1)
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cost := cfg.PinCost
	cost.MemSurcharge = spec.PinMemCost
	cost.NoFastPath = nofast
	cost.NoHotTier = nohot

	var ins uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool := newTool(kind)
		res, err := core.RunPin(cfg.Kernel, prog, tool.Factory(), cost)
		if err != nil {
			b.Fatal(err)
		}
		ins += res.Ins
	}
	b.ReportMetric(float64(ins)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

func BenchmarkPinGzipIcount2(b *testing.B)       { benchSerialPin(b, "gzip", Icount2, false, false) }
func BenchmarkPinGzipIcount2NoFast(b *testing.B) { benchSerialPin(b, "gzip", Icount2, true, false) }
func BenchmarkPinGccIcount2(b *testing.B)        { benchSerialPin(b, "gcc", Icount2, false, false) }
func BenchmarkPinGccIcount2NoFast(b *testing.B)  { benchSerialPin(b, "gcc", Icount2, true, false) }
func BenchmarkPinMgridIcount2(b *testing.B)      { benchSerialPin(b, "mgrid", Icount2, false, false) }
func BenchmarkPinMgridIcount2NoFast(b *testing.B) {
	benchSerialPin(b, "mgrid", Icount2, true, false)
}
func BenchmarkPinMgridIcount1(b *testing.B) { benchSerialPin(b, "mgrid", Icount1, false, false) }
func BenchmarkPinMgridIcount1NoFast(b *testing.B) {
	benchSerialPin(b, "mgrid", Icount1, true, false)
}

// The NoHot pair of each benchmark isolates the second-tier trace
// compiler: fast paths on in both arms, hot tier off in the NoHot one.
func BenchmarkPinGzipIcount2NoHot(b *testing.B)  { benchSerialPin(b, "gzip", Icount2, false, true) }
func BenchmarkPinGccIcount2NoHot(b *testing.B)   { benchSerialPin(b, "gcc", Icount2, false, true) }
func BenchmarkPinMgridIcount2NoHot(b *testing.B) { benchSerialPin(b, "mgrid", Icount2, false, true) }
