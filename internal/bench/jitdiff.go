package bench

import (
	"fmt"
	"reflect"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// JITDiffReport is one benchmark's hot-tier differential outcome: the
// benchmark ran with the second-tier trace compiler enabled and disabled
// (-nohottier), under serial Pin and under SuperPin at host worker counts
// 1 and 4, and every virtual-cycle-visible quantity was identical.
type JITDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// PinCycles and SPCycles are the (mode-independent) serial Pin and
	// SuperPin runtimes.
	PinCycles kernel.Cycles
	SPCycles  kernel.Cycles
	// Promotions, HotIns and HotLinkHits are the hot serial Pin run's
	// second-tier counters: traces promoted, instructions executed
	// register-cached, dispatches resolved through hot-successor links.
	Promotions  uint64
	HotIns      uint64
	HotLinkHits uint64
	// SPPromotions and SPHoistedSaves aggregate the hot SuperPin run's
	// slice-engine counters (workers=1); HoistedSaves only materializes
	// here, because the inlined if/then probes whose spills the hot tier
	// hoists are SuperPin's slice-boundary detection probes.
	SPPromotions   uint64
	SPHoistedSaves uint64
	// Events is the (identical) SuperPin trace length.
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// jitDiffWorkers are the SuperPin host worker counts the differential
// runs at: the hot tier lives in per-slice engines, so its promotion
// points are a pure function of virtual time and must survive parallel
// slice execution unchanged.
var jitDiffWorkers = [2]int{1, 4}

// jitDiffChecks are the equalities the differential runner asserts, for
// human-readable output.
var jitDiffChecks = []string{
	"serial Pin result identical (cycles, ins, exit, stdout, stats modulo host-only counters)",
	"SuperPin result deep-equal at workers 1 and 4 (slices, stats, breakdown, stdout)",
	"SuperPin trace event streams identical in all four runs",
	"trace invariants hold in both modes",
	"-nohottier runs report zero hot-tier activity",
	"hot runs actually promote on dispatch-heavy benchmarks",
}

// RunJITDiff runs each configured benchmark twice — second-tier trace
// compiler on and off — under serial Pin and under SuperPin at host
// worker counts 1 and 4, and verifies that the hot tier changed nothing
// the virtual machine can observe: cycle counts, instruction counts,
// exit codes, stdout, slice schedules and trace event streams must all
// be byte-identical. Only the host-side counters (promotions,
// register-cached instructions, hoisted spills, hot link hits, and the
// first-tier link/spill counters the hot tier displaces) may differ.
func RunJITDiff(cfg Config, kind ToolKind) ([]*JITDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*JITDiffReport, error) {
		return runJITDiffOne(cfg, specs[i], kind)
	})
}

func runJITDiffOne(cfg Config, spec workload.Spec, kind ToolKind) (*JITDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("jitdiff %s: native: %w", spec.Name, err)
	}

	// Serial Pin, hot tier on and off.
	var pins [2]*core.PinResult
	for m, nohot := range []bool{false, true} {
		pinCost := cfg.PinCost
		pinCost.MemSurcharge = spec.PinMemCost
		pinCost.NoHotTier = nohot
		pinTool := newTool(kind)
		pinRes, err := core.RunPin(cfg.Kernel, prog, pinTool.Factory(), pinCost)
		if err != nil {
			return nil, fmt.Errorf("jitdiff %s: pin (nohottier=%v): %w", spec.Name, nohot, err)
		}
		if pinTool.Total() != native.Ins {
			return nil, fmt.Errorf("jitdiff %s: pin (nohottier=%v) counted %d, native executed %d",
				spec.Name, nohot, pinTool.Total(), native.Ins)
		}
		pins[m] = pinRes
	}
	hot, ref := pins[0], pins[1]

	// Everything but the host-only counters must match. The hot tier
	// displaces first-tier link traffic (hot link hits bypass the link
	// cache) and predicate spills (hoisting), so Link* and PredSaveRegs
	// are normalized along with the hot counters themselves. Lookups,
	// Misses, Compiles, Flushes, Dispatches and SuperblockIns stay
	// compared: promotion never rebuilds a trace or changes dispatch
	// structure, so they are identical by construction.
	hotPin, refPin := *hot, *ref
	hotPin.Engine.PredSaveRegs, refPin.Engine.PredSaveRegs = 0, 0
	zeroHotStats(&hotPin.Engine)
	zeroHotStats(&refPin.Engine)
	hotPin.Cache.LinkHits, refPin.Cache.LinkHits = 0, 0
	hotPin.Cache.LinkMisses, refPin.Cache.LinkMisses = 0, 0
	hotPin.Cache.LinkInvalidations, refPin.Cache.LinkInvalidations = 0, 0
	if !reflect.DeepEqual(hotPin, refPin) {
		return nil, fmt.Errorf("jitdiff %s: serial Pin results differ:\nhot:       %+v\nnohottier: %+v",
			spec.Name, hotPin, refPin)
	}
	if ref.Engine.HotPromotions != 0 || ref.Engine.HotIns != 0 ||
		ref.Engine.HoistedSaves != 0 || ref.Engine.HotLinkHits != 0 {
		return nil, fmt.Errorf("jitdiff %s: -nohottier run reported hot-tier activity: %+v",
			spec.Name, hostCounters(ref))
	}
	// Promotion is driven by per-trace dispatch counts, so demand it only
	// when the run dispatched enough to guarantee a hot trace exists
	// (with the fast path on; the hot tier rides on it).
	if !cfg.NoFastPath && hot.Engine.Dispatches >= 4096 && hot.Engine.HotPromotions == 0 {
		return nil, fmt.Errorf("jitdiff %s: %d dispatches but no trace was ever promoted",
			spec.Name, hot.Engine.Dispatches)
	}

	// SuperPin at workers 1 and 4, hot tier on and off: all four runs
	// must produce identical virtual results. core.Result carries no pin
	// engine stats, so the hot host counters cannot leak in here; the
	// hot workers=1 run publishes metrics so slice-engine hot activity
	// is still observable.
	type spRun struct {
		res    *core.Result
		events []obs.Event
	}
	var base *spRun
	var spPromos, spHoisted uint64
	for _, workers := range jitDiffWorkers {
		for _, nohot := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.SliceMSec = cfg.TimesliceMSec
			opts.MaxSlices = cfg.MaxSlices
			opts.PinCost = cfg.PinCost
			opts.PinCost.MemSurcharge = spec.SliceMemCost
			opts.PinCost.NoHotTier = nohot
			opts.NativeMemSurcharge = spec.NativeMemCost
			opts.Workers = workers
			opts.Trace = obs.NewTracer()
			var metrics *obs.Metrics
			if !nohot && workers == jitDiffWorkers[0] {
				metrics = obs.NewMetrics()
				opts.Metrics = metrics
			}
			spTool := newTool(kind)
			spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
			if err != nil {
				return nil, fmt.Errorf("jitdiff %s: superpin (nohottier=%v workers=%d): %w",
					spec.Name, nohot, workers, err)
			}
			if spRes.Err != nil {
				return nil, fmt.Errorf("jitdiff %s: superpin (nohottier=%v workers=%d): %w",
					spec.Name, nohot, workers, spRes.Err)
			}
			if spTool.Total() != native.Ins {
				return nil, fmt.Errorf("jitdiff %s: superpin (nohottier=%v workers=%d) counted %d, native executed %d",
					spec.Name, nohot, workers, spTool.Total(), native.Ins)
			}
			events := opts.Trace.Events()
			if err := VerifyTrace(events, spRes, native.Time); err != nil {
				return nil, fmt.Errorf("jitdiff %s (nohottier=%v workers=%d): %w",
					spec.Name, nohot, workers, err)
			}
			if metrics != nil {
				spPromos = metrics.Counter("pin.hot.promotions")
				spHoisted = metrics.Counter("pin.hot.hoisted_saves")
			}
			run := &spRun{res: spRes, events: events}
			if base == nil {
				base = run
				continue
			}
			if !reflect.DeepEqual(run.res, base.res) {
				return nil, fmt.Errorf("jitdiff %s: SuperPin results differ (nohottier=%v workers=%d):\ngot:  %+v\nwant: %+v",
					spec.Name, nohot, workers, run.res, base.res)
			}
			if !reflect.DeepEqual(run.events, base.events) {
				return nil, fmt.Errorf("jitdiff %s: SuperPin trace streams differ (nohottier=%v workers=%d: %d vs %d events)",
					spec.Name, nohot, workers, len(run.events), len(base.events))
			}
		}
	}

	return &JITDiffReport{
		Name:           spec.Name,
		Ins:            native.Ins,
		PinCycles:      hot.Time,
		SPCycles:       base.res.TotalTime,
		Promotions:     hot.Engine.HotPromotions,
		HotIns:         hot.Engine.HotIns,
		HotLinkHits:    hot.Engine.HotLinkHits,
		SPPromotions:   spPromos,
		SPHoistedSaves: spHoisted,
		Events:         len(base.events),
		Checks:         jitDiffChecks,
	}, nil
}
