package bench

import (
	"fmt"

	"superpin/internal/core"
	"superpin/internal/report"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

// This file holds the ablation studies for the design decisions the paper
// motivates qualitatively:
//
//   - the inlined two-register quick check vs. always running the full
//     signature comparison (Section 4.4's "optimize the detection
//     process"),
//   - system-call record-and-playback vs. forking a slice at every
//     syscall (Section 4.2's gcc motivation), and
//   - the Section 8 adaptive timeslice throttle vs. a fixed interval.

// AblationRow compares a benchmark's SuperPin runtime with a design
// feature on and off.
type AblationRow struct {
	Name    string
	OnSecs  float64
	OffSecs float64
	// Penalty is Off/On: how much slower the run is without the feature.
	Penalty float64
}

// resolveSpecs maps benchmark names to catalog specs, erroring
// deterministically on the first unknown name before any run starts.
func resolveSpecs(names []string) ([]workload.Spec, error) {
	specs := make([]workload.Spec, len(names))
	for i, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown benchmark %q", name)
		}
		specs[i] = spec
	}
	return specs, nil
}

// ablationRows measures every named benchmark with a feature on and off,
// fanning the independent on/off run pairs out over the worker pool.
func ablationRows(cfg Config, names []string, mutOn, mutOff func(*core.Options)) ([]AblationRow, error) {
	specs, err := resolveSpecs(names)
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (AblationRow, error) {
		on, _, err := runWith(cfg, specs[i], mutOn)
		if err != nil {
			return AblationRow{}, err
		}
		off, _, err := runWith(cfg, specs[i], mutOff)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Name: specs[i].Name, OnSecs: on, OffSecs: off, Penalty: off / on}, nil
	})
}

// runWith measures one SuperPin run with the given option mutation,
// returning total virtual seconds.
func runWith(cfg Config, spec workload.Spec, mutate func(*core.Options)) (float64, *core.Result, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return 0, nil, err
	}
	opts := core.DefaultOptions()
	opts.SliceMSec = cfg.TimesliceMSec
	opts.MaxSlices = cfg.MaxSlices
	opts.PinCost = cfg.PinCost
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	if mutate != nil {
		mutate(&opts)
	}
	tool := tools.NewIcount2(nil)
	res, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
	if err != nil {
		return 0, nil, err
	}
	if res.Err != nil {
		return 0, nil, res.Err
	}
	return cfg.Kernel.Cost.Seconds(res.TotalTime), res, nil
}

// AblationQuickCheck measures what the inlined quick check saves: each
// benchmark runs with the normal if/then detection and with
// AlwaysFullCheck (a full analysis call and complete register+stack
// comparison at every boundary-PC arrival).
func AblationQuickCheck(cfg Config) (*report.Table, []AblationRow, error) {
	cfg.normalize()
	names := cfg.Benchmarks
	if names == nil {
		names = []string{"gzip", "mcf", "mgrid", "crafty"}
	}
	rows, err := ablationRows(cfg, names, nil,
		func(o *core.Options) { o.AlwaysFullCheck = true })
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Ablation: inlined quick check vs always-full signature check (icount2, vsec)",
		"benchmark", "quick-check", "always-full", "penalty")
	for _, row := range rows {
		t.Row(row.Name, row.OnSecs, row.OffSecs, row.Penalty)
	}
	return t, rows, nil
}

// AblationSysRecs measures what record-and-playback saves on syscall-
// heavy applications: gcc and perlbmk run with the default 1000-record
// budget and with recording disabled (every system call forces a slice),
// the situation the paper calls "unacceptable" for gcc.
func AblationSysRecs(cfg Config) (*report.Table, []AblationRow, error) {
	cfg.normalize()
	names := cfg.Benchmarks
	if names == nil {
		names = []string{"gcc", "perlbmk", "vortex"}
	}
	rows, err := ablationRows(cfg, names, nil,
		func(o *core.Options) { o.MaxSysRecs = 0 })
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Ablation: syscall record-and-playback vs fork-per-syscall (icount2, vsec)",
		"benchmark", "record+playback", "fork-always", "penalty")
	for _, row := range rows {
		t.Row(row.Name, row.OnSecs, row.OffSecs, row.Penalty)
	}
	return t, rows, nil
}

// AblationSharedCache measures the Section 8 shared-code-cache idea:
// compile-heavy gcc runs with per-slice private code caches (the paper's
// shipped design) and with the shared translation cache.
func AblationSharedCache(cfg Config) (*report.Table, []AblationRow, error) {
	cfg.normalize()
	names := cfg.Benchmarks
	if names == nil {
		names = []string{"gcc", "fma3d", "eon"}
	}
	rows, err := ablationRows(cfg, names,
		func(o *core.Options) { o.SharedCodeCache = true }, nil)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Ablation: shared code cache across slices (Section 8), icount2, vsec",
		"benchmark", "shared-cache", "private-caches", "penalty")
	for _, row := range rows {
		t.Row(row.Name, row.OnSecs, row.OffSecs, row.Penalty)
	}
	return t, rows, nil
}

// ThrottleRow compares pipeline delay with and without the adaptive
// timeslice throttle.
type ThrottleRow struct {
	Name       string
	FixedPipe  float64
	FixedTotal float64
	ThrotPipe  float64
	ThrotTotal float64
}

// AblationThrottle measures the Section 8 future-work feature: shrinking
// timeslices toward the end of execution to drain the pipeline faster.
func AblationThrottle(cfg Config) (*report.Table, []ThrottleRow, error) {
	cfg.normalize()
	names := cfg.Benchmarks
	if names == nil {
		names = []string{"gzip", "mgrid", "wupwise"}
	}
	specs, err := resolveSpecs(names)
	if err != nil {
		return nil, nil, err
	}
	sec := cfg.Kernel.Cost.Seconds
	rows, err := runIndexed(cfg.Workers, len(specs), func(i int) (ThrottleRow, error) {
		spec := specs[i]
		scaled := spec.Scaled(cfg.Scale)
		prog, err := scaled.Build()
		if err != nil {
			return ThrottleRow{}, err
		}
		native, err := core.RunNative(cfg.Kernel, prog, scaled.NativeMemCost)
		if err != nil {
			return ThrottleRow{}, err
		}

		_, fixedRes, err := runWith(cfg, spec, nil)
		if err != nil {
			return ThrottleRow{}, err
		}
		_, _, _, fixedPipe := fixedRes.Breakdown(native.Time)

		expected := 1000 * sec(native.Time)
		_, throtRes, err := runWith(cfg, spec, func(o *core.Options) {
			o.ExpectedAppMSec = expected
		})
		if err != nil {
			return ThrottleRow{}, err
		}
		_, _, _, throtPipe := throtRes.Breakdown(native.Time)

		return ThrottleRow{
			Name:       spec.Name,
			FixedPipe:  sec(fixedPipe),
			FixedTotal: sec(fixedRes.TotalTime),
			ThrotPipe:  sec(throtPipe),
			ThrotTotal: sec(throtRes.TotalTime),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Ablation: adaptive timeslice throttle (Section 8), icount2, vsec",
		"benchmark", "fixed-pipeline", "fixed-total", "throttled-pipeline", "throttled-total")
	for _, row := range rows {
		t.Row(row.Name, row.FixedPipe, row.FixedTotal, row.ThrotPipe, row.ThrotTotal)
	}
	return t, rows, nil
}
