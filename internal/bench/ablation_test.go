package bench

import "testing"

func ablationConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.TimesliceMSec = 200
	return cfg
}

func TestAblationQuickCheck(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"gzip", "mgrid"}
	_, rows, err := AblationQuickCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Detection without the inlined quick check pays a full analysis
		// call at every boundary-PC arrival, so the run must be slower —
		// but only modestly (detection is a small share of slice work).
		if r.Penalty <= 1.0 {
			t.Fatalf("%s: always-full not slower (%.3f)", r.Name, r.Penalty)
		}
		if r.Penalty > 2.0 {
			t.Fatalf("%s: always-full penalty %.2fx implausibly large", r.Name, r.Penalty)
		}
	}
}

func TestAblationSysRecs(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"gcc"}
	_, rows, err := AblationSysRecs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// gcc allocates constantly; forking at every syscall must hurt
	// substantially (the paper's motivation for record-and-playback).
	if rows[0].Penalty < 1.1 {
		t.Fatalf("gcc fork-per-syscall penalty only %.2fx", rows[0].Penalty)
	}
}

func TestAblationSharedCache(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"gcc"}
	_, rows, err := AblationSharedCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// gcc is compilation-limited; sharing translations across slices
	// must be a clear win.
	if rows[0].Penalty < 1.15 {
		t.Fatalf("shared cache won only %.2fx on gcc", rows[0].Penalty)
	}
}

func TestAblationThrottle(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"mgrid"}
	_, rows, err := AblationThrottle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ThrotPipe >= r.FixedPipe {
		t.Fatalf("throttle did not shrink pipeline delay: %.2f -> %.2f",
			r.FixedPipe, r.ThrotPipe)
	}
}
