package bench

import "testing"

// TestRunSADiff is the static-analysis determinism check at the harness
// level: full Pin and SuperPin runs with the load-time analysis on and
// off must agree on every virtual-cycle-visible quantity, while the SA
// runs actually exercise the machinery (shared sealing, narrowed
// predicate saves).
func TestRunSADiff(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "gcc", "mgrid"}
	for _, kind := range []ToolKind{Icount1, Icount2} {
		reports, err := RunSADiff(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(reports) != 3 {
			t.Fatalf("%s: got %d reports", kind, len(reports))
		}
		for _, r := range reports {
			if r.Ins == 0 || r.PinCycles == 0 || r.SPCycles == 0 || r.Events == 0 {
				t.Fatalf("%s/%s: empty report %+v", r.Name, kind, r)
			}
			if kind == Icount2 && r.SharedRuns == 0 {
				t.Errorf("%s/%s: SA run sealed no shared superblock runs", r.Name, kind)
			}
			// SuperPin's boundary detection uses inlined predicates, and
			// runSADiffOne's serial Pin run shares the same engine code;
			// the liveness narrowing must never widen the save set
			// (asserted inside the runner) and the reference must spill
			// something wherever predicates exist.
			if r.SavedRegsSA > r.SavedRegsRef {
				t.Errorf("%s/%s: SA saved more regs (%d) than reference (%d)",
					r.Name, kind, r.SavedRegsSA, r.SavedRegsRef)
			}
		}
	}
}
