package bench

import (
	"fmt"
	"os"
	"time"

	"superpin/internal/artifact"
	"superpin/internal/core"
	"superpin/internal/kernel"
)

// WarmstartResult is the -warmstart sweep's measurement: wall-clock of
// a serial-Pin pass over the configured benchmarks run cold (no store),
// warm (second pass on the in-process store the cold pass populated)
// and disk-warm (fresh store hydrated from a cache directory), plus the
// time-to-first-promotion each mode achieved. Virtual cycles are
// asserted identical across all three passes; only host time and
// host-side promotion timing change.
type WarmstartResult struct {
	ColdSec float64 `json:"cold_sec"`
	WarmSec float64 `json:"warm_sec"`
	DiskSec float64 `json:"disk_sec"`
	// Speedup is ColdSec/WarmSec, the in-process warm-start gain.
	Speedup float64 `json:"speedup"`
	// WarmPromotions totals the warm pass's compile-time promotions.
	WarmPromotions uint64 `json:"warm_promotions"`
	// ColdTTFP and WarmTTFP sum each pass's first-promotion dispatch
	// counts over the benchmarks that promoted at all — a lower warm sum
	// means the hot tier engaged earlier.
	ColdTTFP uint64 `json:"ttfp_cold_dispatches"`
	WarmTTFP uint64 `json:"ttfp_warm_dispatches"`
}

// RunWarmstart measures the artifact cache's host-side effect: three
// timed serial-Pin (icount1) passes over the configured benchmarks —
// cold, warm on the populated store, disk-warm on a store hydrated from
// a directory the warm store persisted into. Single-core honest: the
// passes run back to back with no host fan-out.
func RunWarmstart(cfg Config) (*WarmstartResult, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	progs := make([]scaleProg, len(specs))
	for i, spec := range specs {
		spec = spec.Scaled(cfg.Scale)
		p, err := spec.Build()
		if err != nil {
			return nil, err
		}
		progs[i] = scaleProg{spec: spec, prog: p}
	}

	dir, err := os.MkdirTemp("", "warmstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := artifact.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	hydrated, err := artifact.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}

	res := &WarmstartResult{}
	var refCycles kernel.Cycles
	pass := func(label string, store *artifact.Store, elapsed *float64, ttfp *uint64, promos *uint64) error {
		var total kernel.Cycles
		start := time.Now()
		for _, pr := range progs {
			cost := cfg.PinCost
			cost.MemSurcharge = pr.spec.PinMemCost
			tool := newTool(Icount1)
			r, err := core.RunPinCached(cfg.Kernel, pr.prog, tool.Factory(), cost, 0, store)
			if err != nil {
				return fmt.Errorf("warmstart %s (%s): %w", pr.spec.Name, label, err)
			}
			total += r.Time
			if r.Engine.HotPromotions > 0 && ttfp != nil {
				*ttfp += r.Engine.FirstPromoDispatch
			}
			if promos != nil {
				*promos += r.Engine.WarmPromotions
			}
		}
		*elapsed = time.Since(start).Seconds()
		if refCycles == 0 {
			refCycles = total
		} else if total != refCycles {
			return fmt.Errorf("warmstart: virtual cycles diverged in the %s pass: %d vs %d",
				label, total, refCycles)
		}
		return nil
	}

	// Cold pass runs on the disk store with an empty directory: every
	// artifact misses, is computed, and persists — so the pass is cold
	// (nothing to read) while populating both warm paths at once.
	if err := pass("cold", store, &res.ColdSec, &res.ColdTTFP, nil); err != nil {
		return nil, err
	}
	if err := pass("warm", store, &res.WarmSec, &res.WarmTTFP, &res.WarmPromotions); err != nil {
		return nil, err
	}
	if err := pass("disk-warm", hydrated, &res.DiskSec, nil, nil); err != nil {
		return nil, err
	}
	if res.WarmSec > 0 {
		res.Speedup = res.ColdSec / res.WarmSec
	}
	return res, nil
}
