package bench

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// parallelConfig is a fast configuration for determinism checks: a small
// subset at a small scale, so the suite runs many times per test binary.
func parallelConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.04
	cfg.TimesliceMSec = 80
	cfg.Benchmarks = []string{"gzip", "mcf", "mgrid", "swim"}
	return cfg
}

// renderResults flattens every externally-meaningful Result field into a
// byte-comparable string.
func renderResults(rs []*Result) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s %d %d %d %d %.9f %.9f %.9f\n",
			r.Name, r.Native, r.Pin, r.SP, r.Ins, r.PinPct, r.SPPct, r.Speedup)
	}
	return s
}

// TestRunSuiteParallelDeterminism is the harness's central guarantee:
// RunSuite with 8 workers produces byte-identical Results — names, cycle
// counts, instruction counts, percentages and speedups — to a serial run.
func TestRunSuiteParallelDeterminism(t *testing.T) {
	serialCfg := parallelConfig()
	serialCfg.Workers = 1
	serial, err := RunSuite(serialCfg, Icount1)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := parallelConfig()
	parCfg.Workers = 8
	par, err := RunSuite(parCfg, Icount1)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := renderResults(par), renderResults(serial); got != want {
		t.Fatalf("parallel suite diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	// The full Detail trees must agree too, not just the headline numbers.
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Fatalf("%s: Result structs differ between serial and parallel", serial[i].Name)
		}
	}
}

// TestFig7ParallelDeterminism checks a sweep-style runner the same way.
func TestFig7ParallelDeterminism(t *testing.T) {
	mk := func(workers int) string {
		cfg := parallelConfig()
		cfg.Workers = workers
		tbl, rows, err := Fig7(cfg, []int{1, 4, 8})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v\n%+v", tbl, rows)
	}
	if serial, par := mk(1), mk(8); serial != par {
		t.Fatalf("Fig7 diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}

func TestRunIndexedOrderAndBounds(t *testing.T) {
	var inFlight, maxInFlight atomic.Int32
	out, err := runIndexed(3, 64, func(i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := maxInFlight.Load()
			if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
				break
			}
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if m := maxInFlight.Load(); m > 3 {
		t.Fatalf("observed %d concurrent tasks, bound is 3", m)
	}
}

func TestRunIndexedFailFast(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := runIndexed(2, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n > 16 {
		t.Fatalf("%d tasks ran after the failure; fail-fast did not stop dispatch", n)
	}
}

func TestRunIndexedSerialPath(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	_, err := runIndexed(1, 10, func(i int) (int, error) {
		ran++
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || ran != 4 {
		t.Fatalf("err = %v after %d calls, want boom after 4", err, ran)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(5); got != 5 {
		t.Fatalf("explicit workers = %d, want 5", got)
	}
	t.Setenv(WorkersEnv, "3")
	if got := resolveWorkers(0); got != 3 {
		t.Fatalf("env workers = %d, want 3", got)
	}
	t.Setenv(WorkersEnv, "junk")
	if got := resolveWorkers(0); got < 1 {
		t.Fatalf("fallback workers = %d, want >= 1", got)
	}
}
