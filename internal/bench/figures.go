package bench

import (
	"fmt"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/report"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

// Fig3 reproduces Figure 3: icount1 Pin and SuperPin performance relative
// to native (percent; 100 = native), per benchmark plus AVG.
func Fig3(cfg Config) (*report.Table, []*Result, error) {
	rs, err := RunSuite(cfg, Icount1)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 3: icount1 runtime relative to native (%)",
		"benchmark", "Pin%", "SuperPin%")
	for _, r := range rs {
		t.Row(r.Name, r.PinPct, r.SPPct)
	}
	pinAvg, spAvg, _ := Averages(rs)
	t.Row("AVG", pinAvg, spAvg)
	return t, rs, nil
}

// Fig4 reproduces Figure 4: icount1 SuperPin speedup over Pin. It reuses
// the Figure 3 measurements when provided (the paper derives both from
// the same runs).
func Fig4(cfg Config, fig3 []*Result) (*report.Table, []*Result, error) {
	rs := fig3
	if rs == nil {
		var err error
		rs, err = RunSuite(cfg, Icount1)
		if err != nil {
			return nil, nil, err
		}
	}
	t := report.New("Figure 4: icount1 SuperPin speedup over Pin (x)",
		"benchmark", "speedup")
	for _, r := range rs {
		t.Row(r.Name, r.Speedup)
	}
	_, _, avg := Averages(rs)
	t.Row("AVG", avg)
	return t, rs, nil
}

// Fig5 reproduces Figure 5: icount2 Pin and SuperPin performance relative
// to native.
func Fig5(cfg Config) (*report.Table, []*Result, error) {
	rs, err := RunSuite(cfg, Icount2)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 5: icount2 runtime relative to native (%)",
		"benchmark", "Pin%", "SuperPin%")
	for _, r := range rs {
		t.Row(r.Name, r.PinPct, r.SPPct)
	}
	pinAvg, spAvg, _ := Averages(rs)
	t.Row("AVG", pinAvg, spAvg)
	return t, rs, nil
}

// Fig6Row is one bar of Figure 6, in virtual seconds.
type Fig6Row struct {
	TimesliceMSec float64
	Native        float64
	ForkOthers    float64
	Sleep         float64
	Pipeline      float64
	Total         float64
}

// Fig6 reproduces Figure 6: gcc (icount1) runtime versus timeslice
// interval, decomposed into native time, fork & other overhead, master
// sleep, and pipeline delay. sweep lists the -spmsec values; nil uses the
// paper's 0.5/1/2/4-second sweep scaled to the harness timeslice.
func Fig6(cfg Config, sweep []float64) (*report.Table, []Fig6Row, error) {
	cfg.normalize()
	if sweep == nil {
		base := cfg.TimesliceMSec
		sweep = []float64{base / 4, base / 2, base, base * 2}
	}
	spec, ok := workload.ByName("gcc")
	if !ok {
		return nil, nil, fmt.Errorf("bench: gcc missing from catalog")
	}
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, nil, err
	}

	sec := cfg.Kernel.Cost.Seconds
	rows, err := runIndexed(cfg.Workers, len(sweep), func(i int) (Fig6Row, error) {
		msec := sweep[i]
		opts := core.DefaultOptions()
		opts.SliceMSec = msec
		opts.MaxSlices = cfg.MaxSlices
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.NativeMemSurcharge = spec.NativeMemCost
		tool := tools.NewIcount1(nil)
		res, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
		if err != nil {
			return Fig6Row{}, err
		}
		if res.Err != nil {
			return Fig6Row{}, fmt.Errorf("bench: fig6 at %.0fms: %w", msec, res.Err)
		}
		nat, fork, sleep, pipe := res.Breakdown(native.Time)
		return Fig6Row{
			TimesliceMSec: msec,
			Native:        sec(nat),
			ForkOthers:    sec(fork),
			Sleep:         sec(sleep),
			Pipeline:      sec(pipe),
			Total:         sec(res.TotalTime),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 6: gcc runtime vs timeslice interval (virtual seconds)",
		"timeslice(ms)", "native", "fork&others", "sleep", "pipeline", "total")
	for _, row := range rows {
		t.Row(fmt.Sprintf("%.0f", row.TimesliceMSec), row.Native, row.ForkOthers, row.Sleep, row.Pipeline, row.Total)
	}
	return t, rows, nil
}

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	MaxSlices int
	Seconds   float64
}

// Fig7 reproduces Figure 7: gcc (icount1) runtime versus the maximum
// number of running slices on the 8-way hyperthreaded machine (16 virtual
// processors). sweep lists the -spmp values; nil uses the paper's
// 1/2/4/8/12/16.
func Fig7(cfg Config, sweep []int) (*report.Table, []Fig7Row, error) {
	cfg.normalize()
	if sweep == nil {
		sweep = []int{1, 2, 4, 8, 12, 16}
	}
	spec, ok := workload.ByName("gcc")
	if !ok {
		return nil, nil, fmt.Errorf("bench: gcc missing from catalog")
	}
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}

	sec := cfg.Kernel.Cost.Seconds
	rows, err := runIndexed(cfg.Workers, len(sweep), func(i int) (Fig7Row, error) {
		mp := sweep[i]
		opts := core.DefaultOptions()
		opts.SliceMSec = cfg.TimesliceMSec
		opts.MaxSlices = mp
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.NativeMemSurcharge = spec.NativeMemCost
		tool := tools.NewIcount1(nil)
		res, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
		if err != nil {
			return Fig7Row{}, err
		}
		if res.Err != nil {
			return Fig7Row{}, fmt.Errorf("bench: fig7 at %d slices: %w", mp, res.Err)
		}
		return Fig7Row{MaxSlices: mp, Seconds: sec(res.TotalTime)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 7: gcc runtime vs max running slices (virtual seconds)",
		"max-slices", "runtime")
	for _, row := range rows {
		t.Row(row.MaxSlices, row.Seconds)
	}
	return t, rows, nil
}

// SigStatsRow summarizes one benchmark's signature-detection behavior.
type SigStatsRow struct {
	Name         string
	Quick        uint64
	Full         uint64
	Stack        uint64
	FullPerQuick float64
	Defaults     int
}

// SigStats reproduces the Section 4.4 statistics: how often the inlined
// quick detector triggers the full architectural check (paper: ~2%), and
// how rarely stack checks run more than once per boundary.
func SigStats(cfg Config) (*report.Table, []SigStatsRow, error) {
	cfg.normalize()
	names := cfg.Benchmarks
	if names == nil {
		names = []string{"gzip", "mcf", "crafty", "mgrid", "gcc"}
	}
	// Resolve names serially so an unknown benchmark errors
	// deterministically before any run starts.
	specs := make([]workload.Spec, len(names))
	for i, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("bench: unknown benchmark %q", name)
		}
		specs[i] = spec.Scaled(cfg.Scale)
	}
	rows, err := runIndexed(cfg.Workers, len(specs), func(i int) (SigStatsRow, error) {
		spec := specs[i]
		prog, err := spec.Build()
		if err != nil {
			return SigStatsRow{}, err
		}
		opts := core.DefaultOptions()
		opts.SliceMSec = cfg.TimesliceMSec
		opts.MaxSlices = cfg.MaxSlices
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.NativeMemSurcharge = spec.NativeMemCost
		tool := tools.NewIcount2(nil)
		res, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
		if err != nil {
			return SigStatsRow{}, err
		}
		if res.Err != nil {
			return SigStatsRow{}, fmt.Errorf("bench: sigstats %s: %w", spec.Name, res.Err)
		}
		st := res.Stats
		ratio := 0.0
		if st.QuickChecks > 0 {
			ratio = 100 * float64(st.FullChecks) / float64(st.QuickChecks)
		}
		return SigStatsRow{
			Name: spec.Name, Quick: st.QuickChecks, Full: st.FullChecks,
			Stack: st.StackChecks, FullPerQuick: ratio, Defaults: st.RegPickDefaults,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Section 4.4: signature detection statistics (icount2 runs)",
		"benchmark", "quick-checks", "full-checks", "stack-checks", "full/quick%", "defaulted-regs")
	for _, r := range rows {
		t.Row(r.Name, r.Quick, r.Full, r.Stack, r.FullPerQuick, r.Defaults)
	}
	return t, rows, nil
}

// Seconds converts cycles to virtual seconds under cfg's cost model.
func (c Config) Seconds(cy kernel.Cycles) float64 {
	return c.Kernel.Cost.Seconds(cy)
}
