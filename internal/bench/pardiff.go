package bench

import (
	"fmt"
	"reflect"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// ParDiffWorkers are the host worker counts the differential runner
// sweeps: 1 (the serial reference) plus three parallel configurations.
var ParDiffWorkers = []int{1, 2, 4, 8}

// ParDiffReport is one benchmark's host-parallelism determinism outcome:
// the benchmark ran under SuperPin at every worker count in
// ParDiffWorkers, twice (icount1 with the guest profiler attached,
// icount2 with the shared code cache), and every virtual-cycle-visible
// quantity was byte-identical to the serial reference.
type ParDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// Icount1Cycles and Icount2Cycles are the (worker-count-independent)
	// SuperPin runtimes of the two tool modes.
	Icount1Cycles kernel.Cycles
	Icount2Cycles kernel.Cycles
	// Slices is the icount1 run's slice count (identical at every worker
	// count), and Events its trace length.
	Slices int
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// parDiffChecks are the equalities the differential runner asserts, for
// human-readable output.
var parDiffChecks = []string{
	"SuperPin result deep-equal at 1/2/4/8 workers (cycles, slices, stats, stdout, profile)",
	"trace event streams byte-identical at every worker count",
	"breakdown quadruple identical at every worker count",
	"tool totals equal the native instruction count in every run",
	"trace invariants hold at every worker count",
}

// RunParDiff runs each configured benchmark under SuperPin at 1, 2, 4
// and 8 host workers — once per tool mode: icount1 with the virtual-time
// profiler sampling (ProfInterval 997), icount2 with the shared code
// cache — and verifies that host parallelism changed nothing the virtual
// machine can observe: the full core.Result (slice schedule, statistics,
// merged profile, stdout), the trace event stream and the Figure 6
// breakdown must be byte-identical to the single-worker reference.
func RunParDiff(cfg Config) ([]*ParDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*ParDiffReport, error) {
		return runParDiffOne(cfg, specs[i])
	})
}

// parRun is one worker count's measurement set.
type parRun struct {
	sp     *core.Result
	events []obs.Event
}

func runParDiffOne(cfg Config, spec workload.Spec) (*ParDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("pardiff %s: native: %w", spec.Name, err)
	}

	report := &ParDiffReport{Name: spec.Name, Ins: native.Ins, Checks: parDiffChecks}
	for _, kind := range []ToolKind{Icount1, Icount2} {
		var ref parRun
		for _, w := range ParDiffWorkers {
			opts := core.DefaultOptions()
			opts.SliceMSec = cfg.TimesliceMSec
			opts.MaxSlices = cfg.MaxSlices
			opts.PinCost = cfg.PinCost
			opts.PinCost.MemSurcharge = spec.SliceMemCost
			opts.NativeMemSurcharge = spec.NativeMemCost
			opts.Workers = w
			opts.Trace = obs.NewTracer()
			// Each tool mode stresses a different cross-worker surface:
			// icount1 merges the profiler's per-slice sample streams,
			// icount2 shares one barrier-published trace cache.
			if kind == Icount1 {
				opts.ProfInterval = 997
			} else {
				opts.SharedCodeCache = true
			}
			tool := newTool(kind)
			spRes, err := core.Run(cfg.Kernel, prog, tool.Factory(), opts)
			if err != nil {
				return nil, fmt.Errorf("pardiff %s: superpin (%s, workers=%d): %w", spec.Name, kind, w, err)
			}
			if spRes.Err != nil {
				return nil, fmt.Errorf("pardiff %s: superpin (%s, workers=%d): %w", spec.Name, kind, w, spRes.Err)
			}
			if tool.Total() != native.Ins {
				return nil, fmt.Errorf("pardiff %s: superpin (%s, workers=%d) counted %d, native executed %d",
					spec.Name, kind, w, tool.Total(), native.Ins)
			}
			events := opts.Trace.Events()
			if err := VerifyTrace(events, spRes, native.Time); err != nil {
				return nil, fmt.Errorf("pardiff %s (%s, workers=%d): %w", spec.Name, kind, w, err)
			}
			run := parRun{sp: spRes, events: events}
			if w == ParDiffWorkers[0] {
				ref = run
				continue
			}

			// The whole Result — slice schedule, stats, merged profile,
			// stdout — must be deep-equal, as must the trace streams.
			if !reflect.DeepEqual(run.sp, ref.sp) {
				return nil, fmt.Errorf("pardiff %s (%s): results differ at %d workers:\nserial:   %+v\nparallel: %+v",
					spec.Name, kind, w, ref.sp, run.sp)
			}
			if !reflect.DeepEqual(run.events, ref.events) {
				return nil, fmt.Errorf("pardiff %s (%s): trace streams differ at %d workers (%d vs %d events)",
					spec.Name, kind, w, len(ref.events), len(run.events))
			}

			// The breakdown quadruple is derived from Result fields, but
			// compare it explicitly: it is the paper-facing quantity.
			rn, rf, rs, rp := ref.sp.Breakdown(native.Time)
			wn, wf, ws, wp := run.sp.Breakdown(native.Time)
			if rn != wn || rf != wf || rs != ws || rp != wp {
				return nil, fmt.Errorf("pardiff %s (%s): breakdowns differ: serial (%d %d %d %d) vs %d workers (%d %d %d %d)",
					spec.Name, kind, rn, rf, rs, rp, w, wn, wf, ws, wp)
			}
		}
		if kind == Icount1 {
			report.Icount1Cycles = ref.sp.TotalTime
			report.Slices = len(ref.sp.Slices)
			report.Events = len(ref.events)
		} else {
			report.Icount2Cycles = ref.sp.TotalTime
		}
	}
	return report, nil
}
