package bench

import (
	"fmt"
	"time"

	"superpin/internal/asm"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/workload"
)

// ScalePoint is one host-parallelism measurement: the wall-clock time of
// a serial sweep of SuperPin-only runs over the configured benchmarks at
// the given per-run worker count, and the speedup relative to the first
// point of the sweep.
type ScalePoint struct {
	Workers    int     `json:"workers"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Speedup    float64 `json:"speedup"`
}

// RunScaling measures wall-clock versus per-run worker count: for each
// entry of workers it runs SuperPin (icount1) over every configured
// benchmark back to back — host fan-out deliberately disabled, so the
// slice-level worker pool is the only parallelism — and records the
// sweep's wall-clock time. Virtual results must be identical at every
// worker count (the summed TotalTime is asserted); only the host time
// may change.
func RunScaling(cfg Config, workers []int) ([]ScalePoint, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}

	// Build every program once, outside the timed region.
	progs := make([]scaleProg, len(specs))
	for i, spec := range specs {
		spec = spec.Scaled(cfg.Scale)
		p, err := spec.Build()
		if err != nil {
			return nil, err
		}
		progs[i] = scaleProg{spec: spec, prog: p}
	}

	points := make([]ScalePoint, 0, len(workers))
	var refCycles kernel.Cycles
	for i, w := range workers {
		var total kernel.Cycles
		start := time.Now()
		for _, pr := range progs {
			opts := core.DefaultOptions()
			opts.SliceMSec = cfg.TimesliceMSec
			opts.MaxSlices = cfg.MaxSlices
			opts.PinCost = cfg.PinCost
			opts.PinCost.MemSurcharge = pr.spec.SliceMemCost
			opts.NativeMemSurcharge = pr.spec.NativeMemCost
			opts.Workers = w
			tool := newTool(Icount1)
			res, err := core.Run(cfg.Kernel, pr.prog, tool.Factory(), opts)
			if err != nil {
				return nil, fmt.Errorf("scaling %s (workers=%d): %w", pr.spec.Name, w, err)
			}
			if res.Err != nil {
				return nil, fmt.Errorf("scaling %s (workers=%d): %w", pr.spec.Name, w, res.Err)
			}
			total += res.TotalTime
		}
		elapsed := time.Since(start).Seconds()
		if i == 0 {
			refCycles = total
		} else if total != refCycles {
			return nil, fmt.Errorf("scaling: virtual cycles diverged at %d workers: %d vs %d",
				w, total, refCycles)
		}
		pt := ScalePoint{Workers: w, ElapsedSec: elapsed}
		if base := points; len(base) > 0 && elapsed > 0 {
			pt.Speedup = base[0].ElapsedSec / elapsed
		} else {
			pt.Speedup = 1
		}
		points = append(points, pt)
	}
	return points, nil
}

// scaleProg pairs a scaled spec with its built program.
type scaleProg struct {
	spec workload.Spec
	prog *asm.Program
}
