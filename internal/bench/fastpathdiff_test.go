package bench

import "testing"

// TestRunFastPathDiff is the engine-fast-path determinism check at the
// harness level: full Pin and SuperPin runs with the dispatch fast paths
// on and off must agree on every virtual-cycle-visible quantity, and the
// fast-path runs must actually exercise the machinery (link hits,
// superblock instructions).
func TestRunFastPathDiff(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "gcc", "mgrid"}
	for _, kind := range []ToolKind{Icount1, Icount2} {
		reports, err := RunFastPathDiff(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(reports) != 3 {
			t.Fatalf("%s: got %d reports", kind, len(reports))
		}
		for _, r := range reports {
			if r.Ins == 0 || r.PinCycles == 0 || r.SPCycles == 0 || r.Events == 0 {
				t.Fatalf("%s/%s: empty report %+v", r.Name, kind, r)
			}
			// Trace linking engages under both tools; superblocks only
			// where some instructions carry no calls (icount2 instruments
			// block heads, leaving tails bare — icount1 covers everything).
			if r.LinkHits == 0 {
				t.Errorf("%s/%s: fast-path run recorded no link hits", r.Name, kind)
			}
			if kind == Icount2 && r.SuperblockIns == 0 {
				t.Errorf("%s/%s: fast-path run executed no superblock instructions", r.Name, kind)
			}
			if kind == Icount1 && r.SuperblockIns != 0 {
				t.Errorf("%s/%s: icount1 instruments every instruction but %d ran in superblocks",
					r.Name, kind, r.SuperblockIns)
			}
		}
	}
}

// TestRunBenchmarkNoFastPath: the harness-level escape hatch disables the
// fast paths in every run and zeroes the host counters, while the
// measured virtual cycles stay identical to a default run.
func TestRunBenchmarkNoFastPath(t *testing.T) {
	cfg := obsTestConfig()
	spec := mustSpec(t, "gzip")
	fast, err := RunBenchmark(cfg, spec, Icount2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoFastPath = true
	slow, err := RunBenchmark(cfg, spec, Icount2)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Native != slow.Native || fast.Pin != slow.Pin || fast.SP != slow.SP || fast.Ins != slow.Ins {
		t.Fatalf("virtual results differ: fast %+v vs nofast %+v", fast, slow)
	}
	if fast.Host.LinkHits == 0 || fast.Host.SuperblockIns == 0 {
		t.Fatalf("default run exercised no fast-path machinery: %+v", fast.Host)
	}
	if slow.Host.LinkHits != 0 || slow.Host.LinkMisses != 0 || slow.Host.SuperblockIns != 0 {
		t.Fatalf("NoFastPath run reported fast-path activity: %+v", slow.Host)
	}
	if fast.Host.Dispatches != slow.Host.Dispatches {
		t.Fatalf("dispatch counts differ: %d vs %d", fast.Host.Dispatches, slow.Host.Dispatches)
	}
}
