package bench

import (
	"fmt"
	"reflect"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// SADiffReport is one benchmark's static-analysis differential outcome:
// the benchmark ran with the load-time static analysis enabled and
// disabled (-nosa), and every virtual-cycle-visible quantity was
// identical.
type SADiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// PinCycles and SPCycles are the (mode-independent) serial Pin and
	// SuperPin runtimes.
	PinCycles kernel.Cycles
	SPCycles  kernel.Cycles
	// SharedRuns and PrivateRuns report how many superblock runs the
	// SA-enabled serial Pin run sealed over the analysis's shared
	// predecode versus a private copy.
	SharedRuns  uint64
	PrivateRuns uint64
	// SavedRegsSA and SavedRegsRef are the registers spilled around
	// inlined predicates with the analysis on (liveness-narrowed) and off
	// (full register file), summed over the serial Pin run.
	SavedRegsSA  uint64
	SavedRegsRef uint64
	// Events is the (identical) SuperPin trace length.
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// saDiffChecks are the equalities the differential runner asserts, for
// human-readable output.
var saDiffChecks = []string{
	"serial Pin result identical (cycles, ins, exit, stdout, stats modulo host-only counters)",
	"SuperPin result deep-equal (slices, stats, breakdown, stdout)",
	"SuperPin trace event streams identical",
	"trace invariants hold in both modes",
	"liveness never widens the predicate save/restore set",
}

// RunSADiff runs each configured benchmark twice — static analysis on
// and off — under both serial Pin and SuperPin, and verifies that the
// analysis changed nothing the virtual machine can observe: cycle
// counts, instruction counts, exit codes, stdout, slice schedules and
// trace event streams must all be byte-identical. Only the host-side
// counters (predicate save/restore registers, shared/private sealing
// runs) may differ, and the SA run must actually have exercised the
// shared predecode.
func RunSADiff(cfg Config, kind ToolKind) ([]*SADiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*SADiffReport, error) {
		return runSADiffOne(cfg, specs[i], kind)
	})
}

func runSADiffOne(cfg Config, spec workload.Spec, kind ToolKind) (*SADiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("sadiff %s: native: %w", spec.Name, err)
	}

	var modes [2]fastPathRun
	for m, nosa := range []bool{false, true} {
		pinCost := cfg.PinCost
		pinCost.MemSurcharge = spec.PinMemCost
		pinCost.NoSA = nosa
		pinTool := newTool(kind)
		pinRes, err := core.RunPin(cfg.Kernel, prog, pinTool.Factory(), pinCost)
		if err != nil {
			return nil, fmt.Errorf("sadiff %s: pin (nosa=%v): %w", spec.Name, nosa, err)
		}
		if pinTool.Total() != native.Ins {
			return nil, fmt.Errorf("sadiff %s: pin (nosa=%v) counted %d, native executed %d",
				spec.Name, nosa, pinTool.Total(), native.Ins)
		}

		opts := core.DefaultOptions()
		opts.SliceMSec = cfg.TimesliceMSec
		opts.MaxSlices = cfg.MaxSlices
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.PinCost.NoSA = nosa
		opts.NativeMemSurcharge = spec.NativeMemCost
		opts.Trace = obs.NewTracer()
		spTool := newTool(kind)
		spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
		if err != nil {
			return nil, fmt.Errorf("sadiff %s: superpin (nosa=%v): %w", spec.Name, nosa, err)
		}
		if spRes.Err != nil {
			return nil, fmt.Errorf("sadiff %s: superpin (nosa=%v): %w", spec.Name, nosa, spRes.Err)
		}
		if spTool.Total() != native.Ins {
			return nil, fmt.Errorf("sadiff %s: superpin (nosa=%v) counted %d, native executed %d",
				spec.Name, nosa, spTool.Total(), native.Ins)
		}
		events := opts.Trace.Events()
		if err := VerifyTrace(events, spRes, native.Time); err != nil {
			return nil, fmt.Errorf("sadiff %s (nosa=%v): %w", spec.Name, nosa, err)
		}
		modes[m] = fastPathRun{pin: pinRes, sp: spRes, events: events}
	}
	sa, ref := modes[0], modes[1]

	// Serial Pin: everything but the SA host-side counters must match.
	// The dispatch fast-path counters (SuperblockIns, Link*) stay
	// compared: the analysis may change what backs a superblock's
	// predecode, never the run structure itself. HotIns and HoistedSaves
	// are SA-dependent (register caching and spill hoisting both require
	// the analysis), so they are normalized; HotPromotions and
	// HotLinkHits are driven by dispatch counts alone and stay compared.
	saPin, refPin := *sa.pin, *ref.pin
	saPin.Engine.PredSaveRegs, refPin.Engine.PredSaveRegs = 0, 0
	saPin.Engine.SASharedRuns, refPin.Engine.SASharedRuns = 0, 0
	saPin.Engine.SAPrivateRuns, refPin.Engine.SAPrivateRuns = 0, 0
	saPin.Engine.HotIns, refPin.Engine.HotIns = 0, 0
	saPin.Engine.HoistedSaves, refPin.Engine.HoistedSaves = 0, 0
	if !reflect.DeepEqual(saPin, refPin) {
		return nil, fmt.Errorf("sadiff %s: serial Pin results differ:\nsa:   %+v\nnosa: %+v",
			spec.Name, saPin, refPin)
	}
	if ref.pin.Engine.SASharedRuns != 0 || ref.pin.Engine.SAPrivateRuns != 0 {
		return nil, fmt.Errorf("sadiff %s: -nosa run reported SA sealing activity: shared=%d private=%d",
			spec.Name, ref.pin.Engine.SASharedRuns, ref.pin.Engine.SAPrivateRuns)
	}
	// icount1 instruments every instruction, so there are no call-free
	// runs to seal; only block-granularity tools exercise the shared
	// predecode (and only with the fast path on).
	if !cfg.NoFastPath && kind == Icount2 && sa.pin.Engine.SASharedRuns == 0 {
		return nil, fmt.Errorf("sadiff %s: SA run never sealed a superblock over the shared predecode",
			spec.Name)
	}
	if sa.pin.Engine.PredSaveRegs > ref.pin.Engine.PredSaveRegs {
		return nil, fmt.Errorf("sadiff %s: liveness widened the predicate save set: sa=%d nosa=%d",
			spec.Name, sa.pin.Engine.PredSaveRegs, ref.pin.Engine.PredSaveRegs)
	}

	// SuperPin: the whole Result — slice schedule, stats, stdout — must be
	// deep-equal, as must the trace event streams. core.Result carries no
	// pin engine stats, so the SA host counters cannot leak in here.
	if !reflect.DeepEqual(sa.sp, ref.sp) {
		return nil, fmt.Errorf("sadiff %s: SuperPin results differ:\nsa:   %+v\nnosa: %+v",
			spec.Name, sa.sp, ref.sp)
	}
	if !reflect.DeepEqual(sa.events, ref.events) {
		return nil, fmt.Errorf("sadiff %s: SuperPin trace streams differ (%d vs %d events)",
			spec.Name, len(sa.events), len(ref.events))
	}

	// The breakdown quadruple is derived from Result fields, but compare
	// it explicitly: it is the paper-facing quantity.
	sn, sf, ss, sp := sa.sp.Breakdown(native.Time)
	rn, rf, rs, rp := ref.sp.Breakdown(native.Time)
	if sn != rn || sf != rf || ss != rs || sp != rp {
		return nil, fmt.Errorf("sadiff %s: breakdowns differ: sa (%d %d %d %d) vs nosa (%d %d %d %d)",
			spec.Name, sn, sf, ss, sp, rn, rf, rs, rp)
	}

	return &SADiffReport{
		Name:         spec.Name,
		Ins:          native.Ins,
		PinCycles:    sa.pin.Time,
		SPCycles:     sa.sp.TotalTime,
		SharedRuns:   sa.pin.Engine.SASharedRuns,
		PrivateRuns:  sa.pin.Engine.SAPrivateRuns,
		SavedRegsSA:  sa.pin.Engine.PredSaveRegs,
		SavedRegsRef: ref.pin.Engine.PredSaveRegs,
		Events:       len(sa.events),
		Checks:       saDiffChecks,
	}, nil
}
