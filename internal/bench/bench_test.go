package bench

import (
	"strings"
	"testing"
)

// testConfig runs a reduced-scale suite over a representative subset so
// the shape assertions stay fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	// Scale-equivalent of the paper's 2-second timeslices (see
	// cmd/spbench's default): 2000 ms * 0.1.
	cfg.TimesliceMSec = 200
	cfg.Benchmarks = []string{"gcc", "mcf", "gzip", "crafty", "mgrid", "swim"}
	return cfg
}

// TestFig3Shape checks the paper's Figure 3 claims: traditional Pin with
// icount1 is roughly a 12X slowdown on average, and SuperPin runs the
// same instrumentation several times closer to native.
func TestFig3Shape(t *testing.T) {
	tbl, rs, err := Fig3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != len(rs)+1 {
		t.Fatalf("table rows %d for %d results", tbl.NumRows(), len(rs))
	}
	pinAvg, spAvg, _ := Averages(rs)
	if pinAvg < 800 || pinAvg > 1600 {
		t.Fatalf("Pin icount1 average %.0f%%, want ~1200%% (paper: ~12X)", pinAvg)
	}
	if spAvg >= pinAvg/3 {
		t.Fatalf("SuperPin average %.0f%% not well below Pin %.0f%%", spAvg, pinAvg)
	}
	for _, r := range rs {
		if r.SPPct <= 100 {
			t.Fatalf("%s: SuperPin faster than native (%.0f%%)", r.Name, r.SPPct)
		}
		if r.PinPct <= r.SPPct {
			t.Fatalf("%s: Pin (%.0f%%) not slower than SuperPin (%.0f%%)", r.Name, r.PinPct, r.SPPct)
		}
	}
}

// TestFig4Shape checks Figure 4: speedups of several X, bounded by the
// 8 processors except for cache-locality outliers, with mcf the highest
// (paper: 11.2X while others reach 3-7X).
func TestFig4Shape(t *testing.T) {
	cfg := testConfig()
	_, rs, err := Fig4(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mcf, best float64
	bestName := ""
	for _, r := range rs {
		if r.Speedup < 2.5 || r.Speedup > 13 {
			t.Fatalf("%s: speedup %.2f outside plausible band", r.Name, r.Speedup)
		}
		if r.Name == "mcf" {
			mcf = r.Speedup
		}
		if r.Speedup > best {
			best, bestName = r.Speedup, r.Name
		}
		if r.Name != "mcf" && r.Speedup > 8.5 {
			t.Fatalf("%s: speedup %.2f exceeds the 8-processor bound without a locality excuse", r.Name, r.Speedup)
		}
	}
	if bestName != "mcf" {
		t.Fatalf("highest speedup is %s (%.2f), want the mcf outlier", bestName, best)
	}
	if mcf < 7 {
		t.Fatalf("mcf speedup %.2f, want the >7X cache-locality outlier", mcf)
	}
}

// TestFig5Shape checks Figure 5: icount2 under SuperPin approaches native
// (paper: 25%% average slowdown, 7%%-100%% range).
func TestFig5Shape(t *testing.T) {
	_, rs, err := Fig5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, spAvg, _ := Averages(rs)
	if spAvg < 105 || spAvg > 180 {
		t.Fatalf("SuperPin icount2 average %.0f%%, want ~125%% (paper: ~25%% slowdown)", spAvg)
	}
	for _, r := range rs {
		if r.SPPct > 260 {
			t.Fatalf("%s: SuperPin icount2 %.0f%%, paper range tops out below 200%%", r.Name, r.SPPct)
		}
		// icount2 must beat icount1-style overheads decisively: Pin
		// icount2 stays within Figure 5's sub-1000%% axis (memory-bound
		// outliers like mcf run high, but below icount1 levels).
		if r.PinPct > 950 {
			t.Fatalf("%s: Pin icount2 %.0f%% implausibly high", r.Name, r.PinPct)
		}
	}
}

// TestFig6Shape checks Figure 6's structure for gcc: growing timeslices
// shrink fork-and-other overhead and master sleep but grow pipeline
// delay, with a sweet spot in between.
func TestFig6Shape(t *testing.T) {
	cfg := testConfig()
	_, rows, err := Fig6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ForkOthers >= rows[i-1].ForkOthers {
			t.Fatalf("fork&others not decreasing: %.2f -> %.2f at %0.f ms",
				rows[i-1].ForkOthers, rows[i].ForkOthers, rows[i].TimesliceMSec)
		}
		if rows[i].Pipeline <= rows[i-1].Pipeline {
			t.Fatalf("pipeline delay not increasing: %.2f -> %.2f at %.0f ms",
				rows[i-1].Pipeline, rows[i].Pipeline, rows[i].TimesliceMSec)
		}
		if rows[i].Native != rows[0].Native {
			t.Fatal("native component must be constant")
		}
	}
	// Totals must stay in a sane band around native (instrumentation-
	// limited gcc: several X native, not tens), and the paper's net
	// claim must hold: larger timeslices reduce gcc's total runtime
	// (the lower overhead outweighs the extra pipeline delay).
	for _, r := range rows {
		if r.Total < r.Native || r.Total > 15*r.Native {
			t.Fatalf("total %.2f outside [native, 15x native]", r.Total)
		}
	}
	if rows[len(rows)-1].Total >= rows[0].Total {
		t.Fatalf("no net runtime reduction from larger timeslices: %.2f -> %.2f",
			rows[0].Total, rows[len(rows)-1].Total)
	}
}

// TestFig7Shape checks Figure 7's structure: performance improves
// dramatically up to the physical processor count and flattens beyond it.
func TestFig7Shape(t *testing.T) {
	cfg := testConfig()
	_, rows, err := Fig7(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Strictly improving up to the physical core count…
	for i := 1; i <= 3; i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Fatalf("runtime not monotone: %d slices %.2f -> %d slices %.2f",
				rows[i-1].MaxSlices, rows[i-1].Seconds, rows[i].MaxSlices, rows[i].Seconds)
		}
	}
	// 1 -> 8 slices should be a large improvement (several X)…
	if rows[0].Seconds/rows[3].Seconds < 3 {
		t.Fatalf("1->8 slices only improved %.2fx", rows[0].Seconds/rows[3].Seconds)
	}
	// …while beyond the physical cores (12, 16 via hyperthreading) the
	// curve saturates: close to the 8-slice time, slightly better or —
	// when the master is forced to share its core — slightly worse.
	for _, i := range []int{4, 5} {
		if r := rows[i].Seconds / rows[3].Seconds; r < 0.6 || r > 1.2 {
			t.Fatalf("%d slices at %.2fx of the 8-slice time; expected saturation",
				rows[i].MaxSlices, r)
		}
	}
}

// TestSigStatsShape checks the Section 4.4 statistics: the quick detector
// filters out all but a small percentage of checks (paper: ~2%), and
// stack checks are rarer still.
func TestSigStatsShape(t *testing.T) {
	cfg := testConfig()
	cfg.Benchmarks = []string{"gzip", "mcf", "mgrid"}
	_, rows, err := SigStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Quick == 0 {
			t.Fatalf("%s: no quick checks", r.Name)
		}
		if r.FullPerQuick > 10 {
			t.Fatalf("%s: full/quick = %.1f%%, want a small percentage (paper ~2%%)", r.Name, r.FullPerQuick)
		}
		if r.Stack > r.Full {
			t.Fatalf("%s: stack checks (%d) exceed full checks (%d)", r.Name, r.Stack, r.Full)
		}
	}
}

func TestRunSuiteRejectsUnknownBenchmark(t *testing.T) {
	cfg := testConfig()
	cfg.Benchmarks = []string{"nonesuch"}
	if _, err := RunSuite(cfg, Icount1); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("err = %v", err)
	}
}

func TestToolKindString(t *testing.T) {
	if Icount1.String() != "icount1" || Icount2.String() != "icount2" {
		t.Fatal("ToolKind strings wrong")
	}
}
