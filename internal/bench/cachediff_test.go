package bench

import "testing"

func TestRunCacheDiffSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.Benchmarks = []string{"gzip", "mgrid"}
	cfg.Workers = 1
	reports, err := RunCacheDiff(cfg, Icount1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Ins == 0 || r.PinCycles == 0 || r.SPCycles == 0 {
			t.Fatalf("%s: empty report %+v", r.Name, r)
		}
		if r.DiskHits == 0 {
			t.Fatalf("%s: disk-warm run read nothing", r.Name)
		}
	}
}

func TestRunWarmstartSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.Benchmarks = []string{"gzip"}
	res, err := RunWarmstart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdSec <= 0 || res.WarmSec <= 0 || res.DiskSec <= 0 {
		t.Fatalf("missing pass timings: %+v", res)
	}
	if res.ColdTTFP > 0 && res.WarmTTFP >= res.ColdTTFP {
		t.Fatalf("warm TTFP %d not below cold %d", res.WarmTTFP, res.ColdTTFP)
	}
}
