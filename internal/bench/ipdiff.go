package bench

import (
	"fmt"
	"reflect"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

// IPDiffReport is one benchmark's interprocedural-analysis differential
// outcome: the benchmark ran with the full analysis tier, the
// intraprocedural tier (-saintra) and no analysis (-nosa), under four
// tools serially and three tools under SuperPin at 1 and 4 workers, and
// every virtual-cycle-visible quantity was identical.
type IPDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// PinCycles and SPCycles are the (tier-independent) serial Pin and
	// SuperPin runtimes under the icount1 tool.
	PinCycles kernel.Cycles
	SPCycles  kernel.Cycles
	// SavedRegsFull/Intra/Ref are the registers spilled around the
	// opaque watchpoint's predicates under the full tier, the
	// intraprocedural tier, and no analysis. The interprocedural
	// liveness shows up as Full <= Intra <= Ref, strictly somewhere in
	// the suite.
	SavedRegsFull  uint64
	SavedRegsIntra uint64
	SavedRegsRef   uint64
	// FoldedSites and FoldedPreds are the declared watchpoint's
	// compile-time-decided predicate sites and the run-time predicate
	// evaluations they eliminated, under the full tier.
	FoldedSites uint64
	FoldedPreds uint64
	// Hits is the (tier-independent) watchpoint hit count.
	Hits uint64
	// Events is the (identical) SuperPin trace length.
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// ipDiffChecks are the equalities the differential runner asserts, for
// human-readable output.
var ipDiffChecks = []string{
	"serial Pin results identical across full/intra/nosa for all four tools (modulo host-only counters)",
	"tool observables (instruction counts, watchpoint hits) identical across tiers",
	"predicate save/restore set never widens: full <= intra <= nosa",
	"intra and nosa tiers report zero fold activity",
	"SuperPin results and trace streams identical across {full,nosa} x workers {1,4}",
	"trace invariants hold in every mode",
}

// ipDiffModes are the analysis tiers the differential compares, in
// decreasing precision: the full interprocedural tier, the
// intraprocedural tier, and no analysis.
var ipDiffModes = [3]struct {
	name  string
	intra bool
	nosa  bool
}{
	{name: "full"},
	{name: "intra", intra: true},
	{name: "nosa", nosa: true},
}

// RunIPDiff runs each configured benchmark under the three analysis
// tiers and verifies that the interprocedural tier changed nothing the
// virtual machine can observe: cycle counts, instruction counts, exit
// codes, stdout, profiles, watchpoint hits, slice schedules and trace
// event streams are all byte-identical; only host-side counters (spill
// masks, fold counts) move. It then asserts the tier actually earned
// its keep somewhere in the suite: at least one benchmark's save mask
// is strictly narrower than the intraprocedural tier's, and at least
// one benchmark folded predicates at compile time.
func RunIPDiff(cfg Config) ([]*IPDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	reports, err := runIndexed(cfg.Workers, len(specs), func(i int) (*IPDiffReport, error) {
		return runIPDiffOne(cfg, specs[i])
	})
	if err != nil {
		return nil, err
	}
	narrowed, folded := false, false
	for _, r := range reports {
		if r.SavedRegsFull < r.SavedRegsIntra {
			narrowed = true
		}
		if r.FoldedPreds > 0 {
			folded = true
		}
	}
	if !narrowed {
		return nil, fmt.Errorf("ipdiff: interprocedural liveness never narrowed a save mask below the intraprocedural tier on any benchmark")
	}
	if !folded {
		return nil, fmt.Errorf("ipdiff: value analysis never folded a declared predicate on any benchmark")
	}
	return reports, nil
}

// ipSerialLeg is one serial Pin run's result plus the tool's observable
// output (instruction count or watchpoint hits) — the quantity that
// must not move when the analysis tier changes.
type ipSerialLeg struct {
	res *core.PinResult
	obs uint64
}

// normalizeIPStats returns a copy of the result with every analysis- and
// hot-tier-dependent host counter zeroed, leaving only quantities that
// must be identical across analysis tiers.
func normalizeIPStats(r core.PinResult) core.PinResult {
	r.Engine.PredSaveRegs = 0
	r.Engine.SASharedRuns = 0
	r.Engine.SAPrivateRuns = 0
	r.Engine.HotIns = 0
	r.Engine.HoistedSaves = 0
	r.Engine.FoldedSites = 0
	r.Engine.FoldedPreds = 0
	r.Engine.IPHoists = 0
	return r
}

func runIPDiffOne(cfg Config, spec workload.Spec) (*IPDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("ipdiff %s: native: %w", spec.Name, err)
	}
	report := &IPDiffReport{Name: spec.Name, Ins: native.Ins, Checks: ipDiffChecks}

	// Serial Pin: four tools x three tiers. icount2 runs under the
	// profiler so the tier comparison covers profile streams; the two
	// watch variants split the tier's two host-side effects — the
	// declared watch folds (measuring FoldedPreds), the opaque watch
	// cannot fold, so its PredSaveRegs isolates pure mask narrowing.
	for _, tn := range []string{"icount1", "icount2", "watch", "watch-opaque"} {
		var legs [3]ipSerialLeg
		for mi, mode := range ipDiffModes {
			cost := cfg.PinCost
			cost.MemSurcharge = spec.PinMemCost
			cost.SAIntra = mode.intra
			cost.NoSA = mode.nosa
			var res *core.PinResult
			var count uint64
			wantIns := true
			switch tn {
			case "icount1":
				t := newTool(Icount1)
				res, err = core.RunPin(cfg.Kernel, prog, t.Factory(), cost)
				count = t.Total()
			case "icount2":
				t := newTool(Icount2)
				res, err = core.RunPinProf(cfg.Kernel, prog, t.Factory(), cost, 997)
				count = t.Total()
			default:
				w := tools.NewWatch(nil, workload.DataReg, workload.DataBase)
				if tn == "watch-opaque" {
					w = tools.NewWatchOpaque(nil, workload.DataReg, workload.DataBase)
				}
				res, err = core.RunPin(cfg.Kernel, prog, w.Factory(), cost)
				count = w.Hits()
				wantIns = false
			}
			if err != nil {
				return nil, fmt.Errorf("ipdiff %s: pin (%s, %s): %w", spec.Name, tn, mode.name, err)
			}
			if wantIns && count != native.Ins {
				return nil, fmt.Errorf("ipdiff %s: pin (%s, %s) counted %d, native executed %d",
					spec.Name, tn, mode.name, count, native.Ins)
			}
			legs[mi] = ipSerialLeg{res: res, obs: count}
		}

		full, intra, nosa := legs[0], legs[1], legs[2]
		for mi := 1; mi < len(legs); mi++ {
			a, b := normalizeIPStats(*full.res), normalizeIPStats(*legs[mi].res)
			if !reflect.DeepEqual(a, b) {
				return nil, fmt.Errorf("ipdiff %s (%s): serial Pin results differ full vs %s:\nfull: %+v\n%s: %+v",
					spec.Name, tn, ipDiffModes[mi].name, a, ipDiffModes[mi].name, b)
			}
			if legs[mi].obs != full.obs {
				return nil, fmt.Errorf("ipdiff %s (%s): tool output differs full=%d %s=%d",
					spec.Name, tn, full.obs, ipDiffModes[mi].name, legs[mi].obs)
			}
		}
		fp, ip, np := full.res.Engine.PredSaveRegs, intra.res.Engine.PredSaveRegs, nosa.res.Engine.PredSaveRegs
		if fp > ip || ip > np {
			return nil, fmt.Errorf("ipdiff %s (%s): save mask widened across tiers: full=%d intra=%d nosa=%d",
				spec.Name, tn, fp, ip, np)
		}
		for mi := 1; mi < len(legs); mi++ {
			e := legs[mi].res.Engine
			if e.FoldedSites != 0 || e.FoldedPreds != 0 || e.IPHoists != 0 {
				return nil, fmt.Errorf("ipdiff %s (%s, %s): fold activity without the value tier: sites=%d preds=%d hoists=%d",
					spec.Name, tn, ipDiffModes[mi].name, e.FoldedSites, e.FoldedPreds, e.IPHoists)
			}
		}
		switch tn {
		case "icount1":
			report.PinCycles = full.res.Time
		case "watch":
			report.FoldedSites = full.res.Engine.FoldedSites
			report.FoldedPreds = full.res.Engine.FoldedPreds
			report.Hits = full.obs
		case "watch-opaque":
			report.SavedRegsFull = fp
			report.SavedRegsIntra = ip
			report.SavedRegsRef = np
			if full.obs != report.Hits {
				return nil, fmt.Errorf("ipdiff %s: watch variants disagree: declared=%d opaque=%d",
					spec.Name, report.Hits, full.obs)
			}
		}
	}

	// SuperPin: three tools x {full,nosa} x workers {1,4}. Every leg of
	// a tool must be deep-equal to the first — core.Result carries no
	// engine host counters, so nothing needs normalizing. icount1 runs
	// the profiler across slices, icount2 the shared code cache, per
	// the pardiff stress split.
	for _, tn := range []string{"icount1", "icount2", "watch"} {
		var ref parRun
		var refHits uint64
		first := true
		for _, nosa := range []bool{false, true} {
			for _, w := range []int{1, 4} {
				opts := core.DefaultOptions()
				opts.SliceMSec = cfg.TimesliceMSec
				opts.MaxSlices = cfg.MaxSlices
				opts.PinCost = cfg.PinCost
				opts.PinCost.MemSurcharge = spec.SliceMemCost
				opts.PinCost.NoSA = nosa
				opts.NativeMemSurcharge = spec.NativeMemCost
				opts.Workers = w
				opts.Trace = obs.NewTracer()
				var factory core.ToolFactory
				var count func() uint64
				wantIns := true
				switch tn {
				case "icount1":
					t := newTool(Icount1)
					factory, count = t.Factory(), t.Total
					opts.ProfInterval = 997
				case "icount2":
					t := newTool(Icount2)
					factory, count = t.Factory(), t.Total
					opts.SharedCodeCache = true
				default:
					wt := tools.NewWatch(nil, workload.DataReg, workload.DataBase)
					factory, count = wt.Factory(), wt.Hits
					wantIns = false
				}
				spRes, err := core.Run(cfg.Kernel, prog, factory, opts)
				if err != nil {
					return nil, fmt.Errorf("ipdiff %s: superpin (%s, nosa=%v, workers=%d): %w", spec.Name, tn, nosa, w, err)
				}
				if spRes.Err != nil {
					return nil, fmt.Errorf("ipdiff %s: superpin (%s, nosa=%v, workers=%d): %w", spec.Name, tn, nosa, w, spRes.Err)
				}
				if wantIns && count() != native.Ins {
					return nil, fmt.Errorf("ipdiff %s: superpin (%s, nosa=%v, workers=%d) counted %d, native executed %d",
						spec.Name, tn, nosa, w, count(), native.Ins)
				}
				events := opts.Trace.Events()
				if err := VerifyTrace(events, spRes, native.Time); err != nil {
					return nil, fmt.Errorf("ipdiff %s (%s, nosa=%v, workers=%d): %w", spec.Name, tn, nosa, w, err)
				}
				if first {
					ref, refHits, first = parRun{sp: spRes, events: events}, count(), false
					continue
				}
				if !reflect.DeepEqual(spRes, ref.sp) {
					return nil, fmt.Errorf("ipdiff %s (%s): SuperPin results differ at nosa=%v workers=%d:\nref: %+v\ngot: %+v",
						spec.Name, tn, nosa, w, ref.sp, spRes)
				}
				if !reflect.DeepEqual(events, ref.events) {
					return nil, fmt.Errorf("ipdiff %s (%s): trace streams differ at nosa=%v workers=%d (%d vs %d events)",
						spec.Name, tn, nosa, w, len(ref.events), len(events))
				}
				if count() != refHits {
					return nil, fmt.Errorf("ipdiff %s (%s): tool output differs at nosa=%v workers=%d: ref=%d got=%d",
						spec.Name, tn, nosa, w, refHits, count())
				}
			}
		}
		switch tn {
		case "icount1":
			report.SPCycles = ref.sp.TotalTime
			report.Events = len(ref.events)
		case "watch":
			if refHits != report.Hits {
				return nil, fmt.Errorf("ipdiff %s: SuperPin watch hits %d != serial watch hits %d",
					spec.Name, refHits, report.Hits)
			}
		}
	}
	return report, nil
}
