package bench

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// benchdiffPath locates scripts/benchdiff.sh relative to this source file
// (repo layout: internal/bench/ -> ../../scripts/).
func benchdiffPath(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source file")
	}
	p := filepath.Join(filepath.Dir(self), "..", "..", "scripts", "benchdiff.sh")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("benchdiff.sh not found: %v", err)
	}
	return p
}

func writeHostJSON(t *testing.T, dir, name string, mips float64, withMIPS bool) string {
	t.Helper()
	body := `{
  "elapsed_sec": 1.5,
  "scale": 0.25,
  "suite_runs": 6,
  "guest_ins_min": 1000000,
`
	if withMIPS {
		body += fmt.Sprintf("  \"guest_mips_min\": %g,\n", mips)
	}
	body += `  "host_counters": {
    "dispatches": 100,
    "link_hits": 50,
    "link_misses": 10,
    "link_invalidations": 0,
    "superblock_ins": 900
  }
}
`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runBenchdiff(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("sh", args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchdiff.sh did not run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestBenchdiffGate drives scripts/benchdiff.sh end to end: a healthy
// gate passes, a real regression fails with exit 1, and — the regression
// this test pins — a reference artifact with a missing or zero
// guest_mips_min is an explicit usage error (exit 2), not a silent pass.
func TestBenchdiffGate(t *testing.T) {
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("no sh on PATH")
	}
	script := benchdiffPath(t)
	dir := t.TempDir()
	good := writeHostJSON(t, dir, "good.json", 50.0, true)
	fast := writeHostJSON(t, dir, "fast.json", 80.0, true)
	slow := writeHostJSON(t, dir, "slow.json", 10.0, true)
	zero := writeHostJSON(t, dir, "zero.json", 0, true)
	missing := writeHostJSON(t, dir, "missing.json", 0, false)

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"improvement passes", []string{"-gate", good, fast}, 0},
		{"regression fails", []string{"-gate", good, slow}, 1},
		{"zero reference is a usage error", []string{"-gate", zero, fast}, 2},
		{"missing reference key is a usage error", []string{"-gate", missing, fast}, 2},
		{"missing new key is a usage error", []string{"-gate", good, missing}, 2},
		{"no gate: zero reference still reports", []string{zero, fast}, 0},
		{"bad usage", []string{"-gate", good}, 2},
	}
	for _, tc := range cases {
		code, out := runBenchdiff(t, append([]string{script}, tc.args...)...)
		if code != tc.want {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.want, out)
		}
	}
}
