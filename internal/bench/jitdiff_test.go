package bench

import "testing"

// TestRunJITDiff is the hot-tier determinism check at the harness level:
// full Pin and SuperPin runs with the second-tier trace compiler on and
// off — the SuperPin runs at host worker counts 1 and 4 — must agree on
// every virtual-cycle-visible quantity, while the hot runs actually
// exercise the machinery (promotion, register caching, hot links, probe
// spill hoisting).
func TestRunJITDiff(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "gcc", "mgrid"}
	for _, kind := range []ToolKind{Icount1, Icount2} {
		reports, err := RunJITDiff(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(reports) != 3 {
			t.Fatalf("%s: got %d reports", kind, len(reports))
		}
		var promos, hotIns, hoisted uint64
		for _, r := range reports {
			if r.Ins == 0 || r.PinCycles == 0 || r.SPCycles == 0 || r.Events == 0 {
				t.Fatalf("%s/%s: empty report %+v", r.Name, kind, r)
			}
			promos += r.Promotions + r.SPPromotions
			hotIns += r.HotIns
			hoisted += r.SPHoistedSaves
		}
		if promos == 0 {
			t.Errorf("%s: no trace was promoted across the whole suite", kind)
		}
		// icount1 instruments every instruction, so there are no
		// superblocks to register-cache; icount2 leaves call-free block
		// tails that must get cached once their traces go hot.
		if kind == Icount2 && hotIns == 0 {
			t.Errorf("%s: no instructions executed register-cached", kind)
		}
		if hoisted == 0 {
			t.Errorf("%s: no boundary-probe spill was ever hoisted", kind)
		}
	}
}
