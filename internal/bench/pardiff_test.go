package bench

import "testing"

// TestRunParDiff is the harness-level host-parallelism determinism
// check: SuperPin runs at 1, 2, 4 and 8 workers must be byte-identical —
// results, trace streams, breakdowns — under both an every-instruction
// tool with profiling and a block-head tool with the shared code cache.
func TestRunParDiff(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "mgrid"}
	reports, err := RunParDiff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Ins == 0 || r.Icount1Cycles == 0 || r.Icount2Cycles == 0 ||
			r.Slices == 0 || r.Events == 0 {
			t.Fatalf("%s: empty report %+v", r.Name, r)
		}
		if len(r.Checks) == 0 {
			t.Fatalf("%s: no checks recorded", r.Name)
		}
	}
}

// TestRunScaling checks the scaling sweep plumbing: points for every
// requested worker count, non-zero wall-clock, and the virtual-cycle
// identity assertion internal to RunScaling.
func TestRunScaling(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip"}
	points, err := RunScaling(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.ElapsedSec <= 0 || pt.Speedup <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	if points[0].Workers != 1 || points[1].Workers != 2 {
		t.Fatalf("worker counts %d,%d", points[0].Workers, points[1].Workers)
	}
}
