// Package bench is the experiment harness that regenerates every table
// and figure in the SuperPin paper's evaluation (Section 6):
//
//   - Figure 3: icount1 runtime under Pin and SuperPin relative to native,
//     per SPEC2000 benchmark plus the average
//   - Figure 4: icount1 SuperPin speedup over Pin
//   - Figure 5: icount2 runtime under Pin and SuperPin relative to native
//   - Figure 6: gcc runtime vs. timeslice interval, broken into native /
//     fork&others / sleep / pipeline components
//   - Figure 7: gcc runtime vs. maximum running slices (hyperthreaded
//     8-way machine, 16 virtual processors)
//   - the Section 4.4 signature-detection statistics (quick vs. full vs.
//     stack checks)
//
// Absolute cycle counts are the simulator's, not the authors' testbed's;
// the reproduced quantity is the shape of each result (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"superpin/internal/artifact"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/pin"
	"superpin/internal/tools"
	"superpin/internal/workload"
)

// ToolKind selects the evaluation tool.
type ToolKind int

// Evaluation tools.
const (
	Icount1 ToolKind = iota // per-instruction counting
	Icount2                 // per-basic-block counting
)

func (tk ToolKind) String() string {
	if tk == Icount1 {
		return "icount1"
	}
	return "icount2"
}

// Config parameterizes the harness.
type Config struct {
	// Kernel is the simulated machine (default: the paper's 8-way
	// hyperthreaded SMP).
	Kernel kernel.Config
	// Scale multiplies every workload's run length (1.0 = full size;
	// tests use much smaller values).
	Scale float64
	// TimesliceMSec is the -spmsec value for suite runs. The paper uses
	// 2000 ms on runs that last minutes; the default here keeps the same
	// slice-count-per-run ratio for the simulator's shorter runs.
	TimesliceMSec float64
	// MaxSlices is the -spmp value for suite runs (paper: 8).
	MaxSlices int
	// Benchmarks restricts the suite to the named catalog entries
	// (nil = all 26).
	Benchmarks []string
	// PinCost is the base engine cost model; per-benchmark memory
	// surcharges are applied on top.
	PinCost pin.CostModel
	// Workers bounds how many benchmark runs RunSuite and the figure and
	// ablation sweeps execute concurrently on the host. Zero consults the
	// SPBENCH_J environment variable, then defaults to GOMAXPROCS; 1
	// forces serial execution. Every run owns its own kernel, memory
	// image and engine, and results are collected in catalog order, so
	// output is byte-identical for every Workers value.
	Workers int
	// SPWorkers is the host-parallelism degree inside each SuperPin run
	// (core.Options.Workers): independent slices execute concurrently on
	// that many goroutines with a deterministic merge, so virtual-cycle
	// results are identical for every value. Zero leaves the per-run
	// default ($SUPERPIN_WORKERS, then serial).
	SPWorkers int
	// TraceDir, when non-empty, attaches a tracer to every SuperPin run
	// and writes each run's Chrome trace-format JSON (loadable in
	// Perfetto) to <TraceDir>/<benchmark>.<tool>.trace.json.
	TraceDir string
	// NoFastPath disables the Pin engine's host-side dispatch fast paths
	// (trace linking and batched superblock execution) in every run the
	// harness performs. Virtual-cycle results are identical either way;
	// the flag exists for differential testing and host-perf comparison.
	NoFastPath bool
	// NoSA disables the load-time static analysis (verifier, liveness
	// elision, shared predecode) in every run the harness performs.
	// Virtual-cycle results are identical either way (`-exp sadiff`
	// proves it).
	NoSA bool
	// NoHotTier disables the second-tier trace compiler (profile-guided
	// hot-successor layout, register-cached superblocks, predicate-spill
	// hoisting) in every run the harness performs. Virtual-cycle results
	// are identical either way (`-exp jitdiff` proves it).
	NoHotTier bool
	// SAIntra restricts the static analysis to its intraprocedural tier
	// (no call graph, no cross-call liveness, no value analysis) in
	// every run the harness performs. Virtual-cycle results are
	// identical either way (`-exp ipdiff` proves it).
	SAIntra bool
	// Artifacts, when non-nil, is the content-addressed artifact store
	// every run the harness performs shares: concurrent suite runs of the
	// same benchmark predecode and analyze each image exactly once, and
	// later runs warm-start the hot tier from earlier runs' harvests.
	// Virtual-cycle results are identical with or without a store
	// (`-exp cachediff` proves it).
	Artifacts *artifact.Store
	// Metrics, when non-nil, is the live telemetry registry every run the
	// harness performs reports into: kernel live counters and pool-phase
	// histograms, engine dispatch/compile telemetry, and the core run
	// statistics. Host-side only — virtual-cycle results are identical
	// with or without it.
	Metrics *obs.Metrics
	// LiveTrace, when non-nil, is a long-lived tracer (typically a ring,
	// serving as the flight recorder) attached to every run the harness
	// performs. TraceDir takes precedence inside a SuperPin run: those
	// runs use a private per-run tracer for their trace files.
	LiveTrace *obs.Tracer
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 200_000_000_000
	return Config{
		Kernel:        kcfg,
		Scale:         1.0,
		TimesliceMSec: 500,
		MaxSlices:     8,
		PinCost:       pin.DefaultCost(),
	}
}

func (c *Config) normalize() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.TimesliceMSec <= 0 {
		c.TimesliceMSec = 500
	}
	if c.MaxSlices <= 0 {
		c.MaxSlices = 8
	}
	if c.PinCost == (pin.CostModel{}) {
		c.PinCost = pin.DefaultCost()
	}
	if c.Kernel.CPUs == 0 {
		c.Kernel = kernel.DefaultConfig()
		c.Kernel.MaxCycles = 200_000_000_000
	}
	if c.NoFastPath {
		c.PinCost.NoFastPath = true
	}
	if c.NoSA {
		c.PinCost.NoSA = true
	}
	if c.NoHotTier {
		c.PinCost.NoHotTier = true
	}
	if c.SAIntra {
		c.PinCost.SAIntra = true
	}
	// Thread the telemetry plane through the kernel config so every run
	// the harness performs — native, Pin baseline, SuperPin, and all the
	// differential experiments — inherits it without per-harness wiring.
	if c.Metrics != nil && c.Kernel.Metrics == nil {
		c.Kernel.Metrics = c.Metrics
	}
	if c.LiveTrace != nil && c.Kernel.Trace == nil {
		c.Kernel.Trace = c.LiveTrace
	}
}

// specs resolves the configured benchmark list.
func (c *Config) specs() ([]workload.Spec, error) {
	if len(c.Benchmarks) == 0 {
		return workload.Catalog(), nil
	}
	out := make([]workload.Spec, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		s, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown benchmark %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// newTool builds the measurement tool for one run.
func newTool(kind ToolKind) *tools.Icount {
	if kind == Icount1 {
		return tools.NewIcount1(nil)
	}
	return tools.NewIcount2(nil)
}

// Result is one benchmark's measurement triple.
type Result struct {
	Name   string
	Native kernel.Cycles
	Pin    kernel.Cycles
	SP     kernel.Cycles
	// Ins is the benchmark's guest instruction count (identical across
	// the native, Pin and SuperPin runs by construction; each triple
	// executes at least 3x this many guest instructions). spbench uses it
	// to report host-side guest-MIPS.
	Ins uint64
	// PinPct and SPPct are runtimes relative to native, in percent
	// (100 = native speed), matching the paper's figure axes.
	PinPct float64
	SPPct  float64
	// Speedup is Pin/SP, the Figure 4 quantity.
	Speedup float64
	// Detail is the full SuperPin result.
	Detail *core.Result
	// Host holds the serial Pin run's host-side dispatch fast-path
	// counters (all zero under Config.NoFastPath).
	Host HostCounters
}

// HostCounters are the Pin engine's host-side dispatch fast-path
// counters for one run: they describe what the host paid, never what the
// guest was charged, so they may differ between fast-path and
// -nofastpath runs whose virtual-cycle results are identical.
type HostCounters struct {
	Dispatches        uint64 `json:"dispatches"`
	LinkHits          uint64 `json:"link_hits"`
	LinkMisses        uint64 `json:"link_misses"`
	LinkInvalidations uint64 `json:"link_invalidations"`
	SuperblockIns     uint64 `json:"superblock_ins"`
	HotPromotions     uint64 `json:"hot_promotions"`
	HotIns            uint64 `json:"hot_ins"`
	HoistedSaves      uint64 `json:"hoisted_saves"`
	HotLinkHits       uint64 `json:"hot_link_hits"`
}

// hostCounters extracts the fast-path counters from a serial Pin result.
func hostCounters(res *core.PinResult) HostCounters {
	return HostCounters{
		Dispatches:        res.Engine.Dispatches,
		LinkHits:          res.Cache.LinkHits,
		LinkMisses:        res.Cache.LinkMisses,
		LinkInvalidations: res.Cache.LinkInvalidations,
		SuperblockIns:     res.Engine.SuperblockIns,
		HotPromotions:     res.Engine.HotPromotions,
		HotIns:            res.Engine.HotIns,
		HoistedSaves:      res.Engine.HoistedSaves,
		HotLinkHits:       res.Engine.HotLinkHits,
	}
}

// zeroHotStats clears the hot-tier host counters in a stats copy so the
// differential experiments can compare everything else exactly (the hot
// tier exists only in fast-path runs, and only moves host-side work).
func zeroHotStats(s *pin.Stats) {
	s.HotPromotions, s.HotIns, s.HoistedSaves, s.HotLinkHits = 0, 0, 0, 0
	s.WarmPromotions, s.FirstPromoDispatch = 0, 0
}

// RunBenchmark measures one benchmark under native, Pin and SuperPin
// execution with the given tool, verifying that all three agree on the
// instruction count.
func RunBenchmark(cfg Config, spec workload.Spec, kind ToolKind) (*Result, error) {
	cfg.normalize()
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}

	native, err := core.RunNativeCached(cfg.Kernel, prog, spec.NativeMemCost, 0, cfg.Artifacts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: native: %w", spec.Name, err)
	}

	pinCost := cfg.PinCost
	pinCost.MemSurcharge = spec.PinMemCost
	pinTool := newTool(kind)
	pinRes, err := core.RunPinCached(cfg.Kernel, prog, pinTool.Factory(), pinCost, 0, cfg.Artifacts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: pin: %w", spec.Name, err)
	}
	if pinTool.Total() != native.Ins {
		return nil, fmt.Errorf("bench %s: pin %s counted %d, native executed %d",
			spec.Name, kind, pinTool.Total(), native.Ins)
	}

	opts := core.DefaultOptions()
	opts.SliceMSec = cfg.TimesliceMSec
	opts.MaxSlices = cfg.MaxSlices
	opts.PinCost = cfg.PinCost
	opts.PinCost.MemSurcharge = spec.SliceMemCost
	opts.NativeMemSurcharge = spec.NativeMemCost
	opts.Workers = cfg.SPWorkers
	opts.Artifacts = cfg.Artifacts
	if cfg.TraceDir != "" {
		opts.Trace = obs.NewTracer()
	}
	spTool := newTool(kind)
	spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: superpin: %w", spec.Name, err)
	}
	if cfg.TraceDir != "" {
		if err := writeTrace(cfg.TraceDir, spec.Name, kind, opts.Trace); err != nil {
			return nil, fmt.Errorf("bench %s: %w", spec.Name, err)
		}
	}
	if spRes.Err != nil {
		return nil, fmt.Errorf("bench %s: superpin: %w", spec.Name, spRes.Err)
	}
	if spTool.Total() != native.Ins {
		return nil, fmt.Errorf("bench %s: superpin %s counted %d, native executed %d",
			spec.Name, kind, spTool.Total(), native.Ins)
	}

	r := &Result{
		Name:   spec.Name,
		Native: native.Time,
		Pin:    pinRes.Time,
		SP:     spRes.TotalTime,
		Ins:    native.Ins,
		Detail: spRes,
		Host:   hostCounters(pinRes),
	}
	r.PinPct = 100 * float64(r.Pin) / float64(r.Native)
	r.SPPct = 100 * float64(r.SP) / float64(r.Native)
	r.Speedup = float64(r.Pin) / float64(r.SP)
	return r, nil
}

// writeTrace writes one SuperPin run's Chrome trace into dir.
func writeTrace(dir, name string, kind ToolKind, tr *obs.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.%s.trace.json", name, kind))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunSuite measures every configured benchmark with the given tool,
// fanning independent runs out over a bounded worker pool (Config.Workers)
// and collecting results in catalog order. Parallel and serial runs
// produce byte-identical Results.
func RunSuite(cfg Config, kind ToolKind) ([]*Result, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*Result, error) {
		return RunBenchmark(cfg, specs[i], kind)
	})
}

// Averages returns the arithmetic-mean PinPct, SPPct and Speedup over rs,
// the paper's "AVG" bars.
func Averages(rs []*Result) (pinPct, spPct, speedup float64) {
	if len(rs) == 0 {
		return 0, 0, 0
	}
	for _, r := range rs {
		pinPct += r.PinPct
		spPct += r.SPPct
		speedup += r.Speedup
	}
	n := float64(len(rs))
	return pinPct / n, spPct / n, speedup / n
}
