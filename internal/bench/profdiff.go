package bench

import (
	"fmt"

	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/prof"
	"superpin/internal/workload"
)

// ProfDiffReport is one benchmark's profile-equivalence outcome: the
// benchmark was profiled under the native interpreter, serial Pin (fast
// and -nofastpath) and SuperPin (fast and -nofastpath), and all five
// sample streams were byte-identical.
type ProfDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// Interval is the sampling interval used (derived from Ins so every
	// benchmark yields a comparable sample count).
	Interval uint64
	// Samples is the (identical) number of samples in each stream.
	Samples int
	// MaxStack is the deepest shadow stack observed in any sample.
	MaxStack int
	// Slices is the SuperPin run's timeslice count — the profile merge
	// is only exercised when this is at least 2.
	Slices int
	// SPCycles is the (profiling-independent) SuperPin runtime.
	SPCycles kernel.Cycles
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// profDiffChecks are the equalities the differential runner asserts.
var profDiffChecks = []string{
	"serial Pin profile identical to native (fast and -nofastpath)",
	"SuperPin merged profile identical to native (fast and -nofastpath)",
	"folded stacks byte-identical across all five modes",
	"profiling charged zero virtual cycles (native and SuperPin)",
}

// RunProfDiff profiles each configured benchmark under all five execution
// modes — native interpreter, serial Pin with the dispatch fast paths on
// and off, and SuperPin with the fast paths on and off — and verifies
// that the merged SuperPin sample streams are byte-identical to the
// serial ones, and that attaching the profiler changed no virtual-time
// observable.
func RunProfDiff(cfg Config, kind ToolKind) ([]*ProfDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*ProfDiffReport, error) {
		return runProfDiffOne(cfg, specs[i], kind)
	})
}

func runProfDiffOne(cfg Config, spec workload.Spec, kind ToolKind) (*ProfDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}

	// Unprofiled native run: establishes the instruction count (which
	// sizes the sampling interval) and the zero-cost baseline.
	plain, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("profdiff %s: native: %w", spec.Name, err)
	}
	// ~500 samples per run regardless of benchmark length; the +1 keeps
	// short runs (and the interval itself) nonzero.
	interval := plain.Ins/499 + 1

	native, err := core.RunNativeProf(cfg.Kernel, prog, spec.NativeMemCost, interval)
	if err != nil {
		return nil, fmt.Errorf("profdiff %s: native profiled: %w", spec.Name, err)
	}
	if native.Time != plain.Time || native.Ins != plain.Ins {
		return nil, fmt.Errorf("profdiff %s: profiling changed the native run: %d/%d vs %d/%d cycles/ins",
			spec.Name, native.Time, native.Ins, plain.Time, plain.Ins)
	}
	ref := native.Profile
	if len(ref.Samples) == 0 {
		return nil, fmt.Errorf("profdiff %s: native run produced no samples", spec.Name)
	}
	symtab := prof.NewSymtab(prog.Symbols)
	refFolded := ref.Folded(symtab)

	var spCycles, spPlainCycles kernel.Cycles
	var slices int
	for _, nofast := range []bool{false, true} {
		pinCost := cfg.PinCost
		pinCost.MemSurcharge = spec.PinMemCost
		pinCost.NoFastPath = nofast
		pinTool := newTool(kind)
		pinRes, err := core.RunPinProf(cfg.Kernel, prog, pinTool.Factory(), pinCost, interval)
		if err != nil {
			return nil, fmt.Errorf("profdiff %s: pin (nofast=%v): %w", spec.Name, nofast, err)
		}
		if d := ref.Diff(pinRes.Profile); d != "" {
			return nil, fmt.Errorf("profdiff %s: pin (nofast=%v) profile differs from native: %s",
				spec.Name, nofast, d)
		}
		if got := pinRes.Profile.Folded(symtab); got != refFolded {
			return nil, fmt.Errorf("profdiff %s: pin (nofast=%v) folded stacks differ from native",
				spec.Name, nofast)
		}

		opts := core.DefaultOptions()
		opts.SliceMSec = cfg.TimesliceMSec
		opts.MaxSlices = cfg.MaxSlices
		opts.PinCost = cfg.PinCost
		opts.PinCost.MemSurcharge = spec.SliceMemCost
		opts.PinCost.NoFastPath = nofast
		opts.NativeMemSurcharge = spec.NativeMemCost
		opts.ProfInterval = interval
		spTool := newTool(kind)
		spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
		if err != nil {
			return nil, fmt.Errorf("profdiff %s: superpin (nofast=%v): %w", spec.Name, nofast, err)
		}
		if spRes.Err != nil {
			return nil, fmt.Errorf("profdiff %s: superpin (nofast=%v): %w", spec.Name, nofast, spRes.Err)
		}
		if d := ref.Diff(spRes.Profile); d != "" {
			return nil, fmt.Errorf("profdiff %s: superpin (nofast=%v) merged profile differs from native: %s",
				spec.Name, nofast, d)
		}
		if got := spRes.Profile.Folded(symtab); got != refFolded {
			return nil, fmt.Errorf("profdiff %s: superpin (nofast=%v) folded stacks differ from native",
				spec.Name, nofast)
		}
		if !nofast {
			spCycles = spRes.TotalTime
			slices = len(spRes.Slices)

			// Unprofiled SuperPin run (fast paths only: the virtual
			// result is mode-independent): profiling must not have
			// moved the slice schedule or the runtime.
			opts.ProfInterval = 0
			plainTool := newTool(kind)
			plainSP, err := core.Run(cfg.Kernel, prog, plainTool.Factory(), opts)
			if err != nil {
				return nil, fmt.Errorf("profdiff %s: superpin unprofiled: %w", spec.Name, err)
			}
			if plainSP.Err != nil {
				return nil, fmt.Errorf("profdiff %s: superpin unprofiled: %w", spec.Name, plainSP.Err)
			}
			spPlainCycles = plainSP.TotalTime
			if spPlainCycles != spCycles || len(plainSP.Slices) != slices {
				return nil, fmt.Errorf("profdiff %s: profiling changed the SuperPin run: %d cycles/%d slices vs %d/%d",
					spec.Name, spCycles, slices, spPlainCycles, len(plainSP.Slices))
			}
		}
	}

	maxStack := 0
	for _, s := range ref.Samples {
		if len(s.Stack) > maxStack {
			maxStack = len(s.Stack)
		}
	}
	return &ProfDiffReport{
		Name:     spec.Name,
		Ins:      native.Ins,
		Interval: interval,
		Samples:  len(ref.Samples),
		MaxStack: maxStack,
		Slices:   slices,
		SPCycles: spCycles,
		Checks:   profDiffChecks,
	}, nil
}
