package bench

import (
	"fmt"
	"os"
	"reflect"

	"superpin/internal/artifact"
	"superpin/internal/core"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// CacheDiffReport is one benchmark's artifact-cache differential
// outcome: the benchmark ran cold (no store), warm (second execution on
// a populated in-process store) and disk-warm (fresh store hydrated
// from a cache directory), under serial Pin and under SuperPin at host
// worker counts 1 and 4, and every virtual-cycle-visible quantity was
// identical.
type CacheDiffReport struct {
	Name string
	// Ins is the benchmark's guest instruction count.
	Ins uint64
	// PinCycles and SPCycles are the (mode-independent) serial Pin and
	// SuperPin runtimes.
	PinCycles kernel.Cycles
	SPCycles  kernel.Cycles
	// WarmPromotions counts the warm serial run's compile-time
	// promotions from the seed (zero in a cold run by definition).
	WarmPromotions uint64
	// ColdTTFP and WarmTTFP are the dispatch counts at the first hot
	// promotion in the cold and warm serial runs (0 = never promoted):
	// the time-to-first-promotion quantity the warm start attacks.
	ColdTTFP uint64
	WarmTTFP uint64
	// DiskHits counts the disk-warm store's successful reads.
	DiskHits uint64
	// Events is the (identical) SuperPin trace length.
	Events int
	// Checks lists the equalities verified, for human-readable output.
	Checks []string
}

// cacheDiffWorkers are the SuperPin host worker counts the differential
// runs at: every slice engine shares the store's seed snapshot, so warm
// results must survive parallel slice execution unchanged.
var cacheDiffWorkers = [2]int{1, 4}

// cacheDiffChecks are the equalities the differential runner asserts,
// for human-readable output.
var cacheDiffChecks = []string{
	"serial Pin result identical cold vs warm vs disk-warm (cycles, ins, exit, stdout, stats modulo host-only counters)",
	"SuperPin result deep-equal cold vs warm at workers 1 and 4",
	"SuperPin trace event streams identical in all runs",
	"warm runs hit the store (predecode + analysis) instead of recomputing",
	"disk-warm runs hydrate from the directory with zero recomputation",
	"warm runs promote at compile time when the cold run promoted at all",
}

// normPinCached normalizes a serial Pin result for cold-vs-warm
// comparison: the warm start moves promotion earlier, which displaces
// host-side work (superblock batching, first-tier link traffic, hot
// counters) without touching anything the virtual machine observes.
func normPinCached(res *core.PinResult) core.PinResult {
	n := *res
	zeroHotStats(&n.Engine)
	n.Engine.SuperblockIns = 0
	n.Cache.LinkHits, n.Cache.LinkMisses, n.Cache.LinkInvalidations = 0, 0, 0
	return n
}

// RunCacheDiff runs each configured benchmark cold, warm and disk-warm
// under serial Pin, and cold vs warm under SuperPin at host worker
// counts 1 and 4, verifying that the artifact cache changed nothing the
// virtual machine can observe — while actually engaging (store hits,
// compile-time warm promotions, disk reads).
func RunCacheDiff(cfg Config, kind ToolKind) ([]*CacheDiffReport, error) {
	cfg.normalize()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	return runIndexed(cfg.Workers, len(specs), func(i int) (*CacheDiffReport, error) {
		return runCacheDiffOne(cfg, specs[i], kind)
	})
}

func runCacheDiffOne(cfg Config, spec workload.Spec, kind ToolKind) (*CacheDiffReport, error) {
	spec = spec.Scaled(cfg.Scale)
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	native, err := core.RunNative(cfg.Kernel, prog, spec.NativeMemCost)
	if err != nil {
		return nil, fmt.Errorf("cachediff %s: native: %w", spec.Name, err)
	}

	pinCost := cfg.PinCost
	pinCost.MemSurcharge = spec.PinMemCost
	runPin := func(label string, store *artifact.Store) (*core.PinResult, error) {
		tool := newTool(kind)
		res, err := core.RunPinCached(cfg.Kernel, prog, tool.Factory(), pinCost, 0, store)
		if err != nil {
			return nil, fmt.Errorf("cachediff %s: pin (%s): %w", spec.Name, label, err)
		}
		if tool.Total() != native.Ins {
			return nil, fmt.Errorf("cachediff %s: pin (%s) counted %d, native executed %d",
				spec.Name, label, tool.Total(), native.Ins)
		}
		return res, nil
	}

	// Serial Pin: cold, then twice on one in-process store (populate +
	// warm), then disk-warm on a store hydrated from a directory a prior
	// store persisted into.
	cold, err := runPin("cold", nil)
	if err != nil {
		return nil, err
	}
	store := artifact.NewStore()
	if _, err := runPin("populate", store); err != nil {
		return nil, err
	}
	warm, err := runPin("warm", store)
	if err != nil {
		return nil, err
	}
	if st := store.Stats(); st.PredecodeHits == 0 || st.SAHits == 0 {
		return nil, fmt.Errorf("cachediff %s: warm run recomputed instead of hitting the store: %+v",
			spec.Name, st)
	}

	dir, err := os.MkdirTemp("", "cachediff-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	populate, err := artifact.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	if _, err := runPin("disk-populate", populate); err != nil {
		return nil, err
	}
	hydrated, err := artifact.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	disk, err := runPin("disk-warm", hydrated)
	if err != nil {
		return nil, err
	}
	dst := hydrated.Stats()
	if dst.DiskHits == 0 || dst.PredecodeComputes != 0 || dst.SAComputes != 0 {
		return nil, fmt.Errorf("cachediff %s: disk-warm run recomputed instead of hydrating: %+v",
			spec.Name, dst)
	}

	coldN := normPinCached(cold)
	for label, res := range map[string]*core.PinResult{"warm": warm, "disk-warm": disk} {
		if n := normPinCached(res); !reflect.DeepEqual(n, coldN) {
			return nil, fmt.Errorf("cachediff %s: serial Pin results differ (%s):\ncold: %+v\n%s: %+v",
				spec.Name, label, coldN, label, n)
		}
	}
	// The warm start only matters when the workload is hot enough to
	// promote at all; when it is, the seed must fire at compile time and
	// strictly earlier than the cold run earned its first promotion.
	if cold.Engine.HotPromotions > 0 {
		if warm.Engine.WarmPromotions == 0 {
			return nil, fmt.Errorf("cachediff %s: cold run promoted %d traces but the warm run seeded none",
				spec.Name, cold.Engine.HotPromotions)
		}
		if warm.Engine.FirstPromoDispatch >= cold.Engine.FirstPromoDispatch {
			return nil, fmt.Errorf("cachediff %s: warm first promotion at dispatch %d, cold at %d — no warm start",
				spec.Name, warm.Engine.FirstPromoDispatch, cold.Engine.FirstPromoDispatch)
		}
	}

	// SuperPin: cold vs warm (second run on a shared store), each at
	// host worker counts 1 and 4 — four runs, one reference result.
	type spRun struct {
		res    *core.Result
		events []obs.Event
	}
	var base *spRun
	spStore := artifact.NewStore()
	for _, workers := range cacheDiffWorkers {
		for _, store := range []*artifact.Store{nil, spStore, spStore} {
			opts := core.DefaultOptions()
			opts.SliceMSec = cfg.TimesliceMSec
			opts.MaxSlices = cfg.MaxSlices
			opts.PinCost = cfg.PinCost
			opts.PinCost.MemSurcharge = spec.SliceMemCost
			opts.NativeMemSurcharge = spec.NativeMemCost
			opts.Workers = workers
			opts.Artifacts = store
			opts.Trace = obs.NewTracer()
			spTool := newTool(kind)
			spRes, err := core.Run(cfg.Kernel, prog, spTool.Factory(), opts)
			if err != nil {
				return nil, fmt.Errorf("cachediff %s: superpin (cached=%v workers=%d): %w",
					spec.Name, store != nil, workers, err)
			}
			if spRes.Err != nil {
				return nil, fmt.Errorf("cachediff %s: superpin (cached=%v workers=%d): %w",
					spec.Name, store != nil, workers, spRes.Err)
			}
			if spTool.Total() != native.Ins {
				return nil, fmt.Errorf("cachediff %s: superpin (cached=%v workers=%d) counted %d, native executed %d",
					spec.Name, store != nil, workers, spTool.Total(), native.Ins)
			}
			events := opts.Trace.Events()
			if err := VerifyTrace(events, spRes, native.Time); err != nil {
				return nil, fmt.Errorf("cachediff %s (cached=%v workers=%d): %w",
					spec.Name, store != nil, workers, err)
			}
			run := &spRun{res: spRes, events: events}
			if base == nil {
				base = run
				continue
			}
			if !reflect.DeepEqual(run.res, base.res) {
				return nil, fmt.Errorf("cachediff %s: SuperPin results differ (cached=%v workers=%d):\ngot:  %+v\nwant: %+v",
					spec.Name, store != nil, workers, run.res, base.res)
			}
			if !reflect.DeepEqual(run.events, base.events) {
				return nil, fmt.Errorf("cachediff %s: SuperPin trace streams differ (cached=%v workers=%d: %d vs %d events)",
					spec.Name, store != nil, workers, len(run.events), len(base.events))
			}
		}
	}
	if st := spStore.Stats(); st.PredecodeComputes != 1 || st.SAComputes != 1 {
		return nil, fmt.Errorf("cachediff %s: SuperPin runs recomputed shared artifacts: %+v",
			spec.Name, st)
	}

	return &CacheDiffReport{
		Name:           spec.Name,
		Ins:            native.Ins,
		PinCycles:      cold.Time,
		SPCycles:       base.res.TotalTime,
		WarmPromotions: warm.Engine.WarmPromotions,
		ColdTTFP:       cold.Engine.FirstPromoDispatch,
		WarmTTFP:       warm.Engine.FirstPromoDispatch,
		DiskHits:       dst.DiskHits,
		Events:         len(base.events),
		Checks:         cacheDiffChecks,
	}, nil
}
