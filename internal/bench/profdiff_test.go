package bench

import "testing"

// TestRunProfDiff is the profile-equivalence check at the harness level:
// native, serial Pin (fast/-nofastpath) and SuperPin (fast/-nofastpath)
// sample streams must be byte-identical, profiling must charge zero
// virtual cycles, and the runs must actually exercise the merge path
// (multiple slices) and the shadow stack (nonzero depth).
func TestRunProfDiff(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Benchmarks = []string{"gzip", "gcc", "mgrid"}
	reports, err := RunProfDiff(cfg, Icount1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Ins == 0 || r.Samples == 0 || r.SPCycles == 0 {
			t.Fatalf("%s: empty report %+v", r.Name, r)
		}
		if r.Slices < 2 {
			t.Errorf("%s: only %d slices; profile merge untested", r.Name, r.Slices)
		}
		if r.MaxStack == 0 {
			t.Errorf("%s: no sample carried a shadow-stack frame", r.Name)
		}
	}
}
