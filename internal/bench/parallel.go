package bench

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// WorkersEnv is the environment variable consulted when Config.Workers
// (or spbench's -j flag) is zero.
const WorkersEnv = "SPBENCH_J"

// resolveWorkers picks the worker-pool size: an explicit positive value
// wins, then the SPBENCH_J environment override, then GOMAXPROCS.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(WorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// runIndexed evaluates fn(0..n-1) over a bounded worker pool and returns
// the results in index order, so parallel output is byte-identical to a
// serial run. Every experiment run owns its own kernel, memory image and
// engine, which is what makes the fan-out safe.
//
// The pool fails fast: once any index errors, no new indices are
// dispatched (in-flight runs finish). Among the errors observed, the
// lowest-index one is returned, keeping the common single-failure case
// deterministic.
func runIndexed[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
