// Package prof implements the virtual-time guest profiler: deterministic
// PC sampling with a shadow call stack, usable under plain interpretation,
// serial Pin, and SuperPin's parallel slices.
//
// # The virtual timeline
//
// Samples are taken every Interval *retired guest instructions*, not every
// N virtual cycles. The retired-instruction clock is the only timeline
// that is identical in every execution mode: cycle clocks differ between
// native and instrumented runs (instrumentation overhead dilates them) and
// between serial and sliced runs (each slice pays its own compile and
// detection costs), but the sequence of retired instructions is exactly
// the system's core determinism invariant — the master, a serial Pin run,
// and the concatenation of SuperPin's slices all retire the same
// instructions in the same order. Sampling on that clock makes the profile
// a pure function of the program, so per-slice sample streams merged in
// slice order are byte-identical to the serial profile. That identity is
// the strongest equivalence witness the reproduction has: it checks every
// sampled PC and call stack, not just aggregate counters.
//
// # The shadow call stack
//
// The probe maintains the stack from the instruction stream alone, with
// the SVR32 linkage idioms:
//
//   - a JAL or JALR that links (Rd != zero) is a call: push a frame
//     recording the callee entry (the branch target) and the return
//     address (the call's fall-through);
//   - a JALR that does not link (Rd == zero) is a return or an indirect
//     jump: pop every frame down to (and including) the one whose return
//     address matches the target, handling multi-level returns; if no
//     frame matches, the stack is left untouched (a plain indirect jump);
//   - a JAL that does not link is a plain jump.
//
// Because the rules consume only the instruction stream, the stack is
// deterministic across execution modes, and a slice can seed its stack
// from the master's at the fork point.
//
// # Zero virtual cost
//
// The probe is a runner-level observer, not a Pintool: it charges no
// virtual cycles and inserts no analysis calls, so attaching it changes
// nothing the guest or the scheduler can see. A profiled run's cycle
// counts, slice schedule and tool output are byte-identical to the same
// run without the probe.
package prof

import "superpin/internal/isa"

// MaxStackDepth bounds the shadow stack. Frames past the bound are not
// pushed (their matching returns then pop nothing), so a runaway
// recursion degrades the profile instead of growing memory without
// bound. The policy is a pure function of the instruction stream, so it
// is identical in every execution mode.
const MaxStackDepth = 4096

// Frame is one shadow-stack entry: the callee's entry address and the
// return address that will pop it.
type Frame struct {
	Entry uint32
	Ret   uint32
}

// Sample is one profile sample, taken after the Index-th retired
// instruction (Index is a multiple of the probe interval).
type Sample struct {
	// Index is the 1-based retired-instruction count at the sample point.
	Index uint64
	// PC is the address of the next instruction to execute — where
	// execution stands between instruction Index and Index+1, the same
	// convention as a timer-interrupt profiler.
	PC uint32
	// Stack is the shadow call stack's frame entry addresses, outermost
	// first. The innermost entry is the function containing PC (empty
	// when execution is outside any call).
	Stack []uint32
}

// Probe samples one process's execution. It is attached to a
// kernel.Proc and driven by the runners (the interpreter loop, the Pin
// engine's reference loop, and the superblock fast path) once per
// retired instruction. Not safe for concurrent use; each process owns
// its probe.
type Probe struct {
	interval uint64
	pos      uint64 // retired instructions observed so far
	next     uint64 // pos value at which the next sample fires
	stack    []Frame
	samples  []Sample
	maxDepth int
	dropped  uint64 // pushes suppressed by MaxStackDepth
}

// NewProbe returns a recording probe that samples every interval retired
// instructions. interval must be positive.
func NewProbe(interval uint64) *Probe {
	if interval == 0 {
		panic("prof: interval must be positive")
	}
	return &Probe{interval: interval, next: interval}
}

// NewObserver returns a probe that maintains the shadow stack but never
// records a sample. SuperPin's master runs one so that each slice can
// seed its probe (position and stack) from the master's state at the
// fork point.
func NewObserver(interval uint64) *Probe {
	if interval == 0 {
		panic("prof: interval must be positive")
	}
	return &Probe{interval: interval, next: ^uint64(0)}
}

// Fork returns a recording probe continuing from p's current position
// and stack — the probe a freshly forked slice runs. Its first sample
// fires at the smallest interval multiple strictly greater than the
// fork position, so a sample landing exactly on a slice boundary
// belongs to the slice that retired the boundary instruction and is
// never taken twice.
func (p *Probe) Fork() *Probe {
	q := &Probe{
		interval: p.interval,
		pos:      p.pos,
		next:     (p.pos/p.interval + 1) * p.interval,
		stack:    append([]Frame(nil), p.stack...),
	}
	return q
}

// OnExec observes one retired instruction: in is the instruction, fall
// is its fall-through address (address + 4), and next is the PC after
// it executed. Callers invoke it immediately after the instruction's
// architectural effects are applied, before any syscall servicing.
func (p *Probe) OnExec(in isa.Inst, fall, next uint32) {
	if in.Op == isa.OpJAL || in.Op == isa.OpJALR {
		if in.Rd != isa.RegZero {
			if len(p.stack) < MaxStackDepth {
				p.stack = append(p.stack, Frame{Entry: next, Ret: fall})
				if len(p.stack) > p.maxDepth {
					p.maxDepth = len(p.stack)
				}
			} else {
				p.dropped++
			}
		} else if in.Op == isa.OpJALR {
			// Return (or indirect jump): unwind to the matching frame.
			for i := len(p.stack) - 1; i >= 0; i-- {
				if p.stack[i].Ret == next {
					p.stack = p.stack[:i]
					break
				}
			}
		}
	}
	p.pos++
	if p.pos >= p.next {
		st := make([]uint32, len(p.stack))
		for i, f := range p.stack {
			st[i] = f.Entry
		}
		p.samples = append(p.samples, Sample{Index: p.pos, PC: next, Stack: st})
		p.next += p.interval
	}
}

// Samples returns the samples recorded so far. The slice is owned by
// the probe; callers must not modify it.
func (p *Probe) Samples() []Sample { return p.samples }

// Pos returns the number of retired instructions observed.
func (p *Probe) Pos() uint64 { return p.pos }

// MaxDepth returns the deepest shadow stack observed.
func (p *Probe) MaxDepth() int { return p.maxDepth }

// Stack returns a copy of the current shadow stack, outermost first.
func (p *Probe) Stack() []Frame { return append([]Frame(nil), p.stack...) }
