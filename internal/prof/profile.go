package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profile is a completed run's sample stream: the serial probe's samples,
// or SuperPin's per-slice streams concatenated in slice-merge order
// (which, by the slice-coverage invariant, is the same stream).
type Profile struct {
	// Interval is the sampling interval in retired instructions.
	Interval uint64
	// TotalIns is the run's total retired-instruction count.
	TotalIns uint64
	// Samples are in virtual-time order (strictly increasing Index).
	Samples []Sample
}

// Diff compares two profiles and returns a description of the first
// difference, or "" when they are identical. It is the profdiff
// experiment's comparator; the description names the diverging sample so
// failures are debuggable.
func (p *Profile) Diff(q *Profile) string {
	if p.Interval != q.Interval {
		return fmt.Sprintf("intervals differ: %d vs %d", p.Interval, q.Interval)
	}
	if p.TotalIns != q.TotalIns {
		return fmt.Sprintf("total instruction counts differ: %d vs %d", p.TotalIns, q.TotalIns)
	}
	if len(p.Samples) != len(q.Samples) {
		return fmt.Sprintf("sample counts differ: %d vs %d", len(p.Samples), len(q.Samples))
	}
	for i := range p.Samples {
		a, b := &p.Samples[i], &q.Samples[i]
		if a.Index != b.Index || a.PC != b.PC {
			return fmt.Sprintf("sample %d differs: index %d pc %#08x vs index %d pc %#08x",
				i, a.Index, a.PC, b.Index, b.PC)
		}
		if len(a.Stack) != len(b.Stack) {
			return fmt.Sprintf("sample %d (index %d) stack depths differ: %d vs %d",
				i, a.Index, len(a.Stack), len(b.Stack))
		}
		for j := range a.Stack {
			if a.Stack[j] != b.Stack[j] {
				return fmt.Sprintf("sample %d (index %d) stack frame %d differs: %#08x vs %#08x",
					i, a.Index, j, a.Stack[j], b.Stack[j])
			}
		}
	}
	return ""
}

// Symtab symbolizes guest addresses from a program's label map
// (asm.Program.Symbols). Lookup resolves an address to the nearest label
// at or below it; addresses below every label render as hex. Ties
// (several labels at one address) resolve to the lexicographically
// smallest name, so symbolization is deterministic.
type Symtab struct {
	addrs []uint32
	names []string
}

// NewSymtab builds a symbol table from a label map.
func NewSymtab(symbols map[string]uint32) *Symtab {
	type sym struct {
		addr uint32
		name string
	}
	syms := make([]sym, 0, len(symbols))
	for name, addr := range symbols {
		syms = append(syms, sym{addr, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	t := &Symtab{}
	for _, s := range syms {
		if n := len(t.addrs); n > 0 && t.addrs[n-1] == s.addr {
			continue // keep the smallest name at this address
		}
		t.addrs = append(t.addrs, s.addr)
		t.names = append(t.names, s.name)
	}
	return t
}

// Lookup returns the name of the nearest label at or below pc, or the
// address in hex when pc precedes every label. A nil Symtab symbolizes
// everything as hex.
func (t *Symtab) Lookup(pc uint32) string {
	if t != nil {
		// Rightmost label with addr <= pc.
		lo, hi := 0, len(t.addrs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.addrs[mid] <= pc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			return t.names[lo-1]
		}
	}
	return fmt.Sprintf("0x%08x", pc)
}

// stackLine renders one sample as a semicolon-separated frame path,
// outermost first. Frame entries are exact label addresses (call
// targets), so symbolization is function-granular; the innermost frame
// is the function containing the sampled PC. A sample outside any call
// frame falls back to the nearest label below the PC.
func stackLine(t *Symtab, s *Sample) string {
	if len(s.Stack) == 0 {
		return t.Lookup(s.PC)
	}
	parts := make([]string, len(s.Stack))
	for i, entry := range s.Stack {
		parts[i] = t.Lookup(entry)
	}
	return strings.Join(parts, ";")
}

// Folded renders the profile in folded-stack format — one
// "frame;frame;leaf count" line per distinct stack, sorted
// lexicographically — the input format of flamegraph generators
// (flamegraph.pl, speedscope, inferno).
func (p *Profile) Folded(t *Symtab) string {
	counts := make(map[string]uint64)
	for i := range p.Samples {
		counts[stackLine(t, &p.Samples[i])]++
	}
	lines := make([]string, 0, len(counts))
	for k := range counts {
		lines = append(lines, k)
	}
	sort.Strings(lines)
	var sb strings.Builder
	for _, k := range lines {
		fmt.Fprintf(&sb, "%s %d\n", k, counts[k])
	}
	return sb.String()
}

// Hotspot is one function's sample counts: Self counts samples whose
// innermost frame is the function, Total counts samples with the
// function anywhere on the stack (inclusive time).
type Hotspot struct {
	Name  string
	Self  uint64
	Total uint64
}

// Hotspots aggregates the profile per function, ordered by Self count
// descending (ties by name), the conventional hotspot ranking.
func (p *Profile) Hotspots(t *Symtab) []Hotspot {
	self := make(map[string]uint64)
	total := make(map[string]uint64)
	var onStack []string // reused per sample for dedup
	for i := range p.Samples {
		s := &p.Samples[i]
		var leaf string
		if len(s.Stack) == 0 {
			leaf = t.Lookup(s.PC)
			onStack = append(onStack[:0], leaf)
		} else {
			onStack = onStack[:0]
			for _, entry := range s.Stack {
				onStack = append(onStack, t.Lookup(entry))
			}
			leaf = onStack[len(onStack)-1]
		}
		self[leaf]++
		// Count each function once per sample even if it recurs.
		seen := onStack
		sort.Strings(seen)
		prev := ""
		for j, name := range seen {
			if j == 0 || name != prev {
				total[name]++
			}
			prev = name
		}
	}
	out := make([]Hotspot, 0, len(total))
	for name, tot := range total {
		out = append(out, Hotspot{Name: name, Self: self[name], Total: tot})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// jsonProfile is the JSON artifact schema.
type jsonProfile struct {
	Interval uint64       `json:"interval"`
	TotalIns uint64       `json:"total_ins"`
	Samples  []jsonSample `json:"samples"`
}

type jsonSample struct {
	Index uint64   `json:"i"`
	PC    string   `json:"pc"`
	Leaf  string   `json:"leaf"`
	Stack []string `json:"stack,omitempty"`
}

// WriteJSON writes the profile as a JSON artifact with both raw PCs and
// symbolized frames. Output is deterministic (fixed field order, samples
// in virtual-time order).
func (p *Profile) WriteJSON(w io.Writer, t *Symtab) error {
	jp := jsonProfile{
		Interval: p.Interval,
		TotalIns: p.TotalIns,
		Samples:  make([]jsonSample, len(p.Samples)),
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		js := jsonSample{
			Index: s.Index,
			PC:    fmt.Sprintf("0x%08x", s.PC),
		}
		if len(s.Stack) == 0 {
			js.Leaf = t.Lookup(s.PC)
		} else {
			js.Stack = make([]string, len(s.Stack))
			for j, entry := range s.Stack {
				js.Stack[j] = t.Lookup(entry)
			}
			js.Leaf = js.Stack[len(js.Stack)-1]
		}
		jp.Samples[i] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jp)
}
