package prof

import (
	"reflect"
	"strings"
	"testing"

	"superpin/internal/isa"
)

var (
	callIns = isa.Inst{Op: isa.OpJAL, Rd: isa.RegLR}
	retIns  = isa.Inst{Op: isa.OpJALR, Rd: isa.RegZero}
	jmpIns  = isa.Inst{Op: isa.OpJAL, Rd: isa.RegZero}
	addIns  = isa.Inst{Op: isa.OpADD, Rd: 10}
)

func TestShadowStackCallRet(t *testing.T) {
	p := NewProbe(1 << 20) // interval far beyond the test stream
	// call at 0x100 -> 0x200
	p.OnExec(callIns, 0x104, 0x200)
	if got := p.Stack(); len(got) != 1 || got[0] != (Frame{Entry: 0x200, Ret: 0x104}) {
		t.Fatalf("after call: stack %v", got)
	}
	// nested call at 0x204 -> 0x300
	p.OnExec(callIns, 0x208, 0x300)
	if got := p.Stack(); len(got) != 2 {
		t.Fatalf("after nested call: stack %v", got)
	}
	// return to 0x208 pops the inner frame only
	p.OnExec(retIns, 0x304, 0x208)
	if got := p.Stack(); len(got) != 1 || got[0].Entry != 0x200 {
		t.Fatalf("after inner ret: stack %v", got)
	}
	// return to 0x104 pops the outer frame
	p.OnExec(retIns, 0x20c, 0x104)
	if got := p.Stack(); len(got) != 0 {
		t.Fatalf("after outer ret: stack %v", got)
	}
	if p.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", p.MaxDepth())
	}
}

func TestShadowStackMultiPopAndIndirect(t *testing.T) {
	p := NewProbe(1 << 20)
	p.OnExec(callIns, 0x104, 0x200) // frame ret 0x104
	p.OnExec(callIns, 0x208, 0x300) // frame ret 0x208
	p.OnExec(callIns, 0x308, 0x400) // frame ret 0x308
	// longjmp-style return straight to 0x104: pops all three frames.
	p.OnExec(retIns, 0x40c, 0x104)
	if got := p.Stack(); len(got) != 0 {
		t.Fatalf("multi-pop left stack %v", got)
	}
	// Indirect jump to an address matching no frame leaves the stack.
	p.OnExec(callIns, 0x104, 0x200)
	p.OnExec(retIns, 0x20c, 0xdead_0000)
	if got := p.Stack(); len(got) != 1 {
		t.Fatalf("indirect jump changed stack: %v", got)
	}
	// A non-linking JAL is a plain jump: no push, no pop.
	p.OnExec(jmpIns, 0x210, 0x500)
	if got := p.Stack(); len(got) != 1 {
		t.Fatalf("plain jump changed stack: %v", got)
	}
}

func TestShadowStackDepthCap(t *testing.T) {
	p := NewProbe(1 << 30)
	for i := 0; i < MaxStackDepth+10; i++ {
		p.OnExec(callIns, 0x104, 0x200)
	}
	if got := len(p.Stack()); got != MaxStackDepth {
		t.Fatalf("stack depth %d, want cap %d", got, MaxStackDepth)
	}
	if p.dropped != 10 {
		t.Fatalf("dropped = %d, want 10", p.dropped)
	}
}

func TestSamplingInterval(t *testing.T) {
	p := NewProbe(4)
	for i := uint32(0); i < 10; i++ {
		pc := 4 * i
		p.OnExec(addIns, pc+4, pc+4)
	}
	got := p.Samples()
	want := []Sample{
		{Index: 4, PC: 16, Stack: []uint32{}},
		{Index: 8, PC: 32, Stack: []uint32{}},
	}
	if len(got) != len(want) {
		t.Fatalf("samples: %v", got)
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].PC != want[i].PC || len(got[i].Stack) != 0 {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if p.Pos() != 10 {
		t.Fatalf("Pos = %d, want 10", p.Pos())
	}
}

// drive advances a probe n instructions of straight-line code starting
// at the given instruction index (pc = 4*index).
func drive(p *Probe, start, n uint64) {
	for i := start; i < start+n; i++ {
		pc := uint32(4 * i)
		p.OnExec(addIns, pc+4, pc+4)
	}
}

// TestForkMergeEquivalence is the profiler's core invariant in
// miniature: splitting the instruction stream at arbitrary points —
// including exactly on a sample boundary — and concatenating the
// pieces' samples reproduces the serial stream exactly.
func TestForkMergeEquivalence(t *testing.T) {
	const interval, total = 4, 40
	serial := NewProbe(interval)
	drive(serial, 0, total)

	for _, cuts := range [][]uint64{
		{7},
		{8},          // exactly on a sample boundary
		{4, 8, 12},   // every cut on a boundary
		{1, 2, 3, 5}, // tiny slices
		{39},
	} {
		master := NewObserver(interval)
		var merged []Sample
		prev := uint64(0)
		for _, cut := range append(cuts, total) {
			probe := master.Fork()
			drive(probe, prev, cut-prev)
			drive(master, prev, cut-prev)
			merged = append(merged, probe.Samples()...)
			prev = cut
		}
		if len(master.Samples()) != 0 {
			t.Fatalf("observer recorded samples")
		}
		if !reflect.DeepEqual(merged, serial.Samples()) {
			t.Errorf("cuts %v: merged %v != serial %v", cuts, merged, serial.Samples())
		}
	}
}

func TestSymtab(t *testing.T) {
	st := NewSymtab(map[string]uint32{"main": 0x100, "zz": 0x100, "kernel0": 0x200})
	for _, tc := range []struct {
		pc   uint32
		want string
	}{
		{0x100, "main"}, // tie-break: smallest name
		{0x1fc, "main"},
		{0x200, "kernel0"},
		{0x5000, "kernel0"},
		{0x50, "0x00000050"}, // below every label
	} {
		if got := st.Lookup(tc.pc); got != tc.want {
			t.Errorf("Lookup(%#x) = %q, want %q", tc.pc, got, tc.want)
		}
	}
	var nilTab *Symtab
	if got := nilTab.Lookup(0x123); got != "0x00000123" {
		t.Errorf("nil symtab Lookup = %q", got)
	}
}

func testProfile() *Profile {
	return &Profile{
		Interval: 10,
		TotalIns: 60,
		Samples: []Sample{
			{Index: 10, PC: 0x110, Stack: nil},
			{Index: 20, PC: 0x210, Stack: []uint32{0x200}},
			{Index: 30, PC: 0x310, Stack: []uint32{0x200, 0x300}},
			{Index: 40, PC: 0x214, Stack: []uint32{0x200}},
			{Index: 50, PC: 0x318, Stack: []uint32{0x200, 0x300}},
		},
	}
}

func testSymtab() *Symtab {
	return NewSymtab(map[string]uint32{"main": 0x100, "kernel0": 0x200, "helper": 0x300})
}

func TestFolded(t *testing.T) {
	got := testProfile().Folded(testSymtab())
	want := "kernel0 2\nkernel0;helper 2\nmain 1\n"
	if got != want {
		t.Errorf("Folded:\n%s\nwant:\n%s", got, want)
	}
}

func TestHotspots(t *testing.T) {
	hs := testProfile().Hotspots(testSymtab())
	want := []Hotspot{
		{Name: "helper", Self: 2, Total: 2},
		{Name: "kernel0", Self: 2, Total: 4},
		{Name: "main", Self: 1, Total: 1},
	}
	if !reflect.DeepEqual(hs, want) {
		t.Errorf("Hotspots = %+v, want %+v", hs, want)
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := testProfile().WriteJSON(&sb, testSymtab()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`"interval": 10`, `"total_ins": 60`, `"leaf": "helper"`, `"pc": "0x00000110"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSON missing %q:\n%s", frag, out)
		}
	}
}

func TestDiff(t *testing.T) {
	a, b := testProfile(), testProfile()
	if d := a.Diff(b); d != "" {
		t.Fatalf("identical profiles diff: %s", d)
	}
	b.Samples[2].Stack = []uint32{0x200}
	if d := a.Diff(b); d == "" || !strings.Contains(d, "sample 2") {
		t.Fatalf("diff = %q", d)
	}
	b = testProfile()
	b.TotalIns++
	if d := a.Diff(b); !strings.Contains(d, "total instruction") {
		t.Fatalf("diff = %q", d)
	}
}
