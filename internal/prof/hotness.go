package prof

// NumExitSlots is the size of an ExitHist: trace exits are branch
// targets, so a handful of direct-mapped slots covers the taken and
// fall-through destinations of a trace's few exit points.
const NumExitSlots = 4

// ExitHist is a tiny edge profile: a direct-mapped histogram of control
// transfer targets, keyed by PC. The Pin engine embeds one per compiled
// trace to measure which successor a hot trace actually takes, and the
// second-tier compiler reads it back to lay the hottest successor out as
// the preferred fall-through (the Technion TC2 pintool's profile-guided
// trace layout, applied to this repository's dispatch model).
//
// Like every prof measurement it ticks on the retired-instruction
// timeline only — recording is driven by guest control flow, so the
// counts are a pure function of the program and identical in every
// execution mode and at every host worker count. The histogram itself is
// host-visible state (it steers host-side execution strategy, never
// virtual cycles) and is owned by a single engine, so it needs no
// synchronization.
type ExitHist struct {
	pcs    [NumExitSlots]uint32
	counts [NumExitSlots]uint64
}

// slot maps a word-aligned target PC to its direct-mapped slot.
func exitSlot(pc uint32) int { return int((pc >> 2) % NumExitSlots) }

// Record counts one transfer to pc. A slot conflict evicts the previous
// target's count — the histogram is a cheap sketch, not an exact profile;
// the dominant successor of a hot trace survives eviction by volume.
func (h *ExitHist) Record(pc uint32) {
	i := exitSlot(pc)
	if h.pcs[i] != pc {
		h.pcs[i] = pc
		h.counts[i] = 0
	}
	h.counts[i]++
}

// Hottest returns the most-recorded target and its count. Count zero
// means nothing was recorded. Ties resolve to the lowest PC, so the
// answer is deterministic.
func (h *ExitHist) Hottest() (pc uint32, count uint64) {
	for i := range h.pcs {
		c := h.counts[i]
		if c > count || (c == count && c > 0 && h.pcs[i] < pc) {
			pc, count = h.pcs[i], c
		}
	}
	return pc, count
}

// Seed presets pc's slot to count, as if count transfers to pc had been
// recorded. The artifact cache's warm-start path uses it to restore a
// prior run's hottest-exit measurement into a freshly compiled trace.
// Seeding with count zero is a no-op (an empty histogram stays empty).
func (h *ExitHist) Seed(pc uint32, count uint64) {
	if count == 0 {
		return
	}
	i := exitSlot(pc)
	h.pcs[i] = pc
	h.counts[i] = count
}

// Count returns the recorded count for pc (zero when pc is not resident).
func (h *ExitHist) Count(pc uint32) uint64 {
	if i := exitSlot(pc); h.pcs[i] == pc {
		return h.counts[i]
	}
	return 0
}
