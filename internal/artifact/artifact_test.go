package artifact

import (
	"sync"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/isa"
	"superpin/internal/jit"
	"superpin/internal/obs"
	"superpin/internal/workload"
)

// buildProg returns a small catalog program.
func buildProg(t *testing.T, name string) *asm.Program {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("%s missing from catalog", name)
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return prog
}

func TestKeyOf(t *testing.T) {
	prog := buildProg(t, "gzip")
	k1 := KeyOf(prog)
	if k1 != KeyOf(prog) {
		t.Fatal("KeyOf is not deterministic")
	}
	if k1 == KeyOf(buildProg(t, "mgrid")) {
		t.Fatal("distinct images share a key")
	}
	// Any byte of the image changes the key.
	mutated := *prog
	mutated.Segments = append([]asm.Segment{}, prog.Segments...)
	data := append([]byte{}, mutated.Segments[0].Data...)
	data[0] ^= 1
	mutated.Segments[0] = asm.Segment{Addr: prog.Segments[0].Addr, Data: data}
	if KeyOf(&mutated) == k1 {
		t.Fatal("mutated image bytes kept the same key")
	}
	// Symbols are part of the key (sa roots discovery at them).
	mutated = *prog
	mutated.Symbols = map[string]uint32{"extra": 0x1000}
	for n, a := range prog.Symbols {
		mutated.Symbols[n] = a
	}
	if KeyOf(&mutated) == k1 {
		t.Fatal("symbol table change kept the same key")
	}
	// Line tables are excluded: nothing execution-visible reads them.
	mutated = *prog
	mutated.Lines = map[uint32]int{0x1000: 42}
	if KeyOf(&mutated) != k1 {
		t.Fatal("line table change altered the key")
	}
}

// TestSingleflight hammers one store from many goroutines and asserts
// the singleflight contract: each artifact computed exactly once, every
// caller handed the same pointer. Run under -race in check.sh.
func TestSingleflight(t *testing.T) {
	prog := buildProg(t, "gzip")
	key := KeyOf(prog)
	s := NewStore()

	const goroutines = 32
	var wg sync.WaitGroup
	pres := make([]any, goroutines)
	sas := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pres[i] = s.Predecode(key, prog)
			sas[i] = s.Analysis(key, prog)
			s.Seed(key)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if pres[i] != pres[0] {
			t.Fatalf("goroutine %d got a different PredecodeSet pointer", i)
		}
		if sas[i] != sas[0] {
			t.Fatalf("goroutine %d got a different Analysis pointer", i)
		}
	}
	st := s.Stats()
	if st.PredecodeComputes != 1 || st.SAComputes != 1 {
		t.Fatalf("computes = %d/%d, want exactly 1 each", st.PredecodeComputes, st.SAComputes)
	}
	if st.PredecodeHits != goroutines-1 || st.SAHits != goroutines-1 {
		t.Fatalf("hits = %d/%d, want %d each", st.PredecodeHits, st.SAHits, goroutines-1)
	}
	if st.SeedMisses != goroutines {
		t.Fatalf("seed misses = %d, want %d (no seed contributed yet)", st.SeedMisses, goroutines)
	}
}

// TestSeedMergePublishes: merges publish immutable snapshots; concurrent
// merges never lose counts.
func TestSeedMergePublishes(t *testing.T) {
	prog := buildProg(t, "gzip")
	key := KeyOf(prog)
	s := NewStore()

	if s.Seed(key) != nil {
		t.Fatal("fresh store returned a seed")
	}
	d1 := jit.NewWarmSeed()
	d1.Entries[0x1000] = jit.WarmEntry{Execs: 10, HotExit: 0x2000, HotCount: 5}
	s.MergeSeed(key, d1)
	snap := s.Seed(key)
	if snap.Len() != 1 {
		t.Fatalf("seed len = %d, want 1", snap.Len())
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := jit.NewWarmSeed()
			d.Entries[0x1000] = jit.WarmEntry{Execs: 1}
			s.MergeSeed(key, d)
		}()
	}
	wg.Wait()
	// The earlier snapshot is untouched.
	if e := snap.Entries[0x1000]; e.Execs != 10 {
		t.Fatalf("published snapshot mutated: %+v", e)
	}
	got := s.Seed(key).Entries[0x1000]
	if got.Execs != 10+goroutines {
		t.Fatalf("merged Execs = %d, want %d", got.Execs, 10+goroutines)
	}
	if got.HotExit != 0x2000 || got.HotCount != 5 {
		t.Fatalf("merge lost the hottest exit: %+v", got)
	}
	// Empty deltas are ignored.
	s.MergeSeed(key, nil)
	s.MergeSeed(key, jit.NewWarmSeed())
	if st := s.Stats(); st.SeedMerges != 1+goroutines {
		t.Fatalf("merges = %d, want %d", st.SeedMerges, 1+goroutines)
	}
}

func TestPublishMetrics(t *testing.T) {
	prog := buildProg(t, "gzip")
	s := NewStore()
	s.Predecode(KeyOf(prog), prog)

	// Nil registry and nil store are no-ops.
	s.PublishMetrics(nil)
	(*Store)(nil).PublishMetrics(nil)

	m := obs.NewMetrics()
	s.PublishMetrics(m)
	gauges := m.Snapshot().Gauges
	if gauges["artifact.predecode.computes"] != 1 {
		t.Fatalf("artifact.predecode.computes = %v, want 1", gauges["artifact.predecode.computes"])
	}
	if _, ok := gauges["artifact.disk.errors"]; !ok {
		t.Fatal("artifact.disk.errors not published")
	}
}

// TestKeyIsolation: distinct images never share artifacts.
func TestKeyIsolation(t *testing.T) {
	a := buildProg(t, "gzip")
	b := buildProg(t, "mgrid")
	s := NewStore()
	if s.Predecode(KeyOf(a), a) == s.Predecode(KeyOf(b), b) {
		t.Fatal("distinct images share a PredecodeSet")
	}
	if st := s.Stats(); st.PredecodeComputes != 2 {
		t.Fatalf("computes = %d, want 2", st.PredecodeComputes)
	}
}

// tiny returns a minimal valid program for cheap disk tests.
func tiny(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(0x1000)
	b.I(isa.OpADDI, isa.RegSys, isa.RegZero, 1)
	b.I(isa.OpADDI, isa.RegArg0, isa.RegZero, 0)
	b.Syscall()
	return b.MustFinish()
}
