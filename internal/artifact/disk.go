package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// On-disk entry format, little-endian:
//
//	magic   [4]byte  "SPAC"
//	version uint16   formatVersion
//	kind    uint8
//	key     [32]byte image content hash
//	plen    uint32   payload length
//	payload [plen]byte
//	sum     [32]byte SHA-256 of payload
//
// The key and version live inside the file (not only in its name) so a
// renamed or stale file can never masquerade as a different image's
// artifact. The trust boundary is corruption and staleness, not malice:
// the checksum catches torn or bit-rotted files, the embedded key
// catches misfiled ones, and the version gates format evolution — a
// hostile writer with access to the cache directory could still plant a
// well-formed file, which is the same trust level as the binary itself.
const (
	diskMagic     = "SPAC"
	formatVersion = 1
	headerSize    = 4 + 2 + 1 + 32 + 4
)

// kind tags the artifact type inside an entry.
type kind uint8

const (
	kindPredecode kind = 1
	kindSA        kind = 2
	kindSeed      kind = 3
)

func (k kind) String() string {
	switch k {
	case kindPredecode:
		return "predecode"
	case kindSA:
		return "sa"
	case kindSeed:
		return "seed"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// NewDiskStore returns a store backed by the persistent cache directory
// dir, creating it (and parents) when missing. An unusable directory —
// not creatable, not a directory, or not writable — is an error so the
// CLIs can fail fast instead of silently running uncached.
func NewDiskStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("artifact: cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	s := NewStore()
	s.dir = dir
	return s, nil
}

// Dir returns the persistent cache directory, or "" for an in-process
// only store.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryPath(k Key, kd kind) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%s.v%d", k.String(), kd, formatVersion))
}

// readDisk loads and validates one cache entry. ok is false — and the
// caller proceeds down the cold path — for a store without a disk
// layer, an absent file, or any integrity failure (which also counts a
// disk error). It never returns an error: the disk layer is strictly an
// accelerator.
func (s *Store) readDisk(k Key, kd kind) (payload []byte, ok bool) {
	if s.dir == "" {
		return nil, false
	}
	if s.fetchHist != nil {
		fetchStart := time.Now()
		defer func() { s.fetchHist.Observe(uint64(time.Since(fetchStart))) }()
	}
	data, err := os.ReadFile(s.entryPath(k, kd))
	if err != nil {
		if os.IsNotExist(err) {
			s.diskMisses.Add(1)
		} else {
			s.diskErrors.Add(1)
		}
		return nil, false
	}
	s.diskBytesRead.Add(uint64(len(data)))
	if len(data) < headerSize+sha256.Size ||
		string(data[:4]) != diskMagic ||
		binary.LittleEndian.Uint16(data[4:]) != formatVersion ||
		kind(data[6]) != kd ||
		!bytes.Equal(data[7:39], k[:]) {
		s.diskErrors.Add(1)
		return nil, false
	}
	plen := binary.LittleEndian.Uint32(data[39:])
	if uint64(len(data)) != headerSize+uint64(plen)+sha256.Size {
		s.diskErrors.Add(1)
		return nil, false
	}
	payload = data[headerSize : headerSize+plen]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[headerSize+plen:]) {
		s.diskErrors.Add(1)
		return nil, false
	}
	s.diskHits.Add(1)
	return payload, true
}

// writeDisk persists one cache entry with an atomic rename, so readers
// (including concurrent processes) only ever observe complete files.
// Failures count a disk error and are otherwise ignored: persisting is
// best-effort, the in-process result is already correct.
func (s *Store) writeDisk(k Key, kd kind, payload []byte) {
	if s.dir == "" {
		return
	}
	buf := make([]byte, 0, headerSize+len(payload)+sha256.Size)
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVersion)
	buf = append(buf, byte(kd))
	buf = append(buf, k[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		s.diskErrors.Add(1)
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.diskErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), s.entryPath(k, kd)); err != nil {
		os.Remove(tmp.Name())
		s.diskErrors.Add(1)
		return
	}
	s.diskWrites.Add(1)
	s.diskBytesWritten.Add(uint64(len(buf)))
}
