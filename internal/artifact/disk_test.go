package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"superpin/internal/jit"
	"superpin/internal/sa"
)

func TestDiskStoreCreatesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatalf("NewDiskStore: %v", err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir not created: %v", err)
	}
}

func TestDiskStoreRejectsUnusableDir(t *testing.T) {
	// A path through a regular file can never become a directory — this
	// fails for any user, including root.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(file); err == nil {
		t.Fatal("NewDiskStore accepted a regular file as cache dir")
	}
	if _, err := NewDiskStore(filepath.Join(file, "sub")); err == nil {
		t.Fatal("NewDiskStore accepted a path through a regular file")
	}
}

// TestDiskRoundtrip: a second store on the same directory loads every
// artifact from disk instead of recomputing, and the loaded results
// match the computed ones exactly.
func TestDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	prog := tiny(t)
	key := KeyOf(prog)

	a, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre := a.Predecode(key, prog)
	an := a.Analysis(key, prog)
	seed := jit.NewWarmSeed()
	seed.Entries[0x1000] = jit.WarmEntry{Execs: 64, HotExit: 0x1008, HotCount: 63}
	a.MergeSeed(key, seed)
	if st := a.Stats(); st.DiskWrites != 3 || st.DiskHits != 0 {
		t.Fatalf("populate stats = %+v, want 3 writes, 0 hits", st)
	}

	b, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre2 := b.Predecode(key, prog)
	an2 := b.Analysis(key, prog)
	seed2 := b.Seed(key)
	if st := b.Stats(); st.DiskHits != 3 || st.DiskErrors != 0 {
		t.Fatalf("warm stats = %+v, want 3 disk hits, 0 errors", st)
	}
	if pre2.Pages() != pre.Pages() {
		t.Fatalf("loaded predecode pages = %d, want %d", pre2.Pages(), pre.Pages())
	}
	if !reflect.DeepEqual(an.Diags(), an2.Diags()) ||
		an.NumBlocks() != an2.NumBlocks() ||
		an.LiveIn(0x1000) != an2.LiveIn(0x1000) {
		t.Fatal("loaded analysis differs from computed analysis")
	}
	if seed2.Len() != 1 || seed2.Entries[0x1000].Execs != 64 {
		t.Fatalf("loaded seed = %+v, want the persisted entry", seed2)
	}
}

// TestDiskCorruptCorpus seeds one corruption per entry, sa-verifier
// corpus style: every damaged cache file must fall back silently to the
// cold path — identical results, a counted disk error, no crash, and
// never a poisoned artifact.
func TestDiskCorruptCorpus(t *testing.T) {
	prog := tiny(t)
	key := KeyOf(prog)

	// Reference artifacts from a clean store.
	ref, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refAn := ref.Analysis(key, prog)
	refPre := ref.Predecode(key, prog)

	corruptions := []struct {
		name    string
		mutate  func(path string) error
		recover bool // expect DiskErrors (false: counted as miss)
	}{
		{"truncated to header", func(p string) error {
			return os.Truncate(p, headerSize)
		}, true},
		{"truncated mid-payload", func(p string) error {
			fi, err := os.Stat(p)
			if err != nil {
				return err
			}
			return os.Truncate(p, fi.Size()-7)
		}, true},
		{"payload bit flip", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[headerSize] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}, true},
		{"wrong magic", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			copy(data, "NOPE")
			return os.WriteFile(p, data, 0o644)
		}, true},
		{"stale format version", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[4], data[5] = 0xFF, 0xFF
			return os.WriteFile(p, data, 0o644)
		}, true},
		{"key mismatch (misfiled entry)", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[7] ^= 0xFF
			return os.WriteFile(p, data, 0o644)
		}, true},
		{"empty file", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}, true},
		{"garbage file", func(p string) error {
			return os.WriteFile(p, []byte("not a cache entry at all"), 0o644)
		}, true},
		{"deleted", os.Remove, false},
	}

	for _, kd := range []kind{kindPredecode, kindSA, kindSeed} {
		for _, tc := range corruptions {
			t.Run(kd.String()+"/"+tc.name, func(t *testing.T) {
				dir := t.TempDir()
				w, err := NewDiskStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				w.Predecode(key, prog)
				w.Analysis(key, prog)
				seed := jit.NewWarmSeed()
				seed.Entries[0x1000] = jit.WarmEntry{Execs: 64, HotExit: 0x1008, HotCount: 63}
				w.MergeSeed(key, seed)

				if err := tc.mutate(w.entryPath(key, kd)); err != nil {
					t.Fatalf("mutate: %v", err)
				}

				v, err := NewDiskStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				pre := v.Predecode(key, prog)
				an := v.Analysis(key, prog)
				v.Seed(key)
				if pre.Pages() != refPre.Pages() {
					t.Fatalf("fallback predecode pages = %d, want %d", pre.Pages(), refPre.Pages())
				}
				if an.NumBlocks() != refAn.NumBlocks() || an.LiveIn(0x1000) != refAn.LiveIn(0x1000) {
					t.Fatal("fallback analysis differs from a cold compute")
				}
				st := v.Stats()
				if tc.recover && st.DiskErrors == 0 {
					t.Fatalf("corruption was not counted: %+v", st)
				}
				if !tc.recover && st.DiskMisses == 0 {
					t.Fatalf("deleted entry not counted as miss: %+v", st)
				}
			})
		}
	}
}

// TestDiskSAWrongImage: an sa entry copied under another image's key (or
// an image rebuilt differently at the same path) is rejected by the
// structural validation, not silently adopted.
// TestDiskSAStaleVersion: an SA entry written by an older encoding
// version (simulated by stripping the v2 magic/version header, which is
// exactly what a v1 payload looks like) must fall back to a cold
// analysis — counted as a disk error, never a decode panic or a wrong
// Analysis.
func TestDiskSAStaleVersion(t *testing.T) {
	dir := t.TempDir()
	prog := tiny(t)
	key := KeyOf(prog)

	w, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stale := sa.Analyze(prog).Encode()[8:] // v1 payloads carried no header
	w.writeDisk(key, kindSA, stale)

	v, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	an := v.Analysis(key, prog)
	ref := sa.Analyze(prog)
	if an.NumBlocks() != ref.NumBlocks() || an.LiveIn(0x1000) != ref.LiveIn(0x1000) ||
		an.IPStats() != ref.IPStats() {
		t.Fatal("stale-version fallback differs from a cold compute")
	}
	if st := v.Stats(); st.DiskErrors == 0 {
		t.Fatalf("stale version not counted as a disk error: %+v", st)
	}
	if st := v.Stats(); st.SAComputes == 0 {
		t.Fatalf("stale version did not trigger a cold compute: %+v", st)
	}
}

func TestDiskSAWrongImage(t *testing.T) {
	dir := t.TempDir()
	prog := tiny(t)
	other := buildProg(t, "gzip")
	key, okey := KeyOf(prog), KeyOf(other)

	w, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Analysis(key, prog)
	// Forge: rewrite tiny's sa payload under gzip's key with a matching
	// header, simulating a misdirected-but-internally-consistent entry.
	payload := sa.Analyze(prog).Encode()
	w2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2.writeDisk(okey, kindSA, payload)

	v, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	an := v.Analysis(okey, other)
	if an.NumBlocks() != sa.Analyze(other).NumBlocks() {
		t.Fatal("forged entry poisoned the analysis")
	}
	if st := v.Stats(); st.DiskErrors == 0 {
		t.Fatalf("structural rejection not counted: %+v", st)
	}
}
