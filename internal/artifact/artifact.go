// Package artifact is the content-addressed artifact store: host-side
// derived state that is a pure function of a program image — predecoded
// page tables (internal/mem), static analysis results (internal/sa) and
// the hot-trace warm-start seed (internal/jit) — cached under the
// image's content hash and shared across executions.
//
// Layer 1 is an in-process cache with singleflight semantics: any number
// of concurrent executions of the same image (spbench -j workers, future
// fleet-mode jobs) compute each artifact exactly once and share the
// immutable result. Layer 2, enabled by constructing the store with
// NewDiskStore, persists artifacts across processes with versioned,
// checksummed, atomically-written files; a missing, corrupt or stale
// entry silently falls back to the in-process cold path.
//
// Everything cached here steers host-side execution only. Predecode
// adoption verifies page bytes before installing views, sa payloads are
// structurally validated against the image, and the warm seed merely
// accelerates second-tier promotion — so virtual results are
// byte-identical with the store attached, warm or cold (`spbench -exp
// cachediff` proves exactly that).
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"

	"superpin/internal/asm"
	"superpin/internal/jit"
	"superpin/internal/mem"
	"superpin/internal/obs"
	"superpin/internal/sa"
)

// Key is the content hash of a program image.
type Key [sha256.Size]byte

// String returns the key in hex, as used in cache file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives the content key of a program image: a SHA-256 over the
// entry point, every segment (address and bytes, in image order) and the
// symbol table sorted by name. Symbols are part of the key because sa's
// block discovery roots at symbol-labeled addresses; source line tables
// are excluded because nothing execution-visible reads them.
func KeyOf(p *asm.Program) Key {
	h := sha256.New()
	var w [8]byte
	binary.LittleEndian.PutUint32(w[:4], p.Entry)
	h.Write(w[:4])
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Segments)))
	h.Write(w[:4])
	for _, s := range p.Segments {
		binary.LittleEndian.PutUint32(w[:4], s.Addr)
		binary.LittleEndian.PutUint32(w[4:], uint32(len(s.Data)))
		h.Write(w[:])
		h.Write(s.Data)
	}
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		binary.LittleEndian.PutUint32(w[:4], uint32(len(name)))
		h.Write(w[:4])
		h.Write([]byte(name))
		binary.LittleEndian.PutUint32(w[:4], p.Symbols[name])
		h.Write(w[:4])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats is a snapshot of the store's counters. Hits and Computes
// partition the calls for each artifact kind: every call either found
// the entry without building it — already in process, or hydrated from
// the disk layer — and counts as a hit, or built it from the image
// (compute, at most one per key per process — the singleflight
// guarantee the tests assert).
type Stats struct {
	PredecodeHits     uint64
	PredecodeComputes uint64
	SAHits            uint64
	SAComputes        uint64
	SeedHits          uint64 // Seed calls that found a non-empty seed
	SeedMisses        uint64
	SeedMerges        uint64

	DiskHits         uint64 // artifacts loaded from the disk layer
	DiskMisses       uint64 // absent cache files (cold disk)
	DiskErrors       uint64 // corrupt/stale/unreadable entries or failed writes
	DiskWrites       uint64
	DiskBytesRead    uint64
	DiskBytesWritten uint64
}

// entry is the per-image cache line.
type entry struct {
	preOnce sync.Once
	pre     *mem.PredecodeSet

	saOnce sync.Once
	sa     *sa.Analysis

	// seed is an immutable snapshot, replaced wholesale under seedMu by
	// MergeSeed; readers keep whatever snapshot they loaded. diskSeed
	// records that the disk layer was consulted (once per process).
	seedMu   sync.Mutex
	seed     *jit.WarmSeed
	diskSeed bool
}

// Store is the artifact cache. A single Store is shared by every
// execution (and every SuperPin slice engine) that should deduplicate
// work; all methods are safe for concurrent use.
type Store struct {
	dir string // "" = in-process only

	mu      sync.Mutex
	entries map[Key]*entry

	predecodeHits     atomic.Uint64
	predecodeComputes atomic.Uint64
	saHits            atomic.Uint64
	saComputes        atomic.Uint64
	seedHits          atomic.Uint64
	seedMisses        atomic.Uint64
	seedMerges        atomic.Uint64
	diskHits          atomic.Uint64
	diskMisses        atomic.Uint64
	diskErrors        atomic.Uint64
	diskWrites        atomic.Uint64
	diskBytesRead     atomic.Uint64
	diskBytesWritten  atomic.Uint64

	// fetchHist, when non-nil, observes the wall-clock latency of every
	// disk-layer fetch attempt (hit, miss, or error) in nanoseconds.
	// Attached via AttachMetrics; nil keeps the fetch path clock-free.
	fetchHist *obs.Hist
}

// AttachMetrics resolves the store's latency histogram from the registry
// ("artifact.fetch_ns"). Safe to call with a nil registry (detaches).
func (s *Store) AttachMetrics(m *obs.Metrics) {
	if s == nil {
		return
	}
	s.fetchHist = m.Hist("artifact.fetch_ns")
}

// NewStore returns an in-process-only store (no disk layer).
func NewStore() *Store {
	return &Store{entries: make(map[Key]*entry)}
}

func (s *Store) entry(k Key) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil {
		e = &entry{}
		s.entries[k] = e
	}
	return e
}

// Predecode returns the shared predecoded page set for the image,
// computing (or loading from disk) it exactly once per process.
func (s *Store) Predecode(k Key, p *asm.Program) *mem.PredecodeSet {
	e := s.entry(k)
	computed := false
	e.preOnce.Do(func() {
		if data, ok := s.readDisk(k, kindPredecode); ok {
			if ps, err := mem.DecodePredecodeSet(data); err == nil {
				e.pre = ps
				return
			}
			s.diskErrors.Add(1)
		}
		computed = true
		spans := make([]mem.Span, len(p.Segments))
		for i, seg := range p.Segments {
			spans[i] = mem.Span{Addr: seg.Addr, Data: seg.Data}
		}
		e.pre = mem.BuildPredecodeSet(spans)
		s.writeDisk(k, kindPredecode, mem.EncodePredecodeSet(e.pre))
	})
	if computed {
		s.predecodeComputes.Add(1)
	} else {
		s.predecodeHits.Add(1)
	}
	return e.pre
}

// Analysis returns the shared static analysis for the image, computing
// (or loading from disk) it exactly once per process. Analyze never
// fails; verifier rejections travel inside the Analysis and are
// surfaced by the caller via Err(), cached or not.
func (s *Store) Analysis(k Key, p *asm.Program) *sa.Analysis {
	e := s.entry(k)
	computed := false
	e.saOnce.Do(func() {
		if data, ok := s.readDisk(k, kindSA); ok {
			if an, err := sa.Decode(data, p); err == nil {
				e.sa = an
				return
			}
			s.diskErrors.Add(1)
		}
		computed = true
		e.sa = sa.Analyze(p)
		s.writeDisk(k, kindSA, e.sa.Encode())
	})
	if computed {
		s.saComputes.Add(1)
	} else {
		s.saHits.Add(1)
	}
	return e.sa
}

// Seed returns the current warm-start seed snapshot for the image, or
// nil when no prior execution has contributed one (and the disk layer
// has none). The returned seed is immutable; later merges publish new
// snapshots without disturbing it.
func (s *Store) Seed(k Key) *jit.WarmSeed {
	e := s.entry(k)
	e.seedMu.Lock()
	if !e.diskSeed {
		e.diskSeed = true
		if data, ok := s.readDisk(k, kindSeed); ok {
			if w, err := jit.DecodeWarmSeed(data); err == nil && w.Len() > 0 {
				e.seed = w
			} else if err != nil {
				s.diskErrors.Add(1)
			}
		}
	}
	seed := e.seed
	e.seedMu.Unlock()
	if seed != nil {
		s.seedHits.Add(1)
	} else {
		s.seedMisses.Add(1)
	}
	return seed
}

// MergeSeed folds an execution's harvested hotness delta into the
// image's seed and publishes the merged snapshot (and, with a disk
// layer, persists it). Empty deltas are ignored.
func (s *Store) MergeSeed(k Key, delta *jit.WarmSeed) {
	if delta.Len() == 0 {
		return
	}
	e := s.entry(k)
	e.seedMu.Lock()
	merged := jit.NewWarmSeed()
	merged.Merge(e.seed)
	merged.Merge(delta)
	e.seed = merged
	e.diskSeed = true // the merged snapshot supersedes anything on disk
	e.seedMu.Unlock()
	s.seedMerges.Add(1)
	s.writeDisk(k, kindSeed, jit.EncodeWarmSeed(merged))
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		PredecodeHits:     s.predecodeHits.Load(),
		PredecodeComputes: s.predecodeComputes.Load(),
		SAHits:            s.saHits.Load(),
		SAComputes:        s.saComputes.Load(),
		SeedHits:          s.seedHits.Load(),
		SeedMisses:        s.seedMisses.Load(),
		SeedMerges:        s.seedMerges.Load(),
		DiskHits:          s.diskHits.Load(),
		DiskMisses:        s.diskMisses.Load(),
		DiskErrors:        s.diskErrors.Load(),
		DiskWrites:        s.diskWrites.Load(),
		DiskBytesRead:     s.diskBytesRead.Load(),
		DiskBytesWritten:  s.diskBytesWritten.Load(),
	}
}

// PublishMetrics exports the store's counters into the metrics registry
// as artifact.* gauges. Gauges (not counter adds) because a store
// outlives individual executions: each publish snapshots the store's
// running totals, so publishing after every run is idempotent.
func (s *Store) PublishMetrics(m *obs.Metrics) {
	if s == nil || m == nil {
		return
	}
	st := s.Stats()
	for _, g := range []struct {
		name string
		v    uint64
	}{
		{"artifact.predecode.hits", st.PredecodeHits},
		{"artifact.predecode.computes", st.PredecodeComputes},
		{"artifact.sa.hits", st.SAHits},
		{"artifact.sa.computes", st.SAComputes},
		{"artifact.seed.hits", st.SeedHits},
		{"artifact.seed.misses", st.SeedMisses},
		{"artifact.seed.merges", st.SeedMerges},
		{"artifact.disk.hits", st.DiskHits},
		{"artifact.disk.misses", st.DiskMisses},
		{"artifact.disk.errors", st.DiskErrors},
		{"artifact.disk.writes", st.DiskWrites},
		{"artifact.disk.bytes_read", st.DiskBytesRead},
		{"artifact.disk.bytes_written", st.DiskBytesWritten},
	} {
		m.Set(g.name, float64(g.v))
	}
}
