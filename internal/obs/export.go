package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Track identifiers in the Chrome trace export: process-id 0 groups the
// per-CPU-context tracks, process-id 1 groups the per-guest-process
// tracks (one tid per guest PID).
const (
	ChromePIDCPUs  = 0
	ChromePIDGuest = 1
)

// chromeEvent is one entry of the Chrome trace-format "traceEvents"
// array. Timestamps are virtual cycles written into the format's
// microsecond field; the unit label in the UI is cosmetic, ordering and
// durations are what matter.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes events as Chrome trace-format JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. The export builds:
//
//   - one track per CPU context (EvSchedule occupancy spans),
//   - one track per guest process/slice: a lifetime span opened at
//     spawn/fork and closed at exit, nested sleep spans, and instant
//     markers for syscalls, slice boundaries, signature checks and
//     code-cache compiles.
//
// Events must come from one simulation (one virtual clock); they are
// written in emission order, which is time-ordered per track.
//
// The export streams: each entry is encoded and written as it is
// produced, so peak memory is one event, not a second full-trace slice
// — the flight recorder snapshots multi-hundred-thousand-event rings
// through this path while the run is still emitting.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	var werr error
	emit := func(ce chromeEvent) {
		if werr != nil {
			return
		}
		data, err := json.Marshal(ce)
		if err != nil {
			werr = err
			return
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		_, werr = bw.Write(data)
	}

	meta := func(pid, tid int, key, value string) {
		emit(chromeEvent{
			Name: key, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta(ChromePIDCPUs, 0, "process_name", "cpus")
	meta(ChromePIDGuest, 0, "process_name", "guest")

	cpuSeen := map[int32]bool{}
	procNamed := map[int32]bool{}
	nameProc := func(pid int32, name string) {
		if !procNamed[pid] && name != "" {
			procNamed[pid] = true
			meta(ChromePIDGuest, int(pid), "thread_name",
				fmt.Sprintf("%s (pid %d)", name, pid))
		}
	}

	for _, ev := range events {
		switch ev.Kind {
		case EvSchedule:
			if !cpuSeen[ev.CPU] {
				cpuSeen[ev.CPU] = true
				meta(ChromePIDCPUs, int(ev.CPU), "thread_name",
					fmt.Sprintf("cpu%d", ev.CPU))
			}
			emit(chromeEvent{
				Name: ev.Name, Ph: "X", Ts: ev.Time, Dur: ev.Dur,
				PID: ChromePIDCPUs, TID: int(ev.CPU),
				Args: map[string]any{"pid": ev.PID},
			})
		case EvProcSpawn, EvFork:
			nameProc(ev.PID, ev.Name)
			ce := chromeEvent{
				Name: ev.Name, Ph: "B", Ts: ev.Time,
				PID: ChromePIDGuest, TID: int(ev.PID),
			}
			if ev.Kind == EvFork {
				ce.Args = map[string]any{"parent": ev.Arg}
			}
			emit(ce)
		case EvProcExit:
			emit(chromeEvent{
				Name: "exit", Ph: "E", Ts: ev.Time,
				PID: ChromePIDGuest, TID: int(ev.PID),
				Args: map[string]any{"code": ev.Arg},
			})
		case EvSleep:
			emit(chromeEvent{
				Name: "sleep", Ph: "B", Ts: ev.Time,
				PID: ChromePIDGuest, TID: int(ev.PID),
			})
		case EvWake:
			emit(chromeEvent{
				Name: "sleep", Ph: "E", Ts: ev.Time,
				PID: ChromePIDGuest, TID: int(ev.PID),
			})
		default:
			name := ev.Kind.String()
			args := map[string]any{}
			switch ev.Kind {
			case EvSyscall:
				name = "syscall:" + ev.Name
			case EvSliceSpawn:
				name = fmt.Sprintf("slice%d-spawn", ev.Arg)
				args["boundary"] = ev.Name
			case EvSliceDetect:
				name = fmt.Sprintf("slice%d-detect", ev.Arg)
			case EvSliceMerge:
				name = fmt.Sprintf("slice%d-merge", ev.Arg)
			case EvSigFullCheck:
				args["matched"] = ev.Arg2 == 1
			case EvCompile:
				args["addr"] = fmt.Sprintf("%#08x", ev.Arg)
				args["ins"] = ev.Arg2
			case EvCacheFlush:
				args["resident_ins"] = ev.Arg
			}
			if len(args) == 0 {
				args = nil
			}
			emit(chromeEvent{
				Name: name, Ph: "i", S: "t", Ts: ev.Time,
				PID: ChromePIDGuest, TID: int(ev.PID), Args: args,
			})
		}
	}

	if werr != nil {
		return werr
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteText writes events as a plain one-line-per-event log, the
// grep-friendly companion to the Chrome export.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		fmt.Fprintf(bw, "%12d %-14s pid=%-4d", ev.Time, ev.Kind, ev.PID)
		if ev.Kind == EvSchedule {
			fmt.Fprintf(bw, " cpu=%d dur=%d", ev.CPU, ev.Dur)
		}
		if ev.Name != "" {
			fmt.Fprintf(bw, " %s", ev.Name)
		}
		if ev.Arg != 0 || ev.Arg2 != 0 {
			fmt.Fprintf(bw, " arg=%d arg2=%d", ev.Arg, ev.Arg2)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
