package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 42, 43}, {1<<43 - 1, 43}, {1 << 43, 43}, {math.MaxUint64, 43},
	}
	for _, c := range cases {
		if got := HistBucket(c.v); got != c.want {
			t.Errorf("HistBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &Hist{}
	// 90 small samples, 9 medium, 1 large: p50 lands in the small
	// bucket, p90 at its edge, p99 in the medium bucket.
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket 2, upper bound 3
	}
	for i := 0; i < 9; i++ {
		h.Observe(100) // bucket 7, upper bound 127
	}
	h.Observe(1000) // bucket 10, upper bound 1023
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*3+9*100+1000 {
		t.Fatalf("Count/Sum = %d/%d", s.Count, s.Sum)
	}
	if s.P50 != 3 || s.P90 != 3 || s.P99 != 127 {
		t.Errorf("quantiles p50=%v p90=%v p99=%v, want 3/3/127", s.P50, s.P90, s.P99)
	}
	if q := s.Quantile(1.0); q != 1023 {
		t.Errorf("Quantile(1.0) = %v, want 1023", q)
	}
}

func TestHistMerge(t *testing.T) {
	h := &Hist{}
	h.Observe(5)
	var local [HistBuckets]uint64
	var sum, n uint64
	for _, v := range []uint64{1, 2, 1024} {
		local[HistBucket(v)]++
		sum += v
		n++
	}
	h.Merge(local[:], sum, n)
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 5+1+2+1024 {
		t.Fatalf("after merge: Count=%d Sum=%d", s.Count, s.Sum)
	}
	if s.Buckets[HistBucket(1024)] != 1 {
		t.Errorf("merged bucket missing")
	}
}

func TestHistNilSafe(t *testing.T) {
	var h *Hist
	h.Observe(1)
	h.Merge(nil, 0, 0)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil Hist snapshot non-empty")
	}
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Load() != 0 {
		t.Errorf("nil Counter loaded non-zero")
	}
	var m *Metrics
	m.Observe("x", 1)
	if m.Hist("x") != nil || m.LiveCounter("x") != nil {
		t.Errorf("nil Metrics returned non-nil handles")
	}
	sp := m.StartSpan()
	if !sp.t.IsZero() {
		t.Errorf("nil Metrics StartSpan read the clock")
	}
	m.EndSpan("x", sp)
}

func TestMetricsSpan(t *testing.T) {
	m := NewMetrics()
	sp := m.StartSpan()
	time.Sleep(time.Millisecond)
	m.EndSpan("test.span_ns", sp)
	s := m.Hist("test.span_ns").Snapshot()
	if s.Count != 1 {
		t.Fatalf("span not recorded: Count = %d", s.Count)
	}
	if s.Sum < uint64(time.Millisecond/2) {
		t.Errorf("span duration %dns implausibly small", s.Sum)
	}
	// An inert span (zero value) must not record.
	m.EndSpan("test.span_ns", Span{})
	if got := m.Hist("test.span_ns").Snapshot().Count; got != 1 {
		t.Errorf("inert span recorded: Count = %d", got)
	}
}

func TestLiveCounterFolding(t *testing.T) {
	m := NewMetrics()
	m.Add("k", 10)
	c := m.LiveCounter("k")
	c.Add(5)
	c.Inc()
	if got := m.Counter("k"); got != 16 {
		t.Fatalf("Counter = %d, want mutex+live folded 16", got)
	}
	if got := m.Snapshot().Counters["k"]; got != 16 {
		t.Fatalf("Snapshot counter = %d, want 16", got)
	}
	if m.LiveCounter("k") != c {
		t.Errorf("LiveCounter not stable across calls")
	}
}

func TestHistConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Hist("conc")
			c := m.LiveCounter("conc.n")
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(i))
				c.Inc()
				if i%100 == 0 {
					m.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Hist("conc").Snapshot().Count; got != 4000 {
		t.Fatalf("Count = %d, want 4000", got)
	}
	if got := m.Counter("conc.n"); got != 4000 {
		t.Fatalf("live counter = %d, want 4000", got)
	}
}
