package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndMetricsAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Kind: EvFork}) // must not panic
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer collected events")
	}

	var m *Metrics
	if m.Enabled() {
		t.Fatal("nil metrics reports enabled")
	}
	m.Add("x", 1)
	m.Set("y", 2)
	if m.Counter("x") != 0 || m.Gauge("y") != 0 {
		t.Fatal("nil metrics stored values")
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil metrics snapshot non-empty")
	}
}

func TestTracerCollectsInOrder(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvSyscall, Time: uint64(i), PID: 1})
	}
	evs := tr.Events()
	if len(evs) != 10 || tr.Len() != 10 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != uint64(i) {
			t.Fatalf("event %d has time %d", i, ev.Time)
		}
	}
	// Events returns a copy: mutating it must not affect the tracer.
	evs[0].Time = 99
	if tr.Events()[0].Time != 0 {
		t.Fatal("Events returned aliased storage")
	}
}

func TestMetricsConcurrentAdds(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add("shared.counter", 1)
				m.Set("shared.gauge", float64(i))
				tr.Emit(Event{Kind: EvCompile, Time: uint64(i)})
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared.counter"); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if tr.Len() != workers*per {
		t.Fatalf("tracer collected %d events, want %d", tr.Len(), workers*per)
	}
}

func TestMetricsWriteJSONDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Add("b.second", 2)
	m.Add("a.first", 1)
	m.Set("g.ratio", 0.5)
	var buf1, buf2 bytes.Buffer
	if err := m.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("non-deterministic JSON")
	}
	var s Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a.first"] != 1 || s.Counters["b.second"] != 2 || s.Gauges["g.ratio"] != 0.5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	events := []Event{
		{Kind: EvProcSpawn, Time: 0, PID: 1, Name: "master"},
		{Kind: EvFork, Time: 10, PID: 2, Arg: 1, Name: "slice1"},
		{Kind: EvSleep, Time: 10, PID: 2},
		{Kind: EvSyscall, Time: 20, PID: 1, Name: "write", Arg: 2},
		{Kind: EvWake, Time: 30, PID: 2},
		{Kind: EvSliceSpawn, Time: 10, PID: 2, Arg: 1, Name: "timeout"},
		{Kind: EvCompile, Time: 35, PID: 2, Arg: 0x1000, Arg2: 12},
		{Kind: EvSigFullCheck, Time: 40, PID: 2, Arg: 1, Arg2: 1},
		{Kind: EvSliceDetect, Time: 40, PID: 2, Arg: 1},
		{Kind: EvProcExit, Time: 45, PID: 2},
		{Kind: EvSliceMerge, Time: 45, PID: 2, Arg: 1},
		{Kind: EvProcExit, Time: 50, PID: 1},
		{Kind: EvSchedule, Time: 0, Dur: 50, PID: 1, CPU: 0, Name: "master"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(events) {
		t.Fatalf("only %d trace events for %d input events", len(doc.TraceEvents), len(events))
	}
	// Balanced B/E per (pid, tid) track.
	depth := map[[2]int]int{}
	for _, ce := range doc.TraceEvents {
		key := [2]int{ce.PID, ce.TID}
		switch ce.Ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("unbalanced E on track %v", key)
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Fatalf("track %v left %d spans open", key, d)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	err := WriteText(&buf, []Event{
		{Kind: EvProcSpawn, Time: 0, PID: 1, Name: "master"},
		{Kind: EvSchedule, Time: 0, Dur: 200, PID: 1, CPU: 3, Name: "master"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"proc-spawn", "master", "cpu=3", "dur=200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text log missing %q:\n%s", want, out)
		}
	}
}
