package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenEvents is a fixed event sequence exercising every branch of both
// exporters: schedule spans, spawn/fork/exit lifetimes, sleep nesting,
// and each instant-marker kind with its argument formatting.
func goldenEvents() []Event {
	return []Event{
		{Kind: EvProcSpawn, Time: 0, PID: 1, CPU: -1, Name: "master"},
		{Kind: EvSchedule, Time: 0, Dur: 200, PID: 1, CPU: 0, Name: "master"},
		{Kind: EvCompile, Time: 40, PID: 1, CPU: -1, Arg: 0x10000, Arg2: 17},
		{Kind: EvSyscall, Time: 90, PID: 1, CPU: -1, Arg: 4, Name: "write"},
		{Kind: EvSliceSpawn, Time: 100, PID: 2, CPU: -1, Arg: 0, Name: "syscall"},
		{Kind: EvFork, Time: 100, PID: 2, CPU: -1, Arg: 1, Name: "slice0"},
		{Kind: EvSchedule, Time: 200, Dur: 150, PID: 2, CPU: 1, Name: "slice0"},
		{Kind: EvSleep, Time: 350, PID: 2, CPU: -1},
		{Kind: EvSigFullCheck, Time: 360, PID: 2, CPU: -1, Arg: 0x2000, Arg2: 1},
		{Kind: EvWake, Time: 400, PID: 2, CPU: -1},
		{Kind: EvSliceDetect, Time: 410, PID: 2, CPU: -1, Arg: 0},
		{Kind: EvCacheFlush, Time: 420, PID: 2, CPU: -1, Arg: 1234},
		{Kind: EvSliceMerge, Time: 450, PID: 2, CPU: -1, Arg: 0},
		{Kind: EvProcExit, Time: 460, PID: 2, CPU: -1, Arg: 0},
		{Kind: EvProcExit, Time: 500, PID: 1, CPU: -1, Arg: 42},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestChromeTraceGolden pins the Chrome trace-format export byte-for-byte:
// Perfetto compatibility depends on field names and phase letters that
// unit assertions on parsed JSON would not catch drifting.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.trace.json", buf.Bytes())
}

// TestTextExportGolden pins the plain-text log format, which downstream
// grep/awk tooling (scripts/) parses by column.
func TestTextExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.trace.txt", buf.Bytes())
}
