// Package obs is the observability layer of the SuperPin reproduction:
// a structured event tracer and a metrics registry that instrument the
// instrumenter itself.
//
// The paper's central artifacts are schedules — Figure 1's master/slice
// timeline and Figure 6's fork/sleep/pipeline breakdown — and diagnosing
// why a slice stalls or a detector misfires requires seeing those
// schedules as first-class data rather than reconstructing them from
// printf output. Package obs provides:
//
//   - Tracer: an append-only log of typed events (process lifecycle,
//     fork, sleep/wake, syscall-stops, slice spawn/detect/merge,
//     signature checks, code-cache compiles) stamped with virtual time.
//     A nil *Tracer is a valid no-op tracer, so uninstrumented runs pay
//     only a nil check at each emission site.
//   - Metrics: a race-safe name-keyed counter/gauge registry that the
//     subsystems publish their existing statistics into, giving one
//     uniform snapshot/export path without changing how the statistics
//     are computed.
//   - Exporters: Chrome trace-format JSON (loadable in Perfetto: one
//     track per CPU context, one per guest process/slice) and a plain
//     text event log.
//
// Emission sites live in internal/kernel (scheduling, processes),
// internal/jit (code cache), internal/pin (engine attachment) and
// internal/core (SuperPin slice lifecycle). Timestamps are virtual
// cycles (kernel.Cycles), so traces are bit-for-bit deterministic.
package obs

import (
	"fmt"
	"sync"
)

// Kind is the type tag of an event.
type Kind uint8

// Event kinds.
const (
	// EvProcSpawn: a process was created (Name = process name).
	EvProcSpawn Kind = iota
	// EvProcExit: a process exited (Arg = exit code).
	EvProcExit
	// EvFork: a copy-on-write fork created process PID (Arg = parent
	// PID, Name = child name).
	EvFork
	// EvSleep: the process entered the sleeping state.
	EvSleep
	// EvWake: the process became runnable again.
	EvWake
	// EvSyscall: a system call was serviced for the process (Name =
	// syscall name, Arg = sysno). For a ptrace-traced process this is
	// the syscall-stop the control process observes.
	EvSyscall
	// EvSliceSpawn: SuperPin forked an instrumented timeslice
	// (Arg = slice number, Name = boundary kind of the fork).
	EvSliceSpawn
	// EvSliceDetect: the slice's end-boundary was detected (Arg = slice
	// number).
	EvSliceDetect
	// EvSliceMerge: the slice's results merged in slice order
	// (Arg = slice number).
	EvSliceMerge
	// EvSigFullCheck: the inlined quick check matched and the full
	// architectural comparison ran (Arg = slice number, Arg2 = 1 if the
	// full check matched, 0 for a false quick match).
	EvSigFullCheck
	// EvCompile: the JIT compiled a trace into a code cache
	// (Arg = trace entry address, Arg2 = instruction count).
	EvCompile
	// EvCacheFlush: a code cache exceeded capacity and was flushed
	// (Arg = instructions resident before the flush).
	EvCacheFlush
	// EvSchedule: a coalesced CPU-occupancy interval — process PID ran
	// on CPU context CPU from Time for Dur cycles.
	EvSchedule
)

var kindNames = [...]string{
	EvProcSpawn:    "proc-spawn",
	EvProcExit:     "proc-exit",
	EvFork:         "fork",
	EvSleep:        "sleep",
	EvWake:         "wake",
	EvSyscall:      "syscall",
	EvSliceSpawn:   "slice-spawn",
	EvSliceDetect:  "slice-detect",
	EvSliceMerge:   "slice-merge",
	EvSigFullCheck: "sig-full-check",
	EvCompile:      "compile",
	EvCacheFlush:   "cache-flush",
	EvSchedule:     "schedule",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one timestamped occurrence. Time and Dur are in virtual
// cycles (the kernel's deterministic simulated clock, kernel.Cycles) —
// never host wall-clock time — so identical runs produce identical
// event streams. The Chrome-trace export writes virtual cycles into the
// format's microsecond field unconverted; host wall-clock attribution
// lives in the Metrics histograms (obs.Span), not in events.
type Event struct {
	Kind Kind
	// Time is the virtual-cycle timestamp. For EvSchedule it is the
	// interval start; all other kinds are instants.
	Time uint64
	// Dur is the interval length of an EvSchedule span in virtual
	// cycles (0 otherwise).
	Dur uint64
	// PID is the guest process the event concerns (0 = none/idle).
	PID int32
	// CPU is the CPU context index for EvSchedule (-1 otherwise).
	CPU int32
	// Arg and Arg2 are kind-specific payloads (see the Kind constants).
	Arg  uint64
	Arg2 uint64
	// Name is the kind-specific label (process name, syscall name,
	// boundary kind).
	Name string
}

// Tracer is an append-only event log. A nil *Tracer is a valid tracer
// that drops everything, so callers hold a possibly-nil pointer and emit
// unconditionally; the default (tracing off) costs one nil check.
//
// A tracer may be bounded (NewRingTracer): once full it becomes a ring
// buffer that overwrites the oldest event, counting each overwrite in
// Dropped, so long runs and the always-on flight recorder hold memory
// constant. Drop-oldest on the main stream preserves determinism: the
// folded event order is deterministic (PR 6), so which events survive a
// given capacity is too.
//
// Emission from a single simulation is single-threaded (the
// discrete-event kernel serializes everything), but the experiment
// harness runs many simulations concurrently, so a Tracer shared across
// runs must be safe; a mutex keeps Emit race-free.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	cap     int    // 0 = unbounded
	start   int    // ring read index (oldest event) once len == cap
	dropped uint64 // events overwritten since creation
}

// NewTracer returns an empty unbounded tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NewRingTracer returns an empty tracer bounded to capacity events;
// once full, each emission overwrites the oldest buffered event.
// capacity <= 0 means unbounded.
func NewRingTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return &Tracer{}
	}
	return &Tracer{cap: capacity}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// appendLocked adds one event under t.mu, overwriting the oldest event
// when the tracer is bounded and full.
func (t *Tracer) appendLocked(ev Event) {
	if t.cap > 0 && len(t.events) == t.cap {
		t.events[t.start] = ev
		t.start++
		if t.start == t.cap {
			t.start = 0
		}
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Emit appends one event. Safe (and a no-op) on a nil receiver.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(ev)
	t.mu.Unlock()
}

// Len returns the number of buffered events (0 on a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events a bounded tracer has overwritten
// (0 on a nil or unbounded receiver).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// DrainTo moves every buffered event into dst in emission order and
// empties the receiver, keeping its capacity for reuse. It is how the
// kernel folds a process's privately buffered events into the main
// tracer at a deterministic point of the quantum walk. Events that
// overflow a bounded dst drop its oldest, counted in dst.Dropped.
// No-op on a nil receiver or nil dst.
func (t *Tracer) DrainTo(dst *Tracer) {
	if t == nil || dst == nil || t == dst {
		return
	}
	t.mu.Lock()
	if len(t.events) > 0 {
		dst.mu.Lock()
		if dst.cap == 0 && t.start == 0 {
			dst.events = append(dst.events, t.events...)
		} else {
			for _, ev := range t.events[t.start:] {
				dst.appendLocked(ev)
			}
			for _, ev := range t.events[:t.start] {
				dst.appendLocked(ev)
			}
		}
		dst.mu.Unlock()
		t.events = t.events[:0]
		t.start = 0
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order
// (oldest surviving event first for a bounded tracer). Within one
// simulation, per-process (and per-CPU-track) timestamps are
// non-decreasing; the bench smoke runner asserts exactly that.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	n := copy(out, t.events[t.start:])
	copy(out[n:], t.events[:t.start])
	return out
}
