package obs

import (
	"testing"
)

func seqEvent(i int) Event {
	return Event{Kind: EvSyscall, Time: uint64(i), PID: 1, CPU: -1, Arg: uint64(i)}
}

// TestRingTracerDropOldest pins the drop accounting: a bounded tracer
// overwrites exactly the oldest events and counts every overwrite.
func TestRingTracerDropOldest(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(seqEvent(i))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Time != want {
			t.Errorf("event %d: Time = %d, want %d (oldest surviving first)", i, ev.Time, want)
		}
	}
}

// TestRingTracerUnbounded confirms NewTracer and NewRingTracer(0) never
// drop.
func TestRingTracerUnbounded(t *testing.T) {
	for _, tr := range []*Tracer{NewTracer(), NewRingTracer(0)} {
		for i := 0; i < 100; i++ {
			tr.Emit(seqEvent(i))
		}
		if tr.Len() != 100 || tr.Dropped() != 0 {
			t.Fatalf("unbounded tracer: Len=%d Dropped=%d, want 100/0", tr.Len(), tr.Dropped())
		}
	}
}

// TestRingTracerDrainTo covers both drain directions: a wrapped ring
// draining into an unbounded tracer must emit in ring order, and an
// unbounded buffer draining into a full ring must account the drops on
// the destination.
func TestRingTracerDrainTo(t *testing.T) {
	// Wrapped ring -> unbounded: order preserved.
	src := NewRingTracer(4)
	for i := 0; i < 7; i++ {
		src.Emit(seqEvent(i))
	}
	dst := NewTracer()
	src.DrainTo(dst)
	if src.Len() != 0 {
		t.Fatalf("source not emptied: Len = %d", src.Len())
	}
	evs := dst.Events()
	if len(evs) != 4 {
		t.Fatalf("dst Len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(3 + i); ev.Time != want {
			t.Errorf("drained event %d: Time = %d, want %d", i, ev.Time, want)
		}
	}

	// Unbounded -> small ring: drops accounted on the destination.
	big := NewTracer()
	for i := 0; i < 10; i++ {
		big.Emit(seqEvent(i))
	}
	ring := NewRingTracer(3)
	big.DrainTo(ring)
	if got := ring.Dropped(); got != 7 {
		t.Fatalf("ring.Dropped = %d, want 7", got)
	}
	evs = ring.Events()
	if len(evs) != 3 || evs[0].Time != 7 || evs[2].Time != 9 {
		t.Fatalf("ring kept %v, want events 7..9", evs)
	}

	// A drained ring resets its read index: refilling after DrainTo
	// starts a fresh window.
	src.Emit(seqEvent(42))
	if evs := src.Events(); len(evs) != 1 || evs[0].Time != 42 {
		t.Fatalf("reuse after drain: got %v", evs)
	}
}

// TestRingTracerSnapshotConcurrent exercises snapshotting a live ring
// under emission — the flight-recorder /trace path — under the race
// detector.
func TestRingTracerSnapshotConcurrent(t *testing.T) {
	tr := NewRingTracer(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			tr.Emit(seqEvent(i))
		}
	}()
	for i := 0; i < 100; i++ {
		evs := tr.Events()
		for j := 1; j < len(evs); j++ {
			if evs[j].Time != evs[j-1].Time+1 {
				t.Fatalf("snapshot out of order at %d: %d after %d", j, evs[j].Time, evs[j-1].Time)
			}
		}
		_ = tr.Dropped()
	}
	<-done
}
