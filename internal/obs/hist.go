package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two histogram buckets. Bucket i
// holds the values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds exactly v == 0), so bucket i's inclusive upper bound
// is 2^i - 1. 44 buckets cover nanosecond durations up to ~2.4 hours
// and instruction counts up to ~8.8e12 before the overflow bucket.
const HistBuckets = 44

// HistBucket returns the bucket index for value v.
func HistBucket(v uint64) int {
	i := bits.Len64(v)
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// histUpper returns bucket i's inclusive upper bound as a float64
// (+Inf for the overflow bucket).
func histUpper(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Hist is a race-safe fixed-bucket histogram of uint64 samples
// (durations in nanoseconds, batch sizes in instructions). Buckets are
// powers of two, so Observe is one bits.Len64 plus a short critical
// section — cheap enough for sampled hot paths. A nil *Hist is a valid
// no-op histogram, mirroring *Tracer and *Metrics.
type Hist struct {
	mu     sync.Mutex
	counts [HistBuckets]uint64
	sum    uint64
	n      uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	i := HistBucket(v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Merge folds locally accumulated buckets into the histogram in one
// critical section — the flush path for engine-local accumulation on
// hot paths too frequent for per-sample locking. counts must be indexed
// by HistBucket. No-op on a nil receiver.
func (h *Hist) Merge(counts []uint64, sum, n uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		if i >= HistBuckets {
			break
		}
		h.counts[i] += c
	}
	h.sum += sum
	h.n += n
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram with extracted
// quantiles. Quantiles are bucket upper bounds, so they overestimate by
// at most 2x (the bucket width).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Buckets is the raw per-bucket counts (see HistBucket); consumed
	// by the Prometheus exposition, elided from JSON.
	Buckets [HistBuckets]uint64 `json:"-"`
}

// Quantile returns the q-quantile (0 < q <= 1) as a bucket upper bound,
// 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return histUpper(i)
		}
	}
	return histUpper(HistBuckets - 1)
}

// Snapshot copies the histogram and extracts p50/p90/p99. Returns a
// zero snapshot on a nil receiver.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	h.mu.Lock()
	s.Buckets = h.counts
	s.Sum = h.sum
	s.Count = h.n
	h.mu.Unlock()
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Counter is a pre-resolved atomic counter handle for hot paths where
// the map lookup and mutex of Metrics.Add would cost too much. Resolve
// once with Metrics.LiveCounter; a nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Span is a host wall-clock measurement in flight: a start timestamp
// captured by Metrics.StartSpan and closed by Metrics.EndSpan, which
// records the elapsed nanoseconds into a named histogram. The zero Span
// (from a nil registry) is inert and EndSpan ignores it, so span pairs
// cost nothing when telemetry is off — not even a time.Now call.
type Span struct {
	t time.Time
}

// StartSpan opens a wall-clock span. On a nil receiver it returns the
// inert zero Span without reading the clock.
func (m *Metrics) StartSpan() Span {
	if m == nil {
		return Span{}
	}
	return Span{t: time.Now()}
}

// EndSpan closes a span, observing the elapsed host nanoseconds into
// the named histogram. No-op on a nil receiver or an inert span.
func (m *Metrics) EndSpan(name string, s Span) {
	if m == nil || s.t.IsZero() {
		return
	}
	m.Hist(name).Observe(uint64(time.Since(s.t)))
}
