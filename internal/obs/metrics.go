package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Metrics is a race-safe registry of named counters and gauges. It is
// the uniform reporting path for the statistics the subsystems already
// compute (pin.Stats, jit.CacheStats, core.Stats, kernel process
// accounting): each publishes into the registry under a dotted prefix,
// and the CLIs snapshot it to JSON. The underlying stat fields keep
// their existing values and semantics.
//
// A nil *Metrics is a valid no-op registry, mirroring *Tracer.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
	}
}

// Enabled reports whether the registry collects anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments the named counter by delta. No-op on a nil receiver.
func (m *Metrics) Add(name string, delta uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]uint64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set sets the named gauge. No-op on a nil receiver.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Counter returns the named counter's current value (0 when absent or
// on a nil receiver).
func (m *Metrics) Counter(name string) uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge returns the named gauge's current value (0 when absent or on a
// nil receiver).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot is a point-in-time copy of the registry.
type Snapshot struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Snapshot copies the registry's current contents.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]float64{}}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys (encoding/json sorts map keys), so output is deterministic.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
