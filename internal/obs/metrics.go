package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Metrics is a race-safe registry of named counters and gauges. It is
// the uniform reporting path for the statistics the subsystems already
// compute (pin.Stats, jit.CacheStats, core.Stats, kernel process
// accounting): each publishes into the registry under a dotted prefix,
// and the CLIs snapshot it to JSON. The underlying stat fields keep
// their existing values and semantics.
//
// A nil *Metrics is a valid no-op registry, mirroring *Tracer.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Hist
	lives    map[string]*Counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
	}
}

// Enabled reports whether the registry collects anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments the named counter by delta. No-op on a nil receiver.
func (m *Metrics) Add(name string, delta uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]uint64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set sets the named gauge. No-op on a nil receiver.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records one sample into the named histogram, creating it on
// first use. No-op on a nil receiver. Hot paths should resolve the
// histogram once via Hist instead.
func (m *Metrics) Observe(name string, v uint64) {
	if m == nil {
		return
	}
	m.Hist(name).Observe(v)
}

// Hist returns the named histogram handle, creating it on first use.
// Returns nil on a nil receiver, and a nil *Hist is a valid no-op, so
// callers may resolve once and observe unconditionally behind a nil
// check.
func (m *Metrics) Hist(name string) *Hist {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hists == nil {
		m.hists = make(map[string]*Hist)
	}
	h := m.hists[name]
	if h == nil {
		h = &Hist{}
		m.hists[name] = h
	}
	return h
}

// LiveCounter returns the named pre-resolved atomic counter, creating
// it on first use. Returns nil on a nil receiver (a nil *Counter is a
// valid no-op). Live counters fold into Counter and Snapshot alongside
// the mutex-guarded counters; the two namespaces are summed on read.
func (m *Metrics) LiveCounter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lives == nil {
		m.lives = make(map[string]*Counter)
	}
	c := m.lives[name]
	if c == nil {
		c = &Counter{}
		m.lives[name] = c
	}
	return c
}

// Counter returns the named counter's current value (0 when absent or
// on a nil receiver), including any live atomic counter of the same
// name.
func (m *Metrics) Counter(name string) uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name] + m.lives[name].Load()
}

// Gauge returns the named gauge's current value (0 when absent or on a
// nil receiver).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot is a point-in-time copy of the registry. Live atomic
// counters are folded into Counters (summed with any mutex-guarded
// counter of the same name); histograms appear with quantiles
// extracted.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot copies the registry's current contents.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]float64{}}
	if m == nil {
		return s
	}
	m.mu.Lock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, c := range m.lives {
		s.Counters[k] += c.Load()
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	hists := make([]*Hist, 0, len(m.hists))
	names := make([]string, 0, len(m.hists))
	for k, h := range m.hists {
		names = append(names, k)
		hists = append(hists, h)
	}
	m.mu.Unlock()
	// Histograms carry their own mutex; snapshot them outside the
	// registry lock so hot-path Observe calls never wait on a reader.
	if len(hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(hists))
		for i, h := range hists {
			s.Hists[names[i]] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys (encoding/json sorts map keys), so output is deterministic.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
