package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// SanitizeMetricName maps a dotted registry name ("kernel.pool.rounds")
// onto the Prometheus metric-name charset: every rune outside
// [a-z0-9_:] becomes '_' (uppercase is lowercased first), and a leading
// digit gains a '_' prefix. The result always matches
// ^[a-z_:][a-z0-9_:]*$ for non-empty input.
func SanitizeMetricName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c >= 'a' && c <= 'z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
		default:
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// promFloat formats a float the way Prometheus text exposition expects
// (+Inf/-Inf/NaN spelled out, shortest round-trip decimal otherwise).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry snapshot in Prometheus text exposition
// format (version 0.0.4): counters (live atomic counters folded in),
// gauges, and histograms with cumulative le-labeled buckets plus _sum
// and _count series. Names are passed through SanitizeMetricName;
// output is sorted by name, so it is deterministic for a given
// snapshot. Safe on a nil receiver (writes nothing).
func (m *Metrics) WriteProm(w io.Writer) error {
	s := m.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := SanitizeMetricName(k)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := SanitizeMetricName(k)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[k]))
	}

	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := SanitizeMetricName(k)
		h := s.Hists[k]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		// Emit cumulative buckets up to the last non-empty one, then
		// the mandatory +Inf bucket.
		last := -1
		for i, c := range h.Buckets {
			if c > 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last && i < HistBuckets-1; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", n, promFloat(histUpper(i)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}

	return bw.Flush()
}
