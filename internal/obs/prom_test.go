package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// promNameRe is the Prometheus metric-name grammar (lowercased; the
// sanitizer never emits uppercase).
var promNameRe = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"kernel.pool.rounds": "kernel_pool_rounds",
		"pin.hot.link_hits":  "pin_hot_link_hits",
		"Weird-Name.1":       "weird_name_1",
		"9lives":             "_9lives",
		"a:b":                "a:b",
		"sliceΔ":             "slice__", // multi-byte rune: one '_' per byte
	}
	for in, want := range cases {
		got := SanitizeMetricName(in)
		if got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRe.MatchString(got) {
			t.Errorf("SanitizeMetricName(%q) = %q violates the Prometheus name grammar", in, got)
		}
	}
}

func goldenMetrics() *Metrics {
	m := NewMetrics()
	m.Add("kernel.quanta", 128)
	m.Add("pin.hot.promotions", 7)
	m.Set("core.live.slices_running", 3)
	m.Set("bench.scale", 0.25)
	m.LiveCounter("kernel.live.retired_ins").Add(1 << 20)
	h := m.Hist("kernel.quantum_wall_ns")
	for _, v := range []uint64{0, 1, 3, 3, 900, 1500, 1 << 20} {
		h.Observe(v)
	}
	return m
}

// TestPromGolden pins the Prometheus text exposition byte-for-byte,
// alongside the Chrome-trace goldens: scrapers parse this format by
// line shape, which parsed-JSON assertions would not catch drifting.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenMetrics().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.metrics.prom", buf.Bytes())
}

// TestPromNameLint walks every series the exposition writer emits and
// asserts the sanitized names obey the [a-z_:] Prometheus rules —
// including the _bucket/_sum/_count suffixes and the le label lines.
func TestPromNameLint(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenMetrics().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	lineRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		mm := lineRe.FindStringSubmatch(line)
		if mm == nil {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		if !promNameRe.MatchString(mm[1]) {
			t.Errorf("series name %q violates the Prometheus name grammar", mm[1])
		}
	}
}

// TestPromNilSafe ensures a nil registry writes nothing and errors
// never.
func TestPromNilSafe(t *testing.T) {
	var m *Metrics
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}
