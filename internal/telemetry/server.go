package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"superpin/internal/obs"
)

// LiveRetiredIns is the registry name of the kernel-maintained live
// counter of retired guest instructions; /status derives guest-MIPS
// from it.
const LiveRetiredIns = "kernel.live.retired_ins"

// Gauge names the core engine keeps current during a SuperPin run;
// /status republishes them as the per-slice state summary.
const (
	LiveSlicesSpawned = "core.live.slices_spawned"
	LiveSlicesRunning = "core.live.slices_running"
	LiveSlicesMerged  = "core.live.slices_merged"
)

// Status is the /status document: a point-in-time, host-side view of
// the run assembled entirely from the metrics registry and the flight
// recorder — reading it never perturbs virtual state.
type Status struct {
	UptimeSec    float64 `json:"uptime_sec"`
	RetiredIns   uint64  `json:"retired_ins"`
	GuestMIPS    float64 `json:"guest_mips"`     // retired/uptime, cumulative
	GuestMIPSNow float64 `json:"guest_mips_now"` // since the previous /status scrape

	SlicesSpawned uint64 `json:"slices_spawned"`
	SlicesRunning uint64 `json:"slices_running"`
	SlicesMerged  uint64 `json:"slices_merged"`

	// HotTier and Artifact are the pin.* and artifact.* counter
	// namespaces (live counters folded in).
	HotTier  map[string]uint64 `json:"hot_tier,omitempty"`
	Artifact map[string]uint64 `json:"artifact,omitempty"`

	// LatencyNS is every histogram in the registry with extracted
	// quantiles — the host-phase wall-clock attribution (quantum,
	// slice, merge-stall, dispatch batch, cache fetch, pool phases).
	LatencyNS map[string]obs.HistSnapshot `json:"latency_ns,omitempty"`

	TraceEvents  int    `json:"trace_events"`
	TraceDropped uint64 `json:"trace_dropped"`
}

// Server serves the live telemetry endpoints over HTTP:
//
//	/metrics       Prometheus text exposition of the obs registry
//	/metrics.json  the registry's JSON snapshot (superpin -metrics shape)
//	/status        Status document (live guest-MIPS, slice states, ...)
//	/trace         Perfetto/Chrome-trace snapshot of the flight recorder
//	/healthz       liveness probe
//	/debug/pprof/  net/http/pprof host profiles
//
// The listener binds immediately in NewServer (":0" picks a free port;
// Addr reports it) and requests are served on a background goroutine
// until Close.
type Server struct {
	m   *obs.Metrics
	rec *Recorder
	srv *http.Server
	ln  net.Listener

	start time.Time

	mu          sync.Mutex
	lastScrape  time.Time
	lastRetired uint64
}

// NewServer listens on addr and starts serving the telemetry endpoints
// for registry m and flight recorder rec (either may be nil; endpoints
// degrade to empty documents).
func NewServer(addr string, m *obs.Metrics, rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, rec: rec, ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.m.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.m.WriteJSON(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.status())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.rec != nil {
			s.rec.WriteTrace(w)
			return
		}
		obs.WriteChromeTrace(w, nil)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port, with the real port
// when addr was ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// status assembles the /status document from the registry snapshot and
// the recorder, computing cumulative and instantaneous guest-MIPS from
// the live retired-instruction counter and the host wall clock.
func (s *Server) status() Status {
	now := time.Now()
	snap := s.m.Snapshot()
	st := Status{
		UptimeSec:  now.Sub(s.start).Seconds(),
		RetiredIns: snap.Counters[LiveRetiredIns],
	}
	if st.UptimeSec > 0 {
		st.GuestMIPS = float64(st.RetiredIns) / st.UptimeSec / 1e6
	}
	s.mu.Lock()
	if !s.lastScrape.IsZero() {
		if dt := now.Sub(s.lastScrape).Seconds(); dt > 0 && st.RetiredIns >= s.lastRetired {
			st.GuestMIPSNow = float64(st.RetiredIns-s.lastRetired) / dt / 1e6
		}
	}
	s.lastScrape = now
	s.lastRetired = st.RetiredIns
	s.mu.Unlock()

	st.SlicesSpawned = uint64(snap.Gauges[LiveSlicesSpawned])
	st.SlicesRunning = uint64(snap.Gauges[LiveSlicesRunning])
	st.SlicesMerged = uint64(snap.Gauges[LiveSlicesMerged])

	// The pin.* and artifact.* namespaces mix counters (live engine
	// totals) and gauges (idempotent per-run publishes); /status folds
	// both so the view works whichever way a producer registered.
	classify := func(k string, v uint64) {
		switch {
		case strings.HasPrefix(k, "pin."):
			if st.HotTier == nil {
				st.HotTier = map[string]uint64{}
			}
			st.HotTier[k] = v
		case strings.HasPrefix(k, "artifact."):
			if st.Artifact == nil {
				st.Artifact = map[string]uint64{}
			}
			st.Artifact[k] = v
		}
	}
	for k, v := range snap.Gauges {
		classify(k, uint64(v))
	}
	for k, v := range snap.Counters {
		classify(k, v)
	}
	st.LatencyNS = snap.Hists

	st.TraceEvents = s.rec.Tracer().Len()
	st.TraceDropped = s.rec.Dropped()
	return st
}
