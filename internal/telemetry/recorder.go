// Package telemetry is the live observability plane of the SuperPin
// reproduction: a flight recorder over the obs event stream and an HTTP
// server exposing the obs metrics registry, run status, and Perfetto
// trace snapshots while the run is still executing.
//
// Everything here is host-side only. The recorder snapshots the ring
// tracer (obs.NewRingTracer) that the kernel folds per-slice event
// buffers into in deterministic slice order (PR 6), so a mid-run
// snapshot sees a well-ordered prefix-with-bounded-window of the exact
// stream a full -trace export would produce. Virtual results are never
// read or written: the differential gates (-exp pardiff/jitdiff/
// cachediff) pass byte-identical with telemetry enabled.
package telemetry

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"superpin/internal/obs"
)

// Recorder is the flight recorder: a handle on the run's (typically
// bounded) tracer that can snapshot or dump it at any moment, including
// a "last-gasp" Perfetto dump on SIGTERM or panic. A nil *Recorder is a
// valid no-op, mirroring the obs types.
type Recorder struct {
	tr *obs.Tracer

	mu     sync.Mutex
	dumped bool // last-gasp written; don't double-dump on signal+defer
}

// NewRecorder wraps a tracer. Returns nil when tr is nil, so an
// untraced run composes to a no-op recorder.
func NewRecorder(tr *obs.Tracer) *Recorder {
	if tr == nil {
		return nil
	}
	return &Recorder{tr: tr}
}

// Tracer returns the wrapped tracer (nil on a nil receiver).
func (r *Recorder) Tracer() *obs.Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Snapshot copies the ring's current contents in emission order. Safe
// mid-run and on a nil receiver.
func (r *Recorder) Snapshot() []obs.Event {
	if r == nil {
		return nil
	}
	return r.tr.Events()
}

// Dropped reports how many events the bounded ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.tr.Dropped()
}

// WriteTrace writes a Perfetto-loadable Chrome-trace snapshot of the
// ring to w.
func (r *Recorder) WriteTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, r.Snapshot())
}

// DumpTo writes a trace snapshot to path (the last-gasp artifact).
// Only the first dump wins; later calls are no-ops so a SIGTERM dump
// and a deferred panic dump don't race or overwrite each other.
func (r *Recorder) DumpTo(path string) error {
	if r == nil || path == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dumped {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, r.tr.Events())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		r.dumped = true
	}
	return werr
}

// ArmLastGasp installs a SIGTERM/SIGINT handler that dumps the ring to
// path and exits with the conventional fatal-signal status. Call once,
// from the CLI, after the recorder is wired into the run; pair it with
// a deferred DumpOnPanic for the panic half.
func (r *Recorder) ArmLastGasp(path string) {
	if r == nil || path == "" {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-ch
		if err := r.DumpTo(path); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: last-gasp dump failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "telemetry: last-gasp trace written to %s\n", path)
		}
		signal.Stop(ch)
		if s, ok := sig.(syscall.Signal); ok {
			os.Exit(128 + int(s))
		}
		os.Exit(1)
	}()
}

// DumpOnPanic is the panic half of the last gasp: call it deferred
// around the run. If the goroutine is panicking it dumps the ring to
// path and re-panics; otherwise it does nothing.
func (r *Recorder) DumpOnPanic(path string) {
	if p := recover(); p != nil {
		if r != nil && path != "" {
			if err := r.DumpTo(path); err == nil {
				fmt.Fprintf(os.Stderr, "telemetry: last-gasp trace written to %s\n", path)
			}
		}
		panic(p)
	}
}
