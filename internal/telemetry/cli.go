package telemetry

import (
	"fmt"
	"io"
	"os"

	"superpin/internal/obs"
)

// DefaultFlightCap is the default flight-recorder ring capacity (events)
// when a CLI enables the telemetry plane without choosing one.
const DefaultFlightCap = 1 << 16

// PlaneOptions configures StartPlane, the shared CLI wiring for the
// telemetry plane.
type PlaneOptions struct {
	// ServeAddr, when non-empty, starts the HTTP server on that address
	// (host:port; ":0" or "127.0.0.1:0" picks a free port).
	ServeAddr string
	// LastGasp, when non-empty, arms the SIGTERM handler that dumps the
	// flight recorder to this path; pair with a deferred
	// Recorder.DumpOnPanic for the panic half.
	LastGasp string
	// FlightCap is the ring capacity used when the plane has to create
	// its own tracer (<= 0 means DefaultFlightCap).
	FlightCap int
	// Metrics and Tracer, when non-nil, are adopted instead of created —
	// the CLI's -metrics / -trace wiring stays the source of truth.
	Metrics *obs.Metrics
	Tracer  *obs.Tracer
	// Log receives the one-line "serving on" announcement (nil =
	// os.Stderr). Scripts scan it for the resolved port.
	Log io.Writer
}

// Plane bundles a CLI invocation's telemetry: the metrics registry, the
// flight-recorder tracer, the recorder around it, and the HTTP server.
// Fields are nil when the corresponding piece is off, preserving the obs
// nil-default zero-cost invariant end to end.
type Plane struct {
	Metrics  *obs.Metrics
	Tracer   *obs.Tracer
	Recorder *Recorder
	Server   *Server
	// LastGasp echoes PlaneOptions.LastGasp for the CLI's deferred
	// Recorder.DumpOnPanic call.
	LastGasp string
}

// StartPlane assembles the telemetry plane. With neither a serve address
// nor a last-gasp path it returns an inert plane that just echoes the
// caller's registry and tracer (both may be nil — nothing is created, so
// a plain run stays telemetry-free). When active it fills in whatever is
// missing: a registry so the endpoints have data, a bounded ring tracer
// as the flight recorder, the recorder, the armed signal handler, and
// the server.
func StartPlane(o PlaneOptions) (*Plane, error) {
	p := &Plane{Metrics: o.Metrics, Tracer: o.Tracer, LastGasp: o.LastGasp}
	if o.ServeAddr == "" && o.LastGasp == "" {
		return p, nil
	}
	if p.Metrics == nil {
		p.Metrics = obs.NewMetrics()
	}
	if p.Tracer == nil {
		cap := o.FlightCap
		if cap <= 0 {
			cap = DefaultFlightCap
		}
		p.Tracer = obs.NewRingTracer(cap)
	}
	p.Recorder = NewRecorder(p.Tracer)
	p.Recorder.ArmLastGasp(o.LastGasp)
	if o.ServeAddr != "" {
		srv, err := NewServer(o.ServeAddr, p.Metrics, p.Recorder)
		if err != nil {
			return nil, err
		}
		p.Server = srv
		logw := o.Log
		if logw == nil {
			logw = os.Stderr
		}
		fmt.Fprintf(logw, "telemetry: serving on http://%s\n", srv.Addr())
	}
	return p, nil
}

// Close stops the HTTP server (nil-safe; inert planes have none).
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	return p.Server.Close()
}
