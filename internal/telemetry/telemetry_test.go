package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"superpin/internal/obs"
)

func testRegistry() (*obs.Metrics, *Recorder) {
	m := obs.NewMetrics()
	m.LiveCounter(LiveRetiredIns).Add(2_000_000)
	m.Set(LiveSlicesSpawned, 4)
	m.Set(LiveSlicesRunning, 2)
	m.Set(LiveSlicesMerged, 1)
	m.Add("pin.hot.promotions", 3)
	m.Add("artifact.predecode.hits", 5)
	m.Observe("kernel.quantum_wall_ns", 1200)
	tr := obs.NewRingTracer(8)
	for i := 0; i < 12; i++ {
		tr.Emit(obs.Event{Kind: obs.EvSyscall, Time: uint64(i), PID: 1, CPU: -1, Name: "write"})
	}
	return m, NewRecorder(tr)
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestServerEndpoints starts a server on a loopback ephemeral port and
// exercises every endpoint: liveness, both metrics formats, the status
// document, the trace snapshot, and the pprof index.
func TestServerEndpoints(t *testing.T) {
	m, rec := testRegistry()
	srv, err := NewServer("127.0.0.1:0", m, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	nameRe := regexp.MustCompile(`^[a-z_:][a-z0-9_:]*(\{[^}]*\})? `)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !nameRe.MatchString(line) {
			t.Errorf("/metrics line violates Prometheus grammar: %q", line)
		}
	}
	if !strings.Contains(string(body), "kernel_live_retired_ins 2000000") {
		t.Errorf("/metrics missing live counter:\n%s", body)
	}

	code, body = get(t, base+"/metrics.json")
	var snap obs.Snapshot
	if code != 200 || json.Unmarshal(body, &snap) != nil {
		t.Fatalf("/metrics.json = %d, unparseable: %s", code, body)
	}
	if snap.Counters[LiveRetiredIns] != 2_000_000 {
		t.Errorf("/metrics.json retired = %d", snap.Counters[LiveRetiredIns])
	}

	code, body = get(t, base+"/status")
	var st Status
	if code != 200 || json.Unmarshal(body, &st) != nil {
		t.Fatalf("/status = %d, unparseable: %s", code, body)
	}
	if st.RetiredIns != 2_000_000 || st.SlicesSpawned != 4 || st.SlicesRunning != 2 || st.SlicesMerged != 1 {
		t.Errorf("/status fields: %+v", st)
	}
	if st.GuestMIPS <= 0 {
		t.Errorf("/status guest_mips = %v, want > 0", st.GuestMIPS)
	}
	if st.HotTier["pin.hot.promotions"] != 3 || st.Artifact["artifact.predecode.hits"] != 5 {
		t.Errorf("/status namespaces: %+v", st)
	}
	if st.LatencyNS["kernel.quantum_wall_ns"].Count != 1 {
		t.Errorf("/status latency histograms: %+v", st.LatencyNS)
	}
	if st.TraceEvents != 8 || st.TraceDropped != 4 {
		t.Errorf("/status trace accounting: events=%d dropped=%d", st.TraceEvents, st.TraceDropped)
	}

	code, body = get(t, base+"/trace")
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if code != 200 || json.Unmarshal(body, &trace) != nil {
		t.Fatalf("/trace = %d, unparseable: %s", code, body)
	}
	if len(trace.TraceEvents) == 0 {
		t.Errorf("/trace empty")
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestServerNilRegistry confirms the endpoints degrade gracefully with
// no metrics and no recorder wired in.
func TestServerNilRegistry(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, ep := range []string{"/healthz", "/metrics", "/metrics.json", "/status", "/trace"} {
		if code, _ := get(t, base+ep); code != 200 {
			t.Errorf("%s = %d with nil registry", ep, code)
		}
	}
	_, body := get(t, base+"/trace")
	if !json.Valid(body) {
		t.Errorf("/trace invalid JSON with nil recorder: %s", body)
	}
}

// TestRecorderDump covers the last-gasp artifact: first dump wins,
// output parses as a Chrome trace.
func TestRecorderDump(t *testing.T) {
	_, rec := testRegistry()
	path := filepath.Join(t.TempDir(), "lastgasp.json")
	if err := rec.DumpTo(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("dump unparseable: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("dump empty")
	}
	// Second dump is a no-op: the file must survive unchanged even if
	// the ring has since moved on.
	rec.Tracer().Emit(obs.Event{Kind: obs.EvProcExit, Time: 99, PID: 1, CPU: -1})
	if err := rec.DumpTo(path); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if string(again) != string(data) {
		t.Error("second DumpTo overwrote the first last-gasp artifact")
	}

	var nilRec *Recorder
	if err := nilRec.DumpTo(path); err != nil {
		t.Errorf("nil recorder DumpTo: %v", err)
	}
	nilRec.ArmLastGasp(path)
	defer nilRec.DumpOnPanic(path)
}

// TestStatusMIPSNow verifies the instantaneous rate derives from
// scrape-to-scrape counter deltas.
func TestStatusMIPSNow(t *testing.T) {
	m, rec := testRegistry()
	srv, err := NewServer("127.0.0.1:0", m, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	_, body := get(t, base+"/status")
	var st Status
	json.Unmarshal(body, &st)
	if st.GuestMIPSNow != 0 {
		t.Errorf("first scrape guest_mips_now = %v, want 0", st.GuestMIPSNow)
	}
	m.LiveCounter(LiveRetiredIns).Add(5_000_000)
	_, body = get(t, base+"/status")
	json.Unmarshal(body, &st)
	if st.GuestMIPSNow <= 0 {
		t.Errorf("second scrape guest_mips_now = %v, want > 0", st.GuestMIPSNow)
	}
	fmt.Fprintln(io.Discard, st.GuestMIPSNow)
}
