package isa

import "fmt"

// Instruction encoding layout (32 bits):
//
//	bits 31..26  opcode
//	R-type:      rd 25..21 | rs1 20..16 | rs2 15..11 | 0
//	I-type:      rd 25..21 | rs1 20..16 | imm16 15..0
//	J-type:      rd 25..21 | imm21 20..0 (signed word offset)
//	S-type:      unused
//
// Conditional branches are encoded as I-type with Rs1 in the rd field and
// Rs2 in the rs1 field. Stores place the data register (Rd) in the rd
// field, exactly like loads place their destination there.
const (
	opShift  = 26
	rdShift  = 21
	rs1Shift = 16
	rs2Shift = 11

	regFieldMask = 0x1f
	imm16Mask    = 0xffff
	imm21Mask    = 0x1fffff

	// MaxImm16 and MinImm16 bound signed 16-bit immediates.
	MaxImm16 = 1<<15 - 1
	MinImm16 = -(1 << 15)
	// MaxImm21 and MinImm21 bound signed 21-bit jump offsets.
	MaxImm21 = 1<<20 - 1
	MinImm21 = -(1 << 20)
)

// EncodeError describes an instruction that cannot be encoded.
type EncodeError struct {
	Inst   Inst
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.Inst, e.Reason)
}

// DecodeError describes a word that is not a valid instruction.
type DecodeError struct {
	Word   uint32
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode %#08x: %s", e.Word, e.Reason)
}

// Encode converts in to its 32-bit machine encoding.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, &EncodeError{in, "invalid opcode"}
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, &EncodeError{in, "register out of range"}
	}
	w := uint32(in.Op) << opShift
	switch in.Op.Format() {
	case FormatR:
		w |= uint32(in.Rd)<<rdShift | uint32(in.Rs1)<<rs1Shift | uint32(in.Rs2)<<rs2Shift
	case FormatI:
		var lo, hi uint8
		if in.Op.IsCondBranch() {
			lo, hi = in.Rs1, in.Rs2
		} else {
			lo, hi = in.Rd, in.Rs1
		}
		if in.Op.ZeroExtImm() {
			if in.Imm < 0 || in.Imm > imm16Mask {
				return 0, &EncodeError{in, "immediate out of unsigned 16-bit range"}
			}
		} else if in.Imm < MinImm16 || in.Imm > MaxImm16 {
			return 0, &EncodeError{in, "immediate out of signed 16-bit range"}
		}
		w |= uint32(lo)<<rdShift | uint32(hi)<<rs1Shift | uint32(in.Imm)&imm16Mask
	case FormatJ:
		if in.Imm < MinImm21 || in.Imm > MaxImm21 {
			return 0, &EncodeError{in, "jump offset out of signed 21-bit range"}
		}
		w |= uint32(in.Rd)<<rdShift | uint32(in.Imm)&imm21Mask
	case FormatS:
		// no operands
	}
	return w, nil
}

// MustEncode is like Encode but panics on error. It is intended for use by
// code generators emitting instructions from validated templates.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode converts a 32-bit machine word to a decoded instruction.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> opShift)
	if !op.Valid() {
		return Inst{}, &DecodeError{w, "undefined opcode"}
	}
	in := Inst{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = uint8(w>>rdShift) & regFieldMask
		in.Rs1 = uint8(w>>rs1Shift) & regFieldMask
		in.Rs2 = uint8(w>>rs2Shift) & regFieldMask
	case FormatI:
		lo := uint8(w>>rdShift) & regFieldMask
		hi := uint8(w>>rs1Shift) & regFieldMask
		if op.IsCondBranch() {
			in.Rs1, in.Rs2 = lo, hi
		} else {
			in.Rd, in.Rs1 = lo, hi
		}
		imm := w & imm16Mask
		if op.ZeroExtImm() {
			in.Imm = int32(imm)
		} else {
			in.Imm = int32(int16(imm))
		}
	case FormatJ:
		in.Rd = uint8(w>>rdShift) & regFieldMask
		imm := w & imm21Mask
		// Sign-extend from 21 bits.
		in.Imm = int32(imm<<11) >> 11
	case FormatS:
		// no operands
	}
	return in, nil
}

// RegName returns the assembler name of register r ("r7"), using the
// conventional aliases for zero, sp, fp and ra.
func RegName(r uint8) string {
	switch r {
	case RegZero:
		return "zero"
	case RegSP:
		return "sp"
	case RegFP:
		return "fp"
	case RegLR:
		return "ra"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// String renders in in assembler syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FormatI:
		switch {
		case in.Op.IsMem():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
		case in.Op.IsCondBranch():
			return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
		case in.Op == OpLUI:
			return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.Rd), in.Imm)
		case in.Op == OpJALR:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
		}
	case FormatJ:
		return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.Rd), in.Imm)
	default:
		return in.Op.String()
	}
}
