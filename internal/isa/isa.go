// Package isa defines SVR32, the 32-bit RISC guest instruction set that
// every other layer of this repository operates on.
//
// SVR32 plays the role that IA-32 plays in the SuperPin paper: it is the
// machine language of the applications being instrumented. The dynamic
// instrumentation engine (internal/pin) decodes, instruments and executes
// SVR32 code; the SuperPin core (internal/core) records and detects slice
// signatures over SVR32 architectural state.
//
// The ISA is deliberately conventional:
//
//   - 32 general-purpose registers r0..r31, with r0 hard-wired to zero.
//     By software convention r29 is the stack pointer, r30 the frame
//     pointer and r31 the link register.
//   - A separate program counter, always word (4-byte) aligned.
//   - Fixed 32-bit instruction encodings in three formats (R, I, J).
//   - Memory is byte addressed; words are little endian and word accesses
//     must be aligned.
//   - System calls take their number in r1 and arguments in r2..r5, and
//     return a result in r1 (see internal/kernel for the call table).
package isa

import "fmt"

// Register conventions. These are software conventions only; the hardware
// treats all registers other than Zero uniformly.
const (
	RegZero = 0 // always reads as zero, writes ignored
	RegSys  = 1 // syscall number and result
	RegArg0 = 2 // first syscall / call argument
	RegArg1 = 3
	RegArg2 = 4
	RegArg3 = 5
	RegSP   = 29 // stack pointer
	RegFP   = 30 // frame pointer
	RegLR   = 31 // link register (return address)
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// WordSize is the size in bytes of a machine word and of every instruction.
const WordSize = 4

// Opcode identifies an SVR32 operation.
type Opcode uint8

// The complete SVR32 opcode set.
const (
	// R-type: op rd, rs1, rs2
	OpADD Opcode = iota
	OpSUB
	OpMUL
	OpDIV // signed; division by zero yields all-ones quotient, like RISC-V
	OpREM // signed remainder; rem by zero yields the dividend
	OpAND
	OpOR
	OpXOR
	OpSLL // shift amount is rs2 mod 32
	OpSRL
	OpSRA
	OpSLT  // rd = (rs1 < rs2) signed
	OpSLTU // rd = (rs1 < rs2) unsigned

	// I-type: op rd, rs1, imm16
	OpADDI
	OpANDI // logical immediates zero-extend
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU
	OpLUI // rd = imm16 << 16 (rs1 ignored)

	// Memory: op rd, imm16(rs1)
	OpLW
	OpLB
	OpLBU
	OpSW
	OpSB

	// Conditional branches: op rs1, rs2, off16 (word offset from next pc)
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // J-type: rd = next pc; pc += off21 words
	OpJALR // I-type: rd = next pc; pc = (rs1 + imm16) & ^3

	// System.
	OpSYSCALL // trap to the kernel

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Inst is a decoded SVR32 instruction.
type Inst struct {
	Op           Opcode
	Rd, Rs1, Rs2 uint8
	Imm          int32 // sign- or zero-extended per the opcode
}

// Format describes an opcode's encoding format.
type Format uint8

// Encoding formats.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm16
	FormatJ               // rd, imm21
	FormatS               // no operands (SYSCALL)
)

type opInfo struct {
	name     string
	format   Format
	zeroExt  bool // immediate is zero-extended (logical immediates)
	load     bool
	store    bool
	condBr   bool
	uncondBr bool
	call     bool // writes a link register (JAL/JALR)
}

var opTable = [numOpcodes]opInfo{
	OpADD:     {name: "add", format: FormatR},
	OpSUB:     {name: "sub", format: FormatR},
	OpMUL:     {name: "mul", format: FormatR},
	OpDIV:     {name: "div", format: FormatR},
	OpREM:     {name: "rem", format: FormatR},
	OpAND:     {name: "and", format: FormatR},
	OpOR:      {name: "or", format: FormatR},
	OpXOR:     {name: "xor", format: FormatR},
	OpSLL:     {name: "sll", format: FormatR},
	OpSRL:     {name: "srl", format: FormatR},
	OpSRA:     {name: "sra", format: FormatR},
	OpSLT:     {name: "slt", format: FormatR},
	OpSLTU:    {name: "sltu", format: FormatR},
	OpADDI:    {name: "addi", format: FormatI},
	OpANDI:    {name: "andi", format: FormatI, zeroExt: true},
	OpORI:     {name: "ori", format: FormatI, zeroExt: true},
	OpXORI:    {name: "xori", format: FormatI, zeroExt: true},
	OpSLLI:    {name: "slli", format: FormatI, zeroExt: true},
	OpSRLI:    {name: "srli", format: FormatI, zeroExt: true},
	OpSRAI:    {name: "srai", format: FormatI, zeroExt: true},
	OpSLTI:    {name: "slti", format: FormatI},
	OpSLTIU:   {name: "sltiu", format: FormatI},
	OpLUI:     {name: "lui", format: FormatI, zeroExt: true},
	OpLW:      {name: "lw", format: FormatI, load: true},
	OpLB:      {name: "lb", format: FormatI, load: true},
	OpLBU:     {name: "lbu", format: FormatI, load: true},
	OpSW:      {name: "sw", format: FormatI, store: true},
	OpSB:      {name: "sb", format: FormatI, store: true},
	OpBEQ:     {name: "beq", format: FormatI, condBr: true},
	OpBNE:     {name: "bne", format: FormatI, condBr: true},
	OpBLT:     {name: "blt", format: FormatI, condBr: true},
	OpBGE:     {name: "bge", format: FormatI, condBr: true},
	OpBLTU:    {name: "bltu", format: FormatI, condBr: true},
	OpBGEU:    {name: "bgeu", format: FormatI, condBr: true},
	OpJAL:     {name: "jal", format: FormatJ, uncondBr: true, call: true},
	OpJALR:    {name: "jalr", format: FormatI, uncondBr: true, call: true},
	OpSYSCALL: {name: "syscall", format: FormatS},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Format returns the encoding format of op.
func (op Opcode) Format() Format {
	if !op.Valid() {
		return FormatS
	}
	return opTable[op].format
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op.Valid() && opTable[op].load }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op.Valid() && opTable[op].store }

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool { return op.Valid() && opTable[op].condBr }

// IsUncondBranch reports whether op is an unconditional control transfer.
func (op Opcode) IsUncondBranch() bool { return op.Valid() && opTable[op].uncondBr }

// IsControl reports whether op can change the program counter (including a
// syscall, which traps to the kernel).
func (op Opcode) IsControl() bool {
	return op.IsCondBranch() || op.IsUncondBranch() || op == OpSYSCALL
}

// IsCall reports whether op writes a return address (jal/jalr with rd != r0
// behave as calls; this predicate is about the opcode's capability).
func (op Opcode) IsCall() bool { return op.Valid() && opTable[op].call }

// ZeroExtImm reports whether op's 16-bit immediate is zero-extended rather
// than sign-extended.
func (op Opcode) ZeroExtImm() bool { return op.Valid() && opTable[op].zeroExt }

// MemSize returns the size in bytes of the memory access performed by op,
// or 0 if op does not access memory.
func (op Opcode) MemSize() int {
	switch op {
	case OpLW, OpSW:
		return 4
	case OpLB, OpLBU, OpSB:
		return 1
	}
	return 0
}

// EndsBlock reports whether an instruction with opcode op terminates a
// basic block (any control transfer or trap).
func (op Opcode) EndsBlock() bool { return op.IsControl() }

// regMask returns a bitmask of registers in rs.
func regMask(rs ...uint8) uint32 {
	var m uint32
	for _, r := range rs {
		m |= 1 << (r & 31)
	}
	return m
}

// SrcRegs returns a bitmask (bit i set means register i) of the registers
// read by in.
func (in Inst) SrcRegs() uint32 {
	switch in.Op.Format() {
	case FormatR:
		return regMask(in.Rs1, in.Rs2)
	case FormatI:
		if in.Op == OpLUI {
			return 0
		}
		if in.Op.IsCondBranch() {
			return regMask(in.Rs1, in.Rs2)
		}
		if in.Op.IsStore() {
			return regMask(in.Rs1, in.Rd) // stores read the "rd" field as data
		}
		return regMask(in.Rs1)
	case FormatJ:
		return 0
	case FormatS:
		return regMask(RegSys, RegArg0, RegArg1, RegArg2, RegArg3)
	}
	return 0
}

// DstReg returns the register written by in, or -1 if none. The syscall
// instruction's kernel-written result register (r1) is reported here.
func (in Inst) DstReg() int {
	switch {
	case in.Op == OpSYSCALL:
		return RegSys
	case in.Op.IsCondBranch(), in.Op.IsStore():
		return -1
	default:
		if in.Rd == RegZero {
			return -1
		}
		return int(in.Rd)
	}
}
