package isa

import "testing"

func BenchmarkDecode(b *testing.B) {
	w := MustEncode(Inst{Op: OpADDI, Rd: 3, Rs1: 4, Imm: -12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	in := Inst{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(in); err != nil {
			b.Fatal(err)
		}
	}
}
