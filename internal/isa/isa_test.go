package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst produces a random valid instruction for property tests.
func randInst(r *rand.Rand) Inst {
	op := Opcode(r.Intn(NumOpcodes))
	in := Inst{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = uint8(r.Intn(NumRegs))
		in.Rs1 = uint8(r.Intn(NumRegs))
		in.Rs2 = uint8(r.Intn(NumRegs))
	case FormatI:
		if op.IsCondBranch() {
			in.Rs1 = uint8(r.Intn(NumRegs))
			in.Rs2 = uint8(r.Intn(NumRegs))
		} else {
			in.Rd = uint8(r.Intn(NumRegs))
			in.Rs1 = uint8(r.Intn(NumRegs))
		}
		if op.ZeroExtImm() {
			in.Imm = int32(r.Intn(1 << 16))
		} else {
			in.Imm = int32(r.Intn(1<<16)) + MinImm16
		}
	case FormatJ:
		in.Rd = uint8(r.Intn(NumRegs))
		in.Imm = int32(r.Intn(1<<21)) + MinImm21
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) from %v: %v", w, in, err)
		}
		if got != in {
			t.Fatalf("round trip mismatch: %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestDecodeEncodeRoundTripQuick(t *testing.T) {
	// Any word that decodes must re-encode to a word that decodes to the
	// same instruction (encodings may differ in don't-care bits).
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // undefined opcodes are fine
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: MaxImm16 + 1},
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: MinImm16 - 1},
		{Op: OpANDI, Rd: 1, Rs1: 1, Imm: -1},
		{Op: OpANDI, Rd: 1, Rs1: 1, Imm: 1 << 16},
		{Op: OpJAL, Rd: 1, Imm: MaxImm21 + 1},
		{Op: OpJAL, Rd: 1, Imm: MinImm21 - 1},
		{Op: numOpcodes, Rd: 1},
		{Op: OpADD, Rd: 32},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) unexpectedly succeeded", in)
		}
	}
}

func TestDecodeRejectsUndefinedOpcode(t *testing.T) {
	w := uint32(numOpcodes) << 26
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode of undefined opcode succeeded")
	}
}

func TestOpcodePredicates(t *testing.T) {
	checks := []struct {
		op                               Opcode
		load, store, cond, uncond, contr bool
	}{
		{OpADD, false, false, false, false, false},
		{OpLW, true, false, false, false, false},
		{OpSB, false, true, false, false, false},
		{OpBEQ, false, false, true, false, true},
		{OpJAL, false, false, false, true, true},
		{OpJALR, false, false, false, true, true},
		{OpSYSCALL, false, false, false, false, true},
	}
	for _, c := range checks {
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsCondBranch() != c.cond || c.op.IsUncondBranch() != c.uncond ||
			c.op.IsControl() != c.contr {
			t.Errorf("%v: predicate mismatch", c.op)
		}
	}
	if !OpLW.IsMem() || OpADD.IsMem() {
		t.Error("IsMem wrong")
	}
	if OpLW.MemSize() != 4 || OpLB.MemSize() != 1 || OpSW.MemSize() != 4 || OpADD.MemSize() != 0 {
		t.Error("MemSize wrong")
	}
	if !OpBEQ.EndsBlock() || !OpSYSCALL.EndsBlock() || OpADD.EndsBlock() {
		t.Error("EndsBlock wrong")
	}
}

func TestSrcDstRegs(t *testing.T) {
	in := Inst{Op: OpADD, Rd: 3, Rs1: 4, Rs2: 5}
	if in.SrcRegs() != (1<<4 | 1<<5) {
		t.Errorf("ADD SrcRegs = %#x", in.SrcRegs())
	}
	if in.DstReg() != 3 {
		t.Errorf("ADD DstReg = %d", in.DstReg())
	}
	st := Inst{Op: OpSW, Rd: 7, Rs1: 29, Imm: 8}
	if st.SrcRegs() != (1<<7 | 1<<29) {
		t.Errorf("SW SrcRegs = %#x", st.SrcRegs())
	}
	if st.DstReg() != -1 {
		t.Errorf("SW DstReg = %d", st.DstReg())
	}
	br := Inst{Op: OpBNE, Rs1: 1, Rs2: 2}
	if br.DstReg() != -1 {
		t.Errorf("BNE DstReg = %d", br.DstReg())
	}
	zw := Inst{Op: OpADD, Rd: RegZero, Rs1: 1, Rs2: 2}
	if zw.DstReg() != -1 {
		t.Errorf("write to zero reg DstReg = %d", zw.DstReg())
	}
	sc := Inst{Op: OpSYSCALL}
	if sc.DstReg() != RegSys {
		t.Errorf("SYSCALL DstReg = %d", sc.DstReg())
	}
}

func TestRegNames(t *testing.T) {
	if RegName(0) != "zero" || RegName(29) != "sp" || RegName(30) != "fp" || RegName(31) != "ra" || RegName(7) != "r7" {
		t.Error("RegName aliases wrong")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpLW, Rd: 1, Rs1: 29, Imm: 8}, "lw r1, 8(sp)"},
		{Inst{Op: OpBEQ, Rs1: 1, Rs2: 0, Imm: -4}, "beq r1, zero, -4"},
		{Inst{Op: OpJAL, Rd: 31, Imm: 10}, "jal ra, 10"},
		{Inst{Op: OpSYSCALL}, "syscall"},
		{Inst{Op: OpLUI, Rd: 5, Imm: 16}, "lui r5, 16"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
