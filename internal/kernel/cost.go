package kernel

// Cycles is the unit of virtual time. Everything in the simulation — guest
// execution, fork overhead, syscall latency, scheduling — is accounted in
// cycles, and wall-clock results are reported as cycles or converted to
// virtual seconds via CostModel.CPS. Virtual time is deterministic: a run
// produces identical timings on any host.
type Cycles uint64

// CostModel holds the calibrated cycle costs of the simulated machine and
// operating system. The defaults are tuned so the instrumentation engines
// built on top reproduce the overhead structure reported in the SuperPin
// paper (Pin icount1 ~12X, fork/COW overhead visible at sub-second
// timeslices, hyperthreaded sharing slower than a dedicated core).
type CostModel struct {
	// CPS is cycles per virtual second. It only scales reporting and the
	// interpretation of millisecond-denominated switches like -spmsec.
	CPS Cycles

	// Quantum is the scheduling quantum. Events (timers, forks, wakes)
	// take effect at quantum boundaries; syscalls are handled exactly.
	Quantum Cycles

	// InterpCost is the cycle cost of one natively executed guest
	// instruction.
	InterpCost Cycles

	// SyscallBase is the kernel-side cost of any system call.
	SyscallBase Cycles

	// PtraceStop is the extra cost charged to a traced process for each
	// syscall-stop delivered to its tracer (the paper measures this under
	// "Ptrace Overhead" as less than a few tenths of a percent).
	PtraceStop Cycles

	// ForkBase is the fixed cost of fork, charged to the parent.
	ForkBase Cycles

	// ForkPerPage is the per-materialized-page cost of duplicating the
	// page table at fork, charged to the parent.
	ForkPerPage Cycles

	// PageCopy is the cost of one copy-on-write page copy, charged to the
	// process whose write triggered it.
	PageCopy Cycles

	// TrampolineCost models SuperPin's slice-spawn trampoline (redirect
	// PC, switch to a private stack, enter the VM).
	TrampolineCost Cycles

	// HTFactor is the throughput factor applied to each of two processes
	// sharing one physical core via hyperthreading.
	HTFactor float64

	// SMPAlpha is the per-extra-busy-CPU slowdown coefficient modeling
	// memory-subsystem contention: with R busy CPUs each runs at
	// 1/(1+SMPAlpha*(R-1)) of full speed. The paper verifies this effect
	// by loading the machine with N native copies of a benchmark
	// ("SMP Scalability Issues", Section 6.3).
	SMPAlpha float64
}

// DefaultCost returns the calibrated default cost model.
func DefaultCost() CostModel {
	return CostModel{
		CPS:            100_000,
		Quantum:        200,
		InterpCost:     1,
		SyscallBase:    30,
		PtraceStop:     8,
		ForkBase:       300,
		ForkPerPage:    2,
		PageCopy:       40,
		TrampolineCost: 80,
		HTFactor:       0.62,
		SMPAlpha:       0.015,
	}
}

// MSec converts virtual milliseconds to cycles under this model.
func (c CostModel) MSec(ms float64) Cycles {
	return Cycles(ms * float64(c.CPS) / 1000)
}

// Seconds converts a cycle count to virtual seconds under this model.
func (c CostModel) Seconds(cy Cycles) float64 {
	return float64(cy) / float64(c.CPS)
}
