package kernel

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/mem"
)

// benchProg returns a loop long enough that b.N instructions can be
// interpreted without the process exiting.
func benchProg(b *testing.B) (*mem.Memory, cpu.Regs) {
	b.Helper()
	p, err := asm.Assemble(`
	li r10, 0
	li r11, 2000000000
loop:
	addi r10, r10, 1
	add r12, r12, r10
	blt r10, r11, loop
	li r1, 1
	syscall
`)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	return m, regs
}

// BenchmarkNativeInterp measures raw interpreter throughput through the
// kernel's NativeRunner.
func BenchmarkNativeInterp(b *testing.B) {
	k := New(DefaultConfig())
	m, regs := benchProg(b)
	p := k.Spawn("bench", m, regs, NativeRunner{})
	r := NativeRunner{}
	b.ResetTimer()
	for p.InsCount < uint64(b.N) {
		if _, stop := r.Run(k, p, Cycles(b.N)-Cycles(p.InsCount)); stop == StopError {
			b.Fatal(p.Err)
		}
	}
	b.ReportMetric(float64(p.InsCount)/b.Elapsed().Seconds(), "guest-ins/s")
}

// BenchmarkScheduler8Procs measures full discrete-event scheduling
// overhead with 8 concurrent CPU-bound processes on 8 cores.
func BenchmarkScheduler8Procs(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Hyperthreading = false
	cfg.MaxCycles = Cycles(b.N)*8 + 1_000_000
	k := New(cfg)
	for i := 0; i < 8; i++ {
		m, regs := benchProg(b)
		k.Spawn("w", m, regs, NativeRunner{})
	}
	b.ResetTimer()
	quantum := cfg.Cost.Quantum
	var total uint64
	for total < uint64(b.N) {
		k.fireTimers()
		k.runQuantum(quantum)
		k.Now += quantum
		total = 0
		for _, p := range k.Procs() {
			total += p.InsCount
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "guest-ins/s")
}
