package kernel

import (
	"errors"
	"strings"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/mem"
)

// buildProg assembles src and returns a loaded memory image plus entry regs.
func buildProg(t *testing.T, src string) (*mem.Memory, cpu.Regs) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	return m, regs
}

// exitProg is a program that runs n loop iterations then exits with code.
func loopExit(n int, code int) string {
	return `
	li r10, 0
	li r11, ` + itoa(n) + `
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1        ; SysExit
	li r2, ` + itoa(code) + `
	syscall
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	return cfg
}

func TestRunToExit(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(100, 42))
	p := k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() || p.ExitCode != 42 {
		t.Fatalf("state=%v code=%d", p.State, p.ExitCode)
	}
	// 2 setup + 100 iterations * 2 + 3 exit-setup-ish instructions.
	if p.InsCount < 200 || p.InsCount > 220 {
		t.Fatalf("InsCount = %d", p.InsCount)
	}
	if p.CPUTime == 0 || p.EndTime == 0 {
		t.Fatalf("accounting missing: cpu=%d end=%d", p.CPUTime, p.EndTime)
	}
}

func TestWriteSyscallReachesStdout(t *testing.T) {
	k := New(smallConfig())
	src := `
	.entry main
main:
	la r3, msg
	li r1, 2      ; SysWrite
	li r2, 1      ; fd
	li r4, 5      ; len
	syscall
	li r1, 1
	li r2, 0
	syscall
	.org 0x3000
msg:
	.word 0x6c6c6568, 0x0000006f  ; "hello"
`
	m, regs := buildProg(t, src)
	k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(k.Stdout); got != "hello" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestReadIsDeterministicAcrossKernels(t *testing.T) {
	src := `
	li r1, 3      ; SysRead
	li r2, 0
	li r3, 0x5000 ; buf
	li r4, 16
	syscall
	li r1, 1
	li r2, 0
	syscall
`
	run := func() []byte {
		k := New(smallConfig())
		m, regs := buildProg(t, src)
		p := k.Spawn("app", m, regs, NativeRunner{})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		_ = p
		// Memory is released at exit; capture via a hook instead.
		return nil
	}
	_ = run
	// Capture the buffer before exit using a syscall hook.
	capture := func(seed uint64) []byte {
		cfg := smallConfig()
		cfg.Seed = seed
		k := New(cfg)
		m, regs := buildProg(t, src)
		p := k.Spawn("app", m, regs, NativeRunner{})
		var got []byte
		p.Hook = hookFuncs{
			exit: func(_ *Kernel, p *Proc, sysno uint32, _ [4]uint32, _ SyscallOutcome) {
				if sysno == SysRead {
					got = make([]byte, 16)
					p.Mem.ReadBytes(0x5000, got)
				}
			},
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := capture(7)
	b := capture(7)
	c := capture(8)
	if string(a) != string(b) {
		t.Fatal("same seed produced different input streams")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical input streams")
	}
	if len(a) != 16 || a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0 {
		t.Fatalf("suspicious input bytes: %v", a)
	}
}

// hookFuncs adapts plain functions to the SyscallHook interface.
type hookFuncs struct {
	entry func(*Kernel, *Proc, uint32, [4]uint32) (bool, SyscallOutcome)
	exit  func(*Kernel, *Proc, uint32, [4]uint32, SyscallOutcome)
}

func (h hookFuncs) Entry(k *Kernel, p *Proc, sysno uint32, args [4]uint32) (bool, SyscallOutcome) {
	if h.entry == nil {
		return false, SyscallOutcome{}
	}
	return h.entry(k, p, sysno, args)
}

func (h hookFuncs) Exit(k *Kernel, p *Proc, sysno uint32, args [4]uint32, out SyscallOutcome) {
	if h.exit != nil {
		h.exit(k, p, sysno, args, out)
	}
}

func TestBrkAndMmap(t *testing.T) {
	k := New(smallConfig())
	src := `
	li r1, 4      ; brk(0) query
	li r2, 0
	syscall
	mv r20, r1
	li r1, 5      ; mmap(0x2000)
	li r2, 0x2000
	syscall
	mv r21, r1
	li r1, 5      ; mmap(0x2000) again: must be different
	li r2, 0x2000
	syscall
	mv r22, r1
	li r1, 1
	li r2, 0
	syscall
`
	m, regs := buildProg(t, src)
	p := k.Spawn("app", m, regs, NativeRunner{})
	var r20, r21, r22 uint32
	p.Hook = hookFuncs{
		entry: func(_ *Kernel, p *Proc, sysno uint32, _ [4]uint32) (bool, SyscallOutcome) {
			if sysno == SysExit {
				// All three results have been moved to r20..r22 by now.
				r20, r21, r22 = p.Regs.R[20], p.Regs.R[21], p.Regs.R[22]
			}
			return false, SyscallOutcome{}
		},
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_ = r20
	if r21 == 0 || r22 != r21+0x2000 {
		t.Fatalf("mmap results: %#x then %#x", r21, r22)
	}
}

func TestHookEntryCanOverrideSyscall(t *testing.T) {
	k := New(smallConfig())
	src := `
	li r1, 8      ; getpid
	syscall
	mv r20, r1
	li r1, 1
	mv r2, r20
	syscall
`
	m, regs := buildProg(t, src)
	p := k.Spawn("app", m, regs, NativeRunner{})
	p.Hook = hookFuncs{
		entry: func(_ *Kernel, _ *Proc, sysno uint32, _ [4]uint32) (bool, SyscallOutcome) {
			if sysno == SysGetPid {
				return true, SyscallOutcome{Ret: 777}
			}
			return false, SyscallOutcome{}
		},
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 777 {
		t.Fatalf("exit code = %d, want hook-injected 777", p.ExitCode)
	}
}

func TestForkChargesParentAndIsolates(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(1000, 0))
	parent := k.Spawn("parent", m, regs, NativeRunner{})
	// Touch some pages so the page-table charge is visible.
	for i := uint32(0); i < 50; i++ {
		parent.Mem.StoreWord(0x0010_0000+i*mem.PageSize, i)
	}
	child := k.Fork(parent, "child", NativeRunner{}, true)
	if parent.ForkCost == 0 {
		t.Fatal("fork cost not charged")
	}
	if child.Regs != parent.Regs {
		t.Fatal("child regs differ from parent")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !child.Exited() || !parent.Exited() {
		t.Fatal("processes did not both exit")
	}
	if child.InsCount != parent.InsCount {
		t.Fatalf("child executed %d instructions, parent %d", child.InsCount, parent.InsCount)
	}
}

func TestCowChargedToWriter(t *testing.T) {
	k := New(smallConfig())
	// Program writes 20 pages then exits.
	src := `
	li r10, 0
	li r11, 20
	li r12, 0x00200000
loop:
	sw r10, (r12)
	lui r13, 1      ; 0x10000 = 16 pages... use addi of 0x1000
	addi r12, r12, 0x1000
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	li r2, 0
	syscall
`
	m, regs := buildProg(t, src)
	parent := k.Spawn("parent", m, regs, NativeRunner{})
	// Pre-touch the pages in the parent so the child's writes are COW.
	for i := uint32(0); i < 20; i++ {
		parent.Mem.StoreWord(0x0020_0000+i*0x1000, 0)
	}
	child := k.Fork(parent, "child", NativeRunner{}, true)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if child.CowCost == 0 {
		t.Fatal("child COW writes not charged")
	}
	// Parent and child run the same store loop concurrently; whichever
	// writes a shared page first pays for its copy, so the 20 copies are
	// split between them but must total at least 20.
	cost := k.Config().Cost
	wantMin := Cycles(20) * cost.PageCopy
	if total := child.CowCost + parent.CowCost; total < wantMin {
		t.Fatalf("total CowCost = %d, want >= %d", total, wantMin)
	}
}

func TestSleepWakeAndTimers(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(100000, 0))
	p := k.Spawn("app", m, regs, NativeRunner{})
	k.SleepProc(p)
	if p.State != StateSleeping {
		t.Fatal("proc not sleeping")
	}
	delay := k.Config().Cost.MSec(100)
	var wokeAt Cycles
	k.AddTimer(delay, func() {
		wokeAt = k.Now
		k.Wake(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < delay {
		t.Fatalf("timer fired at %d, want >= %d", wokeAt, delay)
	}
	if p.SleepTime < delay-k.Config().Cost.Quantum {
		t.Fatalf("SleepTime = %d, want about %d", p.SleepTime, delay)
	}
	if !p.Exited() {
		t.Fatal("proc did not finish after wake")
	}
}

func TestTimerCancel(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(1000, 0))
	k.Spawn("app", m, regs, NativeRunner{})
	fired := false
	tm := k.AddTimer(10, func() { fired = true })
	tm.Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(10, 0))
	p := k.Spawn("app", m, regs, NativeRunner{})
	k.SleepProc(p)
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxCycles = 1000
	k := New(cfg)
	m, regs := buildProg(t, loopExit(10_000_000, 0))
	k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestGuestFaultKillsProcess(t *testing.T) {
	k := New(smallConfig())
	m := mem.New()
	m.StoreWord(0, 0xffffffff) // garbage instruction
	regs := cpu.Regs{PC: 0}
	p := k.Spawn("bad", m, regs, NativeRunner{})
	err := k.Run()
	if err == nil {
		t.Fatal("guest fault not reported")
	}
	if !p.Exited() {
		t.Fatal("faulting proc still live")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

// TestParallelismSpeedsUpWallClock is the core scheduler property: N
// independent CPU-bound processes on N CPUs finish in about the time of
// one (modulo SMP contention), while on 1 CPU they serialize.
func TestParallelismSpeedsUpWallClock(t *testing.T) {
	run := func(cpus, procs int) Cycles {
		cfg := smallConfig()
		cfg.CPUs = cpus
		cfg.Hyperthreading = false
		cfg.Cost.SMPAlpha = 0 // isolate pure scheduling
		k := New(cfg)
		for i := 0; i < procs; i++ {
			m, regs := buildProg(t, loopExit(20000, 0))
			k.Spawn("w", m, regs, NativeRunner{})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now
	}
	serial := run(1, 4)
	parallel := run(4, 4)
	if parallel >= serial {
		t.Fatalf("4-CPU run (%d) not faster than 1-CPU run (%d)", parallel, serial)
	}
	ratio := float64(serial) / float64(parallel)
	if ratio < 3.0 || ratio > 4.5 {
		t.Fatalf("speedup = %.2f, want ~4", ratio)
	}
}

func TestSMPContentionSlowsBusyCores(t *testing.T) {
	run := func(procs int) Cycles {
		cfg := smallConfig()
		cfg.CPUs = 8
		cfg.Hyperthreading = false
		k := New(cfg)
		for i := 0; i < procs; i++ {
			m, regs := buildProg(t, loopExit(20000, 0))
			k.Spawn("w", m, regs, NativeRunner{})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now
	}
	alone := run(1)
	loaded := run(8)
	if loaded <= alone {
		t.Fatalf("8 busy cores (%d) not slower than 1 (%d)", loaded, alone)
	}
	// With SMPAlpha=0.015 the loaded factor is 1/(1+0.015*7) ~ 0.905.
	ratio := float64(loaded) / float64(alone)
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("contention ratio = %.3f, want ~1.10", ratio)
	}
}

func TestHyperthreadingSharesCores(t *testing.T) {
	run := func(ht bool, procs int) Cycles {
		cfg := smallConfig()
		cfg.CPUs = 2
		cfg.Hyperthreading = ht
		cfg.Cost.SMPAlpha = 0
		k := New(cfg)
		for i := 0; i < procs; i++ {
			m, regs := buildProg(t, loopExit(20000, 0))
			k.Spawn("w", m, regs, NativeRunner{})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now
	}
	// 4 procs on 2 cores: HT runs them all concurrently at reduced speed;
	// without HT they timeshare. HT should still be a bit faster overall
	// because 2*HTFactor > 1.
	noHT := run(false, 4)
	ht := run(true, 4)
	if ht >= noHT {
		t.Fatalf("HT run (%d) not faster than non-HT (%d)", ht, noHT)
	}
	// But HT must be slower than 4 dedicated cores would be.
	cfg4 := smallConfig()
	cfg4.CPUs = 4
	cfg4.Hyperthreading = false
	cfg4.Cost.SMPAlpha = 0
	k := New(cfg4)
	for i := 0; i < 4; i++ {
		m, regs := buildProg(t, loopExit(20000, 0))
		k.Spawn("w", m, regs, NativeRunner{})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	dedicated := k.Now
	if ht <= dedicated {
		t.Fatalf("HT run (%d) unrealistically fast vs dedicated (%d)", ht, dedicated)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Cycles, uint64) {
		k := New(smallConfig())
		for i := 0; i < 3; i++ {
			m, regs := buildProg(t, loopExit(5000+i*100, 0))
			k.Spawn("w", m, regs, NativeRunner{})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var totalIns uint64
		for _, p := range k.Procs() {
			totalIns += p.InsCount
		}
		return k.Now, totalIns
	}
	t1, i1 := run()
	t2, i2 := run()
	if t1 != t2 || i1 != i2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, i1, t2, i2)
	}
}

func TestWaitTimeAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUs = 1
	cfg.Hyperthreading = false
	k := New(cfg)
	var procs []*Proc
	for i := 0; i < 2; i++ {
		m, regs := buildProg(t, loopExit(10000, 0))
		procs = append(procs, k.Spawn("w", m, regs, NativeRunner{}))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if procs[0].WaitTime+procs[1].WaitTime == 0 {
		t.Fatal("no wait time recorded for 2 procs on 1 CPU")
	}
}

func TestSyscallNames(t *testing.T) {
	if SyscallName(SysExit) != "exit" || SyscallName(SysMmap) != "mmap" || SyscallName(999) != "sys999" {
		t.Fatal("SyscallName wrong")
	}
}

func TestTimeSyscallAdvances(t *testing.T) {
	k := New(smallConfig())
	src := `
	li r1, 7
	syscall
	mv r20, r1
	li r10, 0
	li r11, 50000
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 7
	syscall
	mv r21, r1
	li r1, 1
	sub r2, r21, r20
	syscall
`
	m, regs := buildProg(t, src)
	p := k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 100k instructions at CPS 100k =~ 1000 ms.
	if p.ExitCode < 500 || p.ExitCode > 1500 {
		t.Fatalf("elapsed virtual ms = %d, want ~1000", p.ExitCode)
	}
}
