package kernel

import (
	"fmt"

	"superpin/internal/isa"
)

// System call numbers. The guest places the number in r1 and up to four
// arguments in r2..r5; the result is returned in r1.
const (
	SysExit   uint32 = 1  // exit(code)
	SysWrite  uint32 = 2  // write(fd, buf, len) -> len
	SysRead   uint32 = 3  // read(fd, buf, len) -> len (deterministic input stream)
	SysBrk    uint32 = 4  // brk(addr) -> new break (addr==0 queries)
	SysMmap   uint32 = 5  // mmap(len) -> addr (anonymous, bump-allocated)
	SysMunmap uint32 = 6  // munmap(addr, len) -> 0
	SysTime   uint32 = 7  // time() -> virtual milliseconds since boot
	SysGetPid uint32 = 8  // getpid() -> pid
	SysRand   uint32 = 9  // rand() -> pseudo-random word from the kernel pool
	SysYield  uint32 = 10 // yield() -> 0 (scheduling hint, no effect)
	// SysSpawn creates a thread: spawn(entry, sp, arg) -> tid. The new
	// thread shares the caller's memory image (no copy-on-write), starts
	// at entry with the given stack pointer and arg in r2, and belongs
	// to the caller's thread group: exit() terminates the whole group.
	SysSpawn uint32 = 11
)

// SyscallName returns a human-readable name for sysno.
func SyscallName(sysno uint32) string {
	switch sysno {
	case SysExit:
		return "exit"
	case SysWrite:
		return "write"
	case SysRead:
		return "read"
	case SysBrk:
		return "brk"
	case SysMmap:
		return "mmap"
	case SysMunmap:
		return "munmap"
	case SysTime:
		return "time"
	case SysGetPid:
		return "getpid"
	case SysRand:
		return "rand"
	case SysYield:
		return "yield"
	case SysSpawn:
		return "spawn"
	default:
		return fmt.Sprintf("sys%d", sysno)
	}
}

// MemWrite records one contiguous memory effect of a system call. The
// SuperPin control process captures these to play system calls back inside
// instrumentation slices (paper Section 4.2).
type MemWrite struct {
	Addr uint32
	Data []byte
}

// SyscallOutcome is the complete, replayable effect of a system call: the
// value returned in r1, the memory it wrote, its cycle cost, and whether
// it terminated the process.
type SyscallOutcome struct {
	Ret    uint32
	Writes []MemWrite
	Cost   Cycles
	Exited bool
}

// SyscallArgs extracts the syscall number and arguments from p's registers.
func SyscallArgs(p *Proc) (sysno uint32, args [4]uint32) {
	sysno = p.Regs.R[isa.RegSys]
	args[0] = p.Regs.R[isa.RegArg0]
	args[1] = p.Regs.R[isa.RegArg1]
	args[2] = p.Regs.R[isa.RegArg2]
	args[3] = p.Regs.R[isa.RegArg3]
	return sysno, args
}

// serviceSyscall computes the outcome of a system call for p without
// applying it. Deterministic kernel state (the input stream, the random
// pool, the clock) advances here, which is exactly why slices must replay
// recorded outcomes rather than re-execute: a re-executed read or time
// call would observe different values than the master did.
func (k *Kernel) serviceSyscall(p *Proc, sysno uint32, args [4]uint32) SyscallOutcome {
	cost := k.cfg.Cost
	out := SyscallOutcome{Cost: cost.SyscallBase}
	switch sysno {
	case SysExit:
		out.Exited = true
		out.Ret = args[0]
	case SysWrite:
		buf, length := args[1], args[2]
		if length > maxIOLen {
			length = maxIOLen
		}
		data := make([]byte, length)
		p.Mem.ReadBytes(buf, data)
		k.Stdout = append(k.Stdout, data...)
		out.Ret = length
		out.Cost += Cycles(length / 16)
	case SysRead:
		buf, length := args[1], args[2]
		if length > maxIOLen {
			length = maxIOLen
		}
		data := make([]byte, length)
		for i := range data {
			data[i] = byte(k.nextRand())
		}
		out.Writes = append(out.Writes, MemWrite{Addr: buf, Data: data})
		out.Ret = length
		out.Cost += Cycles(length / 16)
	case SysBrk:
		if args[0] != 0 {
			p.Brk = args[0]
		}
		out.Ret = p.Brk
	case SysMmap:
		length := (args[0] + 0xfff) &^ 0xfff
		if length == 0 {
			length = 0x1000
		}
		out.Ret = p.MmapTop
		p.MmapTop += length
	case SysMunmap:
		out.Ret = 0
	case SysTime:
		out.Ret = uint32(uint64(k.Now) * 1000 / uint64(cost.CPS))
	case SysGetPid:
		out.Ret = uint32(p.PID)
	case SysRand:
		out.Ret = uint32(k.nextRand())
	case SysYield:
		out.Ret = 0
	case SysSpawn:
		child := k.SpawnThread(p, args[0], args[1], args[2])
		if child == nil {
			out.Ret = ^uint32(0)
		} else {
			out.Ret = uint32(child.PID)
		}
	default:
		out.Ret = ^uint32(0) // ENOSYS
	}
	return out
}

// maxIOLen bounds single read/write transfers.
const maxIOLen = 1 << 20

// ApplyOutcome applies a syscall outcome (recorded or fresh) to p's
// registers and memory. It is exported so SuperPin's playback engine uses
// the same application path as the kernel itself.
func ApplyOutcome(p *Proc, out SyscallOutcome) {
	p.Regs.R[isa.RegSys] = out.Ret
	for _, w := range out.Writes {
		p.Mem.WriteBytes(w.Addr, w.Data)
	}
}

// nextRand steps the kernel's deterministic xorshift64* pool.
func (k *Kernel) nextRand() uint64 {
	x := k.randState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	k.randState = x
	return x * 0x2545F4914F6CDD1D
}
