package kernel

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Parallel quantum execution.
//
// Within one scheduling quantum every scheduled process receives a budget
// computed from the quantum-start snapshot alone, and processes whose
// runners are kernel-free until their first stop (SuperPin slices service
// recorded syscalls internally; the master runs native code until its
// next real syscall) only touch their own Proc and private memory during
// a guest phase. Those phases are therefore data-independent and can run
// concurrently on spare host cores.
//
// Determinism comes from keeping *effects* on the scheduler goroutine in
// the serial walk order: the scheduler walks the quantum's processes in
// queue order, claims-or-waits for each one's guest phase, then applies
// its stop (syscalls, exits, sleeps, trace events) inline before moving
// to the next. Virtual time, accounting, trace streams and results are
// byte-identical to a serial run for every worker count.

// parTask states.
const (
	taskUnclaimed int32 = iota
	taskClaimed
	taskDone
)

// parTask is one process's guest phase within a quantum, claimable by
// exactly one executor (a pool worker or the scheduler goroutine) via a
// CAS on state. The taskDone store/load pair publishes the phase's
// results — left, stop and every write to the process — to the scheduler.
type parTask struct {
	proc   *Proc
	budget Cycles
	state  atomic.Int32
	left   Cycles
	stop   StopReason
	// skipped marks a task settled before it ever ran because its process
	// was exited or slept from an earlier walk position; the scheduler
	// then runs the phase inline at the task's own position, where it
	// reduces to the debt prelude — exactly the serial walk's behavior.
	skipped bool
}

// poolStats aggregates host-side pool occupancy counters. They describe
// the host execution only and never feed back into virtual results.
type poolStats struct {
	workers       uint64 // resolved pool size (including the scheduler)
	rounds        uint64 // quanta walked with the pool active
	tasks         uint64 // parallel-safe guest phases enqueued
	workerRuns    uint64 // phases executed by pool workers
	mainRuns      uint64 // phases the scheduler claimed at their walk position
	mainSteals    uint64 // phases the scheduler stole while waiting
	mergeStalls   uint64 // walk positions that had to wait for an executor
	maxQueueDepth uint64 // most parallel-safe phases in one quantum
}

// parSafe reports whether p's guest phase may run off the scheduler
// goroutine. Thread-group members share one memory image and
// burst-logged processes feed the global schedule log, so both stay
// inline in walk order; everything else — slices, the master, plain
// pin or native processes — owns all its mutable state for the duration
// of a phase.
func (k *Kernel) parSafe(p *Proc) bool {
	return p.memShare == nil && p.BurstHook == nil
}

// runTask executes t's guest phase and publishes the results. Every
// 16th task's wall time feeds the kernel.pool.run_ns histogram when
// live telemetry is attached (tasks run concurrently, so the sampling
// phase is an atomic counter).
func (k *Kernel) runTask(t *parTask) {
	if k.runHist != nil && k.taskSeq.Add(1)&quantumSampleMask == 0 {
		t0 := time.Now()
		t.left, t.stop = k.runGuestPhase(t.proc, t.budget)
		k.runHist.Observe(uint64(time.Since(t0)))
		t.state.Store(taskDone)
		return
	}
	t.left, t.stop = k.runGuestPhase(t.proc, t.budget)
	t.state.Store(taskDone)
}

// runProcsParallel runs one quantum's processes with guest phases fanned
// out over the worker pool and effects applied in serial walk order.
func (k *Kernel) runProcsParallel(running []*Proc, budgets []Cycles) {
	// Reuse one task buffer across rounds: the previous round's ack
	// barrier guarantees no worker still touches it.
	if cap(k.pool.buf) < len(running) {
		k.pool.buf = make([]parTask, len(running))
	}
	tasks := k.pool.buf[:len(running)]
	for i := range tasks {
		tasks[i] = parTask{}
	}
	parallel := 0
	for i, p := range running {
		if k.parSafe(p) {
			tasks[i].proc = p
			tasks[i].budget = budgets[i]
			p.ptask = &tasks[i]
			parallel++
		}
	}
	dispatch := parallel >= 2 // a lone phase is cheaper run inline
	if dispatch {
		k.pool.begin(tasks)
	}
	k.poolStats.rounds++
	k.poolStats.tasks += uint64(parallel)
	if d := uint64(parallel); d > k.poolStats.maxQueueDepth {
		k.poolStats.maxQueueDepth = d
	}

	for i, p := range running {
		t := p.ptask
		if t == nil {
			k.runProc(p, budgets[i])
			continue
		}
		if t.state.CompareAndSwap(taskUnclaimed, taskClaimed) {
			k.runTask(t)
			k.poolStats.mainRuns++
		} else {
			k.waitTask(t, tasks, i+1)
		}
		if t.skipped {
			// Settled unrun: give the phase its serial-walk turn now. The
			// process has left the runnable state, so this is just the
			// debt prelude.
			t.left, t.stop = k.runGuestPhase(p, t.budget)
		}
		p.ptask = nil
		if p.Exited() && t.stop != StopBudget {
			// Force-exited after its phase ran (guest abort teardown):
			// there is no one left to apply the stop for.
			t.stop = StopBudget
		}
		k.drainObs(p)
		k.finishProc(p, t.left, t.stop)
	}
	if dispatch {
		k.pool.end()
	}
}

// waitTask blocks until t's executor publishes its results, stealing
// later unclaimed tasks meanwhile so the scheduler never idles while
// phases remain.
func (k *Kernel) waitTask(t *parTask, tasks []parTask, next int) {
	if t.state.Load() == taskDone {
		return
	}
	k.poolStats.mergeStalls++
	var stallStart time.Time
	if k.stallHist != nil {
		stallStart = time.Now()
	}
	hot := 0
	if k.pool.multicore {
		hot = 128
	}
	spins := 0
	for t.state.Load() != taskDone {
		stole := false
		for j := next; j < len(tasks); j++ {
			s := &tasks[j]
			if s.proc != nil && s.state.CompareAndSwap(taskUnclaimed, taskClaimed) {
				if k.stealHist != nil {
					t0 := time.Now()
					k.runTask(s)
					k.stealHist.Observe(uint64(time.Since(t0)))
				} else {
					k.runTask(s)
				}
				k.poolStats.mainSteals++
				stole = true
				break
			}
		}
		if !stole {
			spins++
			if spins > hot {
				runtime.Gosched()
			}
		}
	}
	if k.stallHist != nil {
		// The stall span includes time spent stealing — it is the wall
		// clock this walk position cost the merge, whatever filled it.
		k.stallHist.Observe(uint64(time.Since(stallStart)))
	}
}

// settle resolves p's in-flight parallel task before the kernel mutates
// p from another process's walk position (group exit, forced sleep). An
// unclaimed task is marked skipped — the serial walk would not have run
// it past the debt prelude either, and the walk still performs that
// prelude at p's own position. A claimed task is waited out and its
// results merge at p's walk position as usual. The wait case needs a
// cross-process abort mid-quantum — the multithreaded-guest teardown
// path — where the completed phase is charged to a process about to be
// force-exited anyway.
func (k *Kernel) settle(p *Proc) {
	t := p.ptask
	if t == nil {
		return
	}
	if t.state.CompareAndSwap(taskUnclaimed, taskClaimed) {
		t.skipped = true
		t.left, t.stop = t.budget, StopBudget
		t.state.Store(taskDone)
		return
	}
	for t.state.Load() != taskDone {
		runtime.Gosched()
	}
}

// workerPool runs guest phases on persistent goroutines, one per spare
// host worker. Each quantum is a round announced by a single atomic
// generation bump that hot-spinning workers notice within nanoseconds —
// a channel handoff per round would cost microseconds of futex wake
// latency, which dwarfs the sub-microsecond guest phases of a 200-cycle
// quantum. Workers claim tasks through a shared cursor and CAS, then
// acknowledge; end spins until every worker has acknowledged, after
// which no worker touches the task array or any process state. Workers
// park on a channel only after a long idle spin (serial stretches of the
// simulation), and begin wakes them again.
type workerPool struct {
	k       *Kernel
	n       int
	tasks   []parTask
	buf     []parTask // round task storage, reused (scheduler-owned)
	cursor  atomic.Int64
	gen     atomic.Uint64 // round generation; the bump publishes tasks
	acks    atomic.Int64  // workers done scanning the current round
	parked  atomic.Int64
	wake    chan struct{}
	quit    atomic.Bool
	claimed atomic.Uint64
	// multicore selects the spin-then-park tiers: with spare host cores,
	// hot spinning keeps round handoff in the nanoseconds; on a single
	// core every spin steals time from the scheduler goroutine, so
	// waiters yield immediately instead.
	multicore bool
}

func newWorkerPool(k *Kernel, n int) *workerPool {
	wp := &workerPool{k: k, n: n, wake: make(chan struct{}, n),
		multicore: runtime.GOMAXPROCS(0) > 1}
	for w := 0; w < n; w++ {
		go wp.work()
	}
	return wp
}

// begin opens a round. The generation bump publishes the task array and
// the kernel state — Now, the cost model — phases read: workers load the
// generation (acquire) before touching either. On a single-core host
// parked workers stay parked — waking them per round would only hand the
// core back and forth — and the scheduler claims every task at its walk
// position instead.
func (wp *workerPool) begin(tasks []parTask) {
	wp.tasks = tasks
	wp.cursor.Store(0)
	wp.acks.Store(0)
	wp.gen.Add(1)
	if wp.multicore && wp.parked.Load() > 0 {
		wp.wakeAll()
	}
}

// end closes the round: it returns only after every worker acknowledged
// leaving the scan, so the scheduler may reuse the task buffer and
// mutate process state freely until the next begin. A parked worker
// counts as out of the round on a single-core host: it parked before the
// round began (parking re-checks the generation first) and no wakeup is
// sent mid-run, so it cannot touch the task array. On multicore hosts
// begin wakes every worker, and a waking worker briefly stays counted as
// parked while it re-enters the scan — so there the barrier insists on
// full acknowledgement.
func (wp *workerPool) end() {
	hot := 0
	if wp.multicore {
		hot = 64
	}
	for spins := 0; ; spins++ {
		acks := wp.acks.Load()
		if wp.multicore {
			if acks == int64(wp.n) {
				break
			}
		} else if acks+wp.parked.Load() >= int64(wp.n) {
			break
		}
		if spins >= hot {
			runtime.Gosched()
		}
	}
	wp.tasks = nil
}

// shutdown terminates the worker goroutines.
func (wp *workerPool) shutdown() {
	wp.quit.Store(true)
	wp.gen.Add(1)
	wp.wakeAll()
}

// wakeAll tops the wake channel up with one token per worker; stale
// tokens only cause a spurious generation re-check.
func (wp *workerPool) wakeAll() {
	for i := 0; i < wp.n; i++ {
		select {
		case wp.wake <- struct{}{}:
		default:
		}
	}
}

func (wp *workerPool) work() {
	// Single core: park almost immediately — any spinning here steals
	// the only core from the scheduler goroutine.
	hotSpin, yieldSpin := 0, 1
	if wp.multicore {
		hotSpin, yieldSpin = 256, 4096
	}
	var last uint64
	idle := 0
	for {
		g := wp.gen.Load()
		if g != last {
			last = g
			idle = 0
			if wp.quit.Load() {
				return
			}
			for {
				i := int(wp.cursor.Add(1)) - 1
				if i >= len(wp.tasks) {
					break
				}
				t := &wp.tasks[i]
				if t.proc == nil {
					continue
				}
				if t.state.CompareAndSwap(taskUnclaimed, taskClaimed) {
					wp.k.runTask(t)
					wp.claimed.Add(1)
				}
			}
			wp.acks.Add(1)
			continue
		}
		if wp.quit.Load() {
			return
		}
		idle++
		switch {
		case idle < hotSpin:
			// Hot spin on the generation cacheline: the next round is
			// usually a few microseconds away.
		case idle < yieldSpin:
			runtime.Gosched()
		default:
			// Long serial stretch: park until the next round. The
			// parked increment vs. begin's generation bump is a
			// store-load race both sides re-check, so a wakeup can be
			// spurious but never lost.
			wp.parked.Add(1)
			if wp.gen.Load() == last && !wp.quit.Load() {
				if wp.k.parkHist != nil {
					t0 := time.Now()
					<-wp.wake
					wp.k.parkHist.Observe(uint64(time.Since(t0)))
				} else {
					<-wp.wake
				}
			}
			wp.parked.Add(-1)
			idle = 0
		}
	}
}
