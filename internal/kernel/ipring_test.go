package kernel

import (
	"math/rand"
	"testing"
)

func TestIPRingPushAndSnapshot(t *testing.T) {
	r := NewIPRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot %v", got)
	}
	for i := uint32(1); i <= 3; i++ {
		r.Push(i)
	}
	if got := r.Snapshot(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("snapshot %v", got)
	}
	r.Push(4)
	r.Push(5) // overwrites 1
	want := []uint32{2, 3, 4, 5}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", got, want)
		}
	}
	if !r.MatchesSnapshot(want) {
		t.Fatal("MatchesSnapshot false for own snapshot")
	}
	if r.MatchesSnapshot([]uint32{2, 3, 4, 6}) {
		t.Fatal("MatchesSnapshot true for wrong contents")
	}
	if r.MatchesSnapshot([]uint32{3, 4, 5}) {
		t.Fatal("MatchesSnapshot true for wrong length")
	}
}

func TestIPRingSeed(t *testing.T) {
	r := NewIPRing(3)
	r.Seed([]uint32{10, 20, 30, 40, 50}) // longer than capacity: keep newest
	want := []uint32{30, 40, 50}
	if !r.MatchesSnapshot(want) {
		t.Fatalf("seeded ring %v, want %v", r.Snapshot(), want)
	}
	r.Seed([]uint32{7})
	if !r.MatchesSnapshot([]uint32{7}) {
		t.Fatalf("re-seeded ring %v", r.Snapshot())
	}
}

// TestIPRingSnapshotRoundTripProperty: seeding a ring from any snapshot
// and pushing the same suffix must reproduce MatchesSnapshot semantics of
// a reference slice window.
func TestIPRingSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(8)
		n := rng.Intn(30)
		r := NewIPRing(size)
		var all []uint32
		for i := 0; i < n; i++ {
			v := uint32(rng.Intn(100))
			r.Push(v)
			all = append(all, v)
		}
		// Reference window: last min(n, size) values.
		start := 0
		if len(all) > size {
			start = len(all) - size
		}
		want := all[start:]
		if !r.MatchesSnapshot(want) {
			t.Fatalf("size=%d n=%d: ring %v does not match window %v", size, n, r.Snapshot(), want)
		}
		// And the snapshot must equal the window.
		got := r.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("snapshot %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("snapshot %v, want %v", got, want)
			}
		}
	}
}

func TestIPRingZeroSize(t *testing.T) {
	r := NewIPRing(0) // clamps to 1
	r.Push(9)
	if !r.MatchesSnapshot([]uint32{9}) {
		t.Fatal("size-0 ring broken")
	}
}
