package kernel

// IPRing is a fixed-size ring buffer of recently executed instruction
// pointers. It backs the SuperPin reproduction's alternative boundary
// detector — the "last N instruction pointers" signature the paper says
// it examined before settling on the architectural-state signature.
// Maintaining it costs work on every instruction, which is precisely the
// reason the paper rejected the approach; the cost model reflects that.
type IPRing struct {
	buf []uint32
	pos int
	n   int // valid entries (saturates at len(buf))
}

// NewIPRing creates a ring holding the last size instruction pointers.
func NewIPRing(size int) *IPRing {
	if size <= 0 {
		size = 1
	}
	return &IPRing{buf: make([]uint32, size)}
}

// Push appends an executed instruction pointer.
func (r *IPRing) Push(pc uint32) {
	r.buf[r.pos] = pc
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
}

// Snapshot returns the ring contents oldest-first.
func (r *IPRing) Snapshot() []uint32 {
	out := make([]uint32, 0, r.n)
	if r.n == len(r.buf) {
		out = append(out, r.buf[r.pos:]...)
		out = append(out, r.buf[:r.pos]...)
	} else {
		out = append(out, r.buf[:r.n]...)
	}
	return out
}

// Seed initializes the ring contents (oldest-first), as if the ips had
// been pushed in order.
func (r *IPRing) Seed(ips []uint32) {
	r.pos, r.n = 0, 0
	if len(ips) > len(r.buf) {
		ips = ips[len(ips)-len(r.buf):]
	}
	for _, pc := range ips {
		r.Push(pc)
	}
}

// MatchesSnapshot reports whether the ring's current contents equal the
// given oldest-first snapshot.
func (r *IPRing) MatchesSnapshot(want []uint32) bool {
	if r.n != len(want) {
		return false
	}
	start := 0
	if r.n == len(r.buf) {
		start = r.pos
	}
	for i, w := range want {
		if r.buf[(start+i)%len(r.buf)] != w {
			return false
		}
	}
	return true
}
