// Package kernel implements the deterministic discrete-event operating
// system and multiprocessor that the SuperPin reproduction runs on.
//
// The simulated machine stands in for the paper's 8-way hyperthreaded
// Xeon MP running Linux. It provides exactly the OS facilities SuperPin
// depends on:
//
//   - processes with copy-on-write fork (internal/mem)
//   - an N-CPU scheduler with optional hyperthreading and an SMP
//     memory-contention model
//   - ptrace-style syscall-stop hooks for the control process
//   - sleep/wake, interval timers, and per-process accounting
//   - a small deterministic syscall table (exit, write, read, brk, mmap,
//     munmap, time, getpid, rand, yield, spawn), including thread groups
//     with shared memory
//
// Time is virtual: the kernel advances a global cycle clock in fixed
// quanta, running each scheduled process's Runner for a budget of cycles
// scaled by the current contention factors. All results are bit-for-bit
// reproducible on any host, regardless of host parallelism.
package kernel

import (
	"container/heap"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/mem"
	"superpin/internal/obs"
)

// Config describes the simulated machine.
type Config struct {
	// CPUs is the number of physical cores (default 8).
	CPUs int
	// Hyperthreading doubles the number of schedulable contexts; two
	// processes sharing a core each run at Cost.HTFactor speed.
	Hyperthreading bool
	// Cost is the machine's cycle-cost model.
	Cost CostModel
	// Seed initializes the kernel's deterministic entropy pool (the
	// read-input stream and the rand syscall).
	Seed uint64
	// MaxCycles aborts the simulation if the clock passes it (0 = none).
	MaxCycles Cycles
	// Trace, when non-nil, receives structured events for every process
	// lifecycle transition, syscall stop and (coalesced) CPU-occupancy
	// interval. Nil — the default — costs one pointer check per site.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live host-side telemetry: a
	// retired-instruction counter updated every quantum and wall-clock
	// histograms for quantum execution and pool phases. Purely host-side
	// observation of the run in flight — virtual results are identical
	// with or without it. Nil — the default — costs one pointer check
	// per quantum.
	Metrics *obs.Metrics
	// Workers is the host worker-pool size for executing guest phases of
	// independent processes concurrently within a quantum. Values <= 0
	// resolve through $SUPERPIN_WORKERS, defaulting to 1 (serial). Every
	// virtual-time result is byte-identical for every Workers value; the
	// pool only changes host wall-clock time.
	Workers int
}

// WorkersEnv is the environment variable consulted when Config.Workers
// (or a CLI's -workers flag) is zero or negative.
const WorkersEnv = "SUPERPIN_WORKERS"

// ResolveWorkers picks the kernel worker-pool size: an explicit positive
// value wins, then the SUPERPIN_WORKERS environment override, then 1
// (serial — the default keeps single-run artifacts byte-stable).
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(WorkersEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// DefaultConfig returns the paper's evaluation machine: 8 physical cores
// with hyperthreading (16 contexts).
func DefaultConfig() Config {
	return Config{CPUs: 8, Hyperthreading: true, Cost: DefaultCost(), Seed: 1}
}

// Kernel is the simulated operating system instance.
type Kernel struct {
	cfg Config

	// ThreadRunner, when non-nil, builds the Runner for threads created
	// with the spawn syscall; by default the child reuses the parent's
	// Runner value (correct for the stateless NativeRunner, wrong for
	// stateful engines, which must install a factory).
	ThreadRunner func(parent *Proc) Runner

	// ThreadHook, when non-nil, observes every spawn-created thread.
	// SuperPin's control process uses it to notice that the traced
	// application became multithreaded.
	ThreadHook func(parent, child *Proc)

	// QuantumHook, when non-nil, runs after every scheduling quantum,
	// while all pool workers are quiescent. SuperPin uses it to publish
	// slice-built JIT traces into the shared code cache at a point that is
	// identical in serial and parallel runs.
	QuantumHook func()

	// Now is the current virtual time.
	Now Cycles

	// Stdout accumulates bytes written to the console by guest processes.
	Stdout []byte

	procs     []*Proc
	runq      []*Proc
	timers    timerHeap
	nextPID   PID
	liveProcs int
	randState uint64
	guestErrs []error

	// pool runs guest phases of independent processes on spare host
	// cores; nil when Workers resolves to 1. poolStats aggregates its
	// host-side occupancy counters (excluded from virtual results).
	pool      *workerPool
	poolStats poolStats

	// cpuSlots holds the coalesced per-context occupancy state for the
	// tracer: one EvSchedule span is emitted per contiguous interval a
	// process occupies a context, not one per quantum.
	cpuSlots []cpuSlot

	// Live telemetry handles, pre-resolved from cfg.Metrics at New so
	// the per-quantum cost is a nil check, an atomic add, and (for the
	// sampled wall-time histogram) two clock reads every 16th quantum.
	// All nil when cfg.Metrics is nil.
	liveRetired *obs.Counter // kernel.live.retired_ins
	quantumHist *obs.Hist    // kernel.quantum_wall_ns, sampled
	stallHist   *obs.Hist    // kernel.pool.merge_stall_ns
	stealHist   *obs.Hist    // kernel.pool.steal_ns
	parkHist    *obs.Hist    // kernel.pool.park_ns
	runHist     *obs.Hist    // kernel.pool.run_ns, sampled
	qseq        uint64       // quanta since Run started (sampling phase)
	lastLiveIns uint64       // retired-ins total at the last quantum
	taskSeq     atomic.Uint64
}

// quantumSampleMask samples every 16th quantum (and pool task) for the
// wall-time histograms: dense enough for stable p50/p99 over a run,
// sparse enough that the clock reads stay invisible next to a quantum's
// guest work.
const quantumSampleMask = 15

// cpuSlot is the current occupant of one CPU context (tracing only).
type cpuSlot struct {
	pid   PID
	name  string
	since Cycles
}

// emit records an instant event for p at the current virtual time.
func (k *Kernel) emit(kind obs.Kind, p *Proc, arg uint64, name string) {
	if k.cfg.Trace == nil {
		return
	}
	k.cfg.Trace.Emit(obs.Event{
		Kind: kind, Time: uint64(k.Now), PID: int32(p.PID), CPU: -1,
		Arg: arg, Name: name,
	})
}

// New creates a kernel for the given machine configuration.
func New(cfg Config) *Kernel {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 8
	}
	if cfg.Cost.CPS == 0 {
		cfg.Cost = DefaultCost()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	k := &Kernel{cfg: cfg, nextPID: 1, randState: seed}
	if m := cfg.Metrics; m != nil {
		k.liveRetired = m.LiveCounter("kernel.live.retired_ins")
		k.quantumHist = m.Hist("kernel.quantum_wall_ns")
		k.stallHist = m.Hist("kernel.pool.merge_stall_ns")
		k.stealHist = m.Hist("kernel.pool.steal_ns")
		k.parkHist = m.Hist("kernel.pool.park_ns")
		k.runHist = m.Hist("kernel.pool.run_ns")
	}
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Contexts returns the number of schedulable CPU contexts.
func (k *Kernel) Contexts() int {
	if k.cfg.Hyperthreading {
		return 2 * k.cfg.CPUs
	}
	return k.cfg.CPUs
}

// Procs returns all processes ever spawned, in PID order.
func (k *Kernel) Procs() []*Proc { return k.procs }

// Spawn creates a runnable process with the given memory image, initial
// registers and runner.
func (k *Kernel) Spawn(name string, m *mem.Memory, regs cpu.Regs, r Runner) *Proc {
	p := &Proc{
		PID:       k.nextPID,
		Name:      name,
		Regs:      regs,
		Mem:       m,
		Runner:    r,
		StartTime: k.Now,
		Brk:       0x0800_0000,
		MmapTop:   0x4000_0000,
	}
	k.nextPID++
	k.procs = append(k.procs, p)
	k.liveProcs++
	k.enqueue(p)
	k.emit(obs.EvProcSpawn, p, 0, name)
	return p
}

// Fork clones parent into a new process running r, with copy-on-write
// memory, charging the parent the fork and page-table costs. If runnable
// is false the child starts sleeping (SuperPin slices sleep until the
// following slice records its signature).
func (k *Kernel) Fork(parent *Proc, name string, r Runner, runnable bool) *Proc {
	cost := k.cfg.Cost
	fc := cost.ForkBase + Cycles(parent.Mem.Pages())*cost.ForkPerPage
	parent.ForkCost += fc
	parent.debt += fc

	child := &Proc{
		PID:       k.nextPID,
		Name:      name,
		Regs:      parent.Regs,
		Mem:       parent.Mem.Fork(),
		Runner:    r,
		StartTime: k.Now,
		Brk:       parent.Brk,
		MmapTop:   parent.MmapTop,
	}
	k.nextPID++
	k.procs = append(k.procs, child)
	k.liveProcs++
	k.emit(obs.EvFork, child, uint64(parent.PID), name)
	if runnable {
		k.enqueue(child)
	} else {
		child.State = StateSleeping
		child.sleepSince = k.Now
		k.emit(obs.EvSleep, child, 0, "")
	}
	return child
}

// SpawnThread creates a thread in parent's group: a runnable process
// sharing parent's memory image, starting at entry with the given stack
// pointer and arg in r2. It backs the spawn system call.
func (k *Kernel) SpawnThread(parent *Proc, entry, sp, arg uint32) *Proc {
	var r Runner
	if k.ThreadRunner != nil {
		r = k.ThreadRunner(parent)
	} else {
		r = parent.Runner
	}
	if parent.memShare == nil {
		n := 1
		parent.memShare = &n
	}
	*parent.memShare++

	var regs cpu.Regs
	regs.PC = entry &^ 3
	regs.R[isa.RegSP] = sp
	regs.R[isa.RegArg0] = arg

	child := &Proc{
		PID:       k.nextPID,
		Name:      fmt.Sprintf("%s.t%d", parent.Name, k.nextPID),
		Regs:      regs,
		Mem:       parent.Mem,
		Runner:    r,
		StartTime: k.Now,
		Brk:       parent.Brk,
		MmapTop:   parent.MmapTop,
		TGID:      parent.Group(),
		memShare:  parent.memShare,
		Hook:      parent.Hook,
	}
	k.nextPID++
	k.procs = append(k.procs, child)
	k.liveProcs++
	k.enqueue(child)
	k.emit(obs.EvProcSpawn, child, uint64(parent.PID), child.Name)
	if k.ThreadHook != nil {
		k.ThreadHook(parent, child)
	}
	return child
}

// Charge adds cy cycles of pending work debt to p, deducted from its
// future scheduling budgets. SuperPin uses it to bill host-level work
// performed on a process's behalf (signature recording, the spawn
// trampoline) to that process's virtual time.
func (k *Kernel) Charge(p *Proc, cy Cycles) { p.debt += cy }

// OnExit registers fn to run when p exits.
func (k *Kernel) OnExit(p *Proc, fn func(*Proc)) {
	p.exitFns = append(p.exitFns, fn)
}

// SleepProc moves a runnable process to the sleeping state. It takes
// effect immediately; if the process is mid-quantum its runner loop stops
// at the next stop point.
func (k *Kernel) SleepProc(p *Proc) {
	if p.State != StateRunnable {
		return
	}
	k.settle(p)
	p.State = StateSleeping
	p.sleepSince = k.Now
	k.dequeue(p)
	k.emit(obs.EvSleep, p, 0, "")
}

// Wake makes a sleeping process runnable again.
func (k *Kernel) Wake(p *Proc) {
	if p.State != StateSleeping {
		return
	}
	p.SleepTime += k.Now - p.sleepSince
	p.State = StateRunnable
	k.enqueue(p)
	k.emit(obs.EvWake, p, 0, "")
}

// Exit terminates p with the given exit code. Like exit_group(2), it
// terminates every thread in p's group; the shared memory image is
// released when the last sharer exits.
func (k *Kernel) Exit(p *Proc, code uint32) {
	if p.State == StateExited {
		return
	}
	k.exitOne(p, code)
	group := p.Group()
	for _, q := range k.procs {
		if q != p && !q.Exited() && q.Group() == group {
			k.exitOne(q, code)
		}
	}
}

func (k *Kernel) exitOne(p *Proc, code uint32) {
	k.settle(p)
	if p.State == StateSleeping {
		p.SleepTime += k.Now - p.sleepSince
		// Close the open sleep interval so exporters see balanced spans.
		k.emit(obs.EvWake, p, 0, "")
	}
	k.emit(obs.EvProcExit, p, uint64(code), "")
	p.State = StateExited
	p.ExitCode = code
	p.EndTime = k.Now
	if p.memShare == nil {
		p.Mem.Release()
	} else {
		*p.memShare--
		if *p.memShare == 0 {
			p.Mem.Release()
		}
	}
	k.dequeue(p)
	k.liveProcs--
	for _, fn := range p.exitFns {
		fn(p)
	}
}

func (k *Kernel) enqueue(p *Proc) {
	p.State = StateRunnable
	k.runq = append(k.runq, p)
}

func (k *Kernel) dequeue(p *Proc) {
	for i, q := range k.runq {
		if q == p {
			k.runq = append(k.runq[:i], k.runq[i+1:]...)
			return
		}
	}
}

// Timer is a pending one-shot timer.
type Timer struct {
	expiry    Cycles
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the timer from firing if it has not fired yet.
func (t *Timer) Cancel() { t.cancelled = true }

type timerHeap []*Timer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].expiry < h[j].expiry }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *timerHeap) Push(x any)        { t := x.(*Timer); t.index = len(*h); *h = append(*h, t) }
func (h *timerHeap) Pop() any          { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// AddTimer schedules fn to run at the first quantum boundary at least
// delay cycles in the future. Timer callbacks run at host level (they are
// the simulation's equivalent of SuperPin's timer process) and may fork,
// wake or sleep processes.
func (k *Kernel) AddTimer(delay Cycles, fn func()) *Timer {
	t := &Timer{expiry: k.Now + delay, fn: fn}
	heap.Push(&k.timers, t)
	return t
}

// ErrDeadlock is returned by Run when sleeping processes remain but
// nothing can ever wake them.
var ErrDeadlock = errors.New("kernel: deadlock: sleeping processes with no pending timers")

// ErrMaxCycles is returned when the configured cycle limit is exceeded.
var ErrMaxCycles = errors.New("kernel: MaxCycles exceeded")

// Run advances the simulation until every process has exited. Guest
// faults terminate the faulting process and are reported (joined) in the
// returned error; deadlock and the MaxCycles safety limit abort the run.
func (k *Kernel) Run() error {
	if w := ResolveWorkers(k.cfg.Workers); w > 1 && k.pool == nil {
		// Workers-1 pool goroutines; the scheduler goroutine itself is
		// the remaining worker (it claims and steals guest phases while
		// walking the quantum in order).
		k.pool = newWorkerPool(k, w-1)
		k.poolStats.workers = uint64(w)
		defer func() {
			k.pool.shutdown()
			k.poolStats.workerRuns += k.pool.claimed.Load()
			k.pool = nil
		}()
	}
	quantum := k.cfg.Cost.Quantum
	for k.liveProcs > 0 {
		if k.cfg.MaxCycles != 0 && k.Now > k.cfg.MaxCycles {
			return fmt.Errorf("%w at t=%d", ErrMaxCycles, k.Now)
		}
		k.fireTimers()
		if len(k.runq) == 0 {
			if k.liveProcs == 0 {
				break
			}
			next, ok := k.nextTimerExpiry()
			if !ok {
				return fmt.Errorf("%w (t=%d, %d live)", ErrDeadlock, k.Now, k.liveProcs)
			}
			if next > k.Now {
				k.Now = next
			} else {
				k.Now += quantum
			}
			continue
		}
		k.runQuantum(quantum)
		if k.QuantumHook != nil {
			k.QuantumHook()
		}
		k.Now += quantum
	}
	k.fireTimers() // flush anything scheduled exactly at the end
	if k.cfg.Trace != nil {
		for i := range k.cpuSlots {
			k.flushCPUSlot(i)
			k.cpuSlots[i] = cpuSlot{}
		}
	}
	return errors.Join(k.guestErrs...)
}

func (k *Kernel) nextTimerExpiry() (Cycles, bool) {
	for len(k.timers) > 0 && k.timers[0].cancelled {
		heap.Pop(&k.timers)
	}
	if len(k.timers) == 0 {
		return 0, false
	}
	return k.timers[0].expiry, true
}

func (k *Kernel) fireTimers() {
	for len(k.timers) > 0 {
		t := k.timers[0]
		if t.cancelled {
			heap.Pop(&k.timers)
			continue
		}
		if t.expiry > k.Now {
			return
		}
		heap.Pop(&k.timers)
		t.fn()
	}
}

// runQuantum schedules one quantum and maintains the live telemetry:
// every 16th quantum's wall time feeds the kernel.quantum_wall_ns
// histogram, and the retired-instruction delta feeds the live counter
// /status derives guest-MIPS from. Telemetry off (cfg.Metrics nil)
// costs two nil checks.
func (k *Kernel) runQuantum(quantum Cycles) {
	k.qseq++
	if k.quantumHist != nil && k.qseq&quantumSampleMask == 0 {
		t0 := time.Now()
		k.runQuantumInner(quantum)
		k.quantumHist.Observe(uint64(time.Since(t0)))
	} else {
		k.runQuantumInner(quantum)
	}
	if k.liveRetired != nil {
		var total uint64
		for _, p := range k.procs {
			total += p.InsCount
		}
		k.liveRetired.Add(total - k.lastLiveIns)
		k.lastLiveIns = total
	}
}

// runQuantumInner schedules up to Contexts() processes for one quantum.
func (k *Kernel) runQuantumInner(quantum Cycles) {
	ctxs := k.Contexts()
	n := len(k.runq)
	if n > ctxs {
		n = ctxs
	}
	running := make([]*Proc, n)
	copy(running, k.runq[:n])
	if k.cfg.Trace != nil {
		k.traceSchedule(running)
	}

	// Contention factors: with R processes on P physical cores, every
	// busy core suffers SMP memory contention; beyond P, pairs share
	// cores via hyperthreading at HTFactor speed. The *last* 2(R-P)
	// processes in queue order share, and the queue rotates each quantum,
	// so sharing is spread fairly.
	cost := k.cfg.Cost
	p := k.cfg.CPUs
	busyCores := n
	if busyCores > p {
		busyCores = p
	}
	smp := 1.0 / (1.0 + cost.SMPAlpha*float64(busyCores-1))
	sharedFrom := n // index from which processes share a core
	if n > p {
		sharedFrom = 2*p - n
	}

	// Budgets depend only on the snapshot taken above, never on what the
	// quantum's earlier processes did, so serial and parallel walks hand
	// every process the same budget.
	budgets := make([]Cycles, n)
	for i := range running {
		factor := smp
		if i >= sharedFrom {
			factor *= cost.HTFactor
		}
		budget := Cycles(float64(quantum) * factor)
		if budget == 0 {
			budget = 1
		}
		budgets[i] = budget
	}

	if k.pool != nil {
		k.runProcsParallel(running, budgets)
	} else {
		for i, proc := range running {
			k.runProc(proc, budgets[i])
		}
	}

	// Charge wait time to runnable processes that did not get a context,
	// then rotate the queue (processes that ran move to the back) so
	// scheduling and HT pairing are fair. The run queue may have shrunk
	// or grown during the quantum (exits, forks, wakes), so work from the
	// current queue contents.
	ranSet := make(map[*Proc]bool, len(running))
	for _, proc := range running {
		ranSet[proc] = true
	}
	var front, back []*Proc
	for _, proc := range k.runq {
		if ranSet[proc] {
			back = append(back, proc)
		} else {
			proc.WaitTime += quantum
			front = append(front, proc)
		}
	}
	k.runq = append(front, back...)
}

// runProc gives p up to budget cycles of guest work, servicing syscalls
// exactly as they occur so no budget is lost to quantum rounding.
func (k *Kernel) runProc(p *Proc, budget Cycles) {
	left, stop := k.runGuestPhase(p, budget)
	k.drainObs(p)
	k.finishProc(p, left, stop)
}

// runGuestPhase pays p's carried work debt and then runs guest code until
// the budget is gone or the runner stops for a non-budget reason. It
// mutates only p (and p's private memory image), never shared kernel
// state, which is what makes it safe to run off the scheduler goroutine
// for processes whose runners are kernel-free (SuperPin slices service
// syscalls internally by record-and-playback).
func (k *Kernel) runGuestPhase(p *Proc, budget Cycles) (Cycles, StopReason) {
	if p.debt >= budget {
		p.debt -= budget
		p.CPUTime += budget
		return 0, StopBudget
	}
	budget -= p.debt
	p.CPUTime += p.debt
	p.debt = 0
	if p.State != StateRunnable {
		return budget, StopBudget
	}
	return k.guestLoop(p, budget)
}

// guestLoop performs one runner dispatch: it runs p's Runner once,
// accounts the cycles consumed (overrun beyond the budget becomes debt),
// and returns the remaining budget with the stop reason. Note no debt
// prelude: debt accrued mid-quantum (e.g. a fork performed while
// servicing a syscall) is deferred to the next quantum, exactly as the
// pre-split serial loop deferred it.
func (k *Kernel) guestLoop(p *Proc, budget Cycles) (Cycles, StopReason) {
	insMark := p.InsCount
	used, stop := p.Runner.Run(k, p, budget)
	if p.BurstHook != nil && p.InsCount > insMark {
		p.BurstHook(p.InsCount - insMark)
	}
	if used > budget {
		p.debt += used - budget
		p.CPUTime += budget
		budget = 0
	} else {
		p.CPUTime += used
		budget -= used
	}
	return budget, stop
}

// finishProc applies the stop reason a guest phase ended with and keeps
// running p until its budget is spent or it leaves the runnable state.
// Applying a stop mutates shared kernel state (syscall service, exits,
// sleeps, timers), so finishProc always runs on the scheduler goroutine,
// at p's position in the quantum's walk order — which is how the parallel
// walk reproduces serial effect ordering exactly.
func (k *Kernel) finishProc(p *Proc, budget Cycles, stop StopReason) {
	for {
		switch stop {
		case StopBudget:
			return
		case StopSyscall:
			c := k.handleSyscall(p)
			if c > budget {
				p.debt += c - budget
				p.CPUTime += budget
				budget = 0
			} else {
				p.CPUTime += c
				budget -= c
			}
		case StopExit:
			k.Exit(p, p.ExitCode)
		case StopSleep:
			k.SleepProc(p)
		case StopError:
			k.guestErrs = append(k.guestErrs,
				fmt.Errorf("kernel: pid %d (%s) died: %w", p.PID, p.Name, p.Err))
			k.Exit(p, ^uint32(0))
		}
		if budget <= 0 || p.State != StateRunnable {
			return
		}
		budget, stop = k.guestLoop(p, budget)
		k.drainObs(p)
	}
}

// drainObs flushes p's buffered trace events into the main tracer, so
// events emitted while p ran off the scheduler goroutine land at p's walk
// position. No-op for unbuffered processes.
func (k *Kernel) drainObs(p *Proc) {
	if p.ObsBuf != nil && k.cfg.Trace != nil {
		p.ObsBuf.DrainTo(k.cfg.Trace)
	}
}

// traceSchedule updates the coalesced per-context occupancy state: a
// span is flushed only when a context's occupant changes, so steady
// states (the common case: queue order is stable while procs fit the
// machine) cost no events per quantum.
func (k *Kernel) traceSchedule(running []*Proc) {
	if len(k.cpuSlots) < k.Contexts() {
		k.cpuSlots = make([]cpuSlot, k.Contexts())
	}
	for i := range k.cpuSlots {
		var pid PID
		var name string
		if i < len(running) {
			pid, name = running[i].PID, running[i].Name
		}
		if k.cpuSlots[i].pid == pid {
			continue
		}
		k.flushCPUSlot(i)
		k.cpuSlots[i] = cpuSlot{pid: pid, name: name, since: k.Now}
	}
}

// flushCPUSlot emits the pending occupancy span of context i, if any.
func (k *Kernel) flushCPUSlot(i int) {
	if k.cfg.Trace == nil {
		return
	}
	s := k.cpuSlots[i]
	if s.pid == 0 || k.Now <= s.since {
		return
	}
	k.cfg.Trace.Emit(obs.Event{
		Kind: obs.EvSchedule, Time: uint64(s.since),
		Dur: uint64(k.Now - s.since), PID: int32(s.pid), CPU: int32(i),
		Name: s.name,
	})
}

// handleSyscall services a trapped system call for p, including ptrace
// hook delivery, returning the cycle cost to charge.
func (k *Kernel) handleSyscall(p *Proc) Cycles {
	sysno, args := SyscallArgs(p)
	p.SyscallCount++
	k.emit(obs.EvSyscall, p, uint64(sysno), SyscallName(sysno))
	var total Cycles
	if p.Hook != nil {
		total += k.cfg.Cost.PtraceStop
		if handled, out := p.Hook.Entry(k, p, sysno, args); handled {
			ApplyOutcome(p, out)
			total += out.Cost
			if out.Exited {
				k.Exit(p, out.Ret)
			}
			return total
		}
	}
	out := k.serviceSyscall(p, sysno, args)
	ApplyOutcome(p, out)
	total += out.Cost
	if p.Hook != nil {
		p.Hook.Exit(k, p, sysno, args, out)
	}
	if out.Exited && p.State != StateExited {
		k.Exit(p, out.Ret)
	}
	return total
}

// PublishMetrics publishes the kernel's aggregate accounting into m
// under the "kernel." prefix. No-op when m is nil.
func (k *Kernel) PublishMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	var ins, sys uint64
	for _, p := range k.procs {
		ins += p.InsCount
		sys += p.SyscallCount
	}
	m.Add("kernel.procs", uint64(len(k.procs)))
	m.Add("kernel.guest_ins", ins)
	m.Add("kernel.syscalls", sys)
	m.Add("kernel.stdout_bytes", uint64(len(k.Stdout)))
	m.Set("kernel.cycles", float64(k.Now))
	if ps := k.poolStats; ps.workers > 0 {
		// Host-side pool occupancy: absent from serial runs so their
		// metrics output is unchanged, and never part of virtual results.
		m.Add("kernel.pool.workers", ps.workers)
		m.Add("kernel.pool.rounds", ps.rounds)
		m.Add("kernel.pool.tasks", ps.tasks)
		m.Add("kernel.pool.worker_runs", ps.workerRuns)
		m.Add("kernel.pool.main_runs", ps.mainRuns)
		m.Add("kernel.pool.main_steals", ps.mainSteals)
		m.Add("kernel.pool.merge_stalls", ps.mergeStalls)
		m.Add("kernel.pool.max_queue_depth", ps.maxQueueDepth)
	}
}

// SortProcsByPID sorts a process slice by PID, for deterministic reports.
func SortProcsByPID(ps []*Proc) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].PID < ps[j].PID })
}
