package kernel

import (
	"fmt"

	"superpin/internal/cpu"
	"superpin/internal/mem"
	"superpin/internal/obs"
	"superpin/internal/prof"
)

// PID identifies a simulated process.
type PID int

// State is a process's scheduling state.
type State uint8

// Process states.
const (
	StateRunnable State = iota // eligible for a CPU
	StateSleeping              // waiting for an explicit Wake
	StateExited                // finished; resources released
)

func (s State) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateSleeping:
		return "sleeping"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// StopReason reports why a Runner returned control to the kernel.
type StopReason uint8

// Stop reasons.
const (
	StopBudget  StopReason = iota // cycle budget exhausted; more work remains
	StopSyscall                   // guest executed SYSCALL; kernel must service it
	StopExit                      // runner finished voluntarily (e.g. slice completed)
	StopSleep                     // runner asks the kernel to put the process to sleep
	StopError                     // guest execution failed; see Proc.Err
)

// Runner advances a process's guest execution. Different runners implement
// the different execution modes of the system: plain interpretation for
// the uninstrumented master (NativeRunner), the Pin JIT engine for
// serial instrumented runs, and the SuperPin slice engine, which services
// system calls internally via record-and-playback and therefore rarely
// returns StopSyscall.
type Runner interface {
	// Run executes up to budget cycles of guest work for p, returning the
	// cycles actually consumed and the reason it stopped. used may exceed
	// budget by at most the cost of the final instruction.
	Run(k *Kernel, p *Proc, budget Cycles) (used Cycles, stop StopReason)
}

// SyscallHook observes and optionally overrides a traced process's system
// calls, modeling ptrace(PTRACE_SYSCALL). Entry is called after the trap
// but before the kernel services the call; Exit is called with the
// completed outcome. SuperPin's control process lives behind this hook.
type SyscallHook interface {
	// Entry may service the syscall itself by returning handled=true and
	// an outcome to apply; otherwise the kernel's syscall table runs.
	Entry(k *Kernel, p *Proc, sysno uint32, args [4]uint32) (handled bool, out SyscallOutcome)
	// Exit observes the outcome of a kernel-serviced syscall (after its
	// register and memory effects have been applied to p).
	Exit(k *Kernel, p *Proc, sysno uint32, args [4]uint32, out SyscallOutcome)
}

// Proc is a simulated process.
type Proc struct {
	PID  PID
	Name string

	Regs cpu.Regs
	Mem  *mem.Memory

	State    State
	Runner   Runner
	ExitCode uint32
	Err      error // set when the process died on a guest fault

	// Hook, when non-nil, receives ptrace-style syscall stops.
	Hook SyscallHook

	// BurstHook, when non-nil, is called with the number of instructions
	// the process executed each time its runner returns control to the
	// kernel. Because the discrete-event kernel serializes execution
	// within a quantum, the global sequence of these bursts is exactly
	// the memory-visible interleaving of a thread group — the schedule
	// log SuperPin's deterministic thread replay records.
	BurstHook func(ins uint64)

	// Aux carries subsystem-private state (e.g. SuperPin's per-slice
	// bookkeeping) without the kernel knowing its type.
	Aux any

	// Prof, when non-nil, observes every instruction this process
	// retires (virtual-time PC sampling and shadow-stack maintenance).
	// The probe charges no cycles: attaching it changes nothing the
	// guest or the scheduler can see. Not inherited by Fork or
	// SpawnThread — each profiled process gets its own probe.
	Prof *prof.Probe

	// ObsBuf, when non-nil, receives trace events emitted on behalf of
	// this process while its guest phase runs off the scheduler
	// goroutine; the kernel drains it into the main tracer at the
	// process's position in the quantum walk, so parallel trace output
	// is byte-identical to serial output. Runners and instrumentation
	// attached to a process must emit through it when it is set.
	ObsBuf *obs.Tracer

	// Brk and MmapTop are the address-space bookkeeping for the brk and
	// mmap system calls. They are inherited across Fork.
	Brk     uint32
	MmapTop uint32

	// TGID identifies the thread group leader for threads created with
	// SysSpawn (zero for a group leader or single-threaded process).
	// exit() terminates the whole group, and group members share their
	// memory image.
	TGID PID

	// memShare counts live processes sharing Mem (nil for a sole owner);
	// the image is released when the last sharer exits.
	memShare *int

	// Accounting, all in cycles of virtual time.
	StartTime Cycles // kernel time at spawn
	EndTime   Cycles // kernel time at exit
	CPUTime   Cycles // guest work performed
	ForkCost  Cycles // fork + page-table + trampoline costs paid by this proc
	CowCost   Cycles // copy-on-write page-copy costs paid by this proc
	WaitTime  Cycles // time spent runnable but off-CPU
	SleepTime Cycles // time spent in StateSleeping

	// SyscallCount counts syscalls serviced (by the kernel or by a hook).
	SyscallCount uint64
	// InsCount counts guest instructions executed by this process across
	// all runners (interpreted or instrumented).
	InsCount uint64

	debt       Cycles // syscall/fault cost carried into the next quantum
	sleepSince Cycles
	exitFns    []func(*Proc)
	cowMark    uint64   // last-seen Mem.CopyEvents, for charging deltas
	ptask      *parTask // in-flight parallel guest phase (nil outside a quantum)
}

// Exited reports whether p has terminated.
func (p *Proc) Exited() bool { return p.State == StateExited }

// Group returns p's thread-group id (its own PID for a leader).
func (p *Proc) Group() PID {
	if p.TGID != 0 {
		return p.TGID
	}
	return p.PID
}

// CowPending reports whether Mem holds copy-on-write events not yet
// charged by ChargeCow (copies triggered outside the runner, e.g. by a
// kernel syscall writing guest memory). The Pin engine's batched fast
// path falls back to per-instruction execution while a charge is
// pending, so the charge lands at the same instruction as it does in
// the reference loop.
func (p *Proc) CowPending() bool { return p.Mem.CopyEvents != p.cowMark }

// ChargeCow charges any copy-on-write page copies performed since the
// last call, returning the cycles charged. It is used by every Runner
// implementation (native and instrumented) after each guest instruction.
func (p *Proc) ChargeCow(cost CostModel) Cycles {
	delta := p.Mem.CopyEvents - p.cowMark
	if delta == 0 {
		return 0
	}
	p.cowMark = p.Mem.CopyEvents
	cy := Cycles(delta) * cost.PageCopy
	p.CowCost += cy
	return cy
}

// NativeRunner interprets guest code directly, with no instrumentation.
// It is the execution mode of the master application in SuperPin mode and
// of plain native baseline runs.
type NativeRunner struct {
	// MemSurcharge is an extra cost per memory instruction, modeling a
	// benchmark's cache behavior (memory-bound applications pay more per
	// access). Set per benchmark by internal/workload; zero by default.
	MemSurcharge Cycles

	// Ring, when non-nil, records every executed instruction pointer
	// (single-step/branch-trace monitoring), charging RingCost per
	// instruction. SuperPin's rejected IP-history detector uses it.
	Ring     *IPRing
	RingCost Cycles
}

// Run implements Runner.
func (r NativeRunner) Run(k *Kernel, p *Proc, budget Cycles) (Cycles, StopReason) {
	var used Cycles
	cost := k.cfg.Cost
	pr := p.Prof
	for used < budget {
		pc := p.Regs.PC
		ev, in, err := cpu.Step(&p.Regs, p.Mem)
		if err != nil {
			p.Err = err
			return used, StopError
		}
		used += cost.InterpCost
		if in.Op.IsMem() {
			used += r.MemSurcharge
		}
		if r.Ring != nil {
			r.Ring.Push(pc)
			used += r.RingCost
		}
		used += p.ChargeCow(cost)
		p.InsCount++
		if pr != nil {
			pr.OnExec(in, pc+4, p.Regs.PC)
		}
		if ev == cpu.EvSyscall {
			return used, StopSyscall
		}
	}
	return used, StopBudget
}
