package kernel

import "testing"

func TestSpawnThreadSharesMemory(t *testing.T) {
	k := New(smallConfig())
	// main: spawn(worker, stack, 0); store 7 at 0x5000; spin until worker
	// stores 9 at 0x5004; exit(sum).
	src := `
	.entry main
worker:
	li r5, 0x5000
	lw r6, (r5)       ; read main's store
	addi r6, r6, 2
	sw r6, 4(r5)      ; 9
spin:
	li r1, 10
	syscall
	j spin
main:
	li r5, 0x5000
	li r6, 7
	sw r6, (r5)
	li r1, 11         ; spawn
	la r2, worker
	li r3, 0x00e00000
	li r4, 0
	syscall
	mv r20, r1        ; child tid
wait:
	li r1, 10
	syscall
	li r5, 0x5000
	lw r7, 4(r5)
	beq r7, zero, wait
	li r1, 1
	mv r2, r7
	syscall
`
	m, regs := buildProg(t, src)
	main := k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if main.ExitCode != 9 {
		t.Fatalf("exit %d, want 9 (worker saw main's store)", main.ExitCode)
	}
	// The worker thread must exist, share the group, and have been
	// terminated by the group exit.
	procs := k.Procs()
	if len(procs) != 2 {
		t.Fatalf("%d procs, want 2", len(procs))
	}
	worker := procs[1]
	if worker.Group() != main.Group() || worker.TGID != main.PID {
		t.Fatalf("worker group %d, main %d", worker.Group(), main.Group())
	}
	if !worker.Exited() {
		t.Fatal("worker survived group exit")
	}
	if worker.Mem != main.Mem {
		t.Fatal("worker does not share memory")
	}
}

func TestThreadHookObservesSpawn(t *testing.T) {
	k := New(smallConfig())
	var hooked []PID
	k.ThreadHook = func(parent, child *Proc) {
		hooked = append(hooked, child.PID)
	}
	src := `
	.entry main
worker:
spin:
	li r1, 10
	syscall
	j spin
main:
	li r1, 11
	la r2, worker
	li r3, 0x00e00000
	li r4, 0
	syscall
	li r1, 1
	li r2, 0
	syscall
`
	m, regs := buildProg(t, src)
	k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 {
		t.Fatalf("hook saw %d spawns, want 1", len(hooked))
	}
}

func TestThreadRunnerFactory(t *testing.T) {
	k := New(smallConfig())
	factoryCalls := 0
	k.ThreadRunner = func(parent *Proc) Runner {
		factoryCalls++
		return NativeRunner{}
	}
	src := `
	.entry main
worker:
spin:
	li r1, 10
	syscall
	j spin
main:
	li r1, 11
	la r2, worker
	li r3, 0x00e00000
	li r4, 0
	syscall
	li r1, 1
	li r2, 0
	syscall
`
	m, regs := buildProg(t, src)
	k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if factoryCalls != 1 {
		t.Fatalf("ThreadRunner called %d times", factoryCalls)
	}
}

func TestForkOfThreadSnapshotsSharedImage(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(100000, 0))
	main := k.Spawn("app", m, regs, NativeRunner{})
	child := k.SpawnThread(main, regs.PC, 0x00e0_0000, 0)
	main.Mem.StoreWord(0x6000, 42)

	// A fork (slice) taken now must see 42 but not later stores.
	slice := k.Fork(main, "slice", NativeRunner{}, true)
	main.Mem.StoreWord(0x6000, 99)
	if v, _ := slice.Mem.LoadWord(0x6000); v != 42 {
		t.Fatalf("slice sees %d, want snapshot 42", v)
	}
	// Threads still share the live image.
	if v, _ := child.Mem.LoadWord(0x6000); v != 99 {
		t.Fatalf("thread sees %d, want live 99", v)
	}
	k.Exit(main, 0)
	k.Exit(slice, 0)
	if !child.Exited() {
		t.Fatal("group exit missed the thread")
	}
}
