package kernel

import (
	"testing"
)

func TestMultipleTimersFireInExpiryOrder(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(200000, 0))
	k.Spawn("app", m, regs, NativeRunner{})

	var order []int
	ms := k.Config().Cost.MSec
	k.AddTimer(ms(300), func() { order = append(order, 3) })
	k.AddTimer(ms(100), func() { order = append(order, 1) })
	k.AddTimer(ms(200), func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("timer order %v", order)
	}
}

func TestTimerRescheduleFromCallback(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(200000, 0))
	k.Spawn("app", m, regs, NativeRunner{})

	fires := 0
	var arm func()
	arm = func() {
		k.AddTimer(k.Config().Cost.MSec(100), func() {
			fires++
			if fires < 5 {
				arm()
			}
		})
	}
	arm()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 5 {
		t.Fatalf("periodic timer fired %d times, want 5", fires)
	}
}

func TestTimerAfterAllProcsExitDoesNotFire(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(10, 0))
	k.Spawn("app", m, regs, NativeRunner{})
	fired := false
	// Far beyond the program's lifetime.
	k.AddTimer(k.Config().Cost.MSec(60_000), func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("timer fired after the last process exited")
	}
}

func TestWakeNonSleepingIsNoOp(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(100, 0))
	p := k.Spawn("app", m, regs, NativeRunner{})
	k.Wake(p) // runnable: no-op
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Wake(p) // exited: no-op
	if p.State != StateExited {
		t.Fatal("Wake resurrected an exited proc")
	}
}

func TestSleepExitedIsNoOp(t *testing.T) {
	k := New(smallConfig())
	m, regs := buildProg(t, loopExit(100, 0))
	p := k.Spawn("app", m, regs, NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.SleepProc(p)
	if p.State != StateExited {
		t.Fatal("SleepProc changed an exited proc")
	}
	k.Exit(p, 1) // double-exit: no-op
	if p.ExitCode != 0 {
		t.Fatal("double Exit changed the exit code")
	}
}
