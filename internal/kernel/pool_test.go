package kernel

import (
	"reflect"
	"testing"

	"superpin/internal/obs"
)

// poolRun executes a fixed multi-process workload at the given pool size
// and returns everything a serial run would be judged by: final virtual
// time, per-PID exit codes, and the full trace event stream.
func poolRun(t *testing.T, workers int) (Cycles, []uint32, []obs.Event) {
	t.Helper()
	cfg := smallConfig()
	cfg.Workers = workers
	tr := obs.NewTracer()
	cfg.Trace = tr
	k := New(cfg)
	// Heterogeneous mix: different loop lengths finish in different
	// quanta, syscalls interleave sleep/wake transitions, and the odd
	// process exits mid-round while others still run.
	var procs []*Proc
	for i := 0; i < 6; i++ {
		m, regs := buildProg(t, loopExit(500+i*377, 10+i))
		procs = append(procs, k.Spawn("app", m, regs, NativeRunner{}))
	}
	m, regs := buildProg(t, `
	li r10, 0
loop:
	li r1, 10       ; SysYield
	syscall
	addi r10, r10, 1
	li r11, 40
	blt r10, r11, loop
	li r1, 1
	li r2, 77
	syscall
`)
	procs = append(procs, k.Spawn("yielder", m, regs, NativeRunner{}))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	codes := make([]uint32, len(procs))
	for i, p := range procs {
		if !p.Exited() {
			t.Fatalf("workers=%d: proc %d not exited", workers, i)
		}
		codes[i] = p.ExitCode
	}
	return k.Now, codes, tr.Events()
}

// TestParallelRunDeterministic is the kernel-level half of the tentpole
// guarantee: for any pool size, virtual time, exit codes and the trace
// stream are byte-identical to the serial run.
func TestParallelRunDeterministic(t *testing.T) {
	refNow, refCodes, refEvents := poolRun(t, 1)
	if len(refEvents) == 0 {
		t.Fatal("serial run produced no trace events")
	}
	for _, w := range []int{2, 4, 8} {
		now, codes, events := poolRun(t, w)
		if now != refNow {
			t.Errorf("workers=%d: Now=%d, serial %d", w, now, refNow)
		}
		if !reflect.DeepEqual(codes, refCodes) {
			t.Errorf("workers=%d: exit codes %v, serial %v", w, codes, refCodes)
		}
		if !reflect.DeepEqual(events, refEvents) {
			t.Errorf("workers=%d: trace diverged (%d vs %d events)",
				w, len(events), len(refEvents))
		}
	}
}

// TestParallelRunRepeatable re-runs the same parallel configuration:
// worker completion order is nondeterministic, merged results must not be.
func TestParallelRunRepeatable(t *testing.T) {
	refNow, refCodes, refEvents := poolRun(t, 4)
	for i := 0; i < 4; i++ {
		now, codes, events := poolRun(t, 4)
		if now != refNow || !reflect.DeepEqual(codes, refCodes) ||
			!reflect.DeepEqual(events, refEvents) {
			t.Fatalf("run %d: workers=4 results diverged across repeats", i)
		}
	}
}

// TestPoolMetricsPublished checks that a parallel run accounts its pool
// activity and a serial run publishes no pool keys at all.
func TestPoolMetricsPublished(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	k := New(cfg)
	for i := 0; i < 4; i++ {
		m, regs := buildProg(t, loopExit(2000, i))
		k.Spawn("app", m, regs, NativeRunner{})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewMetrics()
	k.PublishMetrics(reg)
	if got := reg.Counter("kernel.pool.workers"); got != 4 {
		t.Fatalf("kernel.pool.workers = %d, want 4", got)
	}
	if reg.Counter("kernel.pool.rounds") == 0 {
		t.Fatal("parallel run recorded no pool rounds")
	}
	if reg.Counter("kernel.pool.tasks") == 0 {
		t.Fatal("parallel run enqueued no tasks")
	}
	runs := reg.Counter("kernel.pool.worker_runs") + reg.Counter("kernel.pool.main_runs") +
		reg.Counter("kernel.pool.main_steals")
	if runs != reg.Counter("kernel.pool.tasks") {
		t.Fatalf("executed phases %d != enqueued tasks %d",
			runs, reg.Counter("kernel.pool.tasks"))
	}

	serial := New(smallConfig())
	m, regs := buildProg(t, loopExit(100, 0))
	serial.Spawn("app", m, regs, NativeRunner{})
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewMetrics()
	serial.PublishMetrics(reg2)
	if got := reg2.Counter("kernel.pool.workers"); got != 0 {
		t.Fatalf("serial run published pool metrics (workers=%d)", got)
	}
}

// TestResolveWorkers covers the precedence chain: explicit value, then
// $SUPERPIN_WORKERS, then serial.
func TestResolveWorkers(t *testing.T) {
	t.Setenv(WorkersEnv, "")
	if got := ResolveWorkers(3); got != 3 {
		t.Fatalf("explicit 3 resolved to %d", got)
	}
	if got := ResolveWorkers(0); got != 1 {
		t.Fatalf("default resolved to %d, want 1", got)
	}
	t.Setenv(WorkersEnv, "6")
	if got := ResolveWorkers(0); got != 6 {
		t.Fatalf("env override resolved to %d, want 6", got)
	}
	if got := ResolveWorkers(2); got != 2 {
		t.Fatalf("explicit beats env: got %d, want 2", got)
	}
	t.Setenv(WorkersEnv, "bogus")
	if got := ResolveWorkers(0); got != 1 {
		t.Fatalf("bogus env resolved to %d, want 1", got)
	}
}
