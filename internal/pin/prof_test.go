package pin

import (
	"reflect"
	"testing"

	"superpin/internal/kernel"
	"superpin/internal/prof"
)

// runProfiledWithLimits executes testSrc under the engine with a probe
// attached, pausing at each InsLimit in limits (SuperPin's thread-replay
// pause/resume) before running to the exit syscall. It returns the
// complete sample stream.
func runProfiledWithLimits(t *testing.T, nofast bool, interval uint64, limits []uint64) []prof.Sample {
	t.Helper()
	cost := DefaultCost()
	cost.NoFastPath = nofast
	s := setupMode(t, testSrc, kernel.DefaultConfig(), cost, nil)
	pr := prof.NewProbe(interval)
	s.p.Prof = pr
	for _, lim := range limits {
		s.e.InsLimit = lim
		_, stop := s.e.Run(s.k, s.p, 1<<40)
		if stop != kernel.StopBudget {
			t.Fatalf("nofast=%v limit %d: stop %v", nofast, lim, stop)
		}
		if s.p.InsCount != lim {
			t.Fatalf("nofast=%v limit %d: paused at %d", nofast, lim, s.p.InsCount)
		}
	}
	s.e.InsLimit = 0
	_, stop := s.e.Run(s.k, s.p, 1<<40)
	if stop != kernel.StopSyscall {
		t.Fatalf("nofast=%v: final stop %v", nofast, stop)
	}
	return pr.Samples()
}

// TestProfInsLimitEdges: a sample landing exactly on an InsLimit pause
// point must be recorded once, before the pause, and resuming must not
// re-record or shift it — in both the fast-path and reference loops.
func TestProfInsLimitEdges(t *testing.T) {
	const interval = 5
	ref := runProfiledWithLimits(t, false, interval, nil)
	if len(ref) == 0 {
		t.Fatal("reference run recorded no samples")
	}
	for _, limits := range [][]uint64{
		{10},          // pause exactly on a sample index
		{10, 15, 20},  // consecutive exact-multiple pauses
		{7},           // pause between samples
		{7, 123, 124}, // mixed, including adjacent resume
		{1, 2, 3},     // immediate pauses from the start
	} {
		for _, nofast := range []bool{false, true} {
			got := runProfiledWithLimits(t, nofast, interval, limits)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("limits %v nofast=%v: sample stream diverged (%d vs %d samples)",
					limits, nofast, len(got), len(ref))
			}
		}
	}
}

// TestProfFastPathIdentical: with no pauses at all, the fast-path and
// reference sample streams must be byte-identical, and attaching the
// probe must not change any virtual outcome.
func TestProfFastPathIdentical(t *testing.T) {
	const interval = 3
	fast := runProfiledWithLimits(t, false, interval, nil)
	slow := runProfiledWithLimits(t, true, interval, nil)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast/nofast streams diverged (%d vs %d samples)", len(fast), len(slow))
	}
	// Some samples must carry call-stack frames (testSrc calls double).
	withStack := 0
	for _, s := range fast {
		if len(s.Stack) > 0 {
			withStack++
		}
	}
	if withStack == 0 {
		t.Fatal("no sample carried a shadow-stack frame")
	}
}

// TestProfZeroVirtualCost: a profiled run charges exactly the cycles an
// unprofiled run does.
func TestProfZeroVirtualCost(t *testing.T) {
	run := func(probe bool) (kernel.Cycles, uint64) {
		s := setupMode(t, testSrc, kernel.DefaultConfig(), DefaultCost(), nil)
		if probe {
			s.p.Prof = prof.NewProbe(7)
		}
		used, stop := s.e.Run(s.k, s.p, 1<<40)
		if stop != kernel.StopSyscall {
			t.Fatalf("stop %v", stop)
		}
		return used, s.p.InsCount
	}
	plainCycles, plainIns := run(false)
	profCycles, profIns := run(true)
	if plainCycles != profCycles || plainIns != profIns {
		t.Fatalf("profiling changed virtual outcomes: %d/%d vs %d/%d cycles/ins",
			plainCycles, plainIns, profCycles, profIns)
	}
}
