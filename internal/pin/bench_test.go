package pin

import (
	"fmt"
	"strings"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/kernel"
	"superpin/internal/mem"
	"superpin/internal/sa"
)

// benchLoop is a tight guest loop for engine-throughput benchmarks.
const benchLoop = `
	li r10, 0
	li r11, 1000000000
loop:
	addi r10, r10, 1
	add r12, r12, r10
	xor r13, r13, r12
	slli r14, r10, 3
	blt r10, r11, loop
	li r1, 1
	syscall
`

// benchHops is a dispatch-heavy guest loop: a chain of a few hundred
// two-instruction blocks, each ending in a jump, so almost all the work
// is inter-trace transfer and the code cache holds a realistic number of
// traces. It isolates the cost of dispatch itself — the trace-linking
// benchmarks' subject.
var benchHops = func() string {
	const hops = 300
	var b strings.Builder
	b.WriteString("\tli r10, 0\n\tli r11, 1000000000\nloop:\n\taddi r10, r10, 1\n\tj h0\n")
	for i := 0; i < hops; i++ {
		fmt.Fprintf(&b, "h%d:\n\tadd r12, r12, r10\n", i)
		if i < hops-1 {
			fmt.Fprintf(&b, "\tj h%d\n", i+1)
		}
	}
	b.WriteString("\tblt r10, r11, loop\n\tli r1, 1\n\tsyscall\n")
	return b.String()
}()

// setupEngine spawns src under an engine and returns proc + kernel.
func setupEngine(b *testing.B, src string, instrument func(*Engine)) (*kernel.Kernel, *kernel.Proc, *Engine) {
	b.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	cfg := kernel.DefaultConfig()
	k := kernel.New(cfg)
	e := NewEngine(DefaultCost())
	if instrument != nil {
		instrument(e)
	}
	proc := k.Spawn("bench", m, regs, e)
	return k, proc, e
}

// runN drives the engine directly for b.N guest instructions and reports
// host-side throughput.
func runN(b *testing.B, e *Engine, k *kernel.Kernel, p *kernel.Proc) {
	b.Helper()
	b.ResetTimer()
	remaining := uint64(b.N)
	for remaining > 0 {
		// Budgets are in cycles; one instruction costs at least one.
		used, stop := e.Run(k, p, kernel.Cycles(remaining))
		if stop == kernel.StopError {
			b.Fatal(p.Err)
		}
		if used == 0 {
			b.Fatal("engine made no progress")
		}
		if p.InsCount >= uint64(b.N) {
			break
		}
		remaining = uint64(b.N) - p.InsCount
	}
	b.ReportMetric(float64(p.InsCount)/b.Elapsed().Seconds(), "guest-ins/s")
}

func BenchmarkEngineUninstrumented(b *testing.B) {
	k, p, e := setupEngine(b, benchLoop, nil)
	runN(b, e, k, p)
}

// BenchmarkEngineUninstrumentedNoFastPath is the reference loop on the
// same workload: the ratio to BenchmarkEngineUninstrumented is the
// superblock fast path's speedup.
func BenchmarkEngineUninstrumentedNoFastPath(b *testing.B) {
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) { e.NoFastPath = true })
	runN(b, e, k, p)
}

// BenchmarkEngineDispatchLinked measures inter-trace transfer cost with
// trace linking on: the hop chain re-dispatches every few instructions,
// each resolved through the per-trace successor cache.
func BenchmarkEngineDispatchLinked(b *testing.B) {
	k, p, e := setupEngine(b, benchHops, nil)
	runN(b, e, k, p)
}

// BenchmarkEngineDispatchUnlinked is the same hop chain through the
// dispatcher's map lookup on every transfer.
func BenchmarkEngineDispatchUnlinked(b *testing.B) {
	k, p, e := setupEngine(b, benchHops, func(e *Engine) { e.NoFastPath = true })
	runN(b, e, k, p)
}

func BenchmarkEngineIcount1Style(b *testing.B) {
	var n uint64
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) { n++ })
				}
			}
		})
	})
	runN(b, e, k, p)
}

// BenchmarkEngineIcount1StyleNoFastPath: fully instrumented code has no
// superblocks, so the delta to BenchmarkEngineIcount1Style is what trace
// linking alone buys on an instrumented workload.
func BenchmarkEngineIcount1StyleNoFastPath(b *testing.B) {
	var n uint64
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) {
		e.NoFastPath = true
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) { n++ })
				}
			}
		})
	})
	runN(b, e, k, p)
}

func BenchmarkEngineIcount2Style(b *testing.B) {
	var n uint64
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				c := uint64(bbl.NumIns())
				bbl.InsertCall(Before, func(*Ctx) { n += c })
			}
		})
	})
	runN(b, e, k, p)
}

// BenchmarkEngineIcount2StyleNoFastPath: block-head calls leave call-free
// block tails, so this measures the reference loop on partially
// instrumented code (superblocks cover the tails when the fast path is
// on).
func BenchmarkEngineIcount2StyleNoFastPath(b *testing.B) {
	var n uint64
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) {
		e.NoFastPath = true
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				c := uint64(bbl.NumIns())
				bbl.InsertCall(Before, func(*Ctx) { n += c })
			}
		})
	})
	runN(b, e, k, p)
}

// boundaryProbe is the SuperPin boundary-check shape: one inlined
// predicate on every basic-block head, with the block tails left
// uninstrumented.
func boundaryProbe(n *uint64) func(*Engine) {
	return func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				bbl.InsHead().InsertIfCall(Before, func(*Ctx) bool {
					*n++
					return false
				})
			}
		})
	}
}

func BenchmarkEngineIfcallProbe(b *testing.B) {
	var n uint64
	k, p, e := setupEngine(b, benchLoop, boundaryProbe(&n))
	runN(b, e, k, p)
}

// BenchmarkEngineIfcallProbeSA is the same boundary probe with the
// load-time static analysis attached (as cmd/superpin does by default):
// the predicate save/restore set shrinks from the full 32-register file
// to the liveness mask at each probe site.
func BenchmarkEngineIfcallProbeSA(b *testing.B) {
	prog, err := asm.Assemble(benchLoop)
	if err != nil {
		b.Fatal(err)
	}
	var n uint64
	k, p, e := setupEngine(b, benchLoop, boundaryProbe(&n))
	e.SA = sa.Analyze(prog)
	runN(b, e, k, p)
}

func BenchmarkEngineIfThenDetectionStyle(b *testing.B) {
	// The SuperPin detection pattern: an inlined predicate at one hot PC.
	k, p, e := setupEngine(b, benchLoop, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					if ins.Inst().Op != isa.OpBLT {
						continue
					}
					ins.InsertIfCall(Before, func(c *Ctx) bool {
						return c.Regs.R[10] == 0xffffffff
					})
					ins.InsertThenCall(Before, func(*Ctx) {})
				}
			}
		})
	})
	runN(b, e, k, p)
}
