package pin

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/jit"
	"superpin/internal/kernel"
	"superpin/internal/mem"
)

// The fast paths (trace linking, superblock batching, budget hoisting)
// are host-side only: every virtual-cycle outcome must be byte-identical
// to the -nofastpath reference loop. These tests run the same guest code
// both ways and compare everything observable.

// normStats zeroes the counters that intentionally differ between modes
// (they count fast-path and hot-tier activity, which the reference loop
// has none of).
func normStats(s Stats) Stats {
	s.SuperblockIns = 0
	s.HotPromotions, s.HotIns, s.HoistedSaves, s.HotLinkHits = 0, 0, 0, 0
	s.WarmPromotions, s.FirstPromoDispatch = 0, 0
	return s
}

func normCacheStats(s jit.CacheStats) jit.CacheStats {
	s.LinkHits, s.LinkMisses, s.LinkInvalidations = 0, 0, 0
	return s
}

// fastModeState is everything observable after running a program in one
// mode, for exact comparison against the other mode.
type fastModeState struct {
	k *kernel.Kernel
	p *kernel.Proc
	e *Engine
}

func setupMode(t *testing.T, src string, kcfg kernel.Config, cost CostModel, instrument func(*Engine)) fastModeState {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	prog.LoadInto(m)
	regs := cpu.Regs{PC: prog.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	k := kernel.New(kcfg)
	e := NewEngine(cost)
	if instrument != nil {
		instrument(e)
	}
	p := k.Spawn("t", m, regs, e)
	return fastModeState{k: k, p: p, e: e}
}

// compareModes asserts that the fast and reference runs agree on every
// virtual outcome: registers, accounting, engine and cache statistics.
func compareModes(t *testing.T, fastS, slow fastModeState) {
	t.Helper()
	fp, sp := fastS.p, slow.p
	if fp.Regs != sp.Regs {
		t.Errorf("registers diverged:\nfast %+v\nslow %+v", fp.Regs, sp.Regs)
	}
	if fp.InsCount != sp.InsCount {
		t.Errorf("InsCount: fast %d, slow %d", fp.InsCount, sp.InsCount)
	}
	if fp.ExitCode != sp.ExitCode {
		t.Errorf("ExitCode: fast %d, slow %d", fp.ExitCode, sp.ExitCode)
	}
	if fp.CPUTime != sp.CPUTime {
		t.Errorf("CPUTime: fast %d, slow %d", fp.CPUTime, sp.CPUTime)
	}
	if fp.EndTime != sp.EndTime {
		t.Errorf("EndTime: fast %d, slow %d", fp.EndTime, sp.EndTime)
	}
	if fp.CowCost != sp.CowCost {
		t.Errorf("CowCost: fast %d, slow %d", fp.CowCost, sp.CowCost)
	}
	if fp.SyscallCount != sp.SyscallCount {
		t.Errorf("SyscallCount: fast %d, slow %d", fp.SyscallCount, sp.SyscallCount)
	}
	if fs, ss := normStats(fastS.e.Stats()), normStats(slow.e.Stats()); fs != ss {
		t.Errorf("engine stats diverged:\nfast %+v\nslow %+v", fs, ss)
	}
	if fc, sc := normCacheStats(fastS.e.CacheStats()), normCacheStats(slow.e.CacheStats()); fc != sc {
		t.Errorf("cache stats diverged:\nfast %+v\nslow %+v", fc, sc)
	}
}

// runBoth runs src to completion under the kernel scheduler in both
// modes and compares the outcomes. The returned fast-mode state lets
// callers assert that the fast paths actually engaged.
func runBoth(t *testing.T, src string, mutate func(*kernel.Config, *CostModel), instrument func(*Engine)) fastModeState {
	t.Helper()
	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 2_000_000_000
	cost := DefaultCost()
	if mutate != nil {
		mutate(&kcfg, &cost)
	}
	slowCost := cost
	slowCost.NoFastPath = true

	fastS := setupMode(t, src, kcfg, cost, instrument)
	if err := fastS.k.Run(); err != nil {
		t.Fatal(err)
	}
	slow := setupMode(t, src, kcfg, slowCost, instrument)
	if err := slow.k.Run(); err != nil {
		t.Fatal(err)
	}
	compareModes(t, fastS, slow)
	return fastS
}

func TestFastPathDifferentialUninstrumented(t *testing.T) {
	fastS := runBoth(t, testSrc, func(kcfg *kernel.Config, cost *CostModel) {
		// A prime quantum lands budget stops at awkward mid-run points,
		// and a memory surcharge makes the cumulative-cost array uneven.
		kcfg.Cost.Quantum = 7919
		cost.MemSurcharge = 3
	}, nil)
	st := fastS.e.Stats()
	if st.SuperblockIns == 0 {
		t.Error("superblock fast path never engaged on uninstrumented code")
	}
	if fastS.e.CacheStats().LinkHits == 0 {
		t.Error("trace linking never engaged on a loopy workload")
	}
}

func TestFastPathDifferentialIcount2(t *testing.T) {
	// Per-basic-block instrumentation: call sites at block heads leave
	// call-free tails, so superblocks and calls interleave within traces.
	var fastN, slowN uint64
	ns := []*uint64{&fastN, &slowN}
	i := 0
	fastS := runBoth(t, testSrc, nil, func(e *Engine) {
		n := ns[i]
		i++
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				c := uint64(bbl.NumIns())
				bbl.InsertCall(Before, func(*Ctx) { *n += c })
			}
		})
	})
	if fastN != slowN {
		t.Errorf("tool counts diverged: fast %d, slow %d", fastN, slowN)
	}
	if fastN != fastS.p.InsCount {
		t.Errorf("icount2 counted %d, executed %d", fastN, fastS.p.InsCount)
	}
	if fastS.e.Stats().SuperblockIns == 0 {
		t.Error("superblock fast path never engaged between block-head calls")
	}
}

func TestFastPathDifferentialIcount1(t *testing.T) {
	// Per-instruction instrumentation leaves no call-free runs at all:
	// the superblock path must stay out of the way entirely while trace
	// linking still works.
	var fastN, slowN uint64
	ns := []*uint64{&fastN, &slowN}
	i := 0
	fastS := runBoth(t, testSrc, nil, func(e *Engine) {
		n := ns[i]
		i++
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) { *n++ })
				}
			}
		})
	})
	if fastN != slowN {
		t.Errorf("tool counts diverged: fast %d, slow %d", fastN, slowN)
	}
	if st := fastS.e.Stats(); st.SuperblockIns != 0 {
		t.Errorf("superblock path executed %d instructions of fully instrumented code", st.SuperblockIns)
	}
	if fastS.e.CacheStats().LinkHits == 0 {
		t.Error("trace linking never engaged")
	}
}

func TestFastPathDifferentialSmallCache(t *testing.T) {
	// A small code cache forces flushes and recompilation; link state
	// must die with each cache generation without disturbing results.
	fastS := runBoth(t, testSrc, func(_ *kernel.Config, cost *CostModel) {
		cost.CacheCapacity = 24
	}, nil)
	if fastS.e.CacheStats().Flushes == 0 {
		t.Fatal("test expects cache flushes; raise testSrc size or lower capacity")
	}
}

// limitLoop is syscall-free until exit so single Run calls can be driven
// with precise budgets and instruction limits.
const limitLoop = `
	li r10, 0
	li r11, 100000
loop:
	addi r10, r10, 1
	add r12, r12, r10
	xor r13, r13, r12
	blt r10, r11, loop
	li r1, 1
	syscall
`

func TestFastPathInsLimitExact(t *testing.T) {
	// InsLimit must pause at exactly the requested instruction count —
	// SuperPin's deterministic thread replay depends on it — including
	// limits that land mid-superblock.
	for _, limit := range []uint64{1, 2, 5, 777, 4000} {
		var states []fastModeState
		for _, nofast := range []bool{false, true} {
			cost := DefaultCost()
			cost.NoFastPath = nofast
			kcfg := kernel.DefaultConfig()
			s := setupMode(t, limitLoop, kcfg, cost, nil)
			s.e.InsLimit = limit
			used, stop := s.e.Run(s.k, s.p, 1<<40)
			if stop != kernel.StopBudget {
				t.Fatalf("limit %d nofast=%v: stop %v", limit, nofast, stop)
			}
			if s.p.InsCount != limit {
				t.Errorf("limit %d nofast=%v: stopped at %d instructions", limit, nofast, s.p.InsCount)
			}
			if used == 0 {
				t.Errorf("limit %d nofast=%v: no cycles charged", limit, nofast)
			}
			states = append(states, s)
		}
		if states[0].p.Regs != states[1].p.Regs {
			t.Errorf("limit %d: registers diverged", limit)
		}
	}
}

func TestFastPathBudgetStopExact(t *testing.T) {
	// Single Run calls with assorted budgets: used cycles, stop PC and
	// instruction counts must match the reference loop exactly, including
	// on resumption mid-superblock after a budget stop.
	for _, budget := range []kernel.Cycles{1, 2, 3, 50, 997, 12345} {
		var used [2]kernel.Cycles
		var states []fastModeState
		for i, nofast := range []bool{false, true} {
			cost := DefaultCost()
			cost.NoFastPath = nofast
			s := setupMode(t, limitLoop, kernel.DefaultConfig(), cost, nil)
			u1, stop := s.e.Run(s.k, s.p, budget)
			if stop != kernel.StopBudget {
				t.Fatalf("budget %d nofast=%v: stop %v", budget, nofast, stop)
			}
			// Resume once: the fast engine re-enters mid-trace, mid-run.
			u2, stop := s.e.Run(s.k, s.p, budget)
			if stop != kernel.StopBudget {
				t.Fatalf("budget %d nofast=%v resume: stop %v", budget, nofast, stop)
			}
			used[i] = u1 + u2
			states = append(states, s)
		}
		f, s := states[0], states[1]
		if used[0] != used[1] {
			t.Errorf("budget %d: used fast %d, slow %d", budget, used[0], used[1])
		}
		if f.p.Regs != s.p.Regs {
			t.Errorf("budget %d: registers diverged (fast PC %#x, slow PC %#x)",
				budget, f.p.Regs.PC, s.p.Regs.PC)
		}
		if f.p.InsCount != s.p.InsCount {
			t.Errorf("budget %d: InsCount fast %d, slow %d", budget, f.p.InsCount, s.p.InsCount)
		}
	}
}

func TestFastPathFlushCacheClearsLinks(t *testing.T) {
	// FlushCache between Run calls must drop staged link state; execution
	// continues correctly via recompilation and results still match.
	var states []fastModeState
	for _, nofast := range []bool{false, true} {
		cost := DefaultCost()
		cost.NoFastPath = nofast
		s := setupMode(t, limitLoop, kernel.DefaultConfig(), cost, nil)
		var total kernel.Cycles
		for i := 0; i < 20; i++ {
			u, stop := s.e.Run(s.k, s.p, 500)
			total += u
			if stop != kernel.StopBudget {
				t.Fatalf("nofast=%v iter %d: stop %v", nofast, i, stop)
			}
			s.e.FlushCache()
		}
		states = append(states, s)
	}
	if states[0].p.Regs != states[1].p.Regs {
		t.Error("registers diverged across FlushCache")
	}
	if states[0].p.InsCount != states[1].p.InsCount {
		t.Errorf("InsCount diverged: fast %d, slow %d", states[0].p.InsCount, states[1].p.InsCount)
	}
}

func TestSealFastPathsStructure(t *testing.T) {
	// Compile testSrc's entry trace uninstrumented and check the seal
	// pass's invariants directly: runs cover exactly the call-free,
	// syscall-free instructions, predecode matches, and Cum is coherent.
	prog, err := asm.Assemble(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	prog.LoadInto(m)
	tr, err := jit.BuildTrace(m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	ct := jit.Compile(tr)
	// Instrument one instruction in the middle to split a run.
	mid := len(ct.Ins) / 2
	ct.Ins[mid].Before = append(ct.Ins[mid].Before, jit.Call{Fn: func(*jit.Ctx) {}})
	cost := DefaultCost()
	cost.MemSurcharge = 7
	sealFastPaths(ct, cost)

	if ct.RunAt == nil {
		t.Fatal("no superblocks sealed")
	}
	if got := ct.RunAt[mid]; got != -1 {
		t.Errorf("instrumented instruction assigned to run %d", got)
	}
	covered := 0
	for i, ri := range ct.RunAt {
		if ri < 0 {
			continue
		}
		covered++
		sb := &ct.Sblocks[ri]
		off := i - sb.Start
		if off < 0 || off >= len(sb.Block) {
			t.Fatalf("ins %d maps outside its run", i)
		}
		if sb.Block[off].Inst != ct.Ins[i].Inst {
			t.Errorf("ins %d: predecoded instruction mismatch", i)
		}
		if want := ct.Ins[i].Addr + isa.WordSize; sb.Block[off].Next != want {
			t.Errorf("ins %d: Next %#x, want %#x", i, sb.Block[off].Next, want)
		}
		var prev uint64
		if off > 0 {
			prev = sb.Cum[off-1]
		}
		step := uint64(cost.Exec)
		if ct.Ins[i].Inst.Op.IsMem() {
			step += uint64(cost.MemSurcharge)
		}
		if sb.Cum[off]-prev != step {
			t.Errorf("ins %d: cum step %d, want %d", i, sb.Cum[off]-prev, step)
		}
	}
	if covered == 0 {
		t.Fatal("no instructions covered by runs")
	}
	for ri := range ct.Sblocks {
		sb := &ct.Sblocks[ri]
		if len(sb.Block) < minSuperblockIns {
			t.Errorf("run %d has %d instructions, below minimum %d", ri, len(sb.Block), minSuperblockIns)
		}
		if len(sb.Block) != len(sb.Cum) {
			t.Errorf("run %d: Block/Cum length mismatch", ri)
		}
	}
}
