package pin

import (
	"math/bits"
	"testing"

	"superpin/internal/asm"
	"superpin/internal/jit"
	"superpin/internal/kernel"
	"superpin/internal/sa"
)

// saTestSrc is a counted loop with a provable exit: the static analysis
// can see that only the loop-carried registers (r10, r11) and the exit
// syscall's argument registers survive each instrumentation point, so
// the predicate save/restore set shrinks from the full register file to
// a handful.
const saTestSrc = `
	.entry main
main:
	li r10, 0
	li r11, 2000
loop:
	addi r12, r10, 3
	add r13, r12, r12
	xor r14, r13, r10
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	li r2, 0
	syscall
`

// icount2Instrument is the boundary-probe shape SuperPin uses: one
// inlined predicate on the head instruction of every basic block,
// leaving the rest of the block uninstrumented (so superblock batching
// still has runs to seal).
func icount2Instrument(probes *uint64) func(*Engine) {
	return func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				bbl.InsHead().InsertIfCall(Before, func(c *Ctx) bool {
					*probes++
					return false
				})
			}
		})
	}
}

// TestSALivenessElision runs identical If-call instrumentation with and
// without the analysis attached. Virtual outcomes must be identical —
// liveness only changes which registers the host saves around a
// predicate — while the saved-register count must shrink strictly.
func TestSALivenessElision(t *testing.T) {
	prog, err := asm.Assemble(saTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	an := sa.Analyze(prog)
	if err := an.Err(); err != nil {
		t.Fatal(err)
	}

	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 2_000_000_000
	var probesSA, probesRef uint64

	withSA := setupMode(t, saTestSrc, kcfg, DefaultCost(), func(e *Engine) {
		e.SA = an
		icount2Instrument(&probesSA)(e)
	})
	if err := withSA.k.Run(); err != nil {
		t.Fatal(err)
	}
	ref := setupMode(t, saTestSrc, kcfg, DefaultCost(), icount2Instrument(&probesRef))
	if err := ref.k.Run(); err != nil {
		t.Fatal(err)
	}

	// Byte-identical guest outcomes.
	if withSA.p.Regs != ref.p.Regs {
		t.Errorf("registers diverged:\nsa  %+v\nref %+v", withSA.p.Regs, ref.p.Regs)
	}
	if withSA.p.InsCount != ref.p.InsCount || withSA.p.CPUTime != ref.p.CPUTime ||
		withSA.p.ExitCode != ref.p.ExitCode {
		t.Errorf("accounting diverged: sa ins=%d cpu=%d exit=%d, ref ins=%d cpu=%d exit=%d",
			withSA.p.InsCount, withSA.p.CPUTime, withSA.p.ExitCode,
			ref.p.InsCount, ref.p.CPUTime, ref.p.ExitCode)
	}
	if probesSA != probesRef || probesSA == 0 {
		t.Errorf("probe counts diverged: sa %d, ref %d", probesSA, probesRef)
	}

	ss, rs := withSA.e.Stats(), ref.e.Stats()
	if ss.IfCalls != rs.IfCalls || ss.IfCalls == 0 {
		t.Errorf("IfCalls: sa %d, ref %d", ss.IfCalls, rs.IfCalls)
	}
	// Without analysis every predicate saves the whole file.
	if want := rs.IfCalls * uint64(len(ref.p.Regs.R)); rs.PredSaveRegs != want {
		t.Errorf("ref PredSaveRegs = %d, want full file %d", rs.PredSaveRegs, want)
	}
	// With analysis the per-predicate save set must shrink strictly.
	if ss.PredSaveRegs == 0 || ss.PredSaveRegs >= rs.PredSaveRegs {
		t.Errorf("PredSaveRegs not narrowed: sa %d vs ref %d", ss.PredSaveRegs, rs.PredSaveRegs)
	}
	// Per-probe average should be far below the 32-register file for
	// this loop — the masks really are narrow, not just off-by-one.
	if avg := float64(ss.PredSaveRegs) / float64(ss.IfCalls); avg > 16 {
		t.Errorf("average save set %.1f regs, expected a narrow mask", avg)
	}
	// The analysis-backed predecode sharing must have engaged, and the
	// reference engine must not report any SA activity.
	if ss.SASharedRuns == 0 {
		t.Error("SASharedRuns = 0: superblock sealing never borrowed the shared predecode")
	}
	if rs.SASharedRuns != 0 || rs.SAPrivateRuns != 0 {
		t.Errorf("engine without analysis reported SA runs: %+v", rs)
	}
}

// TestSAAnnotateLiveness checks the mask stamping directly: only
// call-carrying instructions get masks, and stamped masks match the
// analysis queries and carry the r0 marker bit.
func TestSAAnnotateLiveness(t *testing.T) {
	prog, err := asm.Assemble(saTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	an := sa.Analyze(prog)
	if err := an.Err(); err != nil {
		t.Fatal(err)
	}
	var probes uint64
	s := setupMode(t, saTestSrc, kernel.DefaultConfig(), DefaultCost(), func(e *Engine) {
		e.SA = an
		icount2Instrument(&probes)(e)
	})
	if err := s.k.Run(); err != nil {
		t.Fatal(err)
	}
	checked := 0
	s.e.cache.Traces(func(ct *jit.CompiledTrace) {
		for i := range ct.Ins {
			ci := &ct.Ins[i]
			if len(ci.Before) > 0 {
				if ci.LiveBefore != an.LiveIn(ci.Addr) {
					t.Errorf("LiveBefore(%#x) = %#x, want %#x", ci.Addr, ci.LiveBefore, an.LiveIn(ci.Addr))
				}
				if ci.LiveBefore&1 == 0 {
					t.Errorf("LiveBefore(%#x) missing the r0 marker bit", ci.Addr)
				}
				if bits.OnesCount32(ci.LiveBefore) >= 32 {
					t.Errorf("LiveBefore(%#x) not narrowed: %#x", ci.Addr, ci.LiveBefore)
				}
				checked++
			} else if ci.LiveBefore != 0 {
				t.Errorf("uninstrumented %#x got LiveBefore %#x", ci.Addr, ci.LiveBefore)
			}
		}
	})
	if checked == 0 {
		t.Fatal("no instrumented instructions found in the code cache")
	}
}
