package pin

import (
	"time"

	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/jit"
	"superpin/internal/kernel"
	"superpin/internal/obs"
	"superpin/internal/sa"
)

// CostModel holds the engine's calibrated per-operation cycle costs. The
// defaults reproduce the overhead structure the paper reports: a plain
// per-instruction InsertCall (icount1) costs about 10 extra cycles per
// instruction — a ~12X slowdown once dispatch and compilation are added —
// while a per-basic-block call (icount2) amortizes the same cost over the
// block.
type CostModel struct {
	// CompilePerIns is the JIT cost per compiled instruction.
	CompilePerIns kernel.Cycles
	// Dispatch is the cost of one code-cache dispatch (trace lookup and
	// entry).
	Dispatch kernel.Cycles
	// Exec is the cost of executing one translated guest instruction.
	Exec kernel.Cycles
	// Call is the cost of a plain analysis call, including the register
	// save/restore sequence Pin generates around it.
	Call kernel.Cycles
	// IfCall is the cost of an inlined InsertIfCall predicate.
	IfCall kernel.Cycles
	// ThenCall is the cost of an InsertThenCall routine when its
	// predicate fires.
	ThenCall kernel.Cycles
	// WeavePerIns is the per-instruction cost of instrumenting a
	// translation obtained from a shared trace cache (the translation
	// itself was paid for once by whoever built it).
	WeavePerIns kernel.Cycles
	// SharedCheck is the per-dispatch consistency-check surcharge paid
	// when a shared trace cache is attached (paper Section 8: "a little
	// extra overhead by performing extra consistency checks").
	SharedCheck kernel.Cycles
	// MemSurcharge is an extra cost per memory instruction, modeling the
	// cache behavior of the instrumented run (per-benchmark; see
	// internal/workload). Zero for most benchmarks.
	MemSurcharge kernel.Cycles
	// CacheCapacity is the code-cache capacity in compiled instructions
	// (<= 0 for unlimited). Applications whose footprint exceeds it
	// trigger whole-cache flushes and recompilation.
	CacheCapacity int

	// NoFastPath disables the engine's host-side dispatch fast paths
	// (trace linking and batched superblock execution), forcing the
	// per-instruction reference loop. Virtual-cycle results are
	// byte-identical either way — the fast paths change what the host
	// pays, never what the guest is charged — so the flag exists for
	// differential testing and benchmarking, not for correctness. It
	// rides in the cost model (despite not being a cost) because the
	// cost model is the one knob plumbed to every engine a run creates,
	// including the per-slice engines SuperPin forks.
	NoFastPath bool

	// NoSA disables the load-time static-analysis pass (internal/sa):
	// no verifier, no liveness-guided predicate save/restore elision,
	// no shared predecode for superblock sealing. Like NoFastPath it is
	// host-side only — virtual results are byte-identical either way
	// (`spbench -exp sadiff` proves it) — and rides in the cost model
	// for the same plumbing reason.
	NoSA bool

	// SAIntra restricts the static analysis to its intraprocedural tier
	// (sa.AnalyzeIntra): no call-graph recovery, no cross-call liveness,
	// no value analysis, no predicate folding. Host-side only like NoSA
	// — `spbench -exp ipdiff` proves virtual results are byte-identical
	// across full/intra/off — and rides in the cost model for the same
	// plumbing reason. Ignored when NoSA is set.
	SAIntra bool

	// NoHotTier disables the second-tier trace compiler: no promotion of
	// hot traces, so no profile-guided hot-successor links, no
	// register-cached superblock execution and no predicate-spill
	// hoisting. The hot tier rides on the superblock machinery, so it is
	// also off whenever NoFastPath is set. Host-side only — virtual
	// results are byte-identical either way (`spbench -exp jitdiff`
	// proves it) — and rides in the cost model for the same plumbing
	// reason as the other two escape hatches.
	NoHotTier bool

	// HotThreshold is the per-trace dispatch count that triggers
	// promotion to the second tier (<= 0 means DefaultHotThreshold).
	// Host-side only: promotion is a pure function of the virtual
	// execution, so any value yields byte-identical virtual results.
	HotThreshold int
}

// DefaultCost returns the calibrated default engine cost model.
func DefaultCost() CostModel {
	return CostModel{
		CompilePerIns: 60,
		Dispatch:      3,
		Exec:          1,
		Call:          10,
		IfCall:        2,
		ThenCall:      12,
		WeavePerIns:   15,
		SharedCheck:   1,
		CacheCapacity: 32768,
	}
}

// Stats are cumulative engine execution statistics. SuperblockIns counts
// the subset of ExecIns executed through the batched superblock fast
// path (zero when the fast path is disabled or every instruction is
// instrumented).
//
// PredSaveRegs, SASharedRuns and SAPrivateRuns are host-side counters
// like SuperblockIns: PredSaveRegs counts registers saved and restored
// around inlined if/then predicates (the static-analysis liveness masks
// shrink it), and SASharedRuns/SAPrivateRuns count superblock runs
// sealed over the analysis's shared load-time predecode versus runs that
// fell back to a private copy (stale against current guest memory). Both
// stay zero when no analysis is attached. None of them affect
// virtual-cycle results.
// HotPromotions, HotIns, HoistedSaves and HotLinkHits are the hot tier's
// host-side counters: traces promoted to the second tier, instructions
// executed through register-cached superblocks (a subset of
// SuperblockIns), inlined-predicate spills suppressed by the
// dominator/loop hoisting, and dispatches resolved through a promoted
// trace's hot-successor link. All zero with the hot tier disabled; none
// affect virtual-cycle results.
//
// FoldedSites, FoldedPreds and IPHoists belong to the interprocedural
// tier: call sites whose declared If-predicate the value analysis
// decided at compile time (FoldedSites, stamped once per compilation),
// run-time predicate evaluations skipped because of a folded verdict
// (FoldedPreds), and predicate spills suppressed by the hot tier's
// all-folded-site hoisting rule (IPHoists, a subset of HoistedSaves).
// Host-side, like every other counter here.
//
// WarmPromotions counts the subset of HotPromotions triggered at compile
// time by the artifact cache's warm-start seed rather than earned
// through this run's own dispatch counting. FirstPromoDispatch records
// the Dispatches value at the first promotion (zero when nothing
// promoted) — the time-to-first-promotion measurement the warm-start
// experiment reports. Host-side like the rest.
type Stats struct {
	ExecIns       uint64
	AnalysisCalls uint64
	IfCalls       uint64
	ThenCalls     uint64
	Dispatches    uint64
	SuperblockIns uint64
	PredSaveRegs  uint64
	SASharedRuns  uint64
	SAPrivateRuns uint64
	HotPromotions uint64
	HotIns        uint64
	HoistedSaves  uint64
	HotLinkHits   uint64
	FoldedSites   uint64
	FoldedPreds   uint64
	IPHoists      uint64

	WarmPromotions     uint64
	FirstPromoDispatch uint64
}

// SyscallFilter lets a wrapper (SuperPin's slice engine) intercept guest
// system calls before they reach the kernel. It is invoked with the
// process stopped at the instruction after the SYSCALL. Returning
// handled=true consumes the syscall (the filter has applied its effects);
// stop, when non-zero alongside handled, terminates the run with that
// reason (used when playback reaches a slice's boundary syscall).
type SyscallFilter func(k *kernel.Kernel, p *kernel.Proc) (handled bool, cost kernel.Cycles, stop kernel.StopReason)

// Engine is one instance of the instrumentation VM: a code cache plus the
// registered instrumentation and fini callbacks. Each instrumented
// process owns its own Engine — in SuperPin mode every slice gets a fresh
// one, which is exactly the paper's "each slice has its own copy of the
// code cache, and it starts in a clean state" compilation overhead.
type Engine struct {
	// Cost is the engine's cycle-cost model. Mutable until first Run.
	Cost CostModel

	// Syscall, when non-nil, filters guest syscalls (see SyscallFilter).
	Syscall SyscallFilter

	// SplitPC, when non-zero, forces a trace (and basic-block) boundary
	// at that address during compilation. SuperPin sets it to the
	// slice's end-signature PC so block-granularity instrumentation
	// stays exact across a mid-block slice boundary.
	SplitPC uint32

	// Shared, when non-nil, is a translation cache shared with other
	// engines (SuperPin's Section 8 shared-code-cache mode): on a local
	// code-cache miss the engine reuses a shared translation when one
	// exists, paying only the instrumentation-weaving cost, and
	// publishes translations it builds itself. Traces crossing this
	// engine's SplitPC are never adopted from the shared cache.
	Shared *jit.TraceCache

	// SharedBarrier defers publication of locally built translations
	// until an explicit PublishShared call. SuperPin sets it on every
	// slice engine and publishes at quantum barriers in slice order, so
	// shared-cache contents stay a pure function of virtual time no
	// matter how many host workers execute slices. When false (the
	// default, for standalone single-goroutine engines) translations
	// publish immediately, as plain Pin would.
	SharedBarrier bool

	// InsLimit, when non-zero, pauses execution (StopBudget) once the
	// process's total InsCount reaches it. SuperPin's deterministic
	// thread replay uses it to stop a thread's burst at exactly the
	// instruction count the master recorded.
	InsLimit uint64

	// NoFastPath mirrors CostModel.NoFastPath (see there); it may also
	// be toggled directly on the engine before the first Run.
	NoFastPath bool

	// NoHotTier mirrors CostModel.NoHotTier (see there); it may also be
	// toggled directly on the engine before the first Run.
	NoHotTier bool

	// SA, when non-nil, is the load-time static analysis of the guest
	// program (internal/sa). The engine consumes it in two host-side
	// ways: per-instruction liveness masks elide dead registers from the
	// save/restore modeled around inlined if/then predicates, and the
	// analysis's shared predecode backs superblock sealing. It must be
	// set before the first Run and is read-only thereafter, so one
	// analysis may be shared by every engine of a run (including
	// SuperPin's concurrently executing slice engines).
	SA *sa.Analysis

	// Warm, when non-nil, is the hot-trace warm-start seed from the
	// artifact cache (internal/artifact): per trace PC, the promotion
	// counters a prior execution of the same image earned. Freshly
	// compiled traces start from the seeded counters, so proven-hot
	// traces promote at compile time instead of re-earning the
	// threshold. Immutable and shareable like SA; set before first Run.
	// Purely host-side: seeding never changes a virtual result.
	Warm *jit.WarmSeed

	cache         *jit.CodeCache
	sealScratch   []runSpan // reused across seal calls to avoid per-compile allocs
	instrumenters []func(*Trace)
	finiFns       []func(code uint32)
	ctx           jit.Ctx
	cur           *jit.CompiledTrace
	idx           int
	stats         Stats
	trace         *obs.Tracer

	// Live telemetry (AttachMetrics): pre-resolved handles plus
	// engine-local accumulators flushed once per Run call, so the hot
	// dispatch loop never takes the registry's locks. All nil/zero when
	// no registry is attached — the default costs one nil check per
	// Run call and per superblock batch.
	metrics     *obs.Metrics
	mBatch      *obs.Hist    // pin.dispatch_batch_ins
	mCompile    *obs.Hist    // pin.compile_ns
	mPromote    *obs.Hist    // pin.promote_ns
	mExecIns    *obs.Counter // pin.live.exec_ins
	mDispatch   *obs.Counter // pin.live.dispatches
	mPromotions *obs.Counter // pin.live.promotions
	locBatch    [obs.HistBuckets]uint64
	locBatchSum uint64
	locBatchN   uint64
	lastFlushed Stats

	// pendingShared holds translations this engine built but has not yet
	// published into Shared (map for dedup, slice for build order). The
	// engine never inserts into the shared cache mid-run: the scheduler
	// publishes every engine's pending set at the quantum barrier, in
	// slice order, which makes shared-cache contents a pure function of
	// virtual time — identical for every host worker count.
	pendingShared map[uint32]*jit.Trace
	pendingOrder  []*jit.Trace

	// linkNext is a successor trace resolved by the previous trace exit's
	// link-cache hit, consumed by the next dispatch in place of the map
	// lookup. linkFrom is the previous trace when its exit missed the
	// link cache; the next dispatch records the resolved successor into
	// it. At most one of the two is set.
	linkNext *jit.CompiledTrace
	linkFrom *jit.CompiledTrace

	// hotTier caches "the hot tier is active this Run" (fast path on and
	// NoHotTier off); hotThr is the resolved promotion threshold. Both
	// are recomputed at every Run entry.
	hotTier bool
	hotThr  uint64
}

// NewEngine creates an engine with the given cost model.
func NewEngine(cost CostModel) *Engine {
	return &Engine{
		Cost:       cost,
		NoFastPath: cost.NoFastPath,
		NoHotTier:  cost.NoHotTier,
		cache:      jit.NewCodeCache(cost.CacheCapacity),
	}
}

// AddTraceInstrumenter registers a trace-time instrumentation callback,
// the analogue of TRACE_AddInstrumentFunction. Callbacks run in
// registration order each time a trace is compiled.
func (e *Engine) AddTraceInstrumenter(fn func(*Trace)) {
	e.instrumenters = append(e.instrumenters, fn)
}

// AddFiniFunction registers a callback for Fini, the analogue of
// PIN_AddFiniFunction.
func (e *Engine) AddFiniFunction(fn func(code uint32)) {
	e.finiFns = append(e.finiFns, fn)
}

// Fini runs the registered fini callbacks in order.
func (e *Engine) Fini(code uint32) {
	for _, fn := range e.finiFns {
		fn(code)
	}
}

// RequestStop asks the engine to stop before the next instruction
// executes. It is only meaningful when called from within an analysis
// routine running on this engine (SuperPin's SP_EndSlice uses it).
func (e *Engine) RequestStop() { e.ctx.RequestStop() }

// AttachObs connects the engine (and its code cache) to a tracer, with
// pid identifying the instrumented process in emitted events. Compile
// and flush events carry the virtual time of the engine's current Run
// call. Passing a nil tracer detaches.
func (e *Engine) AttachObs(t *obs.Tracer, pid int32) {
	e.trace = t
	e.cache.Trace = t
	e.cache.PID = pid
}

// AttachMetrics connects the engine to a live metrics registry: compile
// and promote wall-time histograms, the dispatch batch-size histogram,
// and live counters (pin.live.*) that track the engine's progress while
// it runs. Handles are resolved once here; the dispatch loop
// accumulates locally and flushes at each Run exit. Purely host-side —
// virtual results are byte-identical with or without a registry.
// Passing nil detaches.
func (e *Engine) AttachMetrics(m *obs.Metrics) {
	e.metrics = m
	if m == nil {
		e.mBatch, e.mCompile, e.mPromote = nil, nil, nil
		e.mExecIns, e.mDispatch, e.mPromotions = nil, nil, nil
		return
	}
	e.mBatch = m.Hist("pin.dispatch_batch_ins")
	e.mCompile = m.Hist("pin.compile_ns")
	e.mPromote = m.Hist("pin.promote_ns")
	e.mExecIns = m.LiveCounter("pin.live.exec_ins")
	e.mDispatch = m.LiveCounter("pin.live.dispatches")
	e.mPromotions = m.LiveCounter("pin.live.promotions")
	e.cache.SizeHist = m.Hist("jit.trace_ins")
}

// flushTelemetry folds the Run call's locally accumulated telemetry
// into the shared registry: the batch-size histogram in one merge, and
// the live counters by stats delta. Called once per Run exit, only with
// a registry attached.
func (e *Engine) flushTelemetry() {
	if e.mBatch != nil && e.locBatchN > 0 {
		e.mBatch.Merge(e.locBatch[:], e.locBatchSum, e.locBatchN)
		e.locBatch = [obs.HistBuckets]uint64{}
		e.locBatchSum, e.locBatchN = 0, 0
	}
	if e.mExecIns != nil {
		e.mExecIns.Add(e.stats.ExecIns - e.lastFlushed.ExecIns)
	}
	if e.mDispatch != nil {
		e.mDispatch.Add(e.stats.Dispatches - e.lastFlushed.Dispatches)
	}
	if e.mPromotions != nil {
		e.mPromotions.Add(e.stats.HotPromotions - e.lastFlushed.HotPromotions)
	}
	e.lastFlushed = e.stats
}

// queueShared records a locally built translation for publication into
// the shared cache at the next quantum barrier (first build of an
// address wins, matching TraceCache.Insert). Without SharedBarrier it
// publishes immediately.
func (e *Engine) queueShared(tr *jit.Trace) {
	if !e.SharedBarrier {
		e.Shared.Insert(tr)
		return
	}
	if e.pendingShared == nil {
		e.pendingShared = make(map[uint32]*jit.Trace)
	}
	if _, dup := e.pendingShared[tr.Addr]; dup {
		return
	}
	e.pendingShared[tr.Addr] = tr
	e.pendingOrder = append(e.pendingOrder, tr)
}

// PublishShared moves this engine's pending translations into the shared
// cache, in build order. The SuperPin core calls it for every slice
// engine, in slice order, at the quantum barrier — while no engine runs
// on a pool worker — so publication order and shared-cache contents are
// identical in serial and parallel runs. No-op without a shared cache or
// pending translations.
func (e *Engine) PublishShared() {
	if e.Shared == nil || len(e.pendingOrder) == 0 {
		return
	}
	e.Shared.Publish(e.pendingOrder)
	for _, tr := range e.pendingOrder {
		delete(e.pendingShared, tr.Addr)
	}
	e.pendingOrder = e.pendingOrder[:0]
}

// PublishMetrics publishes the engine's cumulative statistics into m
// under the given dotted prefix (e.g. "pin"). Counters accumulate, so
// publishing several engines under one prefix sums them. No-op when m
// is nil.
func (e *Engine) PublishMetrics(m *obs.Metrics, prefix string) {
	if m == nil {
		return
	}
	m.Add(prefix+".exec_ins", e.stats.ExecIns)
	m.Add(prefix+".analysis_calls", e.stats.AnalysisCalls)
	m.Add(prefix+".if_calls", e.stats.IfCalls)
	m.Add(prefix+".then_calls", e.stats.ThenCalls)
	m.Add(prefix+".dispatches", e.stats.Dispatches)
	m.Add(prefix+".superblock.ins", e.stats.SuperblockIns)
	m.Add(prefix+".sa.pred_save_regs", e.stats.PredSaveRegs)
	m.Add(prefix+".sa.shared_runs", e.stats.SASharedRuns)
	m.Add(prefix+".sa.private_runs", e.stats.SAPrivateRuns)
	m.Add(prefix+".hot.promotions", e.stats.HotPromotions)
	m.Add(prefix+".hot.ins", e.stats.HotIns)
	m.Add(prefix+".hot.hoisted_saves", e.stats.HoistedSaves)
	m.Add(prefix+".hot.link_hits", e.stats.HotLinkHits)
	m.Add(prefix+".hot.warm_promotions", e.stats.WarmPromotions)
	m.Add(prefix+".sa.ip.folded_sites", e.stats.FoldedSites)
	m.Add(prefix+".sa.ip.folded", e.stats.FoldedPreds)
	m.Add(prefix+".sa.ip.hoists", e.stats.IPHoists)
	cs := e.cache.Stats()
	m.Add(prefix+".cache.lookups", cs.Lookups)
	m.Add(prefix+".cache.misses", cs.Misses)
	m.Add(prefix+".cache.compiles", cs.Compiles)
	m.Add(prefix+".cache.compiled_ins", cs.CompiledIns)
	m.Add(prefix+".cache.flushes", cs.Flushes)
	m.Add(prefix+".link.hits", cs.LinkHits)
	m.Add(prefix+".link.misses", cs.LinkMisses)
	m.Add(prefix+".link.invalidations", cs.LinkInvalidations)
	if e.Shared != nil {
		ts := e.Shared.Stats()
		m.Add(prefix+".shared.hits", ts.Hits)
		m.Add(prefix+".shared.misses", ts.Misses)
	}
}

// Stats returns cumulative execution statistics.
func (e *Engine) Stats() Stats { return e.stats }

// CacheStats returns cumulative code-cache statistics.
func (e *Engine) CacheStats() jit.CacheStats { return e.cache.Stats() }

// FlushCache discards all compiled traces (used by tests and by cache
// pressure experiments). Pending trace-link state dies with the cache
// generation: the flush bumps the cache epoch, which invalidates every
// recorded link lazily, and the in-flight linkNext/linkFrom pointers are
// dropped eagerly here.
func (e *Engine) FlushCache() {
	e.cache.Flush()
	e.cur = nil
	e.linkNext = nil
	e.linkFrom = nil
}

// Run implements kernel.Runner: it executes up to budget cycles of
// instrumented guest code for p.
//
// Two host-side fast paths accelerate the loop without changing any
// virtual-cycle outcome (disable both with NoFastPath):
//
//   - trace linking (Pin paper Section 2.2): each trace exit records its
//     successor in a small per-trace cache, so the next dispatch is a
//     pointer chase instead of a map lookup. The dispatch cycles are
//     still charged and the logical cache lookup is still counted.
//   - superblock execution: runs of instructions with no analysis calls
//     execute through cpu.ExecBlock (ExecBlockProf when a profiler probe
//     is attached), with cycles, InsCount, ExecIns and
//     copy-on-write charges batched per run. The run is cut at the exact
//     instruction where the reference loop's per-instruction budget or
//     InsLimit check would stop, so stop points are unchanged.
//
// A second tier rides on top of the fast paths (disable with NoHotTier,
// prove equivalence with `spbench -exp jitdiff`): traces whose dispatch
// count crosses the hotness threshold are promoted — their superblocks
// execute on a host-local register file with a static-written-set
// writeback (cpu.ExecBlockCached), dominator-redundant and loop-invariant
// predicate spills are suppressed, and the profiled hottest exit becomes
// a preferred successor link. See promote.go for the policy and DESIGN.md
// for the soundness argument.
func (e *Engine) Run(k *kernel.Kernel, p *kernel.Proc, budget kernel.Cycles) (kernel.Cycles, kernel.StopReason) {
	used, stop := e.run(k, p, budget)
	if e.metrics != nil {
		e.flushTelemetry()
	}
	return used, stop
}

// run is the dispatch loop behind Run; see Run for the contract.
func (e *Engine) run(k *kernel.Kernel, p *kernel.Proc, budget kernel.Cycles) (kernel.Cycles, kernel.StopReason) {
	cost := e.Cost
	kcost := k.Config().Cost
	fast := !e.NoFastPath
	e.hotTier = fast && !e.NoHotTier
	if e.hotTier {
		e.hotThr = DefaultHotThreshold
		if cost.HotThreshold > 0 {
			e.hotThr = uint64(cost.HotThreshold)
		}
	}
	pr := p.Prof
	ctx := &e.ctx
	ctx.Regs = &p.Regs
	ctx.Mem = p.Mem
	if e.trace != nil {
		// k.Now is frozen for the duration of this Run call, so stamping
		// once per call gives compile/flush events their correct time.
		e.cache.Now = uint64(k.Now)
	}
	var used kernel.Cycles

	// cowClear caches "no copy-on-write charge is pending" so the hot loop
	// can skip the p.CowPending probe. It is trusted only when true: it is
	// set after every chargeCow and dropped whenever something other than
	// guest execution may have touched guest memory (Run entry, syscall
	// filters, analysis calls after the charge point).
	cowClear := false
	// hasRuns caches "the current trace has at least one superblock", a
	// per-trace constant, so fully instrumented traces pay one register
	// test per instruction instead of re-probing RunAt.
	hasRuns := fast && e.cur != nil && e.cur.RunAt != nil

	for {
		if e.cur == nil {
			used += cost.Dispatch
			e.stats.Dispatches++
			if e.Shared != nil {
				used += cost.SharedCheck
			}
			if next := e.linkNext; next != nil && next.Addr == p.Regs.PC {
				// Linked dispatch: the previous exit resolved its
				// successor, so the map lookup is skipped. It still counts
				// as a (hit) lookup so CacheStats match -nofastpath runs.
				e.linkNext = nil
				e.cache.RecordLookup(true)
				e.cur, e.idx = next, 0
			} else {
				e.linkNext = nil
				ct := e.cache.Lookup(p.Regs.PC)
				e.cache.RecordLookup(ct != nil)
				if ct == nil {
					var compileStart time.Time
					if e.mCompile != nil {
						compileStart = time.Now()
					}
					var tr *jit.Trace
					sharedHit := false
					if e.Shared != nil {
						st, ok := e.Shared.Lookup(p.Regs.PC)
						if !ok {
							// A translation this engine built but has not
							// published yet serves the same way: pay the
							// weaving cost, not a rebuild.
							st, ok = e.pendingShared[p.Regs.PC]
						}
						e.Shared.RecordLookup(ok)
						if ok && !st.ContainsBeyondHead(e.SplitPC) {
							tr = st
							sharedHit = true
						}
					}
					if tr == nil {
						var err error
						tr, err = jit.BuildTraceSplit(p.Mem, p.Regs.PC, e.SplitPC)
						if err != nil {
							p.Err = err
							return used, kernel.StopError
						}
						if e.Shared != nil {
							e.queueShared(tr)
						}
					}
					ct = jit.Compile(tr)
					view := newTraceView(tr, ct)
					for _, fn := range e.instrumenters {
						fn(view)
					}
					if e.SA != nil {
						e.annotateLiveness(e.SA, ct)
					}
					if fast {
						e.seal(ct)
					}
					e.cache.Insert(ct)
					if e.hotTier && e.Warm != nil {
						e.applyWarm(ct)
					}
					if e.mCompile != nil {
						e.mCompile.Observe(uint64(time.Since(compileStart)))
					}
					if sharedHit {
						used += kernel.Cycles(ct.NumIns()) * cost.WeavePerIns
					} else {
						used += kernel.Cycles(ct.NumIns()) * cost.CompilePerIns
					}
				}
				if from := e.linkFrom; from != nil {
					from.SetLink(p.Regs.PC, ct, e.cache.Epoch())
					if h := from.Hot; h != nil && h.NextPC == p.Regs.PC {
						// The exiting trace's promoted layout treats this
						// successor as its fall-through: resolve the hot
						// link so future exits skip the link cache.
						h.SetNext(ct, e.cache.Epoch())
					}
					e.linkFrom = nil
				}
				e.cur, e.idx = ct, 0
			}
			e.tickHot(e.cur, false)
			hasRuns = fast && e.cur.RunAt != nil
		}

		// Superblock fast path: execute the call-free run starting at the
		// current instruction in one batched ExecBlock call. Skipped while
		// an uncharged copy-on-write event is pending (possible after a
		// kernel syscall wrote guest memory) so the charge lands at the
		// same instruction as in the reference loop.
		if hasRuns && (cowClear || !p.CowPending()) {
			if ri := e.cur.RunAt[e.idx]; ri >= 0 {
				sb := &e.cur.Sblocks[ri]
				off := e.idx - sb.Start
				var pre uint64
				if off > 0 {
					pre = sb.Cum[off-1]
				}
				avail := len(sb.Block) - off
				// Budget hoisting: the reference loop executes an
				// instruction, then stops if used >= budget. Binary-search
				// the cumulative-cost array for the instruction whose
				// completion crosses the budget; that instruction still
				// executes, everything after it does not.
				allow := avail
				if used >= budget {
					allow = 1
				} else if target := pre + uint64(budget-used); sb.Cum[off+avail-1] >= target {
					// The budget trips somewhere inside the run (rare):
					// binary-search for the crossing instruction.
					lo, hi := off, off+avail
					for lo < hi {
						mid := int(uint(lo+hi) >> 1)
						if sb.Cum[mid] >= target {
							hi = mid
						} else {
							lo = mid + 1
						}
					}
					allow = lo - off + 1
				}
				// Same hoisting for the InsLimit pause point.
				if e.InsLimit != 0 {
					if p.InsCount >= e.InsLimit {
						allow = 1
					} else if rem := e.InsLimit - p.InsCount; uint64(allow) > rem {
						allow = int(rem)
					}
				}
				var n int
				var ev cpu.Event
				var err error
				// Promoted traces run register-cached: a non-zero writeback
				// mask (the run's static written-set) selects the host-local
				// register file executor. Entering mid-run (off > 0) keeps
				// the whole-run mask — a superset writeback writes values
				// the suffix left untouched, which are the values already
				// in the architectural file.
				wb := uint32(0)
				if h := e.cur.Hot; h != nil && h.WB != nil {
					wb = h.WB[ri]
				}
				switch {
				case wb != 0 && pr == nil:
					n, ev, err = cpu.ExecBlockCached(&p.Regs, p.Mem, sb.Block[off:], allow, p.Mem.CopyEvents, wb)
				case wb != 0:
					n, ev, err = cpu.ExecBlockCachedProf(&p.Regs, p.Mem, sb.Block[off:], allow, p.Mem.CopyEvents, pr, wb)
				case pr != nil:
					n, ev, err = cpu.ExecBlockProf(&p.Regs, p.Mem, sb.Block[off:], allow, p.Mem.CopyEvents, pr)
				default:
					n, ev, err = cpu.ExecBlock(&p.Regs, p.Mem, sb.Block[off:], allow, p.Mem.CopyEvents)
				}
				if n > 0 {
					used += kernel.Cycles(sb.Cum[off+n-1]-pre) + chargeCow(p, kcost)
					cowClear = true
					p.InsCount += uint64(n)
					e.stats.ExecIns += uint64(n)
					e.stats.SuperblockIns += uint64(n)
					if e.mBatch != nil {
						// Engine-local batch-size accounting; merged into
						// the shared histogram once per Run call.
						e.locBatch[obs.HistBucket(uint64(n))]++
						e.locBatchSum += uint64(n)
						e.locBatchN++
					}
					if wb != 0 {
						e.stats.HotIns += uint64(n)
					}
					e.idx += n
				}
				if err != nil {
					p.Err = err
					e.cur = nil
					return used, kernel.StopError
				}
				if ev == cpu.EvSyscall {
					// Unreachable by construction — superblocks exclude
					// SYSCALL — but kept identical to the slow path.
					e.cur = nil
					if e.Syscall != nil {
						handled, c, stop := e.Syscall(k, p)
						used += c
						cowClear = false
						if handled {
							if stop != kernel.StopBudget {
								return used, stop
							}
							if used >= budget || e.limitReached(p) {
								return used, kernel.StopBudget
							}
							continue
						}
					}
					return used, kernel.StopSyscall
				}
				if e.idx >= len(e.cur.Ins) || e.cur.Ins[e.idx].Addr != p.Regs.PC {
					if p.Regs.PC == e.cur.Addr && used < budget && !e.limitReached(p) {
						e.selfLoop(&used)
						continue
					}
					e.leaveTrace(p.Regs.PC, fast)
				}
				if used >= budget || e.limitReached(p) {
					return used, kernel.StopBudget
				}
				continue
			}
		}

		ci := &e.cur.Ins[e.idx]
		ctx.PC = ci.Addr
		ctx.Inst = ci.Inst

		// IPOINT_BEFORE analysis calls. A stop request here terminates
		// the run before the instruction executes, with the PC still at
		// the instrumented instruction — the semantics SuperPin's
		// boundary detection needs.
		for i := range ci.Before {
			used += e.runCall(ctx, &ci.Before[i], ci.LiveBefore, e.hoistedAt(e.idx))
			if ctx.StopRequested() {
				e.cur = nil
				return used, kernel.StopExit
			}
		}

		ev, err := cpu.Exec(&p.Regs, p.Mem, ci.Inst)
		if err != nil {
			p.Err = err
			e.cur = nil
			return used, kernel.StopError
		}
		used += cost.Exec
		if ci.Inst.Op.IsMem() {
			used += cost.MemSurcharge
		}
		used += chargeCow(p, kcost)
		cowClear = true
		p.InsCount++
		e.stats.ExecIns++
		if pr != nil {
			// The probe observes the retired instruction here — after its
			// architectural effects, before After-point analysis calls and
			// syscall servicing — the same point as the native interpreter
			// and the superblock fast path, so all modes sample identically.
			pr.OnExec(ci.Inst, ci.Addr+isa.WordSize, p.Regs.PC)
		}

		// IPOINT_AFTER analysis calls. They may write guest memory, so the
		// cached no-pending-COW flag is dropped.
		for i := range ci.After {
			cowClear = false
			used += e.runCall(ctx, &ci.After[i], ci.LiveAfter, e.hoistedAt(e.idx))
			if ctx.StopRequested() {
				e.cur = nil
				return used, kernel.StopExit
			}
		}

		if ev == cpu.EvSyscall {
			e.cur = nil
			if e.Syscall != nil {
				handled, c, stop := e.Syscall(k, p)
				used += c
				cowClear = false
				if handled {
					if stop != kernel.StopBudget {
						return used, stop
					}
					if used >= budget || e.limitReached(p) {
						return used, kernel.StopBudget
					}
					continue
				}
			}
			return used, kernel.StopSyscall
		}

		// Fall through within the trace if the PC matches the next
		// compiled instruction; otherwise re-dispatch.
		e.idx++
		if e.idx >= len(e.cur.Ins) || e.cur.Ins[e.idx].Addr != p.Regs.PC {
			if fast && p.Regs.PC == e.cur.Addr && used < budget && !e.limitReached(p) {
				e.selfLoop(&used)
				continue
			}
			e.leaveTrace(p.Regs.PC, fast)
		}
		if used >= budget || e.limitReached(p) {
			return used, kernel.StopBudget
		}
	}
}

// selfLoop re-enters the current trace at its head: the exit branched
// back to the trace's own entry (a hot loop body), so the dispatcher's
// map lookup and the link-cache round trip are both skipped. Virtual
// accounting is unchanged — the dispatch cycles are charged and the
// logical (hit) lookup is counted exactly as the reference loop does.
// Callers must have checked that the budget and InsLimit have not been
// reached, since a real trace exit would stop before re-dispatching.
func (e *Engine) selfLoop(used *kernel.Cycles) {
	*used += e.Cost.Dispatch
	if e.Shared != nil {
		*used += e.Cost.SharedCheck
	}
	e.stats.Dispatches++
	e.cache.RecordLookup(true)
	e.tickHot(e.cur, true)
	e.idx = 0
}

// leaveTrace ends execution of the current trace with control headed to
// nextPC. With the fast path on it consults the trace's successor cache:
// on a hit the target is staged in linkNext for the upcoming dispatch to
// consume without a map lookup; on a miss the trace is remembered in
// linkFrom so that dispatch can record the resolved successor. The
// dispatch cost itself is always charged at the top of the loop, keeping
// virtual-cycle accounting identical with -nofastpath.
func (e *Engine) leaveTrace(nextPC uint32, fast bool) {
	if fast {
		if h := e.cur.Hot; h != nil {
			if h.NextPC == nextPC {
				// Promoted layout: this exit is the trace's measured
				// fall-through. An epoch-valid hot link stages the successor
				// directly; a stale one was evicted by a flush and is
				// dropped. The first-tier link counters are left alone —
				// they keep describing the link cache only (jitdiff
				// normalizes them; HotLinkHits is the hot tier's own
				// counter).
				if next, _ := h.Next(e.cache.Epoch()); next != nil {
					e.stats.HotLinkHits++
					e.linkNext = next
					e.cur = nil
					return
				}
				// Unresolved: fall through to the link cache; its miss path
				// stages linkFrom, and the next dispatch resolves both the
				// link-cache entry and the hot link.
			}
		} else if e.hotTier {
			e.cur.Exits.Record(nextPC)
		}
		if next, stale := e.cur.Link(nextPC, e.cache.Epoch()); next != nil {
			e.cache.RecordLink(true)
			e.linkNext = next
		} else {
			if stale {
				e.cache.RecordLinkInvalidation()
			}
			e.cache.RecordLink(false)
			e.linkFrom = e.cur
		}
	}
	e.cur = nil
}

// minSuperblockIns is the shortest call-free run worth batching: the
// fast path's setup (run lookup, budget search, batched accounting)
// costs more than the reference loop saves on a run of one.
const minSuperblockIns = 2

// fastEligible reports whether a compiled instruction may live inside a
// superblock: it must carry no analysis calls (nothing to run between
// instructions) and must not trap (SYSCALL returns to the kernel).
func fastEligible(ci *jit.CompiledIns) bool {
	return len(ci.Before) == 0 && len(ci.After) == 0 && ci.Inst.Op != isa.OpSYSCALL
}

// sealFastPaths precomputes a trace's superblock index without a static
// analysis attached — the reference sealing path, kept for tests and as
// the documentation of what seal computes.
func sealFastPaths(ct *jit.CompiledTrace, cost CostModel) {
	(&Engine{Cost: cost}).seal(ct)
}

// sharedRun returns the analysis's load-time predecode slice covering
// the run ct.Ins[i:j], or nil when no analysis is attached or the
// predecode no longer matches the freshly compiled trace. Traces are
// address-contiguous, so a run maps onto one region slice; each entry is
// validated against the compiled instruction, which catches predecode
// gone stale through self-modifying code — execution must follow what
// the trace (compiled from current guest memory) says, never the
// load-time image.
func (e *Engine) sharedRun(ct *jit.CompiledTrace, i, j int) []cpu.BlockIns {
	if e.SA == nil {
		return nil
	}
	pre, ok := e.SA.Predecoded(ct.Ins[i].Addr)
	if !ok || len(pre) < j-i {
		return nil
	}
	pre = pre[: j-i : j-i]
	for x := i; x < j; x++ {
		if pre[x-i].Inst != ct.Ins[x].Inst {
			return nil
		}
	}
	return pre
}

// runSpan is one superblock run found by seal's sizing pass.
type runSpan struct {
	i, j   int
	shared []cpu.BlockIns // non-nil: use the analysis's predecode
}

// seal precomputes a freshly instrumented trace's superblock index:
// maximal runs of fast-eligible instructions, predecoded for
// cpu.ExecBlock, with cumulative per-run cycle costs so the dispatch
// loop can batch accounting and hoist the budget checks out of the
// per-instruction path. Runs after the tool's instrumenters, which are
// what decide eligibility.
//
// Sealing runs on every compile, so allocation cost matters: a sizing
// pass finds the runs (into an engine-owned scratch slice) before a fill
// pass allocates single backing arrays. With a static analysis attached,
// runs that still match the load-time image borrow its shared predecode
// instead of building a private copy.
func (e *Engine) seal(ct *jit.CompiledTrace) {
	cost := e.Cost
	n := len(ct.Ins)
	spans := e.sealScratch[:0]
	covered, private := 0, 0
	for i := 0; i < n; {
		if !fastEligible(&ct.Ins[i]) {
			i++
			continue
		}
		j := i + 1
		for j < n && fastEligible(&ct.Ins[j]) {
			j++
		}
		if j-i >= minSuperblockIns {
			sp := runSpan{i: i, j: j, shared: e.sharedRun(ct, i, j)}
			covered += j - i
			if sp.shared == nil {
				private += j - i
			}
			spans = append(spans, sp)
		}
		i = j
	}
	e.sealScratch = spans
	if len(spans) == 0 {
		return
	}
	runAt := make([]int32, n)
	for r := range runAt {
		runAt[r] = -1
	}
	var blocks []cpu.BlockIns
	if private > 0 {
		blocks = make([]cpu.BlockIns, private)
	}
	cums := make([]uint64, covered)
	sblocks := make([]jit.Superblock, 0, len(spans))
	bpos, cpos := 0, 0
	for _, sp := range spans {
		i, j := sp.i, sp.j
		sb := jit.Superblock{
			Start: i,
			Block: sp.shared,
			Cum:   cums[cpos : cpos+j-i : cpos+j-i],
		}
		cpos += j - i
		if sp.shared == nil {
			sb.Block = blocks[bpos : bpos+j-i : bpos+j-i]
			bpos += j - i
			if e.SA != nil {
				e.stats.SAPrivateRuns++
			}
		} else {
			e.stats.SASharedRuns++
		}
		var cum uint64
		ri := int32(len(sblocks))
		for x := i; x < j; x++ {
			ci := &ct.Ins[x]
			cum += uint64(cost.Exec)
			if ci.Inst.Op.IsMem() {
				cum += uint64(cost.MemSurcharge)
			}
			if sp.shared == nil {
				sb.Block[x-i] = cpu.BlockIns{Inst: ci.Inst, Next: ci.Addr + isa.WordSize}
			}
			sb.Cum[x-i] = cum
			runAt[x] = ri
		}
		sblocks = append(sblocks, sb)
	}
	ct.Sblocks = sblocks
	ct.RunAt = runAt
}

// annotateLiveness stamps the analysis's per-instruction liveness masks
// onto the call-carrying instructions of a freshly compiled trace, so
// runCall's predicate save/restore can skip dead registers. Instructions
// without calls are left unstamped (the masks are only consulted at call
// sites).
//
// If-calls carrying a declared predicate shape (InsertIfCondCall) are
// additionally offered to the value analysis: a comparison ProveCond
// decides gets its Fold verdict stamped, and runCall skips evaluating
// the predicate there — guarded at run time by Mem.CodeWritten, which
// retracts every verdict if the program modifies its code after load.
func (e *Engine) annotateLiveness(a *sa.Analysis, ct *jit.CompiledTrace) {
	for i := range ct.Ins {
		ci := &ct.Ins[i]
		if len(ci.Before) > 0 {
			ci.LiveBefore = a.LiveIn(ci.Addr)
			e.stampFolds(a, ci.Addr, ci.Before)
		}
		if len(ci.After) > 0 {
			ci.LiveAfter = a.LiveOut(ci.Addr)
			e.stampFolds(a, ci.Addr, ci.After)
		}
	}
}

// stampFolds resolves declared predicate shapes at one call site
// against the value analysis. Both insertion points of an instruction
// prove against the state entering it: predicates are pure observers,
// so the registers they compare are unchanged until the instruction's
// own writeback, and After-calls on writers of their compared register
// are the tool's error by the InsertIfCondCall contract.
func (e *Engine) stampFolds(a *sa.Analysis, addr uint32, calls []jit.Call) {
	for i := range calls {
		c := &calls[i]
		if c.If == nil || c.Cond.Kind == jit.CondNone || c.Fold != jit.FoldUnknown {
			continue
		}
		res, proven := a.ProveCond(addr, sa.Cond{
			Kind: sa.CondKind(c.Cond.Kind),
			Reg:  c.Cond.Reg,
			Imm:  c.Cond.Imm,
		})
		if !proven {
			continue
		}
		if res {
			c.Fold = jit.FoldTrue
		} else {
			c.Fold = jit.FoldFalse
		}
		e.stats.FoldedSites++
	}
}

// limitReached reports whether the InsLimit pause point has been hit.
func (e *Engine) limitReached(p *kernel.Proc) bool {
	return e.InsLimit != 0 && p.InsCount >= e.InsLimit
}

// ResetPosition discards the engine's intra-trace execution position.
// Callers that swap the process's register context (SuperPin's thread
// replay) must call it so dispatch restarts from the new PC. In-flight
// trace-link state is keyed to the pre-swap PC, so it is dropped too.
func (e *Engine) ResetPosition() {
	e.cur = nil
	e.linkNext = nil
	e.linkFrom = nil
}

// allLive is the save/restore mask covering the whole register file,
// used when no liveness information is stamped on the call site (a zero
// mask means "unknown" — the static analysis always sets bit 0).
const allLive = ^uint32(0)

// runCall executes one analysis call site and returns its cycle cost.
// live is the statically-live register mask at the site (zero when
// unknown).
//
// Around an inlined if/then predicate, Pin saves the registers the
// predicate could observe clobbered and restores them afterwards; with
// liveness information it only spills the statically-live subset. The
// engine models that host-side work here: snapshot the live registers,
// run the predicate, restore. Predicates never write guest registers
// (they are pure observers), so the restore is semantically a no-op and
// virtual results are identical with or without the analysis — only the
// PredSaveRegs host counter moves. A stale mask (self-modifying code
// after load) is harmless for the same reason.
//
// hoisted marks a spill the hot tier proved redundant at promotion
// (promote.go): the snapshot/restore pair is skipped entirely — sound for
// the same pure-observer reason the restore is a no-op — and only the
// HoistedSaves host counter moves. The predicate, its virtual-cycle
// charge and the then-call are untouched.
func (e *Engine) runCall(ctx *jit.Ctx, c *jit.Call, live uint32, hoisted bool) kernel.Cycles {
	cost := e.Cost
	if c.Fn != nil {
		e.stats.AnalysisCalls++
		c.Fn(ctx)
		return cost.Call
	}
	e.stats.IfCalls++
	cy := cost.IfCall
	var fire bool
	if c.Fold != jit.FoldUnknown && !ctx.Mem.CodeWritten() {
		// The value analysis decided this predicate at compile time; the
		// evaluation (and its spill) is skipped, the verdict substituted.
		// The virtual IfCall charge stands — folding is host-side work
		// elimination, virtual results stay byte-identical. CodeWritten
		// retracts the verdict if the program has modified its code since
		// the analysis read it.
		e.stats.FoldedPreds++
		fire = c.Fold == jit.FoldTrue
	} else if hoisted {
		e.stats.HoistedSaves++
		fire = c.If(ctx)
	} else {
		mask := live
		if mask == 0 {
			mask = allLive
		}
		var buf [isa.NumRegs]uint32
		pc := ctx.Regs.PC
		n := cpu.SaveMasked(ctx.Regs, mask, &buf)
		fire = c.If(ctx)
		cpu.RestoreMasked(ctx.Regs, mask, &buf)
		ctx.Regs.PC = pc
		e.stats.PredSaveRegs += uint64(n)
	}
	if fire && c.Then != nil {
		e.stats.ThenCalls++
		c.Then(ctx)
		cy += cost.ThenCall
	}
	return cy
}

// hoistedAt reports whether the current trace's promoted layout
// suppressed the predicate spill at compiled instruction idx.
func (e *Engine) hoistedAt(idx int) bool {
	h := e.cur.Hot
	return h != nil && h.Hoist != nil && h.Hoist[idx]
}

// chargeCow charges copy-on-write page copies triggered by the last
// instruction, mirroring kernel.NativeRunner's accounting.
func chargeCow(p *kernel.Proc, cost kernel.CostModel) kernel.Cycles {
	return p.ChargeCow(cost)
}
