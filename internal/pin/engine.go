package pin

import (
	"superpin/internal/cpu"
	"superpin/internal/jit"
	"superpin/internal/kernel"
	"superpin/internal/obs"
)

// CostModel holds the engine's calibrated per-operation cycle costs. The
// defaults reproduce the overhead structure the paper reports: a plain
// per-instruction InsertCall (icount1) costs about 10 extra cycles per
// instruction — a ~12X slowdown once dispatch and compilation are added —
// while a per-basic-block call (icount2) amortizes the same cost over the
// block.
type CostModel struct {
	// CompilePerIns is the JIT cost per compiled instruction.
	CompilePerIns kernel.Cycles
	// Dispatch is the cost of one code-cache dispatch (trace lookup and
	// entry).
	Dispatch kernel.Cycles
	// Exec is the cost of executing one translated guest instruction.
	Exec kernel.Cycles
	// Call is the cost of a plain analysis call, including the register
	// save/restore sequence Pin generates around it.
	Call kernel.Cycles
	// IfCall is the cost of an inlined InsertIfCall predicate.
	IfCall kernel.Cycles
	// ThenCall is the cost of an InsertThenCall routine when its
	// predicate fires.
	ThenCall kernel.Cycles
	// WeavePerIns is the per-instruction cost of instrumenting a
	// translation obtained from a shared trace cache (the translation
	// itself was paid for once by whoever built it).
	WeavePerIns kernel.Cycles
	// SharedCheck is the per-dispatch consistency-check surcharge paid
	// when a shared trace cache is attached (paper Section 8: "a little
	// extra overhead by performing extra consistency checks").
	SharedCheck kernel.Cycles
	// MemSurcharge is an extra cost per memory instruction, modeling the
	// cache behavior of the instrumented run (per-benchmark; see
	// internal/workload). Zero for most benchmarks.
	MemSurcharge kernel.Cycles
	// CacheCapacity is the code-cache capacity in compiled instructions
	// (<= 0 for unlimited). Applications whose footprint exceeds it
	// trigger whole-cache flushes and recompilation.
	CacheCapacity int
}

// DefaultCost returns the calibrated default engine cost model.
func DefaultCost() CostModel {
	return CostModel{
		CompilePerIns: 60,
		Dispatch:      3,
		Exec:          1,
		Call:          10,
		IfCall:        2,
		ThenCall:      12,
		WeavePerIns:   15,
		SharedCheck:   1,
		CacheCapacity: 32768,
	}
}

// Stats are cumulative engine execution statistics.
type Stats struct {
	ExecIns       uint64
	AnalysisCalls uint64
	IfCalls       uint64
	ThenCalls     uint64
	Dispatches    uint64
}

// SyscallFilter lets a wrapper (SuperPin's slice engine) intercept guest
// system calls before they reach the kernel. It is invoked with the
// process stopped at the instruction after the SYSCALL. Returning
// handled=true consumes the syscall (the filter has applied its effects);
// stop, when non-zero alongside handled, terminates the run with that
// reason (used when playback reaches a slice's boundary syscall).
type SyscallFilter func(k *kernel.Kernel, p *kernel.Proc) (handled bool, cost kernel.Cycles, stop kernel.StopReason)

// Engine is one instance of the instrumentation VM: a code cache plus the
// registered instrumentation and fini callbacks. Each instrumented
// process owns its own Engine — in SuperPin mode every slice gets a fresh
// one, which is exactly the paper's "each slice has its own copy of the
// code cache, and it starts in a clean state" compilation overhead.
type Engine struct {
	// Cost is the engine's cycle-cost model. Mutable until first Run.
	Cost CostModel

	// Syscall, when non-nil, filters guest syscalls (see SyscallFilter).
	Syscall SyscallFilter

	// SplitPC, when non-zero, forces a trace (and basic-block) boundary
	// at that address during compilation. SuperPin sets it to the
	// slice's end-signature PC so block-granularity instrumentation
	// stays exact across a mid-block slice boundary.
	SplitPC uint32

	// Shared, when non-nil, is a translation cache shared with other
	// engines (SuperPin's Section 8 shared-code-cache mode): on a local
	// code-cache miss the engine reuses a shared translation when one
	// exists, paying only the instrumentation-weaving cost, and
	// publishes translations it builds itself. Traces crossing this
	// engine's SplitPC are never adopted from the shared cache.
	Shared *jit.TraceCache

	// InsLimit, when non-zero, pauses execution (StopBudget) once the
	// process's total InsCount reaches it. SuperPin's deterministic
	// thread replay uses it to stop a thread's burst at exactly the
	// instruction count the master recorded.
	InsLimit uint64

	cache         *jit.CodeCache
	instrumenters []func(*Trace)
	finiFns       []func(code uint32)
	ctx           jit.Ctx
	cur           *jit.CompiledTrace
	idx           int
	stats         Stats
	trace         *obs.Tracer
}

// NewEngine creates an engine with the given cost model.
func NewEngine(cost CostModel) *Engine {
	return &Engine{Cost: cost, cache: jit.NewCodeCache(cost.CacheCapacity)}
}

// AddTraceInstrumenter registers a trace-time instrumentation callback,
// the analogue of TRACE_AddInstrumentFunction. Callbacks run in
// registration order each time a trace is compiled.
func (e *Engine) AddTraceInstrumenter(fn func(*Trace)) {
	e.instrumenters = append(e.instrumenters, fn)
}

// AddFiniFunction registers a callback for Fini, the analogue of
// PIN_AddFiniFunction.
func (e *Engine) AddFiniFunction(fn func(code uint32)) {
	e.finiFns = append(e.finiFns, fn)
}

// Fini runs the registered fini callbacks in order.
func (e *Engine) Fini(code uint32) {
	for _, fn := range e.finiFns {
		fn(code)
	}
}

// RequestStop asks the engine to stop before the next instruction
// executes. It is only meaningful when called from within an analysis
// routine running on this engine (SuperPin's SP_EndSlice uses it).
func (e *Engine) RequestStop() { e.ctx.RequestStop() }

// AttachObs connects the engine (and its code cache) to a tracer, with
// pid identifying the instrumented process in emitted events. Compile
// and flush events carry the virtual time of the engine's current Run
// call. Passing a nil tracer detaches.
func (e *Engine) AttachObs(t *obs.Tracer, pid int32) {
	e.trace = t
	e.cache.Trace = t
	e.cache.PID = pid
}

// PublishMetrics publishes the engine's cumulative statistics into m
// under the given dotted prefix (e.g. "pin"). Counters accumulate, so
// publishing several engines under one prefix sums them. No-op when m
// is nil.
func (e *Engine) PublishMetrics(m *obs.Metrics, prefix string) {
	if m == nil {
		return
	}
	m.Add(prefix+".exec_ins", e.stats.ExecIns)
	m.Add(prefix+".analysis_calls", e.stats.AnalysisCalls)
	m.Add(prefix+".if_calls", e.stats.IfCalls)
	m.Add(prefix+".then_calls", e.stats.ThenCalls)
	m.Add(prefix+".dispatches", e.stats.Dispatches)
	cs := e.cache.Stats()
	m.Add(prefix+".cache.lookups", cs.Lookups)
	m.Add(prefix+".cache.misses", cs.Misses)
	m.Add(prefix+".cache.compiles", cs.Compiles)
	m.Add(prefix+".cache.compiled_ins", cs.CompiledIns)
	m.Add(prefix+".cache.flushes", cs.Flushes)
	if e.Shared != nil {
		ts := e.Shared.Stats()
		m.Add(prefix+".shared.hits", ts.Hits)
		m.Add(prefix+".shared.misses", ts.Misses)
	}
}

// Stats returns cumulative execution statistics.
func (e *Engine) Stats() Stats { return e.stats }

// CacheStats returns cumulative code-cache statistics.
func (e *Engine) CacheStats() jit.CacheStats { return e.cache.Stats() }

// FlushCache discards all compiled traces (used by tests and by cache
// pressure experiments).
func (e *Engine) FlushCache() { e.cache.Flush(); e.cur = nil }

// Run implements kernel.Runner: it executes up to budget cycles of
// instrumented guest code for p.
func (e *Engine) Run(k *kernel.Kernel, p *kernel.Proc, budget kernel.Cycles) (kernel.Cycles, kernel.StopReason) {
	cost := e.Cost
	kcost := k.Config().Cost
	ctx := &e.ctx
	ctx.Regs = &p.Regs
	ctx.Mem = p.Mem
	if e.trace != nil {
		// k.Now is frozen for the duration of this Run call, so stamping
		// once per call gives compile/flush events their correct time.
		e.cache.Now = uint64(k.Now)
	}
	var used kernel.Cycles

	for {
		if e.cur == nil {
			used += cost.Dispatch
			e.stats.Dispatches++
			if e.Shared != nil {
				used += cost.SharedCheck
			}
			ct := e.cache.Lookup(p.Regs.PC)
			e.cache.RecordLookup(ct != nil)
			if ct == nil {
				var tr *jit.Trace
				sharedHit := false
				if e.Shared != nil {
					st, ok := e.Shared.Lookup(p.Regs.PC)
					e.Shared.RecordLookup(ok)
					if ok && !st.ContainsBeyondHead(e.SplitPC) {
						tr = st
						sharedHit = true
					}
				}
				if tr == nil {
					var err error
					tr, err = jit.BuildTraceSplit(p.Mem, p.Regs.PC, e.SplitPC)
					if err != nil {
						p.Err = err
						return used, kernel.StopError
					}
					if e.Shared != nil {
						e.Shared.Insert(tr)
					}
				}
				ct = jit.Compile(tr)
				view := newTraceView(tr, ct)
				for _, fn := range e.instrumenters {
					fn(view)
				}
				e.cache.Insert(ct)
				if sharedHit {
					used += kernel.Cycles(ct.NumIns()) * cost.WeavePerIns
				} else {
					used += kernel.Cycles(ct.NumIns()) * cost.CompilePerIns
				}
			}
			e.cur, e.idx = ct, 0
		}

		ci := &e.cur.Ins[e.idx]
		ctx.PC = ci.Addr
		ctx.Inst = ci.Inst

		// IPOINT_BEFORE analysis calls. A stop request here terminates
		// the run before the instruction executes, with the PC still at
		// the instrumented instruction — the semantics SuperPin's
		// boundary detection needs.
		for i := range ci.Before {
			used += e.runCall(ctx, &ci.Before[i])
			if ctx.StopRequested() {
				e.cur = nil
				return used, kernel.StopExit
			}
		}

		ev, err := cpu.Exec(&p.Regs, p.Mem, ci.Inst)
		if err != nil {
			p.Err = err
			e.cur = nil
			return used, kernel.StopError
		}
		used += cost.Exec
		if ci.Inst.Op.IsMem() {
			used += cost.MemSurcharge
		}
		used += chargeCow(p, kcost)
		p.InsCount++
		e.stats.ExecIns++

		// IPOINT_AFTER analysis calls.
		for i := range ci.After {
			used += e.runCall(ctx, &ci.After[i])
			if ctx.StopRequested() {
				e.cur = nil
				return used, kernel.StopExit
			}
		}

		if ev == cpu.EvSyscall {
			e.cur = nil
			if e.Syscall != nil {
				handled, c, stop := e.Syscall(k, p)
				used += c
				if handled {
					if stop != kernel.StopBudget {
						return used, stop
					}
					if used >= budget || e.limitReached(p) {
						return used, kernel.StopBudget
					}
					continue
				}
			}
			return used, kernel.StopSyscall
		}

		// Fall through within the trace if the PC matches the next
		// compiled instruction; otherwise re-dispatch.
		e.idx++
		if e.idx >= len(e.cur.Ins) || e.cur.Ins[e.idx].Addr != p.Regs.PC {
			e.cur = nil
		}
		if used >= budget || e.limitReached(p) {
			return used, kernel.StopBudget
		}
	}
}

// limitReached reports whether the InsLimit pause point has been hit.
func (e *Engine) limitReached(p *kernel.Proc) bool {
	return e.InsLimit != 0 && p.InsCount >= e.InsLimit
}

// ResetPosition discards the engine's intra-trace execution position.
// Callers that swap the process's register context (SuperPin's thread
// replay) must call it so dispatch restarts from the new PC.
func (e *Engine) ResetPosition() { e.cur = nil }

// runCall executes one analysis call site and returns its cycle cost.
func (e *Engine) runCall(ctx *jit.Ctx, c *jit.Call) kernel.Cycles {
	cost := e.Cost
	if c.Fn != nil {
		e.stats.AnalysisCalls++
		c.Fn(ctx)
		return cost.Call
	}
	e.stats.IfCalls++
	cy := cost.IfCall
	if c.If(ctx) && c.Then != nil {
		e.stats.ThenCalls++
		c.Then(ctx)
		cy += cost.ThenCall
	}
	return cy
}

// chargeCow charges copy-on-write page copies triggered by the last
// instruction, mirroring kernel.NativeRunner's accounting.
func chargeCow(p *kernel.Proc, cost kernel.CostModel) kernel.Cycles {
	return p.ChargeCow(cost)
}
