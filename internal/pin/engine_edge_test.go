package pin

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/jit"
	"superpin/internal/kernel"
	"superpin/internal/mem"
)

// runToExit drives a program to completion under an engine inside a
// kernel, returning the proc.
func runToExit(t *testing.T, src string, setup func(*Engine)) (*kernel.Proc, *Engine) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 1_000_000_000
	k := kernel.New(cfg)
	e := NewEngine(DefaultCost())
	if setup != nil {
		setup(e)
	}
	proc := k.Spawn("t", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return proc, e
}

const tinyLoop = `
	li r10, 0
	li r11, 500
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	li r1, 1
	li r2, 0
	syscall
`

func TestSplitPCMakesBoundaryALeader(t *testing.T) {
	p, err := asm.Assemble(tinyLoop)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	// The loop body is [entry+8, entry+12]; split inside it.
	split := p.Entry + 12
	tr, err := jit.BuildTraceSplit(m, p.Entry, split)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Bbls {
		for i := 1; i < b.NumIns(); i++ {
			if b.InsAddr(i) == split {
				t.Fatalf("split address %#x is not a block leader", split)
			}
		}
	}
	// A trace built at the split must exist independently.
	tr2, err := jit.BuildTraceSplit(m, split, split)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Addr != split {
		t.Fatalf("trace at split starts at %#x", tr2.Addr)
	}
}

func TestAfterStopRequestStopsBeforeNextInstruction(t *testing.T) {
	var stopAt uint32
	count := 0
	proc, _ := runToExit(t, tinyLoop, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(After, func(c *Ctx) {
						count++
						if count == 100 {
							stopAt = c.Regs.PC // already-advanced PC
							c.RequestStop()
						}
					})
				}
			}
		})
	})
	if count != 100 {
		t.Fatalf("after-calls ran %d times", count)
	}
	if proc.InsCount != 100 {
		t.Fatalf("executed %d instructions, want 100 (stop after the 100th)", proc.InsCount)
	}
	if proc.Regs.PC != stopAt {
		t.Fatalf("PC = %#x, want %#x", proc.Regs.PC, stopAt)
	}
}

func TestSharedTraceCacheAcrossEngines(t *testing.T) {
	p, err := asm.Assemble(tinyLoop)
	if err != nil {
		t.Fatal(err)
	}
	shared := jit.NewTraceCache()

	runWith := func() *Engine {
		m := mem.New()
		p.LoadInto(m)
		regs := cpu.Regs{PC: p.Entry}
		regs.R[isa.RegSP] = 0x00f0_0000
		cfg := kernel.DefaultConfig()
		cfg.MaxCycles = 1_000_000_000
		k := kernel.New(cfg)
		e := NewEngine(DefaultCost())
		e.Shared = shared
		k.Spawn("t", m, regs, e)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	runWith()
	missesAfterFirst := shared.Stats().Misses
	runWith()
	st := shared.Stats()
	if st.Hits == 0 {
		t.Fatal("second engine never hit the shared cache")
	}
	if st.Misses != missesAfterFirst {
		t.Fatalf("second engine missed (%d -> %d): translations not shared",
			missesAfterFirst, st.Misses)
	}
}

func TestSharedCacheRespectsSplitPC(t *testing.T) {
	p, err := asm.Assemble(tinyLoop)
	if err != nil {
		t.Fatal(err)
	}
	shared := jit.NewTraceCache()

	// First engine publishes unsplit traces.
	m1 := mem.New()
	p.LoadInto(m1)
	tr, err := jit.BuildTrace(m1, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	shared.Insert(tr)
	split := p.Entry + 12
	if !tr.ContainsBeyondHead(split) {
		t.Fatalf("test setup: %#x not inside the shared trace", split)
	}

	// An engine with that split must not adopt the shared trace; its
	// compiled trace must end before the split.
	m2 := mem.New()
	p.LoadInto(m2)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 1_000_000_000
	k := kernel.New(cfg)
	e := NewEngine(DefaultCost())
	e.Shared = shared
	e.SplitPC = split
	var bblStarts []uint32
	e.AddTraceInstrumenter(func(tr *Trace) {
		for _, bbl := range tr.Bbls() {
			bblStarts = append(bblStarts, bbl.Addr())
			for i := 1; i < bbl.NumIns(); i++ {
				if bbl.Addr()+uint32(4*i) == split {
					t.Errorf("split %#x compiled mid-block", split)
				}
			}
		}
	})
	k.Spawn("t", m2, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range bblStarts {
		if a == split {
			found = true
		}
	}
	if !found {
		t.Fatal("split address never became a block leader")
	}
}

func TestEngineSurvivesCacheFlushMidTrace(t *testing.T) {
	// A capacity-1-trace cache forces a flush on every compile; the
	// engine's current-trace pointer must remain valid. The capacity must
	// hold tinyLoop's largest trace (7 instructions) but not two traces,
	// since a single trace exceeding the whole capacity is now admitted
	// capacity-exempt and would never trigger a flush.
	cost := DefaultCost()
	cost.CacheCapacity = 8
	p, err := asm.Assemble(tinyLoop)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 2_000_000_000
	k := kernel.New(cfg)
	e := NewEngine(cost)
	proc := k.Spawn("t", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !proc.Exited() || proc.ExitCode != 0 {
		t.Fatalf("state %v code %d", proc.State, proc.ExitCode)
	}
	if e.CacheStats().Flushes == 0 {
		t.Fatal("no flushes despite tiny capacity")
	}
}
