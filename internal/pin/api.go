// Package pin implements the dynamic binary instrumentation engine that
// SuperPin is built on — a workalike of Intel Pin's VM at the level of
// detail the paper depends on (Section 2.2): a JIT that compiles guest
// code into instrumented traces held in a code cache, a dispatcher, and a
// Pintool instrumentation API with TRACE/BBL/INS objects, InsertCall, and
// the inlined InsertIfCall / InsertThenCall pair used by SuperPin's
// signature detector.
//
// A Pintool registers a trace-instrumentation callback; at compile time
// the callback walks the trace's basic blocks and instructions and
// attaches analysis calls; at run time the engine executes the
// instrumented trace, charging the calibrated cycle costs of analysis
// calls, compilation and dispatch to the owning process's virtual time.
//
// # Error handling
//
// The Insert* functions panic on misuse: a nil analysis function or
// predicate, or an InsertThenCall with no preceding unpaired
// InsertIfCall. These are programmer errors in the Pintool itself —
// detectable the first time the tool's instrumentation callback runs,
// never dependent on user input — so they fail loudly at the call site
// rather than propagating errors through every instrumentation
// callback, mirroring Pin's own usage contract. Configuration errors
// (user-supplied cache geometry, sampling budgets) are returned as
// ordinary errors by the tool constructors in internal/tools.
package pin

import (
	"fmt"

	"superpin/internal/isa"
	"superpin/internal/jit"
)

// Re-exported instrumentation types. Analysis routines receive a *Ctx
// exposing the instrumented process's architectural state.
type (
	// Ctx is the analysis-time context (see jit.Ctx).
	Ctx = jit.Ctx
	// AnalysisFn is a plain analysis routine.
	AnalysisFn = jit.AnalysisFn
	// PredicateFn is an inlined conditional analysis routine.
	PredicateFn = jit.PredicateFn
)

// IPoint selects where an analysis call is inserted relative to an
// instruction, mirroring Pin's IPOINT_BEFORE / IPOINT_AFTER.
type IPoint uint8

// Insertion points.
const (
	Before IPoint = iota
	After
)

// Trace is the instrumentation-time view of a compiled trace.
type Trace struct {
	ct   *jit.CompiledTrace
	bbls []*Bbl
}

// Bbl is the instrumentation-time view of a basic block within a trace.
type Bbl struct {
	trace *Trace
	addr  uint32
	start int // index of first instruction in trace
	n     int
}

// Ins is the instrumentation-time view of one instruction.
type Ins struct {
	trace *Trace
	idx   int
}

// newTraceView wraps a compiled trace and its source trace for
// instrumentation callbacks.
func newTraceView(tr *jit.Trace, ct *jit.CompiledTrace) *Trace {
	t := &Trace{ct: ct}
	idx := 0
	for _, b := range tr.Bbls {
		t.bbls = append(t.bbls, &Bbl{trace: t, addr: b.Addr, start: idx, n: b.NumIns()})
		idx += b.NumIns()
	}
	return t
}

// Addr returns the trace's entry address.
func (t *Trace) Addr() uint32 { return t.ct.Addr }

// NumIns returns the number of instructions in the trace.
func (t *Trace) NumIns() int { return t.ct.NumIns() }

// Bbls returns the trace's basic blocks in order.
func (t *Trace) Bbls() []*Bbl { return t.bbls }

// Addr returns the block's entry address.
func (b *Bbl) Addr() uint32 { return b.addr }

// NumIns returns the number of instructions in the block.
func (b *Bbl) NumIns() int { return b.n }

// InsHead returns the block's first instruction.
func (b *Bbl) InsHead() *Ins { return &Ins{trace: b.trace, idx: b.start} }

// Ins returns the block's instructions in order.
func (b *Bbl) Ins() []*Ins {
	out := make([]*Ins, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = &Ins{trace: b.trace, idx: b.start + i}
	}
	return out
}

// InsertCall attaches a plain analysis call to the head of the block,
// the idiom used by basic-block-granularity tools such as icount2.
func (b *Bbl) InsertCall(when IPoint, fn AnalysisFn) {
	b.InsHead().InsertCall(when, fn)
}

func (i *Ins) slot() *jit.CompiledIns { return &i.trace.ct.Ins[i.idx] }

// Addr returns the instruction's address.
func (i *Ins) Addr() uint32 { return i.slot().Addr }

// Inst returns the decoded instruction.
func (i *Ins) Inst() isa.Inst { return i.slot().Inst }

// IsMemRead reports whether the instruction reads data memory.
func (i *Ins) IsMemRead() bool { return i.slot().Inst.Op.IsLoad() }

// IsMemWrite reports whether the instruction writes data memory.
func (i *Ins) IsMemWrite() bool { return i.slot().Inst.Op.IsStore() }

// IsControl reports whether the instruction can redirect control flow.
func (i *Ins) IsControl() bool { return i.slot().Inst.Op.IsControl() }

// MemSize returns the size of the instruction's memory access (0 if none).
func (i *Ins) MemSize() int { return i.slot().Inst.Op.MemSize() }

func (i *Ins) calls(when IPoint) *[]jit.Call {
	if when == Before {
		return &i.slot().Before
	}
	return &i.slot().After
}

// InsertCall attaches a plain analysis call at the given point. Plain
// calls model Pin's full call sequence (register save/restore around the
// call) and carry the engine's Call cost.
func (i *Ins) InsertCall(when IPoint, fn AnalysisFn) {
	if fn == nil {
		panic("pin: InsertCall with nil function")
	}
	list := i.calls(when)
	*list = append(*list, jit.Call{Fn: fn})
}

// InsertIfCall attaches an inlined conditional check at the given point.
// The check is cheap (it models Pin inlining the predicate at the
// instrumentation site); if it returns true, the matching InsertThenCall
// routine runs at full call cost. SuperPin's two-register quick signature
// check uses exactly this pair (paper Section 4.4).
func (i *Ins) InsertIfCall(when IPoint, pred PredicateFn) {
	if pred == nil {
		panic("pin: InsertIfCall with nil predicate")
	}
	list := i.calls(when)
	*list = append(*list, jit.Call{If: pred})
}

// InsertIfCondCall is InsertIfCall plus a declaration of the
// predicate's shape: the tool asserts pred returns exactly
// `R[cond.Reg] <op> cond.Imm` at this site. When the engine's static
// value analysis decides the comparison at compile time, the site is
// folded — the predicate is not evaluated at run time (its verdict is
// known), though its virtual-cycle charge is unchanged, keeping virtual
// results byte-identical. A declaration the predicate does not honor is
// a programmer error in the tool, like a nil predicate.
func (i *Ins) InsertIfCondCall(when IPoint, pred PredicateFn, cond jit.Cond) {
	if pred == nil {
		panic("pin: InsertIfCondCall with nil predicate")
	}
	list := i.calls(when)
	*list = append(*list, jit.Call{If: pred, Cond: cond})
}

// InsertThenCall attaches the guarded routine for the immediately
// preceding InsertIfCall at the same point. It panics if there is no
// unpaired InsertIfCall, matching Pin's usage contract.
func (i *Ins) InsertThenCall(when IPoint, fn AnalysisFn) {
	if fn == nil {
		panic("pin: InsertThenCall with nil function")
	}
	list := i.calls(when)
	for j := len(*list) - 1; j >= 0; j-- {
		c := &(*list)[j]
		if c.If != nil && c.Then == nil && c.Fn == nil {
			c.Then = fn
			return
		}
	}
	panic(fmt.Sprintf("pin: InsertThenCall at %#08x without matching InsertIfCall", i.Addr()))
}

// InsertIfThenCall is a convenience wrapper pairing InsertIfCall and
// InsertThenCall in one step.
func (i *Ins) InsertIfThenCall(when IPoint, pred PredicateFn, fn AnalysisFn) {
	i.InsertIfCall(when, pred)
	i.InsertThenCall(when, fn)
}
