package pin

import (
	"testing"

	"superpin/internal/kernel"
)

// hotFlushSrc interleaves a hot inner loop (promotes quickly at a low
// threshold) with a long cold routine whose compilation overflows a tiny
// code cache: every outer iteration the promoted inner trace is evicted
// by a whole-cache flush, recompiled cold, and promoted again. Any stale
// second-tier state surviving a flush — a hot-successor link into
// evicted code, a dangling writeback mask — would make the hot run
// diverge from the -nohottier reference below.
const hotFlushSrc = `
	li r10, 0
	li r11, 200
outer:
	li r12, 0
	li r13, 64
inner:
	addi r12, r12, 1
	add r14, r14, r12
	xor r15, r15, r14
	blt r12, r13, inner
	call cold
	addi r10, r10, 1
	blt r10, r11, outer
	li r1, 1
	andi r2, r14, 255
	syscall
cold:
	addi r20, r20, 1
	addi r20, r20, 2
	addi r20, r20, 3
	addi r20, r20, 4
	addi r20, r20, 5
	addi r20, r20, 6
	addi r20, r20, 7
	addi r20, r20, 8
	addi r20, r20, 9
	addi r20, r20, 10
	addi r20, r20, 11
	addi r20, r20, 12
	addi r20, r20, 13
	addi r20, r20, 14
	addi r20, r20, 15
	addi r20, r20, 16
	addi r20, r20, 17
	addi r20, r20, 18
	addi r20, r20, 19
	addi r20, r20, 20
	addi r20, r20, 21
	addi r20, r20, 22
	addi r20, r20, 23
	addi r20, r20, 24
	ret
`

// TestHotTierFlushDifferential: a CodeCache.Flush mid-run must
// invalidate second-tier traces exactly like first-tier ones. The hot
// run (tiny cache, low promotion threshold) repeatedly promotes, gets
// flushed, and re-promotes; its virtual outcome must be byte-identical
// to the same run with the hot tier off.
func TestHotTierFlushDifferential(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 2_000_000_000
	var states [2]fastModeState
	for i, nohot := range []bool{false, true} {
		cost := DefaultCost()
		cost.CacheCapacity = 48
		cost.HotThreshold = 8
		cost.NoHotTier = nohot
		s := setupMode(t, hotFlushSrc, kcfg, cost, nil)
		if err := s.k.Run(); err != nil {
			t.Fatal(err)
		}
		states[i] = s
	}
	hot, ref := states[0], states[1]

	// Virtual outcome: identical in every observable dimension. Stats are
	// compared modulo the host-only hot counters (normStats) and the
	// link-cache traffic the hot links displace (normCacheStats); the
	// predicate spill counter is untouched here — no If-calls, so
	// hoisting never engages and PredSaveRegs must agree exactly.
	compareModes(t, hot, ref)

	st, cs := hot.e.Stats(), hot.e.CacheStats()
	if cs.Flushes == 0 {
		t.Fatal("test expects cache flushes; lower capacity or grow the cold routine")
	}
	if st.HotPromotions < 2 {
		t.Fatalf("want repeated promotion across flushes, got %d", st.HotPromotions)
	}
	if refSt := ref.e.Stats(); refSt.HotPromotions != 0 || refSt.HotIns != 0 ||
		refSt.HoistedSaves != 0 || refSt.HotLinkHits != 0 {
		t.Fatalf("-nohottier run reported hot-tier activity: %+v", refSt)
	}
}
