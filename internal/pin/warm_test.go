package pin

import (
	"testing"

	"superpin/internal/jit"
	"superpin/internal/kernel"
)

// warmLoopSrc is a simple hot loop that promotes well past any
// reasonable threshold plus an exit tail.
const warmLoopSrc = `
	li r10, 0
	li r11, 500
loop:
	addi r10, r10, 1
	add r12, r12, r10
	xor r13, r13, r12
	blt r10, r11, loop
	li r1, 1
	andi r2, r12, 255
	syscall
`

func runWarmMode(t *testing.T, warm *jit.WarmSeed) fastModeState {
	t.Helper()
	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 2_000_000_000
	cost := DefaultCost()
	cost.HotThreshold = 16
	s := setupMode(t, warmLoopSrc, kcfg, cost, func(e *Engine) { e.Warm = warm })
	if err := s.k.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmSeedPromotesAtCompile: a second run seeded with the first
// run's harvest must promote the hot loop at compile time (warm
// promotion, first promotion at a dispatch count the cold run cannot
// reach) while staying byte-identical on the virtual timeline.
func TestWarmSeedPromotesAtCompile(t *testing.T) {
	cold := runWarmMode(t, nil)
	cs := cold.e.Stats()
	if cs.HotPromotions == 0 || cs.WarmPromotions != 0 {
		t.Fatalf("cold run: promotions=%d warm=%d, want earned promotions only",
			cs.HotPromotions, cs.WarmPromotions)
	}
	if cs.FirstPromoDispatch < 16 {
		t.Fatalf("cold first promotion at dispatch %d, want >= threshold", cs.FirstPromoDispatch)
	}

	seed := jit.NewWarmSeed()
	cold.e.HarvestWarm(seed)
	if seed.Len() == 0 {
		t.Fatal("harvest produced an empty seed")
	}

	warm := runWarmMode(t, seed)
	ws := warm.e.Stats()
	if ws.WarmPromotions == 0 {
		t.Fatalf("warm run earned no warm promotions: %+v", ws)
	}
	if ws.FirstPromoDispatch >= cs.FirstPromoDispatch {
		t.Fatalf("warm first promotion at dispatch %d, cold at %d — no speedup",
			ws.FirstPromoDispatch, cs.FirstPromoDispatch)
	}
	// Byte-identical virtual outcome.
	compareModes(t, warm, cold)
}

// TestWarmSeedIgnoredWithoutHotTier: -nohottier must neutralize the
// seed entirely.
func TestWarmSeedIgnoredWithoutHotTier(t *testing.T) {
	cold := runWarmMode(t, nil)
	seed := jit.NewWarmSeed()
	cold.e.HarvestWarm(seed)

	kcfg := kernel.DefaultConfig()
	kcfg.MaxCycles = 2_000_000_000
	cost := DefaultCost()
	cost.HotThreshold = 16
	cost.NoHotTier = true
	s := setupMode(t, warmLoopSrc, kcfg, cost, func(e *Engine) { e.Warm = seed })
	if err := s.k.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.e.Stats(); st.HotPromotions != 0 || st.WarmPromotions != 0 {
		t.Fatalf("seed promoted with the hot tier off: %+v", st)
	}
	compareModes(t, s, cold)
}
