package pin

import (
	"time"

	"superpin/internal/jit"
)

// Second-tier ("hot") trace compilation. The first tier compiles every
// trace the same way; the second tier waits until a trace has proven
// itself hot — its dispatch count crossed the promotion threshold — and
// then derives a cheaper host-side execution strategy from two profiles
// it already has for free: the trace's measured exit histogram
// (prof.ExitHist, maintained by leaveTrace) and the load-time static
// analysis (internal/sa).
//
// Promotion NEVER rebuilds or re-instruments the trace. The compiled
// instruction sequence, its analysis calls and its superblock index are
// the units of virtual-cycle accounting; a promoted trace attaches a
// jit.HotTrace describing how the host executes that same sequence. That
// is what keeps the hot tier byte-identical on the virtual timeline
// (`spbench -exp jitdiff` proves it for every benchmark, serial and
// parallel).

// DefaultHotThreshold is the per-trace dispatch count that triggers
// promotion when CostModel.HotThreshold is unset. Low enough that
// benchmark loops promote within their first timeslice, high enough that
// cold code never pays the promotion pass.
const DefaultHotThreshold = 32

// minCachedRunIns is the shortest superblock run worth register caching:
// a cached run pays a full register-file copy-in plus a masked writeback,
// which the per-instruction savings must amortize.
const minCachedRunIns = 4

// tickHot advances a trace's hotness accounting by one dispatch and
// promotes it when the threshold is crossed. Counting stops at promotion
// (the counters feed the promotion decision and the exit profile is
// frozen into the hot layout; nothing reads them afterwards). Dispatch
// counts are a pure function of the guest's virtual execution, so
// promotion points — and everything derived from them — are identical in
// every execution mode and at every host worker count.
func (e *Engine) tickHot(ct *jit.CompiledTrace, self bool) {
	if !e.hotTier || ct.Hot != nil {
		return
	}
	ct.Execs++
	if self {
		ct.SelfLoops++
	}
	if ct.Execs >= e.hotThr {
		e.promote(ct)
	}
}

// promote builds the second-tier artifact for ct and attaches it.
//
//   - Layout: the measured hottest exit target becomes the preferred
//     fall-through successor (HotTrace.NextPC); its link resolves via the
//     ordinary dispatch flow and is epoch-tagged like every trace link.
//   - Register caching: each superblock run long enough to amortize the
//     copy, and fully covered by the static analysis, gets a writeback
//     mask — the run's exact static written-set, never narrowed by
//     liveness. Liveness only gates eligibility: an analysis that cannot
//     summarize the run cannot vouch for its decode, so the run stays on
//     the shared-state executor. (Narrowing by liveness would be unsound:
//     SuperPin's slice-boundary fullMatch reads every architectural
//     register, dead or not.)
//   - Spill hoisting: inlined-predicate save/restore pairs that are
//     dominator-redundant or loop-invariant are suppressed (see
//     hoistFlags).
func (e *Engine) promote(ct *jit.CompiledTrace) {
	var promoteStart time.Time
	if e.mPromote != nil {
		promoteStart = time.Now()
	}
	h := &jit.HotTrace{}
	hotExit, exitCount := ct.Exits.Hottest()
	if exitCount > 0 {
		h.NextPC = hotExit
	}
	if e.SA != nil {
		if len(ct.Sblocks) > 0 {
			h.WB = make([]uint32, len(ct.Sblocks))
			h.LiveIn = make([]uint32, len(ct.Sblocks))
			for i := range ct.Sblocks {
				sb := &ct.Sblocks[i]
				n := len(sb.Block)
				if n < minCachedRunIns {
					continue
				}
				liveIn, _, ok := e.SA.Summary(ct.Ins[sb.Start].Addr, n)
				if !ok {
					continue
				}
				h.LiveIn[i] = liveIn
				h.WB[i] = writtenMask(ct.Ins[sb.Start : sb.Start+n])
			}
		}
		h.Hoist = e.hoistFlags(ct, hotExit, exitCount > 0)
	}
	ct.Hot = h
	if e.stats.HotPromotions == 0 {
		e.stats.FirstPromoDispatch = e.stats.Dispatches
	}
	e.stats.HotPromotions++
	if e.mPromote != nil {
		e.mPromote.Observe(uint64(time.Since(promoteStart)))
	}
}

// applyWarm seeds a freshly compiled trace's hotness counters from the
// warm-start artifact and promotes immediately when a prior execution
// already proved the trace hot. Applied once per compile, right after
// cache insertion, so a warm run reaches its second-tier layout at the
// first dispatch instead of after HotThreshold of them. The seed only
// moves the promotion point earlier on the host timeline; the virtual
// timeline never observes it (cachediff proves byte-identity).
func (e *Engine) applyWarm(ct *jit.CompiledTrace) {
	w, ok := e.Warm.Lookup(ct.Addr)
	if !ok {
		return
	}
	ct.Execs = w.Execs
	ct.SelfLoops = w.SelfLoops
	ct.Exits.Seed(w.HotExit, w.HotCount)
	if ct.Execs >= e.hotThr {
		e.promote(ct)
		e.stats.WarmPromotions++
	}
}

// HarvestWarm folds the hotness counters of every trace resident in the
// engine's code cache into seed, for publication back to the artifact
// store at run end. Traces evicted by cache flushes before harvest are
// simply not counted — the seed is an accelerator, not a ledger.
func (e *Engine) HarvestWarm(seed *jit.WarmSeed) {
	seed.Harvest(e.cache)
}

// writtenMask returns the static written-register set of a compiled
// instruction run, with bit 0 (r0, the hard-wired zero) always set so a
// valid mask is never zero — the dispatch loop uses mask zero to mean
// "run not register-cached".
func writtenMask(ins []jit.CompiledIns) uint32 {
	m := uint32(1)
	for i := range ins {
		if d := ins[i].Inst.DstReg(); d >= 0 {
			m |= 1 << uint(d)
		}
	}
	return m
}

// hoistFlags computes which inlined-predicate spill sites a promoted
// trace may suppress, or nil when none qualify. hotExit is the trace's
// measured hottest exit target (valid when hasExit). A site qualifies
// when the spill it models provably repeats work:
//
//   - dominator-redundant: an earlier If site in the same trace dominates
//     it, so the identical pure-observer spill already happened on every
//     path reaching this site within this trace body;
//   - loop-invariant (self-loop form): the trace is self-loop-dominant
//     (at least half its dispatches re-entered its own head) and the
//     trace head dominates the site, so the spill repeats every
//     iteration of a proven-hot loop;
//   - loop-invariant (back-edge form): the trace's dominant exit jumps
//     to a block that dominates the site — a back edge to a loop header
//     enclosing it. SuperPin's boundary probe lands here: the forced
//     trace split at the probe PC cuts the loop body into traces that
//     chain through the header rather than self-looping.
//   - all-folded (interprocedural tier): every If-call at the site
//     carries a compile-time Fold verdict from the value analysis, so
//     no predicate is ever evaluated there — runCall substitutes the
//     verdicts — and the spill guards nothing. Counted separately as
//     IPHoists.
//
// Either way the iterations executed before promotion already paid the
// spill; promotion stops repaying it. Suppression is sound regardless of
// the rule that fired: predicates are pure observers (runCall's
// contract), so the modeled save/restore is semantically a no-op and
// skipping it moves host work only. The dominator analysis keeps the
// policy honest — spills are only dropped where a real binary translator
// could prove the spilled state dead or duplicated, which is what makes
// the HoistedSaves counter meaningful as a model of Pin's inlining
// optimizations.
func (e *Engine) hoistFlags(ct *jit.CompiledTrace, hotExit uint32, hasExit bool) []bool {
	var sites []int
	for i := range ct.Ins {
		if hasIfCall(&ct.Ins[i]) {
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 {
		return nil
	}
	selfLoop := ct.SelfLoops*2 >= ct.Execs
	hoist := make([]bool, len(ct.Ins))
	any := false
	for si, i := range sites {
		addr := ct.Ins[i].Addr
		for _, j := range sites[:si] {
			if e.SA.Dominates(ct.Ins[j].Addr, addr) {
				hoist[i] = true
				break
			}
		}
		if !hoist[i] && selfLoop && e.SA.Dominates(ct.Addr, addr) {
			hoist[i] = true
		}
		if !hoist[i] && hasExit && e.SA.Dominates(hotExit, addr) {
			hoist[i] = true
		}
		if !hoist[i] && allFolded(&ct.Ins[i]) {
			hoist[i] = true
			e.stats.IPHoists++
		}
		any = any || hoist[i]
	}
	if !any {
		return nil
	}
	return hoist
}

// hasIfCall reports whether a compiled instruction carries at least one
// inlined if/then predicate (the call kind that models a spill).
func hasIfCall(ci *jit.CompiledIns) bool {
	for i := range ci.Before {
		if ci.Before[i].Fn == nil {
			return true
		}
	}
	for i := range ci.After {
		if ci.After[i].Fn == nil {
			return true
		}
	}
	return false
}

// allFolded reports whether every If-call at a compiled instruction was
// folded by the value analysis (no predicate will ever be evaluated
// there while the verdicts hold).
func allFolded(ci *jit.CompiledIns) bool {
	for i := range ci.Before {
		if c := &ci.Before[i]; c.Fn == nil && c.Fold == jit.FoldUnknown {
			return false
		}
	}
	for i := range ci.After {
		if c := &ci.After[i]; c.Fn == nil && c.Fold == jit.FoldUnknown {
			return false
		}
	}
	return true
}
