package pin

import (
	"testing"

	"superpin/internal/asm"
	"superpin/internal/cpu"
	"superpin/internal/isa"
	"superpin/internal/kernel"
	"superpin/internal/mem"
)

// testProgram builds a program with loops, calls, branches and memory
// traffic, exiting with r10 as code.
const testSrc = `
	.entry main
; double(x): returns 2x in r2
double:
	add r2, r2, r2
	ret
main:
	li r10, 0
	li r11, 0
	li r12, 200       ; outer iterations
	la r14, buf
outer:
	andi r13, r11, 7
	beq r13, zero, skip
	addi r10, r10, 1
skip:
	slli r13, r13, 2
	add r13, r13, r14
	sw r11, (r13)      ; store
	lw r15, (r13)      ; load back
	add r10, r10, r15
	mv r2, r11
	call double
	addi r11, r11, 1
	blt r11, r12, outer
	li r1, 1           ; exit(r10 & 0xff)
	andi r2, r10, 255
	syscall
	.org 0x4000
buf:
	.space 64
`

func buildTest(t *testing.T) (*mem.Memory, cpu.Regs) {
	t.Helper()
	p, err := asm.Assemble(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	regs := cpu.Regs{PC: p.Entry}
	regs.R[isa.RegSP] = 0x00f0_0000
	return m, regs
}

func testKernel() *kernel.Kernel {
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 100_000_000
	return kernel.New(cfg)
}

// runNativeRef runs the program natively and returns (instructions, exit).
func runNativeRef(t *testing.T) (uint64, uint32) {
	t.Helper()
	k := testKernel()
	m, regs := buildTest(t)
	p := k.Spawn("native", m, regs, kernel.NativeRunner{})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return p.InsCount, p.ExitCode
}

// runUnderEngine runs the program under an instrumented engine.
func runUnderEngine(t *testing.T, setup func(e *Engine)) (*kernel.Proc, *Engine, kernel.Cycles) {
	t.Helper()
	k := testKernel()
	m, regs := buildTest(t)
	e := NewEngine(DefaultCost())
	if setup != nil {
		setup(e)
	}
	p := k.Spawn("pin", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return p, e, k.Now
}

func TestUninstrumentedExecutionMatchesNative(t *testing.T) {
	refIns, refExit := runNativeRef(t)
	p, e, _ := runUnderEngine(t, nil)
	if p.ExitCode != refExit {
		t.Fatalf("exit = %d, want %d", p.ExitCode, refExit)
	}
	if p.InsCount != refIns {
		t.Fatalf("ins = %d, want %d", p.InsCount, refIns)
	}
	if e.Stats().ExecIns != refIns {
		t.Fatalf("engine ExecIns = %d, want %d", e.Stats().ExecIns, refIns)
	}
}

func TestIcount1MatchesReference(t *testing.T) {
	refIns, _ := runNativeRef(t)
	var icount uint64
	_, _, _ = refIns, icount, 0
	p, _, _ := runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) { icount++ })
				}
			}
		})
	})
	if icount != refIns {
		t.Fatalf("icount1 = %d, want %d", icount, refIns)
	}
	if p.InsCount != refIns {
		t.Fatalf("InsCount = %d, want %d", p.InsCount, refIns)
	}
}

func TestIcount2MatchesReference(t *testing.T) {
	refIns, _ := runNativeRef(t)
	var icount uint64
	runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				n := uint64(bbl.NumIns())
				bbl.InsertCall(Before, func(*Ctx) { icount += n })
			}
		})
	})
	if icount != refIns {
		t.Fatalf("icount2 = %d, want %d", icount, refIns)
	}
}

func TestIcount2NotExactPerBBLWhenBranchLeavesEarly(t *testing.T) {
	// A taken branch out of the middle of a bbl-sized count would break
	// per-bbl counting if blocks could be left early; our BBLs end at
	// control transfers, so bbl counting must stay exact. This test
	// verifies the invariant on a branchy program (the main test program
	// exercises this too; here we double-check the two tools agree).
	var c1, c2 uint64
	runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				n := uint64(bbl.NumIns())
				bbl.InsertCall(Before, func(*Ctx) { c2 += n })
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) { c1++ })
				}
			}
		})
	})
	if c1 != c2 {
		t.Fatalf("icount1 = %d but icount2 = %d", c1, c2)
	}
}

func TestInstrumentationCostOrdering(t *testing.T) {
	_, _, tNone := runUnderEngine(t, nil)
	_, _, tBbl := runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				bbl.InsertCall(Before, func(*Ctx) {})
			}
		})
	})
	_, _, tIns := runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertCall(Before, func(*Ctx) {})
				}
			}
		})
	})
	if !(tNone < tBbl && tBbl < tIns) {
		t.Fatalf("cost ordering violated: none=%d bbl=%d ins=%d", tNone, tBbl, tIns)
	}
	// Per-instruction calls at Call=10 should slow execution several-fold
	// relative to uninstrumented pin mode.
	if float64(tIns)/float64(tNone) < 3 {
		t.Fatalf("icount1-style run only %.2fx slower than uninstrumented", float64(tIns)/float64(tNone))
	}
}

func TestIfThenCalls(t *testing.T) {
	var ifCalls, thenCalls uint64
	_, e, _ := runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					ins.InsertIfCall(Before, func(c *Ctx) bool {
						ifCalls++
						return c.Regs.R[11] == 100 // true on one outer iteration
					})
					ins.InsertThenCall(Before, func(*Ctx) { thenCalls++ })
				}
			}
		})
	})
	if ifCalls == 0 || thenCalls == 0 {
		t.Fatalf("ifCalls=%d thenCalls=%d", ifCalls, thenCalls)
	}
	if thenCalls >= ifCalls {
		t.Fatalf("then (%d) should fire far less than if (%d)", thenCalls, ifCalls)
	}
	st := e.Stats()
	if st.IfCalls != ifCalls || st.ThenCalls != thenCalls {
		t.Fatalf("stats mismatch: %+v vs if=%d then=%d", st, ifCalls, thenCalls)
	}
}

func TestThenWithoutIfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InsertThenCall without InsertIfCall did not panic")
		}
	}()
	k := testKernel()
	m, regs := buildTest(t)
	e := NewEngine(DefaultCost())
	e.AddTraceInstrumenter(func(tr *Trace) {
		tr.Bbls()[0].InsHead().InsertThenCall(Before, func(*Ctx) {})
	})
	k.Spawn("pin", m, regs, e)
	_ = k.Run()
}

func TestAfterCalls(t *testing.T) {
	// Count taken conditional branches by comparing PC after execution.
	var taken, total uint64
	runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					if !ins.Inst().Op.IsCondBranch() {
						continue
					}
					fallthru := ins.Addr() + 4
					ins.InsertCall(After, func(c *Ctx) {
						total++
						if c.Regs.PC != fallthru {
							taken++
						}
					})
				}
			}
		})
	})
	if total == 0 || taken == 0 || taken > total {
		t.Fatalf("taken=%d total=%d", taken, total)
	}
}

func TestMemoryArgs(t *testing.T) {
	// Record effective addresses of stores; they must all fall in buf.
	var addrs []uint32
	runUnderEngine(t, func(e *Engine) {
		e.AddTraceInstrumenter(func(tr *Trace) {
			for _, bbl := range tr.Bbls() {
				for _, ins := range bbl.Ins() {
					if ins.IsMemWrite() {
						ins.InsertCall(Before, func(c *Ctx) {
							addrs = append(addrs, c.MemEA())
						})
					}
				}
			}
		})
	})
	if len(addrs) != 200 {
		t.Fatalf("got %d store EAs, want 200", len(addrs))
	}
	for _, a := range addrs {
		if a < 0x4000 || a >= 0x4040 {
			t.Fatalf("store EA %#x outside buf", a)
		}
	}
}

func TestStopRequestEndsRun(t *testing.T) {
	k := testKernel()
	m, regs := buildTest(t)
	e := NewEngine(DefaultCost())
	var stopPC uint32
	count := 0
	e.AddTraceInstrumenter(func(tr *Trace) {
		for _, bbl := range tr.Bbls() {
			for _, ins := range bbl.Ins() {
				ins.InsertCall(Before, func(c *Ctx) {
					count++
					if count == 500 {
						stopPC = c.PC
						c.RequestStop()
					}
				})
			}
		}
	})
	p := k.Spawn("pin", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("analysis ran %d times after stop", count)
	}
	// StopExit surfaces as a voluntary exit; the PC must still point at
	// the un-executed instruction.
	if p.Regs.PC != stopPC {
		t.Fatalf("PC = %#x, want %#x (instruction not executed)", p.Regs.PC, stopPC)
	}
	if p.InsCount != 499 {
		t.Fatalf("InsCount = %d, want 499", p.InsCount)
	}
}

func TestSyscallFilter(t *testing.T) {
	k := testKernel()
	m, regs := buildTest(t)
	e := NewEngine(DefaultCost())
	filtered := 0
	e.Syscall = func(k *kernel.Kernel, p *kernel.Proc) (bool, kernel.Cycles, kernel.StopReason) {
		filtered++
		// Emulate exit ourselves: stop the run.
		return true, 5, kernel.StopExit
	}
	p := k.Spawn("pin", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if filtered != 1 {
		t.Fatalf("filter ran %d times", filtered)
	}
	if p.SyscallCount != 0 {
		t.Fatalf("kernel serviced %d syscalls despite filter", p.SyscallCount)
	}
}

func TestCacheFlushOnCapacity(t *testing.T) {
	cost := DefaultCost()
	cost.CacheCapacity = 16 // absurdly small: every trace flushes
	k := testKernel()
	m, regs := buildTest(t)
	e := NewEngine(cost)
	p := k.Spawn("pin", m, regs, e)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	cs := e.CacheStats()
	if cs.Flushes == 0 {
		t.Fatal("tiny cache never flushed")
	}
	if cs.Compiles < 100 {
		t.Fatalf("expected heavy recompilation, got %d compiles", cs.Compiles)
	}
	_ = p
}

func TestCacheReuseAvoidsRecompilation(t *testing.T) {
	_, e, _ := runUnderEngine(t, nil)
	cs := e.CacheStats()
	// The program loops 200 times over a handful of traces; compiles must
	// be tiny compared to dispatches.
	if cs.Compiles > 20 {
		t.Fatalf("compiles = %d, expected trace reuse", cs.Compiles)
	}
	if e.Stats().Dispatches < 400 {
		t.Fatalf("dispatches = %d, loop should re-dispatch many times", e.Stats().Dispatches)
	}
}

func TestFiniFunctions(t *testing.T) {
	e := NewEngine(DefaultCost())
	var order []int
	e.AddFiniFunction(func(code uint32) { order = append(order, 1) })
	e.AddFiniFunction(func(code uint32) { order = append(order, 2) })
	e.Fini(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fini order = %v", order)
	}
}

func TestDeterministicTiming(t *testing.T) {
	_, _, t1 := runUnderEngine(t, nil)
	_, _, t2 := runUnderEngine(t, nil)
	if t1 != t2 {
		t.Fatalf("nondeterministic engine timing: %d vs %d", t1, t2)
	}
}

func TestMemSurchargeSlowsMemoryBoundRun(t *testing.T) {
	_, _, base := runUnderEngine(t, nil)
	_, _, slow := runUnderEngine(t, func(e *Engine) { e.Cost.MemSurcharge = 20 })
	if slow <= base {
		t.Fatalf("MemSurcharge had no effect: %d vs %d", slow, base)
	}
}
