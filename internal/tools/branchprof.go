package tools

import (
	"fmt"
	"io"
	"sort"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// BranchCounts is the taken/not-taken profile of one branch site.
type BranchCounts struct {
	Taken    uint64
	NotTaken uint64
}

// BranchProf profiles every conditional branch site. Slice-local per-site
// counts are summed into the shared profile at merge time, so the merged
// profile equals a serial run's.
type BranchProf struct {
	out    io.Writer
	merged map[uint32]*BranchCounts
}

// NewBranchProf creates a branch profiler. out may be nil.
func NewBranchProf(out io.Writer) *BranchProf {
	return &BranchProf{out: out, merged: make(map[uint32]*BranchCounts)}
}

// Factory returns the per-process tool factory.
func (bp *BranchProf) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &branchProfInstance{
			family:   bp,
			superpin: ctl.SuperPin(),
			local:    make(map[uint32]*BranchCounts),
		}
	}
}

// Profile returns the merged per-site profile. Valid after the run.
func (bp *BranchProf) Profile() map[uint32]*BranchCounts { return bp.merged }

type branchProfInstance struct {
	family   *BranchProf
	superpin bool
	local    map[uint32]*BranchCounts
}

// Instrument implements core.Tool: conditional branches get an after-call
// that classifies the outcome by comparing the post-execution PC with the
// fall-through address.
func (t *branchProfInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			if !ins.Inst().Op.IsCondBranch() {
				continue
			}
			site := ins.Addr()
			fallthru := site + 4
			ins.InsertCall(pin.After, func(c *pin.Ctx) {
				bc := t.local[site]
				if bc == nil {
					bc = &BranchCounts{}
					t.local[site] = bc
				}
				if c.Regs.PC == fallthru {
					bc.NotTaken++
				} else {
					bc.Taken++
				}
			})
		}
	}
}

// SliceBegin implements core.SliceAware.
func (t *branchProfInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *branchProfInstance) SliceEnd(int) { t.merge() }

func (t *branchProfInstance) merge() {
	for site, bc := range t.local {
		m := t.family.merged[site]
		if m == nil {
			m = &BranchCounts{}
			t.family.merged[site] = m
		}
		m.Taken += bc.Taken
		m.NotTaken += bc.NotTaken
	}
}

// Fini implements core.Finisher.
func (t *branchProfInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out == nil {
		return
	}
	sites := make([]uint32, 0, len(t.family.merged))
	for s := range t.family.merged {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		bc := t.family.merged[s]
		fmt.Fprintf(t.family.out, "%#08x: taken %d, not-taken %d\n", s, bc.Taken, bc.NotTaken)
	}
}
