package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// ITrace records the address of every executed instruction. Under
// SuperPin each slice buffers its own trace and the buffers are appended
// in slice order at merge time (paper Section 4.5: "if we are tracing
// instructions, the slice output will be buffered, then appended to the
// output during merging"), so the merged trace is identical to a serial
// run's.
type ITrace struct {
	out    io.Writer // optional textual output at Fini
	merged []uint32
}

// NewITrace creates an instruction tracer. out may be nil to keep the
// trace in memory only (retrieved with Trace).
func NewITrace(out io.Writer) *ITrace { return &ITrace{out: out} }

// Factory returns the per-process tool factory.
func (it *ITrace) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &itraceInstance{family: it, superpin: ctl.SuperPin()}
	}
}

// Trace returns the merged instruction-address trace. Valid after the run.
func (it *ITrace) Trace() []uint32 { return it.merged }

type itraceInstance struct {
	family   *ITrace
	superpin bool
	local    []uint32
}

// Instrument implements core.Tool.
func (t *itraceInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			addr := ins.Addr()
			ins.InsertCall(pin.Before, func(*pin.Ctx) { t.local = append(t.local, addr) })
		}
	}
}

// SliceBegin implements core.SliceAware.
func (t *itraceInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware: append this slice's buffer to the
// merged trace (called in slice order).
func (t *itraceInstance) SliceEnd(int) {
	t.family.merged = append(t.family.merged, t.local...)
}

// Fini implements core.Finisher.
func (t *itraceInstance) Fini(code uint32) {
	if !t.superpin {
		t.family.merged = append(t.family.merged, t.local...)
	}
	if t.family.out != nil {
		for _, pc := range t.family.merged {
			fmt.Fprintf(t.family.out, "%#08x\n", pc)
		}
	}
}
