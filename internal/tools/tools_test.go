package tools

import (
	"bytes"
	"strings"
	"testing"

	"superpin/internal/core"
	"superpin/internal/isa"
	"superpin/internal/kernel"
	"superpin/internal/pin"
	"superpin/internal/workload"
)

func testCfg() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.MaxCycles = 5_000_000_000
	return cfg
}

func spOpts() core.Options {
	o := core.DefaultOptions()
	o.SliceMSec = 50
	return o
}

func TestIcountToolsAgreeAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("vpr")
	spec = spec.Scaled(0.02)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	native, err := core.RunNative(cfg, prog, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, mk := range []func() *Icount{
		func() *Icount { return NewIcount1(nil) },
		func() *Icount { return NewIcount2(nil) },
	} {
		pinTool := mk()
		if _, err := core.RunPin(cfg, prog, pinTool.Factory(), pin.DefaultCost()); err != nil {
			t.Fatal(err)
		}
		if pinTool.Total() != native.Ins {
			t.Fatalf("pin icount = %d, want %d", pinTool.Total(), native.Ins)
		}

		spTool := mk()
		res, err := core.Run(cfg, prog, spTool.Factory(), spOpts())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if spTool.Total() != native.Ins {
			t.Fatalf("superpin icount = %d, want %d", spTool.Total(), native.Ins)
		}
	}
}

func TestIcountFiniOutput(t *testing.T) {
	spec, _ := workload.ByName("gzip")
	spec = spec.Scaled(0.005)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tool := NewIcount2(&buf)
	res, err := core.Run(testCfg(), prog, tool.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !strings.Contains(buf.String(), "Total Count:") {
		t.Fatalf("fini output missing: %q", buf.String())
	}
}

// TestDCacheExactAcrossModes is the Section 5.2 correctness claim: the
// assume-hit + merge-time reconciliation makes the parallel SuperPin
// data-cache simulation produce exactly the serial results.
func TestDCacheExactAcrossModes(t *testing.T) {
	for _, name := range []string{"mcf", "gzip", "swim"} {
		spec, _ := workload.ByName(name)
		spec = spec.Scaled(0.01)
		prog, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()

		serial := mustDCache(t, 1<<14, 32)
		if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
			t.Fatal(err)
		}

		par := mustDCache(t, 1<<14, 32)
		res, err := core.Run(cfg, prog, par.Factory(), spOpts())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}

		if serial.Hits() != par.Hits() || serial.Misses() != par.Misses() {
			t.Fatalf("%s: serial %d/%d vs superpin %d/%d (adjusted %d)",
				name, serial.Hits(), serial.Misses(), par.Hits(), par.Misses(), par.Adjusted())
		}
		if serial.Hits()+serial.Misses() == 0 {
			t.Fatalf("%s: no accesses simulated", name)
		}
		if res.Stats.Forks > 1 && par.Adjusted() == 0 {
			t.Logf("%s: note: no assumptions needed adjustment", name)
		}
	}
}

func mustDCache(t *testing.T, cacheBytes, lineBytes int) *DCache {
	t.Helper()
	d, err := NewDCache(cacheBytes, lineBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDCacheGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 32}, {1024, 0}, {1000, 32}, {1024, 48}} {
		if d, err := NewDCache(bad[0], bad[1], nil); err == nil || d != nil {
			t.Errorf("geometry %v accepted (err=%v)", bad, err)
		}
	}
	if _, err := NewDCache(1<<14, 32, nil); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestITraceIdenticalAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("gzip")
	spec = spec.Scaled(0.004)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	serial := NewITrace(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	par := NewITrace(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	a, b := serial.Trace(), par.Trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestBranchProfIdenticalAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("crafty")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	serial := NewBranchProf(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	par := NewBranchProf(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sp, pp := serial.Profile(), par.Profile()
	if len(sp) == 0 {
		t.Fatal("no branch sites profiled")
	}
	if len(sp) != len(pp) {
		t.Fatalf("site counts differ: %d vs %d", len(sp), len(pp))
	}
	var taken, notTaken uint64
	for site, s := range sp {
		p := pp[site]
		if p == nil || *p != *s {
			t.Fatalf("site %#x: serial %+v vs superpin %+v", site, s, p)
		}
		taken += s.Taken
		notTaken += s.NotTaken
	}
	if taken == 0 || notTaken == 0 {
		t.Fatalf("degenerate profile: taken=%d notTaken=%d", taken, notTaken)
	}
}

func TestOpMixIdenticalAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("ammp")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	native, err := core.RunNative(cfg, prog, 0)
	if err != nil {
		t.Fatal(err)
	}

	serial := NewOpMix(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	par := NewOpMix(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if serial.Total() != native.Ins || par.Total() != native.Ins {
		t.Fatalf("totals: serial %d, superpin %d, native %d", serial.Total(), par.Total(), native.Ins)
	}
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if serial.Count(op) != par.Count(op) {
			t.Fatalf("%v: serial %d vs superpin %d", op, serial.Count(op), par.Count(op))
		}
	}
	if serial.Count(isa.OpLW) == 0 || serial.Count(isa.OpJALR) == 0 {
		t.Fatal("expected loads and indirect calls in the mix")
	}
}

func TestSamplerBoundsWorkPerSlice(t *testing.T) {
	spec, _ := workload.ByName("mgrid")
	spec = spec.Scaled(0.02)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	native, err := core.RunNative(cfg, prog, 0)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSampler(300, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg, prog, s.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if s.Sampled == 0 {
		t.Fatal("no samples")
	}
	maxPossible := uint64(res.Stats.Forks) * 300
	if s.Sampled > maxPossible {
		t.Fatalf("sampled %d > budget bound %d", s.Sampled, maxPossible)
	}
	if s.Sampled >= native.Ins {
		t.Fatalf("sampling observed everything (%d of %d)", s.Sampled, native.Ins)
	}
	if len(s.Hottest(5)) == 0 {
		t.Fatal("no hot PCs")
	}
	// The run should be dramatically cheaper than full instrumentation.
	full := NewIcount1(nil)
	fres, err := core.Run(cfg, prog, full.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime >= fres.TotalTime {
		t.Fatalf("sampler run (%d) not faster than full instrumentation (%d)",
			res.TotalTime, fres.TotalTime)
	}
}

func TestSamplerPinModeLimitsToOneBudget(t *testing.T) {
	spec, _ := workload.ByName("mgrid")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunPin(testCfg(), prog, s.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(0, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if s.Sampled != 500 {
		t.Fatalf("pin-mode sampler saw %d, want exactly the 500 budget", s.Sampled)
	}
}

func TestDCacheFiniOutput(t *testing.T) {
	spec, _ := workload.ByName("gzip")
	spec = spec.Scaled(0.003)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	d, err := NewDCache(1<<12, 32, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunPin(testCfg(), prog, d.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hit rate") {
		t.Fatalf("output: %q", buf.String())
	}
}
