package tools

import (
	"fmt"
	"io"
	"sort"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// BBCount counts executions of every basic block (keyed by block entry
// address) — the classic Pin basic-block profiling tool. Per-slice counts
// merge by addition, so the merged profile equals a serial run's.
//
// Note on slice boundaries: a timeout boundary splits the containing
// block, so the trailing part appears as its own block entry in the
// slices adjacent to that boundary. The total instruction-weighted count
// is preserved exactly; Blocks() therefore reports totals per entry
// address as observed, and InsTotal() is the cross-mode-exact quantity.
type BBCount struct {
	out    io.Writer
	merged map[uint32]uint64
	// insTotal accumulates count*blocksize, the exact quantity.
	insTotal uint64
}

// NewBBCount creates a basic-block profiler. out may be nil.
func NewBBCount(out io.Writer) *BBCount {
	return &BBCount{out: out, merged: make(map[uint32]uint64)}
}

// Factory returns the per-process tool factory.
func (bc *BBCount) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &bbcountInstance{
			family:   bc,
			superpin: ctl.SuperPin(),
			counts:   make(map[uint32]uint64),
			sizes:    make(map[uint32]uint64),
		}
	}
}

// Blocks returns the merged per-entry-address execution counts.
func (bc *BBCount) Blocks() map[uint32]uint64 { return bc.merged }

// InsTotal returns the instruction-weighted total (counts times block
// sizes) — equal to the dynamic instruction count.
func (bc *BBCount) InsTotal() uint64 { return bc.insTotal }

type bbcountInstance struct {
	family   *BBCount
	superpin bool
	counts   map[uint32]uint64
	sizes    map[uint32]uint64
}

// Instrument implements core.Tool.
func (t *bbcountInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		addr := bbl.Addr()
		n := uint64(bbl.NumIns())
		t.sizes[addr] = n
		bbl.InsertCall(pin.Before, func(*pin.Ctx) { t.counts[addr]++ })
	}
}

// SliceBegin implements core.SliceAware.
func (t *bbcountInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *bbcountInstance) SliceEnd(int) { t.merge() }

func (t *bbcountInstance) merge() {
	for addr, n := range t.counts {
		t.family.merged[addr] += n
		t.family.insTotal += n * t.sizes[addr]
	}
}

// Fini implements core.Finisher.
func (t *bbcountInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out == nil {
		return
	}
	addrs := make([]uint32, 0, len(t.family.merged))
	for a := range t.family.merged {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return t.family.merged[addrs[i]] > t.family.merged[addrs[j]]
	})
	if len(addrs) > 10 {
		addrs = addrs[:10]
	}
	fmt.Fprintf(t.family.out, "bbcount: %d blocks, %d weighted instructions; hottest:\n",
		len(t.family.merged), t.family.insTotal)
	for _, a := range addrs {
		fmt.Fprintf(t.family.out, "  %#08x: %d\n", a, t.family.merged[a])
	}
}
