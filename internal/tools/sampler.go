package tools

import (
	"fmt"
	"io"
	"sort"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// Sampler is a Shadow-Profiler-style sampling profiler (the SP_EndSlice
// use case the paper cites): each slice profiles only its first
// BudgetPerSlice instructions and then terminates itself with
// SP_EndSlice, so profiling cost is bounded per timeslice while samples
// stay spread across the whole execution. Under plain Pin (no slices) it
// degrades to profiling the first BudgetPerSlice instructions only.
type Sampler struct {
	budget int
	out    io.Writer
	merged map[uint32]uint64
	// Sampled counts total instructions observed across all slices.
	Sampled uint64
}

// NewSampler creates a sampler observing up to budget instructions per
// slice. out may be nil. A non-positive budget is a configuration error
// reported to the caller, not a panic: the value typically arrives from
// a command line.
func NewSampler(budget int, out io.Writer) (*Sampler, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("tools: sampler budget must be positive, got %d", budget)
	}
	return &Sampler{budget: budget, out: out, merged: make(map[uint32]uint64)}, nil
}

// Factory returns the per-process tool factory.
func (s *Sampler) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &samplerInstance{family: s, ctl: ctl, local: make(map[uint32]uint64)}
	}
}

// Samples returns the merged per-PC sample counts. Valid after the run.
func (s *Sampler) Samples() map[uint32]uint64 { return s.merged }

// Hottest returns up to n program counters ranked by sample count.
func (s *Sampler) Hottest(n int) []uint32 {
	pcs := make([]uint32, 0, len(s.merged))
	for pc := range s.merged {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if s.merged[pcs[i]] != s.merged[pcs[j]] {
			return s.merged[pcs[i]] > s.merged[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > n {
		pcs = pcs[:n]
	}
	return pcs
}

type samplerInstance struct {
	family *Sampler
	ctl    *core.ToolCtl
	local  map[uint32]uint64
	seen   int
}

// Instrument implements core.Tool.
func (t *samplerInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			pc := ins.Addr()
			ins.InsertCall(pin.Before, func(*pin.Ctx) {
				if t.seen >= t.family.budget {
					if t.ctl.SuperPin() {
						t.ctl.EndSlice()
					}
					return
				}
				t.local[pc]++
				t.seen++
			})
		}
	}
}

// SliceBegin implements core.SliceAware.
func (t *samplerInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *samplerInstance) SliceEnd(int) { t.merge() }

func (t *samplerInstance) merge() {
	for pc, n := range t.local {
		t.family.merged[pc] += n
		t.family.Sampled += n
	}
}

// Fini implements core.Finisher.
func (t *samplerInstance) Fini(code uint32) {
	if !t.ctl.SuperPin() {
		t.merge()
	}
	if t.family.out == nil {
		return
	}
	for _, pc := range t.family.Hottest(10) {
		fmt.Fprintf(t.family.out, "%#08x: %d samples\n", pc, t.family.merged[pc])
	}
}
