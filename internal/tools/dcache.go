package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// DCache is a direct-mapped data-cache simulator converted to a SuperPin
// tool by the procedure of paper Sections 4.5 and 5.2. Because the cache
// state at a slice's start depends on the previous slice, each slice:
//
//  1. assumes the first access to each cache set is a hit, recording the
//     assumed line,
//  2. simulates all subsequent accesses against its own local state, and
//  3. at merge time (in slice order) compares each assumption with the
//     previous slices' final cache state, converting wrong assumed hits
//     into misses, then publishes its own final state.
//
// For a direct-mapped cache the reconciliation is exact: SuperPin's
// hit/miss totals equal a serial simulation's, which the tests verify.
type DCache struct {
	lineShift uint
	sets      uint32
	out       io.Writer

	// Merged state, updated in slice order.
	runningTags []uint32 // 0 = invalid, else tag+1
	hits        uint64
	misses      uint64
	adjusted    uint64 // assumed hits converted to misses at merge time
}

// NewDCache creates a simulator for a direct-mapped cache with the given
// total size and line size in bytes (both powers of two). Invalid
// geometry — sizes that aren't positive powers of two, or a total size
// not a multiple of the line size — is a configuration error reported to
// the caller, not a panic: these values typically arrive from command
// lines.
func NewDCache(cacheBytes, lineBytes int, out io.Writer) (*DCache, error) {
	if cacheBytes <= 0 || lineBytes <= 0 || cacheBytes%lineBytes != 0 {
		return nil, fmt.Errorf("tools: bad dcache geometry: %d bytes / %d per line (need positive sizes, total a multiple of line)",
			cacheBytes, lineBytes)
	}
	lineShift := uint(0)
	for 1<<lineShift < lineBytes {
		lineShift++
	}
	if 1<<lineShift != lineBytes {
		return nil, fmt.Errorf("tools: dcache line size %d must be a power of two", lineBytes)
	}
	sets := uint32(cacheBytes / lineBytes)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tools: dcache set count %d must be a power of two (cache %d / line %d)",
			sets, cacheBytes, lineBytes)
	}
	return &DCache{
		lineShift:   lineShift,
		sets:        sets,
		out:         out,
		runningTags: make([]uint32, sets),
	}, nil
}

// Factory returns the per-process tool factory.
func (d *DCache) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &dcacheInstance{
			family:   d,
			superpin: ctl.SuperPin(),
			master:   ctl.SliceNum() == -1,
			tags:     make([]uint32, d.sets),
			firstTag: make([]uint32, d.sets),
		}
	}
}

// Hits returns the merged hit count.
func (d *DCache) Hits() uint64 { return d.hits }

// Misses returns the merged miss count.
func (d *DCache) Misses() uint64 { return d.misses }

// Adjusted returns how many assumed hits were converted to misses during
// merging — a measure of how often slice-boundary cache state mattered.
func (d *DCache) Adjusted() uint64 { return d.adjusted }

type dcacheInstance struct {
	family   *DCache
	superpin bool
	master   bool

	tags     []uint32 // local cache state; 0 = invalid, else tag+1
	firstTag []uint32 // assumed-hit first access per set; 0 = none
	hits     uint64
	misses   uint64
}

// Instrument implements core.Tool: every memory instruction gets a
// before-call with its effective address.
func (t *dcacheInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			if ins.MemSize() == 0 {
				continue
			}
			ins.InsertCall(pin.Before, func(c *pin.Ctx) { t.access(c.MemEA()) })
		}
	}
}

func (t *dcacheInstance) access(addr uint32) {
	line := addr >> t.family.lineShift
	set := line & (t.family.sets - 1)
	tag := line/t.family.sets + 1
	switch {
	case t.tags[set] == tag:
		t.hits++
	case t.tags[set] == 0 && t.firstTag[set] == 0:
		// First access to this set in the slice: assume a hit and record
		// the assumed line for merge-time reconciliation.
		t.hits++
		t.firstTag[set] = tag
		t.tags[set] = tag
	default:
		t.misses++
		t.tags[set] = tag
	}
}

// SliceBegin implements core.SliceAware.
func (t *dcacheInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware: reconcile assumptions against the
// previous slices' merged final state, publish this slice's final state,
// and add the counts to the shared totals. Called in slice order.
func (t *dcacheInstance) SliceEnd(int) { t.merge() }

func (t *dcacheInstance) merge() {
	f := t.family
	for set, assumed := range t.firstTag {
		if assumed != 0 && f.runningTags[set] != assumed {
			t.hits--
			t.misses++
			f.adjusted++
		}
	}
	for set, tag := range t.tags {
		if tag != 0 {
			f.runningTags[set] = tag
		}
	}
	f.hits += t.hits
	f.misses += t.misses
}

// Fini implements core.Finisher. Under plain Pin the instance is the only
// "slice": its assumptions reconcile against the invalid initial state
// (all become cold misses), giving exactly a serial cold-start
// simulation.
func (t *dcacheInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out != nil {
		total := t.family.hits + t.family.misses
		rate := 0.0
		if total > 0 {
			rate = float64(t.family.hits) / float64(total)
		}
		fmt.Fprintf(t.family.out, "dcache: %d accesses, %d hits, %d misses (%.2f%% hit rate, %d adjusted)\n",
			total, t.family.hits, t.family.misses, 100*rate, t.family.adjusted)
	}
}
