package tools

import (
	"fmt"
	"io"
	"sort"

	"superpin/internal/core"
	"superpin/internal/isa"
	"superpin/internal/pin"
)

// CallProf profiles function calls: for every call instruction (jal/jalr
// that links a return address) it records the call target, giving dynamic
// call counts per callee. Indirect call targets are resolved at analysis
// time from the register state. Per-slice counts merge by addition.
type CallProf struct {
	out    io.Writer
	merged map[uint32]uint64 // callee entry -> calls
	total  uint64
}

// NewCallProf creates a call profiler. out may be nil.
func NewCallProf(out io.Writer) *CallProf {
	return &CallProf{out: out, merged: make(map[uint32]uint64)}
}

// Factory returns the per-process tool factory.
func (cp *CallProf) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &callProfInstance{
			family:   cp,
			superpin: ctl.SuperPin(),
			local:    make(map[uint32]uint64),
		}
	}
}

// Callees returns the merged per-callee dynamic call counts.
func (cp *CallProf) Callees() map[uint32]uint64 { return cp.merged }

// Total returns the merged total number of calls.
func (cp *CallProf) Total() uint64 { return cp.total }

type callProfInstance struct {
	family   *CallProf
	superpin bool
	local    map[uint32]uint64
}

// Instrument implements core.Tool: calls are jal/jalr instructions whose
// destination register is nonzero (a linked return address). The target
// is sampled after execution from the new PC.
func (t *callProfInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			in := ins.Inst()
			if !in.Op.IsCall() || in.Rd == isa.RegZero {
				continue
			}
			ins.InsertCall(pin.After, func(c *pin.Ctx) {
				t.local[c.Regs.PC]++
			})
		}
	}
}

// SliceBegin implements core.SliceAware.
func (t *callProfInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *callProfInstance) SliceEnd(int) { t.merge() }

func (t *callProfInstance) merge() {
	for callee, n := range t.local {
		t.family.merged[callee] += n
		t.family.total += n
	}
}

// Fini implements core.Finisher.
func (t *callProfInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out == nil {
		return
	}
	callees := make([]uint32, 0, len(t.family.merged))
	for c := range t.family.merged {
		callees = append(callees, c)
	}
	sort.Slice(callees, func(i, j int) bool {
		return t.family.merged[callees[i]] > t.family.merged[callees[j]]
	})
	fmt.Fprintf(t.family.out, "callprof: %d calls to %d callees; hottest:\n",
		t.family.total, len(t.family.merged))
	for i, c := range callees {
		if i == 10 {
			break
		}
		fmt.Fprintf(t.family.out, "  %#08x: %d calls\n", c, t.family.merged[c])
	}
}
