package tools

import (
	"testing"

	"superpin/internal/core"
	"superpin/internal/pin"
	"superpin/internal/workload"
)

func TestBBCountInsTotalExactAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("vpr")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	native, err := core.RunNative(cfg, prog, 0)
	if err != nil {
		t.Fatal(err)
	}

	serial := NewBBCount(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	if serial.InsTotal() != native.Ins {
		t.Fatalf("serial weighted total %d, native %d", serial.InsTotal(), native.Ins)
	}

	par := NewBBCount(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if par.InsTotal() != native.Ins {
		t.Fatalf("superpin weighted total %d, native %d", par.InsTotal(), native.Ins)
	}
	if len(par.Blocks()) < len(serial.Blocks()) {
		t.Fatalf("superpin saw fewer block entries (%d) than serial (%d)",
			len(par.Blocks()), len(serial.Blocks()))
	}
}

func TestCallProfIdenticalAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("gap")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	serial := NewCallProf(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	par := NewCallProf(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if serial.Total() == 0 {
		t.Fatal("no calls profiled")
	}
	if serial.Total() != par.Total() {
		t.Fatalf("totals differ: %d vs %d", serial.Total(), par.Total())
	}
	if len(serial.Callees()) != len(par.Callees()) {
		t.Fatalf("callee sets differ: %d vs %d", len(serial.Callees()), len(par.Callees()))
	}
	for callee, n := range serial.Callees() {
		if par.Callees()[callee] != n {
			t.Fatalf("callee %#x: %d vs %d", callee, n, par.Callees()[callee])
		}
	}
	// The workload's kernels all call the shared helper; it must be the
	// hottest callee along with the kernels themselves.
	var max uint64
	for _, n := range serial.Callees() {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		t.Fatal("degenerate call profile")
	}
}

func TestMemProfileIdenticalAcrossModes(t *testing.T) {
	spec, _ := workload.ByName("swim")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	serial := NewMemProfile(nil)
	if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	par := NewMemProfile(nil)
	res, err := core.Run(cfg, prog, par.Factory(), spOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sr, sw := serial.Totals()
	pr, pw := par.Totals()
	if sr != pr || sw != pw {
		t.Fatalf("totals differ: serial %d/%d vs superpin %d/%d", sr, sw, pr, pw)
	}
	if sr == 0 || sw == 0 {
		t.Fatal("degenerate memory profile")
	}
	if serial.WorkingSet() != par.WorkingSet() {
		t.Fatalf("working sets differ: %d vs %d", serial.WorkingSet(), par.WorkingSet())
	}
	for page, s := range serial.Pages() {
		p := par.Pages()[page]
		if p == nil || *p != *s {
			t.Fatalf("page %#x: %+v vs %+v", page, s, p)
		}
	}
}
