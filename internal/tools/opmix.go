package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/isa"
	"superpin/internal/pin"
)

// OpMix profiles the dynamic instruction-type mix (one counter per
// opcode), an instruction-granularity tool with auto-merged (summed)
// shared counters — the "profiling dynamic instruction types" workload
// class the paper mentions in Section 4.5.
type OpMix struct {
	out    io.Writer
	shared []uint64
}

// NewOpMix creates an opcode-mix profiler. out may be nil.
func NewOpMix(out io.Writer) *OpMix { return &OpMix{out: out} }

// Factory returns the per-process tool factory.
func (om *OpMix) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		inst := &opmixInstance{family: om, local: make([]uint64, isa.NumOpcodes)}
		inst.shared = ctl.CreateSharedArea(inst.local, core.MergeSum)
		if ctl.SliceNum() == -1 {
			om.shared = inst.shared
		}
		return inst
	}
}

// Count returns the merged dynamic count for op. Valid after the run.
func (om *OpMix) Count(op isa.Opcode) uint64 {
	if om.shared == nil || !op.Valid() {
		return 0
	}
	return om.shared[op]
}

// Total returns the merged total dynamic instruction count.
func (om *OpMix) Total() uint64 {
	var n uint64
	for _, v := range om.shared {
		n += v
	}
	return n
}

type opmixInstance struct {
	family *OpMix
	local  []uint64
	shared []uint64
}

// Instrument implements core.Tool.
func (t *opmixInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			op := ins.Inst().Op
			ins.InsertCall(pin.Before, func(*pin.Ctx) { t.local[op]++ })
		}
	}
}

// Fini implements core.Finisher.
func (t *opmixInstance) Fini(code uint32) {
	if t.family.out == nil {
		return
	}
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if n := t.shared[op]; n > 0 {
			fmt.Fprintf(t.family.out, "%-8v %12d\n", op, n)
		}
	}
}
