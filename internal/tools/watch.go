package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/jit"
	"superpin/internal/pin"
)

// Watch is a register watchpoint tool: at the head of every basic block
// it checks whether a watched register has dropped below a fence
// address, and counts the blocks entered in that state. The canonical
// use is a data-fence watchpoint — watch the tool's data-base register
// against the start of the data region, so any block entered with the
// pointer escaped below the fence is caught and counted.
//
// The check is attached with InsertIfCondCall, declaring its shape
// (`R[reg] < fence`, unsigned) to the engine. Where the load-time value
// analysis proves the register's range, the predicate folds at compile
// time and the per-block check costs the host nothing — on well-behaved
// programs the watchpoint is provably never hit, and the engine's
// pin.sa.ip.folded counter records the checks it never had to run. The
// count and the virtual timeline are byte-identical with folding off
// (`spbench -exp ipdiff` proves it): folding substitutes the verdict
// the predicate would have computed, never a different one.
type Watch struct {
	reg     uint8
	fence   uint32
	declare bool
	out     io.Writer
	shared  []uint64
}

// NewWatch returns a watchpoint on reg against fence, declaring the
// predicate shape to the engine (fold-eligible).
func NewWatch(out io.Writer, reg uint8, fence uint32) *Watch {
	return &Watch{reg: reg, fence: fence, declare: true, out: out}
}

// NewWatchOpaque is NewWatch without the shape declaration: the
// predicate is inserted as a plain InsertIfCall the engine cannot fold,
// so every check evaluates (and spills) at run time. It exists to
// measure the liveness tier in isolation — same checks, same counts,
// only the save/restore masks move.
func NewWatchOpaque(out io.Writer, reg uint8, fence uint32) *Watch {
	return &Watch{reg: reg, fence: fence, out: out}
}

// Factory returns the per-process tool factory.
func (w *Watch) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		inst := &watchInstance{family: w, local: make([]uint64, 1)}
		inst.shared = ctl.CreateSharedArea(inst.local, core.MergeSum)
		if ctl.SliceNum() == -1 {
			w.shared = inst.shared
		}
		return inst
	}
}

// Hits returns the final merged count of blocks entered with the
// watched register below the fence. Valid after the run.
func (w *Watch) Hits() uint64 {
	if w.shared == nil {
		return 0
	}
	return w.shared[0]
}

type watchInstance struct {
	family *Watch
	local  []uint64
	shared []uint64
}

// Instrument implements core.Tool.
func (t *watchInstance) Instrument(tr *pin.Trace) {
	reg, fence := t.family.reg, t.family.fence
	pred := func(ctx *pin.Ctx) bool { return ctx.Regs.R[reg] < fence }
	for _, bbl := range tr.Bbls() {
		head := bbl.InsHead()
		if t.family.declare {
			// The predicate is pure and returns exactly the declared
			// comparison — the InsertIfCondCall contract that makes the
			// engine's compile-time folding sound.
			head.InsertIfCondCall(pin.Before, pred,
				jit.Cond{Kind: jit.CondLTU, Reg: reg, Imm: fence})
		} else {
			head.InsertIfCall(pin.Before, pred)
		}
		head.InsertThenCall(pin.Before, func(*pin.Ctx) { t.local[0]++ })
	}
}

// Fini implements core.Finisher.
func (t *watchInstance) Fini(code uint32) {
	if t.family.out != nil {
		fmt.Fprintf(t.family.out, "Watchpoint hits: %d\n", t.shared[0])
	}
}
