// Package tools provides the SuperPin-aware Pintools used by the paper's
// evaluation and examples: the icount1/icount2 instruction counters
// (Section 5.1 / Section 6), the dcache data-cache SuperTool with
// assume-hit reconciliation (Section 5.2), an instruction tracer with
// in-order merge, a branch profiler, an opcode-mix profiler, and a
// Shadow-Profiler-style sampler built on SP_EndSlice.
//
// Every tool follows the paper's structure: a factory creates one
// instance per process (master and each slice); slice-local data is
// merged into shared state in slice order; the same tool code runs
// unchanged under plain Pin, where CreateSharedArea hands back the local
// data.
package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// Icount counts dynamically executed instructions, in one of two modes:
// per-instruction insertion (icount1: one analysis call after every
// instruction) or per-basic-block insertion (icount2: one call per block
// adding the block's size), exactly the two variants the paper evaluates.
type Icount struct {
	perIns bool
	out    io.Writer
	shared []uint64
}

// NewIcount1 returns an instruction-granularity counter.
func NewIcount1(out io.Writer) *Icount { return &Icount{perIns: true, out: out} }

// NewIcount2 returns a basic-block-granularity counter (paper Figure 2).
func NewIcount2(out io.Writer) *Icount { return &Icount{perIns: false, out: out} }

// Factory returns the per-process tool factory.
func (ic *Icount) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		inst := &icountInstance{family: ic, local: make([]uint64, 1)}
		inst.shared = ctl.CreateSharedArea(inst.local, core.MergeSum)
		if ctl.SliceNum() == -1 {
			ic.shared = inst.shared
		}
		return inst
	}
}

// Total returns the final merged instruction count. Valid after the run.
func (ic *Icount) Total() uint64 {
	if ic.shared == nil {
		return 0
	}
	return ic.shared[0]
}

type icountInstance struct {
	family *Icount
	local  []uint64
	shared []uint64
}

// Instrument implements core.Tool.
func (t *icountInstance) Instrument(tr *pin.Trace) {
	if t.family.perIns {
		for _, bbl := range tr.Bbls() {
			for _, ins := range bbl.Ins() {
				ins.InsertCall(pin.Before, func(*pin.Ctx) { t.local[0]++ })
			}
		}
		return
	}
	for _, bbl := range tr.Bbls() {
		n := uint64(bbl.NumIns())
		bbl.InsertCall(pin.Before, func(*pin.Ctx) { t.local[0] += n })
	}
}

// Fini implements core.Finisher: print the merged total, like the paper's
// Figure 2 example.
func (t *icountInstance) Fini(code uint32) {
	if t.family.out != nil {
		fmt.Fprintf(t.family.out, "Total Count: %d\n", t.shared[0])
	}
}
