package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/pin"
)

// ACache is a set-associative LRU data-cache simulator as a SuperPin
// tool — a generalization of the paper's direct-mapped dcache procedure
// (Section 5.2) to associative caches, with an *exact* merge.
//
// Exactness rests on the LRU stack property: every line a slice touches
// is, from that moment on, more recent than every line it never touches.
// Therefore:
//
//   - re-accesses within a slice are decided exactly by the slice's own
//     LRU order over touched lines (untouched prior-state lines are
//     always below them);
//   - only each line's *first* touch in the slice depends on the unknown
//     prior state. The slice assumes those are hits and records them in
//     order. At merge time (slice order), the previous slices' final
//     per-set LRU stack is known, and the first touch of line L after d
//     earlier distinct first-touches in the set is a real hit iff
//     d + rank(L among prior-stack lines not yet re-touched) < ways;
//   - the published final stack is the slice's touched lines in final
//     recency order, followed by untouched prior-state lines, truncated
//     to the associativity.
//
// With ways = 1 this degenerates to the paper's direct-mapped procedure.
type ACache struct {
	lineShift uint
	sets      uint32
	ways      int
	out       io.Writer

	// Merged state, updated in slice order.
	stacks   [][]uint32 // per set: tags, most recent first; len <= ways
	hits     uint64
	misses   uint64
	adjusted uint64
}

// NewACache creates a ways-associative LRU cache simulator with the
// given total size and line size in bytes. Invalid geometry is a
// configuration error reported to the caller, not a panic: these values
// typically arrive from command lines.
func NewACache(cacheBytes, lineBytes, ways int, out io.Writer) (*ACache, error) {
	if cacheBytes <= 0 || lineBytes <= 0 || ways <= 0 ||
		cacheBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("tools: bad acache geometry: %d bytes / %d per line / %d ways (need positive sizes, total a multiple of line*ways)",
			cacheBytes, lineBytes, ways)
	}
	lineShift := uint(0)
	for 1<<lineShift < lineBytes {
		lineShift++
	}
	if 1<<lineShift != lineBytes {
		return nil, fmt.Errorf("tools: acache line size %d must be a power of two", lineBytes)
	}
	sets := uint32(cacheBytes / (lineBytes * ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tools: acache set count %d must be a power of two (cache %d / line %d / ways %d)",
			sets, cacheBytes, lineBytes, ways)
	}
	return &ACache{
		lineShift: lineShift,
		sets:      sets,
		ways:      ways,
		out:       out,
		stacks:    make([][]uint32, sets),
	}, nil
}

// Factory returns the per-process tool factory.
func (a *ACache) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &acacheInstance{
			family:   a,
			superpin: ctl.SuperPin(),
			sets:     make([]acacheSet, a.sets),
		}
	}
}

// Hits returns the merged hit count.
func (a *ACache) Hits() uint64 { return a.hits }

// Misses returns the merged miss count.
func (a *ACache) Misses() uint64 { return a.misses }

// Adjusted returns how many assumed hits were corrected at merge time.
func (a *ACache) Adjusted() uint64 { return a.adjusted }

// acacheSet is one set's slice-local state.
type acacheSet struct {
	lru     []uint32        // touched lines, most recent first, len <= ways
	touched map[uint32]bool // every line touched in this slice
	first   []uint32        // first-touch order
}

type acacheInstance struct {
	family   *ACache
	superpin bool
	sets     []acacheSet
	hits     uint64
	misses   uint64
}

// Instrument implements core.Tool.
func (t *acacheInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			if ins.MemSize() == 0 {
				continue
			}
			ins.InsertCall(pin.Before, func(c *pin.Ctx) { t.access(c.MemEA()) })
		}
	}
}

func (t *acacheInstance) access(addr uint32) {
	line := addr >> t.family.lineShift
	setIdx := line & (t.family.sets - 1)
	tag := line / t.family.sets
	s := &t.sets[setIdx]

	if s.touched == nil {
		s.touched = make(map[uint32]bool)
	}
	if !s.touched[tag] {
		// First touch in this slice: assume a hit (reconciled at merge).
		s.touched[tag] = true
		s.first = append(s.first, tag)
		t.hits++
		t.promote(s, tag, true)
		return
	}
	// Re-access: decided exactly by the local LRU over touched lines.
	if indexOf(s.lru, tag) >= 0 {
		t.hits++
		t.promote(s, tag, false)
	} else {
		t.misses++
		t.promote(s, tag, true)
	}
}

// promote moves tag to the top of the set's local LRU, inserting it if
// asked, evicting beyond the associativity.
func (t *acacheInstance) promote(s *acacheSet, tag uint32, insert bool) {
	if i := indexOf(s.lru, tag); i >= 0 {
		copy(s.lru[1:i+1], s.lru[:i])
		s.lru[0] = tag
		return
	}
	if !insert {
		return
	}
	s.lru = append(s.lru, 0)
	copy(s.lru[1:], s.lru[:len(s.lru)-1])
	s.lru[0] = tag
	if len(s.lru) > t.family.ways {
		s.lru = s.lru[:t.family.ways]
	}
}

func indexOf(lines []uint32, tag uint32) int {
	for i, l := range lines {
		if l == tag {
			return i
		}
	}
	return -1
}

// SliceBegin implements core.SliceAware.
func (t *acacheInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *acacheInstance) SliceEnd(int) { t.merge() }

func (t *acacheInstance) merge() {
	f := t.family
	for setIdx := range t.sets {
		s := &t.sets[setIdx]
		if s.touched == nil {
			continue
		}
		prior := f.stacks[setIdx]

		// Reconcile first touches in order: the i-th first touch of line
		// L is a real hit iff i + rank(L among prior lines not yet
		// first-touched) < ways.
		seen := make(map[uint32]bool, len(s.first))
		for d, tag := range s.first {
			rank := -1
			pos := 0
			for _, p := range prior {
				if seen[p] {
					continue // already re-touched: now above all prior lines
				}
				if p == tag {
					rank = pos
					break
				}
				pos++
			}
			if rank < 0 || d+rank >= f.ways {
				t.hits--
				t.misses++
				f.adjusted++
			}
			seen[tag] = true
		}

		// Publish the set's final stack: touched lines in final recency
		// order, then untouched prior lines, truncated to ways.
		next := make([]uint32, 0, f.ways)
		next = append(next, s.lru...)
		for _, p := range prior {
			if len(next) == f.ways {
				break
			}
			if !s.touched[p] {
				next = append(next, p)
			}
		}
		f.stacks[setIdx] = next
	}
	f.hits += t.hits
	f.misses += t.misses
}

// Fini implements core.Finisher. Under plain Pin the single instance
// reconciles against the empty initial state (all first touches become
// cold misses), which is exactly a serial cold-start simulation.
func (t *acacheInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out != nil {
		total := t.family.hits + t.family.misses
		rate := 0.0
		if total > 0 {
			rate = float64(t.family.hits) / float64(total)
		}
		fmt.Fprintf(t.family.out, "acache(%d-way): %d accesses, %d hits, %d misses (%.2f%% hit rate, %d adjusted)\n",
			t.family.ways, total, t.family.hits, t.family.misses, 100*rate, t.family.adjusted)
	}
}
