package tools

import (
	"testing"

	"superpin/internal/core"
	"superpin/internal/pin"
	"superpin/internal/workload"
)

// TestACacheExactAcrossModes is the associative generalization of the
// Section 5.2 claim: for set-associative LRU caches, the first-touch
// assumption plus stack-property reconciliation reproduces the serial
// simulation exactly.
func TestACacheExactAcrossModes(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		for _, name := range []string{"mcf", "gzip"} {
			spec, _ := workload.ByName(name)
			spec = spec.Scaled(0.01)
			prog, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := testCfg()

			serial := mustACache(t, 1<<14, 32, ways)
			if _, err := core.RunPin(cfg, prog, serial.Factory(), pin.DefaultCost()); err != nil {
				t.Fatal(err)
			}
			par := mustACache(t, 1<<14, 32, ways)
			res, err := core.Run(cfg, prog, par.Factory(), spOpts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if serial.Hits() != par.Hits() || serial.Misses() != par.Misses() {
				t.Fatalf("%s %d-way: serial %d/%d vs superpin %d/%d (adjusted %d)",
					name, ways, serial.Hits(), serial.Misses(),
					par.Hits(), par.Misses(), par.Adjusted())
			}
			if serial.Hits()+serial.Misses() == 0 {
				t.Fatalf("%s: no accesses", name)
			}
		}
	}
}

// TestACacheOneWayMatchesDCache: with a single way the associative
// simulator must agree with the direct-mapped dcache tool.
func TestACacheOneWayMatchesDCache(t *testing.T) {
	spec, _ := workload.ByName("swim")
	spec = spec.Scaled(0.008)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	dm := mustDCache(t, 1<<13, 32)
	if _, err := core.RunPin(cfg, prog, dm.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	ac := mustACache(t, 1<<13, 32, 1)
	if _, err := core.RunPin(cfg, prog, ac.Factory(), pin.DefaultCost()); err != nil {
		t.Fatal(err)
	}
	if dm.Hits() != ac.Hits() || dm.Misses() != ac.Misses() {
		t.Fatalf("dcache %d/%d vs 1-way acache %d/%d",
			dm.Hits(), dm.Misses(), ac.Hits(), ac.Misses())
	}
}

// TestACacheAssociativityHelps: more ways must not decrease the hit rate
// on the same workload (LRU inclusion property across associativities
// with equal set count does not hold in general, but with equal total
// size the trend should hold for these access patterns).
func TestACacheAssociativityReasonable(t *testing.T) {
	spec, _ := workload.ByName("art")
	spec = spec.Scaled(0.01)
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()

	rate := func(ways int) float64 {
		c := mustACache(t, 1<<13, 32, ways)
		if _, err := core.RunPin(cfg, prog, c.Factory(), pin.DefaultCost()); err != nil {
			t.Fatal(err)
		}
		return float64(c.Hits()) / float64(c.Hits()+c.Misses())
	}
	r1, r4 := rate(1), rate(4)
	if r1 <= 0 || r1 >= 1 || r4 <= 0 || r4 >= 1 {
		t.Fatalf("degenerate hit rates: %v %v", r1, r4)
	}
}

func mustACache(t *testing.T, cacheBytes, lineBytes, ways int) *ACache {
	t.Helper()
	a, err := NewACache(cacheBytes, lineBytes, ways, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestACacheGeometryValidation(t *testing.T) {
	bad := [][3]int{{0, 32, 1}, {1024, 0, 1}, {1024, 32, 0}, {1000, 32, 2}, {1024, 48, 2}}
	for _, g := range bad {
		if a, err := NewACache(g[0], g[1], g[2], nil); err == nil || a != nil {
			t.Errorf("geometry %v accepted (err=%v)", g, err)
		}
	}
	if _, err := NewACache(1<<14, 32, 4, nil); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}
