package tools

import (
	"fmt"
	"io"

	"superpin/internal/core"
	"superpin/internal/mem"
	"superpin/internal/pin"
)

// MemProfile profiles the data working set: per-page access counts and
// the read/write split, an instruction-granularity memory tool whose
// per-slice maps merge by addition.
type MemProfile struct {
	out    io.Writer
	merged map[uint32]*PageCounts
}

// PageCounts is the access profile of one guest page.
type PageCounts struct {
	Reads  uint64
	Writes uint64
}

// NewMemProfile creates a working-set profiler. out may be nil.
func NewMemProfile(out io.Writer) *MemProfile {
	return &MemProfile{out: out, merged: make(map[uint32]*PageCounts)}
}

// Factory returns the per-process tool factory.
func (mp *MemProfile) Factory() core.ToolFactory {
	return func(ctl *core.ToolCtl) core.Tool {
		return &memProfileInstance{
			family:   mp,
			superpin: ctl.SuperPin(),
			local:    make(map[uint32]*PageCounts),
		}
	}
}

// Pages returns the merged per-page profile, keyed by page number.
func (mp *MemProfile) Pages() map[uint32]*PageCounts { return mp.merged }

// WorkingSet returns the number of distinct data pages touched.
func (mp *MemProfile) WorkingSet() int { return len(mp.merged) }

// Totals returns the merged read and write access counts.
func (mp *MemProfile) Totals() (reads, writes uint64) {
	for _, pc := range mp.merged {
		reads += pc.Reads
		writes += pc.Writes
	}
	return reads, writes
}

type memProfileInstance struct {
	family   *MemProfile
	superpin bool
	local    map[uint32]*PageCounts
}

// Instrument implements core.Tool.
func (t *memProfileInstance) Instrument(tr *pin.Trace) {
	for _, bbl := range tr.Bbls() {
		for _, ins := range bbl.Ins() {
			if ins.MemSize() == 0 {
				continue
			}
			isRead := ins.IsMemRead()
			ins.InsertCall(pin.Before, func(c *pin.Ctx) {
				page := c.MemEA() >> mem.PageShift
				pc := t.local[page]
				if pc == nil {
					pc = &PageCounts{}
					t.local[page] = pc
				}
				if isRead {
					pc.Reads++
				} else {
					pc.Writes++
				}
			})
		}
	}
}

// SliceBegin implements core.SliceAware.
func (t *memProfileInstance) SliceBegin(int) {}

// SliceEnd implements core.SliceAware.
func (t *memProfileInstance) SliceEnd(int) { t.merge() }

func (t *memProfileInstance) merge() {
	for page, pc := range t.local {
		m := t.family.merged[page]
		if m == nil {
			m = &PageCounts{}
			t.family.merged[page] = m
		}
		m.Reads += pc.Reads
		m.Writes += pc.Writes
	}
}

// Fini implements core.Finisher.
func (t *memProfileInstance) Fini(code uint32) {
	if !t.superpin {
		t.merge()
	}
	if t.family.out == nil {
		return
	}
	reads, writes := t.family.Totals()
	fmt.Fprintf(t.family.out, "memprofile: %d pages touched, %d reads, %d writes\n",
		t.family.WorkingSet(), reads, writes)
}
