package mem

import "testing"

func BenchmarkStoreLoadWord(b *testing.B) {
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i*4) & 0xffff
		m.StoreWord(addr, uint32(i))
		if v, _ := m.LoadWord(addr); v != uint32(i) {
			b.Fatal("bad read")
		}
	}
}

func BenchmarkForkCOW(b *testing.B) {
	parent := New()
	for i := uint32(0); i < 64; i++ {
		parent.StoreWord(i*PageSize, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := parent.Fork()
		// Touch 8 of the 64 shared pages.
		for j := uint32(0); j < 8; j++ {
			child.StoreWord(j*PageSize+8, uint32(i))
		}
		child.Release()
	}
}
