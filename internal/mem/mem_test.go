package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		addr &^= 3
		if fault := m.StoreWord(addr, v); fault != nil {
			return false
		}
		got, fault := m.LoadWord(addr)
		return fault == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestByteWordConsistency(t *testing.T) {
	m := New()
	if f := m.StoreWord(0x1000, 0x11223344); f != nil {
		t.Fatal(f)
	}
	want := []byte{0x44, 0x33, 0x22, 0x11} // little endian
	for i, w := range want {
		b, f := m.LoadByte(0x1000 + uint32(i))
		if f != nil || b != w {
			t.Fatalf("byte %d = %#x (fault %v), want %#x", i, b, f, w)
		}
	}
}

func TestMisalignedFaults(t *testing.T) {
	m := New()
	if _, f := m.LoadWord(2); f == nil {
		t.Error("misaligned load did not fault")
	}
	if f := m.StoreWord(1, 0); f == nil {
		t.Error("misaligned store did not fault")
	}
	if f := m.StoreWord(1, 0); f == nil || f.Error() == "" {
		t.Error("fault Error() empty")
	}
}

func TestZeroFill(t *testing.T) {
	m := New()
	v, f := m.LoadWord(0xdeadbe00)
	if f != nil || v != 0 {
		t.Fatalf("fresh page read = %d, %v", v, f)
	}
	// Pure reads must not materialize backing pages: sparse reads would
	// otherwise bloat every image and inflate fork costs.
	if m.TouchedPages != 0 || m.Pages() != 0 {
		t.Fatalf("pure read materialized: TouchedPages=%d Pages=%d, want 0 0",
			m.TouchedPages, m.Pages())
	}
	// A write to the same page materializes it and reads back correctly.
	if f := m.StoreWord(0xdeadbe04, 7); f != nil {
		t.Fatal(f)
	}
	if m.TouchedPages != 1 || m.Pages() != 1 {
		t.Fatalf("after write: TouchedPages=%d Pages=%d, want 1 1", m.TouchedPages, m.Pages())
	}
	if v, _ := m.LoadWord(0xdeadbe00); v != 0 {
		t.Fatalf("zero word after page write = %d", v)
	}
	if v, _ := m.LoadWord(0xdeadbe04); v != 7 {
		t.Fatalf("written word = %d, want 7", v)
	}
}

func TestSparseReadsDoNotBloat(t *testing.T) {
	m := New()
	buf := make([]byte, 64)
	for i := uint32(0); i < 1000; i++ {
		m.ReadBytes(i*PageSize, buf)
		if _, f := m.LoadByte(i*PageSize + 99); f != nil {
			t.Fatal(f)
		}
	}
	if m.Pages() != 0 || m.TouchedPages != 0 {
		t.Fatalf("sparse reads materialized %d pages (touched %d)", m.Pages(), m.TouchedPages)
	}
}

func TestForkIsolation(t *testing.T) {
	parent := New()
	parent.StoreWord(0x100, 42)
	child := parent.Fork()

	// Child sees parent's data.
	if v, _ := child.LoadWord(0x100); v != 42 {
		t.Fatalf("child read %d, want 42", v)
	}
	// Child write does not affect parent.
	child.StoreWord(0x100, 99)
	if v, _ := parent.LoadWord(0x100); v != 42 {
		t.Fatalf("parent read %d after child write, want 42", v)
	}
	if v, _ := child.LoadWord(0x100); v != 99 {
		t.Fatalf("child read %d after own write, want 99", v)
	}
	// Parent write after fork does not affect child.
	parent.StoreWord(0x104, 7)
	// 0x104 is on the same (already-copied-by-child? no: child copied its
	// own page; parent still owns original which the child no longer
	// shares) page.
	if v, _ := child.LoadWord(0x104); v != 0 {
		t.Fatalf("child sees parent's post-fork write: %d", v)
	}
}

func TestForkCopyAccounting(t *testing.T) {
	parent := New()
	for i := uint32(0); i < 8; i++ {
		parent.StoreWord(i*PageSize, i)
	}
	child := parent.Fork()
	if child.SharedPages() != 8 {
		t.Fatalf("SharedPages = %d, want 8", child.SharedPages())
	}
	before := child.CopyEvents
	for i := uint32(0); i < 3; i++ {
		child.StoreWord(i*PageSize+4, 1)
	}
	if got := child.CopyEvents - before; got != 3 {
		t.Fatalf("CopyEvents delta = %d, want 3", got)
	}
	// Writing the same pages again must not copy again.
	for i := uint32(0); i < 3; i++ {
		child.StoreWord(i*PageSize+8, 2)
	}
	if got := child.CopyEvents - before; got != 3 {
		t.Fatalf("CopyEvents after rewrite = %d, want 3", got)
	}
	_ = child
}

func TestForkChainCopyOnWrite(t *testing.T) {
	a := New()
	a.StoreWord(0, 1)
	b := a.Fork()
	c := b.Fork()
	// Page shared by three images. Writing in b should copy once; a and c
	// still share the original.
	b.StoreWord(0, 2)
	va, _ := a.LoadWord(0)
	vb, _ := b.LoadWord(0)
	vc, _ := c.LoadWord(0)
	if va != 1 || vb != 2 || vc != 1 {
		t.Fatalf("a=%d b=%d c=%d, want 1 2 1", va, vb, vc)
	}
}

func TestRelease(t *testing.T) {
	a := New()
	a.StoreWord(0, 1)
	b := a.Fork()
	if a.SharedPages() != 1 {
		t.Fatalf("SharedPages = %d, want 1", a.SharedPages())
	}
	b.Release()
	if a.SharedPages() != 0 {
		t.Fatalf("after Release, SharedPages = %d, want 0", a.SharedPages())
	}
	// Write in a must no longer count as a COW copy.
	before := a.CopyEvents
	a.StoreWord(0, 5)
	if a.CopyEvents != before {
		t.Fatal("write after Release still performed a COW copy")
	}
}

func TestReadWriteBytesAcrossPages(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize+17)
	r := rand.New(rand.NewSource(2))
	r.Read(data)
	start := uint32(PageSize - 5) // straddle boundaries
	m.WriteBytes(start, data)
	got := make([]byte, len(data))
	m.ReadBytes(start, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestReadWords(t *testing.T) {
	m := New()
	for i := uint32(0); i < 10; i++ {
		m.StoreWord(0x200+i*4, i*i)
	}
	ws, f := m.ReadWords(0x200, 10)
	if f != nil {
		t.Fatal(f)
	}
	for i, w := range ws {
		if w != uint32(i*i) {
			t.Fatalf("word %d = %d, want %d", i, w, i*i)
		}
	}
	if _, f := m.ReadWords(0x201, 2); f == nil {
		t.Error("misaligned ReadWords did not fault")
	}
}

func TestForkSharesUntouchedPagesByReference(t *testing.T) {
	parent := New()
	for i := uint32(0); i < 100; i++ {
		parent.StoreWord(i*PageSize, i)
	}
	child := parent.Fork()
	if child.Pages() != 100 {
		t.Fatalf("child pages = %d, want 100", child.Pages())
	}
	// Reading in the child must not copy anything.
	for i := uint32(0); i < 100; i++ {
		child.LoadWord(i * PageSize)
	}
	if child.CopyEvents != 0 {
		t.Fatalf("reads caused %d copies", child.CopyEvents)
	}
}
