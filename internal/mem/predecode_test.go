package mem

import (
	"testing"

	"superpin/internal/isa"
)

// word assembles a little-endian instruction word.
func word(b []byte, off int, w uint32) {
	b[off] = byte(w)
	b[off+1] = byte(w >> 8)
	b[off+2] = byte(w >> 16)
	b[off+3] = byte(w >> 24)
}

// testImage builds a two-page image: page 0 holds encoded instructions,
// page 1 holds data.
func testImage(t *testing.T) []Span {
	t.Helper()
	code := make([]byte, 64)
	for i := 0; i < len(code); i += 4 {
		w, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: int32(i)})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		word(code, i, w)
	}
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	return []Span{{Addr: 0x1000, Data: code}, {Addr: 0x2000, Data: data}}
}

func loadSpans(m *Memory, spans []Span) {
	for _, s := range spans {
		m.WriteBytes(s.Addr, s.Data)
	}
}

func TestAdoptPredecodeSharesViews(t *testing.T) {
	spans := testImage(t)
	ps := BuildPredecodeSet(spans)
	if ps.Pages() != 2 {
		t.Fatalf("Pages() = %d, want 2", ps.Pages())
	}

	m := New()
	loadSpans(m, spans)
	if got := m.AdoptPredecode(ps); got != 2 {
		t.Fatalf("AdoptPredecode = %d, want 2", got)
	}
	// The adopted view must be the set's pointer, not a rebuild.
	pg := m.pages[0x1000>>PageShift]
	if pg.code.Load() != ps.pages[0x1000>>PageShift].code {
		t.Fatalf("adopted code view is not shared with the set")
	}
	in, err := m.FetchInst(0x1004)
	if err != nil {
		t.Fatalf("FetchInst: %v", err)
	}
	if in.Op != isa.OpADDI || in.Imm != 4 {
		t.Fatalf("FetchInst = %+v, want addi imm=4", in)
	}
}

// TestAdoptPredecodeSMCInvalidation is the self-modifying-code regression:
// a store to an adopted page must drop the shared view and subsequent
// fetches must see the new bytes.
func TestAdoptPredecodeSMCInvalidation(t *testing.T) {
	spans := testImage(t)
	ps := BuildPredecodeSet(spans)
	m := New()
	loadSpans(m, spans)
	m.AdoptPredecode(ps)

	if _, err := m.FetchInst(0x1000); err != nil {
		t.Fatalf("warm fetch: %v", err)
	}
	w, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 99})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if f := m.StoreWord(0x1000, w); f != nil {
		t.Fatalf("StoreWord: %v", f)
	}
	in, err := m.FetchInst(0x1000)
	if err != nil {
		t.Fatalf("fetch after SMC: %v", err)
	}
	if in.Rd != 2 || in.Imm != 99 {
		t.Fatalf("fetch after SMC = %+v, want the overwritten instruction", in)
	}
	// The set itself must be untouched: a fresh image adopting it still
	// sees the original instruction.
	m2 := New()
	loadSpans(m2, spans)
	if got := m2.AdoptPredecode(ps); got != 2 {
		t.Fatalf("fresh AdoptPredecode = %d, want 2", got)
	}
	in2, err := m2.FetchInst(0x1000)
	if err != nil {
		t.Fatalf("fresh fetch: %v", err)
	}
	if in2.Rd != 1 || in2.Imm != 0 {
		t.Fatalf("fresh fetch = %+v, want the original instruction", in2)
	}
}

// TestAdoptPredecodeSkipsMismatchedPages: adoption must verify page bytes
// and skip pages the image has since modified (stale cache defense).
func TestAdoptPredecodeSkipsMismatchedPages(t *testing.T) {
	spans := testImage(t)
	ps := BuildPredecodeSet(spans)
	m := New()
	loadSpans(m, spans)
	if f := m.StoreByte(0x2000, 0xFF); f != nil {
		t.Fatalf("StoreByte: %v", f)
	}
	if got := m.AdoptPredecode(ps); got != 1 {
		t.Fatalf("AdoptPredecode = %d, want 1 (modified page skipped)", got)
	}
	// Unmaterialized target image: nothing to adopt onto.
	if got := New().AdoptPredecode(ps); got != 0 {
		t.Fatalf("AdoptPredecode on empty image = %d, want 0", got)
	}
	// noCache images must not adopt (the fetch path ignores code views).
	m3 := New()
	loadSpans(m3, spans)
	m3.SetCaching(false)
	if got := m3.AdoptPredecode(ps); got != 0 {
		t.Fatalf("AdoptPredecode with caching off = %d, want 0", got)
	}
}

func TestPredecodeSetEncodeDecode(t *testing.T) {
	spans := testImage(t)
	ps := BuildPredecodeSet(spans)
	blob := EncodePredecodeSet(ps)
	got, err := DecodePredecodeSet(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Pages() != ps.Pages() {
		t.Fatalf("decoded pages = %d, want %d", got.Pages(), ps.Pages())
	}
	for pn, pp := range ps.pages {
		dp := got.pages[pn]
		if dp == nil {
			t.Fatalf("decoded set missing page %#x", pn)
		}
		if dp.data != pp.data {
			t.Fatalf("page %#x bytes differ after roundtrip", pn)
		}
		if *dp.code != *pp.code {
			t.Fatalf("page %#x code view differs after roundtrip", pn)
		}
	}

	// Corrupt payloads must fail loudly, never alias valid pages.
	for _, tc := range []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"truncated header", blob[:3]},
		{"truncated body", blob[:len(blob)-1]},
		{"trailing garbage", append(append([]byte{}, blob...), 0)},
	} {
		if _, err := DecodePredecodeSet(tc.blob); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}
