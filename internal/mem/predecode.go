package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// PredecodeSet is an immutable, shareable predecoded view of a program
// image's initialized pages: for every page the image touches, the raw
// page bytes plus the decoded form of every word. Building one is a pure
// function of the image bytes, so a set computed once (per process, or
// loaded from the on-disk artifact cache) can be adopted by any number of
// Memory images concurrently — codePage values are never mutated after
// construction, and the copy-on-write protocol guarantees a page's code
// view is dropped before its bytes change (self-modifying code).
type PredecodeSet struct {
	pages map[uint32]*predecodedPage
}

type predecodedPage struct {
	data [PageSize]byte
	code *codePage
}

// Span is one contiguous run of initialized image bytes (a load segment).
type Span struct {
	Addr uint32
	Data []byte
}

// BuildPredecodeSet materializes and predecodes every page covered by the
// spans. Pages outside the spans read as zeros in a fresh image and are
// not included. Overlapping spans apply in order, matching LoadInto.
func BuildPredecodeSet(spans []Span) *PredecodeSet {
	ps := &PredecodeSet{pages: make(map[uint32]*predecodedPage)}
	for _, s := range spans {
		addr, data := s.Addr, s.Data
		for len(data) > 0 {
			pn := addr >> PageShift
			pp := ps.pages[pn]
			if pp == nil {
				pp = &predecodedPage{}
				ps.pages[pn] = pp
			}
			off := addr & pageMask
			n := copy(pp.data[off:], data)
			data = data[n:]
			addr += uint32(n)
		}
	}
	for _, pp := range ps.pages { //detguard:ok pages decoded independently
		pp.code = predecode(&pp.data)
	}
	return ps
}

// Pages returns the number of pages in the set.
func (ps *PredecodeSet) Pages() int {
	if ps == nil {
		return 0
	}
	return len(ps.pages)
}

// AdoptPredecode installs the set's code views on m's materialized pages,
// skipping any page whose current bytes differ from the set's (the image
// may have been written since load). It returns the number of pages that
// adopted a view. Nil sets and noCache images adopt nothing.
//
// Adoption only ever stores a code view that is consistent with the
// page's bytes at the time of the store, so it preserves the page
// invariant writePage depends on: a later store to the page clears the
// view exactly as it clears a locally built one, and copy-on-write
// duplicates never inherit it.
func (m *Memory) AdoptPredecode(ps *PredecodeSet) int {
	if ps == nil || m.noCache {
		return 0
	}
	adopted := 0
	for pn, pp := range ps.pages { //detguard:ok pages adopted independently
		pg := m.pages[pn]
		if pg == nil || pg.data != pp.data {
			continue
		}
		pg.code.Store(pp.code)
		adopted++
	}
	return adopted
}

// EncodePredecodeSet serializes the set's raw page bytes. Only the bytes
// are stored: decoding rebuilds the code views with the running binary's
// own decoder, so a cached artifact can never carry decode results that
// disagree with the bytes (or with a newer decoder).
func EncodePredecodeSet(ps *PredecodeSet) []byte {
	pns := make([]uint32, 0, len(ps.pages))
	for pn := range ps.pages { //detguard:ok keys sorted below
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var buf bytes.Buffer
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(len(pns)))
	buf.Write(w[:])
	for _, pn := range pns {
		binary.LittleEndian.PutUint32(w[:], pn)
		buf.Write(w[:])
		pp := ps.pages[pn]
		buf.Write(pp.data[:])
	}
	return buf.Bytes()
}

// DecodePredecodeSet rebuilds a set from EncodePredecodeSet output,
// re-running predecode on the stored bytes.
func DecodePredecodeSet(data []byte) (*PredecodeSet, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("predecode set: short header")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	const rec = 4 + PageSize
	if uint64(len(data)) != uint64(n)*rec {
		return nil, fmt.Errorf("predecode set: length %d does not match %d pages", len(data), n)
	}
	ps := &PredecodeSet{pages: make(map[uint32]*predecodedPage, n)}
	for i := uint32(0); i < n; i++ {
		pn := binary.LittleEndian.Uint32(data)
		if _, dup := ps.pages[pn]; dup {
			return nil, fmt.Errorf("predecode set: duplicate page %#x", pn)
		}
		pp := &predecodedPage{}
		copy(pp.data[:], data[4:rec])
		pp.code = predecode(&pp.data)
		ps.pages[pn] = pp
		data = data[rec:]
	}
	return ps, nil
}
