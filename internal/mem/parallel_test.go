package mem

import (
	"sync"
	"testing"

	"superpin/internal/isa"
)

// TestConcurrentForkImages exercises the parallel-run memory contract:
// each image is single-owner, but images that share pages through Fork
// run concurrently on different goroutines, copy-on-write racing against
// reads of the shared originals. Page refcounts and predecode pointers
// are atomic, so this must be clean under the race detector and every
// image must stay isolated.
func TestConcurrentForkImages(t *testing.T) {
	parent := New()
	const pages = 16
	for pn := uint32(0); pn < pages; pn++ {
		for off := uint32(0); off < PageSize; off += 64 {
			parent.StoreWord(pn*PageSize+off, pn*1000+off)
		}
	}
	// A code page every image fetches from: addi r1, r1, 1 repeated.
	word, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1})
	if err != nil {
		t.Fatal(err)
	}
	const codeAddr = pages * PageSize
	for i := uint32(0); i < 64; i++ {
		parent.StoreWord(codeAddr+i*4, word)
	}

	const children = 8
	imgs := make([]*Memory, children)
	for i := range imgs {
		imgs[i] = parent.Fork()
	}

	var wg sync.WaitGroup
	for i, img := range imgs {
		wg.Add(1)
		go func(i int, img *Memory) {
			defer wg.Done()
			// Write a child-unique value into every page (forces COW on
			// all of them), interleaved with reads of untouched pages and
			// predecoded fetches from the shared code page.
			for pn := uint32(0); pn < pages; pn++ {
				if f := img.StoreWord(pn*PageSize, uint32(i)+1); f != nil {
					t.Errorf("child %d: store fault %v", i, f)
					return
				}
				if v, f := img.LoadWord((pn+1)%pages*PageSize + 64); f != nil || v%1000 != 64 {
					t.Errorf("child %d: read %d (fault %v)", i, v, f)
					return
				}
				for a := uint32(0); a < 16; a++ {
					if _, err := img.FetchInst(codeAddr + a*4); err != nil {
						t.Errorf("child %d: fetch: %v", i, err)
						return
					}
				}
			}
		}(i, img)
	}
	wg.Wait()

	// Parent never saw any child's writes.
	for pn := uint32(0); pn < pages; pn++ {
		if v, _ := parent.LoadWord(pn * PageSize); v != pn*1000 {
			t.Fatalf("parent page %d corrupted: %d", pn, v)
		}
	}
	// Each child sees exactly its own value on every page.
	for i, img := range imgs {
		for pn := uint32(0); pn < pages; pn++ {
			if v, _ := img.LoadWord(pn * PageSize); v != uint32(i)+1 {
				t.Fatalf("child %d page %d: %d, want %d", i, pn, v, i+1)
			}
		}
		if img.CopyEvents != pages {
			t.Fatalf("child %d: %d copy events, want %d", i, img.CopyEvents, pages)
		}
	}
}

// TestConcurrentReleaseKeepsRefcounts drops images from several
// goroutines at once; the surviving image must end up sole owner of its
// pages (SharedPages drains to zero).
func TestConcurrentReleaseKeepsRefcounts(t *testing.T) {
	parent := New()
	for pn := uint32(0); pn < 8; pn++ {
		parent.StoreWord(pn*PageSize, pn)
	}
	const children = 8
	imgs := make([]*Memory, children)
	for i := range imgs {
		imgs[i] = parent.Fork()
	}
	var wg sync.WaitGroup
	for _, img := range imgs {
		wg.Add(1)
		go func(img *Memory) {
			defer wg.Done()
			img.Release()
		}(img)
	}
	wg.Wait()
	if got := parent.SharedPages(); got != 0 {
		t.Fatalf("SharedPages = %d after all children released, want 0", got)
	}
	for pn := uint32(0); pn < 8; pn++ {
		if v, _ := parent.LoadWord(pn * PageSize); v != pn {
			t.Fatalf("page %d corrupted after releases: %d", pn, v)
		}
	}
}
