package mem

import (
	"testing"

	"superpin/internal/isa"
)

// enc encodes one instruction or fails the test.
func enc(t *testing.T, in isa.Inst) uint32 {
	t.Helper()
	w, err := isa.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTLBCowParentNotStale is the fork/TLB interaction test: after the
// child performs a copy-on-write duplication, the parent's cached page
// pointer must still serve the original (pre-write) data, and the copy
// must be charged to the writer.
func TestTLBCowParentNotStale(t *testing.T) {
	parent := New()
	parent.StoreWord(0x1000, 11)
	parent.StoreWord(0x1004, 22)

	// Warm the parent's read TLB on the page before forking.
	if v, _ := parent.LoadWord(0x1000); v != 11 {
		t.Fatal("warmup read wrong")
	}
	child := parent.Fork()

	// Child write triggers COW; the event is charged to the child.
	child.StoreWord(0x1000, 99)
	if child.CopyEvents != 1 {
		t.Fatalf("child CopyEvents = %d, want 1", child.CopyEvents)
	}
	if parent.CopyEvents != 0 {
		t.Fatalf("parent CopyEvents = %d, want 0", parent.CopyEvents)
	}

	// Parent reads (possibly through its TLB) must see the original data.
	if v, _ := parent.LoadWord(0x1000); v != 11 {
		t.Fatalf("parent sees child's write: %d", v)
	}
	if v, _ := parent.LoadWord(0x1004); v != 22 {
		t.Fatalf("parent word 2 = %d, want 22", v)
	}
	if v, _ := child.LoadWord(0x1000); v != 99 {
		t.Fatalf("child read-back = %d, want 99", v)
	}
}

// TestTLBParentWriteAfterForkCopies checks the symmetric hazard: the
// parent's cached *write* page must not be reused across Fork, or its
// next store would mutate a page the child shares.
func TestTLBParentWriteAfterForkCopies(t *testing.T) {
	parent := New()
	parent.StoreWord(0x2000, 1) // warm parent's write TLB on the page
	child := parent.Fork()

	parent.StoreWord(0x2000, 2) // must COW, not write through the stale TLB
	if parent.CopyEvents != 1 {
		t.Fatalf("parent CopyEvents = %d, want 1", parent.CopyEvents)
	}
	if v, _ := child.LoadWord(0x2000); v != 1 {
		t.Fatalf("child sees parent's post-fork write: %d", v)
	}
	if v, _ := parent.LoadWord(0x2000); v != 2 {
		t.Fatalf("parent read-back = %d, want 2", v)
	}
}

// TestTLBReleaseFlushes checks that a released image's pages do not
// linger in a sibling's caches through the refcount drop.
func TestTLBReleaseFlushes(t *testing.T) {
	a := New()
	a.StoreWord(0x3000, 5)
	b := a.Fork()
	b.Release()
	// a's next write must not COW (sole owner again).
	before := a.CopyEvents
	a.StoreWord(0x3000, 6)
	if a.CopyEvents != before {
		t.Fatal("write after sibling Release performed a COW copy")
	}
	if v, _ := a.LoadWord(0x3000); v != 6 {
		t.Fatalf("read-back = %d, want 6", v)
	}
}

// TestFetchInstMatchesDecode cross-checks the predecode cache against a
// plain load+decode for a page of mixed instructions.
func TestFetchInstMatchesDecode(t *testing.T) {
	m := New()
	words := []uint32{
		enc(t, isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 29, Imm: 4}),
		enc(t, isa.Inst{Op: isa.OpBNE, Rs1: 2, Rs2: 3, Imm: -2}),
		enc(t, isa.Inst{Op: isa.OpSYSCALL}),
		0xffff_ffff, // undecodable
	}
	base := uint32(0x4000)
	for i, w := range words {
		m.StoreWord(base+uint32(i*4), w)
	}
	for i := range words {
		addr := base + uint32(i*4)
		in, err := m.FetchInst(addr)
		w, _ := m.LoadWord(addr)
		want, wantErr := isa.Decode(w)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("word %d: err %v, want %v", i, err, wantErr)
		}
		if err == nil && in != want {
			t.Fatalf("word %d: %v, want %v", i, in, want)
		}
	}
	// Misaligned fetch faults like a misaligned load.
	if _, err := m.FetchInst(base + 2); err == nil {
		t.Fatal("misaligned fetch did not fault")
	}
}

// TestFetchInstSelfModifyingCode overwrites an already-fetched (and
// therefore predecoded) instruction and checks the cache invalidates:
// the next fetch must observe the new instruction.
func TestFetchInstSelfModifyingCode(t *testing.T) {
	m := New()
	base := uint32(0x5000)
	m.StoreWord(base, enc(t, isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: 1}))

	in, err := m.FetchInst(base)
	if err != nil || in.Op != isa.OpADDI {
		t.Fatalf("first fetch = %v, %v", in, err)
	}
	// Overwrite through the (now warm) write path.
	m.StoreWord(base, enc(t, isa.Inst{Op: isa.OpSUB, Rd: 4, Rs1: 4, Rs2: 4}))
	in, err = m.FetchInst(base)
	if err != nil || in.Op != isa.OpSUB {
		t.Fatalf("fetch after overwrite = %v, %v (predecode cache stale)", in, err)
	}
	// Byte stores invalidate too.
	m.StoreByte(base+3, 0xff)
	if _, err = m.FetchInst(base); err == nil {
		t.Fatal("fetch after byte clobber decoded a stale instruction")
	}
}

// TestFetchInstCowDoesNotLeakPredecode forks after predecoding and checks
// that the child's overwrite neither corrupts the parent's decoded view
// nor survives in the child's own.
func TestFetchInstCowDoesNotLeakPredecode(t *testing.T) {
	parent := New()
	base := uint32(0x6000)
	parent.StoreWord(base, enc(t, isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: 1}))
	if in, _ := parent.FetchInst(base); in.Op != isa.OpADDI {
		t.Fatal("parent predecode wrong")
	}
	child := parent.Fork()
	child.StoreWord(base, enc(t, isa.Inst{Op: isa.OpSUB, Rd: 4, Rs1: 4, Rs2: 4}))

	if in, _ := child.FetchInst(base); in.Op != isa.OpSUB {
		t.Fatal("child fetch did not see its own write")
	}
	if in, _ := parent.FetchInst(base); in.Op != isa.OpADDI {
		t.Fatal("parent fetch sees child's write")
	}
}

// TestFetchInstParentStoreAfterForkNoStaleView is the symmetric COW
// predecode hazard: the parent predecodes a page, forks (sharing it),
// then stores into it. The store must copy-on-write and the parent's
// next fetch must decode its private copy, while the child — whose
// first fetch builds a view of the original shared page — keeps seeing
// the pre-fork instruction.
func TestFetchInstParentStoreAfterForkNoStaleView(t *testing.T) {
	parent := New()
	base := uint32(0x8000)
	parent.StoreWord(base, enc(t, isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: 1}))
	if in, _ := parent.FetchInst(base); in.Op != isa.OpADDI {
		t.Fatal("parent predecode wrong")
	}
	child := parent.Fork()
	parent.StoreWord(base, enc(t, isa.Inst{Op: isa.OpSUB, Rd: 4, Rs1: 4, Rs2: 4}))
	if parent.CopyEvents != 1 {
		t.Fatalf("parent CopyEvents = %d, want 1", parent.CopyEvents)
	}

	if in, _ := parent.FetchInst(base); in.Op != isa.OpSUB {
		t.Fatal("parent fetch served the stale pre-fork predecoded view")
	}
	if in, _ := child.FetchInst(base); in.Op != isa.OpADDI {
		t.Fatal("child fetch sees the parent's post-fork write")
	}
	// Same check again with warm fetch TLBs on both sides.
	if in, _ := parent.FetchInst(base); in.Op != isa.OpSUB {
		t.Fatal("parent warm fetch wrong")
	}
	if in, _ := child.FetchInst(base); in.Op != isa.OpADDI {
		t.Fatal("child warm fetch wrong")
	}
}

// TestFetchInstUnmaterializedPage checks fetching from a page no one has
// written: words read as zero, which decode as the all-zero instruction,
// and the page must not be materialized by fetching.
func TestFetchInstUnmaterializedPage(t *testing.T) {
	m := New()
	in, err := m.FetchInst(0x9000)
	want, wantErr := isa.Decode(0)
	if (err == nil) != (wantErr == nil) {
		t.Fatalf("err %v, want %v", err, wantErr)
	}
	if err == nil && in != want {
		t.Fatalf("inst %v, want %v", in, want)
	}
	if m.Pages() != 0 {
		t.Fatalf("fetch materialized %d pages", m.Pages())
	}
}

// TestCachingToggleEquivalence runs the same access sequence with caching
// on and off and requires identical observable results.
func TestCachingToggleEquivalence(t *testing.T) {
	run := func(caching bool) []uint32 {
		m := New()
		m.SetCaching(caching)
		var out []uint32
		base := uint32(0x7000)
		m.StoreWord(base, enc(t, isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 3}))
		for i := 0; i < 4; i++ {
			in, err := m.FetchInst(base)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, uint32(in.Op), uint32(in.Imm))
			m.StoreWord(base+uint32(4+4*i), uint32(i))
			v, _ := m.LoadWord(base + uint32(4+4*i))
			out = append(out, v)
		}
		child := m.Fork()
		child.StoreWord(base, 0)
		v1, _ := m.LoadWord(base)
		v2, _ := child.LoadWord(base)
		out = append(out, v1, v2, uint32(m.CopyEvents), uint32(child.CopyEvents))
		return out
	}
	on, off := run(true), run(false)
	if len(on) != len(off) {
		t.Fatalf("length mismatch %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("divergence at %d: cached %d, uncached %d", i, on[i], off[i])
		}
	}
}
