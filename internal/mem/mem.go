// Package mem implements the paged guest memory used by the simulated
// kernel (internal/kernel) and the instrumentation engines built on it.
//
// The central feature is copy-on-write Fork, mirroring the Linux fork(2)
// semantics SuperPin depends on: forking a memory image shares all pages
// between parent and child, and the first write to a shared page copies
// it. The number of pages copied is tracked (CopyEvents) so the kernel's
// cost model can charge copy-on-write page faults to the process that
// triggered them — the "Fork Overhead" component of the paper's Section
// 6.3 breakdown.
//
// Pages are allocated lazily and zero-filled on first touch. Address-space
// layout policy (brk, mmap regions, SuperPin's "memory bubble") lives in
// the kernel; this package only provides the backing store.
package mem

import "fmt"

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB
	pageMask  = PageSize - 1
)

// page is a refcounted 4 KiB page. refs counts the number of Memory images
// that reference the page; a page with refs > 1 must be copied before it
// is written.
type page struct {
	data [PageSize]byte
	refs int32
}

// Fault describes an invalid guest memory access.
type Fault struct {
	Addr   uint32
	Write  bool
	Reason string
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s fault at %#08x: %s", kind, f.Addr, f.Reason)
}

// Memory is one process's view of guest memory.
//
// Memory is not safe for concurrent use; the discrete-event kernel runs
// guest processes one at a time, so no locking is needed or wanted.
type Memory struct {
	pages map[uint32]*page

	// CopyEvents counts copy-on-write page copies performed through this
	// image since creation. The kernel samples deltas of this counter to
	// charge page-copy cost to the faulting process.
	CopyEvents uint64
	// TouchedPages counts pages materialized (zero-fill allocations).
	TouchedPages uint64
}

// New returns an empty memory image.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

// Fork returns a copy-on-write clone of m. Both images share all current
// pages; each side copies a page when it first writes to it.
func (m *Memory) Fork() *Memory {
	child := &Memory{pages: make(map[uint32]*page, len(m.pages))}
	for pn, pg := range m.pages {
		pg.refs++
		child.pages[pn] = pg
	}
	return child
}

// Release drops all page references held by m. After Release, m must not
// be used. Calling Release when a process exits keeps shared refcounts
// accurate so SharedPages stays meaningful for long runs.
func (m *Memory) Release() {
	for pn, pg := range m.pages {
		pg.refs--
		delete(m.pages, pn)
	}
}

// Pages returns the number of materialized pages in this image.
func (m *Memory) Pages() int { return len(m.pages) }

// SharedPages returns the number of materialized pages currently shared
// with at least one other image.
func (m *Memory) SharedPages() int {
	n := 0
	for _, pg := range m.pages {
		if pg.refs > 1 {
			n++
		}
	}
	return n
}

// readPage returns the page containing addr for reading, materializing a
// zero page if needed.
func (m *Memory) readPage(addr uint32) *page {
	pn := addr >> PageShift
	pg := m.pages[pn]
	if pg == nil {
		pg = &page{refs: 1}
		m.pages[pn] = pg
		m.TouchedPages++
	}
	return pg
}

// writePage returns the page containing addr for writing, performing a
// copy-on-write duplication if the page is shared.
func (m *Memory) writePage(addr uint32) *page {
	pn := addr >> PageShift
	pg := m.pages[pn]
	switch {
	case pg == nil:
		pg = &page{refs: 1}
		m.pages[pn] = pg
		m.TouchedPages++
	case pg.refs > 1:
		cp := &page{data: pg.data, refs: 1}
		pg.refs--
		m.pages[pn] = cp
		m.CopyEvents++
		pg = cp
	}
	return pg
}

// LoadWord reads the aligned 32-bit little-endian word at addr.
func (m *Memory) LoadWord(addr uint32) (uint32, *Fault) {
	if addr&3 != 0 {
		return 0, &Fault{Addr: addr, Reason: "misaligned word read"}
	}
	pg := m.readPage(addr)
	off := addr & pageMask
	d := pg.data[off : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// StoreWord writes the aligned 32-bit little-endian word at addr.
func (m *Memory) StoreWord(addr, v uint32) *Fault {
	if addr&3 != 0 {
		return &Fault{Addr: addr, Write: true, Reason: "misaligned word write"}
	}
	pg := m.writePage(addr)
	off := addr & pageMask
	pg.data[off] = byte(v)
	pg.data[off+1] = byte(v >> 8)
	pg.data[off+2] = byte(v >> 16)
	pg.data[off+3] = byte(v >> 24)
	return nil
}

// LoadByte reads the byte at addr.
func (m *Memory) LoadByte(addr uint32) (byte, *Fault) {
	pg := m.readPage(addr)
	return pg.data[addr&pageMask], nil
}

// StoreByte writes the byte at addr.
func (m *Memory) StoreByte(addr uint32, v byte) *Fault {
	pg := m.writePage(addr)
	pg.data[addr&pageMask] = v
	return nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst. It is used by
// the kernel's syscall emulation (e.g. write(2) buffers).
func (m *Memory) ReadBytes(addr uint32, dst []byte) {
	for len(dst) > 0 {
		pg := m.readPage(addr)
		off := addr & pageMask
		n := copy(dst, pg.data[off:])
		dst = dst[n:]
		addr += uint32(n)
	}
}

// WriteBytes copies src into guest memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, src []byte) {
	for len(src) > 0 {
		pg := m.writePage(addr)
		off := addr & pageMask
		n := copy(pg.data[off:], src)
		src = src[n:]
		addr += uint32(n)
	}
}

// ReadWords reads n consecutive aligned words starting at addr. It is used
// by SuperPin's signature recorder to capture the top-of-stack window.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, *Fault) {
	out := make([]uint32, n)
	for i := range out {
		w, f := m.LoadWord(addr + uint32(i*4))
		if f != nil {
			return nil, f
		}
		out[i] = w
	}
	return out, nil
}
