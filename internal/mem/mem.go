// Package mem implements the paged guest memory used by the simulated
// kernel (internal/kernel) and the instrumentation engines built on it.
//
// The central feature is copy-on-write Fork, mirroring the Linux fork(2)
// semantics SuperPin depends on: forking a memory image shares all pages
// between parent and child, and the first write to a shared page copies
// it. The number of pages copied is tracked (CopyEvents) so the kernel's
// cost model can charge copy-on-write page faults to the process that
// triggered them — the "Fork Overhead" component of the paper's Section
// 6.3 breakdown.
//
// Pages are allocated lazily; reads of unmaterialized pages observe zeros
// without allocating, and only writes materialize backing storage.
// Address-space layout policy (brk, mmap regions, SuperPin's "memory
// bubble") lives in the kernel; this package only provides the backing
// store.
//
// Two host-side fast paths keep interpretation cheap without changing any
// guest-visible result:
//
//   - a one-entry software TLB per image (separate read and write
//     entries) that skips the page-map lookup when consecutive accesses
//     land on the same page — the overwhelmingly common case;
//   - a per-page predecode cache (FetchInst) that stores the decoded
//     instruction for every word of a code page, so the interpreter's
//     fetch path stops paying a map lookup, byte assembly and decode per
//     executed instruction. The cache is invalidated when a store hits
//     the page (self-modifying code) and is never carried onto a
//     copy-on-write duplicate.
//
// Both caches can be disabled with SetCaching so differential tests and
// benchmarks can verify and measure their effect.
package mem

import (
	"fmt"
	"sync/atomic"

	"superpin/internal/isa"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB
	pageMask  = PageSize - 1

	wordsPerPage = PageSize / isa.WordSize
)

// invalidPN is the software-TLB tag for "no page cached" (page numbers
// derived from 32-bit addresses never exceed 2^20-1).
const invalidPN = ^uint32(0)

// page is a refcounted 4 KiB page. refs counts the number of Memory images
// that reference the page; a page with refs > 1 must be copied before it
// is written.
//
// refs and code are atomic because images sharing pages may run on
// different host workers within one kernel quantum. The invariants that
// make the copy-on-write protocol safe without locks:
//
//   - data is only ever written through a page with refs == 1, and a page
//     observed at refs == 1 by its writing owner cannot gain references
//     concurrently (new references come only from forking an image that
//     already maps the page — and at refs == 1 the writer's image is the
//     only one that does).
//   - a shared page's data is immutable, so a concurrently built code
//     view is a pure function of stable bytes; racing builders store
//     equivalent values.
type page struct {
	data [PageSize]byte
	refs atomic.Int32

	// code is the lazily-built predecoded view of this page, or nil.
	// Stores through writePage clear it (self-modifying code); COW
	// duplicates start without it. A shared page is never written in
	// place, so a non-nil code is always consistent with data.
	code atomic.Pointer[codePage]
}

// codePage caches the decoded form of every word in one page.
type codePage struct {
	ins [wordsPerPage]isa.Inst
	bad [wordsPerPage]bool // word does not decode; fetch re-decodes for the error
}

// predecode builds the decoded view of one page's bytes.
func predecode(data *[PageSize]byte) *codePage {
	cp := &codePage{}
	for i := 0; i < wordsPerPage; i++ {
		off := i * isa.WordSize
		w := uint32(data[off]) | uint32(data[off+1])<<8 |
			uint32(data[off+2])<<16 | uint32(data[off+3])<<24
		in, err := isa.Decode(w)
		if err != nil {
			cp.bad[i] = true
			continue
		}
		cp.ins[i] = in
	}
	return cp
}

// zeroPage backs reads of unmaterialized pages. It is shared by every
// image and must never be written; writePage always materializes a private
// page instead. Its predecode view is built once at init.
var zeroPage page

func init() { zeroPage.code.Store(predecode(&zeroPage.data)) }

// arenaSlab is the number of page frames allocated per arena slab. Each
// slab is ~128 KiB; slabs are never reused, so a released page keeps its
// slab alive until every frame in it is unreferenced (a small, bounded
// retention in exchange for one allocation per 32 materializations).
const arenaSlab = 32

// pageArena is a slab allocator for page frames. Each Memory owns one,
// so parallel workers materializing copy-on-write pages allocate from
// disjoint arenas instead of contending on the global heap for every
// 4 KiB frame.
type pageArena struct {
	free []page
}

// alloc returns a fresh zeroed page frame.
func (a *pageArena) alloc() *page {
	if len(a.free) == 0 {
		a.free = make([]page, arenaSlab)
	}
	pg := &a.free[0]
	a.free = a.free[1:]
	return pg
}

// Fault describes an invalid guest memory access.
type Fault struct {
	Addr   uint32
	Write  bool
	Reason string
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s fault at %#08x: %s", kind, f.Addr, f.Reason)
}

// Memory is one process's view of guest memory.
//
// A Memory value is single-owner: exactly one goroutine may use it at a
// time (the kernel hands each image to at most one worker per guest
// phase). Distinct images that *share pages* through Fork may be used
// concurrently — the page-level atomics above carry that safely — but
// the Memory struct itself (page map, TLBs, arena, counters) is never
// shared between goroutines without a handoff.
type Memory struct {
	pages map[uint32]*page

	// arena allocates page frames in slabs, so a fork-heavy parallel run
	// materializes copy-on-write pages from per-image arenas instead of
	// hammering the global allocator from every worker at once.
	arena pageArena

	// One-entry software TLBs: the page number and page of the last read
	// and the last write. Flushed on Fork, Release and whenever caching
	// is toggled; the write entry always holds a privately-owned page, so
	// hitting it can never skip a needed copy-on-write duplication.
	rpn, wpn uint32
	rpg, wpg *page

	// Fetch TLB: the predecoded view of the last fetched-from page. Kept
	// separate from the read entry so data loads interleaved with fetches
	// (the common interpreter pattern) do not evict the code page.
	// Invalidated by writePage when a store hits this page, and by every
	// flushTLB.
	fpn uint32
	fcp *codePage

	// noCache disables the TLBs and the predecode cache (SetCaching).
	noCache bool

	// codeRanges lists the address ranges holding analyzed code
	// (MarkCode), and codeWritten latches once any store touches a page
	// overlapping one. Instrumentation engines consult CodeWritten to
	// retract static-analysis conclusions when the program self-modifies.
	// Detection is page-granular and sticky, checked only on the
	// write-TLB miss path (every page's first store goes through it), so
	// the store fast path is unaffected.
	codeRanges  []codeRange
	codeWritten bool

	// CopyEvents counts copy-on-write page copies performed through this
	// image since creation. The kernel samples deltas of this counter to
	// charge page-copy cost to the faulting process.
	CopyEvents uint64
	// TouchedPages counts pages materialized (zero-fill allocations).
	// Pure reads of absent pages observe zeros without materializing, so
	// only writes count here.
	TouchedPages uint64
}

// New returns an empty memory image.
func New() *Memory {
	m := &Memory{pages: make(map[uint32]*page)}
	m.flushTLB()
	return m
}

// flushTLB invalidates both software-TLB entries.
func (m *Memory) flushTLB() {
	m.rpn, m.wpn, m.fpn = invalidPN, invalidPN, invalidPN
	m.rpg, m.wpg, m.fcp = nil, nil, nil
}

// SetCaching enables or disables the host-side fast paths (the software
// TLB and the per-page predecode cache). Caching is on by default and
// never affects guest-visible behavior; differential tests and benchmarks
// disable it to verify and measure exactly that.
func (m *Memory) SetCaching(on bool) {
	m.noCache = !on
	m.flushTLB()
}

// codeRange is one half-open address range registered via MarkCode.
type codeRange struct{ lo, hi uint32 }

// MarkCode registers [addr, addr+size) as code whose static analysis
// the owning engine relies on. Subsequent stores into any page
// overlapping a marked range latch CodeWritten. Ranges accumulate;
// marking is expected once per loaded segment.
func (m *Memory) MarkCode(addr, size uint32) {
	if size == 0 {
		return
	}
	m.codeRanges = append(m.codeRanges, codeRange{lo: addr, hi: addr + size - 1})
	// Drop the cached write page: the miss path is where overlap is
	// checked, and a page cached before this range existed would
	// otherwise bypass it.
	m.wpn, m.wpg = invalidPN, nil
}

// CodeWritten reports whether any store has touched a page overlapping
// a MarkCode range — conservatively, whether the analyzed code may have
// been modified since loading.
func (m *Memory) CodeWritten() bool { return m.codeWritten }

// noteWrite latches codeWritten when page pn overlaps a marked code
// range. Called only on write-TLB misses; a hit means this page already
// passed through here since the ranges were registered.
func (m *Memory) noteWrite(pn uint32) {
	if m.codeWritten || len(m.codeRanges) == 0 {
		return
	}
	lo := pn << PageShift
	hi := lo + PageSize - 1
	for _, r := range m.codeRanges {
		if r.lo <= hi && r.hi >= lo {
			m.codeWritten = true
			return
		}
	}
}

// Fork returns a copy-on-write clone of m. Both images share all current
// pages; each side copies a page when it first writes to it. Forking is
// safe while other images sharing m's pages run on other workers: it
// only adds references, which can at worst make a concurrent writer copy
// a page it was about to start sharing anyway.
func (m *Memory) Fork() *Memory {
	child := &Memory{pages: make(map[uint32]*page, len(m.pages)), noCache: m.noCache}
	// The child watches the same code ranges and inherits the latch
	// (its image contains the modified bytes too). The slice is copied:
	// both sides may keep appending independently.
	child.codeRanges = append([]codeRange(nil), m.codeRanges...)
	child.codeWritten = m.codeWritten
	child.flushTLB()
	for pn, pg := range m.pages { //detguard:ok per-page refcounts, order-free
		pg.refs.Add(1)
		child.pages[pn] = pg
	}
	// Every page is now shared: the parent's cached write page must go
	// back through the copy-on-write check before its next store.
	m.flushTLB()
	return child
}

// Release drops all page references held by m. After Release, m must not
// be used. Calling Release when a process exits keeps shared refcounts
// accurate so SharedPages stays meaningful for long runs.
func (m *Memory) Release() {
	for pn, pg := range m.pages { //detguard:ok per-page refcounts, order-free
		pg.refs.Add(-1)
		delete(m.pages, pn)
	}
	m.flushTLB()
}

// Pages returns the number of materialized pages in this image.
func (m *Memory) Pages() int { return len(m.pages) }

// SharedPages returns the number of materialized pages currently shared
// with at least one other image.
func (m *Memory) SharedPages() int {
	n := 0
	for _, pg := range m.pages { //detguard:ok commutative count
		if pg.refs.Load() > 1 {
			n++
		}
	}
	return n
}

// readPage returns the page containing addr for reading. Absent pages read
// as zeros via the shared zero page, without materializing.
func (m *Memory) readPage(addr uint32) *page {
	pn := addr >> PageShift
	if pn == m.rpn {
		return m.rpg
	}
	pg := m.pages[pn]
	if pg == nil {
		pg = &zeroPage
	}
	if !m.noCache {
		m.rpn, m.rpg = pn, pg
	}
	return pg
}

// writePage returns the page containing addr for writing, materializing a
// zero page or performing a copy-on-write duplication as needed. It also
// invalidates the page's predecode cache: a store may overwrite code.
func (m *Memory) writePage(addr uint32) *page {
	pn := addr >> PageShift
	if pn == m.fpn {
		// The fetch TLB caches this page's decoded view; drop it before
		// the store makes it stale (self-modifying code).
		m.fpn, m.fcp = invalidPN, nil
	}
	if pn == m.wpn {
		pg := m.wpg
		pg.code.Store(nil)
		return pg
	}
	m.noteWrite(pn)
	pg := m.pages[pn]
	switch {
	case pg == nil:
		pg = m.arena.alloc()
		pg.refs.Store(1)
		m.pages[pn] = pg
		m.TouchedPages++
	case pg.refs.Load() > 1:
		cp := m.arena.alloc()
		cp.data = pg.data
		cp.refs.Store(1)
		pg.refs.Add(-1)
		m.pages[pn] = cp
		m.CopyEvents++
		pg = cp
	}
	pg.code.Store(nil)
	if !m.noCache {
		// Populate both entries: a store is usually followed by loads
		// from the same page, and the read entry must not keep serving
		// the zero page (or a pre-COW original) for this page number.
		m.wpn, m.wpg = pn, pg
		m.rpn, m.rpg = pn, pg
	}
	return pg
}

// LoadWord reads the aligned 32-bit little-endian word at addr.
func (m *Memory) LoadWord(addr uint32) (uint32, *Fault) {
	if addr&3 != 0 {
		return 0, &Fault{Addr: addr, Reason: "misaligned word read"}
	}
	pg := m.readPage(addr)
	off := addr & pageMask
	d := pg.data[off : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// StoreWord writes the aligned 32-bit little-endian word at addr.
func (m *Memory) StoreWord(addr, v uint32) *Fault {
	if addr&3 != 0 {
		return &Fault{Addr: addr, Write: true, Reason: "misaligned word write"}
	}
	pg := m.writePage(addr)
	off := addr & pageMask
	pg.data[off] = byte(v)
	pg.data[off+1] = byte(v >> 8)
	pg.data[off+2] = byte(v >> 16)
	pg.data[off+3] = byte(v >> 24)
	return nil
}

// LoadByte reads the byte at addr.
func (m *Memory) LoadByte(addr uint32) (byte, *Fault) {
	pg := m.readPage(addr)
	return pg.data[addr&pageMask], nil
}

// StoreByte writes the byte at addr.
func (m *Memory) StoreByte(addr uint32, v byte) *Fault {
	pg := m.writePage(addr)
	pg.data[addr&pageMask] = v
	return nil
}

// FetchInst returns the decoded instruction at the aligned address addr,
// filling the page's predecode cache on first use. It is the
// interpreter's fetch path: after the first fetch from a page, every
// subsequent fetch is a fetch-TLB tag compare plus an array index. The
// returned error is a *Fault for a misaligned address or a decode error
// for an undecodable word, matching a LoadWord+Decode sequence exactly.
func (m *Memory) FetchInst(addr uint32) (isa.Inst, error) {
	if addr&3 == 0 && addr>>PageShift == m.fpn {
		i := (addr & pageMask) >> 2
		if cp := m.fcp; !cp.bad[i] {
			return cp.ins[i], nil
		}
	}
	return m.fetchSlow(addr)
}

// fetchSlow is FetchInst's fetch-TLB-miss path: it validates the address,
// finds (or builds) the page's predecoded view, primes the fetch TLB and
// decodes. Also handles the noCache mode and undecodable words.
func (m *Memory) fetchSlow(addr uint32) (isa.Inst, error) {
	if addr&3 != 0 {
		return isa.Inst{}, &Fault{Addr: addr, Reason: "misaligned word read"}
	}
	if m.noCache {
		w, f := m.LoadWord(addr)
		if f != nil {
			return isa.Inst{}, f
		}
		return isa.Decode(w)
	}
	pg := m.readPage(addr)
	cp := pg.code.Load()
	if cp == nil {
		cp = predecode(&pg.data)
		pg.code.Store(cp)
	}
	m.fpn, m.fcp = addr>>PageShift, cp
	i := (addr & pageMask) >> 2
	if cp.bad[i] {
		// Re-decode the raw word to produce the precise error.
		w, _ := m.LoadWord(addr)
		_, err := isa.Decode(w)
		return isa.Inst{}, err
	}
	return cp.ins[i], nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst. It is used by
// the kernel's syscall emulation (e.g. write(2) buffers).
func (m *Memory) ReadBytes(addr uint32, dst []byte) {
	for len(dst) > 0 {
		pg := m.readPage(addr)
		off := addr & pageMask
		n := copy(dst, pg.data[off:])
		dst = dst[n:]
		addr += uint32(n)
	}
}

// WriteBytes copies src into guest memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, src []byte) {
	for len(src) > 0 {
		pg := m.writePage(addr)
		off := addr & pageMask
		n := copy(pg.data[off:], src)
		src = src[n:]
		addr += uint32(n)
	}
}

// ReadWords reads n consecutive aligned words starting at addr. It is used
// by SuperPin's signature recorder to capture the top-of-stack window.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, *Fault) {
	out := make([]uint32, n)
	for i := range out {
		w, f := m.LoadWord(addr + uint32(i*4))
		if f != nil {
			return nil, f
		}
		out[i] = w
	}
	return out, nil
}
